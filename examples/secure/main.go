// Secure: the §6 security note made concrete. "Since Wi-LE systems
// communicate by injecting raw packets with no encryption all devices
// within range of the sender can obtain the transmitted data... However,
// security can be easily provided by encrypting the data prior to its
// transmission."
//
// A door sensor seals every message with a per-device pre-shared key
// (AES-128-CTR + truncated HMAC-SHA256, nonce bound to device ID and
// sequence number). The homeowner's scanner holds the key and reads the
// events; an eavesdropper in range sees the beacons but decodes nothing,
// and a spoofer who replays or forges beacons is rejected by the
// authenticator.
//
//	go run ./examples/secure
package main

import (
	"fmt"
	"time"

	"wile"
	"wile/internal/dot11"
)

func main() {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))

	key, err := wile.NewKey([]byte("door-sensor-key!"))
	if err != nil {
		panic(err)
	}

	const doorID = 0x4001
	door := wile.NewSensor(sched, med, wile.SensorConfig{
		DeviceID: doorID,
		Period:   30 * time.Second,
		Position: wile.Position{X: 0, Y: 0},
		Key:      key,
	})
	opens := uint32(0)
	door.Sample = func() []wile.Reading {
		opens++
		return []wile.Reading{wile.Counter(opens)}
	}

	owner := wile.NewScanner(sched, med, wile.ScannerConfig{
		Name: "owner", Position: wile.Position{X: 3, Y: 0},
		Keys: map[uint32]*wile.Key{doorID: key},
	})
	owner.OnMessage = func(m *wile.Message, meta wile.Meta) {
		fmt.Printf("[%v] owner: door event #%d (authenticated)\n", meta.At, m.Readings[0].Value)
	}
	owner.Start()

	eaves := wile.NewScanner(sched, med, wile.ScannerConfig{
		Name: "eavesdropper", Position: wile.Position{X: 2, Y: 2},
	})
	eaves.OnMessage = func(m *wile.Message, meta wile.Meta) {
		fmt.Printf("[%v] EAVESDROPPER DECODED A MESSAGE — security broken!\n", meta.At)
	}
	eaves.Start()

	door.Run()
	sched.RunFor(3 * time.Minute)
	door.Stop()

	// A spoofer forges a "door event #999" without the key and injects it.
	fmt.Println("\nspoofer injects a forged beacon without the key...")
	spoofKey, _ := wile.NewKey([]byte("wrong-key-000000"))
	forged := &wile.Message{DeviceID: doorID, Seq: 999, Readings: []wile.Reading{wile.Counter(999)}}
	beacon, err := wile.BuildBeacon(doorID, 6, forged, spoofKey)
	if err != nil {
		panic(err)
	}
	spoofer := wile.NewSensor(sched, med, wile.SensorConfig{
		DeviceID: 0xbad, Position: wile.Position{X: 1, Y: 1}, SkipBoot: true,
	})
	spoofer.Port.SetRadioOn(true)
	if err := spoofer.Port.Send(beacon, nil); err != nil {
		panic(err)
	}
	sched.RunFor(time.Second)

	fmt.Println()
	fmt.Printf("owner: %d genuine events, %d forgeries/undecodable dropped\n",
		owner.Stats.Messages, owner.Stats.EncryptedDrops)
	fmt.Printf("eavesdropper: %d beacons seen, %d messages decoded\n",
		eaves.Stats.BeaconsSeen, eaves.Stats.Messages)

	// Show what the eavesdropper actually captures: ciphertext.
	raw, _ := dot11.Marshal(beacon)
	fmt.Printf("\non-air bytes visible to anyone in range (forged frame, %d bytes):\n%x\n", len(raw), raw)
}
