// Metering: at-least-once delivery for readings that must not be lost.
//
// A water meter queues one consumption batch per hour. Plain Wi-LE is
// fire-and-forget — fine for temperature, not for billing. The reliability
// layer uses the §6 receive window as an acknowledgment channel: the base
// station auto-acks every windowed uplink, and unacknowledged batches stay
// queued across deep sleeps and retransmit on later wakes. The example
// takes the base station down for a stretch and shows every batch arriving
// anyway, in order, with the retry arithmetic printed.
//
//	go run ./examples/metering
package main

import (
	"fmt"
	"time"

	"wile"
)

func main() {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))

	meterSensor := wile.NewSensor(sched, med, wile.SensorConfig{
		DeviceID: 0x77a1,
		Period:   10 * time.Minute,
		Position: wile.Position{X: 0},
		RxWindow: 20 * time.Millisecond,
	})
	// The reliability arithmetic at the end comes from a metrics registry
	// snapshot (Observe mirrors the sensor and reliability counters into it)
	// rather than hand-rolled counters.
	reg := wile.NewRegistry()
	reliable := wile.NewReliableSensor(meterSensor, 12)
	reliable.Observe(reg)
	reliable.OnDelivered = func(batch []wile.Reading, attempts int) {
		fmt.Printf("[%v] delivered %d liters (attempt %d)\n",
			sched.Now(), batch[0].Value, attempts)
	}

	base := wile.NewResponder(sched, med, "base", wile.Position{X: 3}, 6)
	base.AutoAck = true

	// One consumption batch per hour.
	liters := uint32(0)
	var queueHourly func()
	queueHourly = func() {
		liters += 140
		reliable.Queue([]wile.Reading{wile.Counter(liters)})
		sched.After(time.Hour, queueHourly)
	}
	queueHourly()
	reliable.Run()

	// The base station goes down for 90 minutes in hour three.
	sched.After(2*time.Hour, func() {
		fmt.Printf("[%v] -- base station offline --\n", sched.Now())
		base.Port.SetRadioOn(false)
	})
	sched.After(2*time.Hour+90*time.Minute, func() {
		fmt.Printf("[%v] -- base station back --\n", sched.Now())
		base.Port.SetRadioOn(true)
	})

	sched.RunFor(6 * time.Hour)
	reliable.Stop()

	queued := reg.Counter("wile.reliable_queued").Value()
	delivered := reg.Counter("wile.reliable_delivered").Value()
	fmt.Printf("\n6 hours: %d batches queued, %d delivered (%.0f%%), %d retransmissions, %d pending, %d lost\n",
		queued, delivered, 100*float64(delivered)/float64(queued),
		reg.Counter("wile.reliable_retransmitted").Value(), reliable.Pending(),
		reg.Counter("wile.reliable_given_up").Value())
	fmt.Printf("uplink messages on air: %d (wakes spent retrying count here too)\n",
		reg.Counter("wile.tx_messages").Value())
	fmt.Printf("device energy for the whole story: %.1f mJ\n", meterSensor.Dev.Energy().Milli())
}
