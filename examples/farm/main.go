// Farm: the paper's infrastructure-free deployment scenario — "in
// environments with no WiFi infrastructure such as farms Wi-LE enables
// wireless communication directly between IoT devices and a WiFi device
// such as a smartphone" (§1).
//
// Forty soil sensors are scattered over a field with no AP anywhere. A
// single phone walks through and collects everything they transmit. The
// example also exercises the §6 multi-device concerns: unique device IDs,
// CSMA plus clock jitter keeping co-periodic transmitters apart, and the
// scanner's loss accounting from sequence gaps.
//
//	go run ./examples/farm
package main

import (
	"fmt"
	"sort"
	"time"

	"wile"
)

const (
	sensors = 40
	period  = 2 * time.Minute
	hours   = 2
)

func main() {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(1))

	// One registry carries the fleet-wide aggregates; every sensor, the
	// phone and the medium itself mirror their counters into it, so the
	// delivery arithmetic at the end comes from a single snapshot instead
	// of per-component bookkeeping.
	reg := wile.NewRegistry()
	med.Observe(reg)

	// Sensors on a rough grid across a 50 m × 40 m field.
	var fleet []*wile.Sensor
	for i := 0; i < sensors; i++ {
		s := wile.NewSensor(sched, med, wile.SensorConfig{
			DeviceID: uint32(0x2000 + i),
			Period:   period,
			Position: wile.Position{X: float64(i%8) * 7, Y: float64(i/8) * 10},
			// Cheap field hardware: worse crystals than the lab.
			JitterPPM: 80,
		})
		s.Observe(reg)
		i := i
		moisture := 35.0 + float64(i%10)
		s.Sample = func() []wile.Reading {
			moisture -= 0.05 // the field dries out
			return []wile.Reading{
				wile.Humidity(moisture),
				wile.Battery(2900 - 3*i),
			}
		}
		s.Run()
		fleet = append(fleet, s)
	}

	// Wi-LE range at 0 dBm and MCS7 is "a few meters" (§5.4), so a parked
	// phone hears only its nearest neighbours. The farmhand therefore
	// walks a serpentine path through the rows, one circuit per hour; the
	// scanner collects whatever transmits nearby as they pass.
	phone := wile.NewScanner(sched, med, wile.ScannerConfig{
		Name:     "phone",
		Position: wile.Position{X: 0, Y: 0},
	})
	phone.Observe(reg)
	phone.Start()
	walk := func() {
		// Map elapsed time to a position on a serpentine over the
		// 49 m × 40 m grid, completing a loop each hour.
		frac := float64(sched.Now()%wile.Time(time.Hour)) / float64(time.Hour)
		row := int(frac * 5)           // 5 sweeps per circuit
		along := frac*5 - float64(row) // progress along the row
		x := along * 49
		if row%2 == 1 {
			x = 49 - x
		}
		phone.Port.Transceiver().SetPos(wile.Position{X: x, Y: float64(row) * 10})
	}
	var step func()
	step = func() {
		walk()
		sched.After(10*time.Second, step)
	}
	step()

	sched.RunFor(hours * time.Hour)
	var macTotals wile.MACFleetStats
	for _, s := range fleet {
		s.Stop()
		macTotals.Add(s.Port.Stats)
	}
	macTotals.Add(phone.Port.Stats)

	devices := phone.Devices()
	sort.Slice(devices, func(i, j int) bool { return devices[i].DeviceID < devices[j].DeviceID })
	fmt.Printf("heard %d of %d sensors over %d h:\n\n", len(devices), sensors, hours)
	fmt.Printf("%-10s %9s %6s %6s %9s %12s\n", "device", "moisture", "msgs", "lost", "RSSI", "last seen")
	for _, d := range devices {
		fmt.Printf("%08x   %7.1f%% %6d %6d %9v %12v\n",
			d.DeviceID, d.Last.Readings[0].Percent(), d.Messages, d.Lost, d.LastRSSI, d.LastSeen)
	}

	// Fleet totals come out of the registry snapshot: the sensors' own
	// tx_messages counter replaces the schedule-derived estimate, and the
	// phone's rx side supplies delivery and duplicate rates.
	transmitted := reg.Counter("wile.tx_messages").Value()
	collected := reg.Counter("wile.rx_messages").Value()
	duplicates := reg.Counter("wile.rx_duplicates").Value()
	fmt.Printf("\nair stats: %d transmissions, %d collisions (CSMA + jitter keep the channel clean)\n",
		reg.Counter("wile.medium_transmissions").Value(),
		reg.Counter("wile.medium_collisions").Value())
	totals, ports := macTotals.Total()
	fmt.Printf("MAC fleet (%d ports): %d frames on air, %d retries, %d drops, %d duplicates filtered\n",
		ports, totals.TxFrames, totals.Retries, totals.Drops, totals.RxDuplicates)
	fmt.Printf("collected %d of %d transmitted readings (%.1f%% delivery, %d duplicates); "+
		"the gap is radio range, not contention\n",
		collected, transmitted, 100*float64(collected)/float64(transmitted), duplicates)
}
