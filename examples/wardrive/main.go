// Wardrive: discovering Wi-LE devices across channels with a hopping
// receiver — the §4 "phone app" generalized to a building survey.
//
// Three floors of a facility run sensors on the three non-overlapping
// 2.4 GHz channels (1, 6, 11). The surveyor's phone does not know which
// device sits on which channel, so it hops with a 250 ms dwell and builds
// an inventory. The example prints the inventory and the capture-rate
// arithmetic that makes channel count a real cost (the paper's 5 GHz
// suggestion buys spectrum at discovery-latency expense).
//
//	go run ./examples/wardrive
package main

import (
	"fmt"
	"time"

	"wile"
)

func main() {
	sched := wile.NewScheduler()

	channels := []int{1, 6, 11}
	floors := []string{"basement", "ground", "upstairs"}
	var mediums []*wile.Medium
	var scanners []*wile.Scanner

	for i, ch := range channels {
		med := wile.NewMedium(sched, wile.Channel(ch))
		mediums = append(mediums, med)

		// A few sensors per floor, different periods.
		for j := 0; j < 3; j++ {
			id := uint32(0xF000 + i*16 + j)
			s := wile.NewSensor(sched, med, wile.SensorConfig{
				DeviceID: id,
				Period:   time.Duration(20+10*j) * time.Second,
				Position: wile.Position{X: float64(j) * 2},
				Channel:  ch,
			})
			temp := 18.0 + float64(i)*2
			s.Sample = func() []wile.Reading {
				return []wile.Reading{wile.Temperature(temp), wile.Battery(2900)}
			}
			s.Run()
		}

		scanners = append(scanners, wile.NewScanner(sched, med, wile.ScannerConfig{
			Name:     fmt.Sprintf("phone-ch%d", ch),
			Position: wile.Position{X: 2, Y: 1},
			Seed:     uint64(i + 1),
		}))
	}

	phone := wile.NewChannelHopper(sched, 250*time.Millisecond, scanners...)
	phone.Start()
	const survey = 10 * time.Minute
	sched.RunFor(survey)
	phone.Stop()

	fmt.Printf("survey complete: %v across channels %v (%d hops)\n\n",
		survey, channels, phone.Stats.Hops)
	fmt.Printf("%-10s %-10s %8s %6s %6s %10s\n", "device", "floor", "temp", "msgs", "lost", "RSSI")
	for _, d := range phone.Devices() {
		floor := floors[(d.DeviceID>>4)&0xf]
		fmt.Printf("%08x   %-10s %6.1f°C %6d %6d %10v\n",
			d.DeviceID, floor, d.Last.Readings[0].Celsius(), d.Messages, d.Lost, d.LastRSSI)
	}
	fmt.Printf("\ncaptured %d messages; a hopper on %d channels hears ≈1/%d of each device's beacons —\n",
		phone.Messages(), len(channels), len(channels))
	fmt.Println("the sequence-gap 'lost' column quantifies it per device")
}
