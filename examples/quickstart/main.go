// Quickstart: one Wi-LE temperature sensor reporting to one scanner.
//
// The sensor wakes every 10 minutes (virtual time — the whole hour runs in
// milliseconds of wall clock), injects a hidden-SSID beacon carrying its
// reading, and deep-sleeps at 2.5 µA. The scanner decodes every beacon and
// prints the reading, its RSSI, and the running energy bill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"wile"
	"wile/internal/units"
)

func main() {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))

	sensor := wile.NewSensor(sched, med, wile.SensorConfig{
		DeviceID: 0x1001,
		Period:   wile.DefaultPeriod, // the paper's "e.g., every 10 minutes"
		Position: wile.Position{X: 0, Y: 0},
	})
	temperature := 21.3
	sensor.Sample = func() []wile.Reading {
		temperature += 0.07 // the room warms slowly
		return []wile.Reading{
			wile.Temperature(temperature),
			wile.Battery(2980),
		}
	}

	scanner := wile.NewScanner(sched, med, wile.ScannerConfig{
		Name:     "laptop",
		Position: wile.Position{X: 4, Y: 1},
	})
	scanner.OnMessage = func(m *wile.Message, meta wile.Meta) {
		fmt.Printf("[%v] device %08x  seq %-3d  %.2f °C  battery %d mV  (RSSI %v)\n",
			meta.At, m.DeviceID, m.Seq,
			m.Readings[0].Celsius(), m.Readings[1].Value, meta.RSSI)
	}
	scanner.Start()

	sensor.Run()
	sched.RunFor(time.Hour)
	sensor.Stop()

	fmt.Println()
	fmt.Printf("one hour of reporting: %d messages, device spent %.2f mJ total\n",
		sensor.Stats.Messages, sensor.Dev.Energy().Milli())
	fmt.Printf("average power: %.2f µW — a CR2032 coin cell lasts years at this rate\n",
		units.AveragePower(sensor.Dev.Energy(), time.Hour).Micro())
}
