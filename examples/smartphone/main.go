// Smartphone: the receiving side the paper emphasizes — "a simple Android
// or iOS application or other software running on a host can retrieve the
// sensor's data" with "no software or hardware modifications (e.g., rooting
// the phone)" (§4).
//
// This example is that app, rendered as a terminal dashboard: a home with
// four Wi-LE devices (fridge, greenhouse, mailbox, water meter) plus a
// normal WiFi AP on the same channel whose beacons the app correctly
// ignores. The dashboard refreshes once per virtual minute.
//
//	go run ./examples/smartphone
package main

import (
	"fmt"
	"time"

	"wile"
	"wile/internal/ap"
	"wile/internal/dot11"
	"wile/internal/netstack"
)

type deviceInfo struct {
	name   string
	render func(m *wile.Message) string
}

var known = map[uint32]deviceInfo{
	0x0001: {"fridge", func(m *wile.Message) string {
		return fmt.Sprintf("%.1f °C", m.Readings[0].Celsius())
	}},
	0x0002: {"greenhouse", func(m *wile.Message) string {
		return fmt.Sprintf("%.1f °C / %.0f %%RH", m.Readings[0].Celsius(), m.Readings[1].Percent())
	}},
	0x0003: {"mailbox", func(m *wile.Message) string {
		return fmt.Sprintf("opened %d times", m.Readings[0].Value)
	}},
	0x0004: {"water meter", func(m *wile.Message) string {
		return fmt.Sprintf("%d liters", m.Readings[0].Value)
	}},
}

func main() {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))

	// The home's real AP shares the channel; Wi-LE coexists with it and
	// the phone's scanner must not confuse its beacons for sensor data.
	homeAP := ap.New(sched, med, ap.Config{
		SSID: "home-wifi", Passphrase: "hunter2hunter2",
		BSSID: dot11.MustParseMAC("aa:bb:cc:dd:ee:01"), Channel: 6,
		IP: netstack.MustParseIP("192.168.1.1"),
	})
	homeAP.Start()

	// Four sensors with different periods and positions.
	mkSensor := func(id uint32, period time.Duration, x, y float64, sample func(i int) []wile.Reading) {
		s := wile.NewSensor(sched, med, wile.SensorConfig{
			DeviceID: id, Period: period, Position: wile.Position{X: x, Y: y},
		})
		i := 0
		s.Sample = func() []wile.Reading { i++; return sample(i) }
		s.Run()
	}
	mkSensor(0x0001, 2*time.Minute, 1, 1, func(i int) []wile.Reading {
		return []wile.Reading{wile.Temperature(4.0 + 0.1*float64(i%5))}
	})
	mkSensor(0x0002, 5*time.Minute, 6, 2, func(i int) []wile.Reading {
		return []wile.Reading{wile.Temperature(26 + 0.5*float64(i%3)), wile.Humidity(60 + float64(i%8))}
	})
	mkSensor(0x0003, 10*time.Minute, 3, 7, func(i int) []wile.Reading {
		return []wile.Reading{wile.Counter(uint32(i / 3))}
	})
	mkSensor(0x0004, time.Minute, 5, 5, func(i int) []wile.Reading {
		return []wile.Reading{wile.Counter(uint32(140 * i))}
	})

	phone := wile.NewScanner(sched, med, wile.ScannerConfig{
		Name: "phone", Position: wile.Position{X: 3, Y: 3},
	})
	phone.Start()

	// Render the dashboard every 10 virtual minutes for an hour.
	for tick := 1; tick <= 6; tick++ {
		sched.RunFor(10 * time.Minute)
		fmt.Printf("── %2d min ─────────────────────────────────────────────\n", tick*10)
		for _, d := range phone.Devices() {
			info, ok := known[d.DeviceID]
			if !ok {
				continue
			}
			age := sched.Now().Sub(d.LastSeen).Round(time.Second)
			fmt.Printf("  %-12s %-24s %4d msgs  %v  %v ago\n",
				info.name, info.render(d.Last), d.Messages, d.LastRSSI, age)
		}
	}
	fmt.Printf("\nphone saw %d Wi-LE beacons and ignored %d beacons from %q\n",
		phone.Stats.BeaconsSeen, phone.Stats.OtherBeacons, "home-wifi")
}
