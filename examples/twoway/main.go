// Two-way: the §6 extension. "An IoT device that utilizes Wi-LE can
// indicate in some beacon frames that it will be ready to receive packets
// for a short time slot after the current beacon. This way the waiting
// period will be limited to the time slots specified by the IoT device and
// therefore the power consumption is reduced significantly."
//
// A smart irrigation valve reports soil moisture every minute and opens a
// 30 ms receive window after each report. The base station queues commands
// whenever the soil gets too dry; the valve receives them inside its next
// window without ever keeping its radio on between reports. The example
// prints the energy cost of the windows to show why announced slots beat
// always-on listening by orders of magnitude.
//
//	go run ./examples/twoway
package main

import (
	"fmt"
	"time"

	"wile"
)

func main() {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))

	const valveID = 0x3001
	valve := wile.NewSensor(sched, med, wile.SensorConfig{
		DeviceID: valveID,
		Period:   time.Minute,
		Position: wile.Position{X: 0, Y: 0},
		RxWindow: 30 * time.Millisecond,
	})
	moisture := 31.0
	watering := false
	valve.Sample = func() []wile.Reading {
		if watering {
			moisture += 2.5
			if moisture > 33 {
				watering = false
			}
		} else {
			moisture -= 0.8
		}
		return []wile.Reading{wile.Humidity(moisture)}
	}
	valve.OnDownlink = func(m *wile.Message) {
		cmd := string(m.Readings[0].Raw)
		fmt.Printf("[%v] valve: received command %q in the rx window\n", sched.Now(), cmd)
		if cmd == "water-on" {
			watering = true
		}
	}

	base := wile.NewResponder(sched, med, "base-station", wile.Position{X: 3, Y: 0}, 6)

	// The base station watches the reports and queues commands.
	monitor := wile.NewScanner(sched, med, wile.ScannerConfig{
		Name: "base-monitor", Position: wile.Position{X: 3, Y: 0},
	})
	monitor.OnMessage = func(m *wile.Message, meta wile.Meta) {
		pct := m.Readings[0].Percent()
		fmt.Printf("[%v] base: moisture %.1f%%", meta.At, pct)
		if pct < 28 && !base.PendingFor(valveID) {
			base.Queue(valveID, []wile.Reading{wile.RawReading([]byte("water-on"))})
			fmt.Printf("  → too dry, queueing water-on for the next window")
		}
		fmt.Println()
	}
	monitor.Start()

	valve.Run()
	sched.RunFor(15 * time.Minute)
	valve.Stop()

	fmt.Println()
	fmt.Printf("15 minutes: %d reports, %d downlink commands received\n",
		valve.Stats.Messages, valve.Stats.Downlinks)
	windowCost := 0.030 * 0.100 * 3.3 // 30 ms radio-on at ~100 mA, 3.3 V
	fmt.Printf("each announced window costs ≈%.1f mJ; always-on listening would cost %.0f mJ/minute\n",
		windowCost*1000, 0.100*3.3*60*1000/1000)
}
