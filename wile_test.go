package wile_test

import (
	"testing"
	"time"

	"wile"
	"wile/internal/dot11"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow end to
// end through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))

	sensor := wile.NewSensor(sched, med, wile.SensorConfig{
		DeviceID: 0x1001,
		Period:   10 * time.Second,
	})
	temp := 20.0
	sensor.Sample = func() []wile.Reading {
		temp += 0.5
		return []wile.Reading{wile.Temperature(temp), wile.Battery(2950)}
	}

	scanner := wile.NewScanner(sched, med, wile.ScannerConfig{Position: wile.Position{X: 2}})
	var got []*wile.Message
	scanner.OnMessage = func(m *wile.Message, meta wile.Meta) { got = append(got, m) }
	scanner.Start()

	sensor.Run()
	sched.RunFor(35 * time.Second)
	sensor.Stop()

	if len(got) != 3 {
		t.Fatalf("received %d messages, want 3", len(got))
	}
	if got[2].Readings[0].Celsius() != 21.5 {
		t.Fatalf("last temperature %v", got[2].Readings[0].Celsius())
	}
	if got[0].Readings[1].Value != 2950 {
		t.Fatalf("battery %v", got[0].Readings[1].Value)
	}
	rec, ok := scanner.Device(0x1001)
	if !ok || rec.Messages != 3 || rec.Lost != 0 {
		t.Fatalf("device record: %+v", rec)
	}
}

func TestPublicAPIEncrypted(t *testing.T) {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(11))
	key, err := wile.NewKey([]byte("sixteen byte key"))
	if err != nil {
		t.Fatal(err)
	}
	sensor := wile.NewSensor(sched, med, wile.SensorConfig{DeviceID: 9, Key: key, SkipBoot: true})
	scanner := wile.NewScanner(sched, med, wile.ScannerConfig{DefaultKey: key, Position: wile.Position{X: 1}})
	scanner.Start()
	var got *wile.Message
	scanner.OnMessage = func(m *wile.Message, meta wile.Meta) { got = m }
	sensor.TransmitOnce([]wile.Reading{wile.Counter(42)}, nil)
	sched.RunFor(time.Second)
	if got == nil || got.Readings[0].Value != 42 {
		t.Fatalf("encrypted quickstart: %+v", got)
	}
}

func TestPublicAPIBeaconBytes(t *testing.T) {
	msg := &wile.Message{DeviceID: 0x42, Seq: 1, Readings: []wile.Reading{wile.Temperature(17)}}
	beacon, err := wile.BuildBeacon(0x42, 6, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := dot11.Marshal(beacon)
	if err != nil {
		t.Fatal(err)
	}
	// A minimal Wi-LE beacon is well under 100 bytes on the air.
	if len(raw) < 50 || len(raw) > 120 {
		t.Fatalf("beacon is %d bytes", len(raw))
	}
	back, err := dot11.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := wile.DecodeBeacon(back.(*dot11.Beacon), nil)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.DeviceID != 0x42 || decoded.Readings[0].Celsius() != 17 {
		t.Fatalf("decoded: %+v", decoded)
	}
}

func TestPublicAPITwoWay(t *testing.T) {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))
	sensor := wile.NewSensor(sched, med, wile.SensorConfig{
		DeviceID: 7, RxWindow: 20 * time.Millisecond, SkipBoot: true,
	})
	base := wile.NewResponder(sched, med, "base", wile.Position{X: 2}, 6)
	base.Queue(7, []wile.Reading{wile.RawReading([]byte("ack"))})
	var down *wile.Message
	sensor.OnDownlink = func(m *wile.Message) { down = m }
	sensor.TransmitOnce([]wile.Reading{wile.Counter(1)}, nil)
	sched.RunFor(time.Second)
	if down == nil || string(down.Readings[0].Raw) != "ack" {
		t.Fatalf("two-way through public API: %+v", down)
	}
}
