package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 64} {
		p := New(workers)
		out, err := Map(p, 100, func(i int) (int, error) {
			// Uneven work so completion order differs from input order.
			v := 0
			for j := 0; j < (i%7)*1000; j++ {
				v += j
			}
			_ = v
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmptyAndSinglePoint(t *testing.T) {
	p := New(8)
	out, err := Map(p, 0, func(int) (int, error) { return 0, errors.New("never called") })
	if err != nil || out != nil {
		t.Fatalf("n=0: %v, %v", out, err)
	}
	out, err = Map(p, 1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("n=1: %v, %v", out, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Several points fail; the reported error must be the one a serial
	// loop hits first, regardless of worker count or completion order.
	for _, workers := range []int{1, 3, 8} {
		p := New(workers)
		_, err := Map(p, 50, func(i int) (int, error) {
			if i%9 == 4 { // fails at 4, 13, 22, ...
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 4 failed" {
			t.Fatalf("workers=%d: err = %v, want point 4", workers, err)
		}
	}
}

func TestMapRunsEveryPointDespiteErrors(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(New(4), 32, func(i int) (int, error) {
		calls.Add(1)
		return 0, fmt.Errorf("point %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 32 {
		t.Fatalf("fn ran %d times, want 32", calls.Load())
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := Serial().Workers(); got != 1 {
		t.Fatalf("Serial().Workers() = %d", got)
	}
}

func TestSubSeedStableAndDecorrelated(t *testing.T) {
	// Stable: a pure function of (base, index).
	if SubSeed(7, 3) != SubSeed(7, 3) {
		t.Fatal("SubSeed not deterministic")
	}
	// Distinct across adjacent indices and across bases.
	seen := map[uint64]string{}
	for base := uint64(0); base < 4; base++ {
		for i := 0; i < 256; i++ {
			s := SubSeed(base, i)
			key := fmt.Sprintf("base %d index %d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SubSeed collision: %s and %s -> %#x", prev, key, s)
			}
			seen[s] = key
		}
	}
	// Bit mixing: adjacent indices differ in many bits, not just the low
	// ones (SplitMix64's avalanche property).
	a, b := SubSeed(1, 0), SubSeed(1, 1)
	diff := 0
	for x := a ^ b; x != 0; x &= x - 1 {
		diff++
	}
	if diff < 16 {
		t.Fatalf("adjacent sub-seeds differ in only %d bits", diff)
	}
}

func TestMapSeededDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(p *Pool) []uint64 {
		out, err := MapSeeded(p, 0x51ed, 64, func(i int, seed uint64) (uint64, error) {
			// A toy "simulation": a few PRNG-ish steps from the seed.
			x := seed
			for j := 0; j < 10+i%3; j++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			return x, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(Serial())
	for _, workers := range []int{2, 4, 8} {
		got := run(New(workers))
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: point %d differs from serial", workers, i)
			}
		}
	}
}

func TestPoolConcurrentMapsStress(t *testing.T) {
	// Many Maps in flight on shared pools; run under -race in CI. The
	// shared counter checks every point of every sweep ran exactly once.
	pools := []*Pool{New(2), New(8), Serial()}
	var total atomic.Int64
	var wg sync.WaitGroup
	const sweeps, points = 24, 200
	for s := 0; s < sweeps; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			p := pools[s%len(pools)]
			out, err := Map(p, points, func(i int) (int, error) {
				total.Add(1)
				return i, nil
			})
			if err != nil {
				t.Errorf("sweep %d: %v", s, err)
				return
			}
			for i, v := range out {
				if v != i {
					t.Errorf("sweep %d: out[%d] = %d", s, i, v)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if total.Load() != sweeps*points {
		t.Fatalf("ran %d points, want %d", total.Load(), sweeps*points)
	}
}
