// Package engine is the parallel experiment runner: it shards independent
// sweep points (Figure 4 intervals, ablation settings, Table 1 scenarios)
// across a pool of goroutines while preserving the serial path's
// determinism bit for bit.
//
// The determinism contract has three legs:
//
//  1. Every sweep point builds its own simulation world. Points share no
//     kernel, no medium and no PRNG, so execution order cannot leak
//     between them.
//  2. Seeds are a pure function of the point's index: SubSeed derives a
//     per-point seed from (base, index) with the same SplitMix64 chain
//     sim.NewRand uses internally, so a point's randomness is identical
//     whether it runs first on one worker or last on sixteen.
//  3. Results land in a slice indexed by the point's input position, and
//     errors are reported for the lowest failing index — the same error
//     a serial for-loop would have returned first.
//
// Under that contract Map's output is byte-identical to the inline loop
// regardless of GOMAXPROCS, worker count or completion order.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"wile/internal/obs"
)

// Pool is a worker-count policy for sweeps. The zero value is not valid;
// use New. Pools carry no goroutines between calls — workers are spawned
// per Map and exit when the sweep drains, so an idle Pool costs nothing
// and Pools are safe for concurrent use.
type Pool struct {
	workers int
	mu      sync.Mutex
	metrics *Metrics // guarded by mu
}

// Metrics is the engine's view into a metrics registry: sweep and point
// throughput, the configured worker count, and the sweep-size distribution.
// All fields are fed from the caller's goroutine at Map entry, before any
// worker runs, so snapshots stay deterministic under the engine's
// GOMAXPROCS-independence contract.
type Metrics struct {
	Sweeps      *obs.Counter
	Points      *obs.Counter
	Workers     *obs.Gauge
	SweepPoints *obs.Histogram
}

// NewMetrics returns the registry's engine metrics, registering them on
// first use.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Sweeps:      reg.Counter("engine.sweeps"),
		Points:      reg.Counter("engine.points"),
		Workers:     reg.Gauge("engine.workers"),
		SweepPoints: reg.Histogram("engine.sweep_points", []float64{1, 4, 16, 64, 256}),
	}
}

// Observe attaches metrics to the pool. Passing nil detaches. Observe may
// race a concurrent Map (Pools are safe for concurrent use), so the
// attachment itself is mutex-guarded.
func (p *Pool) Observe(m *Metrics) {
	p.mu.Lock()
	p.metrics = m
	p.mu.Unlock()
	if m != nil {
		m.Workers.Set(float64(p.workers))
	}
}

// New returns a pool that runs sweeps on the given number of workers.
// workers <= 0 selects runtime.GOMAXPROCS(0), the "as fast as the
// hardware allows" default.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Serial returns the one-worker pool: Map runs inline on the caller's
// goroutine. This is the reference path the parallel runs must match.
func Serial() *Pool { return New(1) }

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// SubSeed derives the seed for sweep point i from a base seed using the
// SplitMix64 step — the seeding discipline sim.NewRand applies to expand
// one word into generator state. Derived seeds are decorrelated between
// adjacent indices and depend only on (base, i), never on scheduling.
func SubSeed(base uint64, i int) uint64 {
	x := base + (uint64(i)+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Map evaluates fn(i) for every i in [0, n) on the pool and returns the
// results in input order. fn must be safe for concurrent invocation on
// distinct indices (each sweep point owns its world). If any point fails,
// Map returns the error of the lowest failing index — exactly the error a
// serial loop would surface — after all in-flight points finish; results
// are discarded on error.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	p.mu.Lock()
	m := p.metrics
	p.mu.Unlock()
	if m != nil {
		m.Sweeps.Inc()
		m.Points.Add(int64(n))
		m.SweepPoints.Observe(float64(n))
	}
	out := make([]T, n)
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapSeeded is Map with the point's SubSeed(base, i) passed alongside its
// index, for sweeps whose worlds draw randomness.
func MapSeeded[T any](p *Pool, base uint64, n int, fn func(i int, seed uint64) (T, error)) ([]T, error) {
	return Map(p, n, func(i int) (T, error) { return fn(i, SubSeed(base, i)) })
}

// MapValues is Map for point functions that cannot fail. It exists so
// infallible sweeps (pure Equation-1 evaluations, closed-form models)
// keep their error-free signatures when they move onto the engine.
func MapValues[T any](p *Pool, n int, fn func(i int) T) []T {
	out, err := Map(p, n, func(i int) (T, error) { return fn(i), nil })
	if err != nil {
		// Unreachable: the point function never returns an error.
		panic("engine: MapValues: " + err.Error())
	}
	return out
}
