package netstack

import (
	"encoding/binary"
	"fmt"
)

// IP is an IPv4 address. A value type for the same reasons dot11.MAC is.
type IP [4]byte

// Well-known addresses.
var (
	IPZero      = IP{0, 0, 0, 0}
	IPBroadcast = IP{255, 255, 255, 255}
)

// String implements fmt.Stringer.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IP, error) {
	var ip IP
	var field, idx int
	seen := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if !seen || idx > 3 {
				return IP{}, fmt.Errorf("netstack: bad IPv4 %q", s)
			}
			ip[idx] = byte(field)
			idx++
			field, seen = 0, false
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return IP{}, fmt.Errorf("netstack: bad IPv4 %q", s)
		}
		field = field*10 + int(c-'0')
		if field > 255 {
			return IP{}, fmt.Errorf("netstack: bad IPv4 %q: octet overflow", s)
		}
		seen = true
	}
	if idx != 4 {
		return IP{}, fmt.Errorf("netstack: bad IPv4 %q: %d octets", s, idx)
	}
	return ip, nil
}

// MustParseIP is ParseIP for constants.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(fmt.Sprintf("netstack: MustParseIP: %v", err))
	}
	return ip
}

// IP protocol numbers.
const (
	ProtoUDP = 17
)

// IPv4Header is a fixed 20-byte IPv4 header (no options — nothing in this
// stack emits them).
type IPv4Header struct {
	TTL      uint8
	Protocol uint8
	Src, Dst IP
	// ID is the identification field; the stack increments it per packet.
	ID uint16
}

const ipv4HeaderLen = 20

// Checksum computes the RFC 1071 internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}

// AppendIPv4 serializes h+payload as a complete IPv4 packet.
func AppendIPv4(dst []byte, h IPv4Header, payload []byte) []byte {
	start := len(dst)
	total := ipv4HeaderLen + len(payload)
	dst = append(dst, 0x45, 0) // version 4, IHL 5, DSCP 0
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	dst = binary.BigEndian.AppendUint16(dst, h.ID)
	dst = binary.BigEndian.AppendUint16(dst, 0) // flags+fragment
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	dst = append(dst, ttl, h.Protocol, 0, 0) // checksum placeholder
	dst = append(dst, h.Src[:]...)
	dst = append(dst, h.Dst[:]...)
	ck := Checksum(dst[start : start+ipv4HeaderLen])
	binary.BigEndian.PutUint16(dst[start+10:], ck)
	return append(dst, payload...)
}

// ParseIPv4 decodes an IPv4 packet, verifying the header checksum and
// returning the header and payload (aliasing b).
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(b) < ipv4HeaderLen {
		return h, nil, fmt.Errorf("netstack: IPv4 packet too short: %d bytes", len(b))
	}
	if b[0]>>4 != 4 {
		return h, nil, fmt.Errorf("netstack: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return h, nil, fmt.Errorf("netstack: bad IHL %d", ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return h, nil, fmt.Errorf("netstack: IPv4 header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ihl || total > len(b) {
		return h, nil, fmt.Errorf("netstack: IPv4 total length %d out of range", total)
	}
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, b[ihl:total], nil
}

// UDPHeader describes one UDP datagram.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

const udpHeaderLen = 8

// AppendUDP serializes a UDP datagram (checksum 0 = unused, valid for
// IPv4, which keeps the encoder independent of the pseudo-header).
func AppendUDP(dst []byte, h UDPHeader, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, h.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, h.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(udpHeaderLen+len(payload)))
	dst = binary.BigEndian.AppendUint16(dst, 0)
	return append(dst, payload...)
}

// ParseUDP decodes a UDP datagram.
func ParseUDP(b []byte) (UDPHeader, []byte, error) {
	var h UDPHeader
	if len(b) < udpHeaderLen {
		return h, nil, fmt.Errorf("netstack: UDP datagram too short: %d bytes", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b)
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length < udpHeaderLen || length > len(b) {
		return h, nil, fmt.Errorf("netstack: UDP length %d out of range", length)
	}
	return h, b[udpHeaderLen:length], nil
}
