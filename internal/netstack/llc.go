// Package netstack implements the minimal above-MAC stack a WiFi client
// must speak before it can deliver one application byte: LLC/SNAP
// encapsulation, ARP, IPv4, UDP and DHCP.
//
// The paper's §3.1 counts the cost precisely: "in addition to these 20
// MAC-layer frames, 7 higher-layer frames including DHCP and ARP have to be
// transmitted before a client device can transmit to the AP". Those seven
// frames are built and parsed by this package, so the Figure 3a DHCP/ARP
// phase in the simulation carries real bytes with real lengths.
package netstack

import (
	"encoding/binary"
	"fmt"
)

// EtherType identifies the payload protocol in a SNAP header.
type EtherType uint16

// EtherTypes used by the stack.
const (
	EtherTypeIPv4  EtherType = 0x0800
	EtherTypeARP   EtherType = 0x0806
	EtherTypeEAPOL EtherType = 0x888e
)

// snapHeader is the 8-byte LLC/SNAP prefix 802.11 data frames use to carry
// Ethernet protocols: DSAP=AA SSAP=AA ctrl=03, OUI 00-00-00, ethertype.
var snapPrefix = [6]byte{0xaa, 0xaa, 0x03, 0x00, 0x00, 0x00}

// SNAPLen is the encapsulation overhead per MSDU.
const SNAPLen = 8

// WrapSNAP prepends the LLC/SNAP header for et onto payload.
func WrapSNAP(et EtherType, payload []byte) []byte {
	out := make([]byte, 0, SNAPLen+len(payload))
	out = append(out, snapPrefix[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(et))
	return append(out, payload...)
}

// UnwrapSNAP validates and strips the LLC/SNAP header, returning the
// ethertype and inner payload (aliasing msdu).
func UnwrapSNAP(msdu []byte) (EtherType, []byte, error) {
	if len(msdu) < SNAPLen {
		return 0, nil, fmt.Errorf("netstack: MSDU too short for LLC/SNAP: %d bytes", len(msdu))
	}
	for i, b := range snapPrefix {
		if msdu[i] != b {
			return 0, nil, fmt.Errorf("netstack: not an LLC/SNAP header (byte %d = %#x)", i, msdu[i])
		}
	}
	return EtherType(binary.BigEndian.Uint16(msdu[6:8])), msdu[8:], nil
}
