package netstack

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"
)

// DHCP (RFC 2131) — the four-message DISCOVER/OFFER/REQUEST/ACK exchange a
// reconnecting WiFi-DC client runs on every wake. Figure 3a's long 20–30 mA
// plateau is mostly the client idling in automatic light sleep while it
// waits for these messages.

// DHCPOp is the BOOTP op field.
type DHCPOp uint8

// BOOTP ops.
const (
	BootRequest DHCPOp = 1
	BootReply   DHCPOp = 2
)

// DHCPType is option 53, the DHCP message type.
type DHCPType uint8

// DHCP message types.
const (
	DHCPDiscover DHCPType = 1
	DHCPOffer    DHCPType = 2
	DHCPRequest  DHCPType = 3
	DHCPDecline  DHCPType = 4
	DHCPAck      DHCPType = 5
	DHCPNak      DHCPType = 6
	DHCPRelease  DHCPType = 7
)

// DHCP option codes used by this stack.
const (
	OptSubnetMask   = 1
	OptRouter       = 3
	OptDNS          = 6
	OptRequestedIP  = 50
	OptLeaseTime    = 51
	OptMessageType  = 53
	OptServerID     = 54
	OptParamRequest = 55
	OptEnd          = 255
)

var dhcpMagic = [4]byte{99, 130, 83, 99}

// UDP ports.
const (
	DHCPServerPort = 67
	DHCPClientPort = 68
)

// DHCPOption is one TLV option.
type DHCPOption struct {
	Code byte
	Data []byte
}

// DHCP is a decoded DHCP message.
type DHCP struct {
	Op      DHCPOp
	XID     uint32
	Secs    uint16
	Flags   uint16
	CIAddr  IP // client's current address
	YIAddr  IP // "your" address (assigned)
	SIAddr  IP // next server
	GIAddr  IP // relay
	CHAddr  [6]byte
	Options []DHCPOption
}

const dhcpFixedLen = 236 + 4 // BOOTP fields + magic

// Append serializes the message.
func (d *DHCP) Append(dst []byte) []byte {
	dst = append(dst, byte(d.Op), 1, 6, 0) // htype Ethernet, hlen 6, hops 0
	dst = binary.BigEndian.AppendUint32(dst, d.XID)
	dst = binary.BigEndian.AppendUint16(dst, d.Secs)
	dst = binary.BigEndian.AppendUint16(dst, d.Flags)
	dst = append(dst, d.CIAddr[:]...)
	dst = append(dst, d.YIAddr[:]...)
	dst = append(dst, d.SIAddr[:]...)
	dst = append(dst, d.GIAddr[:]...)
	dst = append(dst, d.CHAddr[:]...)
	dst = append(dst, make([]byte, 10)...)  // chaddr padding
	dst = append(dst, make([]byte, 64)...)  // sname
	dst = append(dst, make([]byte, 128)...) // file
	dst = append(dst, dhcpMagic[:]...)
	for _, o := range d.Options {
		dst = append(dst, o.Code, byte(len(o.Data)))
		dst = append(dst, o.Data...)
	}
	return append(dst, OptEnd)
}

// ParseDHCP decodes a DHCP message.
func ParseDHCP(b []byte) (*DHCP, error) {
	if len(b) < dhcpFixedLen {
		return nil, fmt.Errorf("netstack: DHCP too short: %d bytes", len(b))
	}
	if !bytes.Equal(b[236:240], dhcpMagic[:]) {
		return nil, fmt.Errorf("netstack: DHCP magic cookie missing")
	}
	d := &DHCP{
		Op:    DHCPOp(b[0]),
		XID:   binary.BigEndian.Uint32(b[4:]),
		Secs:  binary.BigEndian.Uint16(b[8:]),
		Flags: binary.BigEndian.Uint16(b[10:]),
	}
	copy(d.CIAddr[:], b[12:16])
	copy(d.YIAddr[:], b[16:20])
	copy(d.SIAddr[:], b[20:24])
	copy(d.GIAddr[:], b[24:28])
	copy(d.CHAddr[:], b[28:34])
	opts := b[240:]
	for len(opts) > 0 {
		code := opts[0]
		if code == OptEnd {
			break
		}
		if code == 0 { // pad
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return nil, fmt.Errorf("netstack: DHCP option %d truncated", code)
		}
		n := int(opts[1])
		if len(opts) < 2+n {
			return nil, fmt.Errorf("netstack: DHCP option %d claims %d bytes, have %d", code, n, len(opts)-2)
		}
		d.Options = append(d.Options, DHCPOption{Code: code, Data: opts[2 : 2+n]})
		opts = opts[2+n:]
	}
	return d, nil
}

// Option returns the first option with the given code.
func (d *DHCP) Option(code byte) ([]byte, bool) {
	for _, o := range d.Options {
		if o.Code == code {
			return o.Data, true
		}
	}
	return nil, false
}

// Type returns the message type from option 53.
func (d *DHCP) Type() (DHCPType, bool) {
	data, ok := d.Option(OptMessageType)
	if !ok || len(data) != 1 {
		return 0, false
	}
	return DHCPType(data[0]), true
}

// typeOption builds option 53.
func typeOption(t DHCPType) DHCPOption {
	return DHCPOption{Code: OptMessageType, Data: []byte{byte(t)}}
}

// ipOption builds a 4-byte IP option.
func ipOption(code byte, ip IP) DHCPOption {
	return DHCPOption{Code: code, Data: append([]byte(nil), ip[:]...)}
}

// NewDiscover builds a DHCPDISCOVER for the given client hardware address.
func NewDiscover(xid uint32, chaddr [6]byte) *DHCP {
	return &DHCP{
		Op: BootRequest, XID: xid, Flags: 0x8000 /* broadcast */, CHAddr: chaddr,
		Options: []DHCPOption{
			typeOption(DHCPDiscover),
			{Code: OptParamRequest, Data: []byte{OptSubnetMask, OptRouter, OptDNS}},
		},
	}
}

// NewRequest builds a DHCPREQUEST accepting offer.
func NewRequest(offer *DHCP) *DHCP {
	req := &DHCP{
		Op: BootRequest, XID: offer.XID, Flags: 0x8000, CHAddr: offer.CHAddr,
		Options: []DHCPOption{
			typeOption(DHCPRequest),
			ipOption(OptRequestedIP, offer.YIAddr),
		},
	}
	if sid, ok := offer.Option(OptServerID); ok && len(sid) == 4 {
		req.Options = append(req.Options, DHCPOption{Code: OptServerID, Data: append([]byte(nil), sid...)})
	}
	return req
}

// DHCPServer hands out addresses from a /24 pool, mirroring the Google
// WiFi AP's built-in server.
type DHCPServer struct {
	// ServerIP is the server (and router) address.
	ServerIP IP
	// Mask is the subnet mask.
	Mask IP
	// Lease is the offered lease duration.
	Lease time.Duration

	nextHost byte
	leases   map[[6]byte]IP
}

// NewDHCPServer builds a server for serverIP's /24.
func NewDHCPServer(serverIP IP) *DHCPServer {
	return &DHCPServer{
		ServerIP: serverIP,
		Mask:     IP{255, 255, 255, 0},
		Lease:    24 * time.Hour,
		nextHost: 100,
		leases:   make(map[[6]byte]IP),
	}
}

// lookupOrAssign finds or creates a lease for chaddr.
func (s *DHCPServer) lookupOrAssign(chaddr [6]byte) IP {
	if ip, ok := s.leases[chaddr]; ok {
		return ip
	}
	ip := s.ServerIP
	ip[3] = s.nextHost
	s.nextHost++
	s.leases[chaddr] = ip
	return ip
}

// HardwareFor reports the MAC holding a lease on ip, if any — the lookup
// an AP's bridging path needs to map a destination IP to a station.
func (s *DHCPServer) HardwareFor(ip IP) ([6]byte, bool) {
	for hw, leased := range s.leases {
		if leased == ip {
			return hw, true
		}
	}
	return [6]byte{}, false
}

// Handle consumes a client message and returns the server's reply, or nil
// for messages that need none.
func (s *DHCPServer) Handle(msg *DHCP) *DHCP {
	t, ok := msg.Type()
	if !ok || msg.Op != BootRequest {
		return nil
	}
	common := func(t DHCPType, ip IP) *DHCP {
		lease := uint32(s.Lease / time.Second)
		var leaseBytes [4]byte
		binary.BigEndian.PutUint32(leaseBytes[:], lease)
		return &DHCP{
			Op: BootReply, XID: msg.XID, Flags: msg.Flags,
			YIAddr: ip, SIAddr: s.ServerIP, CHAddr: msg.CHAddr,
			Options: []DHCPOption{
				typeOption(t),
				ipOption(OptServerID, s.ServerIP),
				{Code: OptLeaseTime, Data: leaseBytes[:]},
				ipOption(OptSubnetMask, s.Mask),
				ipOption(OptRouter, s.ServerIP),
				ipOption(OptDNS, s.ServerIP),
			},
		}
	}
	switch t {
	case DHCPDiscover:
		return common(DHCPOffer, s.lookupOrAssign(msg.CHAddr))
	case DHCPRequest:
		want, ok := msg.Option(OptRequestedIP)
		assigned := s.lookupOrAssign(msg.CHAddr)
		if ok && len(want) == 4 && (IP{want[0], want[1], want[2], want[3]}) != assigned {
			nak := common(DHCPNak, IPZero)
			nak.Options = nak.Options[:2] // type + server id only
			return nak
		}
		return common(DHCPAck, assigned)
	case DHCPRelease:
		delete(s.leases, msg.CHAddr)
		return nil
	}
	return nil
}

// DHCPClient drives the client half of the exchange. The caller feeds it
// received messages and transmits the messages it returns.
type DHCPClient struct {
	xid    uint32
	chaddr [6]byte
	// Assigned is the leased address; valid once Done.
	Assigned IP
	// Router is the default gateway from the ACK.
	Router IP
	state  int // 0 idle, 1 discovering, 2 requesting, 3 bound
}

// NewDHCPClient builds a client for the given hardware address.
func NewDHCPClient(xid uint32, chaddr [6]byte) *DHCPClient {
	return &DHCPClient{xid: xid, chaddr: chaddr}
}

// Discover produces the initial DISCOVER.
func (c *DHCPClient) Discover() *DHCP {
	c.state = 1
	return NewDiscover(c.xid, c.chaddr)
}

// Handle consumes a server message and returns the client's next message,
// or nil when the exchange is complete (or the message is not for us).
func (c *DHCPClient) Handle(msg *DHCP) (*DHCP, error) {
	if msg.XID != c.xid || msg.Op != BootReply || msg.CHAddr != c.chaddr {
		return nil, nil // not ours; ignore silently like a real client
	}
	t, ok := msg.Type()
	if !ok {
		return nil, fmt.Errorf("netstack: DHCP reply without message type")
	}
	switch {
	case c.state == 1 && t == DHCPOffer:
		c.state = 2
		return NewRequest(msg), nil
	case c.state == 2 && t == DHCPAck:
		c.state = 3
		c.Assigned = msg.YIAddr
		if r, ok := msg.Option(OptRouter); ok && len(r) == 4 {
			c.Router = IP{r[0], r[1], r[2], r[3]}
		}
		return nil, nil
	case c.state == 2 && t == DHCPNak:
		c.state = 0
		return nil, fmt.Errorf("netstack: DHCP NAK")
	}
	return nil, nil
}

// Done reports whether the client holds a lease.
func (c *DHCPClient) Done() bool { return c.state == 3 }
