package netstack

import (
	"encoding/binary"
	"fmt"
)

// ARP (RFC 826) over Ethernet/IPv4 — the last of the "7 higher-layer
// frames": after DHCP completes, the client ARPs for the AP/gateway MAC
// before it can address its first data packet.

// ARPOp is the ARP operation.
type ARPOp uint16

// ARP operations.
const (
	ARPRequest ARPOp = 1
	ARPReply   ARPOp = 2
)

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	Op ARPOp
	// SenderHW/SenderIP identify the sender.
	SenderHW [6]byte
	SenderIP IP
	// TargetHW is zero in requests.
	TargetHW [6]byte
	TargetIP IP
}

const arpLen = 28

// Append serializes the packet.
func (a *ARP) Append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, 1)      // hardware: Ethernet
	dst = binary.BigEndian.AppendUint16(dst, 0x0800) // protocol: IPv4
	dst = append(dst, 6, 4)
	dst = binary.BigEndian.AppendUint16(dst, uint16(a.Op))
	dst = append(dst, a.SenderHW[:]...)
	dst = append(dst, a.SenderIP[:]...)
	dst = append(dst, a.TargetHW[:]...)
	return append(dst, a.TargetIP[:]...)
}

// ParseARP decodes an Ethernet/IPv4 ARP packet.
func ParseARP(b []byte) (*ARP, error) {
	if len(b) < arpLen {
		return nil, fmt.Errorf("netstack: ARP too short: %d bytes", len(b))
	}
	if binary.BigEndian.Uint16(b) != 1 || binary.BigEndian.Uint16(b[2:]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return nil, fmt.Errorf("netstack: not an Ethernet/IPv4 ARP packet")
	}
	a := &ARP{Op: ARPOp(binary.BigEndian.Uint16(b[6:]))}
	copy(a.SenderHW[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetHW[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}

// NewARPRequest builds a who-has request.
func NewARPRequest(senderHW [6]byte, senderIP, targetIP IP) *ARP {
	return &ARP{Op: ARPRequest, SenderHW: senderHW, SenderIP: senderIP, TargetIP: targetIP}
}

// Reply builds the matching is-at reply from the responder's bindings.
func (a *ARP) Reply(hw [6]byte) (*ARP, error) {
	if a.Op != ARPRequest {
		return nil, fmt.Errorf("netstack: cannot reply to ARP op %d", a.Op)
	}
	return &ARP{
		Op:       ARPReply,
		SenderHW: hw,
		SenderIP: a.TargetIP,
		TargetHW: a.SenderHW,
		TargetIP: a.SenderIP,
	}, nil
}
