package netstack

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSNAPRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	msdu := WrapSNAP(EtherTypeIPv4, payload)
	if len(msdu) != SNAPLen+4 {
		t.Fatalf("MSDU length %d", len(msdu))
	}
	et, got, err := UnwrapSNAP(msdu)
	if err != nil {
		t.Fatal(err)
	}
	if et != EtherTypeIPv4 || !bytes.Equal(got, payload) {
		t.Fatalf("et=%04x payload=%x", et, got)
	}
}

func TestSNAPErrors(t *testing.T) {
	if _, _, err := UnwrapSNAP([]byte{0xaa, 0xaa}); err == nil {
		t.Error("short MSDU accepted")
	}
	bad := WrapSNAP(EtherTypeARP, nil)
	bad[0] = 0x42
	if _, _, err := UnwrapSNAP(bad); err == nil {
		t.Error("non-SNAP header accepted")
	}
}

func TestPropertySNAPRoundTrip(t *testing.T) {
	f := func(et uint16, payload []byte) bool {
		gotET, got, err := UnwrapSNAP(WrapSNAP(EtherType(et), payload))
		return err == nil && gotET == EtherType(et) && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPParseFormat(t *testing.T) {
	ip, err := ParseIP("192.168.86.1")
	if err != nil {
		t.Fatal(err)
	}
	if ip != (IP{192, 168, 86, 1}) || ip.String() != "192.168.86.1" {
		t.Fatalf("ip = %v", ip)
	}
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.", ".1.2.3"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded", s)
		}
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Classic example from RFC 1071: the one's-complement sum of this
	// sequence is 0xddf2, so the checksum (its complement) is 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("Checksum = %04x, want 220d", got)
	}
	// A buffer with its checksum appended sums to zero — the receiver-side
	// validation identity ParseIPv4 relies on.
	withCk := append(append([]byte(nil), b...), 0x22, 0x0d)
	if got := Checksum(withCk); got != 0 {
		t.Fatalf("Checksum over data+checksum = %04x, want 0", got)
	}
	// Odd length handled.
	_ = Checksum([]byte{1, 2, 3})
}

func TestIPv4RoundTrip(t *testing.T) {
	payload := []byte("hello world")
	h := IPv4Header{Protocol: ProtoUDP, Src: IP{10, 0, 0, 1}, Dst: IP{10, 0, 0, 2}, ID: 42}
	pkt := AppendIPv4(nil, h, payload)
	got, body, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.Protocol != ProtoUDP || got.ID != 42 {
		t.Fatalf("header = %+v", got)
	}
	if got.TTL != 64 {
		t.Fatalf("default TTL = %d", got.TTL)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("payload = %q", body)
	}
}

func TestIPv4ChecksumValidated(t *testing.T) {
	pkt := AppendIPv4(nil, IPv4Header{Protocol: ProtoUDP}, []byte("x"))
	pkt[12] ^= 1 // corrupt src address
	if _, _, err := ParseIPv4(pkt); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4ParseErrors(t *testing.T) {
	if _, _, err := ParseIPv4(make([]byte, 10)); err == nil {
		t.Error("short packet accepted")
	}
	pkt := AppendIPv4(nil, IPv4Header{Protocol: ProtoUDP}, []byte("x"))
	bad := append([]byte(nil), pkt...)
	bad[0] = 0x65 // version 6
	if _, _, err := ParseIPv4(bad); err == nil {
		t.Error("IPv6 version accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte{9, 8, 7}
	dg := AppendUDP(nil, UDPHeader{SrcPort: 68, DstPort: 67}, payload)
	h, body, err := ParseUDP(dg)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != 68 || h.DstPort != 67 || !bytes.Equal(body, payload) {
		t.Fatalf("h=%+v body=%x", h, body)
	}
}

func TestPropertyIPv4UDPStack(t *testing.T) {
	f := func(payload []byte, src, dst [4]byte, sp, dp uint16) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		dg := AppendUDP(nil, UDPHeader{SrcPort: sp, DstPort: dp}, payload)
		pkt := AppendIPv4(nil, IPv4Header{Protocol: ProtoUDP, Src: src, Dst: dst}, dg)
		h, body, err := ParseIPv4(pkt)
		if err != nil || h.Src != IP(src) || h.Dst != IP(dst) {
			return false
		}
		uh, up, err := ParseUDP(body)
		return err == nil && uh.SrcPort == sp && uh.DstPort == dp && bytes.Equal(up, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	req := NewARPRequest([6]byte{1, 2, 3, 4, 5, 6}, IP{10, 0, 0, 5}, IP{10, 0, 0, 1})
	got, err := ParseARP(req.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != ARPRequest || got.SenderIP != (IP{10, 0, 0, 5}) || got.TargetIP != (IP{10, 0, 0, 1}) {
		t.Fatalf("ARP = %+v", got)
	}
}

func TestARPReply(t *testing.T) {
	req := NewARPRequest([6]byte{1, 2, 3, 4, 5, 6}, IP{10, 0, 0, 5}, IP{10, 0, 0, 1})
	apHW := [6]byte{0xaa, 0xbb, 0xcc, 0, 0, 1}
	rep, err := req.Reply(apHW)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Op != ARPReply || rep.SenderHW != apHW || rep.SenderIP != (IP{10, 0, 0, 1}) ||
		rep.TargetHW != req.SenderHW || rep.TargetIP != (IP{10, 0, 0, 5}) {
		t.Fatalf("reply = %+v", rep)
	}
	// Replying to a reply is an error.
	if _, err := rep.Reply(apHW); err == nil {
		t.Fatal("replied to a reply")
	}
}

func TestARPParseErrors(t *testing.T) {
	if _, err := ParseARP(make([]byte, 27)); err == nil {
		t.Error("short ARP accepted")
	}
	req := NewARPRequest([6]byte{1}, IPZero, IPZero).Append(nil)
	req[0] = 9 // bad hardware type
	if _, err := ParseARP(req); err == nil {
		t.Error("bad hardware type accepted")
	}
}

func TestDHCPRoundTrip(t *testing.T) {
	d := NewDiscover(0xdeadbeef, [6]byte{1, 2, 3, 4, 5, 6})
	got, err := ParseDHCP(d.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 0xdeadbeef || got.Op != BootRequest || got.CHAddr != d.CHAddr {
		t.Fatalf("DHCP = %+v", got)
	}
	if tp, ok := got.Type(); !ok || tp != DHCPDiscover {
		t.Fatalf("type = %v, %v", tp, ok)
	}
	if got.Flags&0x8000 == 0 {
		t.Fatal("broadcast flag lost")
	}
}

func TestDHCPParseErrors(t *testing.T) {
	if _, err := ParseDHCP(make([]byte, 100)); err == nil {
		t.Error("short DHCP accepted")
	}
	d := NewDiscover(1, [6]byte{}).Append(nil)
	bad := append([]byte(nil), d...)
	bad[236] = 0 // break magic
	if _, err := ParseDHCP(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated option.
	trunc := append([]byte(nil), d[:dhcpFixedLen]...)
	trunc = append(trunc, OptMessageType, 5, 1)
	if _, err := ParseDHCP(trunc); err == nil {
		t.Error("truncated option accepted")
	}
}

func TestDHCPFullExchange(t *testing.T) {
	// The canonical 4-message exchange: this is the protocol content of
	// Figure 3a's "DHCP/ARP" phase.
	server := NewDHCPServer(IP{192, 168, 86, 1})
	client := NewDHCPClient(0x1234, [6]byte{0xde, 0xad, 0xbe, 0xef, 0, 1})

	var messages int
	msg := client.Discover()
	messages++
	for msg != nil {
		reply := server.Handle(msg)
		if reply == nil {
			break
		}
		messages++
		next, err := client.Handle(reply)
		if err != nil {
			t.Fatal(err)
		}
		msg = next
		if msg != nil {
			messages++
		}
	}
	if !client.Done() {
		t.Fatal("client never bound")
	}
	if messages != 4 {
		t.Fatalf("exchange took %d messages, want 4 (DISCOVER/OFFER/REQUEST/ACK)", messages)
	}
	if client.Assigned[3] < 100 || client.Assigned[0] != 192 {
		t.Fatalf("assigned %v", client.Assigned)
	}
	if client.Router != (IP{192, 168, 86, 1}) {
		t.Fatalf("router %v", client.Router)
	}
}

func TestDHCPServerStableLease(t *testing.T) {
	server := NewDHCPServer(IP{10, 0, 0, 1})
	hw := [6]byte{9, 9, 9, 9, 9, 9}
	offer1 := server.Handle(NewDiscover(1, hw))
	offer2 := server.Handle(NewDiscover(2, hw))
	if offer1.YIAddr != offer2.YIAddr {
		t.Fatalf("same client offered different addresses: %v vs %v", offer1.YIAddr, offer2.YIAddr)
	}
	other := server.Handle(NewDiscover(3, [6]byte{8, 8, 8, 8, 8, 8}))
	if other.YIAddr == offer1.YIAddr {
		t.Fatal("two clients share an address")
	}
}

func TestDHCPServerNAKsWrongRequest(t *testing.T) {
	server := NewDHCPServer(IP{10, 0, 0, 1})
	hw := [6]byte{1}
	offer := server.Handle(NewDiscover(1, hw))
	req := NewRequest(offer)
	// Ask for a different address than offered.
	for i, o := range req.Options {
		if o.Code == OptRequestedIP {
			req.Options[i].Data = []byte{10, 0, 0, 250}
		}
	}
	resp := server.Handle(req)
	if tp, _ := resp.Type(); tp != DHCPNak {
		t.Fatalf("server replied %v, want NAK", tp)
	}
	// And the client surfaces the NAK as an error.
	client := NewDHCPClient(1, hw)
	client.Discover()
	if _, err := client.Handle(offer); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Handle(resp); err == nil {
		t.Fatal("client swallowed NAK")
	}
}

func TestDHCPClientIgnoresForeignReplies(t *testing.T) {
	client := NewDHCPClient(0x42, [6]byte{1})
	client.Discover()
	foreign := &DHCP{Op: BootReply, XID: 0x43, CHAddr: [6]byte{1},
		Options: []DHCPOption{typeOption(DHCPOffer)}}
	if next, err := client.Handle(foreign); err != nil || next != nil {
		t.Fatalf("foreign XID not ignored: %v, %v", next, err)
	}
	wrongHW := &DHCP{Op: BootReply, XID: 0x42, CHAddr: [6]byte{2},
		Options: []DHCPOption{typeOption(DHCPOffer)}}
	if next, err := client.Handle(wrongHW); err != nil || next != nil {
		t.Fatalf("foreign chaddr not ignored: %v, %v", next, err)
	}
}

func TestDHCPRelease(t *testing.T) {
	server := NewDHCPServer(IP{10, 0, 0, 1})
	hw := [6]byte{5}
	first := server.Handle(NewDiscover(1, hw)).YIAddr
	rel := &DHCP{Op: BootRequest, XID: 2, CHAddr: hw, Options: []DHCPOption{typeOption(DHCPRelease)}}
	if resp := server.Handle(rel); resp != nil {
		t.Fatal("RELEASE got a reply")
	}
	// After release the pool moves on; a new discover gets a fresh lease
	// (implementation assigns a new address since the binding is gone).
	second := server.Handle(NewDiscover(3, hw)).YIAddr
	if first == second {
		t.Fatal("lease not released")
	}
}
