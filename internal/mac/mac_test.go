package mac

import (
	"testing"
	"time"

	"wile/internal/dot11"
	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
)

type fixture struct {
	sched *sim.Scheduler
	med   *medium.Medium
}

func pos(x, y float64) medium.Position { return medium.Position{X: x, Y: y} }

func newFixture() *fixture {
	s := sim.New()
	return &fixture{sched: s, med: medium.New(s, phy.WiFi24Channel(6))}
}

func (fx *fixture) port(name string, pos medium.Position, addr dot11.MAC, seed uint64) *Port {
	p := New(fx.sched, fx.med, name, pos, addr, phy.RateOFDM24, 0, phy.SensitivityWiFi1M, sim.NewRand(seed))
	p.SetRadioOn(true)
	return p
}

var (
	addrA = dot11.MustParseMAC("02:00:00:00:00:0a")
	addrB = dot11.MustParseMAC("02:00:00:00:00:0b")
	addrC = dot11.MustParseMAC("02:00:00:00:00:0c")
)

func TestUnicastDataWithAutoACK(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	b := fx.port("b", pos(2, 0), addrB, 2)

	var rxFrames []dot11.Frame
	b.Handler = func(f dot11.Frame, rx medium.Reception) { rxFrames = append(rxFrames, f) }

	var outcome *bool
	f := dot11.NewDataToAP(addrB, addrA, addrB, []byte("payload"))
	if err := a.Send(f, func(ok bool) { outcome = &ok }); err != nil {
		t.Fatal(err)
	}
	fx.sched.Run()

	if outcome == nil || !*outcome {
		t.Fatal("sender did not report ACKed delivery")
	}
	if len(rxFrames) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(rxFrames))
	}
	d, ok := rxFrames[0].(*dot11.Data)
	if !ok || string(d.Payload) != "payload" {
		t.Fatalf("received %v", rxFrames[0])
	}
	if b.Stats.TxACKs != 1 {
		t.Fatalf("receiver sent %d ACKs, want 1", b.Stats.TxACKs)
	}
	if a.Stats.Retries != 0 {
		t.Fatalf("clean exchange took %d retries", a.Stats.Retries)
	}
}

func TestBroadcastNeedsNoACK(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	b := fx.port("b", pos(2, 0), addrB, 2)

	got := 0
	b.Handler = func(f dot11.Frame, rx medium.Reception) { got++ }

	var outcome *bool
	beacon := dot11.NewBeacon(addrA, 100, dot11.CapESS, dot11.Elements{dot11.SSIDElement("")})
	if err := a.Send(beacon, func(ok bool) { outcome = &ok }); err != nil {
		t.Fatal(err)
	}
	fx.sched.Run()

	if outcome == nil || !*outcome {
		t.Fatal("broadcast not reported delivered")
	}
	if got != 1 {
		t.Fatalf("receiver got %d beacons", got)
	}
	if b.Stats.TxACKs != 0 {
		t.Fatal("broadcast was ACKed")
	}
}

func TestRetryThenDropWhenPeerDeaf(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	b := fx.port("b", pos(2, 0), addrB, 2)
	b.SetRadioOn(false) // peer sleeps: no ACKs ever

	var outcome *bool
	f := dot11.NewDataToAP(addrB, addrA, addrB, []byte("x"))
	if err := a.Send(f, func(ok bool) { outcome = &ok }); err != nil {
		t.Fatal(err)
	}
	fx.sched.Run()

	if outcome == nil || *outcome {
		t.Fatal("undeliverable frame not reported failed")
	}
	if a.Stats.Retries != RetryLimit+1 {
		t.Fatalf("retries = %d, want %d", a.Stats.Retries, RetryLimit+1)
	}
	if a.Stats.Drops != 1 {
		t.Fatalf("drops = %d", a.Stats.Drops)
	}
	// Original + RetryLimit retransmissions on the air.
	if a.Stats.TxFrames != RetryLimit+1 {
		t.Fatalf("TxFrames = %d, want %d", a.Stats.TxFrames, RetryLimit+1)
	}
}

func TestRetryBitSetOnRetransmission(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	b := fx.port("b", pos(2, 0), addrB, 2)
	b.SetRadioOn(false)
	mon := fx.port("mon", pos(1, 0), addrC, 3)
	mon.AutoACK = false
	var seen []bool
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			seen = append(seen, d.Header.FC.Retry)
		}
	}
	a.Send(dot11.NewDataToAP(addrB, addrA, addrB, []byte("x")), nil)
	fx.sched.Run()
	if len(seen) != RetryLimit+1 {
		t.Fatalf("monitor saw %d attempts", len(seen))
	}
	if seen[0] {
		t.Fatal("first attempt has retry bit set")
	}
	for i := 1; i < len(seen); i++ {
		if !seen[i] {
			t.Fatalf("retry %d missing retry bit", i)
		}
	}
}

func TestCarrierSenseDefersSecondSender(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	b := fx.port("b", pos(1, 0), addrB, 2)
	rx := fx.port("rx", pos(0.5, 0), addrC, 3)

	var got []dot11.Frame
	rx.Handler = func(f dot11.Frame, r medium.Reception) { got = append(got, f) }
	rx.AutoACK = false // pure sniffer for group frames

	// Both queue a broadcast beacon at t=0. Without carrier sense they
	// would collide; with the DCF the later winner defers.
	a.Send(dot11.NewBeacon(addrA, 100, 0, nil), nil)
	b.Send(dot11.NewBeacon(addrB, 100, 0, nil), nil)
	fx.sched.Run()

	if len(got) != 2 {
		t.Fatalf("delivered %d of 2 beacons (collision not avoided)", len(got))
	}
	if fx.med.Stats.Collisions != 0 {
		t.Fatalf("%d collisions despite CSMA", fx.med.Stats.Collisions)
	}
}

func TestMonitorModeSeesForeignFrames(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	fx.port("b", pos(2, 0), addrB, 2) // peer that ACKs
	mon := fx.port("mon", pos(1, 0), addrC, 3)

	var monitored, handled int
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) { monitored++ }
	mon.Handler = func(f dot11.Frame, rx medium.Reception) { handled++ }

	a.Send(dot11.NewDataToAP(addrB, addrA, addrB, []byte("secret")), nil)
	fx.sched.Run()

	// Monitor sees the data frame and b's ACK; the normal handler sees
	// neither (unicast to someone else).
	if monitored != 2 {
		t.Fatalf("monitor saw %d frames, want 2 (data + ACK)", monitored)
	}
	if handled != 0 {
		t.Fatalf("handler saw %d foreign frames", handled)
	}
	if mon.Stats.TxACKs != 0 {
		t.Fatal("monitor ACKed a foreign frame")
	}
}

func TestReleaseAfterMonitorRecyclesFrames(t *testing.T) {
	// A monitor that promises to be done with each frame by return
	// (ReleaseAfterMonitor) must compose with the decode pool: the frame
	// object observed for one reception is recycled and comes back for the
	// next. Without the opt-in the first frame stays live in our hands, so
	// the second decode can never alias it.
	run := func(optIn bool) (first, second dot11.Frame) {
		fx := newFixture()
		a := fx.port("a", pos(0, 0), addrA, 1)
		mon := fx.port("mon", pos(1, 0), addrC, 3)
		mon.AutoACK = false
		mon.ReleaseAfterMonitor = optIn
		var seen []dot11.Frame
		mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
			if _, ok := f.(*dot11.Beacon); ok {
				seen = append(seen, f)
			}
		}
		// Group-addressed beacons: the monitor is this kernel's only beacon
		// decoder, and the group branch releases handler-less frames.
		a.Send(dot11.NewBeacon(addrA, 100, 0, nil), nil)
		fx.sched.Run()
		a.Send(dot11.NewBeacon(addrA, 100, 0, nil), nil)
		fx.sched.Run()
		if len(seen) != 2 {
			t.Fatalf("monitor saw %d beacons, want 2", len(seen))
		}
		return seen[0], seen[1]
	}

	// Under the race detector sync.Pool deliberately drops items, so the
	// reuse half of the contract is only observable in a normal build.
	if !raceEnabled {
		if f1, f2 := run(true); f1 != f2 {
			t.Error("ReleaseAfterMonitor: second reception did not reuse the recycled frame")
		}
	}
	if f1, f2 := run(false); f1 == f2 {
		t.Error("without ReleaseAfterMonitor a retained frame was recycled anyway")
	}
}

func TestSequenceNumbersIncrement(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	mon := fx.port("mon", pos(1, 0), addrC, 3)
	var seqs []uint16
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		if bea, ok := f.(*dot11.Beacon); ok {
			seqs = append(seqs, bea.Header.Sequence)
		}
	}
	for i := 0; i < 5; i++ {
		a.Send(dot11.NewBeacon(addrA, 100, 0, nil), nil)
	}
	fx.sched.Run()
	if len(seqs) != 5 {
		t.Fatalf("saw %d beacons", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != (seqs[i-1]+1)&0xfff {
			t.Fatalf("sequence numbers not consecutive: %v", seqs)
		}
	}
}

func TestSendWithRadioOffFails(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	a.SetRadioOn(false)
	var outcome *bool
	a.Send(dot11.NewBeacon(addrA, 100, 0, nil), func(ok bool) { outcome = &ok })
	fx.sched.Run()
	if outcome == nil || *outcome {
		t.Fatal("send from powered-off radio reported success")
	}
}

type txRecorder struct {
	bursts []time.Duration
}

func (r *txRecorder) RadioTx(airtime time.Duration) { r.bursts = append(r.bursts, airtime) }

func TestRadioListenerNotified(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	b := fx.port("b", pos(2, 0), addrB, 2)
	rec := &txRecorder{}
	a.Radio = rec
	recB := &txRecorder{}
	b.Radio = recB

	a.Send(dot11.NewDataToAP(addrB, addrA, addrB, []byte("x")), nil)
	fx.sched.Run()

	if len(rec.bursts) != 1 {
		t.Fatalf("sender radio notified %d times", len(rec.bursts))
	}
	if len(recB.bursts) != 1 {
		t.Fatalf("ACKer radio notified %d times", len(recB.bursts))
	}
	if rec.bursts[0] <= 0 {
		t.Fatal("non-positive airtime")
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	b := fx.port("b", pos(2, 0), addrB, 2)
	var payloads []string
	b.Handler = func(f dot11.Frame, rx medium.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			payloads = append(payloads, string(d.Payload))
		}
	}
	for _, s := range []string{"one", "two", "three"} {
		a.Send(dot11.NewDataToAP(addrB, addrA, addrB, []byte(s)), nil)
	}
	if a.QueueLen() == 0 {
		t.Fatal("queue empty immediately after 3 sends")
	}
	fx.sched.Run()
	if len(payloads) != 3 || payloads[0] != "one" || payloads[1] != "two" || payloads[2] != "three" {
		t.Fatalf("payloads = %v", payloads)
	}
}

func TestControlRate(t *testing.T) {
	if ControlRate(phy.RateDSSS11) != phy.RateDSSS1 {
		t.Error("DSSS control rate")
	}
	if ControlRate(phy.RateHTMCS7SGI) != phy.RateOFDM6 {
		t.Error("HT control rate")
	}
}

func BenchmarkUnicastExchange(b *testing.B) {
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 1)
	p2 := fx.port("b", pos(2, 0), addrB, 2)
	_ = p2
	payload := []byte("sensor-reading")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(dot11.NewDataToAP(addrB, addrA, addrB, payload), nil)
		fx.sched.Run()
	}
}

func TestDCFFairnessUnderSaturation(t *testing.T) {
	// Two saturating broadcasters must share the channel roughly evenly —
	// the DCF's core fairness property. Each port re-queues a new beacon
	// the moment the previous one completes.
	fx := newFixture()
	a := fx.port("a", pos(0, 0), addrA, 11)
	b := fx.port("b", pos(1, 0), addrB, 22)
	counts := map[dot11.MAC]int{}
	rx := fx.port("rx", pos(0.5, 0), addrC, 33)
	rx.AutoACK = false
	rx.Handler = func(f dot11.Frame, r medium.Reception) {
		counts[f.TA()]++
	}
	var pump func(p *Port, from dot11.MAC)
	pump = func(p *Port, from dot11.MAC) {
		p.Send(dot11.NewBeacon(from, 100, 0, nil), func(bool) { pump(p, from) })
	}
	pump(a, addrA)
	pump(b, addrB)
	fx.sched.RunUntil(sim.Second)

	na, nb := counts[addrA], counts[addrB]
	total := na + nb
	if total < 500 {
		t.Fatalf("only %d frames in 1 s of saturation", total)
	}
	share := float64(na) / float64(total)
	if share < 0.40 || share > 0.60 {
		t.Fatalf("unfair split: %d vs %d (%.2f)", na, nb, share)
	}
	if fx.med.Stats.Collisions > total/10 {
		t.Fatalf("%d collisions for %d frames", fx.med.Stats.Collisions, total)
	}
}
