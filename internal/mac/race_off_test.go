//go:build !race

package mac

// raceEnabled reports whether the race detector is on; sync.Pool sheds
// items under -race, so pool-reuse assertions gate on it.
const raceEnabled = false
