// Package mac implements the 802.11 distributed coordination function: a
// per-device Port that carrier-senses, backs off, transmits, auto-ACKs and
// retransmits. Every frame in the Figure 3a join — and every beacon Wi-LE
// injects — goes through a Port, so inter-frame timing in the simulation
// follows the DCF rules rather than hand-placed delays.
package mac

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wile/internal/dot11"
	"wile/internal/medium"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// RetryLimit is the dot11ShortRetryLimit default.
const RetryLimit = 7

// RadioListener receives notifications when the port's radio amplifier
// turns on. Device power models implement it to place TX current spikes at
// the exact instants frames fly.
type RadioListener interface {
	// RadioTx reports the start of a transmission lasting airtime.
	RadioTx(airtime time.Duration)
}

// ControlRate reports the rate used for ACK/CTS responses to frames
// received at r: the highest basic rate of the same family at or below r.
func ControlRate(r phy.Rate) phy.Rate {
	switch r.Mod {
	case phy.ModDSSS:
		return phy.RateDSSS1
	default:
		return phy.RateOFDM6
	}
}

// outgoing is one queued MPDU.
type outgoing struct {
	frame   dot11.Frame
	raw     []byte
	rate    phy.Rate
	wantACK bool
	retries int
	done    func(ok bool)
}

// Stats counts per-port MAC events.
type Stats struct {
	TxFrames     int // MPDUs put on the air, including retries and ACKs
	TxACKs       int
	RxFrames     int // decodable frames addressed to (or observed by) us
	RxFCSErrors  int
	RxDuplicates int // retransmissions filtered by duplicate detection
	Retries      int
	Drops        int // frames dropped after RetryLimit
}

// add folds other into s, field by field.
func (s *Stats) add(other Stats) {
	s.TxFrames += other.TxFrames
	s.TxACKs += other.TxACKs
	s.RxFrames += other.RxFrames
	s.RxFCSErrors += other.RxFCSErrors
	s.RxDuplicates += other.RxDuplicates
	s.Retries += other.Retries
	s.Drops += other.Drops
}

// FleetStats is a mutex-guarded aggregate of per-port Stats. Per-port
// counters are single-goroutine (each port lives on its kernel), but fleet
// roll-ups happen where ports from different worlds meet — an engine.Map
// worker folding its world's totals into the sweep aggregate, or an example
// summing forty sensors after the run — so the accumulator locks per Add
// instead of trusting the caller's goroutine discipline.
type FleetStats struct {
	mu    sync.Mutex
	total Stats // guarded by mu
	ports int   // guarded by mu
}

// Add folds one port's counters into the aggregate.
func (f *FleetStats) Add(s Stats) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total.add(s)
	f.ports++
}

// Total reports the aggregated counters and how many ports contributed.
func (f *FleetStats) Total() (Stats, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total, f.ports
}

// PortMetrics mirrors the Stats counters into an obs.Registry. One
// PortMetrics is shared by every port wired to the same registry, so the
// registry carries the fleet aggregate (the view a production MAC exports)
// while per-port Stats keeps the local breakdown.
type PortMetrics struct {
	TxFrames     *obs.Counter
	TxACKs       *obs.Counter
	RxFrames     *obs.Counter
	RxFCSErrors  *obs.Counter
	RxDuplicates *obs.Counter
	Retries      *obs.Counter
	Drops        *obs.Counter
}

// MetricsFor returns the registry's shared MAC counters, registering them
// on first use. The names deliberately track the Stats field set so the
// metrics snapshot subsumes the old ad-hoc counters.
func MetricsFor(reg *obs.Registry) *PortMetrics {
	return &PortMetrics{
		TxFrames:     reg.Counter("mac.tx_frames"),
		TxACKs:       reg.Counter("mac.tx_acks"),
		RxFrames:     reg.Counter("mac.rx_frames"),
		RxFCSErrors:  reg.Counter("mac.rx_fcs_errors"),
		RxDuplicates: reg.Counter("mac.rx_duplicates"),
		Retries:      reg.Counter("mac.retries"),
		Drops:        reg.Counter("mac.drops"),
	}
}

// Port is one station's MAC entity.
type Port struct {
	// Addr is the port's MAC address.
	Addr dot11.MAC
	// Rate is the PHY rate for transmitted frames.
	Rate phy.Rate
	// Handler receives frames addressed to this port (unicast match or
	// group address) after FCS check and auto-ACK.
	Handler func(f dot11.Frame, rx medium.Reception)
	// Monitor, when set, receives every decodable frame regardless of
	// addressing — monitor mode, which is how the Wi-LE evaluation's
	// receiver verifies injected beacons.
	Monitor func(f dot11.Frame, rx medium.Reception)
	// ProvDelegate hands the decode-success provenance outcomes to the
	// Monitor's owner: when set, the port still resolves undecodable frames
	// (fcs_error / decode_error — a Monitor never sees those) but leaves
	// every decoded frame's outcome (delivered / dedup_filtered) to whoever
	// installed the Monitor. The Scanner sets it because its beacon pipeline
	// — not the 802.11 duplicate cache — decides what counts as filtered.
	ProvDelegate bool
	// ReleaseAfterMonitor lets a monitor opt back in to frame recycling:
	// setting it promises that Monitor is done with the frame (and
	// everything aliasing it) by the time it returns, so the receive path
	// may recycle frames it would otherwise strand outside the decode
	// pool. Monitors that retain frames — the pcap writer does — must
	// leave it false, the conservative default.
	ReleaseAfterMonitor bool
	// Radio, when set, is notified of transmit bursts for power modeling.
	Radio RadioListener
	// Metrics, when non-nil, mirrors the Stats counters into a shared
	// metrics registry (see MetricsFor).
	Metrics *PortMetrics
	// AutoACK controls whether unicast receptions are acknowledged.
	AutoACK bool
	// Stats accumulates counters.
	Stats Stats

	sched *sim.Scheduler
	med   *medium.Medium
	trx   *medium.Transceiver
	rng   *sim.Rand

	seq     uint16
	queue   []*outgoing
	current *outgoing
	// rxCache holds the last accepted (sequence, fragment) per
	// transmitter for the standard's duplicate detection: a retransmitted
	// frame whose ACK was lost must be ACKed again but not re-delivered.
	rxCache map[dot11.MAC]uint16
	// inAccess marks that a channel-access procedure is scheduled.
	inAccess bool
	// backoffRemaining preserves a frozen backoff counter across busy
	// periods, as the DCF requires.
	backoffRemaining int
	ackTimer         *sim.Event

	// rec/track carry the optional trace recorder (TraceTo). accessStart
	// and awaitStart remember span openings so the closing site can emit
	// the complete slice.
	rec         *obs.Recorder
	track       obs.TrackID
	accessStart sim.Time
	awaitStart  sim.Time
}

// New attaches a port to the medium at pos.
func New(sched *sim.Scheduler, med *medium.Medium, name string, pos medium.Position,
	addr dot11.MAC, rate phy.Rate, txPower, sensitivity phy.DBm, rng *sim.Rand) *Port {
	p := &Port{
		Addr:    addr,
		Rate:    rate,
		AutoACK: true,
		sched:   sched,
		med:     med,
		rng:     rng,
	}
	p.trx = med.Attach(name, pos, txPower, sensitivity)
	p.trx.Handler = p.receive
	return p
}

// Transceiver exposes the underlying radio (for power control and tests).
func (p *Port) Transceiver() *medium.Transceiver { return p.trx }

// TraceTo attaches the port to a trace recorder: channel-access and TX
// spans, ACK waits and receptions land on the given track. Passing a nil
// recorder detaches.
func (p *Port) TraceTo(r *obs.Recorder, track obs.TrackID) {
	p.rec = r
	p.track = track
}

// txName/rxName map a frame kind to a static span name, so the enabled
// trace path allocates nothing per event beyond the recorder's log.
func txName(f dot11.Frame) string {
	switch f.(type) {
	case *dot11.Beacon:
		return "tx beacon"
	case *dot11.ProbeReq:
		return "tx probe-req"
	case *dot11.ProbeResp:
		return "tx probe-resp"
	case *dot11.Auth:
		return "tx auth"
	case *dot11.AssocReq:
		return "tx assoc-req"
	case *dot11.AssocResp:
		return "tx assoc-resp"
	case *dot11.Data:
		return "tx data"
	case *dot11.ACK:
		return "tx ack"
	}
	return "tx frame"
}

func rxName(f dot11.Frame) string {
	switch f.(type) {
	case *dot11.Beacon:
		return "rx beacon"
	case *dot11.ProbeReq:
		return "rx probe-req"
	case *dot11.ProbeResp:
		return "rx probe-resp"
	case *dot11.Auth:
		return "rx auth"
	case *dot11.AssocReq:
		return "rx assoc-req"
	case *dot11.AssocResp:
		return "rx assoc-resp"
	case *dot11.Data:
		return "rx data"
	case *dot11.ACK:
		return "rx ack"
	}
	return "rx frame"
}

// SetRadioOn powers the radio. Powering off cancels nothing in the TX
// queue, but nothing will transmit or be received until power returns.
func (p *Port) SetRadioOn(on bool) { p.trx.SetOn(on) }

// Provenance exposes the medium's frame ledger and this port's actor id,
// so a ProvDelegate owner can resolve the outcomes the port leaves to it.
func (p *Port) Provenance() (*obs.Provenance, obs.ActorID) {
	return p.med.Prov, p.trx.ProvID()
}

// resolve records rx's terminal outcome at this receiver. Collided
// receptions were already resolved by the medium, and a nil ledger means
// provenance is off; both make this a no-op.
func (p *Port) resolve(rx medium.Reception, reason obs.DropReason) {
	if rx.Collided {
		return
	}
	if pr := p.med.Prov; pr != nil {
		pr.Resolve(rx.Frame, p.trx.ProvID(), rx.End, reason)
	}
}

// queueDrop records a TX-side drop (frame never reached the air).
func (p *Port) queueDrop() {
	if pr := p.med.Prov; pr != nil {
		pr.QueueDrop(p.trx.ProvID(), p.sched.Now())
	}
}

// timing reports the DCF parameters for the port's current rate.
func (p *Port) timing() phy.MACTiming { return phy.Timing(p.Rate) }

// nextSeq allocates the next sequence number.
func (p *Port) nextSeq() uint16 {
	s := p.seq
	p.seq = (p.seq + 1) & 0xfff
	return s
}

// setSequence stamps the frame's header if it has a full MAC header.
func setSequence(f dot11.Frame, seq uint16) {
	switch t := f.(type) {
	case *dot11.Beacon:
		t.Header.Sequence = seq
	case *dot11.ProbeReq:
		t.Header.Sequence = seq
	case *dot11.ProbeResp:
		t.Header.Sequence = seq
	case *dot11.Auth:
		t.Header.Sequence = seq
	case *dot11.AssocReq:
		t.Header.Sequence = seq
	case *dot11.AssocResp:
		t.Header.Sequence = seq
	case *dot11.Deauth:
		t.Header.Sequence = seq
	case *dot11.Disassoc:
		t.Header.Sequence = seq
	case *dot11.Data:
		t.Header.Sequence = seq
	}
}

// Send queues f for transmission under the DCF. done, if non-nil, is
// called with the delivery outcome: true when the frame needed no ACK
// (group-addressed) and was transmitted, or when the ACK arrived; false
// after RetryLimit unacknowledged attempts.
func (p *Port) Send(f dot11.Frame, done func(ok bool)) error {
	setSequence(f, p.nextSeq())
	raw, err := dot11.Marshal(f)
	if err != nil {
		return fmt.Errorf("mac: marshal %v: %w", f.Kind(), err)
	}
	_, isCtl := f.(*dot11.ACK)
	wantACK := !f.RA().IsGroup() && !isCtl
	p.queue = append(p.queue, &outgoing{frame: f, raw: raw, rate: p.Rate, wantACK: wantACK, done: done})
	p.kick()
	return nil
}

// kick starts a channel-access procedure if one is not already running.
func (p *Port) kick() {
	if p.inAccess || p.current != nil || len(p.queue) == 0 {
		return
	}
	p.inAccess = true
	p.backoffRemaining = -1 // draw fresh backoff for the new frame
	if p.rec != nil {
		p.accessStart = p.sched.Now()
	}
	p.access()
}

// access implements DIFS + backoff. The medium must be idle for a full
// DIFS before the backoff counter runs; the counter freezes while the
// medium is busy and resumes after the next idle DIFS.
func (p *Port) access() {
	if until := p.med.BusyUntil(p.trx); until > p.sched.Now() {
		// Busy: try again when the medium frees (postDIFS re-verifies).
		p.sched.DoAt(until, p.access)
		return
	}
	p.sched.DoAfter(p.timing().DIFS(), p.postDIFS)
}

// postDIFS runs after a DIFS of intended idle time; if the medium got busy
// meanwhile the access procedure restarts.
func (p *Port) postDIFS() {
	if p.med.Busy(p.trx) {
		p.access()
		return
	}
	if p.backoffRemaining < 0 {
		cw := p.contentionWindow()
		p.backoffRemaining = p.rng.Intn(cw + 1)
	}
	p.countdown()
}

// contentionWindow reports the current CW given the retry count.
func (p *Port) contentionWindow() int {
	t := p.timing()
	cw := t.CWMin
	retries := 0
	if len(p.queue) > 0 {
		retries = p.queue[0].retries
	}
	for i := 0; i < retries; i++ {
		cw = cw*2 + 1
		if cw > t.CWMax {
			cw = t.CWMax
			break
		}
	}
	return cw
}

// countdown burns backoff slots while the medium stays idle.
func (p *Port) countdown() {
	if p.med.Busy(p.trx) {
		p.access() // freeze; access reschedules after busy+DIFS
		return
	}
	if p.backoffRemaining == 0 {
		p.transmitHead()
		return
	}
	p.backoffRemaining--
	p.sched.DoAfter(p.timing().Slot, p.countdown)
}

// transmitHead puts the head-of-queue frame on the air.
func (p *Port) transmitHead() {
	p.inAccess = false
	if p.rec != nil {
		// DIFS + backoff (+ any busy deferrals) ends here.
		p.rec.Span(p.track, p.accessStart, p.sched.Now(), "access")
	}
	if len(p.queue) == 0 {
		return
	}
	out := p.queue[0]
	p.queue = p.queue[1:]
	p.current = out
	p.transmit(out)
}

// transmit sends out and arms the ACK timer if needed.
func (p *Port) transmit(out *outgoing) {
	if !p.trx.On() {
		// Radio was powered down with traffic queued: fail the frame
		// rather than transmitting from a dead radio.
		p.queueDrop()
		p.finish(out, false)
		return
	}
	airtime := p.med.Transmit(p.trx, out.raw, out.rate)
	p.Stats.TxFrames++
	if p.Metrics != nil {
		p.Metrics.TxFrames.Inc()
	}
	if p.rec != nil {
		now := p.sched.Now()
		p.rec.Span(p.track, now, now.Add(airtime), txName(out.frame))
	}
	if p.Radio != nil {
		p.Radio.RadioTx(airtime)
	}
	if !out.wantACK {
		p.sched.DoAfter(airtime, func() { p.finish(out, true) })
		return
	}
	if p.rec != nil {
		p.awaitStart = p.sched.Now().Add(airtime)
	}
	t := p.timing()
	ackAirtime := phy.FrameAirtime(ControlRate(out.rate), 14)
	timeout := airtime + t.SIFS + ackAirtime + 2*t.Slot
	p.ackTimer = p.sched.After(timeout, func() { p.ackTimeout(out) })
}

// ackTimeout retries or drops the unacknowledged frame.
func (p *Port) ackTimeout(out *outgoing) {
	p.ackTimer = nil
	out.retries++
	p.Stats.Retries++
	if p.Metrics != nil {
		p.Metrics.Retries.Inc()
	}
	if p.rec != nil {
		p.rec.Span(p.track, p.awaitStart, p.sched.Now(), "ack-wait")
		p.rec.Instant(p.track, p.sched.Now(), "ack-timeout")
	}
	if out.retries > RetryLimit {
		p.Stats.Drops++
		if p.Metrics != nil {
			p.Metrics.Drops.Inc()
		}
		p.finish(out, false)
		return
	}
	// Mark the retry bit like real hardware does and re-contend.
	markRetry(out)
	p.current = nil
	p.queue = append([]*outgoing{out}, p.queue...)
	p.kick()
}

// markRetry sets the retry bit in the serialized frame and fixes the FCS.
func markRetry(out *outgoing) {
	raw, err := dot11.Marshal(withRetry(out.frame))
	if err == nil {
		out.raw = raw
	}
}

// withRetry flips the retry bit on the frame's header.
func withRetry(f dot11.Frame) dot11.Frame {
	switch t := f.(type) {
	case *dot11.Beacon:
		t.Header.FC.Retry = true
	case *dot11.ProbeReq:
		t.Header.FC.Retry = true
	case *dot11.ProbeResp:
		t.Header.FC.Retry = true
	case *dot11.Auth:
		t.Header.FC.Retry = true
	case *dot11.AssocReq:
		t.Header.FC.Retry = true
	case *dot11.AssocResp:
		t.Header.FC.Retry = true
	case *dot11.Deauth:
		t.Header.FC.Retry = true
	case *dot11.Disassoc:
		t.Header.FC.Retry = true
	case *dot11.Data:
		t.Header.FC.Retry = true
	}
	return f
}

// finish completes the current frame and moves on.
func (p *Port) finish(out *outgoing, ok bool) {
	if p.current == out {
		p.current = nil
	}
	if out.done != nil {
		out.done(ok)
	}
	p.kick()
}

// receive handles every delivery from the medium.
func (p *Port) receive(rx medium.Reception) {
	f, err := dot11.Decode(rx.Data)
	if err != nil {
		p.Stats.RxFCSErrors++
		if p.Metrics != nil {
			p.Metrics.RxFCSErrors.Inc()
		}
		// Undecodable frames never reach a Monitor, so the port owns this
		// outcome even under ProvDelegate. A dot11.ErrFCS is the corruption
		// taxonomy bucket; anything else (truncated, unsupported) is a
		// decode error.
		var fcs *dot11.ErrFCS
		if errors.As(err, &fcs) {
			p.resolve(rx, obs.DropFCSError)
		} else {
			p.resolve(rx, obs.DropDecodeError)
		}
		return
	}
	if p.Monitor != nil {
		p.Monitor(f, rx)
	}
	// ACK completion for our pending frame. The ACK dies here, so it can
	// feed the decode pool.
	if ack, isACK := f.(*dot11.ACK); isACK {
		if !p.ProvDelegate {
			p.resolve(rx, obs.Delivered)
		}
		if p.current != nil && p.current.wantACK && ack.Receiver == p.Addr {
			if p.ackTimer != nil {
				p.sched.Cancel(p.ackTimer)
				p.ackTimer = nil
			}
			if p.rec != nil {
				p.rec.Span(p.track, p.awaitStart, p.sched.Now(), "ack-wait")
				p.rec.Instant(p.track, p.sched.Now(), "rx ack")
			}
			p.finish(p.current, true)
		}
		p.release(f)
		return
	}
	ra := f.RA()
	switch {
	case ra == p.Addr:
		p.Stats.RxFrames++
		if p.Metrics != nil {
			p.Metrics.RxFrames.Inc()
		}
		if p.rec != nil {
			p.rec.Instant(p.track, p.sched.Now(), rxName(f))
		}
		if p.AutoACK {
			p.sendACK(f.TA(), rx.Rate)
		}
		if p.isDuplicate(f) {
			p.Stats.RxDuplicates++
			if p.Metrics != nil {
				p.Metrics.RxDuplicates.Inc()
			}
			if !p.ProvDelegate {
				p.resolve(rx, obs.DropDedupFiltered)
			}
			p.release(f)
			return
		}
		if !p.ProvDelegate {
			p.resolve(rx, obs.Delivered)
		}
		if p.Handler != nil {
			p.Handler(f, rx)
		} else {
			p.release(f)
		}
	case ra.IsGroup():
		p.Stats.RxFrames++
		if p.Metrics != nil {
			p.Metrics.RxFrames.Inc()
		}
		if p.rec != nil {
			p.rec.Instant(p.track, p.sched.Now(), rxName(f))
		}
		if !p.ProvDelegate {
			p.resolve(rx, obs.Delivered)
		}
		if p.Handler != nil {
			p.Handler(f, rx)
		} else {
			p.release(f)
		}
	default:
		// Overheard traffic for someone else: decoded only to be
		// discarded, the dominant receive path on a shared channel. The
		// radio still decoded it, so provenance calls it delivered.
		if !p.ProvDelegate {
			p.resolve(rx, obs.Delivered)
		}
		p.release(f)
	}
}

// release recycles a frame the receive path is provably done with. A
// Monitor callback may retain frames indefinitely (the pcap writer does),
// so ports in monitor mode only recycle when the monitor has opted in via
// ReleaseAfterMonitor; Handler-delivered frames escape and are never
// passed here.
func (p *Port) release(f dot11.Frame) {
	if p.Monitor == nil || p.ReleaseAfterMonitor {
		dot11.Release(f)
	}
}

// frameSeqCtl reads a frame's sequence/fragment pair, if it carries one.
func frameSeqCtl(f dot11.Frame) (uint16, bool) {
	switch t := f.(type) {
	case *dot11.Beacon:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.ProbeReq:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.ProbeResp:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.Auth:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.AssocReq:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.AssocResp:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.Deauth:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.Disassoc:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	case *dot11.Data:
		return t.Header.Sequence<<4 | uint16(t.Header.Fragment), true
	}
	return 0, false
}

// isDuplicate implements the receiver duplicate-detection cache
// (IEEE 802.11-2016 §10.3.2.11): the last sequence-control value accepted
// from each transmitter; a match means a retransmission whose original
// already reached us.
func (p *Port) isDuplicate(f dot11.Frame) bool {
	seqCtl, ok := frameSeqCtl(f)
	if !ok {
		return false
	}
	ta := f.TA()
	if p.rxCache == nil {
		p.rxCache = make(map[dot11.MAC]uint16)
	}
	last, seen := p.rxCache[ta]
	p.rxCache[ta] = seqCtl
	return seen && last == seqCtl
}

// sendACK transmits an ACK SIFS after the frame that elicited it,
// bypassing the DCF (SIFS has priority over DIFS+backoff).
func (p *Port) sendACK(to dot11.MAC, atRate phy.Rate) {
	raw, err := dot11.Marshal(dot11.NewACK(to))
	if err != nil {
		return
	}
	t := p.timing()
	p.sched.DoAfter(t.SIFS, func() {
		if !p.trx.On() {
			p.queueDrop()
			return
		}
		airtime := p.med.Transmit(p.trx, raw, ControlRate(atRate))
		p.Stats.TxFrames++
		p.Stats.TxACKs++
		if p.Metrics != nil {
			p.Metrics.TxFrames.Inc()
			p.Metrics.TxACKs.Inc()
		}
		if p.rec != nil {
			now := p.sched.Now()
			p.rec.Span(p.track, now, now.Add(airtime), "tx ack")
		}
		if p.Radio != nil {
			p.Radio.RadioTx(airtime)
		}
	})
}

// QueueLen reports frames waiting for channel access (excluding the one in
// flight).
func (p *Port) QueueLen() int { return len(p.queue) }
