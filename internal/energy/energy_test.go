package energy

import (
	"math"
	"testing"
	"time"
)

// paperScenarios mirrors Table 1 of the paper exactly; the experiment
// harness derives its own scenarios from simulation, but the analytic
// properties tested here must hold for the published numbers too.
func paperScenarios() []Scenario {
	return []Scenario{
		{Name: "Wi-LE", EnergyPerPacketJ: 84e-6, TxDuration: 150 * time.Microsecond, IdleCurrentA: 2.5e-6, VoltageV: 3.3},
		{Name: "BLE", EnergyPerPacketJ: 71e-6, TxDuration: 3 * time.Millisecond, IdleCurrentA: 1.1e-6, VoltageV: 3.0},
		{Name: "WiFi-DC", EnergyPerPacketJ: 238.2e-3, TxDuration: 1600 * time.Millisecond, IdleCurrentA: 2.5e-6, VoltageV: 3.3},
		{Name: "WiFi-PS", EnergyPerPacketJ: 19.8e-3, TxDuration: 100 * time.Millisecond, IdleCurrentA: 4500e-6, VoltageV: 3.3},
	}
}

func TestEquationOneKnownValue(t *testing.T) {
	// Hand-computed: Etx=84µJ, Pidle=8.25µW, INT=60s, Ttx=150µs:
	// Pavg = (84e-6 + 8.25e-6*(60-0.00015)) / 60 ≈ 9.65 µW.
	s := paperScenarios()[0]
	got := s.AveragePowerW(time.Minute)
	if math.Abs(got-9.65e-6) > 0.05e-6 {
		t.Fatalf("Wi-LE Pavg(1min) = %v W, want ≈9.65 µW", got)
	}
}

func TestAveragePowerDecreasesWithInterval(t *testing.T) {
	for _, s := range paperScenarios() {
		prev := math.Inf(1)
		for _, interval := range []time.Duration{
			5 * time.Second, 30 * time.Second, time.Minute, 5 * time.Minute,
		} {
			p := s.AveragePowerW(interval)
			if p >= prev {
				t.Errorf("%s: Pavg did not decrease at %v (%v → %v)", s.Name, interval, prev, p)
			}
			prev = p
		}
	}
}

func TestAveragePowerApproachesIdleFloor(t *testing.T) {
	for _, s := range paperScenarios() {
		p := s.AveragePowerW(24 * time.Hour)
		floor := s.IdlePowerW()
		if p < floor {
			t.Errorf("%s: Pavg %v below idle floor %v", s.Name, p, floor)
		}
		if p > floor*1.5 && s.Name != "WiFi-DC" {
			t.Errorf("%s: Pavg %v not near idle floor %v at 24h interval", s.Name, p, floor)
		}
	}
}

// TestFigure4Shape verifies the orderings Figure 4 shows across its 0–5
// minute x-axis.
func TestFigure4Shape(t *testing.T) {
	s := paperScenarios()
	wile, ble, dc, ps := s[0], s[1], s[2], s[3]

	for _, interval := range []time.Duration{
		10 * time.Second, 30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
	} {
		pWile, pBLE := wile.AveragePowerW(interval), ble.AveragePowerW(interval)
		pDC, pPS := dc.AveragePowerW(interval), ps.AveragePowerW(interval)

		// Wi-LE tracks BLE within a small factor.
		if ratio := pWile / pBLE; ratio < 0.3 || ratio > 4 {
			t.Errorf("INT=%v: Wi-LE/BLE power ratio %.2f not close", interval, ratio)
		}
		// Wi-LE is orders of magnitude below both WiFi modes ("generally
		// about 3 orders of magnitude lower"; at the 5-minute end of the
		// sweep WiFi-DC's advantage from deep sleep narrows it to ~2).
		if pDC/pWile < 80 {
			t.Errorf("INT=%v: WiFi-DC only %.0f× Wi-LE", interval, pDC/pWile)
		}
		if pPS/pWile < 100 {
			t.Errorf("INT=%v: WiFi-PS only %.0f× Wi-LE", interval, pPS/pWile)
		}
	}
}

// TestFigure4Crossover: WiFi-PS wins at short intervals, WiFi-DC at long
// ones; the paper places the crossover below ≈1 minute.
func TestFigure4Crossover(t *testing.T) {
	s := paperScenarios()
	dc, ps := s[2], s[3]
	if dc.AveragePowerW(5*time.Second) <= ps.AveragePowerW(5*time.Second) {
		t.Error("at 5s intervals WiFi-DC should lose to WiFi-PS")
	}
	if dc.AveragePowerW(3*time.Minute) >= ps.AveragePowerW(3*time.Minute) {
		t.Error("at 3min intervals WiFi-DC should beat WiFi-PS")
	}
	// Locate the crossover by bisection; it must fall under a minute.
	lo, hi := 5*time.Second, 3*time.Minute
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if dc.AveragePowerW(mid) > ps.AveragePowerW(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	if hi > time.Minute {
		t.Errorf("WiFi-PS/DC crossover at %v, paper places it below ≈1 minute", hi)
	}
}

func TestBatteryLifeBLEOverAYear(t *testing.T) {
	// "This is why BLE modules can run on a small button battery for over
	// a year" — at a 1-minute reporting interval.
	ble := paperScenarios()[1]
	life := ble.BatteryLife(CR2032CapacityMAh, time.Minute)
	if life < 365*24*time.Hour {
		t.Fatalf("BLE CR2032 life = %v, want > 1 year", life)
	}
	wile := paperScenarios()[0]
	if wile.BatteryLife(CR2032CapacityMAh, time.Minute) < 365*24*time.Hour {
		t.Fatal("Wi-LE should also exceed a year on a coin cell")
	}
	// WiFi-DC drains the same cell within days at 1-minute reporting.
	dc := paperScenarios()[2]
	if dc.BatteryLife(CR2032CapacityMAh, time.Minute) > 30*24*time.Hour {
		t.Fatal("WiFi-DC implausibly frugal")
	}
}

func TestAveragePowerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	paperScenarios()[0].AveragePowerW(0)
}

func TestTxLongerThanIntervalClamped(t *testing.T) {
	// When the episode exceeds the interval the idle term clamps to zero
	// instead of going negative.
	s := Scenario{EnergyPerPacketJ: 1, TxDuration: 10 * time.Second, IdleCurrentA: 1, VoltageV: 3.3}
	got := s.AveragePowerW(time.Second)
	if got != 1.0 {
		t.Fatalf("clamped Pavg = %v, want 1 (energy/interval only)", got)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FormatJoules(84e-6), "84.0 µJ"},
		{FormatJoules(19.8e-3), "19.8 mJ"},
		{FormatJoules(1.5), "1.50 J"},
		{FormatAmps(2.5e-6), "2.5 µA"},
		{FormatAmps(4.5e-3), "4.5 mA"},
		{FormatAmps(1.2), "1.20 A"},
		{FormatWatts(9.65e-6), "9.65 µW"},
		{FormatWatts(14.85e-3), "14.85 mW"},
		{FormatWatts(2), "2.00 W"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("formatted %q, want %q", c.got, c.want)
		}
	}
}
