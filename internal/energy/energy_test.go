package energy

import (
	"math"
	"testing"
	"time"

	"wile/internal/units"
)

// paperScenarios mirrors Table 1 of the paper exactly; the experiment
// harness derives its own scenarios from simulation, but the analytic
// properties tested here must hold for the published numbers too.
func paperScenarios() []Scenario {
	return []Scenario{
		{Name: "Wi-LE", EnergyPerPacket: units.MicroJoules(84), TxDuration: 150 * time.Microsecond, IdleCurrent: units.MicroAmps(2.5), Voltage: units.Volts(3.3)},
		{Name: "BLE", EnergyPerPacket: units.MicroJoules(71), TxDuration: 3 * time.Millisecond, IdleCurrent: units.MicroAmps(1.1), Voltage: units.Volts(3.0)},
		{Name: "WiFi-DC", EnergyPerPacket: units.MilliJoules(238.2), TxDuration: 1600 * time.Millisecond, IdleCurrent: units.MicroAmps(2.5), Voltage: units.Volts(3.3)},
		{Name: "WiFi-PS", EnergyPerPacket: units.MilliJoules(19.8), TxDuration: 100 * time.Millisecond, IdleCurrent: units.MicroAmps(4500), Voltage: units.Volts(3.3)},
	}
}

func TestEquationOneKnownValue(t *testing.T) {
	// Hand-computed: Etx=84µJ, Pidle=8.25µW, INT=60s, Ttx=150µs:
	// Pavg = (84e-6 + 8.25e-6*(60-0.00015)) / 60 ≈ 9.65 µW.
	s := paperScenarios()[0]
	got := float64(s.AveragePower(time.Minute))
	if math.Abs(got-9.65e-6) > 0.05e-6 {
		t.Fatalf("Wi-LE Pavg(1min) = %v W, want ≈9.65 µW", got)
	}
}

func TestAveragePowerDecreasesWithInterval(t *testing.T) {
	for _, s := range paperScenarios() {
		prev := units.Watts(math.Inf(1))
		for _, interval := range []time.Duration{
			5 * time.Second, 30 * time.Second, time.Minute, 5 * time.Minute,
		} {
			p := s.AveragePower(interval)
			if p >= prev {
				t.Errorf("%s: Pavg did not decrease at %v (%v → %v)", s.Name, interval, prev, p)
			}
			prev = p
		}
	}
}

func TestAveragePowerApproachesIdleFloor(t *testing.T) {
	for _, s := range paperScenarios() {
		p := s.AveragePower(24 * time.Hour)
		floor := s.IdlePower()
		if p < floor {
			t.Errorf("%s: Pavg %v below idle floor %v", s.Name, p, floor)
		}
		if p > floor*1.5 && s.Name != "WiFi-DC" {
			t.Errorf("%s: Pavg %v not near idle floor %v at 24h interval", s.Name, p, floor)
		}
	}
}

// TestFigure4Shape verifies the orderings Figure 4 shows across its 0–5
// minute x-axis.
func TestFigure4Shape(t *testing.T) {
	s := paperScenarios()
	wile, ble, dc, ps := s[0], s[1], s[2], s[3]

	for _, interval := range []time.Duration{
		10 * time.Second, 30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
	} {
		pWile, pBLE := wile.AveragePower(interval), ble.AveragePower(interval)
		pDC, pPS := dc.AveragePower(interval), ps.AveragePower(interval)

		// Wi-LE tracks BLE within a small factor.
		if ratio := units.Ratio(pWile, pBLE); ratio < 0.3 || ratio > 4 {
			t.Errorf("INT=%v: Wi-LE/BLE power ratio %.2f not close", interval, ratio)
		}
		// Wi-LE is orders of magnitude below both WiFi modes ("generally
		// about 3 orders of magnitude lower"; at the 5-minute end of the
		// sweep WiFi-DC's advantage from deep sleep narrows it to ~2).
		if units.Ratio(pDC, pWile) < 80 {
			t.Errorf("INT=%v: WiFi-DC only %.0f× Wi-LE", interval, units.Ratio(pDC, pWile))
		}
		if units.Ratio(pPS, pWile) < 100 {
			t.Errorf("INT=%v: WiFi-PS only %.0f× Wi-LE", interval, units.Ratio(pPS, pWile))
		}
	}
}

// TestFigure4Crossover: WiFi-PS wins at short intervals, WiFi-DC at long
// ones; the paper places the crossover below ≈1 minute.
func TestFigure4Crossover(t *testing.T) {
	s := paperScenarios()
	dc, ps := s[2], s[3]
	if dc.AveragePower(5*time.Second) <= ps.AveragePower(5*time.Second) {
		t.Error("at 5s intervals WiFi-DC should lose to WiFi-PS")
	}
	if dc.AveragePower(3*time.Minute) >= ps.AveragePower(3*time.Minute) {
		t.Error("at 3min intervals WiFi-DC should beat WiFi-PS")
	}
	// Locate the crossover by bisection; it must fall under a minute.
	lo, hi := 5*time.Second, 3*time.Minute
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if dc.AveragePower(mid) > ps.AveragePower(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	if hi > time.Minute {
		t.Errorf("WiFi-PS/DC crossover at %v, paper places it below ≈1 minute", hi)
	}
}

func TestBatteryLifeBLEOverAYear(t *testing.T) {
	// "This is why BLE modules can run on a small button battery for over
	// a year" — at a 1-minute reporting interval.
	ble := paperScenarios()[1]
	life := ble.BatteryLife(CR2032Capacity, time.Minute)
	if life < 365*24*time.Hour {
		t.Fatalf("BLE CR2032 life = %v, want > 1 year", life)
	}
	wile := paperScenarios()[0]
	if wile.BatteryLife(CR2032Capacity, time.Minute) < 365*24*time.Hour {
		t.Fatal("Wi-LE should also exceed a year on a coin cell")
	}
	// WiFi-DC drains the same cell within days at 1-minute reporting.
	dc := paperScenarios()[2]
	if dc.BatteryLife(CR2032Capacity, time.Minute) > 30*24*time.Hour {
		t.Fatal("WiFi-DC implausibly frugal")
	}
}

func TestBatteryLifeSaturates(t *testing.T) {
	// A scenario whose average power underflows to a subnormal sliver must
	// clamp at the time.Duration ceiling rather than overflow.
	s := Scenario{
		Name:            "sliver",
		EnergyPerPacket: units.Joules(1e-300),
		TxDuration:      time.Microsecond,
		IdleCurrent:     units.Amps(0),
		Voltage:         units.Volts(3.3),
	}
	if got := s.BatteryLife(CR2032Capacity, time.Minute); got != time.Duration(1<<63-1) {
		t.Fatalf("near-zero draw life = %v, want saturation at the Duration ceiling", got)
	}
}

func TestAveragePowerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	paperScenarios()[0].AveragePower(0)
}

func TestTxLongerThanIntervalClamped(t *testing.T) {
	// When the episode exceeds the interval the idle term clamps to zero
	// instead of going negative.
	s := Scenario{EnergyPerPacket: units.Joules(1), TxDuration: 10 * time.Second, IdleCurrent: units.Amps(1), Voltage: units.Volts(3.3)}
	got := s.AveragePower(time.Second)
	if got != 1.0 {
		t.Fatalf("clamped Pavg = %v, want 1 (energy/interval only)", got)
	}
}

// TestFormatters pins the exact renderings Table 1 and the CLI rely on,
// including the negative and unit-boundary cases the old float-based
// formatters mishandled (negatives always fell into the µ branch).
func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FormatJoules(units.MicroJoules(84)), "84.0 µJ"},
		{FormatJoules(units.MilliJoules(19.8)), "19.8 mJ"},
		{FormatJoules(units.Joules(1.5)), "1.50 J"},
		{FormatJoules(units.MicroJoules(-0.5)), "-0.5 µJ"},
		{FormatJoules(units.Joules(-0.5)), "-500.0 mJ"},
		{FormatJoules(units.Joules(1e-3)), "1.0 mJ"},
		{FormatAmps(units.MicroAmps(2.5)), "2.5 µA"},
		{FormatAmps(units.MilliAmps(4.5)), "4.5 mA"},
		{FormatAmps(units.Amps(1.2)), "1.20 A"},
		{FormatAmps(units.MilliAmps(-4.5)), "-4.5 mA"},
		{FormatAmps(units.Amps(1e-3)), "1.0 mA"},
		{FormatWatts(units.MicroWatts(9.65)), "9.65 µW"},
		{FormatWatts(units.MilliWatts(14.85)), "14.85 mW"},
		{FormatWatts(units.Watts(2)), "2.00 W"},
		{FormatWatts(units.Watts(-2)), "-2.00 W"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("formatted %q, want %q", c.got, c.want)
		}
	}
}
