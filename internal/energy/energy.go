// Package energy holds the paper's energy bookkeeping: the §5.5 average
// power model (Equation 1), battery-life estimation, and human-readable
// formatting for the quantities Table 1 reports. All quantities are
// dimensioned (internal/units); bare float64 appears only at the
// formatting boundary.
package energy

import (
	"time"

	"wile/internal/units"
)

// Scenario captures one row of Table 1: the cost of a transmission episode
// and the idle draw between episodes.
type Scenario struct {
	// Name labels the technology ("Wi-LE", "BLE", "WiFi-DC", "WiFi-PS").
	Name string
	// EnergyPerPacket is the energy of one transmission episode,
	// including all per-episode overheads (Ptx·Ttx in Equation 1 terms).
	EnergyPerPacket units.Joules
	// TxDuration is Ttx: how long the episode keeps the device out of its
	// idle state.
	TxDuration time.Duration
	// IdleCurrent is the between-transmissions current.
	IdleCurrent units.Amps
	// Voltage is the supply voltage (3.3 V for the ESP32 scenarios, 3 V
	// for the CC2541 reference).
	Voltage units.Volts
}

// IdlePower reports the idle power draw.
func (s Scenario) IdlePower() units.Watts { return units.Power(s.Voltage, s.IdleCurrent) }

// AveragePower evaluates Equation 1 of the paper:
//
//	Pavg = (1/INT) · (Ptx·Ttx + Pidle·(INT − Ttx))
//
// for a transmission interval INT. Ptx·Ttx is the per-episode energy.
func (s Scenario) AveragePower(interval time.Duration) units.Watts {
	if interval <= 0 {
		panic("energy: non-positive transmission interval")
	}
	idle := interval - s.TxDuration
	if idle < 0 {
		idle = 0
	}
	return units.AveragePower(s.EnergyPerPacket+units.Energy(s.IdlePower(), idle), interval)
}

// BatteryLife estimates how long a battery of the given capacity powers
// the scenario at a transmission interval, saturating at the
// time.Duration ceiling. A CR2032 coin cell is ~225 mAh at 3 V — the
// "small button battery" the paper credits BLE with running on "for over
// a year".
func (s Scenario) BatteryLife(capacity units.AmpHours, interval time.Duration) time.Duration {
	return units.BatteryLife(capacity.Energy(s.Voltage), s.AveragePower(interval))
}

// CR2032Capacity is the nominal capacity of the coin cell used in
// battery-life estimates.
var CR2032Capacity = units.MilliAmpHours(225)

// FormatJoules renders an energy with the unit Table 1 uses (µJ, mJ or
// J). Kept as a free function for call-site symmetry with the other
// formatters; the normalization lives on units.Joules.
func FormatJoules(j units.Joules) string { return j.String() }

// FormatAmps renders a current in µA, mA or A.
func FormatAmps(a units.Amps) string { return a.String() }

// FormatWatts renders a power in µW, mW or W.
func FormatWatts(w units.Watts) string { return w.String() }
