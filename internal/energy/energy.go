// Package energy holds the paper's energy bookkeeping: the §5.5 average
// power model (Equation 1), battery-life estimation, and human-readable
// formatting for the quantities Table 1 reports.
package energy

import (
	"fmt"
	"time"
)

// Scenario captures one row of Table 1: the cost of a transmission episode
// and the idle draw between episodes.
type Scenario struct {
	// Name labels the technology ("Wi-LE", "BLE", "WiFi-DC", "WiFi-PS").
	Name string
	// EnergyPerPacketJ is the energy of one transmission episode,
	// including all per-episode overheads (Ptx·Ttx in Equation 1 terms).
	EnergyPerPacketJ float64
	// TxDuration is Ttx: how long the episode keeps the device out of its
	// idle state.
	TxDuration time.Duration
	// IdleCurrentA is the between-transmissions current.
	IdleCurrentA float64
	// VoltageV is the supply voltage (3.3 V for the ESP32 scenarios, 3 V
	// for the CC2541 reference).
	VoltageV float64
}

// IdlePowerW reports the idle power draw.
func (s Scenario) IdlePowerW() float64 { return s.IdleCurrentA * s.VoltageV }

// AveragePowerW evaluates Equation 1 of the paper:
//
//	Pavg = (1/INT) · (Ptx·Ttx + Pidle·(INT − Ttx))
//
// for a transmission interval INT. Ptx·Ttx is the per-episode energy.
func (s Scenario) AveragePowerW(interval time.Duration) float64 {
	if interval <= 0 {
		panic("energy: non-positive transmission interval")
	}
	idle := interval - s.TxDuration
	if idle < 0 {
		idle = 0
	}
	return (s.EnergyPerPacketJ + s.IdlePowerW()*idle.Seconds()) / interval.Seconds()
}

// BatteryLife estimates how long a battery of the given capacity powers
// the scenario at a transmission interval. A CR2032 coin cell is ~225 mAh
// at 3 V — the "small button battery" the paper credits BLE with running
// on "for over a year".
func (s Scenario) BatteryLife(capacityMAh float64, interval time.Duration) time.Duration {
	p := s.AveragePowerW(interval)
	if p <= 0 {
		return time.Duration(1<<63 - 1)
	}
	energyJ := capacityMAh / 1000 * 3600 * s.VoltageV
	seconds := energyJ / p
	const maxSec = float64(1<<63-1) / float64(time.Second)
	if seconds > maxSec {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(seconds * float64(time.Second))
}

// CR2032CapacityMAh is the nominal capacity of the coin cell used in
// battery-life estimates.
const CR2032CapacityMAh = 225

// FormatJoules renders an energy with the unit Table 1 uses (µJ or mJ).
func FormatJoules(j float64) string {
	switch {
	case j < 1e-3:
		return fmt.Sprintf("%.1f µJ", j*1e6)
	case j < 1:
		return fmt.Sprintf("%.1f mJ", j*1e3)
	default:
		return fmt.Sprintf("%.2f J", j)
	}
}

// FormatAmps renders a current in µA or mA.
func FormatAmps(a float64) string {
	switch {
	case a < 1e-3:
		return fmt.Sprintf("%.1f µA", a*1e6)
	case a < 1:
		return fmt.Sprintf("%.1f mA", a*1e3)
	default:
		return fmt.Sprintf("%.2f A", a)
	}
}

// FormatWatts renders a power in µW, mW or W.
func FormatWatts(w float64) string {
	switch {
	case w < 1e-3:
		return fmt.Sprintf("%.2f µW", w*1e6)
	case w < 1:
		return fmt.Sprintf("%.2f mW", w*1e3)
	default:
		return fmt.Sprintf("%.2f W", w)
	}
}
