// Package units defines the dimensioned value types the energy pipeline
// is built from. The paper's headline claim is a 13 µJ delta (84 µJ Wi-LE
// vs 71 µJ BLE per message), so a silent µJ-vs-mJ or mA-vs-µA mix-up
// anywhere in the integration invalidates the reproduction. Each quantity
// is a distinct named float64 — cross-unit arithmetic does not compile,
// and the checked helpers below (Power, Energy, Charge, ...) are the only
// sanctioned ways to move between dimensions.
//
// Constructors divide by an exactly-representable power of ten
// (MicroAmps(2.5) == Amps(2.5e-6) bit-for-bit), and the Micro/Milli
// accessors multiply by the same factor, so migrating a literal through a
// constructor never perturbs a golden trace or an exact-equality test.
//
// The unitsafety analyzer (internal/analysis) treats this package as the
// unit home: outside it, bare numeric literals may not become unit-typed
// values, same-unit multiplication/division is flagged (use Ratio), and
// bare-float64 fields or parameters with unit-suffixed names (*J, *A,
// *MAh, ...) are rejected.
package units

import (
	"fmt"
	"math"
	"time"
)

// The guarded quantity types. All are defined types over float64 in SI
// base units (joules, watts, amperes, volts, coulombs, ohms, farads);
// AmpHours is the one non-SI carrier because battery datasheets quote
// capacity in mAh.
type (
	// Joules is an energy in joules.
	Joules float64
	// Watts is a power in watts.
	Watts float64
	// Amps is a current in amperes.
	Amps float64
	// Volts is an electric potential in volts.
	Volts float64
	// Coulombs is an electric charge in coulombs (ampere-seconds).
	Coulombs float64
	// AmpHours is a battery capacity in ampere-hours.
	AmpHours float64
	// Ohms is a resistance in ohms.
	Ohms float64
	// Farads is a capacitance in farads.
	Farads float64
)

// MicroJoules builds an energy from a µJ magnitude: MicroJoules(84) is the
// paper's Wi-LE per-message cost.
func MicroJoules(x float64) Joules { return Joules(x / 1e6) }

// MilliJoules builds an energy from a mJ magnitude.
func MilliJoules(x float64) Joules { return Joules(x / 1e3) }

// MicroAmps builds a current from a µA magnitude: MicroAmps(2.5) is the
// ESP32 deep-sleep floor.
func MicroAmps(x float64) Amps { return Amps(x / 1e6) }

// MilliAmps builds a current from a mA magnitude.
func MilliAmps(x float64) Amps { return Amps(x / 1e3) }

// MicroWatts builds a power from a µW magnitude.
func MicroWatts(x float64) Watts { return Watts(x / 1e6) }

// MilliWatts builds a power from a mW magnitude.
func MilliWatts(x float64) Watts { return Watts(x / 1e3) }

// MilliAmpHours builds a capacity from the mAh figure on a battery
// datasheet: MilliAmpHours(225) is a CR2032 coin cell.
func MilliAmpHours(x float64) AmpHours { return AmpHours(x / 1e3) }

// MicroFarads builds a capacitance from a µF magnitude.
func MicroFarads(x float64) Farads { return Farads(x / 1e6) }

// Micro reports the energy in µJ.
func (j Joules) Micro() float64 { return float64(j) * 1e6 }

// Milli reports the energy in mJ.
func (j Joules) Milli() float64 { return float64(j) * 1e3 }

// Micro reports the current in µA.
func (a Amps) Micro() float64 { return float64(a) * 1e6 }

// Milli reports the current in mA.
func (a Amps) Milli() float64 { return float64(a) * 1e3 }

// Micro reports the power in µW.
func (w Watts) Micro() float64 { return float64(w) * 1e6 }

// Milli reports the power in mW.
func (w Watts) Milli() float64 { return float64(w) * 1e3 }

// Milli reports the capacity in mAh.
func (ah AmpHours) Milli() float64 { return float64(ah) * 1e3 }

// Micro reports the capacitance in µF.
func (f Farads) Micro() float64 { return float64(f) * 1e6 }

// Power is P = V·I.
func Power(v Volts, a Amps) Watts { return Watts(float64(v) * float64(a)) }

// Energy is E = P·t.
func Energy(p Watts, d time.Duration) Joules { return Joules(float64(p) * d.Seconds()) }

// Charge is Q = I·t.
func Charge(a Amps, d time.Duration) Coulombs { return Coulombs(float64(a) * d.Seconds()) }

// Energy is E = Q·V: the energy a charge integral represents at a supply
// voltage.
func (c Coulombs) Energy(v Volts) Joules { return Joules(float64(c) * float64(v)) }

// AmpHours converts a charge to battery-capacity units (1 Ah = 3600 C).
func (c Coulombs) AmpHours() AmpHours { return AmpHours(float64(c) / 3600) }

// Across is ΔV = Q/C: the voltage swing the charge causes on a capacitor.
func (c Coulombs) Across(f Farads) Volts { return Volts(float64(c) / float64(f)) }

// Energy is the energy a full battery of this capacity stores at its
// nominal voltage (1 Ah at 1 V is 3600 J).
func (ah AmpHours) Energy(v Volts) Joules { return Joules(float64(ah) * 3600 * float64(v)) }

// MeanCurrent is I = Q/t: the average current behind a charge integral.
func MeanCurrent(c Coulombs, d time.Duration) Amps { return Amps(float64(c) / d.Seconds()) }

// AveragePower is P = E/t.
func AveragePower(e Joules, d time.Duration) Watts { return Watts(float64(e) / d.Seconds()) }

// IRDrop is V = I·R: the terminal-voltage sag a load current causes
// across an internal resistance.
func IRDrop(a Amps, r Ohms) Volts { return Volts(float64(a) * float64(r)) }

// MinCapacitance sizes the bulk capacitor that keeps the rail above minV
// while supplying load for d, starting from startV. +Inf when startV does
// not exceed minV: no capacitor is large enough.
func MinCapacitance(startV, minV Volts, load Amps, d time.Duration) Farads {
	if startV <= minV {
		return Farads(math.Inf(1))
	}
	return Farads(float64(load) * d.Seconds() / float64(startV-minV))
}

// BatteryLife is t = E/P, saturating at the time.Duration ceiling (~292
// years) instead of overflowing: a 2.5 µA sleeper on a fat battery
// legitimately computes lifetimes beyond int64 nanoseconds.
func BatteryLife(e Joules, p Watts) time.Duration {
	if p <= 0 {
		return time.Duration(1<<63 - 1)
	}
	seconds := float64(e) / float64(p)
	const maxSec = float64(1<<63-1) / float64(time.Second)
	if seconds > maxSec {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(seconds * float64(time.Second))
}

// Scale multiplies a quantity by a dimensionless factor, for lerp-style
// math (state-of-charge interpolation, duty cycles) that cross-type
// arithmetic rules would otherwise reject.
func Scale[T ~float64](x T, k float64) T { return T(float64(x) * k) }

// Ratio is the dimensionless quotient of two like quantities — the
// sanctioned spelling for energy errors, duty cycles and state of charge
// (same-unit division is flagged by unitsafety).
func Ratio[T ~float64](a, b T) float64 { return float64(a) / float64(b) }

// String renders the energy with the unit Table 1 uses (µJ, mJ or J),
// choosing the scale by magnitude so negative values keep their natural
// unit (-0.5 µJ, not -500000.0 µJ... or a µJ rendering of -0.5 J).
func (j Joules) String() string {
	switch abs := math.Abs(float64(j)); {
	case abs < 1e-3:
		return fmt.Sprintf("%.1f µJ", float64(j)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.1f mJ", float64(j)*1e3)
	default:
		return fmt.Sprintf("%.2f J", float64(j))
	}
}

// String renders the current in µA, mA or A, scaled by magnitude.
func (a Amps) String() string {
	switch abs := math.Abs(float64(a)); {
	case abs < 1e-3:
		return fmt.Sprintf("%.1f µA", float64(a)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.1f mA", float64(a)*1e3)
	default:
		return fmt.Sprintf("%.2f A", float64(a))
	}
}

// String renders the power in µW, mW or W, scaled by magnitude.
func (w Watts) String() string {
	switch abs := math.Abs(float64(w)); {
	case abs < 1e-3:
		return fmt.Sprintf("%.2f µW", float64(w)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2f mW", float64(w)*1e3)
	default:
		return fmt.Sprintf("%.2f W", float64(w))
	}
}
