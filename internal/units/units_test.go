package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestConstructorRoundTrip pins the constructor/accessor contract:
// MicroX(x).Micro() recovers x to within one ulp for arbitrary floats
// (x/1e6*1e6 double-rounds at pathological magnitudes), and exactly for
// every decimal literal of the kind the power tables are written with —
// TestConstructorBitExactness pins those.
func TestConstructorRoundTrip(t *testing.T) {
	within1Ulp := func(got, want float64) bool {
		if got == want {
			return true
		}
		return math.Nextafter(got, want) == want
	}
	if err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return within1Ulp(MicroJoules(x).Micro(), x) &&
			within1Ulp(MilliJoules(x).Milli(), x) &&
			within1Ulp(MicroAmps(x).Micro(), x) &&
			within1Ulp(MilliAmps(x).Milli(), x) &&
			within1Ulp(MicroWatts(x).Micro(), x) &&
			within1Ulp(MilliWatts(x).Milli(), x) &&
			within1Ulp(MilliAmpHours(x).Milli(), x) &&
			within1Ulp(MicroFarads(x).Micro(), x)
	}, nil); err != nil {
		t.Fatal(err)
	}
	// The paper's own magnitudes round-trip exactly.
	for _, x := range []float64{2.5, 0.8, 4.5, 30, 180, 1.1, 84, 71, 238.2, 19.8, 225} {
		if MicroJoules(x).Micro() != x || MilliAmps(x).Milli() != x {
			t.Errorf("paper magnitude %v does not round-trip exactly", x)
		}
	}
}

// TestConstructorBitExactness pins the property the whole migration leans
// on: a constructor call is bit-identical to spelling the base-unit
// literal directly, for every reference constant in the power tables.
func TestConstructorBitExactness(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"deep-sleep 2.5 µA", float64(MicroAmps(2.5)), 2.5e-6},
		{"light-sleep 0.8 mA", float64(MilliAmps(0.8)), 0.8e-3},
		{"wifi-ps idle 4.5 mA", float64(MilliAmps(4.5)), 4.5e-3},
		{"mcu active 30 mA", float64(MilliAmps(30)), 30e-3},
		{"tx burst 180 mA", float64(MilliAmps(180)), 180e-3},
		{"cc2541 sleep 1.1 µA", float64(MicroAmps(1.1)), 1.1e-6},
		{"wile packet 84 µJ", float64(MicroJoules(84)), 84e-6},
		{"ble event 71 µJ", float64(MicroJoules(71)), 71e-6},
		{"wifi-dc packet 238.2 mJ", float64(MilliJoules(238.2)), 238.2e-3},
		{"wifi-ps packet 19.8 mJ", float64(MilliJoules(19.8)), 19.8e-3},
		{"cr2032 225 mAh", float64(MilliAmpHours(225)), 0.225},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: constructor gives %v (% x), literal is %v (% x)",
				c.name, c.got, math.Float64bits(c.got), c.want, math.Float64bits(c.want))
		}
	}
}

func TestHelpers(t *testing.T) {
	p := Power(Volts(3.3), MilliAmps(30))
	if got := p.Milli(); math.Abs(got-99) > 1e-9 {
		t.Errorf("Power(3.3 V, 30 mA) = %v mW, want 99", got)
	}
	e := Energy(p, 2*time.Second)
	if got := float64(e); math.Abs(got-0.198) > 1e-12 {
		t.Errorf("Energy(99 mW, 2 s) = %v J, want 0.198", got)
	}
	q := Charge(MilliAmps(180), 500*time.Millisecond)
	if got := float64(q); math.Abs(got-0.09) > 1e-12 {
		t.Errorf("Charge(180 mA, 500 ms) = %v C, want 0.09", got)
	}
	if got := float64(q.Energy(Volts(3.3))); math.Abs(got-0.297) > 1e-12 {
		t.Errorf("Charge.Energy = %v J, want 0.297", got)
	}
	if got := q.AmpHours().Milli(); math.Abs(got-0.025) > 1e-9 {
		t.Errorf("0.09 C = %v mAh, want 0.025", got)
	}
	if got := float64(MilliAmpHours(225).Energy(Volts(3))); math.Abs(got-2430) > 1e-9 {
		t.Errorf("225 mAh at 3 V = %v J, want 2430", got)
	}
	if got := float64(MeanCurrent(Coulombs(0.09), 500*time.Millisecond)); math.Abs(got-0.18) > 1e-12 {
		t.Errorf("MeanCurrent(0.09 C, 500 ms) = %v A, want 0.18", got)
	}
	if got := float64(AveragePower(Joules(0.198), 2*time.Second)); math.Abs(got-0.099) > 1e-12 {
		t.Errorf("AveragePower(0.198 J, 2 s) = %v W, want 0.099", got)
	}
	if got := float64(IRDrop(Amps(0.18), Ohms(15))); math.Abs(got-2.7) > 1e-12 {
		t.Errorf("IRDrop(0.18 A, 15 Ω) = %v V, want 2.7", got)
	}
	if got := float64(Charge(Amps(0.18), time.Second).Across(MicroFarads(100))); math.Abs(got-1800) > 1e-6 {
		t.Errorf("0.18 C across 100 µF = %v V, want 1800", got)
	}
}

func TestMinCapacitance(t *testing.T) {
	got := MinCapacitance(Volts(3.0), Volts(2.43), Amps(0.18), 150*time.Microsecond)
	want := 0.18 * 150e-6 / (3.0 - 2.43)
	if math.Abs(float64(got)-want) > 1e-15 {
		t.Errorf("MinCapacitance = %v F, want %v", float64(got), want)
	}
	if !math.IsInf(float64(MinCapacitance(Volts(2.0), Volts(2.43), Amps(0.18), time.Millisecond)), 1) {
		t.Error("MinCapacitance with startV <= minV should be +Inf")
	}
}

// TestBatteryLifeSaturation pins the time.Duration-ceiling behavior: a
// 2.5 µA sleeper on any real battery computes a lifetime that must clamp,
// not overflow into the past.
func TestBatteryLifeSaturation(t *testing.T) {
	const ceiling = time.Duration(1<<63 - 1)
	if got := BatteryLife(Joules(1e30), MicroWatts(1)); got != ceiling {
		t.Errorf("huge energy / tiny power = %v, want saturation at %v", got, ceiling)
	}
	if got := BatteryLife(Joules(1), Watts(0)); got != ceiling {
		t.Errorf("zero power = %v, want saturation", got)
	}
	if got := BatteryLife(Joules(1), Watts(-1)); got != ceiling {
		t.Errorf("negative power = %v, want saturation", got)
	}
	// Exactly representable finite case: 3600 J at 1 W is one hour.
	if got := BatteryLife(Joules(3600), Watts(1)); got != time.Hour {
		t.Errorf("3600 J at 1 W = %v, want 1h", got)
	}
	// Monotone and never negative under quick.Check.
	if err := quick.Check(func(e, p float64) bool {
		e, p = math.Abs(e), math.Abs(p)
		if math.IsNaN(e) || math.IsNaN(p) || math.IsInf(e, 0) || math.IsInf(p, 0) {
			return true
		}
		return BatteryLife(Joules(e), Watts(p)) >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndRatio(t *testing.T) {
	if got := Scale(MilliAmps(100), 0.25); got != MilliAmps(25) {
		t.Errorf("Scale(100 mA, 0.25) = %v, want 25 mA", got)
	}
	if got := Ratio(MicroJoules(84), MicroJoules(71)); math.Abs(got-84.0/71.0) > 1e-15 {
		t.Errorf("Ratio(84 µJ, 71 µJ) = %v, want %v", got, 84.0/71.0)
	}
}

// TestStringNormalization pins the magnitude-scaled formatting, including
// the negative and unit-boundary cases the old float-based formatters got
// wrong (a negative joule value always fell into the µJ branch).
func TestStringNormalization(t *testing.T) {
	joules := []struct {
		in   Joules
		want string
	}{
		{MicroJoules(84), "84.0 µJ"},
		{MilliJoules(19.8), "19.8 mJ"},
		{Joules(1.5), "1.50 J"},
		{MicroJoules(-0.5), "-0.5 µJ"},
		{Joules(-0.5), "-500.0 mJ"},
		{Joules(-2), "-2.00 J"},
		{Joules(1e-3), "1.0 mJ"},
		{Joules(-1e-3), "-1.0 mJ"},
		{Joules(1), "1.00 J"},
		{Joules(0), "0.0 µJ"},
	}
	for _, c := range joules {
		if got := c.in.String(); got != c.want {
			t.Errorf("Joules(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
	amps := []struct {
		in   Amps
		want string
	}{
		{MicroAmps(2.5), "2.5 µA"},
		{MilliAmps(4.5), "4.5 mA"},
		{Amps(1.2), "1.20 A"},
		{MicroAmps(-2.5), "-2.5 µA"},
		{Amps(-0.18), "-180.0 mA"},
		{Amps(1e-3), "1.0 mA"},
		{Amps(-1), "-1.00 A"},
	}
	for _, c := range amps {
		if got := c.in.String(); got != c.want {
			t.Errorf("Amps(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
	watts := []struct {
		in   Watts
		want string
	}{
		{MicroWatts(9.65), "9.65 µW"},
		{MilliWatts(14.85), "14.85 mW"},
		{Watts(2), "2.00 W"},
		{MicroWatts(-9.65), "-9.65 µW"},
		{Watts(-1.5), "-1.50 W"},
		{Watts(1e-3), "1.00 mW"},
	}
	for _, c := range watts {
		if got := c.in.String(); got != c.want {
			t.Errorf("Watts(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}
