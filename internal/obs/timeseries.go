package obs

// Sim-time metrics timeline: a TimeSeries snapshots every metric in a
// Registry on a configurable sim-time cadence, turning end-of-run totals
// into curves (energy, throughput, drop rate over the run). Samples are
// recorded as counter events through the ordinary chunked Recorder/Sink
// pipeline, so long timelines spill to disk exactly like traces and the
// exports inherit the byte-identity contract.
//
// Like a Recorder, a TimeSeries belongs to one simulation kernel: the
// registry it samples must be fed only by that kernel while the series
// runs, or mid-run values (and therefore the series) stop being
// deterministic.

import (
	"io"
	"time"

	"wile/internal/sim"
)

// DefaultSeriesCadence is the sampling interval used when none is given:
// 200 points over a 2-second figure window.
const DefaultSeriesCadence = 10 * time.Millisecond

// TimeSeries periodically samples a Registry into a Recorder.
type TimeSeries struct {
	reg     *Registry
	rec     *Recorder
	cadence time.Duration
	tracks  map[string]TrackID
	stopped bool
}

// NewTimeSeries builds a series sampler over reg, recording through sink
// (NewMemorySink for figure-scale runs, NewSpillSink for long ones). A
// non-positive cadence means DefaultSeriesCadence.
func NewTimeSeries(reg *Registry, sink Sink, cadence time.Duration) *TimeSeries {
	if cadence <= 0 {
		cadence = DefaultSeriesCadence
	}
	return &TimeSeries{
		reg:     reg,
		rec:     NewStreamRecorder(sink),
		cadence: cadence,
		tracks:  make(map[string]TrackID),
	}
}

// track returns the series lane for name, registering it on first use.
// Lanes appear in sorted-name order of the first sample that saw them, so
// the track list is a deterministic function of the sampled registry.
func (t *TimeSeries) track(name string) TrackID {
	if id, ok := t.tracks[name]; ok {
		return id
	}
	id := t.rec.Track(name)
	t.tracks[name] = id
	return id
}

// Sample records one point per metric at the given sim time. Counters and
// gauges sample their value; histograms sample two lanes, <name>.count and
// <name>.sum. Metrics registered after a sample join at the next one.
func (t *TimeSeries) Sample(at sim.Time) {
	names := t.reg.Names()
	t.reg.mu.Lock()
	items := make(map[string]any, len(t.reg.items))
	for k, v := range t.reg.items {
		items[k] = v
	}
	t.reg.mu.Unlock()
	for _, name := range names {
		switch m := items[name].(type) {
		case *Counter:
			t.rec.Counter(t.track(name), at, float64(m.Value()))
		case *Gauge:
			t.rec.Counter(t.track(name), at, m.Value())
		case *Histogram:
			count, sum, _ := m.snapshot()
			t.rec.Counter(t.track(name+".count"), at, float64(count))
			t.rec.Counter(t.track(name+".sum"), at, sum)
		}
	}
}

// Run samples immediately and then keeps sampling every cadence of sim
// time until Stop (or the scheduler drains).
func (t *TimeSeries) Run(sched *sim.Scheduler) {
	t.stopped = false
	t.Sample(sched.Now())
	t.tick(sched)
}

func (t *TimeSeries) tick(sched *sim.Scheduler) {
	sched.DoAfter(t.cadence, func() {
		if t.stopped {
			return
		}
		t.Sample(sched.Now())
		t.tick(sched)
	})
}

// Stop ends a running series after the currently scheduled sample.
func (t *TimeSeries) Stop() { t.stopped = true }

// Len reports the number of recorded sample points.
func (t *TimeSeries) Len() int { return t.rec.Len() }

// Err reports the first sink error, if any.
func (t *TimeSeries) Err() error { return t.rec.Err() }

// WriteCSV exports the series in long format (time_us,series,value), one
// row per sampled point in record order — a pure function of the replayed
// event stream, byte-identical however the sink chunked or spilled it.
func (t *TimeSeries) WriteCSV(w io.Writer) error {
	t.rec.flush()
	if err := t.rec.Err(); err != nil {
		return err
	}
	bw := &errWriter{w: w}
	bw.printf("time_us,series,value\n")
	err := t.rec.sink.Replay(func(chunk []Event) error {
		for i := range chunk {
			e := &chunk[i]
			bw.printf("%s,%s,%s\n", micros(e.At), t.rec.tracks[e.Track], formatValue(e.Value))
		}
		return bw.err
	})
	if err != nil {
		return err
	}
	return bw.err
}

// WriteChromeTrace exports the series as Chrome trace-event JSON counter
// lanes, ready for https://ui.perfetto.dev.
func (t *TimeSeries) WriteChromeTrace(w io.Writer) error {
	return t.rec.WriteChromeTrace(w)
}
