package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramDropsNaN pins the defined NaN behavior: a NaN sample lands
// in no bucket, leaves count and sum untouched (one NaN would otherwise
// poison the sum forever), and is tallied in the dedicated drop counter
// that the snapshot exposes as "nan".
func TestHistogramDropsNaN(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_us", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(5)
	h.Observe(math.NaN())

	if got := h.Count(); got != 2 {
		t.Errorf("Count = %d, want 2 (NaN must not count as an observation)", got)
	}
	if got := h.Sum(); got != 5.5 {
		t.Errorf("Sum = %v, want 5.5 (NaN must not reach the sum)", got)
	}
	if got := h.NaNDropped(); got != 2 {
		t.Errorf("NaNDropped = %d, want 2", got)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			Count   int64   `json:"count"`
			Sum     float64 `json:"sum"`
			NaN     int64   `json:"nan"`
			Buckets []struct {
				Count int64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	hs := doc.Histograms["lat_us"]
	if hs.Count != 2 || hs.Sum != 5.5 || hs.NaN != 2 {
		t.Errorf("snapshot = %+v, want count 2, sum 5.5, nan 2", hs)
	}
	total := int64(0)
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 2 {
		t.Errorf("buckets hold %d samples, want 2 (NaN must not occupy a bucket)", total)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Errorf("snapshot leaked a NaN literal (invalid JSON):\n%s", buf.String())
	}
}

// TestHistogramSnapshotPairConsistent hammers one histogram from writers
// while snapshotting: with every observation contributing the same value,
// any consistent count/sum pair satisfies sum == count*v exactly — a torn
// pair (count read before an Observe, sum after) breaks the identity — and
// every snapshot's buckets must sum to its count. Bucket counts used to be
// atomics loaded outside the count/sum critical section, so a snapshot
// could show Σ buckets ≠ count; this test pins the single-critical-section
// fix. Run with -race for full value.
func TestHistogramSnapshotPairConsistent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("pair", []float64{1})
	const v = 0.5
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(v)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		count, sum, buckets := h.snapshot()
		if sum != float64(count)*v {
			t.Fatalf("torn snapshot: count=%d sum=%v (want %v)", count, sum, float64(count)*v)
		}
		var inBuckets int64
		for _, b := range buckets {
			inBuckets += b
		}
		if inBuckets != count {
			t.Fatalf("torn snapshot: Σ buckets=%d, count=%d", inBuckets, count)
		}
	}
	wg.Wait()
	if count, sum, _ := h.snapshot(); count != 4*perWriter || sum != 4*perWriter*v {
		t.Fatalf("final snapshot count=%d sum=%v", count, sum)
	}
}

// TestRegistryWriteJSONBucketsConsistent replays the same race through the
// public WriteJSON path: every concurrent snapshot must carry buckets that
// sum exactly to its count.
func TestRegistryWriteJSONBucketsConsistent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("race_us", []float64{1, 10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(float64(i % 200))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Histograms map[string]struct {
				Count   int64 `json:"count"`
				Buckets []struct {
					Count int64 `json:"count"`
				} `json:"buckets"`
			} `json:"histograms"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("snapshot is not valid JSON: %v", err)
		}
		hs := doc.Histograms["race_us"]
		var inBuckets int64
		for _, b := range hs.Buckets {
			inBuckets += b.Count
		}
		if inBuckets != hs.Count {
			t.Fatalf("WriteJSON snapshot torn: Σ buckets=%d, count=%d", inBuckets, hs.Count)
		}
	}
	wg.Wait()
}
