package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"wile/internal/sim"
)

// TestTimeSeriesSampling runs a series over a live registry inside a
// scheduler and checks the cadence, the per-kind lanes and the CSV shape.
func TestTimeSeriesSampling(t *testing.T) {
	sched := sim.New()
	reg := NewRegistry()
	c := reg.Counter("tx")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat", []float64{1})

	ts := NewTimeSeries(reg, NewMemorySink(), 10*time.Millisecond)
	// Drive the metrics from the kernel so samples see evolving values.
	for i := 1; i <= 4; i++ {
		i := i
		sched.DoAfter(time.Duration(i)*10*time.Millisecond-time.Millisecond, func() {
			c.Inc()
			g.Set(float64(i))
			h.Observe(float64(i))
		})
	}
	ts.Run(sched)
	sched.RunUntil(sim.FromDuration(45 * time.Millisecond))
	ts.Stop()

	// Samples at 0,10,20,30,40 ms over 4 lanes (tx, depth, lat.count,
	// lat.sum) = 20 points.
	if ts.Len() != 20 {
		t.Fatalf("recorded %d points, want 20", ts.Len())
	}
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "time_us,series,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 21 {
		t.Fatalf("CSV has %d rows, want 21", len(lines))
	}
	for _, want := range []string{
		"0.000,depth,0",
		"0.000,lat.count,0",
		"0.000,lat.sum,0",
		"0.000,tx,0",
		"10000.000,tx,1",
		"40000.000,tx,4",
		"40000.000,depth,4",
		"40000.000,lat.count,4",
		"40000.000,lat.sum,10",
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("CSV missing row %q:\n%s", want, buf.String())
		}
	}
}

// TestTimeSeriesStopsSampling: Stop must end the self-rescheduling chain.
func TestTimeSeriesStopsSampling(t *testing.T) {
	sched := sim.New()
	reg := NewRegistry()
	reg.Counter("tx")
	ts := NewTimeSeries(reg, NewMemorySink(), 10*time.Millisecond)
	ts.Run(sched)
	sched.DoAfter(25*time.Millisecond, ts.Stop)
	sched.RunUntil(sim.FromDuration(100 * time.Millisecond))
	if ts.Len() != 3 {
		t.Fatalf("recorded %d points after Stop, want 3 (0,10,20 ms)", ts.Len())
	}
}

// TestTimeSeriesSpillEquivalence pins the byte-identity contract: the same
// sampled series exports identical CSV and Chrome JSON whether it buffered
// in memory or spilled through a temp file.
func TestTimeSeriesSpillEquivalence(t *testing.T) {
	run := func(sink Sink) (*TimeSeries, string, string) {
		sched := sim.New()
		reg := NewRegistry()
		c := reg.Counter("tx")
		ts := NewTimeSeries(reg, sink, time.Millisecond)
		sched.DoAfter(500*time.Microsecond, func() {
			for i := 0; i < 2000; i++ {
				c.Inc()
			}
		})
		ts.Run(sched)
		sched.RunUntil(sim.FromDuration(5 * time.Millisecond))
		var csv, chrome bytes.Buffer
		if err := ts.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := ts.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		return ts, csv.String(), chrome.String()
	}
	_, memCSV, memChrome := run(NewMemorySink())
	spill, err := NewSpillSink("")
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	_, spillCSV, spillChrome := run(spill)
	if memCSV != spillCSV {
		t.Errorf("CSV differs between memory and spill sinks:\n%s\n---\n%s", memCSV, spillCSV)
	}
	if memChrome != spillChrome {
		t.Errorf("Chrome trace differs between memory and spill sinks")
	}
	if !strings.Contains(memChrome, `"ph":"C"`) {
		t.Errorf("Chrome export carries no counter events:\n%s", memChrome)
	}
}

// TestTimeSeriesLateMetric: metrics registered mid-run join at the next
// sample without disturbing earlier lanes.
func TestTimeSeriesLateMetric(t *testing.T) {
	sched := sim.New()
	reg := NewRegistry()
	reg.Counter("early")
	ts := NewTimeSeries(reg, NewMemorySink(), 10*time.Millisecond)
	sched.DoAfter(15*time.Millisecond, func() { reg.Counter("late").Add(7) })
	ts.Run(sched)
	sched.RunUntil(sim.FromDuration(25 * time.Millisecond))
	ts.Stop()
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "\n0.000,late") || strings.Contains(out, "\n10000.000,late") {
		t.Errorf("late metric sampled before registration:\n%s", out)
	}
	if !strings.Contains(out, "20000.000,late,7\n") {
		t.Errorf("late metric missing from the 20 ms sample:\n%s", out)
	}
}
