package obs

// Frame provenance: a per-run ledger that accounts for every transmitted
// frame at every potential receiver. The medium assigns a FrameID to each
// transmission; every (frame, receiver) pair then resolves to exactly one
// terminal outcome from the closed DropReason taxonomy. The ledger enforces
// the one-terminal-outcome rule structurally (a second resolution of the
// same pair panics — it is always an instrumentation bug) and exposes the
// conservation invariant the tests pin: per frame, potential receivers =
// delivered + Σ drops (DESIGN.md §10).
//
// Like a Recorder, a Provenance is intentionally not synchronized: it
// belongs to exactly one simulation kernel. Engine sweeps that want
// provenance attach one ledger per world.

import (
	"fmt"
	"io"
	"sort"

	"wile/internal/sim"
)

// FrameID identifies one transmission. IDs are assigned monotonically from
// 1 by Transmitted; the zero FrameID marks a frame that predates the
// ledger's attachment and is ignored by Resolve.
type FrameID uint64

// ActorID identifies one transceiver registered with the ledger.
type ActorID int32

// DropReason is the terminal outcome of one (frame, receiver) pair — or,
// for DropQueueDrop, of a frame that died transmitter-side before reaching
// the air. The set is closed: every loss in the simulation maps to exactly
// one of these, and a frame that is not dropped is Delivered.
type DropReason uint8

const (
	// Delivered: the frame was decoded and accepted (or deliberately
	// ignored by an upper layer that heard it fine — overheard traffic).
	Delivered DropReason = iota
	// DropCollided: another transmission overlapped above sensitivity
	// without a 10 dB capture margin (includes the receiver's own TX).
	DropCollided
	// DropBelowSensitivity: the signal arrived under the receiver's
	// sensitivity floor.
	DropBelowSensitivity
	// DropRadioOff: the receiver's radio was powered off (or had no
	// receive path attached) for the frame's airtime.
	DropRadioOff
	// DropFCSError: the frame check sequence failed on a non-collided
	// reception — corruption injected outside the collision model.
	DropFCSError
	// DropDedupFiltered: duplicate detection discarded a retransmission
	// (MAC rx cache or core sequence dedup).
	DropDedupFiltered
	// DropQueueDrop: the frame died in the transmitter's queue and never
	// reached the air (radio powered down with traffic pending). TX-side:
	// recorded via QueueDrop, never Resolve, and outside the per-receiver
	// conservation sum.
	DropQueueDrop
	// DropDecodeError: the payload failed structural or cryptographic
	// decoding above the FCS (truncated element, missing key, bad auth).
	DropDecodeError
)

// NumDropReasons is the size of the closed taxonomy.
const NumDropReasons = 8

// dropReasonNames renders the taxonomy in its canonical wire spelling.
var dropReasonNames = [NumDropReasons]string{
	"delivered", "collided", "below_sensitivity", "radio_off",
	"fcs_error", "dedup_filtered", "queue_drop", "decode_error",
}

// dropInstantNames are the static per-reason trace-event names, so the
// enabled trace path allocates nothing per event.
var dropInstantNames = [NumDropReasons]string{
	"", "drop collided", "drop below-sensitivity", "drop radio-off",
	"drop fcs-error", "drop dedup-filtered", "drop queue-drop", "drop decode-error",
}

// String reports the canonical snake_case name used in reports and metric
// names.
func (r DropReason) String() string {
	if int(r) < len(dropReasonNames) {
		return dropReasonNames[r]
	}
	return fmt.Sprintf("DropReason(%d)", uint8(r))
}

// frameState tracks one in-flight frame: who sent it and which potential
// receivers have not resolved yet. The seen bitmask (one bit per ActorID,
// spilling to seenBig past 64 actors) is what makes double resolution a
// detectable bug rather than a silently double-counted outcome.
type frameState struct {
	from    ActorID
	pending int32
	seen    uint64
	seenBig []uint64
}

func (f *frameState) mark(rx ActorID) (already bool) {
	if rx < 64 {
		bit := uint64(1) << uint(rx)
		already = f.seen&bit != 0
		f.seen |= bit
		return already
	}
	word, bit := int(rx)/64, uint64(1)<<(uint(rx)%64)
	for len(f.seenBig) <= word {
		f.seenBig = append(f.seenBig, 0)
	}
	already = f.seenBig[word]&bit != 0
	f.seenBig[word] |= bit
	return already
}

// linkKey names one (transmitter, receiver) edge of the drop report.
type linkKey struct{ from, to ActorID }

// ProvMetrics mirrors the ledger's per-reason totals into an obs.Registry
// as wile.medium_* counters, so CLIs and examples read drop accounting from
// the registry instead of reaching into simulator structs.
type ProvMetrics struct {
	Frames   *Counter
	Outcomes [NumDropReasons]*Counter
}

// ProvMetricsFor returns the registry's shared provenance counters,
// registering them on first use.
func ProvMetricsFor(reg *Registry) *ProvMetrics {
	m := &ProvMetrics{Frames: reg.Counter("wile.medium_frames")}
	for r := 0; r < NumDropReasons; r++ {
		name := "wile.medium_drop_" + dropReasonNames[r]
		if DropReason(r) == Delivered {
			name = "wile.medium_delivered"
		}
		m.Outcomes[r] = reg.Counter(name)
	}
	return m
}

// Provenance is the frame-accounting ledger. All methods must be called
// from a single kernel goroutine; hook sites must be nil-guarded (obsguard
// enforces this) so disabled runs stay zero-cost.
type Provenance struct {
	actors     []string
	queueDrops []int64

	next     FrameID
	inflight map[FrameID]*frameState

	potential int64
	outcomes  [NumDropReasons]int64
	links     map[linkKey]*[NumDropReasons]int64

	rec        *Recorder
	dropTracks []TrackID
	metrics    *ProvMetrics

	// mirrored* track the portion of the ledger already exported into
	// metrics, so Observe's back-fill is idempotent: re-wiring the same
	// registry (or two ledgers sharing one) never re-adds old counts.
	mirroredFrames   int64
	mirroredOutcomes [NumDropReasons]int64
	mirroredQueue    int64
}

// NewProvenance returns an empty ledger.
func NewProvenance() *Provenance {
	return &Provenance{
		inflight: make(map[FrameID]*frameState),
		links:    make(map[linkKey]*[NumDropReasons]int64),
	}
}

// Actor registers a transceiver under the given diagnostic name and returns
// its id. The medium calls this for every attached transceiver when the
// ledger is wired (and for late attachments).
func (p *Provenance) Actor(name string) ActorID {
	id := ActorID(len(p.actors))
	p.actors = append(p.actors, name)
	p.queueDrops = append(p.queueDrops, 0)
	if p.rec != nil {
		p.dropTracks = append(p.dropTracks, p.rec.Track(name+" drops"))
	}
	return id
}

// Actors reports how many transceivers are registered.
func (p *Provenance) Actors() int { return len(p.actors) }

// TraceTo attaches the ledger to a trace recorder: every drop becomes an
// instant event on a per-actor "<name> drops" track. Must be wired before
// the first drop; actors registered later get tracks as they appear.
func (p *Provenance) TraceTo(r *Recorder) {
	p.rec = r
	p.dropTracks = p.dropTracks[:0]
	if r == nil {
		return
	}
	for _, name := range p.actors {
		p.dropTracks = append(p.dropTracks, r.Track(name+" drops"))
	}
}

// Observe mirrors the ledger's totals into the registry's wile.medium_*
// counters (see ProvMetricsFor). Counts recorded before wiring are
// back-filled exactly once: calling Observe again (or wiring a second
// ledger to the same registry) never re-adds already-exported counts.
func (p *Provenance) Observe(reg *Registry) {
	m := ProvMetricsFor(reg)
	if p.metrics == nil || p.metrics.Frames != m.Frames {
		// First wiring, or a different registry: none of our counts have
		// been exported into these counters yet.
		p.mirroredFrames = 0
		p.mirroredOutcomes = [NumDropReasons]int64{}
		p.mirroredQueue = 0
	}
	p.metrics = m
	m.Frames.Add(int64(p.next) - p.mirroredFrames)
	p.mirroredFrames = int64(p.next)
	for r, n := range p.outcomes {
		m.Outcomes[r].Add(n - p.mirroredOutcomes[r])
		p.mirroredOutcomes[r] = n
	}
	queued := p.QueueDrops()
	m.Outcomes[DropQueueDrop].Add(queued - p.mirroredQueue)
	p.mirroredQueue = queued
}

// Transmitted assigns the next FrameID to a transmission from the given
// actor with the given number of potential receivers (every other attached
// transceiver). A frame with no potential receivers completes immediately.
func (p *Provenance) Transmitted(from ActorID, potential int) FrameID {
	p.next++
	id := p.next
	if p.metrics != nil {
		p.metrics.Frames.Inc()
		p.mirroredFrames++
	}
	p.potential += int64(potential)
	if potential > 0 {
		p.inflight[id] = &frameState{from: from, pending: int32(potential)}
	}
	return id
}

// Resolve records the terminal outcome of one (frame, receiver) pair. The
// zero FrameID (a frame transmitted before the ledger was attached) is
// ignored. Resolving a pair twice, resolving an unknown or completed frame,
// or resolving with DropQueueDrop (a TX-side outcome; use QueueDrop) panics:
// each is an instrumentation bug that would silently break conservation.
func (p *Provenance) Resolve(frame FrameID, rx ActorID, at sim.Time, reason DropReason) {
	if frame == 0 {
		return
	}
	if reason == DropQueueDrop {
		panic("obs: queue_drop is a TX-side outcome; record it with QueueDrop")
	}
	fs, ok := p.inflight[frame]
	if !ok {
		panic(fmt.Sprintf("obs: resolving unknown or completed frame %d at %s", frame, p.actorName(rx)))
	}
	if fs.mark(rx) {
		panic(fmt.Sprintf("obs: frame %d resolved twice at %s (%s)", frame, p.actorName(rx), reason))
	}
	fs.pending--
	if fs.pending == 0 {
		delete(p.inflight, frame)
	}
	p.outcomes[reason]++
	counts, ok := p.links[linkKey{fs.from, rx}]
	if !ok {
		counts = new([NumDropReasons]int64)
		p.links[linkKey{fs.from, rx}] = counts
	}
	counts[reason]++
	if p.metrics != nil {
		p.metrics.Outcomes[reason].Inc()
		p.mirroredOutcomes[reason]++
	}
	if p.rec != nil && reason != Delivered && int(rx) < len(p.dropTracks) {
		p.rec.Instant(p.dropTracks[rx], at, dropInstantNames[reason])
	}
}

// QueueDrop records a frame that died in from's transmit queue without
// reaching the air. It has no FrameID and no per-receiver accounting, so it
// sits outside the conservation sum (DESIGN.md §10).
func (p *Provenance) QueueDrop(from ActorID, at sim.Time) {
	p.queueDrops[from]++
	if p.metrics != nil {
		p.metrics.Outcomes[DropQueueDrop].Inc()
		p.mirroredQueue++
	}
	if p.rec != nil && int(from) < len(p.dropTracks) {
		p.rec.Instant(p.dropTracks[from], at, dropInstantNames[DropQueueDrop])
	}
}

// Frames reports how many FrameIDs have been assigned.
func (p *Provenance) Frames() int64 { return int64(p.next) }

// Potential reports the total potential receptions over all frames.
func (p *Provenance) Potential() int64 { return p.potential }

// Pending reports how many frames still have unresolved receivers.
func (p *Provenance) Pending() int { return len(p.inflight) }

// Outcomes reports the per-reason reception totals. The DropQueueDrop slot
// is always zero here; TX-side queue drops are reported by QueueDrops.
func (p *Provenance) Outcomes() [NumDropReasons]int64 { return p.outcomes }

// QueueDrops reports the total TX-side queue drops.
func (p *Provenance) QueueDrops() int64 {
	var n int64
	for _, q := range p.queueDrops {
		n += q
	}
	return n
}

// Verify checks the conservation invariant: every frame fully resolved and
// Σ outcomes = Σ potential receivers. Call it after the scheduler drained
// (deliveries are scheduled at each frame's end-of-airtime).
func (p *Provenance) Verify() error {
	if n := len(p.inflight); n != 0 {
		return fmt.Errorf("obs: provenance: %d frames still unresolved", n)
	}
	var resolved int64
	for _, n := range p.outcomes {
		resolved += n
	}
	if resolved != p.potential {
		return fmt.Errorf("obs: provenance: %d outcomes recorded for %d potential receptions", resolved, p.potential)
	}
	return nil
}

func (p *Provenance) actorName(id ActorID) string {
	if int(id) < len(p.actors) {
		return p.actors[id]
	}
	return fmt.Sprintf("actor#%d", id)
}

// sortedLinks reports the link keys ordered by (from name, to name), ids as
// a tiebreak — the deterministic row order of both report formats.
func (p *Provenance) sortedLinks() []linkKey {
	keys := make([]linkKey, 0, len(p.links))
	for k := range p.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if an, bn := p.actorName(a.from), p.actorName(b.from); an != bn {
			return an < bn
		}
		if an, bn := p.actorName(a.to), p.actorName(b.to); an != bn {
			return an < bn
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	return keys
}

// queueDropActors reports the actors with TX-side queue drops, sorted by
// name (ids as a tiebreak).
func (p *Provenance) queueDropActors() []ActorID {
	ids := make([]ActorID, 0)
	for id, n := range p.queueDrops {
		if n > 0 {
			ids = append(ids, ActorID(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if an, bn := p.actorName(ids[i]), p.actorName(ids[j]); an != bn {
			return an < bn
		}
		return ids[i] < ids[j]
	})
	return ids
}

// WriteReport renders the per-reason and per-link drop summary as a
// fixed-width table. Output is a pure function of the ledger's state:
// byte-identical across runs and GOMAXPROCS settings.
func (p *Provenance) WriteReport(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("frames %d, potential receptions %d, unresolved %d\n",
		p.next, p.potential, len(p.inflight))
	bw.printf("outcomes:\n")
	for r := 0; r < NumDropReasons; r++ {
		n := p.outcomes[r]
		if DropReason(r) == DropQueueDrop {
			n = p.QueueDrops()
		}
		bw.printf("  %-18s %d\n", dropReasonNames[r], n)
	}
	links := p.sortedLinks()
	if len(links) > 0 {
		bw.printf("links:\n")
	}
	for _, k := range links {
		bw.printf("  %s -> %s:", p.actorName(k.from), p.actorName(k.to))
		counts := p.links[k]
		for r := 0; r < NumDropReasons; r++ {
			if counts[r] > 0 {
				bw.printf(" %s=%d", dropReasonNames[r], counts[r])
			}
		}
		bw.printf("\n")
	}
	if qd := p.queueDropActors(); len(qd) > 0 {
		bw.printf("tx queue drops:\n")
		for _, id := range qd {
			bw.printf("  %s: %d\n", p.actorName(id), p.queueDrops[id])
		}
	}
	return bw.err
}

// WriteReportJSON renders the same summary as deterministic JSON: taxonomy
// order for the outcomes object, (from, to) name order for links.
func (p *Provenance) WriteReportJSON(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("{\n  \"frames\": %d,\n  \"potential\": %d,\n  \"unresolved\": %d,\n",
		p.next, p.potential, len(p.inflight))
	bw.printf("  \"outcomes\": {")
	for r := 0; r < NumDropReasons; r++ {
		n := p.outcomes[r]
		if DropReason(r) == DropQueueDrop {
			n = p.QueueDrops()
		}
		if r > 0 {
			bw.printf(",")
		}
		bw.printf("\n    %s: %d", quote(dropReasonNames[r]), n)
	}
	bw.printf("\n  },\n  \"links\": [")
	for i, k := range p.sortedLinks() {
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("\n    {\"from\": %s, \"to\": %s, \"counts\": {",
			quote(p.actorName(k.from)), quote(p.actorName(k.to)))
		counts := p.links[k]
		first := true
		for r := 0; r < NumDropReasons; r++ {
			if counts[r] == 0 {
				continue
			}
			if !first {
				bw.printf(", ")
			}
			first = false
			bw.printf("%s: %d", quote(dropReasonNames[r]), counts[r])
		}
		bw.printf("}}")
	}
	bw.printf("\n  ],\n  \"queue_drops\": [")
	for i, id := range p.queueDropActors() {
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("\n    {\"actor\": %s, \"count\": %d}", quote(p.actorName(id)), p.queueDrops[id])
	}
	bw.printf("\n  ]\n}\n")
	return bw.err
}
