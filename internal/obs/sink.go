package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"wile/internal/sim"
)

// Sink stores a Recorder's event stream between recording and export. The
// recorder hands events over in chunks (Flush); export pulls them back in
// record order (Replay). The contract that makes streaming invisible:
// Replay must yield exactly the events Flush received, unchanged and in
// order — chunk boundaries may differ — so WriteChromeTrace produces
// byte-identical output over any correct implementation.
type Sink interface {
	// Flush appends one chunk of events to the store. The slice is reused
	// by the recorder after the call returns; implementations must copy
	// what they keep.
	Flush(chunk []Event) error
	// Replay streams the stored events to yield, in record order, without
	// consuming them: a second Replay sees the same stream, and events
	// flushed afterwards append behind it.
	Replay(yield func(chunk []Event) error) error
	// Len reports the number of stored events.
	Len() int
	// Close releases backing resources (spill files). The sink is
	// unusable afterwards.
	Close() error
}

// MemorySink buffers the whole event stream in memory — the classic
// recorder storage. Cheap per event, unbounded overall: a firehose run
// holds every event live until export.
type MemorySink struct {
	events []Event
}

// NewMemorySink returns an empty in-memory store.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Flush appends the chunk to the in-memory log.
func (m *MemorySink) Flush(chunk []Event) error {
	m.events = append(m.events, chunk...)
	return nil
}

// Replay yields the whole log as one chunk.
func (m *MemorySink) Replay(yield func(chunk []Event) error) error {
	return yield(m.events)
}

// Len reports the number of stored events.
func (m *MemorySink) Len() int { return len(m.events) }

// Close drops the log.
func (m *MemorySink) Close() error {
	m.events = nil
	return nil
}

// SpillSink encodes each flushed chunk to a temp file in a compact binary
// framing, keeping live memory at O(chunk) + O(unique names) no matter how
// long the trace grows — export cost scales with the chunk, not the trace.
// Event names are interned through a string table (they repeat massively:
// "dispatch", power-state names, MAC span labels), so the file stays a few
// tens of bytes per event and replay allocates each distinct name once.
//
// The framing is private to one process run — records are:
//
//	'S' uvarint(len) bytes...   define the next string-table id
//	'E' uvarint(track) ph varint(at) varint(dur) uvarint(nameID+1|0)
//	    [8-byte value, counters only]
type SpillSink struct {
	f     *os.File
	ids   map[string]uint32 // encode-side intern table
	buf   []byte            // encode scratch, reused per chunk
	n     int
	atEnd bool // file offset is at the append position
}

// spill record tags.
const (
	spillString = 'S'
	spillEvent  = 'E'
)

// spillReadBuf sizes the replay read buffer; no single record comes close.
const spillReadBuf = 64 << 10

// NewSpillSink creates a spill store backed by a fresh temp file in dir
// (the default temp directory when dir is empty). Close removes the file.
func NewSpillSink(dir string) (*SpillSink, error) {
	f, err := os.CreateTemp(dir, "wile-trace-*.spill")
	if err != nil {
		return nil, fmt.Errorf("obs: creating spill file: %w", err)
	}
	return &SpillSink{f: f, ids: make(map[string]uint32), atEnd: true}, nil
}

// Flush encodes the chunk and appends it to the spill file.
func (s *SpillSink) Flush(chunk []Event) error {
	if s.f == nil {
		return fmt.Errorf("obs: spill sink is closed")
	}
	if !s.atEnd {
		if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("obs: seeking spill file: %w", err)
		}
		s.atEnd = true
	}
	s.buf = s.buf[:0]
	for i := range chunk {
		s.buf = s.appendEvent(s.buf, &chunk[i])
	}
	if _, err := s.f.Write(s.buf); err != nil {
		return fmt.Errorf("obs: writing spill file: %w", err)
	}
	s.n += len(chunk)
	return nil
}

// appendEvent encodes one event, interning its name.
func (s *SpillSink) appendEvent(b []byte, e *Event) []byte {
	nameID := uint64(0)
	if e.Name != "" {
		id, ok := s.ids[e.Name]
		if !ok {
			id = uint32(len(s.ids))
			s.ids[e.Name] = id
			b = append(b, spillString)
			b = binary.AppendUvarint(b, uint64(len(e.Name)))
			b = append(b, e.Name...)
		}
		nameID = uint64(id) + 1
	}
	b = append(b, spillEvent)
	b = binary.AppendUvarint(b, uint64(e.Track))
	b = append(b, e.Ph)
	b = binary.AppendVarint(b, int64(e.At))
	b = binary.AppendVarint(b, int64(e.Dur))
	b = binary.AppendUvarint(b, nameID)
	if e.Ph == phCounter {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Value))
	}
	return b
}

// Replay decodes the spill file from the start, yielding fixed-size chunks.
// Live memory during replay is one chunk plus the rebuilt string table.
func (s *SpillSink) Replay(yield func(chunk []Event) error) error {
	if s.f == nil {
		return fmt.Errorf("obs: spill sink is closed")
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("obs: rewinding spill file: %w", err)
	}
	s.atEnd = false
	d := &spillDecoder{r: s.f}
	chunk := make([]Event, 0, ChunkEvents)
	for {
		e, ok, err := d.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		chunk = append(chunk, e)
		if len(chunk) == cap(chunk) {
			if err := yield(chunk); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
	}
	return yield(chunk)
}

// Len reports the number of spilled events.
func (s *SpillSink) Len() int { return s.n }

// Close closes and removes the spill file.
func (s *SpillSink) Close() error {
	if s.f == nil {
		return nil
	}
	name := s.f.Name()
	err := s.f.Close()
	s.f = nil
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// spillDecoder streams records back out of the spill file, rebuilding the
// string table as definitions arrive.
type spillDecoder struct {
	r     io.Reader
	buf   []byte // read buffer
	have  []byte // unparsed window into buf
	names []string
	eof   bool
}

// next decodes the next event, skipping string definitions. ok is false at
// a clean end of stream.
func (d *spillDecoder) next() (Event, bool, error) {
	for {
		tag, err := d.byte()
		if err == io.EOF {
			return Event{}, false, nil
		}
		if err != nil {
			return Event{}, false, err
		}
		switch tag {
		case spillString:
			n, err := d.uvarint()
			if err != nil {
				return Event{}, false, err
			}
			raw, err := d.bytes(int(n))
			if err != nil {
				return Event{}, false, err
			}
			d.names = append(d.names, string(raw))
		case spillEvent:
			var e Event
			track, err := d.uvarint()
			if err != nil {
				return Event{}, false, err
			}
			e.Track = TrackID(track)
			ph, err := d.byte()
			if err != nil {
				return Event{}, false, err
			}
			e.Ph = ph
			at, err := d.varint()
			if err != nil {
				return Event{}, false, err
			}
			e.At = sim.Time(at)
			dur, err := d.varint()
			if err != nil {
				return Event{}, false, err
			}
			e.Dur = sim.Time(dur)
			nameID, err := d.uvarint()
			if err != nil {
				return Event{}, false, err
			}
			if nameID > 0 {
				if int(nameID) > len(d.names) {
					return Event{}, false, fmt.Errorf("obs: spill file names %d before defining it", nameID-1)
				}
				e.Name = d.names[nameID-1]
			}
			if e.Ph == phCounter {
				raw, err := d.bytes(8)
				if err != nil {
					return Event{}, false, err
				}
				e.Value = math.Float64frombits(binary.LittleEndian.Uint64(raw))
			}
			return e, true, nil
		default:
			return Event{}, false, fmt.Errorf("obs: corrupt spill file (tag %q)", tag)
		}
	}
}

// fill ensures at least n unparsed bytes are buffered, or reports io.EOF
// (clean only at a record boundary; callers of byte detect that).
func (d *spillDecoder) fill(n int) error {
	for len(d.have) < n {
		if d.eof {
			if len(d.have) == 0 {
				return io.EOF
			}
			return io.ErrUnexpectedEOF
		}
		if cap(d.buf) == 0 {
			d.buf = make([]byte, spillReadBuf)
		}
		copy(d.buf, d.have)
		read, err := d.r.Read(d.buf[len(d.have):cap(d.buf)])
		d.have = d.buf[:len(d.have)+read]
		if err == io.EOF {
			d.eof = true
		} else if err != nil {
			return fmt.Errorf("obs: reading spill file: %w", err)
		}
	}
	return nil
}

func (d *spillDecoder) byte() (byte, error) {
	if err := d.fill(1); err != nil {
		return 0, err
	}
	b := d.have[0]
	d.have = d.have[1:]
	return b, nil
}

func (d *spillDecoder) bytes(n int) ([]byte, error) {
	if n > spillReadBuf {
		return nil, fmt.Errorf("obs: spill record of %d bytes exceeds the read buffer", n)
	}
	if err := d.fill(n); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	raw := d.have[:n]
	d.have = d.have[n:]
	return raw, nil
}

func (d *spillDecoder) uvarint() (uint64, error) {
	var v uint64
	for shift := 0; ; shift += 7 {
		b, err := d.byte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if shift >= 64 {
			return 0, fmt.Errorf("obs: corrupt spill varint")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
}

func (d *spillDecoder) varint() (int64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	// zigzag decode, mirroring binary.AppendVarint.
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, nil
}
