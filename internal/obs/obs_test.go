package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"wile/internal/sim"
)

func TestChromeTraceIsValidJSON(t *testing.T) {
	r := NewRecorder()
	dev := r.Track("dev:1")
	cur := r.Track("current_mA")
	r.Begin(dev, 0, "deep-sleep")
	r.End(dev, 200*sim.Millisecond)
	r.Begin(dev, 200*sim.Millisecond, "cpu-active")
	r.Span(dev, 210*sim.Millisecond, 211*sim.Millisecond, "tx beacon")
	r.Instant(dev, 211*sim.Millisecond, "Sleep")
	r.Counter(cur, 0, 0.0025)
	r.Counter(cur, 200*sim.Millisecond, 30)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 2×(thread_name+sort) + 7 events.
	if got, want := len(doc.TraceEvents), 1+4+7; got != want {
		t.Fatalf("trace has %d events, want %d", got, want)
	}
	for _, e := range doc.TraceEvents {
		if _, ok := e["ph"]; !ok {
			t.Fatalf("event missing ph: %v", e)
		}
	}
	if !strings.Contains(buf.String(), `"name":"dev:1"`) {
		t.Errorf("thread_name metadata missing:\n%s", buf.String())
	}
	// The 210 ms span must carry µs timestamps: 210000.000.
	if !strings.Contains(buf.String(), `"ts":210000.000`) {
		t.Errorf("span timestamp not in microseconds:\n%s", buf.String())
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRecorder()
		a := r.Track("a")
		c := r.Track("cnt")
		for i := 0; i < 100; i++ {
			at := sim.Time(i) * sim.Microsecond
			r.Instant(a, at, "tick")
			r.Counter(c, at, float64(i)*0.1)
		}
		var buf bytes.Buffer
		if err := r.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical recordings exported different bytes")
	}
}

func TestObserveScheduler(t *testing.T) {
	s := sim.New()
	r := NewRecorder()
	ObserveScheduler(r, s, r.Track("sched"))
	n := 0
	s.After(time.Millisecond, func() { n++ })
	s.After(2*time.Millisecond, func() { n++ })
	s.Run()
	if n != 2 {
		t.Fatalf("fired %d events", n)
	}
	if r.Len() != 2 {
		t.Fatalf("recorded %d dispatch events, want 2", r.Len())
	}
}

// TestMicrosFormatsNegatives pins the timestamp formatter, in particular
// the negative-time rendering: -1500 ns must read "-1.500", not the
// "-1.-500" garbage integer division used to produce (JSON numbers with an
// interior minus sign silently corrupt the whole export).
func TestMicrosFormatsNegatives(t *testing.T) {
	cases := []struct {
		t    sim.Time
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1500, "1.500"},
		{210 * sim.Millisecond, "210000.000"},
		{-1, "-0.001"},
		{-999, "-0.999"},
		{-1000, "-1.000"},
		{-1500, "-1.500"},
		{-210 * sim.Millisecond, "-210000.000"},
	}
	for _, c := range cases {
		if got := micros(c.t); got != c.want {
			t.Errorf("micros(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}

// TestSpanAndEndClampNegativeDurations pins the recorder's defense against
// time-travelling slices: a Span whose end precedes its start exports as a
// zero-length slice at start, and an End before its matching Begin closes
// at the Begin's timestamp.
func TestSpanAndEndClampNegativeDurations(t *testing.T) {
	r := NewRecorder()
	tr := r.Track("t")
	r.Span(tr, 2000, 500, "backwards")
	r.Begin(tr, 3000, "state")
	r.End(tr, 1000) // before its Begin
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ts":2.000,"dur":0.000`) {
		t.Errorf("backwards span not clamped to zero duration:\n%s", out)
	}
	if !strings.Contains(out, `"ph":"E","pid":1,"tid":1,"ts":3.000`) {
		t.Errorf("early End not clamped to its Begin timestamp:\n%s", out)
	}
	if strings.Contains(out, `":-`) || strings.Contains(out, ".-") {
		t.Errorf("clamped trace still contains a negative value:\n%s", out)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("mac.tx_frames")
	c.Inc()
	c.Add(2)
	if got := reg.Counter("mac.tx_frames").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3 (get-or-create must share state)", got)
	}
	g := reg.Gauge("engine.workers")
	g.Set(8)
	if g.Value() != 8 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := reg.Histogram("energy_uj", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 84, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if h.Sum() != 5139 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				LE    any   `json:"le"`
				Count int64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["mac.tx_frames"] != 3 {
		t.Errorf("snapshot counter = %d", doc.Counters["mac.tx_frames"])
	}
	if doc.Gauges["engine.workers"] != 8 {
		t.Errorf("snapshot gauge = %v", doc.Gauges["engine.workers"])
	}
	hs := doc.Histograms["energy_uj"]
	if hs.Count != 4 || len(hs.Buckets) != 4 {
		t.Errorf("snapshot histogram = %+v", hs)
	}
	// Bucket layout: ≤10:1(5), ≤100:2(50,84), ≤1000:0, +Inf:1(5000).
	wantCounts := []int64{1, 2, 0, 1}
	for i, b := range hs.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() []byte {
		reg := NewRegistry()
		// Register in one order, bump in another; output must sort.
		reg.Counter("z.last").Add(1)
		reg.Counter("a.first").Add(2)
		reg.Gauge("m.mid").Set(0.5)
		reg.Histogram("h", []float64{1}).Observe(0.25)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(string(a), "\"a.first\": 2") {
		t.Errorf("snapshot missing counter:\n%s", a)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x")
	reg.Gauge("x")
}
