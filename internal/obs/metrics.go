package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Increments are
// atomic so counters shared across engine workers stay exact; integer
// addition is commutative, so totals are independent of worker scheduling.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets, count and sum update
// and snapshot under one lock, so a snapshot never reports a combination no
// real instant produced: Σ buckets always equals count (the torn-read test
// pins this). Observe must still be called from deterministic call sites (a
// kernel goroutine, or the caller side of an engine sweep) when snapshots
// need to be byte-identical across runs — which is how every histogram in
// this repository is fed.
type Histogram struct {
	bounds  []float64 // inclusive upper bounds, ascending; implicit +Inf last
	nan     atomic.Int64
	mu      sync.Mutex
	buckets []int64 // guarded by mu
	count   int64   // guarded by mu
	sum     float64 // guarded by mu
}

// Observe records one sample. NaN is not a measurement: it would poison
// the running sum for good and has no bucket it meaningfully belongs to,
// so NaN samples are dropped and tallied in a dedicated counter
// (NaNDropped, the "nan" field of the snapshot) instead.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		h.nan.Add(1)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// NaNDropped reports how many NaN samples Observe discarded.
func (h *Histogram) NaNDropped() int64 { return h.nan.Load() }

// snapshot reads buckets, count and sum in one critical section, so the
// three always belong to the same observation prefix even when a snapshot
// races an Observe — Σ buckets equals count in every snapshot.
func (h *Histogram) snapshot() (count int64, sum float64, buckets []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, append([]int64(nil), h.buckets...)
}

// Registry is a named collection of metrics. Metric constructors are
// get-or-create, so independent components that agree on a name (every
// mac.Port wired to the registry, say) share one aggregate metric. A
// Registry is safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	names []string       // registration order; snapshots sort; guarded by mu
	items map[string]any // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]any)}
}

// Counter returns the named counter, creating it on first use. Registering
// a name twice with different metric kinds panics: it is always a wiring
// bug, and silently returning a fresh metric would split the series.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if it, ok := r.items[name]; ok {
		c, ok := it.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, it))
		}
		return c
	}
	c := &Counter{}
	r.register(name, c)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if it, ok := r.items[name]; ok {
		g, ok := it.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, it))
		}
		return g
	}
	g := &Gauge{}
	r.register(name, g)
	return g
}

// Histogram returns the named histogram with the given ascending upper
// bucket bounds (an implicit +Inf bucket is appended), creating it on
// first use. Re-registration returns the existing histogram; the bounds of
// the first registration win.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if it, ok := r.items[name]; ok {
		h, ok := it.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, it))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]int64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// register records the metric; the caller holds r.mu.
//
//wile:holds r.mu
func (r *Registry) register(name string, it any) {
	r.items[name] = it
	r.names = append(r.names, name)
}

// Names reports the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}

// WriteJSON snapshots every metric as a single JSON object, grouped by
// kind and sorted by name — a deterministic serialization of deterministic
// values, so two identical runs snapshot byte-identically.
func (r *Registry) WriteJSON(w io.Writer) error {
	names := r.Names()
	r.mu.Lock()
	items := make(map[string]any, len(r.items))
	for k, v := range r.items {
		items[k] = v
	}
	r.mu.Unlock()

	bw := &errWriter{w: w}
	bw.printf("{\n  \"counters\": {")
	writeKind(bw, names, func(name string) (string, bool) {
		c, ok := items[name].(*Counter)
		if !ok {
			return "", false
		}
		return strconv.FormatInt(c.Value(), 10), true
	})
	bw.printf("},\n  \"gauges\": {")
	writeKind(bw, names, func(name string) (string, bool) {
		g, ok := items[name].(*Gauge)
		if !ok {
			return "", false
		}
		return formatValue(g.Value()), true
	})
	bw.printf("},\n  \"histograms\": {")
	writeKind(bw, names, func(name string) (string, bool) {
		h, ok := items[name].(*Histogram)
		if !ok {
			return "", false
		}
		count, sum, buckets := h.snapshot()
		var b []byte
		b = append(b, `{"count":`...)
		b = strconv.AppendInt(b, count, 10)
		b = append(b, `,"sum":`...)
		b = append(b, formatValue(sum)...)
		b = append(b, `,"nan":`...)
		b = strconv.AppendInt(b, h.NaNDropped(), 10)
		b = append(b, `,"buckets":[`...)
		for i := range buckets {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"le":`...)
			if i < len(h.bounds) {
				b = append(b, formatValue(h.bounds[i])...)
			} else {
				b = append(b, `"+Inf"`...)
			}
			b = append(b, `,"count":`...)
			b = strconv.AppendInt(b, buckets[i], 10)
			b = append(b, '}')
		}
		b = append(b, `]}`...)
		return string(b), true
	})
	bw.printf("}\n}\n")
	return bw.err
}

// writeKind emits the "name": value pairs of one metric kind.
func writeKind(bw *errWriter, names []string, value func(name string) (string, bool)) {
	first := true
	for _, name := range names {
		v, ok := value(name)
		if !ok {
			continue
		}
		if !first {
			bw.printf(",")
		}
		first = false
		bw.printf("\n    %s: %s", quote(name), v)
	}
	if !first {
		bw.printf("\n  ")
	}
}
