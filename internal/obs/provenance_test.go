package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestProvenanceConservation walks a small ledger through every RX-side
// outcome and checks the invariant Verify pins: Σ outcomes == Σ potential
// receivers, with per-frame completion tracked exactly.
func TestProvenanceConservation(t *testing.T) {
	p := NewProvenance()
	tx := p.Actor("tx")
	rxA := p.Actor("rx-a")
	rxB := p.Actor("rx-b")

	f1 := p.Transmitted(tx, 2)
	if f1 != 1 {
		t.Fatalf("first frame id = %d, want 1", f1)
	}
	p.Resolve(f1, rxA, 10, Delivered)
	if err := p.Verify(); err == nil {
		t.Fatal("Verify passed with an unresolved receiver")
	}
	if p.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", p.Pending())
	}
	p.Resolve(f1, rxB, 10, DropBelowSensitivity)

	f2 := p.Transmitted(tx, 2)
	p.Resolve(f2, rxA, 20, DropCollided)
	p.Resolve(f2, rxB, 20, DropRadioOff)

	f3 := p.Transmitted(rxA, 2)
	p.Resolve(f3, tx, 30, DropFCSError)
	p.Resolve(f3, rxB, 30, DropDedupFiltered)

	f4 := p.Transmitted(rxB, 2)
	p.Resolve(f4, tx, 40, DropDecodeError)
	p.Resolve(f4, rxA, 40, Delivered)

	p.QueueDrop(tx, 50)

	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := p.Frames(); got != 4 {
		t.Errorf("Frames = %d, want 4", got)
	}
	if got := p.Potential(); got != 8 {
		t.Errorf("Potential = %d, want 8", got)
	}
	out := p.Outcomes()
	var total int64
	for _, n := range out {
		total += n
	}
	if total != p.Potential() {
		t.Errorf("Σ outcomes = %d, want %d", total, p.Potential())
	}
	if out[Delivered] != 2 || out[DropCollided] != 1 || out[DropQueueDrop] != 0 {
		t.Errorf("outcomes = %v", out)
	}
	if got := p.QueueDrops(); got != 1 {
		t.Errorf("QueueDrops = %d, want 1", got)
	}
}

// TestProvenanceDoubleResolvePanics pins the one-terminal-outcome rule: a
// second resolution of the same (frame, receiver) pair is an
// instrumentation bug and must panic, not double-count.
func TestProvenanceDoubleResolvePanics(t *testing.T) {
	p := NewProvenance()
	tx := p.Actor("tx")
	rxA := p.Actor("rx-a")
	p.Actor("rx-b")
	f := p.Transmitted(tx, 2)
	p.Resolve(f, rxA, 0, Delivered)

	mustPanic(t, "double resolve", func() { p.Resolve(f, rxA, 0, DropCollided) })
	mustPanic(t, "unknown frame", func() { p.Resolve(f+100, rxA, 0, Delivered) })
	mustPanic(t, "queue_drop via Resolve", func() { p.Resolve(f, 2, 0, DropQueueDrop) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestProvenanceZeroFrameIgnored: frames transmitted before the ledger was
// attached carry FrameID 0 and must be ignored, so late wiring is safe.
func TestProvenanceZeroFrameIgnored(t *testing.T) {
	p := NewProvenance()
	rx := p.Actor("rx")
	p.Resolve(0, rx, 0, Delivered)
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify after zero-frame resolve: %v", err)
	}
}

// TestProvenanceReportDeterminism builds the same ledger twice (second time
// with actors registered in a different order) and checks that both report
// formats are byte-identical per ledger state and sorted by actor name.
func TestProvenanceReportDeterminism(t *testing.T) {
	build := func() *Provenance {
		p := NewProvenance()
		tx := p.Actor("zeta")
		rx := p.Actor("alpha")
		f := p.Transmitted(tx, 1)
		p.Resolve(f, rx, 0, DropCollided)
		g := p.Transmitted(rx, 1)
		p.Resolve(g, tx, 5, Delivered)
		p.QueueDrop(tx, 9)
		return p
	}
	var a, b bytes.Buffer
	if err := build().WriteReport(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("text report not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	// alpha -> zeta sorts before zeta -> alpha.
	txt := a.String()
	if !strings.Contains(txt, "alpha -> zeta: delivered=1") {
		t.Errorf("report missing sorted link rows:\n%s", txt)
	}
	if strings.Index(txt, "alpha -> zeta") > strings.Index(txt, "zeta -> alpha") {
		t.Errorf("links not sorted by name:\n%s", txt)
	}

	var j bytes.Buffer
	if err := build().WriteReportJSON(&j); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Frames     int64            `json:"frames"`
		Potential  int64            `json:"potential"`
		Unresolved int64            `json:"unresolved"`
		Outcomes   map[string]int64 `json:"outcomes"`
		Links      []struct {
			From   string           `json:"from"`
			To     string           `json:"to"`
			Counts map[string]int64 `json:"counts"`
		} `json:"links"`
		QueueDrops []struct {
			Actor string `json:"actor"`
			Count int64  `json:"count"`
		} `json:"queue_drops"`
	}
	if err := json.Unmarshal(j.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, j.String())
	}
	if doc.Frames != 2 || doc.Potential != 2 || doc.Unresolved != 0 {
		t.Errorf("JSON header = %+v", doc)
	}
	if len(doc.Outcomes) != NumDropReasons {
		t.Errorf("outcomes object has %d keys, want the closed set of %d", len(doc.Outcomes), NumDropReasons)
	}
	if doc.Outcomes["collided"] != 1 || doc.Outcomes["queue_drop"] != 1 {
		t.Errorf("outcomes = %v", doc.Outcomes)
	}
	if len(doc.Links) != 2 || doc.Links[0].From != "alpha" {
		t.Errorf("links = %+v", doc.Links)
	}
	if len(doc.QueueDrops) != 1 || doc.QueueDrops[0].Actor != "zeta" {
		t.Errorf("queue_drops = %+v", doc.QueueDrops)
	}
}

// TestProvenanceObserve checks the registry mirror, including the back-fill
// of counts recorded before Observe was wired.
func TestProvenanceObserve(t *testing.T) {
	p := NewProvenance()
	tx := p.Actor("tx")
	rx := p.Actor("rx")
	f := p.Transmitted(tx, 1)
	p.Resolve(f, rx, 0, DropCollided)
	p.QueueDrop(tx, 0)

	reg := NewRegistry()
	p.Observe(reg)

	g := p.Transmitted(tx, 1)
	p.Resolve(g, rx, 1, Delivered)

	for name, want := range map[string]int64{
		"wile.medium_frames":          2,
		"wile.medium_delivered":       1,
		"wile.medium_drop_collided":   1,
		"wile.medium_drop_queue_drop": 1,
		"wile.medium_drop_radio_off":  0,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestProvenanceObserveIdempotent: re-wiring the same registry must not
// re-add counts already exported, whether they arrived by back-fill or
// through the live hooks; a fresh registry gets a full back-fill once.
func TestProvenanceObserveIdempotent(t *testing.T) {
	p := NewProvenance()
	tx := p.Actor("tx")
	rx := p.Actor("rx")
	f := p.Transmitted(tx, 1)
	p.Resolve(f, rx, 0, DropCollided)
	p.QueueDrop(tx, 0)

	reg := NewRegistry()
	p.Observe(reg)
	p.Observe(reg) // immediate re-wiring: back-fill must not repeat

	g := p.Transmitted(tx, 1)
	p.Resolve(g, rx, 1, Delivered)
	p.Observe(reg) // re-wiring after live increments must add nothing

	for name, want := range map[string]int64{
		"wile.medium_frames":          2,
		"wile.medium_delivered":       1,
		"wile.medium_drop_collided":   1,
		"wile.medium_drop_queue_drop": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d after double Observe, want %d", name, got, want)
		}
	}

	// A different registry starts from zero and gets everything exactly once.
	reg2 := NewRegistry()
	p.Observe(reg2)
	p.Observe(reg2)
	for name, want := range map[string]int64{
		"wile.medium_frames":          2,
		"wile.medium_delivered":       1,
		"wile.medium_drop_collided":   1,
		"wile.medium_drop_queue_drop": 1,
	} {
		if got := reg2.Counter(name).Value(); got != want {
			t.Errorf("fresh registry %s = %d, want %d", name, got, want)
		}
	}
}

// TestProvenanceTraceInstants checks that drops (and only drops) land as
// instant events on per-actor tracks.
func TestProvenanceTraceInstants(t *testing.T) {
	p := NewProvenance()
	tx := p.Actor("tx")
	rx := p.Actor("rx")
	rec := NewRecorder()
	p.TraceTo(rec)
	if rec.Tracks() != 2 {
		t.Fatalf("TraceTo registered %d tracks, want 2", rec.Tracks())
	}

	f := p.Transmitted(tx, 1)
	p.Resolve(f, rx, 100, Delivered) // delivered: no instant
	g := p.Transmitted(tx, 1)
	p.Resolve(g, rx, 200, DropCollided)
	p.QueueDrop(tx, 300)

	late := p.Actor("late") // actors registered after TraceTo get tracks too
	if rec.Tracks() != 3 {
		t.Fatalf("late actor got no track (have %d)", rec.Tracks())
	}
	h := p.Transmitted(tx, 2)
	p.Resolve(h, rx, 400, Delivered)
	p.Resolve(h, late, 400, DropRadioOff)

	if rec.Len() != 3 {
		t.Fatalf("recorded %d events, want 3 (collided, queue-drop, radio-off)", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"drop collided", "drop queue-drop", "drop radio-off", `"rx drops"`, `"late drops"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"delivered"`) {
		t.Errorf("delivered outcomes must not emit instants:\n%s", out)
	}
}

// TestProvenanceManyActors exercises the >64-actor bitmask spill.
func TestProvenanceManyActors(t *testing.T) {
	p := NewProvenance()
	const n = 130
	ids := make([]ActorID, n)
	for i := range ids {
		ids[i] = p.Actor("a")
	}
	f := p.Transmitted(ids[0], n-1)
	for _, rx := range ids[1:] {
		p.Resolve(f, rx, 0, Delivered)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	mustPanic(t, "double resolve past word 0", func() { p.Resolve(f, ids[n-1], 0, Delivered) })
}
