// Package obs is the simulator's observability layer: a sim-time trace
// recorder and a metrics registry that turn one run into the two views a
// production system is debugged through — a timeline and a set of counters.
//
// The paper's entire argument is a waveform (Figures 3a/3b are
// current-vs-time traces, Table 1 is their integral), so the layer is built
// around the same discipline as the simulation itself: every recorded
// event is keyed exclusively on sim.Time. No wall clock, no goroutine IDs,
// no map iteration feeds an export, which makes traces and metric
// snapshots byte-identical across runs and across GOMAXPROCS — the engine
// determinism contract (DESIGN.md §7) extended to observability.
//
// Cost model. Instrumented packages never call into obs unconditionally:
// every hook is a nil-guarded pointer in the host struct (the same pattern
// as mac.Port.Monitor), so a simulation with observability disabled pays
// one predictable branch per hook site and zero allocations — proven by
// BenchmarkObsDisabled. The wile-vet obsguard analyzer enforces the guard
// mechanically. With a Recorder attached, recording one event is a slice
// append (amortized one allocation per doubling); formatting work happens
// only at export time.
//
// Trace model. A Recorder owns a set of named tracks (one per device, MAC
// port, or instrument) and an ordered event log of slices (Span, Begin/End),
// instants and counter samples. WriteChromeTrace exports the log in the
// Chrome trace-event JSON format, which https://ui.perfetto.dev opens
// directly as a timeline: tracks become threads, counter tracks become
// counter lanes.
package obs

import (
	"fmt"
	"io"
	"strconv"

	"wile/internal/sim"
)

// TrackID names one timeline lane of a Recorder.
type TrackID int32

// phase codes, matching the Chrome trace-event "ph" field.
const (
	phSpan    = 'X' // complete slice: ts + dur
	phBegin   = 'B' // open slice
	phEnd     = 'E' // close the innermost open slice
	phInstant = 'i' // instant
	phCounter = 'C' // counter sample
)

// event is one recorded trace event. Events are stored raw and formatted
// only at export, keeping the record path allocation-free apart from the
// amortized slice growth.
type event struct {
	at    sim.Time
	dur   sim.Time
	value float64
	name  string
	track TrackID
	ph    byte
}

// Recorder collects sim-time-stamped trace events.
//
// A Recorder is intentionally not synchronized: each simulation kernel is
// single-goroutine by design (the experiment engine parallelizes across
// kernels, never within one), so a Recorder must be attached to exactly
// one kernel's components. Parallel sweeps that want traces attach one
// Recorder per point.
type Recorder struct {
	tracks []string
	events []event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Track registers a new timeline lane and returns its id. Tracks appear in
// the exported trace in registration order.
func (r *Recorder) Track(name string) TrackID {
	r.tracks = append(r.tracks, name)
	return TrackID(len(r.tracks) - 1)
}

// Tracks reports the number of registered tracks.
func (r *Recorder) Tracks() int { return len(r.tracks) }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Span records a complete slice [start, end) on the track. Spans may be
// recorded at the moment they end (the natural point for a state machine
// that learns durations retroactively); export order is record order and
// the format does not require time-sorted events.
func (r *Recorder) Span(track TrackID, start, end sim.Time, name string) {
	r.events = append(r.events, event{ph: phSpan, track: track, at: start, dur: end - start, name: name})
}

// Begin opens a slice on the track. Slices on one track must nest; an
// unmatched Begin stays open to the end of the trace, which Perfetto
// renders as running off the right edge — exactly right for "the state the
// device was left in".
func (r *Recorder) Begin(track TrackID, at sim.Time, name string) {
	r.events = append(r.events, event{ph: phBegin, track: track, at: at, name: name})
}

// End closes the innermost open slice on the track.
func (r *Recorder) End(track TrackID, at sim.Time) {
	r.events = append(r.events, event{ph: phEnd, track: track, at: at})
}

// Instant records a zero-duration event on the track.
func (r *Recorder) Instant(track TrackID, at sim.Time, name string) {
	r.events = append(r.events, event{ph: phInstant, track: track, at: at, name: name})
}

// Counter records a sample of the track's counter series; the track name is
// the series name. Callers that sample a mostly-flat signal should record
// only on change — the meter does — so a 50 kSa/s waveform costs one event
// per plateau rather than one per sample.
func (r *Recorder) Counter(track TrackID, at sim.Time, value float64) {
	r.events = append(r.events, event{ph: phCounter, track: track, at: at, value: value})
}

// ObserveScheduler wires the kernel's dispatch hook to an instant event per
// fired simulation event on the given track. This is the firehose view —
// every timer tick and meter sample becomes an event — so figure-scale runs
// keep it off and debugging sessions (wile-trace -sched) turn it on.
func ObserveScheduler(r *Recorder, sched *sim.Scheduler, track TrackID) {
	sched.OnDispatch = func(at sim.Time) { r.Instant(track, at, "dispatch") }
}

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON
// (the "JSON Array Format" with a traceEvents wrapper), ready for
// https://ui.perfetto.dev or chrome://tracing. The output is a pure
// function of the recorded events: two identical simulations export
// byte-identical traces.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	bw.printf("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"wile-sim\"}}")
	for i, name := range r.tracks {
		bw.printf(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}", i+1, quote(name))
		bw.printf(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}", i+1, i+1)
	}
	for _, e := range r.events {
		tid := int(e.track) + 1
		switch e.ph {
		case phSpan:
			bw.printf(",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s}",
				tid, micros(e.at), micros(e.dur), quote(e.name))
		case phBegin:
			bw.printf(",\n{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":%s}",
				tid, micros(e.at), quote(e.name))
		case phEnd:
			bw.printf(",\n{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s}", tid, micros(e.at))
		case phInstant:
			bw.printf(",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":%s}",
				tid, micros(e.at), quote(e.name))
		case phCounter:
			// Counter series attach to the process; the track name is the
			// series name and the single sampled value its only lane.
			bw.printf(",\n{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%s,\"name\":%s,\"args\":{\"value\":%s}}",
				micros(e.at), quote(r.tracks[e.track]), formatValue(e.value))
		}
	}
	bw.printf("\n]}\n")
	return bw.err
}

// micros renders a sim.Time (nanoseconds) as the microsecond timestamps the
// trace format uses, with the sub-microsecond remainder as three fixed
// decimals so distinct virtual instants never collapse.
func micros(t sim.Time) string {
	us, ns := t/1000, t%1000
	return fmt.Sprintf("%d.%03d", us, ns)
}

// quote JSON-escapes a track or event name.
func quote(s string) string { return strconv.Quote(s) }

// formatValue renders a counter sample with the shortest round-trip float
// formatting, which is deterministic for a given bit pattern.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// errWriter latches the first write error so export code reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
