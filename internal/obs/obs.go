// Package obs is the simulator's observability layer: a sim-time trace
// recorder and a metrics registry that turn one run into the two views a
// production system is debugged through — a timeline and a set of counters.
//
// The paper's entire argument is a waveform (Figures 3a/3b are
// current-vs-time traces, Table 1 is their integral), so the layer is built
// around the same discipline as the simulation itself: every recorded
// event is keyed exclusively on sim.Time. No wall clock, no goroutine IDs,
// no map iteration feeds an export, which makes traces and metric
// snapshots byte-identical across runs and across GOMAXPROCS — the engine
// determinism contract (DESIGN.md §7) extended to observability.
//
// Cost model. Instrumented packages never call into obs unconditionally:
// every hook is a nil-guarded pointer in the host struct (the same pattern
// as mac.Port.Monitor), so a simulation with observability disabled pays
// one predictable branch per hook site and zero allocations — proven by
// BenchmarkObsDisabled. The wile-vet obsguard analyzer enforces the guard
// mechanically. With a Recorder attached, recording one event is an append
// into a fixed-size staging chunk; formatting work happens only at export
// time.
//
// Trace model. A Recorder owns a set of named tracks (one per device, MAC
// port, or instrument) and an ordered event log of slices (Span, Begin/End),
// instants and counter samples. The log lives in a pluggable Sink: the
// default MemorySink buffers everything (cheap, unbounded), while a
// SpillSink encodes full chunks to a temp file so live memory stays
// O(chunk) however long the run — the firehose view (-sched) needs this.
// WriteChromeTrace exports the log in the Chrome trace-event JSON format,
// which https://ui.perfetto.dev opens directly as a timeline: tracks become
// threads, counter tracks become counter lanes. Export is a pure function
// of the track list and the event stream, so a spilled run exports
// byte-identically to a buffered one.
package obs

import (
	"fmt"
	"io"
	"strconv"

	"wile/internal/sim"
)

// TrackID names one timeline lane of a Recorder.
type TrackID int32

// phase codes, matching the Chrome trace-event "ph" field.
const (
	phSpan    = 'X' // complete slice: ts + dur
	phBegin   = 'B' // open slice
	phEnd     = 'E' // close the innermost open slice
	phInstant = 'i' // instant
	phCounter = 'C' // counter sample
)

// Event is one recorded trace event, stored raw and formatted only at
// export. Sinks receive events in chunks and must replay them unchanged:
// the export bytes are a pure function of this struct's fields.
type Event struct {
	At    sim.Time
	Dur   sim.Time
	Value float64
	Name  string
	Track TrackID
	Ph    byte
}

// ChunkEvents is the staging-chunk capacity of a Recorder: how many events
// accumulate in memory before the sink sees them. At ~56 bytes per event a
// full chunk is a few hundred kilobytes — the live-heap ceiling a spilling
// recorder holds regardless of trace length.
const ChunkEvents = 4096

// Recorder collects sim-time-stamped trace events into a Sink.
//
// A Recorder is intentionally not synchronized: each simulation kernel is
// single-goroutine by design (the experiment engine parallelizes across
// kernels, never within one), so a Recorder must be attached to exactly
// one kernel's components. Parallel sweeps that want traces attach one
// Recorder per point.
type Recorder struct {
	tracks []string
	chunk  []Event
	sink   Sink
	n      int
	err    error
	// open tracks the begin-timestamps of the open slices per track, so
	// End can clamp a close that would travel back in time (a negative
	// duration renders as garbage in every trace viewer).
	open [][]sim.Time
}

// NewRecorder returns an empty recorder buffering in memory — the classic
// unbounded recorder, right for figure-scale runs.
func NewRecorder() *Recorder { return NewStreamRecorder(NewMemorySink()) }

// NewStreamRecorder returns a recorder that flushes full staging chunks to
// the given sink. With a SpillSink the recorder's live memory is bounded by
// the chunk, not the trace.
func NewStreamRecorder(sink Sink) *Recorder {
	return &Recorder{sink: sink, chunk: make([]Event, 0, ChunkEvents)}
}

// Track registers a new timeline lane and returns its id. Tracks appear in
// the exported trace in registration order.
func (r *Recorder) Track(name string) TrackID {
	r.tracks = append(r.tracks, name)
	r.open = append(r.open, nil)
	return TrackID(len(r.tracks) - 1)
}

// Tracks reports the number of registered tracks.
func (r *Recorder) Tracks() int { return len(r.tracks) }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return r.n }

// Err reports the first sink error, if any. The record path cannot return
// errors (hook sites have no error plumbing), so a failing spill latches
// here and resurfaces from WriteChromeTrace.
func (r *Recorder) Err() error { return r.err }

// record stages one event, flushing the chunk to the sink when full.
func (r *Recorder) record(e Event) {
	r.chunk = append(r.chunk, e)
	r.n++
	if len(r.chunk) == cap(r.chunk) {
		r.flush()
	}
}

// flush hands the staged chunk to the sink.
func (r *Recorder) flush() {
	if len(r.chunk) == 0 {
		return
	}
	if err := r.sink.Flush(r.chunk); err != nil && r.err == nil {
		r.err = err
	}
	r.chunk = r.chunk[:0]
}

// Span records a complete slice [start, end) on the track. Spans may be
// recorded at the moment they end (the natural point for a state machine
// that learns durations retroactively); export order is record order and
// the format does not require time-sorted events. An end before start is a
// caller bug that would export a negative duration; it is clamped to a
// zero-length slice at start.
func (r *Recorder) Span(track TrackID, start, end sim.Time, name string) {
	if end < start {
		end = start
	}
	r.record(Event{Ph: phSpan, Track: track, At: start, Dur: end - start, Name: name})
}

// Begin opens a slice on the track. Slices on one track must nest; an
// unmatched Begin stays open to the end of the trace, which Perfetto
// renders as running off the right edge — exactly right for "the state the
// device was left in".
func (r *Recorder) Begin(track TrackID, at sim.Time, name string) {
	r.open[track] = append(r.open[track], at)
	r.record(Event{Ph: phBegin, Track: track, At: at, Name: name})
}

// End closes the innermost open slice on the track. An End before the
// matching Begin would export a negative duration; it is clamped to the
// Begin's timestamp.
func (r *Recorder) End(track TrackID, at sim.Time) {
	if stack := r.open[track]; len(stack) > 0 {
		if begin := stack[len(stack)-1]; at < begin {
			at = begin
		}
		r.open[track] = stack[:len(stack)-1]
	}
	r.record(Event{Ph: phEnd, Track: track, At: at})
}

// Instant records a zero-duration event on the track.
func (r *Recorder) Instant(track TrackID, at sim.Time, name string) {
	r.record(Event{Ph: phInstant, Track: track, At: at, Name: name})
}

// Counter records a sample of the track's counter series; the track name is
// the series name. Callers that sample a mostly-flat signal should record
// only on change — the meter does — so a 50 kSa/s waveform costs one event
// per plateau rather than one per sample.
func (r *Recorder) Counter(track TrackID, at sim.Time, value float64) {
	r.record(Event{Ph: phCounter, Track: track, At: at, Value: value})
}

// ObserveScheduler wires the kernel's dispatch hook to an instant event per
// fired simulation event on the given track. This is the firehose view —
// every timer tick and meter sample becomes an event — so figure-scale runs
// keep it off and debugging sessions (wile-trace -sched) turn it on,
// ideally on a spill-backed recorder (see NewSpillSink).
func ObserveScheduler(r *Recorder, sched *sim.Scheduler, track TrackID) {
	sched.OnDispatch = func(at sim.Time) { r.Instant(track, at, "dispatch") }
}

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON.
// It flushes the staging chunk first; a latched sink error surfaces here.
// The sink is left positioned for further recording, so a recorder may be
// exported more than once.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.flush()
	if r.err != nil {
		return r.err
	}
	return WriteChromeTrace(w, r.tracks, r.sink)
}

// WriteChromeTrace exports one event stream as Chrome trace-event JSON
// (the "JSON Array Format" with a traceEvents wrapper), ready for
// https://ui.perfetto.dev or chrome://tracing. It is a pure function of
// the track list and the replayed events: the same stream exports
// byte-identical bytes whether it was buffered in memory or spilled to
// disk, chunked this way or that.
func WriteChromeTrace(w io.Writer, tracks []string, events Sink) error {
	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	bw.printf("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"wile-sim\"}}")
	for i, name := range tracks {
		bw.printf(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}", i+1, quote(name))
		bw.printf(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}", i+1, i+1)
	}
	err := events.Replay(func(chunk []Event) error {
		for i := range chunk {
			writeEvent(bw, tracks, &chunk[i])
		}
		return bw.err
	})
	if err != nil {
		return err
	}
	bw.printf("\n]}\n")
	return bw.err
}

// writeEvent renders one event; the formatting here is the byte-identity
// contract every Sink implementation is tested against.
func writeEvent(bw *errWriter, tracks []string, e *Event) {
	tid := int(e.Track) + 1
	switch e.Ph {
	case phSpan:
		bw.printf(",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s}",
			tid, micros(e.At), micros(e.Dur), quote(e.Name))
	case phBegin:
		bw.printf(",\n{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":%s}",
			tid, micros(e.At), quote(e.Name))
	case phEnd:
		bw.printf(",\n{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s}", tid, micros(e.At))
	case phInstant:
		bw.printf(",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":%s}",
			tid, micros(e.At), quote(e.Name))
	case phCounter:
		// Counter series attach to the process; the track name is the
		// series name and the single sampled value its only lane.
		bw.printf(",\n{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%s,\"name\":%s,\"args\":{\"value\":%s}}",
			micros(e.At), quote(tracks[e.Track]), formatValue(e.Value))
	}
}

// micros renders a sim.Time (nanoseconds) as the microsecond timestamps the
// trace format uses, with the sub-microsecond remainder as three fixed
// decimals so distinct virtual instants never collapse. Negative times
// carry one leading sign: -1500 ns is "-1.500", never "-1.-500".
func micros(t sim.Time) string {
	sign := ""
	if t < 0 {
		sign, t = "-", -t
	}
	us, ns := t/1000, t%1000
	return fmt.Sprintf("%s%d.%03d", sign, us, ns)
}

// quote JSON-escapes a track or event name.
func quote(s string) string { return strconv.Quote(s) }

// formatValue renders a counter sample with the shortest round-trip float
// formatting, which is deterministic for a given bit pattern.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// errWriter latches the first write error so export code reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
