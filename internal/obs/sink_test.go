package obs

import (
	"bytes"
	"io"
	"math"
	"runtime"
	"testing"

	"wile/internal/sim"
)

// fillRecorder records a deterministic mixed-kind event stream of n events
// (approximately; spans/begins/ends come in small groups).
func fillRecorder(r *Recorder, n int) {
	dev := r.Track("dev power")
	mac := r.Track("dev mac")
	cur := r.Track("current_mA")
	sched := r.Track("sched")
	for i := 0; r.Len() < n; i++ {
		at := sim.Time(i) * sim.Microsecond
		switch i % 5 {
		case 0:
			r.Begin(dev, at, "cpu-active")
		case 1:
			r.Span(mac, at, at+3*sim.Microsecond, "tx beacon")
		case 2:
			r.Counter(cur, at, float64(i%97)*0.31)
		case 3:
			r.End(dev, at)
		default:
			r.Instant(sched, at, "dispatch")
		}
	}
}

// TestStreamedExportByteIdentical is the tentpole's core contract: the same
// event stream exports byte-identically through the in-memory sink and the
// spill-to-disk sink, across GOMAXPROCS settings, and for stream lengths
// that exercise zero, one and many chunk flushes.
func TestStreamedExportByteIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, n := range []int{0, 7, ChunkEvents - 1, ChunkEvents, 3*ChunkEvents + 11} {
			buffered := NewRecorder()
			fillRecorder(buffered, n)
			var want bytes.Buffer
			if err := buffered.WriteChromeTrace(&want); err != nil {
				t.Fatal(err)
			}

			spill, err := NewSpillSink(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			streamed := NewStreamRecorder(spill)
			fillRecorder(streamed, n)
			var got bytes.Buffer
			if err := streamed.WriteChromeTrace(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("procs=%d n=%d: spilled export differs from buffered (%d vs %d bytes)",
					procs, n, got.Len(), want.Len())
			}
			if err := spill.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSpillSinkRoundTripExactValues pins the binary framing against the
// value edge cases the JSON formatter is sensitive to: negative timestamps,
// counter bit patterns (including negative zero and ±Inf), and repeated
// interned names.
func TestSpillSinkRoundTripExactValues(t *testing.T) {
	events := []Event{
		{Ph: 'X', Track: 0, At: -1500, Dur: 1, Name: "negative start"},
		{Ph: 'i', Track: 1, At: 0, Name: "dispatch"},
		{Ph: 'i', Track: 1, At: 1, Name: "dispatch"},
		{Ph: 'C', Track: 2, At: 2, Value: math.Copysign(0, -1)},
		{Ph: 'C', Track: 2, At: 3, Value: math.Inf(1)},
		{Ph: 'C', Track: 2, At: 4, Value: 0.1 + 0.2},
		{Ph: 'B', Track: 0, At: 5, Name: "negative start"},
		{Ph: 'E', Track: 0, At: 6},
	}
	s, err := NewSpillSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Flush(events[:3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(events[3:]); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(events))
	}
	// Two replays must both see the exact stream (Replay does not consume).
	for round := 0; round < 2; round++ {
		var got []Event
		if err := s.Replay(func(chunk []Event) error {
			got = append(got, chunk...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(events) {
			t.Fatalf("round %d: replayed %d events, want %d", round, len(got), len(events))
		}
		for i := range events {
			want, have := events[i], got[i]
			// Compare Value by bit pattern: NaN/−0 compare wrong as floats.
			if want.At != have.At || want.Dur != have.Dur || want.Name != have.Name ||
				want.Track != have.Track || want.Ph != have.Ph ||
				math.Float64bits(want.Value) != math.Float64bits(have.Value) {
				t.Fatalf("round %d event %d: got %+v, want %+v", round, i, have, want)
			}
		}
	}
}

// TestSpillSinkFlushAfterReplay verifies the sink repositions correctly
// when recording resumes after an export — the wile-trace flow when a
// run is exported mid-way for inspection.
func TestSpillSinkFlushAfterReplay(t *testing.T) {
	s, err := NewSpillSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := NewStreamRecorder(s)
	tr := r.Track("t")
	r.Instant(tr, 1, "a")
	var first bytes.Buffer
	if err := r.WriteChromeTrace(&first); err != nil {
		t.Fatal(err)
	}
	r.Instant(tr, 2, "b")
	var second bytes.Buffer
	if err := r.WriteChromeTrace(&second); err != nil {
		t.Fatal(err)
	}
	want := NewRecorder()
	wtr := want.Track("t")
	want.Instant(wtr, 1, "a")
	want.Instant(wtr, 2, "b")
	var wantBuf bytes.Buffer
	if err := want.WriteChromeTrace(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second.Bytes(), wantBuf.Bytes()) {
		t.Fatalf("post-replay recording diverged:\n%s\n---\n%s", second.Bytes(), wantBuf.Bytes())
	}
}

// TestSpillRecorderBoundedHeap is the scaling gate: a firehose-sized
// recording through a spill sink must keep the live heap under a fixed
// ceiling a buffered recorder would blow through many times over.
func TestSpillRecorderBoundedHeap(t *testing.T) {
	const events = 1_000_000 // ≥56 MB if buffered in memory
	const ceiling = 16 << 20 // 16 MB of live-heap growth allowed

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	s, err := NewSpillSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := NewStreamRecorder(s)
	fillRecorder(r, events)
	if err := r.WriteChromeTrace(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Len() < events {
		t.Fatalf("recorded %d events, want ≥ %d", r.Len(), events)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > ceiling {
		t.Fatalf("live heap grew %d bytes over a %d-event spill run; ceiling is %d",
			grew, events, ceiling)
	}
}

// TestRecorderLatchesSinkError verifies a failing sink surfaces at export
// instead of panicking a hook site.
func TestRecorderLatchesSinkError(t *testing.T) {
	s, err := NewSpillSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewStreamRecorder(s)
	tr := r.Track("t")
	for i := 0; i <= ChunkEvents; i++ { // force one flush into the closed sink
		r.Instant(tr, sim.Time(i), "tick")
	}
	if r.Err() == nil {
		t.Fatal("flush into a closed sink did not latch an error")
	}
	if err := r.WriteChromeTrace(io.Discard); err == nil {
		t.Fatal("WriteChromeTrace did not surface the latched sink error")
	}
}
