package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafe guards the repository's object-recycling discipline. The hot
// paths recycle aggressively — decoded frames return to dot11's sync.Pools
// via Release, scheduler event nodes go back on the kernel freelist, and
// the next Get/Decode overwrites the object in place — so touching a
// pooled object after its release is a corruption bug that surfaces frames
// later as an FCS mismatch (exactly the class the ReleaseAfterMonitor
// recycling bug fell into). PoolSafe walks each function's control-flow
// graph tracking, per path, which objects have been released:
//
//   - a release point is a call to a function or method named Release,
//     release, Recycle, or recycle (dot11.Release, mac's port.release), a
//     sync.Pool Put, or an append onto a freelist field (a field named
//     free, freeList, or freelist);
//   - any later use of the released object — or of anything the
//     value-flow graph says may alias it — on any path is flagged,
//     including uses inside closures created after the release;
//   - releasing an object that previously escaped into a goroutine, a
//     deferred or stored closure, a struct field, or a channel is flagged
//     too: the escapee can run (or be read) after recycling, which is how
//     use-after-release hides from path-local reasoning.
//
// Rebinding a variable (f = other, f := Decode(...)) clears its fact, so
// get/use/release loops analyze cleanly. Diagnostics carry the release
// site and the aliasing chain; wile-vet -explain prints them.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc: "pooled objects (frames, freelist events) must not be used after " +
		"their Release/recycle call on any path, nor released after escaping",
	Run: runPoolSafe,
}

// poolFact records where (and how) an object was released.
type poolFact struct {
	pos  token.Pos
	via  string // "Release call", "freelist append", ...
	name string // source-level name of the object the fact was derived for
}

// escFact records where (and how) an object escaped the function.
type escFact struct {
	pos token.Pos
	via string // "goroutine", "closure", "field store", "channel send"
}

// psState is the per-path abstract state: the may-released and
// may-escaped object sets.
type psState struct {
	released map[types.Object]poolFact
	escaped  map[types.Object]escFact
}

type psClient struct {
	pass     *Pass
	info     *types.Info
	graph    *FlowGraph
	reported map[token.Pos]bool
}

func runPoolSafe(pass *Pass) error {
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &psClient{
				pass:     pass,
				info:     pass.Pkg.Info,
				graph:    BuildFlow(pass.Pkg.Info, fd.Body),
				reported: make(map[token.Pos]bool),
			}
			entry := psState{released: map[types.Object]poolFact{}, escaped: map[types.Object]escFact{}}
			cfgWalk(fd.Body, entry, c)
		}
	}
	return nil
}

func (c *psClient) copyState(st psState) psState {
	out := psState{
		released: make(map[types.Object]poolFact, len(st.released)),
		escaped:  make(map[types.Object]escFact, len(st.escaped)),
	}
	for k, v := range st.released {
		out.released[k] = v
	}
	for k, v := range st.escaped {
		out.escaped[k] = v
	}
	return out
}

// join unions the two paths' fact sets: released-on-some-path is enough to
// make a later use suspicious.
func (c *psClient) join(a, b psState) psState {
	for k, v := range b.released {
		if _, ok := a.released[k]; !ok {
			a.released[k] = v
		}
	}
	for k, v := range b.escaped {
		if _, ok := a.escaped[k]; !ok {
			a.escaped[k] = v
		}
	}
	return a
}

func (c *psClient) expr(e ast.Expr, st psState) psState {
	return c.scan(e, st, false)
}

func (c *psClient) stmt(s ast.Stmt, st psState) psState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = c.scan(rhs, st, false)
		}
		// A freelist append is a release of the appended objects; any
		// other store into a field (or through an index/deref) makes the
		// stored value escape the function's reasoning.
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				rhs = s.Rhs[i]
			}
			switch l := lhs.(type) {
			case *ast.Ident:
				// Rebinding kills the variable's facts: the name no
				// longer refers to the released object.
				if obj := c.objOf(l); obj != nil {
					delete(st.released, obj)
					delete(st.escaped, obj)
				}
			case *ast.SelectorExpr:
				st = c.scan(l.X, st, false)
				if rhs != nil {
					if x, ok := freelistAppend(c.info, l, rhs); ok {
						st = c.markReleased(x, "freelist append", rhs.Pos(), st)
					} else {
						st = c.escape(rhs, "field store", st)
					}
				}
			case *ast.IndexExpr:
				st = c.scan(l, st, false)
				if rhs != nil {
					st = c.escape(rhs, "container store", st)
				}
			case *ast.StarExpr:
				st = c.scan(l.X, st, false)
				if rhs != nil {
					st = c.escape(rhs, "pointer store", st)
				}
			}
		}
		return st
	case *ast.ExprStmt:
		return c.scan(s.X, st, false)
	case *ast.IncDecStmt:
		return c.scan(s.X, st, false)
	case *ast.SendStmt:
		st = c.scan(s.Chan, st, false)
		st = c.scan(s.Value, st, false)
		return c.escape(s.Value, "channel send", st)
	case *ast.GoStmt:
		st = c.scanCallShallow(s.Call, st)
		for _, arg := range s.Call.Args {
			st = c.escape(arg, "goroutine", st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			st = c.scanBody(fl.Body, st)
			st = c.escapeCaptures(fl, "goroutine", st)
		}
		return st
	case *ast.DeferStmt:
		st = c.scanCallShallow(s.Call, st)
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			st = c.scanBody(fl.Body, st)
			st = c.escapeCaptures(fl, "deferred closure", st)
		}
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = c.scan(r, st, false)
		}
		return st
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = c.scan(v, st, false)
					}
				}
			}
		}
		return st
	case *ast.RangeStmt:
		// The walker already evaluated s.X; the loop variables rebind at
		// every iteration.
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := c.objOf(id); obj != nil {
					delete(st.released, obj)
					delete(st.escaped, obj)
				}
			}
		}
		return st
	default:
		return st
	}
}

// scan walks an expression checking every identifier against the released
// set, applying release effects of calls, and treating closures created
// here as escapes for everything they capture (a stored closure can run
// after a later release). insideLit marks that the walk is already inside
// a function literal's body.
func (c *psClient) scan(e ast.Expr, st psState, insideLit bool) psState {
	switch x := e.(type) {
	case nil:
		return st
	case *ast.Ident:
		c.checkUse(x, st)
		return st
	case *ast.SelectorExpr:
		// Only the base is a value use; the selected name is not an
		// object reference in the released set.
		return c.scan(x.X, st, insideLit)
	case *ast.CallExpr:
		st = c.scanCallShallow(x, st)
		if fl, ok := x.Fun.(*ast.FuncLit); ok {
			// Immediately invoked literal: its body runs now, so check
			// uses but register no escape.
			st = c.scanBody(fl.Body, st)
			return st
		}
		if released, via, ok := releaseCall(c.info, x); ok {
			for _, arg := range released {
				st = c.markReleased(arg, via, x.Pos(), st)
			}
		}
		return st
	case *ast.FuncLit:
		// A literal that is not immediately invoked: uses inside it happen
		// whenever it runs — after any release already on this path — and
		// everything it captures may outlive the current statement.
		st = c.scanBody(x.Body, st)
		return c.escapeCaptures(x, "closure", st)
	case *ast.ParenExpr:
		return c.scan(x.X, st, insideLit)
	case *ast.StarExpr:
		return c.scan(x.X, st, insideLit)
	case *ast.UnaryExpr:
		return c.scan(x.X, st, insideLit)
	case *ast.BinaryExpr:
		st = c.scan(x.X, st, insideLit)
		return c.scan(x.Y, st, insideLit)
	case *ast.SliceExpr:
		st = c.scan(x.X, st, insideLit)
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx != nil {
				st = c.scan(idx, st, insideLit)
			}
		}
		return st
	case *ast.IndexExpr:
		st = c.scan(x.X, st, insideLit)
		return c.scan(x.Index, st, insideLit)
	case *ast.TypeAssertExpr:
		return c.scan(x.X, st, insideLit)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				st = c.scan(kv.Value, st, insideLit)
				continue
			}
			st = c.scan(el, st, insideLit)
		}
		return st
	case *ast.KeyValueExpr:
		return c.scan(x.Value, st, insideLit)
	default:
		return st
	}
}

// scanCallShallow checks the function expression and arguments of a call
// for uses of released objects, without applying the call's own effects.
func (c *psClient) scanCallShallow(call *ast.CallExpr, st psState) psState {
	if _, isLit := call.Fun.(*ast.FuncLit); !isLit {
		st = c.scan(call.Fun, st, false)
	}
	for _, arg := range call.Args {
		st = c.scan(arg, st, false)
	}
	return st
}

// scanBody checks a closure body against the current released set. The
// closure may introduce its own locals; rebinding inside the closure is
// not tracked — uses of outer released objects are what matter.
func (c *psClient) scanBody(body *ast.BlockStmt, st psState) psState {
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			c.checkUse(id, st)
		}
		return true
	})
	return st
}

func (c *psClient) objOf(id *ast.Ident) types.Object {
	if obj := c.info.Defs[id]; obj != nil {
		return obj
	}
	return c.info.Uses[id]
}

// checkUse reports a read of an object the current path has released.
func (c *psClient) checkUse(id *ast.Ident, st psState) {
	obj := c.info.Uses[id]
	if obj == nil {
		return
	}
	fact, ok := st.released[obj]
	if !ok || c.reported[id.Pos()] {
		return
	}
	c.reported[id.Pos()] = true
	steps := []FlowStep{{
		Pos:  c.pass.Pkg.Fset.Position(fact.pos),
		Desc: fact.name + " released here (" + fact.via + ")",
	}, {
		Pos:  c.pass.Pkg.Fset.Position(id.Pos()),
		Desc: id.Name + " used here",
	}}
	c.pass.ReportRangef(id.Pos(), id.End(), steps,
		"use of %s after its release (%s on line %d); the pooled object may already be recycled",
		id.Name, fact.via, c.pass.Pkg.Fset.Position(fact.pos).Line)
}

// release marks the object behind e — and everything the flow graph says
// aliased it before this point — as released, flagging releases of
// already-escaped objects.
func (c *psClient) markReleased(e ast.Expr, via string, pos token.Pos, st psState) psState {
	for _, root := range c.graph.roots(e, nil) {
		name := root.obj.Name()
		for _, obj := range c.aliasesBefore(root.obj, pos) {
			if esc, ok := st.escaped[obj]; ok && !c.reported[pos] {
				c.reported[pos] = true
				steps := []FlowStep{{
					Pos:  c.pass.Pkg.Fset.Position(esc.pos),
					Desc: obj.Name() + " escapes here (" + esc.via + ")",
				}, {
					Pos:  c.pass.Pkg.Fset.Position(pos),
					Desc: name + " released here (" + via + ")",
				}}
				c.pass.ReportRangef(pos, token.NoPos, steps,
					"%s is released after escaping (%s on line %d); the escapee may use it after recycling",
					name, esc.via, c.pass.Pkg.Fset.Position(esc.pos).Line)
			}
			if _, ok := st.released[obj]; !ok {
				st.released[obj] = poolFact{pos: pos, via: via, name: name}
			}
		}
	}
	return st
}

// escape marks the objects behind e (and their prior aliases) as escaped.
func (c *psClient) escape(e ast.Expr, via string, st psState) psState {
	for _, root := range c.graph.roots(e, nil) {
		if !isRefType(root.obj.Type()) {
			continue
		}
		for _, obj := range c.aliasesBefore(root.obj, e.Pos()) {
			if _, ok := st.escaped[obj]; !ok {
				st.escaped[obj] = escFact{pos: e.Pos(), via: via}
			}
		}
	}
	return st
}

// escapeCaptures marks every outer object a function literal captures.
func (c *psClient) escapeCaptures(fl *ast.FuncLit, via string, st psState) psState {
	for _, obj := range c.captures(fl) {
		for _, o := range c.aliasesBefore(obj, fl.Pos()) {
			if _, ok := st.escaped[o]; !ok {
				st.escaped[o] = escFact{pos: fl.Pos(), via: via}
			}
		}
	}
	return st
}

// captures lists the ref-typed objects fl's body uses that are declared
// outside the literal.
func (c *psClient) captures(fl *ast.FuncLit) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.info.Uses[id]
		if obj == nil || seen[obj] || !isRefType(obj.Type()) {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
			return true // the literal's own local or parameter
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// aliasesBefore returns obj plus every object connected to it through
// flow-graph edges established before pos — the aliases that can already
// hold the same storage when the release/escape happens.
func (c *psClient) aliasesBefore(obj types.Object, pos token.Pos) []types.Object {
	out := []types.Object{obj}
	for _, other := range c.graph.AliasSet(obj) {
		if path, ok := c.graph.AliasPath(obj, other); ok {
			before := true
			for _, e := range path {
				if e.Pos >= pos {
					before = false
					break
				}
			}
			if before {
				out = append(out, other)
			}
		}
	}
	return out
}

// releaseCall reports whether call releases pooled objects, returning the
// released argument expressions and a human-readable description.
func releaseCall(info *types.Info, call *ast.CallExpr) (released []ast.Expr, via string, ok bool) {
	var name string
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	default:
		return nil, "", false
	}
	switch name {
	case "Release", "release", "Recycle", "recycle":
		for _, arg := range call.Args {
			if isRefType(info.TypeOf(arg)) {
				released = append(released, arg)
			}
		}
		if len(released) == 0 && recv != nil && len(call.Args) == 0 {
			// f.Release(): the receiver itself is recycled.
			released = append(released, recv)
		}
		if len(released) == 0 {
			return nil, "", false
		}
		return released, name + " call", true
	case "Put":
		// sync.Pool.Put(x) recycles x.
		if recv == nil || len(call.Args) != 1 {
			return nil, "", false
		}
		if !isSyncPool(info.TypeOf(recv)) {
			return nil, "", false
		}
		return []ast.Expr{call.Args[0]}, "sync.Pool Put", true
	}
	return nil, "", false
}

// freelistAppend reports whether "recv.free = append(recv.free, x)" style
// recycling is happening, returning the appended object expression.
func freelistAppend(info *types.Info, lhs *ast.SelectorExpr, rhs ast.Expr) (ast.Expr, bool) {
	switch lhs.Sel.Name {
	case "free", "freeList", "freelist":
	default:
		return nil, false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	// Single appended element that is a reference: the recycled node.
	if len(call.Args) != 2 || !isRefType(info.TypeOf(call.Args[1])) {
		return nil, false
	}
	return call.Args[1], true
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
