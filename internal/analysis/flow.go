package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the suite's intra-procedural dataflow layer: a per-function
// value-flow graph over types.Objects that analyzers query for may-alias
// facts ("does b share backing storage with the parameter buf?") and that
// flow-sensitive analyzers (poolsafe, lockguard) build their
// abstract-interpretation walks on. The graph is deliberately modest — one
// function at a time, objects and the expressions that connect them, no
// heap model — because that is exactly the scope at which the repository's
// invariants live: an encoder aliasing its argument, a frame used after its
// Release, a guarded field touched between Unlock and Lock.
//
// Edges record the syntax that created them, so every diagnostic built on
// the graph can print the supporting flow path (wile-vet -explain).

// FlowEdge is one value-flow fact: To's value may share storage with (or
// was derived from) From's, established by the syntax at Pos.
type FlowEdge struct {
	From, To types.Object
	Pos      token.Pos
	// Kind names the syntax that created the edge: "assign", "reslice",
	// "append", "range", "addr", "assert", "convert".
	Kind string
}

// FlowStep is one hop of a diagnostic's supporting path, rendered by
// wile-vet -explain.
type FlowStep struct {
	Pos  token.Position
	Desc string
}

// FlowGraph is the value-flow graph of one function body. Edges are
// undirected for alias queries (if b was sliced from buf, writing through
// either mutates the other) but each edge remembers its direction and
// origin for explanations.
type FlowGraph struct {
	info *types.Info
	// edges indexes every edge by both endpoints.
	edges map[types.Object][]FlowEdge
	// fresh records objects that were (on some path) assigned a freshly
	// allocated value — a composite literal, &T{}, new(T), or make —
	// keyed to the position of the allocation.
	fresh map[types.Object]token.Pos
}

// BuildFlow constructs the value-flow graph for one function body.
func BuildFlow(info *types.Info, body *ast.BlockStmt) *FlowGraph {
	g := &FlowGraph{
		info:  info,
		edges: make(map[types.Object][]FlowEdge),
		fresh: make(map[types.Object]token.Pos),
	}
	if body == nil {
		return g
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			g.addAssign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					g.addFlow(name, n.Values[i])
				}
			}
		case *ast.RangeStmt:
			// for _, v := range xs: v may alias an element of xs' backing
			// array when the element type is itself a reference.
			if v, ok := n.Value.(*ast.Ident); ok && isRefType(g.info.TypeOf(v)) {
				for _, root := range g.roots(n.X, nil) {
					g.addEdge(FlowEdge{From: root.obj, To: g.objOf(v), Pos: n.Pos(), Kind: "range"})
				}
			}
		}
		return true
	})
	return g
}

// addAssign records the value flow of one assignment statement.
func (g *FlowGraph) addAssign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				g.addFlow(id, n.Rhs[i])
			}
		}
		return
	}
	// Multi-value forms: x, ok := y.(T) and x, y := f(). Only the type
	// assertion propagates aliasing; call results are fresh as far as this
	// intra-procedural graph can see (Append* passthrough is handled by
	// roots on the single-value side).
	if len(n.Rhs) == 1 {
		if ta, ok := n.Rhs[0].(*ast.TypeAssertExpr); ok && len(n.Lhs) >= 1 {
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				for _, root := range g.roots(ta.X, nil) {
					g.addEdge(FlowEdge{From: root.obj, To: g.objOf(id), Pos: n.Pos(), Kind: "assert"})
				}
			}
		}
	}
}

// addFlow connects lhs to the alias roots of rhs.
func (g *FlowGraph) addFlow(lhs *ast.Ident, rhs ast.Expr) {
	obj := g.objOf(lhs)
	if obj == nil {
		return
	}
	if isFreshExpr(g.info, rhs) {
		g.fresh[obj] = rhs.Pos()
		return
	}
	for _, root := range g.roots(rhs, nil) {
		if root.obj == obj {
			continue // x = x[1:] narrows but introduces no new aliasing
		}
		g.addEdge(FlowEdge{From: root.obj, To: obj, Pos: rhs.Pos(), Kind: root.kind})
	}
}

func (g *FlowGraph) addEdge(e FlowEdge) {
	if e.From == nil || e.To == nil {
		return
	}
	g.edges[e.From] = append(g.edges[e.From], e)
	g.edges[e.To] = append(g.edges[e.To], e)
}

func (g *FlowGraph) objOf(id *ast.Ident) types.Object {
	if obj := g.info.Defs[id]; obj != nil {
		return obj
	}
	return g.info.Uses[id]
}

// flowRoot is one object an expression's value may alias, with the syntax
// kind of the outermost derivation.
type flowRoot struct {
	obj  types.Object
	kind string
}

// roots unwraps e to the objects whose storage its value may share:
// through parentheses, slice expressions, dereferences, address-of, type
// assertions, conversions, and append-style calls (builtin append and
// Append*-named functions alias their first slice argument by contract).
func (g *FlowGraph) roots(e ast.Expr, kindHint *string) []flowRoot {
	kind := "assign"
	if kindHint != nil {
		kind = *kindHint
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := g.objOf(x); obj != nil && obj.Pkg() != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return []flowRoot{{obj: obj, kind: kind}}
			}
		}
		return nil
	case *ast.ParenExpr:
		return g.roots(x.X, &kind)
	case *ast.SliceExpr:
		k := "reslice"
		return g.roots(x.X, &k)
	case *ast.IndexExpr:
		// xs[i] aliases xs' backing only when the element is a reference.
		if isRefType(g.info.TypeOf(e)) {
			k := "index"
			return g.roots(x.X, &k)
		}
		return nil
	case *ast.StarExpr:
		k := "deref"
		return g.roots(x.X, &k)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			k := "addr"
			return g.roots(x.X, &k)
		}
		return nil
	case *ast.TypeAssertExpr:
		k := "assert"
		return g.roots(x.X, &k)
	case *ast.CallExpr:
		return g.callRoots(x)
	}
	return nil
}

// callRoots handles the calls whose results alias an argument: the builtin
// append, conversions, and Append*-named functions (their contract is to
// return the first []byte argument, extended).
func (g *FlowGraph) callRoots(call *ast.CallExpr) []flowRoot {
	// Conversion: []byte(x), T(x).
	if tv, ok := g.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Converting string<->[]byte copies; same-kind conversions alias.
		from, to := g.info.TypeOf(call.Args[0]), tv.Type
		if from != nil && isRefType(to) && isRefType(from) {
			k := "convert"
			return g.roots(call.Args[0], &k)
		}
		return nil
	}
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name == "append" || strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "append") {
		if len(call.Args) > 0 {
			// The first slice-typed argument is the destination being
			// extended; the result may alias it.
			for _, arg := range call.Args {
				if _, ok := g.info.TypeOf(arg).Underlying().(*types.Slice); ok {
					k := "append"
					return g.roots(arg, &k)
				}
			}
		}
	}
	return nil
}

// AliasPath reports whether from may alias to, and if so the chain of flow
// edges connecting them (empty for from == to). The search is a BFS over
// the undirected edge set, so the returned path is a shortest explanation.
func (g *FlowGraph) AliasPath(from, to types.Object) ([]FlowEdge, bool) {
	if from == nil || to == nil {
		return nil, false
	}
	if from == to {
		return nil, true
	}
	type visit struct {
		obj  types.Object
		path []FlowEdge
	}
	seen := map[types.Object]bool{from: true}
	queue := []visit{{obj: from}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.edges[v.obj] {
			next := e.From
			if next == v.obj {
				next = e.To
			}
			if seen[next] {
				continue
			}
			seen[next] = true
			path := append(append([]FlowEdge(nil), v.path...), e)
			if next == to {
				return path, true
			}
			queue = append(queue, visit{obj: next, path: path})
		}
	}
	return nil, false
}

// AliasSet returns every object from may alias (excluding itself), in
// deterministic order.
func (g *FlowGraph) AliasSet(from types.Object) []types.Object {
	if from == nil {
		return nil
	}
	seen := map[types.Object]bool{from: true}
	queue := []types.Object{from}
	var out []types.Object
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for _, e := range g.edges[obj] {
			next := e.From
			if next == obj {
				next = e.To
			}
			if seen[next] {
				continue
			}
			seen[next] = true
			out = append(out, next)
			queue = append(queue, next)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// FreshAt reports whether obj was assigned a freshly allocated value in
// this function (composite literal, &T{}, new, make), and where.
func (g *FlowGraph) FreshAt(obj types.Object) (token.Pos, bool) {
	pos, ok := g.fresh[obj]
	return pos, ok
}

// StepsFor renders an edge path as explanation steps, one per edge.
func StepsFor(fset *token.FileSet, path []FlowEdge) []FlowStep {
	steps := make([]FlowStep, 0, len(path))
	for _, e := range path {
		var desc string
		switch e.Kind {
		case "reslice":
			desc = fmt.Sprintf("%s re-slices %s", e.To.Name(), e.From.Name())
		case "append":
			desc = fmt.Sprintf("%s extends %s via append", e.To.Name(), e.From.Name())
		case "range":
			desc = fmt.Sprintf("%s ranges over %s's elements", e.To.Name(), e.From.Name())
		case "addr":
			desc = fmt.Sprintf("%s takes the address of %s", e.To.Name(), e.From.Name())
		case "assert":
			desc = fmt.Sprintf("%s asserts the type of %s", e.To.Name(), e.From.Name())
		case "convert":
			desc = fmt.Sprintf("%s converts %s", e.To.Name(), e.From.Name())
		default:
			desc = fmt.Sprintf("%s is assigned from %s", e.To.Name(), e.From.Name())
		}
		steps = append(steps, FlowStep{Pos: fset.Position(e.Pos), Desc: desc})
	}
	return steps
}

// isFreshExpr reports whether e allocates new storage: a composite
// literal, its address, new(T), or make(...).
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, lit := x.X.(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && info.Uses[id] != nil {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new" || b.Name() == "make"
			}
		}
	}
	return false
}

// --- structured control-flow walker ---

// cfgClient parameterizes cfgWalk: S is the abstract state (a released-set
// for poolsafe, a held-lock set for lockguard). Implementations own the
// lattice; the walker owns the control structure.
type cfgClient[S any] interface {
	// copyState returns an independent copy of st for a branch.
	copyState(st S) S
	// join merges the states of two control-flow paths meeting at a join
	// point. May-analyses union, must-analyses intersect.
	join(a, b S) S
	// stmt applies one non-control statement (assignments, calls, defers,
	// go statements, returns) to the state, reporting diagnostics as a
	// side effect. It must not descend into nested control statements —
	// the walker drives those — but does see the statement's expressions.
	stmt(s ast.Stmt, st S) S
	// expr evaluates a control-position expression (an if condition, a
	// switch tag, a range operand) against the state.
	expr(e ast.Expr, st S) S
}

// cfgWalk drives a forward, flow-sensitive walk of a function body over
// Go's structured control flow: sequencing, if/else with join, loops
// (bodies analyzed to a two-pass fixpoint, zero iterations always
// possible), switch/type-switch/select with per-case branching, and path
// termination at return. break, continue, and goto conservatively
// terminate their path — a linter prefers a missed corner to a false
// positive. The second result reports whether the exit is reachable.
func cfgWalk[S any](body *ast.BlockStmt, entry S, c cfgClient[S]) (S, bool) {
	if body == nil {
		return entry, true
	}
	st, ok := entry, true
	for _, s := range body.List {
		if !ok {
			break
		}
		st, ok = cfgStmt(s, st, c)
	}
	return st, ok
}

func cfgStmt[S any](s ast.Stmt, st S, c cfgClient[S]) (S, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return cfgWalk(s, st, c)
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		st = c.expr(s.Cond, st)
		thenSt, thenOK := cfgWalk(s.Body, c.copyState(st), c)
		elseSt, elseOK := st, true
		if s.Else != nil {
			elseSt, elseOK = cfgStmt(s.Else, c.copyState(st), c)
		}
		return cfgJoin(thenSt, thenOK, elseSt, elseOK, c)
	case *ast.ForStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = c.expr(s.Cond, st)
		}
		loop := func(in S) (S, bool) {
			out, ok := cfgWalk(s.Body, in, c)
			if ok && s.Post != nil {
				out = c.stmt(s.Post, out)
			}
			if ok && s.Cond != nil {
				out = c.expr(s.Cond, out)
			}
			return out, ok
		}
		return cfgLoop(st, s.Cond == nil, loop, c)
	case *ast.RangeStmt:
		st = c.expr(s.X, st)
		st = c.stmt(s, st) // client handles key/value (re)binding
		return cfgLoop(st, false, func(in S) (S, bool) { return cfgWalk(s.Body, in, c) }, c)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = c.expr(s.Tag, st)
		}
		return cfgCases(s.Body, st, c, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		return cfgCases(s.Body, st, c, s.Assign)
	case *ast.SelectStmt:
		return cfgCases(s.Body, st, c, nil)
	case *ast.LabeledStmt:
		return cfgStmt(s.Stmt, st, c)
	case *ast.ReturnStmt:
		st = c.stmt(s, st)
		return st, false
	case *ast.BranchStmt:
		return st, false // break/continue/goto: path leaves this walk
	default:
		return c.stmt(s, st), true
	}
}

// cfgLoop analyzes a loop body that runs zero or more times: the body is
// walked twice (entry state, then entry joined with the first body exit)
// so facts that survive one iteration stabilize, and the loop exit joins
// the zero-iteration path unless the loop has no exit condition.
func cfgLoop[S any](entry S, unconditional bool, body func(S) (S, bool), c cfgClient[S]) (S, bool) {
	b1, ok1 := body(c.copyState(entry))
	in2 := entry
	if ok1 {
		in2 = c.join(c.copyState(entry), b1)
	}
	b2, ok2 := body(c.copyState(in2))
	if unconditional {
		// for {}: the only way out is break/return inside the body, which
		// terminate their paths; the statement's exit is unreachable.
		return b2, false
	}
	return cfgJoin(entry, true, b2, ok2, c)
}

// cfgCases branches each case clause from the entry state and joins the
// reachable exits; with no default clause the entry state joins too (no
// case may match). assign, when non-nil, is a type-switch assign statement
// replayed at each case entry so the client sees the per-case binding.
func cfgCases[S any](body *ast.BlockStmt, entry S, c cfgClient[S], assign ast.Stmt) (S, bool) {
	var out S
	outOK := false
	hasDefault := false
	for _, cl := range body.List {
		caseSt := c.copyState(entry)
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				caseSt = c.expr(e, caseSt)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				caseSt = c.stmt(cl.Comm, caseSt)
			}
			stmts = cl.Body
		}
		if assign != nil {
			caseSt = c.stmt(assign, caseSt)
		}
		caseOK := true
		for _, s := range stmts {
			if !caseOK {
				break
			}
			caseSt, caseOK = cfgStmt(s, caseSt, c)
		}
		out, outOK = cfgJoin(out, outOK, caseSt, caseOK, c)
	}
	if !hasDefault {
		out, outOK = cfgJoin(out, outOK, entry, true, c)
	}
	return out, outOK
}

// cfgJoin merges two path states honoring reachability.
func cfgJoin[S any](a S, aOK bool, b S, bOK bool, c cfgClient[S]) (S, bool) {
	switch {
	case aOK && bOK:
		return c.join(a, b), true
	case aOK:
		return a, true
	case bOK:
		return b, true
	default:
		return a, false
	}
}

// isRefType reports whether values of t share backing storage when copied:
// slices, pointers, maps, channels, and interfaces (which may wrap any of
// those).
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}
