package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// NoRetain guards encoder functions against aliasing caller-provided
// buffers. The transmit path pre-computes frames and reuses scratch
// buffers; an encoder that returns (or stashes in a field) a sub-slice of
// its input silently couples two frames to one backing array, and the
// corruption only shows up frames later as an FCS mismatch. For functions
// whose name marks them as encoders (Append*, Marshal*, Encode*, Seal*,
// Encap*, Build*):
//
//   - returning a []byte parameter, or any local that may alias one, is
//     flagged — copy into a fresh buffer instead. Aliasing is tracked
//     through the function's value-flow graph (BuildFlow), so
//     "b := buf[4:]; return b" flags exactly like "return buf[4:]".
//     Append-style functions are exempt for their first []byte parameter
//     (the destination being appended to: aliasing dst is the documented
//     contract);
//   - assigning a []byte parameter (or anything aliasing one) to a struct
//     field is flagged — the encoder must not retain the buffer past the
//     call.
//
// Diagnostics carry the supporting flow path; wile-vet -explain prints it.
// Decoders are intentionally out of scope: dot11 documents that decoded
// slices alias the input.
var NoRetain = &Analyzer{
	Name: "noretain",
	Doc: "frame encoders must not return or retain slices aliasing " +
		"caller-provided buffers (append-style dst parameters excepted)",
	Run: runNoRetain,
}

var encoderNamePrefixes = []string{"append", "marshal", "encode", "seal", "encap", "build"}

func isEncoderName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range encoderNamePrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runNoRetain(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isEncoderName(fd.Name.Name) {
				continue
			}
			byteParams := byteSliceParams(info, fd)
			if len(byteParams) == 0 {
				continue
			}
			// Append-style functions take the destination first and alias
			// it by contract.
			var dst types.Object
			if strings.HasPrefix(strings.ToLower(fd.Name.Name), "append") {
				dst = firstByteParam(info, fd)
			}
			g := BuildFlow(info, fd.Body)
			check := func(e ast.Expr, format string) {
				obj, path := aliasedParamFlow(g, info, byteParams, dst, e)
				if obj == nil {
					return
				}
				pass.ReportRangef(e.Pos(), e.End(), StepsFor(pass.Pkg.Fset, path),
					format, funcName(fd), obj.Name())
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						check(res, "%s returns a slice aliasing its caller-provided buffer %s; copy the bytes before returning")
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						if _, isField := lhs.(*ast.SelectorExpr); !isField {
							continue
						}
						check(n.Rhs[i], "%s retains its caller-provided buffer %s in a field; copy the bytes instead")
					}
				}
				return true
			})
		}
	}
	return nil
}

// aliasedParamFlow reports the first []byte parameter (other than the
// exempt dst) that e's value may alias, together with the flow-graph path
// establishing the aliasing (empty when e names the parameter directly).
func aliasedParamFlow(g *FlowGraph, info *types.Info, params map[types.Object]bool, dst types.Object, e ast.Expr) (types.Object, []FlowEdge) {
	// Only expressions that could carry the buffer out matter; a byte read
	// or a length does not alias.
	if !isRefType(info.TypeOf(e)) {
		return nil, nil
	}
	for _, root := range g.roots(e, nil) {
		if params[root.obj] {
			if root.obj != dst {
				return root.obj, nil
			}
			continue
		}
		// The root is a local: ask the flow graph whether it may alias a
		// parameter. Parameters are visited in declaration order so the
		// reported object is deterministic.
		var hits []types.Object
		for p := range params {
			if p != dst {
				hits = append(hits, p)
			}
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].Pos() < hits[j].Pos() })
		for _, p := range hits {
			if path, ok := g.AliasPath(root.obj, p); ok {
				return p, path
			}
		}
	}
	return nil, nil
}

// byteSliceParams collects the objects of fd's []byte parameters.
func byteSliceParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return params
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				params[obj] = true
			}
		}
	}
	return params
}

func firstByteParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
