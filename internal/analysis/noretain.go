package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoRetain guards encoder functions against aliasing caller-provided
// buffers. The transmit path pre-computes frames and reuses scratch
// buffers; an encoder that returns (or stashes in a field) a sub-slice of
// its input silently couples two frames to one backing array, and the
// corruption only shows up frames later as an FCS mismatch. For functions
// whose name marks them as encoders (Append*, Marshal*, Encode*, Seal*,
// Encap*, Build*):
//
//   - returning a []byte parameter, or a slice of one, is flagged — copy
//     into a fresh buffer instead. Append-style functions are exempt for
//     their first []byte parameter (the destination being appended to:
//     aliasing dst is the documented contract);
//   - assigning a []byte parameter (or a slice of one) to a struct field
//     is flagged — the encoder must not retain the buffer past the call.
//
// Decoders are intentionally out of scope: dot11 documents that decoded
// slices alias the input.
var NoRetain = &Analyzer{
	Name: "noretain",
	Doc: "frame encoders must not return or retain slices aliasing " +
		"caller-provided buffers (append-style dst parameters excepted)",
	Run: runNoRetain,
}

var encoderNamePrefixes = []string{"append", "marshal", "encode", "seal", "encap", "build"}

func isEncoderName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range encoderNamePrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runNoRetain(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isEncoderName(fd.Name.Name) {
				continue
			}
			byteParams := byteSliceParams(info, fd)
			if len(byteParams) == 0 {
				continue
			}
			// Append-style functions take the destination first and alias
			// it by contract.
			var dst types.Object
			if strings.HasPrefix(strings.ToLower(fd.Name.Name), "append") {
				dst = firstByteParam(info, fd)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						obj := aliasedParam(info, byteParams, res)
						if obj != nil && obj != dst {
							pass.Reportf(res.Pos(), "%s returns a slice aliasing its caller-provided buffer %s; copy the bytes before returning", funcName(fd), obj.Name())
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						if _, isField := lhs.(*ast.SelectorExpr); !isField {
							continue
						}
						obj := aliasedParam(info, byteParams, n.Rhs[i])
						if obj != nil {
							pass.Reportf(n.Rhs[i].Pos(), "%s retains its caller-provided buffer %s in a field; copy the bytes instead", funcName(fd), obj.Name())
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// byteSliceParams collects the objects of fd's []byte parameters.
func byteSliceParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return params
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				params[obj] = true
			}
		}
	}
	return params
}

func firstByteParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// aliasedParam unwraps slicing/parenthesization and reports the parameter
// object e aliases, or nil.
func aliasedParam(info *types.Info, params map[types.Object]bool, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj != nil && params[obj] {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}
