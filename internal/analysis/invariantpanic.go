package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// InvariantPanic enforces the repo's panic hygiene in internal/ packages:
//
//   - every panic message must carry the package prefix ("phy: ...",
//     "sta: ...") so a stack-less log line still identifies the subsystem;
//   - decode/parse paths — the functions fuzzers reach with attacker-shaped
//     bytes — must never panic at all; malformed input is an error return,
//     and panics are reserved for programmer-error invariants.
var InvariantPanic = &Analyzer{
	Name: "invariantpanic",
	Doc: "panics in internal/ must carry their package prefix and must not appear " +
		"in decode/parse paths, which return errors for malformed input",
	Run: runInvariantPanic,
}

// decodePathPrefixes mark function names that process untrusted input.
// The match is case-insensitive so unexported helpers (decodeFrom,
// parseTLV) are covered too. Must* wrappers (MustParseMAC) do not match:
// they are constructors for constants and panic by contract.
var decodePathPrefixes = []string{"decode", "parse", "unmarshal", "unwrap"}

func isDecodePathName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range decodePathPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runInvariantPanic(pass *Pass) error {
	if !isInternalPkg(pass.Pkg.PkgPath) {
		return nil
	}
	info := pass.Pkg.Info
	pkgName := pass.Pkg.Types.Name()
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inDecodePath := isDecodePathName(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if inDecodePath {
					pass.Reportf(call.Pos(), "%s is a decode path reachable with untrusted input; return an error instead of panicking", funcName(fd))
					return true
				}
				if len(call.Args) == 1 && !panicMessageHasPrefix(info, call.Args[0], pkgName+": ") {
					pass.Reportf(call.Pos(), "panic message must carry the %q package prefix (e.g. panic(%q))", pkgName+": ", pkgName+": ...")
				}
				return true
			})
		}
	}
	return nil
}

// panicMessageHasPrefix reports whether the panic argument demonstrably
// starts with prefix: a string literal, a fmt.Sprintf/fmt.Errorf whose
// format literal starts with it, or a concatenation whose leftmost operand
// does. Anything else (panic(err), panic(v)) cannot be verified and fails.
func panicMessageHasPrefix(info *types.Info, arg ast.Expr, prefix string) bool {
	switch arg := arg.(type) {
	case *ast.BasicLit:
		return litHasPrefix(arg, prefix)
	case *ast.BinaryExpr:
		// Leftmost operand of a "..." + x + y chain.
		return panicMessageHasPrefix(info, arg.X, prefix)
	case *ast.ParenExpr:
		return panicMessageHasPrefix(info, arg.X, prefix)
	case *ast.CallExpr:
		sel, ok := arg.Fun.(*ast.SelectorExpr)
		if !ok || len(arg.Args) == 0 {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		pkg, ok := info.Uses[id].(*types.PkgName)
		if !ok || pkg.Imported().Path() != "fmt" {
			return false
		}
		switch sel.Sel.Name {
		case "Sprintf", "Errorf", "Sprint":
			if lit, ok := arg.Args[0].(*ast.BasicLit); ok {
				return litHasPrefix(lit, prefix)
			}
		}
		return false
	}
	return false
}

func litHasPrefix(lit *ast.BasicLit, prefix string) bool {
	s := lit.Value
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		s = s[1 : len(s)-1]
	}
	return strings.HasPrefix(s, prefix)
}
