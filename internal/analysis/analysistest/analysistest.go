// Package analysistest runs wile's analyzers over fixture packages and
// checks their diagnostics against "// want" expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// A fixture file marks each expected diagnostic with a comment on the
// offending line:
//
//	t := sim.Time(5000) // want `bare numeral`
//
// The backquoted (or double-quoted) string is a regular expression that
// must match the diagnostic message. Several expectations may follow one
// want. Diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"wile/internal/analysis"
)

// Run loads the fixture directory as import path pkgPath and applies the
// analyzers, comparing diagnostics to the fixture's want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDirAs(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	wants := collectWants(t, pkg)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWants(text)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWants extracts the quoted regexps from the text after "// want".
func parseWants(text string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	s := strings.TrimSpace(text)
	for s != "" {
		var quote byte
		switch s[0] {
		case '`', '"':
			quote = s[0]
		default:
			return nil, fmt.Errorf("want expectation must be quoted with ` or \": %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want expectation: %q", s)
		}
		re, err := regexp.Compile(s[1 : 1+end])
		if err != nil {
			return nil, err
		}
		res = append(res, re)
		s = strings.TrimSpace(s[2+end:])
	}
	return res, nil
}
