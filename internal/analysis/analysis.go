// Package analysis is wile's domain-specific static-analysis suite.
//
// Every number the reproduction reports is an integral over a deterministic
// current-vs-time waveform, so the codebase carries invariants the Go
// compiler cannot check: simulation code must never read the wall clock or
// global randomness, unit-typed quantities (virtual time, dBm) must never be
// built from bare numerals, panics must identify their package and stay out
// of decode paths, frame encoders must not alias caller buffers, and errors
// must not be dropped. The analyzers in this package check those invariants
// mechanically; cmd/wile-vet is the driver that runs them over the tree.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) but is self-contained: it loads and
// type-checks packages with the standard library only, so the module keeps
// its zero-dependency property.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors x/tools' analysis.Analyzer so the
// suite can migrate to the upstream framework if the module ever takes on
// the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//wile:allow <name>" suppression directives.
	Name string
	// Doc is a one-paragraph description, shown by wile-vet -list.
	Doc string
	// Run performs the check on one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportRangef(pos, token.NoPos, nil, format, args...)
}

// ReportNodef records a diagnostic spanning n, so -json output carries the
// full source range for CI annotations.
func (p *Pass) ReportNodef(n ast.Node, format string, args ...any) {
	p.ReportRangef(n.Pos(), n.End(), nil, format, args...)
}

// ReportRangef records a diagnostic spanning [pos, end) with an optional
// supporting flow path (printed by wile-vet -explain). end may be
// token.NoPos when no range is known.
func (p *Pass) ReportRangef(pos, end token.Pos, flow []FlowStep, format string, args ...any) {
	d := Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Flow:     flow,
	}
	if end.IsValid() {
		d.End = p.Pkg.Fset.Position(end)
	}
	*p.diags = append(*p.diags, d)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Position
	// End is the exclusive end of the flagged source range; a zero End
	// means only the start position is known.
	End      token.Position
	Analyzer string
	Message  string
	// Flow is the value-flow or lock-state path supporting the finding,
	// rendered by wile-vet -explain. Empty for syntactic findings.
	Flow []FlowStep
}

// String formats the diagnostic the way go vet does, with the analyzer name
// appended so wile-vet output is greppable per check.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full wile-vet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SimClock, UnitSafety, InvariantPanic, NoRetain, PoolSafe, LockGuard, ErrDrop, ObsGuard}
}

// UnusedAllowName is the pseudo-analyzer name under which stale
// suppression directives are reported by RunChecked.
const UnusedAllowName = "unusedallow"

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position. Findings on lines carrying a matching
// "//wile:allow <analyzer>" directive (on the same line or the line above)
// are suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunChecked(pkgs, analyzers, false)
}

// RunChecked is Run with optional stale-directive detection: when
// reportUnused is set, every "//wile:allow <analyzer>" directive that
// suppressed nothing in this run is itself reported as a diagnostic under
// the "unusedallow" pseudo-analyzer, so obsolete suppressions cannot
// linger after the code they excused is fixed.
func RunChecked(pkgs []*Package, analyzers []*Analyzer, reportUnused bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
	}
	var unused []Diagnostic
	diags, unused = filterAllowed(pkgs, diags)
	if reportUnused {
		diags = append(diags, unused...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders findings by (file, line, column, analyzer,
// message) — a total order, so -json output is byte-identical across runs
// and machines.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// AllowDirective is the comment prefix that suppresses a finding, e.g.
//
//	rng := rand.New(rand.NewSource(1)) //wile:allow simclock -- demo only
//
// The directive lists one or more analyzer names (or "all") separated by
// commas or spaces; anything after " -- " is a human-readable reason.
const AllowDirective = "//wile:allow"

// allowEntry is one analyzer name listed by one //wile:allow directive,
// with a usage mark so stale directives can be reported.
type allowEntry struct {
	pos  token.Position
	used bool
}

// filterAllowed drops diagnostics excused by //wile:allow directives and
// returns, alongside the survivors, one "unusedallow" diagnostic for every
// directive name that excused nothing.
func filterAllowed(pkgs []*Package, diags []Diagnostic) (kept, unused []Diagnostic) {
	// allowed["file:line"] -> analyzer name -> directive entry.
	allowed := make(map[string]map[string]*allowEntry)
	var order []*allowEntry // declaration order, for deterministic reporting
	names := make(map[*allowEntry]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					dirNames, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					if allowed[key] == nil {
						allowed[key] = make(map[string]*allowEntry)
					}
					for _, n := range dirNames {
						if allowed[key][n] != nil {
							continue
						}
						e := &allowEntry{pos: pos}
						allowed[key][n] = e
						order = append(order, e)
						names[e] = n
					}
				}
			}
		}
	}
	use := func(m map[string]*allowEntry, analyzer string) bool {
		hit := false
		if e := m[analyzer]; e != nil {
			e.used, hit = true, true
		}
		if e := m["all"]; e != nil {
			e.used, hit = true, true
		}
		return hit
	}
	kept = diags[:0]
	for _, d := range diags {
		same := allowed[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]
		above := allowed[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line-1)]
		// Consult both sites so a directive is marked used wherever it
		// matches, then keep the diagnostic only if neither excused it.
		hit := use(same, d.Analyzer)
		hit = use(above, d.Analyzer) || hit
		if hit {
			continue
		}
		kept = append(kept, d)
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, e := range order {
		if e.used {
			continue
		}
		name := names[e]
		msg := fmt.Sprintf("//wile:allow %s suppresses nothing; delete the stale directive", name)
		if name != "all" && !known[name] {
			msg = fmt.Sprintf("//wile:allow %s names no analyzer in the suite; delete or fix the directive", name)
		}
		unused = append(unused, Diagnostic{Pos: e.pos, Analyzer: UnusedAllowName, Message: msg})
	}
	return kept, unused
}

func parseAllow(comment string) (names []string, ok bool) {
	if !strings.HasPrefix(comment, AllowDirective) {
		return nil, false
	}
	rest := comment[len(AllowDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //wile:allowed — not the directive
	}
	if i := strings.Index(rest, " -- "); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	if len(fields) == 0 {
		return nil, false
	}
	return fields, true
}

// --- shared AST/type helpers used by several analyzers ---

// funcName names a FuncDecl for diagnostics, including the receiver type
// for methods ("(*CCMPSession).Encapsulate").
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, e.X)
	case *ast.IndexExpr:
		writeTypeExpr(b, e.X)
	case *ast.IndexListExpr:
		writeTypeExpr(b, e.X)
	default:
		b.WriteString("?")
	}
}

// isInternalPkg reports whether path is under wile/internal/.
func isInternalPkg(path string) bool {
	return strings.HasPrefix(path, "wile/internal/")
}
