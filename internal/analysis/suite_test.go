package analysis_test

import (
	"testing"

	"wile/internal/analysis"
	"wile/internal/analysis/analysistest"
)

const fixtureRoot = "wile/internal/analysis/testdata/"

func TestSimClock(t *testing.T) {
	analysistest.Run(t, "testdata/simclock", fixtureRoot+"simclock", analysis.SimClock)
}

// TestSimClockCmdAllowlist checks that the same wall-clock calls produce no
// findings when the package lives under a wile/cmd/ import path.
func TestSimClockCmdAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata/simclock_cmd", "wile/cmd/simclock-fixture", analysis.SimClock)
}

func TestUnitSafety(t *testing.T) {
	analysistest.Run(t, "testdata/unitsafety", fixtureRoot+"unitsafety", analysis.UnitSafety)
}

func TestInvariantPanic(t *testing.T) {
	analysistest.Run(t, "testdata/invariantpanic", fixtureRoot+"invariantpanic", analysis.InvariantPanic)
}

func TestNoRetain(t *testing.T) {
	analysistest.Run(t, "testdata/noretain", fixtureRoot+"noretain", analysis.NoRetain)
}

func TestPoolSafe(t *testing.T) {
	analysistest.Run(t, "testdata/poolsafe", fixtureRoot+"poolsafe", analysis.PoolSafe)
}

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata/lockguard", fixtureRoot+"lockguard", analysis.LockGuard)
}

// TestUnusedAllow checks the stale-directive pass: RunChecked must report
// every //wile:allow that suppressed nothing, and only those.
func TestUnusedAllow(t *testing.T) {
	loader, err := analysis.NewLoader("testdata/unusedallow")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDirAs("testdata/unusedallow", fixtureRoot+"unusedallow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunChecked([]*analysis.Package{pkg}, analysis.Analyzers(), true)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var stale []string
	for _, d := range diags {
		if d.Analyzer != analysis.UnusedAllowName {
			continue // the live violation kept alongside the used directive
		}
		stale = append(stale, d.Message)
	}
	want := []string{
		"//wile:allow errdrop suppresses nothing; delete the stale directive",
		"//wile:allow nosuchcheck names no analyzer in the suite; delete or fix the directive",
	}
	if len(stale) != len(want) {
		t.Fatalf("got %d unusedallow diagnostics %q, want %d", len(stale), stale, len(want))
	}
	for i, w := range want {
		if stale[i] != w {
			t.Errorf("unusedallow[%d] = %q, want %q", i, stale[i], w)
		}
	}
	// The same run without the check must stay silent about directives.
	plain, err := analysis.RunChecked([]*analysis.Package{pkg}, analysis.Analyzers(), false)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range plain {
		if d.Analyzer == analysis.UnusedAllowName {
			t.Errorf("unusedallow reported without -unused-allows: %s", d)
		}
	}
}

func TestObsGuard(t *testing.T) {
	analysistest.Run(t, "testdata/obsguard", fixtureRoot+"obsguard", analysis.ObsGuard)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/errdrop", fixtureRoot+"errdrop", analysis.ErrDrop)
}
