package analysis_test

import (
	"testing"

	"wile/internal/analysis"
	"wile/internal/analysis/analysistest"
)

const fixtureRoot = "wile/internal/analysis/testdata/"

func TestSimClock(t *testing.T) {
	analysistest.Run(t, "testdata/simclock", fixtureRoot+"simclock", analysis.SimClock)
}

// TestSimClockCmdAllowlist checks that the same wall-clock calls produce no
// findings when the package lives under a wile/cmd/ import path.
func TestSimClockCmdAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata/simclock_cmd", "wile/cmd/simclock-fixture", analysis.SimClock)
}

func TestUnitSafety(t *testing.T) {
	analysistest.Run(t, "testdata/unitsafety", fixtureRoot+"unitsafety", analysis.UnitSafety)
}

func TestInvariantPanic(t *testing.T) {
	analysistest.Run(t, "testdata/invariantpanic", fixtureRoot+"invariantpanic", analysis.InvariantPanic)
}

func TestNoRetain(t *testing.T) {
	analysistest.Run(t, "testdata/noretain", fixtureRoot+"noretain", analysis.NoRetain)
}

func TestObsGuard(t *testing.T) {
	analysistest.Run(t, "testdata/obsguard", fixtureRoot+"obsguard", analysis.ObsGuard)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/errdrop", fixtureRoot+"errdrop", analysis.ErrDrop)
}
