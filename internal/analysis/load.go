package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path ("wile/internal/phy").
	PkgPath string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every file in the loader.
	Fset *token.FileSet
	// Syntax holds the parsed non-test files, sorted by filename.
	Syntax []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records type/object resolution for every expression in Syntax.
	Info *types.Info
}

// Loader parses and type-checks packages of the wile module plus their
// standard-library imports (resolved from GOROOT source, so no compiled
// export data or network access is needed). A Loader memoizes by import
// path and is not safe for concurrent use.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's declared path ("wile").
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the enclosing module by walking up from dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if p, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(p), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
	}
}

// Import implements types.Importer: module packages are loaded from source,
// everything else is delegated to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the module package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.LoadDirAs(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
}

// LoadDirAs type-checks the package in dir under the given import path.
// It is the entry point for fixture packages (testdata trees) that are not
// reachable by module patterns.
func (l *Loader) LoadDirAs(dir, pkgPath string) (*Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer func() { delete(l.loading, pkgPath) }()

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// goSources lists the non-test Go files in dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves command-line patterns ("./...", "./internal/phy", an
// import-path-relative directory) against base into module import paths.
// Directories named testdata, hidden directories, and directories without
// Go sources are skipped, matching the go tool's pattern rules.
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(dir string) error {
		names, err := goSources(dir)
		if err != nil || len(names) == 0 {
			return err
		}
		pkgPath, err := l.importPathFor(dir)
		if err != nil {
			return err
		}
		if !seen[pkgPath] {
			seen[pkgPath] = true
			paths = append(paths, pkgPath)
		}
		return nil
	}
	for _, pat := range patterns {
		dir, recursive := strings.CutSuffix(pat, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}
