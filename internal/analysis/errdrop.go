package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags call statements that silently discard an error result. In
// this codebase a dropped error usually means a malformed frame kept
// flowing: Marshal/Decode/Append errors are how the codec reports that a
// buffer is bogus. Only plain expression statements are flagged — an
// explicit "_ =" assignment and deferred cleanup calls are visible,
// deliberate choices left to review.
//
// A small set of can't-usefully-fail writers is excluded: the fmt print
// family, bytes.Buffer, strings.Builder, and hash.Hash writes, all of
// which document that they do not return meaningful errors.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag statements that call a function returning an error and drop it",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || tv.IsType() {
				return true // conversion, or unresolved
			}
			sig, ok := tv.Type.Underlying().(*types.Signature)
			if !ok {
				return true // builtin
			}
			res := sig.Results()
			if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
				return true
			}
			if errDropExcluded(info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "%s returns an error that is silently dropped; handle it or assign it explicitly", callName(info, call))
			return true
		})
	}
	return nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errDropExcluded reports whether the callee belongs to the short list of
// functions whose error results are documented never to matter.
func errDropExcluded(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt.Print/Printf/Println/Fprint*.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := info.Uses[id].(*types.PkgName); ok {
			if pkg.Imported().Path() == "fmt" && (strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
				return true
			}
			return false
		}
	}
	// Methods on never-failing writers.
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	method := sel.Sel.Name
	switch owner {
	case "bytes.Buffer", "strings.Builder":
		return strings.HasPrefix(method, "Write")
	case "hash.Hash":
		return method == "Write"
	}
	return false
}

func callName(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
