package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard enforces documented lock discipline mechanically. A struct
// field whose declaration comment says "guarded by <mutex>" (where <mutex>
// names a sync.Mutex or sync.RWMutex field of the same struct) may only be
// read or written while that mutex is held on the same base expression:
//
//	type Histogram struct {
//		mu    sync.Mutex
//		count int64 // guarded by mu
//	}
//
//	h.mu.Lock()
//	h.count++        // ok: h.mu held
//	h.mu.Unlock()
//	return h.count   // flagged: h.mu released
//
// Held-lock state flows through the function's control-flow graph:
// Lock/RLock acquire, Unlock/RUnlock release, "defer mu.Unlock()" keeps
// the mutex held to function exit, and a merge point only keeps locks held
// on every incoming path. Helpers that run with the caller's lock held
// declare it with a "//wile:holds <base>.<mutex>" line in their doc
// comment. Accesses through a freshly constructed value (the flow graph
// proves the base was a composite literal or new() in this function) are
// exempt — nobody else can see the object yet. Closures are analyzed with
// an empty held set: a lock taken at schedule time is not proof for a body
// that runs later.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "struct fields annotated \"guarded by mu\" may only be accessed " +
		"with the named mutex held (Lock/Unlock and defer tracked flow-sensitively)",
	Run: runLockGuard,
}

// lgGuard describes one guarded field.
type lgGuard struct {
	mutex string    // sibling field name of the guarding mutex
	pos   token.Pos // position of the annotation, for -explain
}

// lgState is the must-held lock set, keyed by the source path of the
// mutex expression ("h.mu", "p.pool.mu").
type lgState map[string]bool

type lgClient struct {
	pass     *Pass
	info     *types.Info
	graph    *FlowGraph
	guards   map[types.Object]lgGuard
	reported map[token.Pos]bool
}

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &lgClient{
				pass:     pass,
				info:     pass.Pkg.Info,
				graph:    BuildFlow(pass.Pkg.Info, fd.Body),
				guards:   guards,
				reported: make(map[token.Pos]bool),
			}
			entry := lgState{}
			for _, path := range holdsDirectives(fd.Doc) {
				entry[path] = true
			}
			cfgWalk(fd.Body, entry, c)
			// Closures start from an empty held set (plus their own holds
			// are established inside); walk each nested literal separately.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					cfgWalk(fl.Body, lgState{}, c)
				}
				return true
			})
		}
	}
	return nil
}

// collectGuards finds "guarded by <name>" annotations on struct fields and
// validates that the named mutex is a sibling field.
func collectGuards(pass *Pass) map[types.Object]lgGuard {
	guards := make(map[types.Object]lgGuard)
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			fieldNames := make(map[string]*ast.Field)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = field
				}
			}
			for _, field := range st.Fields.List {
				mutex, pos, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				mf, exists := fieldNames[mutex]
				if !exists || !isMutexType(pass.Pkg.Info.TypeOf(mf.Type)) {
					pass.Reportf(pos, "guarded-by annotation names %q, which is not a sync.Mutex/RWMutex field of this struct", mutex)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						guards[obj] = lgGuard{mutex: mutex, pos: pos}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's "guarded by X"
// doc or line comment.
func guardAnnotation(field *ast.Field) (mutex string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, "guarded by ")
			if i < 0 {
				continue
			}
			rest := text[i+len("guarded by "):]
			name := rest
			if j := strings.IndexFunc(rest, func(r rune) bool {
				return !(r == '_' || r == '.' ||
					('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9'))
			}); j >= 0 {
				name = rest[:j]
			}
			name = strings.TrimSuffix(name, ".")
			if name != "" {
				return name, c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// holdsDirectives parses "//wile:holds a.mu b.mu" lines from a function's
// doc comment: the listed mutex paths are held on entry (the caller's
// documented obligation).
func holdsDirectives(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//wile:holds")
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		if i := strings.Index(rest, " -- "); i >= 0 {
			rest = rest[:i]
		}
		out = append(out, strings.Fields(rest)...)
	}
	return out
}

func (c *lgClient) copyState(st lgState) lgState {
	out := make(lgState, len(st))
	for k := range st {
		out[k] = true
	}
	return out
}

// join keeps only locks held on both paths — the must-hold semantics that
// make the analysis sound at merge points.
func (c *lgClient) join(a, b lgState) lgState {
	for k := range a {
		if !b[k] {
			delete(a, k)
		}
	}
	return a
}

func (c *lgClient) stmt(s ast.Stmt, st lgState) lgState {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if path, op, ok := lockCall(c.info, s.X); ok {
			switch op {
			case "Lock", "RLock":
				st[path] = true
			case "Unlock", "RUnlock":
				delete(st, path)
			}
			return st
		}
		c.checkExpr(s.X, st)
		return st
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// function; any other deferred call is checked against the state
		// at function exit, which we approximate with the current state.
		if _, op, ok := lockCall(c.info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return st
		}
		c.checkExpr(s.Call, st)
		return st
	case *ast.RangeStmt:
		return st // X already checked via expr
	default:
		c.checkStmtExprs(s, st)
		return st
	}
}

func (c *lgClient) expr(e ast.Expr, st lgState) lgState {
	c.checkExpr(e, st)
	return st
}

// checkStmtExprs checks every expression hanging off a non-control
// statement without descending into nested statements (the walker owns
// those) or function literals (analyzed separately with an empty set).
func (c *lgClient) checkStmtExprs(s ast.Stmt, st lgState) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			c.checkSelector(n, st)
			return true
		}
		return true
	})
}

func (c *lgClient) checkExpr(e ast.Expr, st lgState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			c.checkSelector(n, st)
			return true
		}
		return true
	})
}

// checkSelector flags base.field accesses of guarded fields when the
// guarding mutex is not held on the same base.
func (c *lgClient) checkSelector(sel *ast.SelectorExpr, st lgState) {
	s, ok := c.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	guard, guarded := c.guards[s.Obj()]
	if !guarded || c.reported[sel.Sel.Pos()] {
		return
	}
	base := exprPath(sel.X)
	if base == "" {
		return // computed base: out of the heuristic's reach
	}
	need := base + "." + guard.mutex
	if st[need] {
		return
	}
	// A freshly constructed object is not shared yet: exempt accesses
	// whose base root provably came from a literal/new in this function.
	root, _, _ := strings.Cut(base, ".")
	if obj := c.lookupIdent(sel.X, root); obj != nil {
		if _, fresh := c.graph.FreshAt(obj); fresh {
			return
		}
	}
	c.reported[sel.Sel.Pos()] = true
	steps := []FlowStep{{
		Pos:  c.pass.Pkg.Fset.Position(guard.pos),
		Desc: s.Obj().Name() + " declared guarded by " + guard.mutex + " here",
	}, {
		Pos:  c.pass.Pkg.Fset.Position(sel.Pos()),
		Desc: base + "." + s.Obj().Name() + " accessed without " + need + " held",
	}}
	c.pass.ReportRangef(sel.Pos(), sel.End(), steps,
		"%s.%s is guarded by %s; hold it across this access", base, s.Obj().Name(), need)
}

// lookupIdent finds the leftmost identifier object of a selector base.
func (c *lgClient) lookupIdent(e ast.Expr, root string) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == root {
				return c.info.Uses[x]
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockCall recognizes "<path>.Lock()" / "<path>.Unlock()" (and the RW
// variants) on a sync.Mutex or sync.RWMutex, returning the mutex path and
// the operation.
func lockCall(info *types.Info, e ast.Expr) (path, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexType(info.TypeOf(sel.X)) {
		return "", "", false
	}
	path = exprPath(sel.X)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
