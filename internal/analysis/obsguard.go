package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsGuard enforces the observability layer's zero-cost contract: every
// call to an obs recorder or metric instrument in simulation code must sit
// behind a nil check of the hook it was read from, so a run without
// observability attached pays one predictable branch and zero allocations.
//
//	if p.rec != nil {
//	    p.rec.Span(p.track, start, p.sched.Now(), "access") // ok
//	}
//	p.Metrics.TxFrames.Inc() // flagged unless inside "if p.Metrics != nil"
//
// The frame-provenance ledger follows the same contract: every
// Resolve/QueueDrop on a *obs.Provenance hook must sit behind a nil guard
// (the if-init form "if pr := p.med.Prov; pr != nil { pr.Resolve(...) }"
// counts), so simulations without a ledger attached skip the bookkeeping
// entirely.
//
// Calls whose receiver is rooted at a function parameter are exempt: those
// are wiring-time helpers (TraceTo, Observe, NewMetrics) whose caller owns
// the nil decision. Guards must be in the same function literal as the
// call — a check at schedule time does not protect a deferred closure.
// Individual lines can be exempted with "//wile:allow obsguard".
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc: "require obs recorder/metric calls in simulation code to sit behind " +
		"a nil guard of the hook field, keeping disabled-path runs zero-cost",
	Run: runObsGuard,
}

// obsPkgPath is the package whose method calls the analyzer polices.
const obsPkgPath = "wile/internal/obs"

// obsguardAllowedPrefixes lists import-path prefixes where unguarded obs
// calls are fine: entry points that just built the recorder themselves, and
// the obs package's own implementation.
var obsguardAllowedPrefixes = []string{
	"wile/cmd/",
	"wile/examples/",
	obsPkgPath,
}

func runObsGuard(pass *Pass) error {
	for _, prefix := range obsguardAllowedPrefixes {
		if pass.Pkg.PkgPath == strings.TrimSuffix(prefix, "/") ||
			strings.HasPrefix(pass.Pkg.PkgPath, prefix) {
			return nil
		}
	}
	for _, f := range pass.Pkg.Syntax {
		walkWithStack(f, func(stack []ast.Node) {
			call, ok := stack[len(stack)-1].(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			if !isObsMethod(pass.Pkg.Info, sel) {
				return
			}
			recv := exprPath(sel.X)
			if recv == "" {
				return // computed receiver; out of scope for the heuristic
			}
			if rootIsParam(stack, recv) {
				return
			}
			if guardedAgainstNil(stack, recv) {
				return
			}
			pass.Reportf(call.Pos(), "obs call %s.%s is not behind a nil guard; "+
				"wrap it in \"if %s != nil\" so disabled runs stay zero-cost",
				recv, sel.Sel.Name, guardRoot(recv))
		})
	}
	return nil
}

// isObsMethod reports whether sel resolves to a method whose receiver type
// is declared in wile/internal/obs (Recorder, Registry, Counter, Gauge,
// Histogram, Provenance, TimeSeries).
func isObsMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == obsPkgPath
}

// exprPath renders a receiver chain of identifiers and field selections as
// a dotted path ("p.Metrics.TxFrames"), or "" for anything more exotic.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprPath(e.X)
	}
	return ""
}

// guardRoot suggests which prefix of the receiver path to nil-check: the
// hook field itself for metric instruments ("p.Metrics" for
// "p.Metrics.TxFrames"), the whole path otherwise.
func guardRoot(recv string) string {
	if i := strings.LastIndexByte(recv, '.'); i > 0 && strings.Count(recv, ".") >= 2 {
		return recv[:i]
	}
	return recv
}

// rootIsParam reports whether the leftmost identifier of the receiver path
// names a parameter of the innermost enclosing function.
func rootIsParam(stack []ast.Node, recv string) bool {
	root, _, _ := strings.Cut(recv, ".")
	for i := len(stack) - 1; i >= 0; i-- {
		var params *ast.FieldList
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			params = fn.Type.Params
		case *ast.FuncDecl:
			params = fn.Type.Params
		default:
			continue
		}
		if params != nil {
			for _, field := range params.List {
				for _, name := range field.Names {
					if name.Name == root {
						return true
					}
				}
			}
		}
		return false // innermost function wins; its closure vars need guards
	}
	return false
}

// guardedAgainstNil reports whether the call is dominated, within its own
// function literal, by a proof that a prefix of the receiver path is
// non-nil: either an enclosing "if recvPrefix != nil" then-branch, or an
// earlier "if recvPrefix == nil { return }" in a block on the path.
func guardedAgainstNil(stack []ast.Node, recv string) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return false // a guard outside the closure ran at schedule time
		case *ast.IfStmt:
			// Only the then-branch is protected by the condition.
			if i+1 < len(stack) && stack[i+1] == n.Body && condProvesNonNil(n.Cond, recv) {
				return true
			}
		case *ast.BlockStmt:
			if i+1 < len(stack) && nilReturnBefore(n, stack[i+1], recv) {
				return true
			}
		}
	}
	return false
}

// nilReturnBefore reports whether a statement earlier in block than the one
// containing the call bails out whenever a prefix of the receiver path is
// nil ("if recvPrefix == nil { return }").
func nilReturnBefore(block *ast.BlockStmt, inner ast.Node, recv string) bool {
	for _, stmt := range block.List {
		if stmt == inner {
			return false
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil || !condImpliedByNil(ifs.Cond, recv) {
			continue
		}
		if n := len(ifs.Body.List); n > 0 {
			if _, ok := ifs.Body.List[n-1].(*ast.ReturnStmt); ok {
				return true
			}
		}
	}
	return false
}

// condProvesNonNil reports whether cond, taken as true, implies some prefix
// of the receiver path is non-nil. Only conjunctions are descended: in
// "a != nil || b" neither disjunct is guaranteed.
func condProvesNonNil(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condProvesNonNil(c.X, recv)
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			return condProvesNonNil(c.X, recv) || condProvesNonNil(c.Y, recv)
		case "!=":
			var checked ast.Expr
			if isNilIdent(c.Y) {
				checked = c.X
			} else if isNilIdent(c.X) {
				checked = c.Y
			} else {
				return false
			}
			path := exprPath(checked)
			return path != "" && (recv == path || strings.HasPrefix(recv, path+"."))
		}
	}
	return false
}

// condImpliedByNil reports whether cond is guaranteed true whenever a
// prefix of the receiver path is nil, so "if cond { return }" bails out on
// every nil receiver. Disjunctions are descended: "a == nil || b" still
// fires whenever a is nil.
func condImpliedByNil(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condImpliedByNil(c.X, recv)
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "||":
			return condImpliedByNil(c.X, recv) || condImpliedByNil(c.Y, recv)
		case "==":
			var checked ast.Expr
			if isNilIdent(c.Y) {
				checked = c.X
			} else if isNilIdent(c.X) {
				checked = c.Y
			} else {
				return false
			}
			path := exprPath(checked)
			return path != "" && (recv == path || strings.HasPrefix(recv, path+"."))
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// walkWithStack traverses the file keeping the ancestor chain; fn sees the
// full stack with the visited node last.
func walkWithStack(f *ast.File, fn func(stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		fn(stack)
		return true
	})
}
