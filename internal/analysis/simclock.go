package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimClock forbids wall-clock time and ambient randomness in simulation
// code. Every experiment must be bit-for-bit reproducible from its seed:
// the only legal sources of time and randomness are the virtual clock
// (sim.Scheduler) and the seeded generator (sim.Rand). cmd/ entry points
// are allowlisted — a CLI may timestamp its log lines — and individual
// lines can be exempted with "//wile:allow simclock".
var SimClock = &Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/Sleep/After, timers and math/rand in simulation code; " +
		"sim.Scheduler and sim.Rand are the only legal time/randomness sources",
	Run: runSimClock,
}

// simclockAllowedPrefixes lists import-path prefixes where wall-clock use
// is legitimate (interactive entry points, not simulation logic).
var simclockAllowedPrefixes = []string{
	"wile/cmd/",
}

// wallClockFuncs are the package-level functions of "time" that couple the
// caller to the wall clock or the process scheduler.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

func runSimClock(pass *Pass) error {
	for _, prefix := range simclockAllowedPrefixes {
		if strings.HasPrefix(pass.Pkg.PkgPath, prefix) {
			return nil
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s breaks run-to-run determinism; use the seeded wile/internal/sim.Rand", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation code must use the sim.Scheduler virtual clock", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
