package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimClock forbids wall-clock time and ambient randomness in simulation
// code. Every experiment must be bit-for-bit reproducible from its seed:
// the only legal sources of time and randomness are the virtual clock
// (sim.Scheduler) and the seeded generator (sim.Rand). In internal
// packages the check extends to state: struct fields of type time.Time,
// time.Timer or time.Ticker couple a value to the wall clock even if no
// banned call appears nearby (the field invites one later). cmd/ entry
// points are allowlisted — a CLI may timestamp its log lines — and
// individual lines can be exempted with "//wile:allow simclock".
var SimClock = &Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/Sleep/After, timers, math/rand and wall-clock struct " +
		"fields in simulation code; sim.Scheduler and sim.Rand are the only " +
		"legal time/randomness sources",
	Run: runSimClock,
}

// wallClockTypes are the types of "time" that carry wall-clock state; a
// struct field of one of these (or a pointer to one) makes the enclosing
// type non-reproducible. time.Duration is fine: a span has no epoch.
var wallClockTypes = map[string]bool{
	"Time":   true,
	"Timer":  true,
	"Ticker": true,
}

// simclockAllowedPrefixes lists import-path prefixes where wall-clock use
// is legitimate (interactive entry points, not simulation logic).
var simclockAllowedPrefixes = []string{
	"wile/cmd/",
}

// wallClockFuncs are the package-level functions of "time" that couple the
// caller to the wall clock or the process scheduler.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

func runSimClock(pass *Pass) error {
	for _, prefix := range simclockAllowedPrefixes {
		if strings.HasPrefix(pass.Pkg.PkgPath, prefix) {
			return nil
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s breaks run-to-run determinism; use the seeded wile/internal/sim.Rand", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := info.Uses[id].(*types.PkgName)
				if !ok || pkgName.Imported().Path() != "time" {
					return true
				}
				if wallClockFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulation code must use the sim.Scheduler virtual clock", n.Sel.Name)
				}
			case *ast.StructType:
				if !isInternalPkg(pass.Pkg.PkgPath) || n.Fields == nil {
					return true
				}
				for _, field := range n.Fields.List {
					if name, ok := wallClockFieldType(info, field.Type); ok {
						pass.Reportf(field.Pos(), "struct field of type time.%s stores wall-clock state; keep sim.Time in simulation structs", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// wallClockFieldType reports whether the field type expression resolves to
// one of time's wall-clock state types, unwrapping one level of pointer.
func wallClockFieldType(info *types.Info, expr ast.Expr) (name string, ok bool) {
	tv, found := info.Types[expr]
	if !found || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return "", false
	}
	if !wallClockTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}
