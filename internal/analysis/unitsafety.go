package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// UnitSafety keeps bare numerals out of unit-typed quantities. A literal
// like 5000 silently converting to sim.Time (nanoseconds!) or phy.DBm is
// exactly the class of bug that skews an energy integral without failing a
// single test, so:
//
//   - explicit conversions of constant expressions built only from bare
//     literals to sim.Time are flagged (write 5*sim.Microsecond or
//     sim.FromDuration(d) instead);
//   - bare literal constants may not flow implicitly into unit-typed
//     function arguments, struct fields, assignments or composite-literal
//     elements — spell the unit out at the call site;
//   - in wile/internal packages, struct fields and function parameters
//     declared as bare float64 but named with a unit suffix (EnergyJ,
//     loadA, CapacityMAh, ...) are flagged: the matching internal/units
//     type carries the dimension in the type system instead of the name;
//   - multiplying two values of the same unit type is dimensionally
//     meaningless (J·J), and dividing them yields a dimensionless ratio
//     still wearing the unit — both must go through the units helpers
//     (units.Scale, units.Ratio) or a dedicated product helper.
//
// Zero is exempt (zero-value initialization is unambiguous), as are the
// packages that define the units and their constructors.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc: "forbid bare numeric literals becoming unit-typed values (sim.Time, phy.DBm, units.*); " +
		"flag unit-suffixed float64 declarations and cross-unit arithmetic that bypasses the units helpers",
	Run: runUnitSafety,
}

// unitHomePackages define the unit types and their constructor helpers;
// inside them, raw numerals are the implementation.
var unitHomePackages = map[string]bool{
	"wile/internal/sim":   true,
	"wile/internal/phy":   true,
	"wile/internal/units": true,
}

// unitTypeName reports the display name of t if it is one of the guarded
// unit types, else "".
func unitTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "wile/internal/sim" && obj.Name() == "Time":
		return "sim.Time"
	case obj.Pkg().Path() == "wile/internal/phy" && obj.Name() == "DBm":
		return "phy.DBm"
	case obj.Pkg().Path() == "wile/internal/units":
		return "units." + obj.Name()
	}
	return ""
}

// unitSuffixes maps bare-float64 declaration-name suffixes to the
// dimensioned type that should replace the float. Longer suffixes match
// first so CapacityMAh resolves to amp-hours, not amps.
var unitSuffixes = []struct {
	suffix, unit string
}{
	{"MAh", "units.AmpHours"},
	{"Ohms", "units.Ohms"},
	{"J", "units.Joules"},
	{"A", "units.Amps"},
	{"V", "units.Volts"},
	{"W", "units.Watts"},
}

// unitSuffixOf reports the suggested unit type for a name that ends in a
// unit suffix, else "". The character before the suffix must be lowercase:
// that catches loadA/EnergyJ/CapacityMAh while exempting acronyms (NAV,
// CCA) and single-letter names like V.
func unitSuffixOf(name string) string {
	for _, s := range unitSuffixes {
		if len(name) > len(s.suffix) && strings.HasSuffix(name, s.suffix) &&
			unicode.IsLower(rune(name[len(name)-len(s.suffix)-1])) {
			return s.unit
		}
	}
	return ""
}

func runUnitSafety(pass *Pass) error {
	if unitHomePackages[pass.Pkg.PkgPath] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkUnitCall(pass, n)
			case *ast.CompositeLit:
				checkUnitCompositeLit(pass, n)
			case *ast.BinaryExpr:
				checkUnitBinary(pass, n)
			case *ast.StructType:
				checkUnitSuffixNames(pass, n.Fields, "field")
			case *ast.FuncType:
				checkUnitSuffixNames(pass, n.Params, "parameter")
				checkUnitSuffixNames(pass, n.Results, "result")
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // x, y = f() — results are typed, not literals
					}
					lt := info.TypeOf(lhs)
					if lt == nil {
						continue
					}
					if unit := unitTypeName(lt); unit != "" {
						reportBareLiteral(pass, n.Rhs[i], unit, "assigned to")
					}
				}
			case *ast.ValueSpec:
				if n.Type == nil {
					break
				}
				t := info.TypeOf(n.Type)
				if t == nil {
					break
				}
				if unit := unitTypeName(t); unit != "" {
					for _, v := range n.Values {
						reportBareLiteral(pass, v, unit, "initializing")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkUnitCall handles both conversions sim.Time(<literal expr>) and bare
// literals passed as unit-typed parameters.
func checkUnitCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. Only sim.Time is restricted: its package exports the
		// named constants (sim.Microsecond, ...) that make raw-nanosecond
		// conversions unnecessary. phy.DBm(x) is the unit's constructor
		// spelling and stays legal.
		if unitTypeName(tv.Type) != "sim.Time" || len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		if isBareConstant(info, arg) {
			pass.Reportf(call.Pos(), "sim.Time(%s) converts a bare numeral to virtual nanoseconds; use the sim duration constants (e.g. 5*sim.Microsecond) or sim.FromDuration", exprString(arg))
		}
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if unit := unitTypeName(pt); unit != "" {
			reportBareLiteral(pass, arg, unit, "passed as")
		}
	}
}

// checkUnitBinary flags additive arithmetic and comparisons that mix a
// unit-typed operand with a bare numeral: t + 5000 adds five thousand raw
// nanoseconds. Multiplication and division by a dimensionless scalar
// (2*timeout) are legitimate and stay legal; multiplication and division
// of two same-unit dynamic values are not — J·J has no dimension the
// types can express, and J/J is a ratio that should shed its unit through
// units.Ratio rather than masquerade as joules.
func checkUnitBinary(pass *Pass, b *ast.BinaryExpr) {
	info := pass.Pkg.Info
	switch b.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	case token.MUL, token.QUO:
		xt, yt := info.TypeOf(b.X), info.TypeOf(b.Y)
		if xt == nil || yt == nil {
			return
		}
		unit := unitTypeName(xt)
		if unit == "" || unitTypeName(yt) != unit {
			return
		}
		xv, yv := info.Types[b.X], info.Types[b.Y]
		if xv.Value != nil || yv.Value != nil {
			return // constant scaling (2*x, x/4) keeps its dimension
		}
		if b.Op == token.MUL {
			pass.Reportf(b.Pos(), "multiplying two %s values has no representable dimension; use a units helper (units.Scale for scalar scaling, or a dedicated product helper)", unit)
		} else {
			pass.Reportf(b.Pos(), "dividing two %s values yields a dimensionless ratio still typed %s; use units.Ratio", unit, unit)
		}
		return
	default:
		return
	}
	check := func(unitSide, litSide ast.Expr) {
		t := info.TypeOf(unitSide)
		if t == nil {
			return
		}
		if unit := unitTypeName(t); unit != "" {
			reportBareLiteral(pass, litSide, unit, "combined ("+b.Op.String()+") with")
		}
	}
	check(b.X, b.Y)
	check(b.Y, b.X)
}

// checkUnitSuffixNames flags bare-float64 struct fields, parameters and
// results in wile/internal packages whose names end in a unit suffix: the
// name says "this is joules" while the type says "this is any number".
func checkUnitSuffixNames(pass *Pass, fl *ast.FieldList, kind string) {
	if fl == nil || !isInternalPkg(pass.Pkg.PkgPath) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range fl.List {
		t := info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		basic, ok := t.(*types.Basic)
		if !ok || basic.Kind() != types.Float64 {
			continue
		}
		for _, name := range f.Names {
			if unit := unitSuffixOf(name.Name); unit != "" {
				pass.Reportf(name.Pos(), "%s %s is a bare float64 with a unit-suffixed name; declare it as %s", kind, name.Name, unit)
			}
		}
	}
}

func checkUnitCompositeLit(pass *Pass, lit *ast.CompositeLit) {
	info := pass.Pkg.Info
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	switch under := tv.Type.Underlying().(type) {
	case *types.Struct:
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[key]
				if obj == nil {
					continue
				}
				if unit := unitTypeName(obj.Type()); unit != "" {
					reportBareLiteral(pass, kv.Value, unit, "assigned to field "+key.Name+" of")
				}
			} else if i < under.NumFields() {
				if unit := unitTypeName(under.Field(i).Type()); unit != "" {
					reportBareLiteral(pass, el, unit, "assigned to field "+under.Field(i).Name()+" of")
				}
			}
		}
	case *types.Slice:
		checkUnitElems(pass, lit, under.Elem())
	case *types.Array:
		checkUnitElems(pass, lit, under.Elem())
	case *types.Map:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if unit := unitTypeName(under.Elem()); unit != "" {
					reportBareLiteral(pass, kv.Value, unit, "stored as")
				}
			}
		}
	}
}

func checkUnitElems(pass *Pass, lit *ast.CompositeLit, elem types.Type) {
	unit := unitTypeName(elem)
	if unit == "" {
		return
	}
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		reportBareLiteral(pass, v, unit, "stored as")
	}
}

func reportBareLiteral(pass *Pass, e ast.Expr, unit, how string) {
	if !isBareConstant(pass.Pkg.Info, e) {
		return
	}
	pass.Reportf(e.Pos(), "bare numeral %s %s %s; write the quantity with explicit units (named constant or unit expression)", exprString(e), how, unit)
}

// isBareConstant reports whether e is a non-zero constant expression built
// entirely from literals — no identifier (named constant) anywhere in it.
// Named constants carry their unit in their name or declared type, so they
// are exempt; 0 is exempt as the unambiguous zero value.
func isBareConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if constant.Sign(tv.Value) == 0 {
		return false
	}
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.BasicLit, *ast.BinaryExpr, *ast.UnaryExpr, *ast.ParenExpr:
			return true
		default:
			pure = false
			return false
		}
	})
	return pure
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.UnaryExpr:
		if x, ok := e.X.(*ast.BasicLit); ok {
			return e.Op.String() + x.Value
		}
	}
	return "constant"
}
