// Package errdrop is the fixture for the errdrop analyzer.
package errdrop

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
)

type enc struct{}

func (enc) flush() error        { return nil }
func (enc) count() (int, error) { return 0, nil }
func fallible() error           { return nil }
func infallible()               {}
func multi() (string, int)      { return "", 0 }

func Use(buf *bytes.Buffer, sb *strings.Builder) {
	fallible() // want `fallible returns an error that is silently dropped`
	var e enc
	e.flush() // want `e.flush returns an error that is silently dropped`
	e.count() // want `e.count returns an error that is silently dropped`
	infallible()
	multi()
	_ = fallible() // ok: explicitly discarded, visible in review
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
	buf.WriteString("x")
	sb.WriteByte('y')
	h := sha256.New()
	h.Write([]byte("z")) // ok: hash.Hash.Write never fails
	if err := fallible(); err != nil {
		fmt.Println(err)
	}
	fallible() //wile:allow errdrop -- fixture: directive suppression
}
