// Package obsguard is the fixture for the obsguard analyzer.
package obsguard

import (
	"wile/internal/obs"
	"wile/internal/sim"
)

// device models the hot-path shape: observability hooks stored in nilable
// fields, consulted on every simulated event.
type device struct {
	rec     *obs.Recorder
	track   obs.TrackID
	metrics *instruments
}

type instruments struct {
	frames *obs.Counter
	depth  *obs.Gauge
}

func (d *device) goodGuarded(at int64) {
	if d.rec != nil {
		d.rec.Instant(d.track, 0, "tick")
	}
	if d.metrics != nil {
		d.metrics.frames.Inc()
		d.metrics.depth.Set(1)
	}
	if d.rec != nil && at > 0 {
		d.rec.Instant(d.track, 0, "late")
	}
}

func (d *device) badUnguarded() {
	d.rec.Instant(d.track, 0, "tick") // want `obs call d.rec.Instant is not behind a nil guard`
	d.metrics.frames.Inc()            // want `obs call d.metrics.frames.Inc is not behind a nil guard`
}

func (d *device) goodEarlyReturn() {
	if d.rec == nil {
		return
	}
	d.rec.Instant(d.track, 0, "tick")
}

func (d *device) badElseBranch() {
	if d.rec != nil {
		d.rec.Instant(d.track, 0, "then")
	} else {
		d.rec.Instant(d.track, 0, "else") // want `obs call d.rec.Instant is not behind a nil guard`
	}
}

func (d *device) badDisjunction(on bool) {
	if d.rec != nil || on {
		d.rec.Instant(d.track, 0, "maybe") // want `obs call d.rec.Instant is not behind a nil guard`
	}
}

// badClosure shows why the guard must live inside the deferred function:
// by the time the closure runs, the schedule-time check proves nothing.
func (d *device) badClosure(after func(func())) {
	if d.rec != nil {
		after(func() {
			d.rec.Instant(d.track, 0, "deferred") // want `obs call d.rec.Instant is not behind a nil guard`
		})
	}
	after(func() {
		if d.rec != nil {
			d.rec.Instant(d.track, 0, "deferred") // guard inside the closure: ok
		}
	})
}

// TraceTo is wiring, not hot path: the receiver chain roots at a function
// parameter, so the caller owns the nil decision.
func (d *device) TraceTo(r *obs.Recorder) {
	d.rec = r
	d.track = r.Track("device")
}

// Observe likewise builds instruments from a caller-owned registry.
func (d *device) Observe(reg *obs.Registry) {
	d.metrics = &instruments{
		frames: reg.Counter("device.frames"),
		depth:  reg.Gauge("device.depth"),
	}
}

func (d *device) allowed() {
	d.rec.Instant(d.track, 0, "tick") //wile:allow obsguard -- fixture: directive suppression
}

func localGuarded(mk func() *obs.Registry) {
	if reg := mk(); reg != nil {
		reg.Counter("local").Inc()
	}
}

// provDevice models the frame-provenance hook shape: a nilable ledger
// consulted at every terminal frame outcome on the receive path.
type provDevice struct {
	prov *obs.Provenance
	id   obs.ActorID
}

func (d *provDevice) hooks() (*obs.Provenance, obs.ActorID) {
	return d.prov, d.id
}

// goodResolveInit is the canonical hook idiom: read the field into a local
// in the if-init statement and prove it non-nil before resolving.
func (d *provDevice) goodResolveInit(frame obs.FrameID, at sim.Time) {
	if pr := d.prov; pr != nil {
		pr.Resolve(frame, d.id, at, obs.Delivered)
	}
}

// goodResolveAccessor mirrors a delegated resolver: both hooks come back
// from an accessor and the ledger half is guarded.
func (d *provDevice) goodResolveAccessor(frame obs.FrameID, at sim.Time) {
	if pr, id := d.hooks(); pr != nil {
		pr.Resolve(frame, id, at, obs.DropDecodeError)
	}
}

func (d *provDevice) badResolve(frame obs.FrameID, at sim.Time) {
	d.prov.Resolve(frame, d.id, at, obs.DropCollided) // want `obs call d.prov.Resolve is not behind a nil guard`
	d.prov.QueueDrop(d.id, at)                        // want `obs call d.prov.QueueDrop is not behind a nil guard`
}
