// Package poolsafe is the fixture for the poolsafe analyzer.
package poolsafe

import "sync"

type frame struct {
	payload []byte
	seq     uint64
}

func (f *frame) Release() {}

type kernel struct {
	free []*event
}

type event struct {
	seq uint64
	fn  func()
}

func (k *kernel) get() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free = k.free[:n-1]
		return e
	}
	return &event{}
}

func sink(any) {}

func useAfterRelease(f *frame) int {
	f.Release()
	return len(f.payload) // want `use of f after its release`
}

func useAfterReleaseAliased(f *frame) {
	g := f
	f.Release()
	sink(g.seq) // want `use of g after its release`
}

// branchy releases on one path only; a use after the join is still a bug on
// that path, so the may-analysis flags it.
func branchy(f *frame, done bool) {
	if done {
		f.Release()
	}
	sink(f.seq) // want `use of f after its release`
}

func useAfterFreelist(k *kernel, e *event) {
	k.free = append(k.free, e)
	sink(e.seq) // want `use of e after its release`
}

var pool sync.Pool

func useAfterPut() {
	f := pool.Get().(*frame)
	pool.Put(f)
	f.seq = 1 // want `use of f after its release`
}

// closureAfterRelease runs whenever the caller invokes it — after the
// release already on this path.
func closureAfterRelease(f *frame) func() int {
	f.Release()
	return func() int { return int(f.seq) } // want `use of f after its release`
}

// escapeThenRelease hands the frame to a goroutine and then recycles it
// while the goroutine may still be running.
func escapeThenRelease(f *frame) {
	go sink(f)
	f.Release() // want `released after escaping`
}

// storeThenRelease stashes the frame in a field before recycling it.
type holder struct {
	last *frame
}

func storeThenRelease(h *holder, f *frame) {
	h.last = f
	f.Release() // want `released after escaping`
}

// recycleLoop is the scheduler idiom: the rebinding at the top of each
// iteration kills the previous iteration's release fact.
func recycleLoop(k *kernel) {
	for i := 0; i < 4; i++ {
		e := k.get()
		sink(e.seq) // ok: released only after the last use
		k.free = append(k.free, e)
	}
}

// deferredRelease is the canonical safe pattern: the release runs at
// function exit, after every use in the body.
func deferredRelease(f *frame) int {
	defer f.Release()
	return len(f.payload) // ok: defer runs last
}

// rebound releases one frame and rebinds the name before the next use.
func rebound(f *frame) {
	f.Release()
	f = &frame{}
	sink(f.seq) // ok: the name refers to a fresh frame now
}

func suppressed(f *frame) {
	f.Release()
	sink(f.seq) //wile:allow poolsafe -- fixture: directive suppression
}
