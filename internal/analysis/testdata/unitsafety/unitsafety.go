// Package unitsafety is the fixture for the unitsafety analyzer.
package unitsafety

import (
	"time"

	"wile/internal/phy"
	"wile/internal/sim"
	"wile/internal/units"
)

type config struct {
	Deadline sim.Time
	Floor    phy.DBm
	Label    string
}

func conversions(d time.Duration) {
	_ = sim.Time(5000)     // want `sim.Time\(5000\) converts a bare numeral`
	_ = sim.Time(2 * 1000) // want `converts a bare numeral to virtual nanoseconds`
	_ = sim.Time(d)        // ok: dynamic value, carries its own unit
	_ = sim.FromDuration(d)
	_ = sim.Time(0)              // ok: zero value
	_ = 5 * sim.Microsecond      // ok: named unit constant
	_ = sim.Time(3 * sim.Second) // ok: built from named constants
	_ = phy.DBm(-70)             // ok: DBm's constructor spelling
}

func implicit(sched *sim.Scheduler) {
	sched.At(5000, func() {}) // want `bare numeral 5000 passed as sim.Time`
	sched.At(5*sim.Microsecond, func() {})
	c := config{Deadline: 1700, Label: "x"} // want `bare numeral 1700 assigned to field Deadline`
	c.Deadline = 12                         // want `bare numeral 12 assigned to sim.Time`
	c.Floor = -70                           // want `bare numeral -70 assigned to phy.DBm`
	var floor phy.DBm = -40                 // want `bare numeral -40 initializing phy.DBm`
	deadlines := []sim.Time{1000}           // want `bare numeral 1000 stored as sim.Time`
	positional := config{4200, -3, "y"}     // want `bare numeral 4200 assigned to field Deadline` `bare numeral -3 assigned to field Floor`
	var t sim.Time
	if t > 500 { // want `bare numeral 500 combined`
		t = t + 250 // want `bare numeral 250 combined`
	}
	_, _, _, _, _ = c, floor, deadlines, positional, t
}

func suppressed() sim.Time {
	return sim.Time(123456789) //wile:allow unitsafety -- fixture: directive suppression
}

// --- units.* types: bare literals may not become dimensioned quantities ---

type budget struct {
	Limit units.Joules
	Rail  units.Volts
}

func dimensioned() {
	var e units.Joules = 84 // want `bare numeral 84 initializing units.Joules`
	e = 12                  // want `bare numeral 12 assigned to units.Joules`
	b := budget{Limit: 7}   // want `bare numeral 7 assigned to field Limit of units.Joules`
	b.Rail = 3.3            // want `bare numeral 3.3 assigned to units.Volts`
	_ = units.Joules(1.5)   // ok: explicit constructor-style conversion
	_ = units.MicroJoules(84)
	_ = 2 * e // ok: scalar constant scaling
	_, _ = e, b
}

// --- same-unit arithmetic must go through the units helpers ---

func arithmetic(j1, j2 units.Joules, t1, t2 sim.Time) {
	_ = j1 * j2 // want `multiplying two units.Joules values has no representable dimension`
	_ = j1 / j2 // want `dividing two units.Joules values yields a dimensionless ratio`
	_ = t1 / t2 // want `dividing two sim.Time values yields a dimensionless ratio`
	_ = 2 * j1  // ok: constant scalar
	_ = j1 / 4  // ok: constant divisor
	_ = units.Ratio(j1, j2)
	_ = units.Scale(j1, 0.5)
}

// --- unit-suffixed float64 declarations belong in the type system ---

type measurements struct {
	EnergyJ     float64 // want `field EnergyJ is a bare float64 with a unit-suffixed name; declare it as units.Joules`
	CapacityMAh float64 // want `field CapacityMAh is a bare float64 with a unit-suffixed name; declare it as units.AmpHours`
	SenseOhms   float64 // want `field SenseOhms is a bare float64 with a unit-suffixed name; declare it as units.Ohms`
	V           float64 // ok: a single-letter name has no stem to read a unit from
	NAV         float64 // ok: acronym, not a volts suffix
	Ratio       float64 // ok: dimensionless
	Energy      units.Joules
}

func drain(loadA float64, railV float64) (spentJ float64) { // want `parameter loadA is a bare float64 with a unit-suffixed name; declare it as units.Amps` `parameter railV is a bare float64 with a unit-suffixed name; declare it as units.Volts` `result spentJ is a bare float64 with a unit-suffixed name; declare it as units.Joules`
	return loadA * railV
}
