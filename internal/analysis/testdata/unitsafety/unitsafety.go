// Package unitsafety is the fixture for the unitsafety analyzer.
package unitsafety

import (
	"time"

	"wile/internal/phy"
	"wile/internal/sim"
)

type config struct {
	Deadline sim.Time
	Floor    phy.DBm
	Label    string
}

func conversions(d time.Duration) {
	_ = sim.Time(5000)     // want `sim.Time\(5000\) converts a bare numeral`
	_ = sim.Time(2 * 1000) // want `converts a bare numeral to virtual nanoseconds`
	_ = sim.Time(d)        // ok: dynamic value, carries its own unit
	_ = sim.FromDuration(d)
	_ = sim.Time(0)              // ok: zero value
	_ = 5 * sim.Microsecond      // ok: named unit constant
	_ = sim.Time(3 * sim.Second) // ok: built from named constants
	_ = phy.DBm(-70)             // ok: DBm's constructor spelling
}

func implicit(sched *sim.Scheduler) {
	sched.At(5000, func() {}) // want `bare numeral 5000 passed as sim.Time`
	sched.At(5*sim.Microsecond, func() {})
	c := config{Deadline: 1700, Label: "x"} // want `bare numeral 1700 assigned to field Deadline`
	c.Deadline = 12                         // want `bare numeral 12 assigned to sim.Time`
	c.Floor = -70                           // want `bare numeral -70 assigned to phy.DBm`
	var floor phy.DBm = -40                 // want `bare numeral -40 initializing phy.DBm`
	deadlines := []sim.Time{1000}           // want `bare numeral 1000 stored as sim.Time`
	positional := config{4200, -3, "y"}     // want `bare numeral 4200 assigned to field Deadline` `bare numeral -3 assigned to field Floor`
	var t sim.Time
	if t > 500 { // want `bare numeral 500 combined`
		t = t + 250 // want `bare numeral 250 combined`
	}
	_, _, _, _, _ = c, floor, deadlines, positional, t
}

func suppressed() sim.Time {
	return sim.Time(123456789) //wile:allow unitsafety -- fixture: directive suppression
}
