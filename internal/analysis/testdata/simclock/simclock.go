// Package simclock is the fixture for the simclock analyzer.
package simclock

import (
	"math/rand" // want `math/rand breaks run-to-run determinism`
	"time"
)

func bad() time.Duration {
	start := time.Now()          // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	<-time.After(time.Second)    // want `time.After reads the wall clock`
	t := time.NewTimer(0)        // want `time.NewTimer reads the wall clock`
	t.Stop()
	_ = rand.Int()           // the import ban covers global rand; no extra finding here
	return time.Since(start) // want `time.Since reads the wall clock`
}

func indirect() func() time.Time {
	return time.Now // want `time.Now reads the wall clock`
}

func allowed() time.Time {
	return time.Now() //wile:allow simclock -- fixture: directive suppression
}

func ok() time.Duration {
	// Durations and arithmetic are fine; only wall-clock reads are banned.
	return 3 * time.Second
}

// wallState exercises the struct-field extension: wall-clock state types
// are banned from internal structs even without a banned call in sight.
type wallState struct {
	deadline time.Time    // want `struct field of type time.Time stores wall-clock state`
	tick     *time.Ticker // want `struct field of type time.Ticker stores wall-clock state`
	retry    *time.Timer  // want `struct field of type time.Timer stores wall-clock state`
	span     time.Duration
	label    string
}

type allowedState struct {
	startedAt time.Time //wile:allow simclock -- fixture: directive suppression
}
