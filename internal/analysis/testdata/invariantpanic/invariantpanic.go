// Package invariantpanic is the fixture for the invariantpanic analyzer.
package invariantpanic

import "fmt"

func Configure(n int) {
	if n < 0 {
		panic("invariantpanic: negative n") // ok: prefixed literal
	}
	if n == 1 {
		panic(fmt.Sprintf("invariantpanic: odd n %d", n)) // ok: prefixed format
	}
	if n == 2 {
		panic("invariantpanic: " + fmt.Sprint(n)) // ok: prefixed concatenation
	}
	if n == 3 {
		panic("bad n") // want `panic message must carry the "invariantpanic: " package prefix`
	}
	if n == 4 {
		panic(fmt.Errorf("bad n %d", n)) // want `package prefix`
	}
}

func MustValue(s string) int {
	if s == "" {
		panic(errEmpty) // want `package prefix`
	}
	return len(s)
}

var errEmpty = fmt.Errorf("invariantpanic: empty") // prefix invisible to the analyzer

func ParseThing(b []byte) byte {
	if len(b) == 0 {
		panic("invariantpanic: empty") // want `ParseThing is a decode path`
	}
	return b[0]
}

func decodeFrom(b []byte) byte {
	if len(b) == 0 {
		panic("empty") // want `decodeFrom is a decode path`
	}
	return b[0]
}

func MustParse(s string) int {
	if s == "" {
		// Must* constructors panic by contract and are not decode paths,
		// but the prefix rule still applies.
		panic("invariantpanic: MustParse: empty input")
	}
	return len(s)
}

func suppressed() {
	panic("no prefix here") //wile:allow invariantpanic -- fixture: directive suppression
}
