// Package unusedallow is the fixture for stale //wile:allow detection: one
// directive that earns its keep, one that suppresses nothing, and one that
// names an analyzer that does not exist.
package unusedallow

import "time"

// used: the directive below suppresses a real simclock finding.
func wallClock() time.Time {
	return time.Now() //wile:allow simclock -- fixture: directive is used
}

// stale: nothing on this line drops an error.
func clean() int {
	return 1 //wile:allow errdrop -- fixture: suppresses nothing
}

// typo: the named analyzer is not in the suite.
func typo() int {
	return 2 //wile:allow nosuchcheck -- fixture: unknown analyzer
}

var use = []any{wallClock, clean, typo}
