// Package noretain is the fixture for the noretain analyzer.
package noretain

type framer struct {
	scratch []byte
}

func EncodeHeader(b []byte) []byte {
	return b[:2] // want `returns a slice aliasing its caller-provided buffer b`
}

func MarshalTrailer(b []byte) ([]byte, error) {
	return b, nil // want `returns a slice aliasing its caller-provided buffer b`
}

func (f *framer) EncodeInto(payload []byte) []byte {
	f.scratch = payload[:0] // want `retains its caller-provided buffer payload`
	out := make([]byte, 2)
	return out
}

func AppendHeader(dst []byte, v byte) []byte {
	return append(dst, v) // ok: append is the contract
}

func AppendChecksum(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst // ok: dst is the designated destination
	}
	return src // want `returns a slice aliasing its caller-provided buffer src`
}

func MarshalCopy(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out // ok: fresh buffer
}

// DecodePayload is a decoder: aliasing the input is documented behaviour
// and out of the analyzer's scope.
func DecodePayload(b []byte) []byte {
	return b[1:]
}

func SealFrame(key, plaintext []byte) []byte {
	return plaintext //wile:allow noretain -- fixture: directive suppression
}

// EncodeTail re-slices through a local: the flow graph must connect
// b -> buf and flag the return exactly like "return buf[4:]".
func EncodeTail(buf []byte) []byte {
	b := buf[4:]
	return b // want `returns a slice aliasing its caller-provided buffer buf`
}

// MarshalHop aliases through two locals and a conditional re-slice.
func MarshalHop(src []byte, short bool) []byte {
	head := src[:8]
	out := head
	if short {
		out = out[:4]
	}
	return out // want `returns a slice aliasing its caller-provided buffer src`
}

// EncodeStash retains an alias of the input in a field via a local.
func (f *framer) EncodeStash(payload []byte) []byte {
	tmp := payload[2:]
	f.scratch = tmp // want `retains its caller-provided buffer payload`
	return nil
}

// EncodeRebound rebinds the local to a fresh copy before returning it.
// The alias graph is flow-insensitive, so the stale tmp~in edge survives
// the rebinding and the return is conservatively flagged; the directive
// documents the accepted false positive.
func EncodeRebound(in []byte) []byte {
	tmp := in[:2]
	tmp = append([]byte(nil), tmp...)
	return tmp //wile:allow noretain -- rebinding is conservatively flagged
}

// AppendFrame threads dst through locals; dst aliasing stays exempt.
func AppendFrame(dst []byte, v byte) []byte {
	out := dst
	out = append(out, v)
	return out // ok: aliases only the designated destination
}
