// Package noretain is the fixture for the noretain analyzer.
package noretain

type framer struct {
	scratch []byte
}

func EncodeHeader(b []byte) []byte {
	return b[:2] // want `returns a slice aliasing its caller-provided buffer b`
}

func MarshalTrailer(b []byte) ([]byte, error) {
	return b, nil // want `returns a slice aliasing its caller-provided buffer b`
}

func (f *framer) EncodeInto(payload []byte) []byte {
	f.scratch = payload[:0] // want `retains its caller-provided buffer payload`
	out := make([]byte, 2)
	return out
}

func AppendHeader(dst []byte, v byte) []byte {
	return append(dst, v) // ok: append is the contract
}

func AppendChecksum(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst // ok: dst is the designated destination
	}
	return src // want `returns a slice aliasing its caller-provided buffer src`
}

func MarshalCopy(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out // ok: fresh buffer
}

// DecodePayload is a decoder: aliasing the input is documented behaviour
// and out of the analyzer's scope.
func DecodePayload(b []byte) []byte {
	return b[1:]
}

func SealFrame(key, plaintext []byte) []byte {
	return plaintext //wile:allow noretain -- fixture: directive suppression
}
