// Package lockguard is the fixture for the lockguard analyzer.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++ // ok: c.mu held
	c.mu.Unlock()
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: deferred unlock keeps the lock to function exit
}

func (c *counter) unlocked() int {
	return c.n // want `c.n is guarded by c.mu`
}

func (c *counter) afterUnlock() int {
	c.mu.Lock()
	c.n = 2 // ok
	c.mu.Unlock()
	return c.n // want `c.n is guarded by c.mu`
}

// branchy only locks on one path; a must-analysis drops the lock at the
// join, so the access is flagged.
func (c *counter) branchy(lock bool) int {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want `c.n is guarded by c.mu`
}

// wrongBase holds a's lock but touches b's field.
func wrongBase(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want `b.n is guarded by b.mu`
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k] // ok: read lock held
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.m[k] = v // ok
	t.mu.Unlock()
}

// fresh constructs the object locally: nothing else can reach it yet, so
// the flow graph's freshness fact exempts the unlocked initialization.
func fresh() *counter {
	c := &counter{}
	c.n = 1 // ok: freshly constructed, not yet shared
	return c
}

// lockedAdd documents that its caller holds the lock.
//
//wile:holds c.mu
func lockedAdd(c *counter, n int) {
	c.n += n // ok: the directive asserts c.mu is held on entry
}

// asyncRead returns a closure; the lock held at creation time proves
// nothing about the time the closure runs.
func (c *counter) asyncRead() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `c.n is guarded by c.mu`
	}
}

type mislabeled struct {
	lock int
	v    int /* guarded by lock */ // want `names "lock", which is not a sync.Mutex/RWMutex field`
}

func (c *counter) suppressed() int {
	return c.n //wile:allow lockguard -- fixture: directive suppression
}

var use = []any{
	(*counter).inc, (*counter).deferred, (*counter).unlocked,
	(*counter).afterUnlock, (*counter).branchy, wrongBase,
	(*table).get, (*table).put, fresh, lockedAdd, (*counter).asyncRead,
	(*counter).suppressed, mislabeled{},
}
