package knownbad

import "sync"

type guardedStats struct {
	mu     sync.Mutex
	frames int // guarded by mu
}

func (s *guardedStats) add(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames += n
}

func (s *guardedStats) snapshot() int {
	return s.frames // lockguard: read without s.mu held
}
