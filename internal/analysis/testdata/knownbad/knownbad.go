// Package knownbad is the integration fixture for cmd/wile-vet: every
// analyzer in the suite fires in this package (noretain twice — once
// directly and once through a local alias; obsguard twice — once for a
// recorder hook and once for a provenance hook), and the exact diagnostic
// set is pinned by cmd/wile-vet/testdata/knownbad.json.
package knownbad

import (
	"time"

	"wile/internal/obs"
	"wile/internal/sim"
)

func wallClock() time.Time {
	return time.Now() // simclock: wall-clock read in simulation code
}

func deadline() sim.Time {
	var d sim.Time
	d = 250000 // unitsafety: bare numeral becomes virtual nanoseconds
	return d
}

func ParseByte(b []byte) byte {
	if len(b) == 0 {
		panic("knownbad: empty input") // invariantpanic: decode paths return errors
	}
	return b[0]
}

func EncodeBody(b []byte) []byte {
	return b[:1] // noretain: aliases the caller's buffer
}

func EncodeTail(buf []byte) []byte {
	tail := buf[4:]
	return tail // noretain: aliases the caller's buffer through a local
}

func emit() error { return nil }

func run() {
	emit() // errdrop: dropped error return
}

type traced struct {
	rec   *obs.Recorder
	track obs.TrackID
}

func (t *traced) tick() {
	t.rec.Instant(t.track, 0, "tick") // obsguard: hook used without a nil guard
}

type provTraced struct {
	prov *obs.Provenance
	id   obs.ActorID
}

func (t *provTraced) drop(frame obs.FrameID, at sim.Time) {
	t.prov.Resolve(frame, t.id, at, obs.DropCollided) // obsguard: provenance hook used without a nil guard
}

// use keeps the fixture's helpers referenced.
var use = []any{
	wallClock, deadline, ParseByte, EncodeBody, EncodeTail, run,
	(*traced).tick, (*provTraced).drop, useAfterRelease,
	(*guardedStats).add, (*guardedStats).snapshot,
}
