package knownbad

// pooledFrame stands in for a dot11 frame drawn from a sync.Pool.
type pooledFrame struct {
	payload []byte
}

func (f *pooledFrame) Release() {}

func useAfterRelease(f *pooledFrame) int {
	f.Release()
	return len(f.payload) // poolsafe: use after release
}
