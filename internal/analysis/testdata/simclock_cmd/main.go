// Package main is the simclock allowlist fixture: loaded under a
// wile/cmd/... import path, wall-clock use must produce no findings.
package main

import "time"

func main() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
}
