package medium

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// Differential test for the scaling refactor (DESIGN.md §12): the culled,
// gridded, incrementally busy-tracked medium must be byte-identical to the
// all-pairs reference — same reception traces (order included), same
// Stats, same carrier-sense answers, same drop reports — on randomized
// topologies with mixed sensitivities, powers, dead radios and overlapping
// schedules.

// equivScenario is a fully pre-generated world + transmission schedule, so
// both media replay exactly the same inputs.
type equivScenario struct {
	pos    []Position
	power  []phy.DBm
	sens   []phy.DBm
	on     []bool
	deaf   []bool // attached with no handler
	txAt   []time.Duration
	txFrom []int
	txLen  []int
	txRate []phy.Rate
	probes []time.Duration
}

func genScenario(seed uint64) equivScenario {
	rng := sim.NewRand(seed)
	var sc equivScenario
	n := 2 + rng.Intn(39)
	powers := []phy.DBm{0, 10, 20}
	senses := []phy.DBm{phy.SensitivityWiFiMCS7, -85, phy.SensitivityBLE}
	for i := 0; i < n; i++ {
		sc.pos = append(sc.pos, Position{X: rng.Float64() * 60, Y: rng.Float64() * 60})
		sc.power = append(sc.power, powers[rng.Intn(len(powers))])
		sc.sens = append(sc.sens, senses[rng.Intn(len(senses))])
		sc.on = append(sc.on, rng.Float64() < 0.8)
		sc.deaf = append(sc.deaf, rng.Float64() < 0.15)
	}
	txs := 5 + rng.Intn(60)
	for i := 0; i < txs; i++ {
		from := rng.Intn(n)
		if !sc.on[from] {
			continue // powered-off radios cannot transmit
		}
		sc.txAt = append(sc.txAt, time.Duration(rng.Float64()*float64(100*time.Millisecond)))
		sc.txFrom = append(sc.txFrom, from)
		sc.txLen = append(sc.txLen, rng.Intn(400))
		rate := phy.RateOFDM6
		if rng.Float64() < 0.3 {
			rate = phy.RateDSSS1
		}
		sc.txRate = append(sc.txRate, rate)
	}
	for i := 0; i < 20; i++ {
		sc.probes = append(sc.probes, time.Duration(rng.Float64()*float64(120*time.Millisecond)))
	}
	return sc
}

// playScenario runs sc on a fresh medium and renders everything observable
// into one string.
func playScenario(sc equivScenario, allPairs bool) string {
	s := sim.New()
	m := New(s, phy.WiFi24Channel(6))
	m.allPairs = allPairs
	prov := obs.NewProvenance()
	m.ObserveProvenance(prov)

	var out bytes.Buffer
	radios := make([]*Transceiver, len(sc.pos))
	for i := range sc.pos {
		radios[i] = m.Attach(fmt.Sprintf("r%d", i), sc.pos[i], sc.power[i], sc.sens[i])
		radios[i].SetOn(sc.on[i])
		if !sc.deaf[i] {
			i := i
			radios[i].Handler = func(r Reception) {
				fmt.Fprintf(&out, "rx r%d len=%d rssi=%.4f collided=%v start=%v end=%v frame=%d\n",
					i, len(r.Data), float64(r.RSSI), r.Collided, r.Start, r.End, r.Frame)
			}
		}
	}
	for i, at := range sc.txAt {
		i := i
		s.After(at, func() {
			m.Transmit(radios[sc.txFrom[i]], make([]byte, sc.txLen[i]), sc.txRate[i])
		})
	}
	for _, at := range sc.probes {
		at := at
		s.After(at, func() {
			for i, t := range radios {
				fmt.Fprintf(&out, "probe t=%v r%d busy=%v until=%v\n", at, i, m.Busy(t), m.BusyUntil(t))
			}
		})
	}
	s.Run()

	fmt.Fprintf(&out, "stats %+v\n", m.Stats)
	if err := prov.Verify(); err != nil {
		fmt.Fprintf(&out, "conservation violated: %v\n", err)
	}
	if err := prov.WriteReport(&out); err != nil {
		fmt.Fprintf(&out, "report error: %v\n", err)
	}
	return out.String()
}

func TestCulledMatchesAllPairs(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		sc := genScenario(seed)
		ref := playScenario(sc, true)
		got := playScenario(sc, false)
		if got != ref {
			t.Fatalf("seed %d: culled medium diverged from all-pairs reference\n--- all-pairs ---\n%s\n--- culled ---\n%s", seed, ref, got)
		}
	}
}

// TestCulledMatchesAllPairsNoProv repeats the differential check without a
// ledger: this is the path where culling actually uses the spatial grid
// for candidate discovery rather than the provenance complement walk.
func TestCulledMatchesAllPairsNoProv(t *testing.T) {
	play := func(sc equivScenario, allPairs bool) string {
		s := sim.New()
		m := New(s, phy.WiFi24Channel(6))
		m.allPairs = allPairs
		var out bytes.Buffer
		radios := make([]*Transceiver, len(sc.pos))
		for i := range sc.pos {
			radios[i] = m.Attach(fmt.Sprintf("r%d", i), sc.pos[i], sc.power[i], sc.sens[i])
			radios[i].SetOn(sc.on[i])
			if !sc.deaf[i] {
				i := i
				radios[i].Handler = func(r Reception) {
					fmt.Fprintf(&out, "rx r%d len=%d rssi=%.4f collided=%v start=%v end=%v\n",
						i, len(r.Data), float64(r.RSSI), r.Collided, r.Start, r.End)
				}
			}
		}
		for i, at := range sc.txAt {
			i := i
			s.After(at, func() {
				m.Transmit(radios[sc.txFrom[i]], make([]byte, sc.txLen[i]), sc.txRate[i])
			})
		}
		for _, at := range sc.probes {
			at := at
			s.After(at, func() {
				for i, t := range radios {
					fmt.Fprintf(&out, "probe t=%v r%d busy=%v until=%v\n", at, i, m.Busy(t), m.BusyUntil(t))
				}
			})
		}
		s.Run()
		fmt.Fprintf(&out, "stats %+v\n", m.Stats)
		return out.String()
	}
	for seed := uint64(100); seed < 150; seed++ {
		sc := genScenario(seed)
		ref := play(sc, true)
		got := play(sc, false)
		if got != ref {
			t.Fatalf("seed %d: gridded medium diverged from all-pairs reference\n--- all-pairs ---\n%s\n--- culled ---\n%s", seed, ref, got)
		}
	}
}
