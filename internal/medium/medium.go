// Package medium simulates the shared 2.4/5 GHz radio channel: who hears
// whom, at what signal strength, and which transmissions collide.
//
// The model is the standard discrete-event one: a transmission occupies the
// channel for its PHY airtime; every attached transceiver on the same
// channel whose received power clears its sensitivity gets a delivery event
// at the transmission's end. Two transmissions overlapping in time at a
// receiver corrupt each other unless one captures the receiver by a 10 dB
// margin. Corruption is expressed by flipping bytes so the 802.11 FCS check
// fails at decode time, exactly as on real hardware.
package medium

import (
	"fmt"
	"math"
	"time"

	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// CaptureMarginDB is the power advantage at which the stronger of two
// overlapping frames survives (physical-layer capture effect).
const CaptureMarginDB = 10

// Position is a 2-D location in meters.
type Position struct{ X, Y float64 }

// Distance reports the Euclidean distance to q, floored at 0.1 m to keep
// the path-loss model sane for co-located devices.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	d := dx*dx + dy*dy
	if d < 0.01 {
		return 0.1
	}
	return math.Sqrt(d)
}

// Reception describes one frame arriving at a transceiver.
type Reception struct {
	// Data is the MPDU including FCS. If the frame collided, bytes have
	// been flipped and the FCS will not verify.
	Data []byte
	// Rate is the PHY rate the frame was sent at.
	Rate phy.Rate
	// RSSI is the received signal strength.
	RSSI phy.DBm
	// Collided reports whether another transmission overlapped this one at
	// the receiver above sensitivity (diagnostic; receivers should rely on
	// the FCS).
	Collided bool
	// Start and End bound the frame's airtime.
	Start, End sim.Time
	// Frame is the provenance id assigned at Transmit, or zero when no
	// ledger is attached. A collided reception was already resolved by the
	// medium; receivers resolve the decode-side outcomes of the rest
	// (mac.Port does, or its ProvDelegate owner).
	Frame obs.FrameID
}

// Transceiver is one radio attached to the medium.
type Transceiver struct {
	m *Medium
	// Name labels the transceiver in diagnostics.
	Name string
	// Pos is the radio's location.
	Pos Position
	// Sensitivity is the weakest signal the radio can decode.
	Sensitivity phy.DBm
	// TxPower is the transmit power.
	TxPower phy.DBm
	// Handler receives every decodable frame while the radio is on. It
	// runs inside the simulation event that delivers the frame.
	Handler func(rx Reception)
	// on tracks whether the radio is powered.
	on bool
	// prov is this radio's actor id in the medium's provenance ledger,
	// assigned when the ledger is wired (ObserveProvenance / Attach).
	prov obs.ActorID
}

// SetOn powers the radio on or off. A powered-off radio neither receives
// nor carrier-senses; this is what deep/light sleep do to the WiFi chip.
func (t *Transceiver) SetOn(on bool) { t.on = on }

// On reports whether the radio is powered.
func (t *Transceiver) On() bool { return t.on }

// ProvID reports the radio's actor id in the medium's provenance ledger.
// Meaningful only while the medium's Prov hook is non-nil.
func (t *Transceiver) ProvID() obs.ActorID { return t.prov }

// transmission is one in-flight (or recently finished) frame.
type transmission struct {
	from       *Transceiver
	data       []byte
	rate       phy.Rate
	start, end sim.Time
	frame      obs.FrameID
}

// Medium is one radio channel shared by a set of transceivers.
type Medium struct {
	sched *sim.Scheduler
	// Channel is the radio channel; transceivers on a Medium implicitly
	// share it (multi-channel setups build one Medium per channel).
	Channel phy.Channel
	// Loss is the propagation model.
	Loss phy.PathLoss
	// Corrupt controls whether collisions flip bytes (true, default via
	// New) or merely set the Collided flag.
	Corrupt bool

	// Prov, when non-nil, is the frame-provenance ledger: Transmit assigns
	// each frame an id and deliver resolves the medium-owned outcomes
	// (radio_off, below_sensitivity, collided). Wire it through
	// ObserveProvenance so already-attached radios get actor ids.
	Prov *obs.Provenance
	// Metrics, when non-nil, mirrors Stats into a registry (see Observe).
	Metrics *Metrics

	nodes   []*Transceiver
	history []transmission
	// Stats counts medium-level events for the experiment harness.
	Stats Stats
}

// Stats aggregates medium activity.
type Stats struct {
	Transmissions int
	Deliveries    int
	Collisions    int
}

// Metrics mirrors the Stats counters into an obs.Registry as wile.medium_*
// counters, so examples and CLIs report medium activity without reaching
// into simulator structs.
type Metrics struct {
	Transmissions *obs.Counter
	Deliveries    *obs.Counter
	Collisions    *obs.Counter
}

// MetricsFor returns the registry's shared medium counters, registering
// them on first use.
func MetricsFor(reg *obs.Registry) *Metrics {
	return &Metrics{
		Transmissions: reg.Counter("wile.medium_transmissions"),
		Deliveries:    reg.Counter("wile.medium_deliveries"),
		Collisions:    reg.Counter("wile.medium_collisions"),
	}
}

// New builds a medium on the given channel with an indoor path-loss model
// (exponent 3.0, typical for the home/office environments in the paper).
func New(sched *sim.Scheduler, ch phy.Channel) *Medium {
	return &Medium{
		sched:   sched,
		Channel: ch,
		Loss:    phy.PathLoss{Exponent: 3.0, FreqMHz: ch.FreqMHz},
		Corrupt: true,
	}
}

// Attach adds a radio at pos. The radio starts powered off.
func (m *Medium) Attach(name string, pos Position, txPower, sensitivity phy.DBm) *Transceiver {
	t := &Transceiver{m: m, Name: name, Pos: pos, Sensitivity: sensitivity, TxPower: txPower}
	if m.Prov != nil {
		t.prov = m.Prov.Actor(name)
	}
	m.nodes = append(m.nodes, t)
	return t
}

// Observe mirrors the medium's Stats into the registry's wile.medium_*
// counters (see MetricsFor). Counts accumulated before wiring are
// back-filled so the registry never lags Stats.
func (m *Medium) Observe(reg *obs.Registry) {
	m.Metrics = MetricsFor(reg)
	if mm := m.Metrics; mm != nil {
		mm.Transmissions.Add(int64(m.Stats.Transmissions))
		mm.Deliveries.Add(int64(m.Stats.Deliveries))
		mm.Collisions.Add(int64(m.Stats.Collisions))
	}
}

// ObserveProvenance attaches a frame-provenance ledger, registering every
// already-attached radio as an actor. Frames transmitted before wiring keep
// FrameID zero and stay outside the ledger's accounting.
func (m *Medium) ObserveProvenance(p *obs.Provenance) {
	m.Prov = p
	if p == nil {
		return
	}
	for _, t := range m.nodes {
		t.prov = p.Actor(t.Name)
	}
}

// rssiAt reports from's signal strength at to.
func (m *Medium) rssiAt(from, to *Transceiver) phy.DBm {
	return m.Loss.RSSI(from.TxPower, from.Pos.Distance(to.Pos))
}

// Busy reports whether t currently hears any transmission above its
// sensitivity — the physical carrier-sense the DCF needs. A radio hears
// its own transmission.
func (m *Medium) Busy(t *Transceiver) bool {
	now := m.sched.Now()
	for _, tx := range m.history {
		if tx.end <= now || tx.start > now {
			continue
		}
		if tx.from == t {
			return true
		}
		if m.rssiAt(tx.from, t) >= t.Sensitivity {
			return true
		}
	}
	return false
}

// BusyUntil reports the latest end time of any transmission t can hear, or
// zero time if idle.
func (m *Medium) BusyUntil(t *Transceiver) sim.Time {
	now := m.sched.Now()
	var until sim.Time
	for _, tx := range m.history {
		if tx.end <= now || tx.start > now {
			continue
		}
		if (tx.from == t || m.rssiAt(tx.from, t) >= t.Sensitivity) && tx.end > until {
			until = tx.end
		}
	}
	return until
}

// Transmit puts data on the air from t at the given rate. The data slice
// must not be mutated afterwards. Returns the airtime.
func (m *Medium) Transmit(t *Transceiver, data []byte, rate phy.Rate) time.Duration {
	if !t.on {
		panic(fmt.Sprintf("medium: %s transmitting with radio off", t.Name))
	}
	airtime := phy.FrameAirtime(rate, len(data))
	now := m.sched.Now()
	tx := transmission{from: t, data: data, rate: rate, start: now, end: now.Add(airtime)}
	if m.Prov != nil {
		// Every other attached radio is a potential receiver and must
		// resolve to exactly one outcome (deliver schedules one event per
		// radio below).
		tx.frame = m.Prov.Transmitted(t.prov, len(m.nodes)-1)
	}
	m.history = append(m.history, tx)
	m.Stats.Transmissions++
	if m.Metrics != nil {
		m.Metrics.Transmissions.Inc()
	}
	m.pruneHistory(now)

	for _, rcv := range m.nodes {
		if rcv == t {
			continue
		}
		rcv := rcv
		m.sched.DoAt(tx.end, func() { m.deliver(tx, rcv) })
	}
	return airtime
}

// deliver decides at end-of-frame whether rcv decodes tx. The medium owns
// the provenance outcomes it can decide alone (radio_off,
// below_sensitivity, collided); receptions it hands to a Handler resolve
// at the decode layers.
func (m *Medium) deliver(tx transmission, rcv *Transceiver) {
	if !rcv.on || rcv.Handler == nil {
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropRadioOff)
		}
		return
	}
	rssi := m.rssiAt(tx.from, rcv)
	if rssi < rcv.Sensitivity {
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropBelowSensitivity)
		}
		return
	}
	collided := false
	for _, other := range m.history {
		if other.from == tx.from && other.start == tx.start && other.end == tx.end {
			continue
		}
		if other.start >= tx.end || other.end <= tx.start {
			continue
		}
		if other.from == rcv {
			// Receiver was itself transmitting: half-duplex radios miss
			// everything during their own TX.
			collided = true
			break
		}
		otherRSSI := m.rssiAt(other.from, rcv)
		if otherRSSI < rcv.Sensitivity {
			continue
		}
		if float64(rssi-otherRSSI) >= CaptureMarginDB {
			continue // we capture over the weaker frame
		}
		collided = true
		break
	}
	data := tx.data
	if collided {
		m.Stats.Collisions++
		if m.Metrics != nil {
			m.Metrics.Collisions.Inc()
		}
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropCollided)
		}
		if m.Corrupt {
			corrupted := append([]byte(nil), data...)
			// Flip a mid-frame byte so the FCS fails: the canonical
			// collision outcome.
			corrupted[len(corrupted)/2] ^= 0xff
			data = corrupted
		}
	}
	m.Stats.Deliveries++
	if m.Metrics != nil {
		m.Metrics.Deliveries.Inc()
	}
	rcv.Handler(Reception{
		Data:     data,
		Rate:     tx.rate,
		RSSI:     rssi,
		Collided: collided,
		Start:    tx.start,
		End:      tx.end,
		Frame:    tx.frame,
	})
}

// pruneHistory drops transmissions that ended more than a beacon interval
// ago; nothing can overlap them anymore.
func (m *Medium) pruneHistory(now sim.Time) {
	const keep = 200 * sim.Millisecond
	cutoff := now - keep
	if cutoff < 0 {
		return
	}
	i := 0
	for _, tx := range m.history {
		if tx.end >= cutoff {
			m.history[i] = tx
			i++
		}
	}
	clear(m.history[i:])
	m.history = m.history[:i]
}
