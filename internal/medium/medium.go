// Package medium simulates the shared 2.4/5 GHz radio channel: who hears
// whom, at what signal strength, and which transmissions collide.
//
// The model is the standard discrete-event one: a transmission occupies the
// channel for its PHY airtime; every attached transceiver on the same
// channel whose received power clears its sensitivity gets a delivery event
// at the transmission's end. Two transmissions overlapping in time at a
// receiver corrupt each other unless one captures the receiver by a 10 dB
// margin. Corruption is expressed by flipping bytes so the 802.11 FCS check
// fails at decode time, exactly as on real hardware.
//
// The medium scales to city-size populations (DESIGN.md §12): a transmitter
// only visits receivers inside its interference radius — the distance at
// which its signal falls below the most sensitive attached floor — found
// through a uniform spatial grid over Position, and carrier sense is an O(1)
// per-radio high-water mark instead of a history scan. Both are exact, not
// approximations: the culled receiver set provably contains every radio the
// all-pairs walk could have delivered to, sensed at, or interfered with, and
// the reference all-pairs path is kept (see allPairs) so a property test can
// pin byte-identical behavior on randomized topologies.
package medium

import (
	"fmt"
	"math"
	"time"

	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// CaptureMarginDB is the power advantage at which the stronger of two
// overlapping frames survives (physical-layer capture effect).
const CaptureMarginDB = 10

// Position is a 2-D location in meters.
type Position struct{ X, Y float64 }

// Distance reports the Euclidean distance to q, floored at 0.1 m to keep
// the path-loss model sane for co-located devices.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	d := dx*dx + dy*dy
	if d < 0.01 {
		return 0.1
	}
	return math.Sqrt(d)
}

// Reception describes one frame arriving at a transceiver.
type Reception struct {
	// Data is the MPDU including FCS. If the frame collided, bytes have
	// been flipped and the FCS will not verify.
	Data []byte
	// Rate is the PHY rate the frame was sent at.
	Rate phy.Rate
	// RSSI is the received signal strength.
	RSSI phy.DBm
	// Collided reports whether another transmission overlapped this one at
	// the receiver above sensitivity (diagnostic; receivers should rely on
	// the FCS).
	Collided bool
	// Start and End bound the frame's airtime.
	Start, End sim.Time
	// Frame is the provenance id assigned at Transmit, or zero when no
	// ledger is attached. A collided reception was already resolved by the
	// medium; receivers resolve the decode-side outcomes of the rest
	// (mac.Port does, or its ProvDelegate owner).
	Frame obs.FrameID
}

// heardTx is one transmission a receiver can hear (RSSI at or above its
// sensitivity), recorded at transmit time. It is everything the collision
// scan at delivery needs: the identity triple to skip the delivered frame
// itself, the airtime bounds for the overlap test, and the received power
// for the capture comparison.
type heardTx struct {
	from       *Transceiver
	start, end sim.Time
	rssi       phy.DBm
}

// interval is one of a radio's own transmissions (half-duplex blinding).
type interval struct{ start, end sim.Time }

// Transceiver is one radio attached to the medium.
type Transceiver struct {
	m *Medium
	// Name labels the transceiver in diagnostics.
	Name string
	// Pos is the radio's location. It must not be reassigned after Attach —
	// the medium's spatial index caches it; move a radio with SetPos.
	Pos Position
	// Sensitivity is the weakest signal the radio can decode.
	Sensitivity phy.DBm
	// TxPower is the transmit power.
	TxPower phy.DBm
	// Handler receives every decodable frame while the radio is on. It
	// runs inside the simulation event that delivers the frame.
	Handler func(rx Reception)
	// on tracks whether the radio is powered.
	on bool
	// prov is this radio's actor id in the medium's provenance ledger,
	// assigned when the ledger is wired (ObserveProvenance / Attach).
	prov obs.ActorID

	// idx is the attach order; delivery events are always scheduled in idx
	// order so the event stream is independent of the spatial index.
	idx int
	// cell is the radio's current grid bucket, valid once the grid is built.
	cell cellKey
	// busyUntil is the latest end time of any transmission this radio can
	// hear (including its own). Because every transmission starts at its
	// Transmit call time, "busy now" is exactly busyUntil > now — carrier
	// sense without a history scan.
	busyUntil sim.Time
	// heard accumulates in-flight (and recently ended) transmissions at or
	// above this radio's sensitivity; the delivery-time collision scan walks
	// it instead of the global history. Compacted lazily against the
	// medium's prune floor.
	heard []heardTx
	// ownTx are this radio's own transmissions: a half-duplex radio misses
	// everything during its own TX regardless of power levels.
	ownTx []interval
}

// SetOn powers the radio on or off. A powered-off radio neither receives
// nor carrier-senses; this is what deep/light sleep do to the WiFi chip.
func (t *Transceiver) SetOn(on bool) { t.on = on }

// On reports whether the radio is powered.
func (t *Transceiver) On() bool { return t.on }

// SetPos moves the radio, keeping the medium's spatial index coherent.
// Position changes take effect for frames transmitted after the move;
// frames already in flight keep the geometry they were launched under.
func (t *Transceiver) SetPos(p Position) {
	if t.m != nil && t.m.grid.built {
		t.m.grid.move(t, p)
	}
	t.Pos = p
}

// ProvID reports the radio's actor id in the medium's provenance ledger.
// Meaningful only while the medium's Prov hook is non-nil.
func (t *Transceiver) ProvID() obs.ActorID { return t.prov }

// transmission is one in-flight (or recently finished) frame.
type transmission struct {
	from       *Transceiver
	data       []byte
	rate       phy.Rate
	start, end sim.Time
	frame      obs.FrameID
}

// Medium is one radio channel shared by a set of transceivers.
type Medium struct {
	sched *sim.Scheduler
	// Channel is the radio channel; transceivers on a Medium implicitly
	// share it (multi-channel setups build one Medium per channel).
	Channel phy.Channel
	// Loss is the propagation model.
	Loss phy.PathLoss
	// Corrupt controls whether collisions flip bytes (true, default via
	// New) or merely set the Collided flag.
	Corrupt bool

	// Prov, when non-nil, is the frame-provenance ledger: Transmit assigns
	// each frame an id and deliver resolves the medium-owned outcomes
	// (radio_off, below_sensitivity, collided). Wire it through
	// ObserveProvenance so already-attached radios get actor ids.
	Prov *obs.Provenance
	// Metrics, when non-nil, mirrors Stats into a registry (see Observe).
	Metrics *Metrics

	nodes   []*Transceiver
	history []transmission
	// Stats counts medium-level events for the experiment harness.
	Stats Stats
	// mirrored is the portion of Stats already exported into Metrics, so
	// Observe's back-fill is idempotent (Observe may be called again, and
	// two media may share one registry's counters).
	mirrored Stats

	// minSens is the most sensitive floor of any attached radio and maxTx
	// the strongest attached transmitter; together with Loss they bound
	// every interference radius. Monotone as radios attach.
	minSens phy.DBm
	// maxTx is meaningful only while hasNodes (0 dBm is a valid power).
	maxTx    phy.DBm
	hasNodes bool
	grid     grid
	// scratch is the reusable candidate buffer for grid queries.
	scratch []candidate

	// maxAir is the longest airtime among frames currently in history; the
	// prune window is derived from it, so a 300 ms frame at 1 Mb/s keeps
	// its interferers alive where a fixed window would drop them.
	maxAir time.Duration
	// cutoff is the monotone prune floor: transmissions (and heard entries)
	// ending at or before it can no longer overlap any pending delivery.
	cutoff sim.Time
	// prunedLen is the history length right after the last compaction;
	// pruning re-runs only after meaningful growth, keeping it amortized
	// O(1) per transmission.
	prunedLen int

	// allPairs switches the medium to the reference all-pairs walk the
	// culled path must match byte for byte: every radio gets a delivery
	// event and carrier sense scans the history. Tests only.
	allPairs bool
}

// candidate is one grid-query hit: a receiver inside the transmitter's
// interference radius and the received power there.
type candidate struct {
	t    *Transceiver
	rssi phy.DBm
}

// Stats aggregates medium activity. Deliveries counts receptions handed to
// a Handler clean of collision; Collisions counts collided receptions (the
// two are disjoint, matching the provenance taxonomy's delivered-vs-collided
// split).
type Stats struct {
	Transmissions int
	Deliveries    int
	Collisions    int
}

// Metrics mirrors the Stats counters into an obs.Registry as wile.medium_*
// counters, so examples and CLIs report medium activity without reaching
// into simulator structs.
type Metrics struct {
	Transmissions *obs.Counter
	Deliveries    *obs.Counter
	Collisions    *obs.Counter
}

// MetricsFor returns the registry's shared medium counters, registering
// them on first use.
func MetricsFor(reg *obs.Registry) *Metrics {
	return &Metrics{
		Transmissions: reg.Counter("wile.medium_transmissions"),
		Deliveries:    reg.Counter("wile.medium_deliveries"),
		Collisions:    reg.Counter("wile.medium_collisions"),
	}
}

// New builds a medium on the given channel with an indoor path-loss model
// (exponent 3.0, typical for the home/office environments in the paper).
func New(sched *sim.Scheduler, ch phy.Channel) *Medium {
	return &Medium{
		sched:   sched,
		Channel: ch,
		Loss:    phy.PathLoss{Exponent: 3.0, FreqMHz: ch.FreqMHz},
		Corrupt: true,
		minSens: phy.DBm(math.Inf(1)),
	}
}

// Attach adds a radio at pos. The radio starts powered off.
func (m *Medium) Attach(name string, pos Position, txPower, sensitivity phy.DBm) *Transceiver {
	t := &Transceiver{
		m: m, Name: name, Pos: pos,
		Sensitivity: sensitivity, TxPower: txPower,
		idx: len(m.nodes),
	}
	if m.Prov != nil {
		t.prov = m.Prov.Actor(name)
	}
	if sensitivity < m.minSens {
		m.minSens = sensitivity
	}
	if !m.hasNodes || txPower > m.maxTx {
		m.maxTx = txPower
	}
	m.hasNodes = true
	m.nodes = append(m.nodes, t)
	if m.grid.built {
		m.grid.insert(t)
	}
	return t
}

// Observe mirrors the medium's Stats into the registry's wile.medium_*
// counters (see MetricsFor). Counts accumulated before wiring are
// back-filled exactly once: calling Observe again (or pointing several
// media at one registry) never re-adds already-exported counts.
func (m *Medium) Observe(reg *obs.Registry) {
	mm := MetricsFor(reg)
	if m.Metrics == nil || m.Metrics.Transmissions != mm.Transmissions {
		// First wiring, or a different registry: nothing of ours has been
		// exported into these counters yet.
		m.mirrored = Stats{}
	}
	m.Metrics = mm
	if mm != nil {
		mm.Transmissions.Add(int64(m.Stats.Transmissions - m.mirrored.Transmissions))
		mm.Deliveries.Add(int64(m.Stats.Deliveries - m.mirrored.Deliveries))
		mm.Collisions.Add(int64(m.Stats.Collisions - m.mirrored.Collisions))
	}
	m.mirrored = m.Stats
}

// countTransmission/countDelivery/countCollision bump one Stats counter and
// its registry mirror together, keeping mirrored in lockstep so Observe's
// back-fill stays idempotent.
func (m *Medium) countTransmission() {
	m.Stats.Transmissions++
	if m.Metrics != nil {
		m.Metrics.Transmissions.Inc()
		m.mirrored.Transmissions++
	}
}

func (m *Medium) countDelivery() {
	m.Stats.Deliveries++
	if m.Metrics != nil {
		m.Metrics.Deliveries.Inc()
		m.mirrored.Deliveries++
	}
}

func (m *Medium) countCollision() {
	m.Stats.Collisions++
	if m.Metrics != nil {
		m.Metrics.Collisions.Inc()
		m.mirrored.Collisions++
	}
}

// ObserveProvenance attaches a frame-provenance ledger, registering every
// already-attached radio as an actor. Frames transmitted before wiring keep
// FrameID zero and stay outside the ledger's accounting.
func (m *Medium) ObserveProvenance(p *obs.Provenance) {
	m.Prov = p
	if p == nil {
		return
	}
	for _, t := range m.nodes {
		t.prov = p.Actor(t.Name)
	}
}

// rssiAt reports from's signal strength at to.
func (m *Medium) rssiAt(from, to *Transceiver) phy.DBm {
	return m.Loss.RSSI(from.TxPower, from.Pos.Distance(to.Pos))
}

// Busy reports whether t currently hears any transmission above its
// sensitivity — the physical carrier-sense the DCF needs. A radio hears
// its own transmission.
func (m *Medium) Busy(t *Transceiver) bool {
	if m.allPairs {
		return m.busyScan(t)
	}
	return t.busyUntil > m.sched.Now()
}

// BusyUntil reports the latest end time of any transmission t can hear, or
// zero time if idle.
func (m *Medium) BusyUntil(t *Transceiver) sim.Time {
	if m.allPairs {
		return m.busyUntilScan(t)
	}
	if until := t.busyUntil; until > m.sched.Now() {
		return until
	}
	return 0
}

// busyScan is the all-pairs reference for Busy: a linear walk of the
// transmission history.
func (m *Medium) busyScan(t *Transceiver) bool {
	now := m.sched.Now()
	for _, tx := range m.history {
		if tx.end <= now || tx.start > now {
			continue
		}
		if tx.from == t {
			return true
		}
		if m.rssiAt(tx.from, t) >= t.Sensitivity {
			return true
		}
	}
	return false
}

// busyUntilScan is the all-pairs reference for BusyUntil.
func (m *Medium) busyUntilScan(t *Transceiver) sim.Time {
	now := m.sched.Now()
	var until sim.Time
	for _, tx := range m.history {
		if tx.end <= now || tx.start > now {
			continue
		}
		if (tx.from == t || m.rssiAt(tx.from, t) >= t.Sensitivity) && tx.end > until {
			until = tx.end
		}
	}
	return until
}

// Transmit puts data on the air from t at the given rate. The data slice
// must not be mutated while the frame (or any frame overlapping it) is in
// flight. Returns the airtime.
func (m *Medium) Transmit(t *Transceiver, data []byte, rate phy.Rate) time.Duration {
	if !t.on {
		panic(fmt.Sprintf("medium: %s transmitting with radio off", t.Name))
	}
	airtime := phy.FrameAirtime(rate, len(data))
	now := m.sched.Now()
	tx := transmission{from: t, data: data, rate: rate, start: now, end: now.Add(airtime)}
	if m.Prov != nil {
		// Every other attached radio is a potential receiver and must
		// resolve to exactly one outcome: in-radius radios through their
		// delivery events, culled radios through the batch event below.
		tx.frame = m.Prov.Transmitted(t.prov, len(m.nodes)-1)
	}
	m.history = append(m.history, tx)
	if airtime > m.maxAir {
		m.maxAir = airtime
	}
	m.countTransmission()
	m.pruneHistory(now)

	// The transmitter senses (and is blinded by) its own frame.
	if tx.end > t.busyUntil {
		t.busyUntil = tx.end
	}
	t.ownTx = appendPruned(t.ownTx, interval{start: now, end: tx.end}, m.cutoff)

	if m.allPairs {
		for _, rcv := range m.nodes {
			if rcv == t {
				continue
			}
			if rssi := m.rssiAt(t, rcv); rssi >= rcv.Sensitivity {
				m.noteHeard(rcv, t, tx, rssi)
			}
			rcv := rcv
			m.sched.DoAt(tx.end, func() { m.deliverAllPairs(tx, rcv) })
		}
		return airtime
	}

	if m.Prov != nil {
		// The ledger accounts for every pair, so the walk is O(nodes)
		// regardless of culling; what culling still buys is one batch event
		// for the out-of-budget radios instead of one event each.
		var culled []*Transceiver
		for _, rcv := range m.nodes {
			if rcv == t {
				continue
			}
			rssi := m.rssiAt(t, rcv)
			if rssi < m.minSens {
				culled = append(culled, rcv)
				continue
			}
			m.scheduleDelivery(t, tx, rcv, rssi)
		}
		if len(culled) > 0 {
			m.sched.DoAt(tx.end, func() { m.resolveCulled(tx, culled) })
		}
		return airtime
	}

	if !m.grid.built {
		m.buildGrid()
	}
	radius := m.Loss.Range(t.TxPower, m.minSens)
	for _, c := range m.gridCandidates(t, radius) {
		m.scheduleDelivery(t, tx, c.t, c.rssi)
	}
	return airtime
}

// scheduleDelivery books one in-radius receiver: carrier-sense and
// collision-scan state now, the delivery event at end of airtime.
func (m *Medium) scheduleDelivery(t *Transceiver, tx transmission, rcv *Transceiver, rssi phy.DBm) {
	if rssi >= rcv.Sensitivity {
		m.noteHeard(rcv, t, tx, rssi)
	}
	m.sched.DoAt(tx.end, func() { m.deliver(tx, rcv, rssi) })
}

// noteHeard records a hearable transmission at rcv: it extends the
// carrier-sense high-water mark and joins the receiver's collision-scan
// window.
func (m *Medium) noteHeard(rcv *Transceiver, from *Transceiver, tx transmission, rssi phy.DBm) {
	if tx.end > rcv.busyUntil {
		rcv.busyUntil = tx.end
	}
	rcv.heard = append(rcv.heard, heardTx{from: from, start: tx.start, end: tx.end, rssi: rssi})
}

// appendPruned appends iv, dropping entries that ended at or before the
// prune floor while it is touching the slice anyway.
func appendPruned(ivs []interval, iv interval, cutoff sim.Time) []interval {
	kept := ivs[:0]
	for _, old := range ivs {
		if old.end > cutoff {
			kept = append(kept, old)
		}
	}
	return append(kept, iv)
}

// resolveCulled settles the provenance outcomes of every receiver outside
// the frame's interference budget, at end of airtime like any delivery.
// The all-pairs precedence is preserved: a powered-off (or handler-less)
// radio resolves radio_off even though the signal also missed it.
func (m *Medium) resolveCulled(tx transmission, culled []*Transceiver) {
	if m.Prov == nil {
		return
	}
	for _, rcv := range culled {
		if !rcv.on || rcv.Handler == nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropRadioOff)
			continue
		}
		m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropBelowSensitivity)
	}
}

// deliver decides at end-of-frame whether rcv decodes tx. The medium owns
// the provenance outcomes it can decide alone (radio_off,
// below_sensitivity, collided); receptions it hands to a Handler resolve
// at the decode layers. rssi was computed when the frame was launched.
func (m *Medium) deliver(tx transmission, rcv *Transceiver, rssi phy.DBm) {
	collided := m.scanHeard(tx, rcv, rssi)
	if !rcv.on || rcv.Handler == nil {
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropRadioOff)
		}
		return
	}
	if rssi < rcv.Sensitivity {
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropBelowSensitivity)
		}
		return
	}
	m.finishDelivery(tx, rcv, rssi, collided)
}

// scanHeard runs the collision scan over rcv's heard window (compacting it
// against the prune floor in the same pass) and the receiver's own
// transmissions.
func (m *Medium) scanHeard(tx transmission, rcv *Transceiver, rssi phy.DBm) bool {
	collided := false
	kept := rcv.heard[:0]
	for _, h := range rcv.heard {
		if h.end <= m.cutoff {
			continue
		}
		kept = append(kept, h)
		if collided {
			continue
		}
		if h.from == tx.from && h.start == tx.start && h.end == tx.end {
			continue // the delivered frame itself
		}
		if h.start >= tx.end || h.end <= tx.start {
			continue
		}
		if float64(rssi-h.rssi) >= CaptureMarginDB {
			continue // we capture over the weaker frame
		}
		collided = true
	}
	clearHeard(rcv.heard[len(kept):])
	rcv.heard = kept
	if !collided {
		for _, iv := range rcv.ownTx {
			if iv.start < tx.end && iv.end > tx.start {
				// Receiver was itself transmitting: half-duplex radios miss
				// everything during their own TX.
				collided = true
				break
			}
		}
	}
	return collided
}

// clearHeard zeroes compacted-away tail entries so their *Transceiver
// pointers do not pin dead radios in a long-lived slice.
func clearHeard(tail []heardTx) {
	for i := range tail {
		tail[i] = heardTx{}
	}
}

// deliverAllPairs is the reference delivery path: RSSI evaluated at
// delivery time and collisions found by scanning the shared history. The
// culled path must match it byte for byte on static topologies.
func (m *Medium) deliverAllPairs(tx transmission, rcv *Transceiver) {
	if !rcv.on || rcv.Handler == nil {
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropRadioOff)
		}
		return
	}
	rssi := m.rssiAt(tx.from, rcv)
	if rssi < rcv.Sensitivity {
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropBelowSensitivity)
		}
		return
	}
	collided := false
	for _, other := range m.history {
		if other.from == tx.from && other.start == tx.start && other.end == tx.end {
			continue
		}
		if other.start >= tx.end || other.end <= tx.start {
			continue
		}
		if other.from == rcv {
			collided = true
			break
		}
		otherRSSI := m.rssiAt(other.from, rcv)
		if otherRSSI < rcv.Sensitivity {
			continue
		}
		if float64(rssi-otherRSSI) >= CaptureMarginDB {
			continue
		}
		collided = true
		break
	}
	m.finishDelivery(tx, rcv, rssi, collided)
}

// finishDelivery applies the collision outcome to the counters, the ledger
// and the payload, then hands the reception to the receiver. Collided
// receptions count only as collisions: Stats, the registry mirror and the
// provenance taxonomy all agree that delivered and collided are disjoint.
func (m *Medium) finishDelivery(tx transmission, rcv *Transceiver, rssi phy.DBm, collided bool) {
	data := tx.data
	if collided {
		m.countCollision()
		if m.Prov != nil {
			m.Prov.Resolve(tx.frame, rcv.prov, tx.end, obs.DropCollided)
		}
		if m.Corrupt && len(data) > 0 {
			corrupted := append([]byte(nil), data...)
			// Flip a mid-frame byte so the FCS fails: the canonical
			// collision outcome.
			corrupted[len(corrupted)/2] ^= 0xff
			data = corrupted
		}
	} else {
		m.countDelivery()
	}
	rcv.Handler(Reception{
		Data:     data,
		Rate:     tx.rate,
		RSSI:     rssi,
		Collided: collided,
		Start:    tx.start,
		End:      tx.end,
		Frame:    tx.frame,
	})
}

// pruneHistory drops transmissions that can no longer overlap any pending
// delivery. The keep window is the longest airtime currently on the air —
// every pending frame started at most that long before its delivery fires —
// instead of a fixed constant that silently assumed no frame outlives it.
// Compaction is amortized: it re-runs only once the history has clearly
// outgrown its last compacted size.
func (m *Medium) pruneHistory(now sim.Time) {
	if floor := now - sim.Time(m.maxAir); floor > m.cutoff {
		m.cutoff = floor
	}
	if len(m.history) < 2*m.prunedLen+16 {
		return
	}
	i := 0
	m.maxAir = 0
	for _, tx := range m.history {
		if tx.end <= m.cutoff {
			continue
		}
		m.history[i] = tx
		i++
		if air := tx.end.Sub(tx.start); air > m.maxAir {
			m.maxAir = air
		}
	}
	clear(m.history[i:])
	m.history = m.history[:i]
	m.prunedLen = i
}
