package medium

import (
	"math"
	"slices"
)

// Spatial index for receiver culling (DESIGN.md §12).
//
// The medium buckets transceivers into a uniform grid over Position. A
// transmitter's interference radius r = Loss.Range(TxPower, minSens) — the
// distance at which its signal drops below the most sensitive attached
// floor — bounds every radio it could deliver to, collide with, or make
// busy, so a transmission only visits the grid cells its radius overlaps.
// Candidates are exact-filtered by received power against minSens and
// sorted by attach order, making the resulting event schedule independent
// of bucketing: byte-identical to the all-pairs walk.

// cellKey addresses one grid bucket.
type cellKey struct{ x, y int32 }

// grid is a uniform spatial hash over transceiver positions.
type grid struct {
	// size is the cell edge in meters, fixed when the grid is built to the
	// largest interference radius of the population at that moment so a
	// typical query touches at most a 3×3 block. Radios attached later can
	// widen the radius; queries span as many cells as the radius needs, so
	// a stale edge costs cells visited, never correctness.
	size  float64
	cells map[cellKey][]*Transceiver
	built bool
}

// keyFor buckets a position.
func (g *grid) keyFor(p Position) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / g.size)),
		y: int32(math.Floor(p.Y / g.size)),
	}
}

// insert adds t to the bucket for its current position.
func (g *grid) insert(t *Transceiver) {
	t.cell = g.keyFor(t.Pos)
	g.cells[t.cell] = append(g.cells[t.cell], t)
}

// move re-buckets t for a new position.
func (g *grid) move(t *Transceiver, p Position) {
	next := g.keyFor(p)
	if next == t.cell {
		return
	}
	bucket := g.cells[t.cell]
	for i, other := range bucket {
		if other == t {
			bucket[i] = bucket[len(bucket)-1]
			bucket[len(bucket)-1] = nil
			g.cells[t.cell] = bucket[:len(bucket)-1]
			break
		}
	}
	t.cell = next
	g.cells[next] = append(g.cells[next], t)
}

// buildGrid indexes the attached population. Deferred to the first culled
// transmission so attachment order and cost stay unchanged for small
// topologies that never transmit.
func (m *Medium) buildGrid() {
	edge := m.Loss.Range(m.maxTx, m.minSens)
	if edge < 1 || math.IsInf(edge, 1) || math.IsNaN(edge) {
		edge = 1
	}
	m.grid.size = edge
	m.grid.cells = make(map[cellKey][]*Transceiver, len(m.nodes))
	for _, t := range m.nodes {
		m.grid.insert(t)
	}
	m.grid.built = true
}

// gridCandidates reports every radio other than t whose received power from
// t clears the medium-wide sensitivity floor, in attach order. The returned
// slice is the medium's scratch buffer, valid until the next query.
func (m *Medium) gridCandidates(t *Transceiver, radius float64) []candidate {
	m.scratch = m.scratch[:0]
	x0 := int32(math.Floor((t.Pos.X - radius) / m.grid.size))
	x1 := int32(math.Floor((t.Pos.X + radius) / m.grid.size))
	y0 := int32(math.Floor((t.Pos.Y - radius) / m.grid.size))
	y1 := int32(math.Floor((t.Pos.Y + radius) / m.grid.size))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, rcv := range m.grid.cells[cellKey{x: x, y: y}] {
				if rcv == t {
					continue
				}
				rssi := m.rssiAt(t, rcv)
				if rssi < m.minSens {
					continue
				}
				m.scratch = append(m.scratch, candidate{t: rcv, rssi: rssi})
			}
		}
	}
	// Attach order is the scheduling contract: delivery events must enqueue
	// in the same order the all-pairs walk would, or traces diverge.
	slices.SortFunc(m.scratch, func(a, b candidate) int { return a.t.idx - b.t.idx })
	return m.scratch
}
