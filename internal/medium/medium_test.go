package medium

import (
	"testing"
	"time"

	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

func newTestMedium() (*sim.Scheduler, *Medium) {
	s := sim.New()
	return s, New(s, phy.WiFi24Channel(6))
}

func TestDeliveryWithinRange(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{3, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	rx.SetOn(true)

	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }

	data := make([]byte, 100)
	airtime := m.Transmit(tx, data, phy.RateHTMCS7SGI)
	s.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	r := got[0]
	if r.Collided {
		t.Error("lone transmission marked collided")
	}
	if r.End.Sub(r.Start) != airtime {
		t.Errorf("airtime %v, reception window %v", airtime, r.End.Sub(r.Start))
	}
	if r.RSSI >= 0 {
		t.Errorf("RSSI %v not attenuated", r.RSSI)
	}
	if len(r.Data) != 100 {
		t.Errorf("data length %d", len(r.Data))
	}
}

func TestNoDeliveryBeyondRange(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	// At 0 dBm with exponent 3, MCS7 sensitivity (-70 dBm) dies within
	// ~10 m; put the receiver at 100 m.
	rx := m.Attach("rx", Position{100, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	rx.SetOn(true)
	delivered := false
	rx.Handler = func(Reception) { delivered = true }
	m.Transmit(tx, make([]byte, 50), phy.RateHTMCS7SGI)
	s.Run()
	if delivered {
		t.Fatal("frame delivered beyond radio range")
	}
}

func TestRadioOffReceivesNothing(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	delivered := false
	rx.Handler = func(Reception) { delivered = true }
	m.Transmit(tx, make([]byte, 50), phy.RateHTMCS7SGI)
	s.Run()
	if delivered {
		t.Fatal("powered-off radio received a frame")
	}
}

func TestTransmitWithRadioOffPanics(t *testing.T) {
	_, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	defer func() {
		if recover() == nil {
			t.Fatal("transmit with radio off did not panic")
		}
	}()
	m.Transmit(tx, make([]byte, 10), phy.RateHTMCS7SGI)
}

func TestOverlappingTransmissionsCollide(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{2, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	for _, trx := range []*Transceiver{a, b, rx} {
		trx.SetOn(true)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }

	// Both transmit at t=0; equidistant, so neither captures.
	m.Transmit(a, make([]byte, 200), phy.RateOFDM6)
	m.Transmit(b, make([]byte, 200), phy.RateOFDM6)
	s.Run()

	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2 (both corrupted)", len(got))
	}
	for i, r := range got {
		if !r.Collided {
			t.Errorf("reception %d not marked collided", i)
		}
	}
	if m.Stats.Collisions != 2 {
		t.Errorf("collision count = %d", m.Stats.Collisions)
	}
}

func TestCollisionCorruptsBytes(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{2, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	for _, trx := range []*Transceiver{a, b, rx} {
		trx.SetOn(true)
	}
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }
	m.Transmit(a, orig, phy.RateOFDM6)
	m.Transmit(b, make([]byte, 64), phy.RateOFDM6)
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	for _, r := range got {
		same := true
		if len(r.Data) != 64 {
			continue
		}
		for i := range r.Data {
			if r.Data[i] != orig[i] {
				same = false
			}
		}
		if same && r.Collided {
			t.Error("collided frame delivered unmodified")
		}
	}
	// The transmitter's original buffer must never be touched.
	for i := range orig {
		if orig[i] != byte(i) {
			t.Fatal("transmit buffer mutated by collision corruption")
		}
	}
}

func TestCaptureEffect(t *testing.T) {
	s, m := newTestMedium()
	near := m.Attach("near", Position{1, 0}, 0, phy.SensitivityWiFi1M)
	far := m.Attach("far", Position{30, 0}, 0, phy.SensitivityWiFi1M)
	rx := m.Attach("rx", Position{0, 0}, 0, phy.SensitivityWiFi1M)
	for _, trx := range []*Transceiver{near, far, rx} {
		trx.SetOn(true)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }
	// near is ~44 dB stronger at rx than far (exponent 3, 1 m vs 30 m):
	// the near frame captures; the far frame is corrupted.
	m.Transmit(near, make([]byte, 100), phy.RateOFDM6)
	m.Transmit(far, make([]byte, 100), phy.RateOFDM6)
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	byCollided := map[bool]int{}
	for _, r := range got {
		byCollided[r.Collided]++
	}
	if byCollided[false] != 1 || byCollided[true] != 1 {
		t.Fatalf("capture effect: collided map %v, want one clean + one corrupted", byCollided)
	}
}

func TestHalfDuplexSelfCollision(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	b.SetOn(true)
	var got []Reception
	b.Handler = func(r Reception) { got = append(got, r) }
	// b transmits while a's frame is in flight: b cannot hear a.
	m.Transmit(a, make([]byte, 1000), phy.RateOFDM6)
	m.Transmit(b, make([]byte, 10), phy.RateOFDM6)
	s.Run()
	if len(got) != 1 || !got[0].Collided {
		t.Fatalf("half-duplex rx while tx: %+v", got)
	}
}

func TestBusyAndBusyUntil(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	b.SetOn(true)
	if m.Busy(b) {
		t.Fatal("medium busy before any transmission")
	}
	airtime := m.Transmit(a, make([]byte, 500), phy.RateOFDM6)
	if !m.Busy(b) {
		t.Fatal("medium not busy during transmission")
	}
	if !m.Busy(a) {
		t.Fatal("transmitter does not sense own transmission")
	}
	want := sim.Time(0).Add(airtime)
	if got := m.BusyUntil(b); got != want {
		t.Fatalf("BusyUntil = %v, want %v", got, want)
	}
	s.Run()
	if m.Busy(b) {
		t.Fatal("medium busy after transmission ended")
	}
}

func TestSequentialTransmissionsNoCollision(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	rx.SetOn(true)
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }
	at1 := m.Transmit(a, make([]byte, 100), phy.RateOFDM6)
	s.After(at1+sim.Microsecond.Duration(), func() {
		m.Transmit(a, make([]byte, 100), phy.RateOFDM6)
	})
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, r := range got {
		if r.Collided {
			t.Errorf("sequential frame %d marked collided", i)
		}
	}
}

func TestDistanceFloor(t *testing.T) {
	p := Position{0, 0}
	if d := p.Distance(Position{0, 0}); d != 0.1 {
		t.Fatalf("co-located distance = %v, want floor 0.1", d)
	}
	if d := p.Distance(Position{3, 4}); d != 5 {
		t.Fatalf("3-4-5 distance = %v", d)
	}
}

func TestHistoryPruned(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	for i := 0; i < 100; i++ {
		m.Transmit(a, make([]byte, 10), phy.RateOFDM6)
		s.RunFor(sim.Second.Duration())
	}
	// Pruning is amortized (it re-runs after the history doubles past its
	// last compacted size), so the bound is a small constant, not an exact
	// count: 100 long-dead transmissions must not accumulate.
	if len(m.history) > 32 {
		t.Fatalf("history holds %d entries after pruning", len(m.history))
	}
}

// TestLongFrameOutlivesOldPruneWindow: a frame slower and longer than the
// old fixed 200 ms keep window must still collide with an interferer that
// ended early in its airtime. The prune window is derived from the longest
// airtime on the air, so background traffic far away (which triggers
// pruning) cannot evict the interferer before the long frame resolves.
func TestLongFrameOutlivesOldPruneWindow(t *testing.T) {
	s, m := newTestMedium()
	long := m.Attach("long", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	short := m.Attach("short", Position{2, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	far := m.Attach("far", Position{500, 0}, 0, phy.SensitivityWiFiMCS7)
	for _, trx := range []*Transceiver{long, short, rx, far} {
		trx.SetOn(true)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }

	// ~240 ms of airtime at 1 Mb/s: starts at t=0, ends long after the old
	// 200 ms window has rolled past the interferer below.
	airtime := m.Transmit(long, make([]byte, 30000), phy.RateDSSS1)
	if airtime <= 200*sim.Millisecond.Duration() {
		t.Fatalf("long frame airtime %v not beyond the old 200 ms window", airtime)
	}
	s.After(sim.Millisecond.Duration(), func() {
		m.Transmit(short, make([]byte, 10), phy.RateOFDM6)
	})
	// Out-of-range chatter to drive history growth and pruning while the
	// long frame is still in the air.
	for i := 2; i < 60; i++ {
		at := time.Duration(i) * 4 * sim.Millisecond.Duration()
		s.After(at, func() { m.Transmit(far, make([]byte, 10), phy.RateOFDM6) })
	}
	s.Run()

	var sawLong bool
	for _, r := range got {
		if len(r.Data) == 30000 {
			sawLong = true
			if !r.Collided {
				t.Error("long frame delivered clean despite early interferer")
			}
		}
	}
	if !sawLong {
		t.Fatal("long frame never delivered")
	}
}

// TestZeroLengthFrameCollision: colliding zero-length frames must not panic
// in the corruption byte-flip.
func TestZeroLengthFrameCollision(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{2, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	for _, trx := range []*Transceiver{a, b, rx} {
		trx.SetOn(true)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }
	m.Transmit(a, nil, phy.RateOFDM6)
	m.Transmit(b, nil, phy.RateOFDM6)
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
	for i, r := range got {
		if !r.Collided {
			t.Errorf("reception %d not marked collided", i)
		}
		if len(r.Data) != 0 {
			t.Errorf("reception %d grew data: %d bytes", i, len(r.Data))
		}
	}
}

// TestCollidedReceptionsAreNotDeliveries pins the accounting split: a
// collided reception counts only as a collision, in Stats and in the
// registry mirror, matching the provenance taxonomy where delivered and
// collided are disjoint outcomes.
func TestCollidedReceptionsAreNotDeliveries(t *testing.T) {
	s, m := newTestMedium()
	reg := obs.NewRegistry()
	m.Observe(reg)
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{2, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	for _, trx := range []*Transceiver{a, b, rx} {
		trx.SetOn(true)
	}
	rx.Handler = func(Reception) {}
	a.Handler = func(Reception) {}
	b.Handler = func(Reception) {}
	m.Transmit(a, make([]byte, 200), phy.RateOFDM6)
	m.Transmit(b, make([]byte, 200), phy.RateOFDM6)
	s.Run()
	// Overlapping equidistant frames: rx sees two collided receptions, a
	// and b each miss the other half-duplex — four collisions, none clean.
	if m.Stats.Deliveries != 0 {
		t.Errorf("Stats.Deliveries = %d, want 0 (all receptions collided)", m.Stats.Deliveries)
	}
	if m.Stats.Collisions != 4 {
		t.Errorf("Stats.Collisions = %d, want 4", m.Stats.Collisions)
	}
	if got := reg.Counter("wile.medium_deliveries").Value(); got != 0 {
		t.Errorf("wile.medium_deliveries = %d, want 0", got)
	}
	if got := reg.Counter("wile.medium_collisions").Value(); got != 4 {
		t.Errorf("wile.medium_collisions = %d, want 4", got)
	}
}

// TestObserveIdempotent: re-wiring a registry (or wiring two media to one)
// must not re-add already-exported Stats into the shared counters.
func TestObserveIdempotent(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	rx.SetOn(true)
	rx.Handler = func(Reception) {}
	m.Transmit(a, make([]byte, 100), phy.RateOFDM6)
	s.Run()

	reg := obs.NewRegistry()
	m.Observe(reg)
	m.Observe(reg) // second wiring: back-fill must not repeat
	if got := reg.Counter("wile.medium_transmissions").Value(); got != 1 {
		t.Fatalf("wile.medium_transmissions = %d after double Observe, want 1", got)
	}
	if got := reg.Counter("wile.medium_deliveries").Value(); got != 1 {
		t.Fatalf("wile.medium_deliveries = %d after double Observe, want 1", got)
	}

	// Live counts after wiring must survive a further re-wiring untouched.
	m.Transmit(a, make([]byte, 100), phy.RateOFDM6)
	s.Run()
	m.Observe(reg)
	if got := reg.Counter("wile.medium_transmissions").Value(); got != 2 {
		t.Fatalf("wile.medium_transmissions = %d after re-Observe, want 2", got)
	}

	// A second medium sharing the registry adds only its own counts.
	s2 := sim.New()
	m2 := New(s2, phy.WiFi24Channel(6))
	c := m2.Attach("c", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	c.SetOn(true)
	m2.Transmit(c, make([]byte, 10), phy.RateOFDM6)
	s2.Run()
	m2.Observe(reg)
	if got := reg.Counter("wile.medium_transmissions").Value(); got != 3 {
		t.Fatalf("wile.medium_transmissions = %d with two media, want 3", got)
	}

	// Moving to a fresh registry back-fills everything there exactly once.
	reg2 := obs.NewRegistry()
	m.Observe(reg2)
	if got := reg2.Counter("wile.medium_transmissions").Value(); got != 2 {
		t.Fatalf("fresh registry wile.medium_transmissions = %d, want 2", got)
	}
}

// TestSetPosRebucketsGrid: moving a radio with SetPos must take effect for
// later transmissions even after the spatial index is built.
func TestSetPosRebucketsGrid(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{500, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	rx.SetOn(true)
	delivered := 0
	rx.Handler = func(Reception) { delivered++ }

	m.Transmit(tx, make([]byte, 10), phy.RateOFDM6) // builds the grid; rx far out of range
	s.Run()
	if delivered != 0 {
		t.Fatal("delivery at 500 m")
	}
	rx.SetPos(Position{3, 0})
	m.Transmit(tx, make([]byte, 10), phy.RateOFDM6)
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d after moving into range, want 1", delivered)
	}
	rx.SetPos(Position{500, 0})
	m.Transmit(tx, make([]byte, 10), phy.RateOFDM6)
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d after moving back out of range, want 1", delivered)
	}
}

// TestAttachAfterGridBuilt: radios attached after the first transmission
// must be indexed and receive like any other.
func TestAttachAfterGridBuilt(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	m.Transmit(tx, make([]byte, 10), phy.RateOFDM6)
	s.Run()

	late := m.Attach("late", Position{3, 0}, 0, phy.SensitivityWiFiMCS7)
	late.SetOn(true)
	delivered := 0
	late.Handler = func(Reception) { delivered++ }
	m.Transmit(tx, make([]byte, 10), phy.RateOFDM6)
	s.Run()
	if delivered != 1 {
		t.Fatalf("late-attached radio got %d deliveries, want 1", delivered)
	}
}
