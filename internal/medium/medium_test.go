package medium

import (
	"testing"

	"wile/internal/phy"
	"wile/internal/sim"
)

func newTestMedium() (*sim.Scheduler, *Medium) {
	s := sim.New()
	return s, New(s, phy.WiFi24Channel(6))
}

func TestDeliveryWithinRange(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{3, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	rx.SetOn(true)

	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }

	data := make([]byte, 100)
	airtime := m.Transmit(tx, data, phy.RateHTMCS7SGI)
	s.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	r := got[0]
	if r.Collided {
		t.Error("lone transmission marked collided")
	}
	if r.End.Sub(r.Start) != airtime {
		t.Errorf("airtime %v, reception window %v", airtime, r.End.Sub(r.Start))
	}
	if r.RSSI >= 0 {
		t.Errorf("RSSI %v not attenuated", r.RSSI)
	}
	if len(r.Data) != 100 {
		t.Errorf("data length %d", len(r.Data))
	}
}

func TestNoDeliveryBeyondRange(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	// At 0 dBm with exponent 3, MCS7 sensitivity (-70 dBm) dies within
	// ~10 m; put the receiver at 100 m.
	rx := m.Attach("rx", Position{100, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	rx.SetOn(true)
	delivered := false
	rx.Handler = func(Reception) { delivered = true }
	m.Transmit(tx, make([]byte, 50), phy.RateHTMCS7SGI)
	s.Run()
	if delivered {
		t.Fatal("frame delivered beyond radio range")
	}
}

func TestRadioOffReceivesNothing(t *testing.T) {
	s, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	delivered := false
	rx.Handler = func(Reception) { delivered = true }
	m.Transmit(tx, make([]byte, 50), phy.RateHTMCS7SGI)
	s.Run()
	if delivered {
		t.Fatal("powered-off radio received a frame")
	}
}

func TestTransmitWithRadioOffPanics(t *testing.T) {
	_, m := newTestMedium()
	tx := m.Attach("tx", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	defer func() {
		if recover() == nil {
			t.Fatal("transmit with radio off did not panic")
		}
	}()
	m.Transmit(tx, make([]byte, 10), phy.RateHTMCS7SGI)
}

func TestOverlappingTransmissionsCollide(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{2, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	for _, trx := range []*Transceiver{a, b, rx} {
		trx.SetOn(true)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }

	// Both transmit at t=0; equidistant, so neither captures.
	m.Transmit(a, make([]byte, 200), phy.RateOFDM6)
	m.Transmit(b, make([]byte, 200), phy.RateOFDM6)
	s.Run()

	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2 (both corrupted)", len(got))
	}
	for i, r := range got {
		if !r.Collided {
			t.Errorf("reception %d not marked collided", i)
		}
	}
	if m.Stats.Collisions != 2 {
		t.Errorf("collision count = %d", m.Stats.Collisions)
	}
}

func TestCollisionCorruptsBytes(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{2, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	for _, trx := range []*Transceiver{a, b, rx} {
		trx.SetOn(true)
	}
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }
	m.Transmit(a, orig, phy.RateOFDM6)
	m.Transmit(b, make([]byte, 64), phy.RateOFDM6)
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	for _, r := range got {
		same := true
		if len(r.Data) != 64 {
			continue
		}
		for i := range r.Data {
			if r.Data[i] != orig[i] {
				same = false
			}
		}
		if same && r.Collided {
			t.Error("collided frame delivered unmodified")
		}
	}
	// The transmitter's original buffer must never be touched.
	for i := range orig {
		if orig[i] != byte(i) {
			t.Fatal("transmit buffer mutated by collision corruption")
		}
	}
}

func TestCaptureEffect(t *testing.T) {
	s, m := newTestMedium()
	near := m.Attach("near", Position{1, 0}, 0, phy.SensitivityWiFi1M)
	far := m.Attach("far", Position{30, 0}, 0, phy.SensitivityWiFi1M)
	rx := m.Attach("rx", Position{0, 0}, 0, phy.SensitivityWiFi1M)
	for _, trx := range []*Transceiver{near, far, rx} {
		trx.SetOn(true)
	}
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }
	// near is ~44 dB stronger at rx than far (exponent 3, 1 m vs 30 m):
	// the near frame captures; the far frame is corrupted.
	m.Transmit(near, make([]byte, 100), phy.RateOFDM6)
	m.Transmit(far, make([]byte, 100), phy.RateOFDM6)
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	byCollided := map[bool]int{}
	for _, r := range got {
		byCollided[r.Collided]++
	}
	if byCollided[false] != 1 || byCollided[true] != 1 {
		t.Fatalf("capture effect: collided map %v, want one clean + one corrupted", byCollided)
	}
}

func TestHalfDuplexSelfCollision(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	b.SetOn(true)
	var got []Reception
	b.Handler = func(r Reception) { got = append(got, r) }
	// b transmits while a's frame is in flight: b cannot hear a.
	m.Transmit(a, make([]byte, 1000), phy.RateOFDM6)
	m.Transmit(b, make([]byte, 10), phy.RateOFDM6)
	s.Run()
	if len(got) != 1 || !got[0].Collided {
		t.Fatalf("half-duplex rx while tx: %+v", got)
	}
}

func TestBusyAndBusyUntil(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	b := m.Attach("b", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	b.SetOn(true)
	if m.Busy(b) {
		t.Fatal("medium busy before any transmission")
	}
	airtime := m.Transmit(a, make([]byte, 500), phy.RateOFDM6)
	if !m.Busy(b) {
		t.Fatal("medium not busy during transmission")
	}
	if !m.Busy(a) {
		t.Fatal("transmitter does not sense own transmission")
	}
	want := sim.Time(0).Add(airtime)
	if got := m.BusyUntil(b); got != want {
		t.Fatalf("BusyUntil = %v, want %v", got, want)
	}
	s.Run()
	if m.Busy(b) {
		t.Fatal("medium busy after transmission ended")
	}
}

func TestSequentialTransmissionsNoCollision(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	rx := m.Attach("rx", Position{1, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	rx.SetOn(true)
	var got []Reception
	rx.Handler = func(r Reception) { got = append(got, r) }
	at1 := m.Transmit(a, make([]byte, 100), phy.RateOFDM6)
	s.After(at1+sim.Microsecond.Duration(), func() {
		m.Transmit(a, make([]byte, 100), phy.RateOFDM6)
	})
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, r := range got {
		if r.Collided {
			t.Errorf("sequential frame %d marked collided", i)
		}
	}
}

func TestDistanceFloor(t *testing.T) {
	p := Position{0, 0}
	if d := p.Distance(Position{0, 0}); d != 0.1 {
		t.Fatalf("co-located distance = %v, want floor 0.1", d)
	}
	if d := p.Distance(Position{3, 4}); d != 5 {
		t.Fatalf("3-4-5 distance = %v", d)
	}
}

func TestHistoryPruned(t *testing.T) {
	s, m := newTestMedium()
	a := m.Attach("a", Position{0, 0}, 0, phy.SensitivityWiFiMCS7)
	a.SetOn(true)
	for i := 0; i < 100; i++ {
		m.Transmit(a, make([]byte, 10), phy.RateOFDM6)
		s.RunFor(sim.Second.Duration())
	}
	if len(m.history) > 4 {
		t.Fatalf("history holds %d entries after pruning", len(m.history))
	}
}
