package crypto80211

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RFC 6070 PBKDF2-HMAC-SHA1 test vectors.
func TestPBKDF2RFC6070(t *testing.T) {
	cases := []struct {
		pass, salt string
		iter, dk   int
		want       string
	}{
		{"password", "salt", 1, 20, "0c60c80f961f0e71f3a9b524af6012062fe037a6"},
		{"password", "salt", 2, 20, "ea6c014dc72d6f8ccd1ed92ace1d41f0d8de8957"},
		{"password", "salt", 4096, 20, "4b007901b765489abead49d926f721d065a429c1"},
		{"passwordPASSWORDpassword", "saltSALTsaltSALTsaltSALTsaltSALTsalt", 4096, 25,
			"3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038"},
		{"pass\x00word", "sa\x00lt", 4096, 16, "56fa6aa75548099dcc37d7f03425e0c3"},
	}
	for _, c := range cases {
		got := PBKDF2SHA1([]byte(c.pass), []byte(c.salt), c.iter, c.dk)
		if !bytes.Equal(got, fromHex(t, c.want)) {
			t.Errorf("PBKDF2(%q,%q,%d): got %x, want %s", c.pass, c.salt, c.iter, got, c.want)
		}
	}
}

// IEEE 802.11-2016 Annex J.4 PSK test vectors.
func TestPSKIEEEVectors(t *testing.T) {
	cases := []struct {
		pass, ssid, want string
	}{
		{"password", "IEEE", "f42c6fc52df0ebef9ebb4b90b38a5f902e83fe1b135a70e23aed762e9710a12e"},
		{"ThisIsAPassword", "ThisIsASSID", "0dc0d6eb90555ed6419756b9a15ec3e3209b63df707dd508d14581f8982721af"},
	}
	for _, c := range cases {
		if got := PSK(c.pass, c.ssid); !bytes.Equal(got, fromHex(t, c.want)) {
			t.Errorf("PSK(%q,%q) = %x, want %s", c.pass, c.ssid, got, c.want)
		}
	}
}

// RFC 3394 §4.1: 128-bit key data wrapped with a 128-bit KEK.
func TestKeyWrapRFC3394(t *testing.T) {
	kek := fromHex(t, "000102030405060708090a0b0c0d0e0f")
	plain := fromHex(t, "00112233445566778899aabbccddeeff")
	want := fromHex(t, "1fa68b0a8112b447aef34bd8fb5a7b829d3e862371d2cfe5")
	got, err := KeyWrap(kek, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("KeyWrap = %x, want %x", got, want)
	}
	back, err := KeyUnwrap(kek, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatalf("KeyUnwrap = %x, want %x", back, plain)
	}
}

func TestKeyUnwrapDetectsTampering(t *testing.T) {
	kek := fromHex(t, "000102030405060708090a0b0c0d0e0f")
	plain := fromHex(t, "00112233445566778899aabbccddeeff")
	wrapped, err := KeyWrap(kek, plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wrapped {
		bad := append([]byte(nil), wrapped...)
		bad[i] ^= 0x01
		if _, err := KeyUnwrap(kek, bad); err == nil {
			t.Fatalf("tampering at byte %d undetected", i)
		}
	}
}

func TestKeyWrapRejectsBadSizes(t *testing.T) {
	kek := make([]byte, 16)
	if _, err := KeyWrap(kek, make([]byte, 8)); err == nil {
		t.Error("8-byte plaintext accepted")
	}
	if _, err := KeyWrap(kek, make([]byte, 17)); err == nil {
		t.Error("unaligned plaintext accepted")
	}
	if _, err := KeyUnwrap(kek, make([]byte, 16)); err == nil {
		t.Error("16-byte ciphertext accepted")
	}
}

func TestPropertyKeyWrapRoundTrip(t *testing.T) {
	f := func(kek [16]byte, blocks uint8, seed byte) bool {
		n := (int(blocks)%6 + 2) * 8 // 16..56 bytes
		plain := make([]byte, n)
		for i := range plain {
			plain[i] = seed + byte(i)
		}
		wrapped, err := KeyWrap(kek[:], plain)
		if err != nil {
			return false
		}
		back, err := KeyUnwrap(kek[:], wrapped)
		return err == nil && bytes.Equal(back, plain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPad8RoundTrip(t *testing.T) {
	for n := 0; n <= 40; n++ {
		in := bytes.Repeat([]byte{0xab}, n)
		p := pad8(in)
		if len(p) < 16 || len(p)%8 != 0 {
			t.Fatalf("pad8(%d) gives invalid length %d", n, len(p))
		}
		if got := unpad8(p); !bytes.Equal(got, in) {
			// 0xab tails can't be confused with padding since padding is
			// 0xdd 0x00...; exact round trip must hold.
			t.Fatalf("unpad8(pad8(%d bytes)) = %d bytes", n, len(got))
		}
	}
}

func TestPRFLengthsAndDeterminism(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	a := PRF(key, "Pairwise key expansion", []byte("data"), 384)
	b := PRF(key, "Pairwise key expansion", []byte("data"), 384)
	if len(a) != 48 || !bytes.Equal(a, b) {
		t.Fatalf("PRF not deterministic or wrong length %d", len(a))
	}
	if c := PRF(key, "Pairwise key expansion", []byte("datb"), 384); bytes.Equal(a, c) {
		t.Fatal("PRF ignores data")
	}
	if d := PRF(key, "Group key expansion", []byte("data"), 384); bytes.Equal(a, d) {
		t.Fatal("PRF ignores label")
	}
	if e := PRF(key, "Pairwise key expansion", []byte("data"), 512); !bytes.Equal(e[:48], a) {
		t.Fatal("PRF output not a prefix-extension across lengths")
	}
}

func TestDerivePTKSymmetric(t *testing.T) {
	pmk := PSK("correct horse", "battery")
	aa := [6]byte{2, 0, 0, 0, 0, 1}
	spa := [6]byte{2, 0, 0, 0, 0, 2}
	var an, sn [NonceLen]byte
	for i := range an {
		an[i], sn[i] = byte(i), byte(255-i)
	}
	// Both sides must derive the same PTK with their own view of the
	// address/nonce pairs.
	apSide := DerivePTK(pmk, aa, spa, an, sn)
	staSide := DerivePTK(pmk, aa, spa, an, sn)
	if apSide != staSide {
		t.Fatal("PTK derivation nondeterministic")
	}
	// Different nonces give a different key.
	sn2 := sn
	sn2[0] ^= 1
	if DerivePTK(pmk, aa, spa, an, sn2) == apSide {
		t.Fatal("PTK insensitive to SNonce")
	}
	// The three subkeys are distinct.
	if apSide.KCK == apSide.KEK || apSide.KEK == apSide.TK || apSide.KCK == apSide.TK {
		t.Fatal("PTK subkeys collide")
	}
}

func TestEAPOLKeyRoundTrip(t *testing.T) {
	var nonce [NonceLen]byte
	for i := range nonce {
		nonce[i] = byte(i * 3)
	}
	k := &EAPOLKey{
		Info:          KeyInfoTypePairwise | KeyInfoAck,
		KeyLength:     16,
		ReplayCounter: 7,
		Nonce:         nonce,
		KeyData:       []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	raw := k.Append(nil)
	got, err := ParseEAPOLKey(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Info != k.Info || got.KeyLength != 16 || got.ReplayCounter != 7 ||
		got.Nonce != nonce || !bytes.Equal(got.KeyData, k.KeyData) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestEAPOLKeyParseErrors(t *testing.T) {
	k := &EAPOLKey{Info: KeyInfoTypePairwise}
	raw := k.Append(nil)
	if _, err := ParseEAPOLKey(raw[:10]); err == nil {
		t.Error("short PDU accepted")
	}
	bad := append([]byte(nil), raw...)
	bad[1] = 0 // not EAPOL-Key
	if _, err := ParseEAPOLKey(bad); err == nil {
		t.Error("non-Key EAPOL accepted")
	}
	bad2 := append([]byte(nil), raw...)
	bad2[4] = 254 // unknown descriptor
	if _, err := ParseEAPOLKey(bad2); err == nil {
		t.Error("unknown descriptor accepted")
	}
	// Key-data length beyond buffer.
	bad3 := append([]byte(nil), raw...)
	bad3[micOffset+16] = 0xff
	if _, err := ParseEAPOLKey(bad3); err == nil {
		t.Error("oversized key-data length accepted")
	}
}

func TestMICSignAndVerify(t *testing.T) {
	var kck [16]byte
	copy(kck[:], "0123456789abcdef")
	k := &EAPOLKey{Info: KeyInfoTypePairwise | KeyInfoMIC, ReplayCounter: 1}
	raw := k.Sign(kck)
	if !VerifyMIC(raw, kck) {
		t.Fatal("fresh MIC does not verify")
	}
	for _, i := range []int{0, 9, micOffset + 3, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x80
		if VerifyMIC(bad, kck) {
			t.Fatalf("tampered byte %d passes MIC", i)
		}
	}
	var wrong [16]byte
	if VerifyMIC(raw, wrong) {
		t.Fatal("wrong KCK passes MIC")
	}
	if VerifyMIC(raw[:8], kck) {
		t.Fatal("truncated frame passes MIC")
	}
}

// driveHandshake runs a complete 4-way exchange and returns the PDUs.
func driveHandshake(t *testing.T, passAP, passSTA string) (pdus [][]byte, a *Authenticator, s *Supplicant, err error) {
	t.Helper()
	aa := [6]byte{0xaa, 0xbb, 0xcc, 0, 0, 1}
	spa := [6]byte{0xde, 0xad, 0xbe, 0xef, 0, 2}
	var anonce, snonce [NonceLen]byte
	for i := range anonce {
		anonce[i], snonce[i] = byte(i), byte(i*7)
	}
	var gtk [GTKLen]byte
	copy(gtk[:], "group-temporal-k")
	a = NewAuthenticator(PSK(passAP, "lab-net"), aa, spa, anonce, gtk)
	s = NewSupplicant(PSK(passSTA, "lab-net"), aa, spa, snonce)

	m1 := a.Message1()
	pdus = append(pdus, m1)
	m2, err := s.Handle(m1)
	if err != nil {
		return pdus, a, s, err
	}
	pdus = append(pdus, m2)
	m3, err := a.Handle(m2)
	if err != nil {
		return pdus, a, s, err
	}
	pdus = append(pdus, m3)
	m4, err := s.Handle(m3)
	if err != nil {
		return pdus, a, s, err
	}
	pdus = append(pdus, m4)
	if _, err := a.Handle(m4); err != nil {
		return pdus, a, s, err
	}
	return pdus, a, s, nil
}

func TestFourWayHandshakeCompletes(t *testing.T) {
	pdus, a, s, err := driveHandshake(t, "hunter2hunter2", "hunter2hunter2")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Done() || !s.Done() {
		t.Fatal("handshake not done on both sides")
	}
	if a.PTK() != s.PTK() {
		t.Fatal("sides derived different PTKs")
	}
	if got := s.GTK(); string(got[:]) != "group-temporal-k" {
		t.Fatalf("GTK = %q", got)
	}
	// The paper counts "at least 8 frames" for the key exchange including
	// ACKs; the EAPOL PDUs themselves are exactly 4.
	if len(pdus) != 4 {
		t.Fatalf("handshake took %d PDUs, want 4", len(pdus))
	}
}

func TestFourWayHandshakeWrongPassphrase(t *testing.T) {
	// With mismatched PSKs the authenticator must reject M2's MIC — this
	// is where a real join with a wrong password dies.
	_, a, _, err := driveHandshake(t, "rightpassword", "wrongpassword")
	if err == nil {
		t.Fatal("handshake succeeded across different passphrases")
	}
	if a.Done() {
		t.Fatal("authenticator claims success")
	}
}

func TestHandshakeReplayedM2Rejected(t *testing.T) {
	pdus, a, _, err := driveHandshake(t, "hunter2hunter2", "hunter2hunter2")
	if err != nil {
		t.Fatal(err)
	}
	// Re-delivering M2 after completion must fail (stale replay counter /
	// state).
	if _, err := a.Handle(pdus[1]); err == nil {
		t.Fatal("replayed M2 accepted after completion")
	}
}

func TestSupplicantRejectsTamperedM3(t *testing.T) {
	aa := [6]byte{1}
	spa := [6]byte{2}
	var anonce, snonce [NonceLen]byte
	var gtk [GTKLen]byte
	a := NewAuthenticator(PSK("p@ssphrase", "x"), aa, spa, anonce, gtk)
	s := NewSupplicant(PSK("p@ssphrase", "x"), aa, spa, snonce)
	m2, err := s.Handle(a.Message1())
	if err != nil {
		t.Fatal(err)
	}
	m3, err := a.Handle(m2)
	if err != nil {
		t.Fatal(err)
	}
	m3[len(m3)-1] ^= 1 // corrupt wrapped GTK
	if _, err := s.Handle(m3); err == nil {
		t.Fatal("tampered M3 accepted")
	}
}

func BenchmarkPSKDerivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PSK("correct horse battery staple", "lab-net")
	}
}

func BenchmarkFourWayHandshake(b *testing.B) {
	pmk := PSK("correct horse battery staple", "lab-net")
	aa := [6]byte{1}
	spa := [6]byte{2}
	var anonce, snonce [NonceLen]byte
	var gtk [GTKLen]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAuthenticator(pmk, aa, spa, anonce, gtk)
		s := NewSupplicant(pmk, aa, spa, snonce)
		m2, err := s.Handle(a.Message1())
		if err != nil {
			b.Fatal(err)
		}
		m3, err := a.Handle(m2)
		if err != nil {
			b.Fatal(err)
		}
		m4, err := s.Handle(m3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Handle(m4); err != nil {
			b.Fatal(err)
		}
	}
}
