package crypto80211

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"errors"
	"fmt"
)

// AES-CCM (NIST SP 800-38C / RFC 3610), the authenticated-encryption mode
// under WPA2's CCMP. The standard library has no CCM, so this implements
// the mode with 802.11's fixed parameters: 8-byte tag (M=8) and 2-byte
// length field (L=2, hence 13-byte nonces).

// CCM parameters fixed by 802.11 CCMP.
const (
	ccmTagLen   = 8
	ccmNonceLen = 13
)

// ErrCCMAuth reports a failed integrity check.
var ErrCCMAuth = errors.New("crypto80211: CCM authentication failed")

// ccmB0 builds the first block: flags, nonce, message length.
func ccmB0(nonce []byte, msgLen int, hasAAD bool) [aes.BlockSize]byte {
	var b [aes.BlockSize]byte
	// Flags: [reserved 0][Adata][M' = (M-2)/2 = 3][L' = L-1 = 1]
	b[0] = 3<<3 | 1
	if hasAAD {
		b[0] |= 1 << 6
	}
	copy(b[1:14], nonce)
	b[14] = byte(msgLen >> 8)
	b[15] = byte(msgLen)
	return b
}

// ccmCBCMAC computes the CBC-MAC over B0, the encoded AAD and the message.
func ccmCBCMAC(block cipher.Block, nonce, aad, msg []byte) [ccmTagLen]byte {
	var x [aes.BlockSize]byte
	b0 := ccmB0(nonce, len(msg), len(aad) > 0)
	block.Encrypt(x[:], b0[:])

	xorBlock := func(chunk []byte) {
		for i, c := range chunk {
			x[i] ^= c
		}
		block.Encrypt(x[:], x[:])
	}

	if len(aad) > 0 {
		// AAD encoding for len(aad) < 2^16-2^8: 2-byte length prefix,
		// zero-padded to the block size — all 802.11 AADs qualify.
		first := make([]byte, 0, aes.BlockSize)
		first = append(first, byte(len(aad)>>8), byte(len(aad)))
		take := min(len(aad), aes.BlockSize-2)
		first = append(first, aad[:take]...)
		for len(first) < aes.BlockSize {
			first = append(first, 0)
		}
		xorBlock(first)
		rest := aad[take:]
		for len(rest) > 0 {
			n := min(len(rest), aes.BlockSize)
			chunk := make([]byte, aes.BlockSize)
			copy(chunk, rest[:n])
			xorBlock(chunk)
			rest = rest[n:]
		}
	}
	for off := 0; off < len(msg); off += aes.BlockSize {
		n := min(len(msg)-off, aes.BlockSize)
		chunk := make([]byte, aes.BlockSize)
		copy(chunk, msg[off:off+n])
		xorBlock(chunk)
	}
	var tag [ccmTagLen]byte
	copy(tag[:], x[:ccmTagLen])
	return tag
}

// ccmCTR runs the CTR keystream: counter block A_i with i starting at 1
// for the payload; A_0 encrypts the tag.
func ccmCTR(block cipher.Block, nonce []byte, dst, src []byte, counterStart int) {
	var a [aes.BlockSize]byte
	a[0] = 1 // L' = 1
	copy(a[1:14], nonce)
	var ks [aes.BlockSize]byte
	ctr := counterStart
	for off := 0; off < len(src); off += aes.BlockSize {
		a[14] = byte(ctr >> 8)
		a[15] = byte(ctr)
		block.Encrypt(ks[:], a[:])
		n := min(len(src)-off, aes.BlockSize)
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ ks[i]
		}
		ctr++
	}
}

// CCMEncrypt seals plaintext under key with the 13-byte nonce and AAD,
// returning ciphertext||tag (8 bytes longer than the input).
func CCMEncrypt(key, nonce, aad, plaintext []byte) ([]byte, error) {
	if len(nonce) != ccmNonceLen {
		return nil, fmt.Errorf("crypto80211: CCM nonce must be %d bytes, have %d", ccmNonceLen, len(nonce))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	tag := ccmCBCMAC(block, nonce, aad, plaintext)
	out := make([]byte, len(plaintext)+ccmTagLen)
	ccmCTR(block, nonce, out[:len(plaintext)], plaintext, 1)
	// Encrypt the tag with A_0.
	var a0tag [ccmTagLen]byte
	ccmCTR(block, nonce, a0tag[:], tag[:], 0)
	copy(out[len(plaintext):], a0tag[:])
	return out, nil
}

// CCMDecrypt opens ciphertext||tag, verifying the AAD binding.
func CCMDecrypt(key, nonce, aad, sealed []byte) ([]byte, error) {
	if len(nonce) != ccmNonceLen {
		return nil, fmt.Errorf("crypto80211: CCM nonce must be %d bytes, have %d", ccmNonceLen, len(nonce))
	}
	if len(sealed) < ccmTagLen {
		return nil, fmt.Errorf("%w: input shorter than the tag", ErrCCMAuth)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	ct, encTag := sealed[:len(sealed)-ccmTagLen], sealed[len(sealed)-ccmTagLen:]
	plain := make([]byte, len(ct))
	ccmCTR(block, nonce, plain, ct, 1)
	var wantTag [ccmTagLen]byte
	gotTag := ccmCBCMAC(block, nonce, aad, plain)
	ccmCTR(block, nonce, wantTag[:], encTag, 0)
	if subtle.ConstantTimeCompare(gotTag[:], wantTag[:]) != 1 {
		return nil, ErrCCMAuth
	}
	return plain, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
