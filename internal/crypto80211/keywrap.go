package crypto80211

import (
	"crypto/aes"
	"errors"
	"fmt"
)

// AES Key Wrap (RFC 3394), used by WPA2 to deliver the GTK inside message
// 3 of the 4-way handshake.

var keywrapIV = [8]byte{0xa6, 0xa6, 0xa6, 0xa6, 0xa6, 0xa6, 0xa6, 0xa6}

// KeyWrap wraps plaintext (a multiple of 8 bytes, at least 16) under kek,
// returning len(plaintext)+8 bytes.
func KeyWrap(kek, plaintext []byte) ([]byte, error) {
	if len(plaintext) < 16 || len(plaintext)%8 != 0 {
		return nil, fmt.Errorf("crypto80211: keywrap plaintext must be >=16 bytes and a multiple of 8, have %d", len(plaintext))
	}
	block, err := aes.NewCipher(kek)
	if err != nil {
		return nil, err
	}
	n := len(plaintext) / 8
	r := make([]byte, 8+len(plaintext))
	copy(r[:8], keywrapIV[:])
	copy(r[8:], plaintext)

	var b [16]byte
	for j := 0; j <= 5; j++ {
		for i := 1; i <= n; i++ {
			copy(b[:8], r[:8])
			copy(b[8:], r[8*i:8*i+8])
			block.Encrypt(b[:], b[:])
			t := uint64(n*j + i)
			copy(r[:8], b[:8])
			for k := 0; k < 8; k++ {
				r[k] ^= byte(t >> (56 - 8*k))
			}
			copy(r[8*i:], b[8:])
		}
	}
	return r, nil
}

// ErrKeyWrap reports an integrity failure during unwrap.
var ErrKeyWrap = errors.New("crypto80211: key unwrap integrity check failed")

// KeyUnwrap reverses KeyWrap, verifying the integrity check value.
func KeyUnwrap(kek, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < 24 || len(ciphertext)%8 != 0 {
		return nil, fmt.Errorf("crypto80211: keywrap ciphertext must be >=24 bytes and a multiple of 8, have %d", len(ciphertext))
	}
	block, err := aes.NewCipher(kek)
	if err != nil {
		return nil, err
	}
	n := len(ciphertext)/8 - 1
	a := make([]byte, 8)
	r := make([]byte, len(ciphertext)-8)
	copy(a, ciphertext[:8])
	copy(r, ciphertext[8:])

	var b [16]byte
	for j := 5; j >= 0; j-- {
		for i := n; i >= 1; i-- {
			t := uint64(n*j + i)
			copy(b[:8], a)
			for k := 0; k < 8; k++ {
				b[k] ^= byte(t >> (56 - 8*k))
			}
			copy(b[8:], r[8*(i-1):8*i])
			block.Decrypt(b[:], b[:])
			copy(a, b[:8])
			copy(r[8*(i-1):], b[8:])
		}
	}
	for k := 0; k < 8; k++ {
		if a[k] != keywrapIV[k] {
			return nil, ErrKeyWrap
		}
	}
	return r, nil
}

// pad8 pads RSN key data to the key-wrap block size with the 0xdd..00
// padding §12.7.2 specifies.
func pad8(b []byte) []byte {
	if len(b) >= 16 && len(b)%8 == 0 {
		return b
	}
	padded := append(append([]byte{}, b...), 0xdd)
	for len(padded) < 16 || len(padded)%8 != 0 {
		padded = append(padded, 0)
	}
	return padded
}

// unpad8 strips §12.7.2 key-data padding.
func unpad8(b []byte) []byte {
	i := len(b)
	for i > 0 && b[i-1] == 0 {
		i--
	}
	if i > 0 && b[i-1] == 0xdd {
		i--
	}
	return b[:i]
}
