package crypto80211

import "wile/internal/dot11"

// DataFrameMeta derives the CCMP nonce/AAD binding from a data frame's
// header, applying the §12.5.3.3.3 masking: the retry, power-management
// and more-data bits are zeroed (they may legitimately change on
// retransmission), the protected bit is forced on, and the sequence number
// is masked out of the sequence control (only the fragment number is
// bound).
func DataFrameMeta(d *dot11.Data) CCMPFrameMeta {
	fc := d.Header.FC
	fc.Retry = false
	fc.PwrMgmt = false
	fc.MoreData = false
	fc.Protected = true
	return CCMPFrameMeta{
		FC:     fc.Uint16(),
		A1:     [6]byte(d.Header.Addr1),
		A2:     [6]byte(d.Header.Addr2),
		A3:     [6]byte(d.Header.Addr3),
		SeqCtl: uint16(d.Header.Fragment) & 0xf,
	}
}
