package crypto80211

import (
	"errors"
	"fmt"
)

// The WPA2-PSK 4-way handshake (IEEE 802.11-2016 §12.7.6), modeled as two
// message-driven state machines. The AP model owns an Authenticator per
// associating station; the station model owns a Supplicant. Each Handle
// call consumes one EAPOL-Key PDU and may produce the next one, so the
// frame exchange — and therefore the §3.1 frame count and the Figure 3a
// current spikes — falls out of driving these machines over the simulated
// medium.

// ErrHandshake wraps protocol violations during the exchange.
var ErrHandshake = errors.New("crypto80211: 4-way handshake failed")

// Authenticator is the AP side of the 4-way handshake.
type Authenticator struct {
	pmk     []byte
	aa, spa [6]byte
	anonce  [NonceLen]byte
	gtk     [GTKLen]byte
	replay  uint64
	ptk     PTK
	state   int // 0: idle, 1: sent M1, 2: sent M3, 3: done
}

// NewAuthenticator prepares the AP side. anonce and gtk come from the AP's
// random source (the simulation passes deterministic values).
func NewAuthenticator(pmk []byte, aa, spa [6]byte, anonce [NonceLen]byte, gtk [GTKLen]byte) *Authenticator {
	return &Authenticator{pmk: pmk, aa: aa, spa: spa, anonce: anonce, gtk: gtk}
}

// Message1 produces M1: the ANonce, unauthenticated (the supplicant cannot
// verify anything yet).
func (a *Authenticator) Message1() []byte {
	a.state = 1
	a.replay++
	m1 := &EAPOLKey{
		Info:          KeyInfoTypePairwise | KeyInfoAck,
		KeyLength:     16,
		ReplayCounter: a.replay,
		Nonce:         a.anonce,
	}
	return m1.Append(nil)
}

// Handle consumes a supplicant PDU (M2 or M4) and returns the response to
// transmit, or nil when the handshake needs no reply (after M4).
func (a *Authenticator) Handle(raw []byte) ([]byte, error) {
	k, err := ParseEAPOLKey(raw)
	if err != nil {
		return nil, err
	}
	switch a.state {
	case 1: // expecting M2
		if k.Info&KeyInfoMIC == 0 {
			return nil, fmt.Errorf("%w: M2 missing MIC", ErrHandshake)
		}
		if k.ReplayCounter != a.replay {
			return nil, fmt.Errorf("%w: M2 replay counter %d != %d", ErrHandshake, k.ReplayCounter, a.replay)
		}
		a.ptk = DerivePTK(a.pmk, a.aa, a.spa, a.anonce, k.Nonce)
		if !VerifyMIC(raw, a.ptk.KCK) {
			return nil, fmt.Errorf("%w: M2 MIC invalid (wrong passphrase?)", ErrHandshake)
		}
		// Build M3: deliver the wrapped GTK.
		a.replay++
		wrapped, err := KeyWrap(a.ptk.KEK[:], pad8(a.gtk[:]))
		if err != nil {
			return nil, err
		}
		m3 := &EAPOLKey{
			Info:          KeyInfoTypePairwise | KeyInfoAck | KeyInfoMIC | KeyInfoInstall | KeyInfoSecure | KeyInfoEncrypted,
			KeyLength:     16,
			ReplayCounter: a.replay,
			Nonce:         a.anonce,
			KeyData:       wrapped,
		}
		a.state = 2
		return m3.Sign(a.ptk.KCK), nil
	case 2: // expecting M4
		if k.ReplayCounter != a.replay {
			return nil, fmt.Errorf("%w: M4 replay counter", ErrHandshake)
		}
		if !VerifyMIC(raw, a.ptk.KCK) {
			return nil, fmt.Errorf("%w: M4 MIC invalid", ErrHandshake)
		}
		a.state = 3
		return nil, nil
	}
	return nil, fmt.Errorf("%w: unexpected message in state %d", ErrHandshake, a.state)
}

// Done reports whether the handshake completed.
func (a *Authenticator) Done() bool { return a.state == 3 }

// PTK returns the established pairwise key; valid once M2 is processed.
func (a *Authenticator) PTK() PTK { return a.ptk }

// Supplicant is the station side of the 4-way handshake.
type Supplicant struct {
	pmk     []byte
	aa, spa [6]byte
	snonce  [NonceLen]byte
	ptk     PTK
	gtk     [GTKLen]byte
	state   int // 0: idle, 1: sent M2, 2: done
}

// NewSupplicant prepares the station side.
func NewSupplicant(pmk []byte, aa, spa [6]byte, snonce [NonceLen]byte) *Supplicant {
	return &Supplicant{pmk: pmk, aa: aa, spa: spa, snonce: snonce}
}

// Handle consumes an authenticator PDU (M1 or M3) and returns the response
// to transmit (M2 or M4).
func (s *Supplicant) Handle(raw []byte) ([]byte, error) {
	k, err := ParseEAPOLKey(raw)
	if err != nil {
		return nil, err
	}
	switch s.state {
	case 0: // expecting M1
		if k.Info&KeyInfoAck == 0 || k.Info&KeyInfoMIC != 0 {
			return nil, fmt.Errorf("%w: not an M1", ErrHandshake)
		}
		s.ptk = DerivePTK(s.pmk, s.aa, s.spa, k.Nonce, s.snonce)
		m2 := &EAPOLKey{
			Info:          KeyInfoTypePairwise | KeyInfoMIC,
			KeyLength:     16,
			ReplayCounter: k.ReplayCounter,
			Nonce:         s.snonce,
		}
		s.state = 1
		return m2.Sign(s.ptk.KCK), nil
	case 1: // expecting M3
		if k.Info&KeyInfoInstall == 0 {
			return nil, fmt.Errorf("%w: not an M3", ErrHandshake)
		}
		if !VerifyMIC(raw, s.ptk.KCK) {
			return nil, fmt.Errorf("%w: M3 MIC invalid", ErrHandshake)
		}
		keyData, err := KeyUnwrap(s.ptk.KEK[:], k.KeyData)
		if err != nil {
			return nil, fmt.Errorf("%w: GTK unwrap: %v", ErrHandshake, err)
		}
		copy(s.gtk[:], unpad8(keyData))
		m4 := &EAPOLKey{
			Info:          KeyInfoTypePairwise | KeyInfoMIC | KeyInfoSecure,
			KeyLength:     16,
			ReplayCounter: k.ReplayCounter,
		}
		s.state = 2
		return m4.Sign(s.ptk.KCK), nil
	}
	return nil, fmt.Errorf("%w: unexpected message in state %d", ErrHandshake, s.state)
}

// Done reports whether the handshake completed.
func (s *Supplicant) Done() bool { return s.state == 2 }

// PTK returns the established pairwise key; valid once M1 is processed.
func (s *Supplicant) PTK() PTK { return s.ptk }

// GTK returns the group key delivered in M3; valid once Done.
func (s *Supplicant) GTK() [GTKLen]byte { return s.gtk }
