package crypto80211

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// RFC 3610 Packet Vector #1: M=8, L=2, the exact CCM parameters 802.11
// CCMP uses.
func TestCCMRFC3610Vector1(t *testing.T) {
	key := fromHex(t, "c0c1c2c3c4c5c6c7c8c9cacbcccdcecf")
	nonce := fromHex(t, "00000003020100a0a1a2a3a4a5")
	aad := fromHex(t, "0001020304050607")
	plaintext := fromHex(t, "08090a0b0c0d0e0f101112131415161718191a1b1c1d1e")
	want := fromHex(t, "588c979a61c663d2f066d0c2c0f989806d5f6b61dac384"+
		"17e8d12cfdf926e0")
	got, err := CCMEncrypt(key, nonce, aad, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CCM encrypt:\n got %x\nwant %x", got, want)
	}
	back, err := CCMDecrypt(key, nonce, aad, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plaintext) {
		t.Fatalf("CCM decrypt round trip: %x", back)
	}
}

// RFC 3610 Packet Vector #2 (24-byte payload → full final block).
func TestCCMRFC3610Vector2(t *testing.T) {
	key := fromHex(t, "c0c1c2c3c4c5c6c7c8c9cacbcccdcecf")
	nonce := fromHex(t, "00000004030201a0a1a2a3a4a5")
	aad := fromHex(t, "0001020304050607")
	plaintext := fromHex(t, "08090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	want := fromHex(t, "72c91a36e135f8cf291ca894085c87e3cc15c439c9e43a3b"+
		"a091d56e10400916")
	got, err := CCMEncrypt(key, nonce, aad, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CCM encrypt:\n got %x\nwant %x", got, want)
	}
}

func TestCCMDetectsTampering(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 13)
	aad := []byte("header-bytes")
	sealed, err := CCMEncrypt(key, nonce, aad, []byte("the msdu"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sealed {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x01
		if _, err := CCMDecrypt(key, nonce, aad, bad); !errors.Is(err, ErrCCMAuth) {
			t.Fatalf("tampered byte %d: %v", i, err)
		}
	}
	// AAD binding.
	if _, err := CCMDecrypt(key, nonce, []byte("other-header"), sealed); !errors.Is(err, ErrCCMAuth) {
		t.Fatal("AAD change undetected")
	}
	// Nonce binding.
	nonce2 := append([]byte(nil), nonce...)
	nonce2[0] = 1
	if _, err := CCMDecrypt(key, nonce2, aad, sealed); !errors.Is(err, ErrCCMAuth) {
		t.Fatal("nonce change undetected")
	}
}

func TestCCMNoAAD(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 13)
	sealed, err := CCMEncrypt(key, nonce, nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CCMDecrypt(key, nonce, nil, sealed)
	if err != nil || string(got) != "payload" {
		t.Fatalf("no-AAD round trip: %q, %v", got, err)
	}
}

func TestCCMBadInputs(t *testing.T) {
	key := make([]byte, 16)
	if _, err := CCMEncrypt(key, make([]byte, 12), nil, nil); err == nil {
		t.Error("12-byte nonce accepted")
	}
	if _, err := CCMDecrypt(key, make([]byte, 13), nil, make([]byte, 4)); err == nil {
		t.Error("sub-tag-length input accepted")
	}
}

func TestPropertyCCMRoundTrip(t *testing.T) {
	f := func(key [16]byte, nonce [13]byte, aad, plaintext []byte) bool {
		if len(aad) > 1000 {
			aad = aad[:1000]
		}
		if len(plaintext) > 2000 {
			plaintext = plaintext[:2000]
		}
		sealed, err := CCMEncrypt(key[:], nonce[:], aad, plaintext)
		if err != nil {
			return false
		}
		got, err := CCMDecrypt(key[:], nonce[:], aad, sealed)
		return err == nil && bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- CCMP session layer ---

func testMeta() CCMPFrameMeta {
	return CCMPFrameMeta{
		FC:     0x4108, // data, ToDS, Protected
		A1:     [6]byte{0xaa, 0xbb, 0xcc, 0, 0, 1},
		A2:     [6]byte{0x02, 0x57, 0, 0, 0, 1},
		A3:     [6]byte{0xaa, 0xbb, 0xcc, 0, 0, 1},
		SeqCtl: 0,
	}
}

func TestCCMPSessionRoundTrip(t *testing.T) {
	var tk [16]byte
	copy(tk[:], "temporal-key-16b")
	tx := NewCCMPSession(tk)
	rx := NewCCMPSession(tk)
	meta := testMeta()

	for i := 0; i < 5; i++ {
		msdu := []byte{byte(i), 1, 2, 3}
		body, err := tx.Encapsulate(meta, msdu)
		if err != nil {
			t.Fatal(err)
		}
		if len(body) != len(msdu)+CCMPOverhead {
			t.Fatalf("overhead = %d", len(body)-len(msdu))
		}
		got, err := rx.Decapsulate(meta, body)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msdu) {
			t.Fatalf("frame %d: %x", i, got)
		}
	}
	if tx.TxPN() != 5 {
		t.Fatalf("TxPN = %d", tx.TxPN())
	}
}

func TestCCMPReplayRejected(t *testing.T) {
	var tk [16]byte
	tx := NewCCMPSession(tk)
	rx := NewCCMPSession(tk)
	meta := testMeta()
	b1, _ := tx.Encapsulate(meta, []byte("one"))
	b2, _ := tx.Encapsulate(meta, []byte("two"))
	if _, err := rx.Decapsulate(meta, b1); err != nil {
		t.Fatal(err)
	}
	// Replaying frame 1 after frame 1 must fail.
	if _, err := rx.Decapsulate(meta, b1); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: %v", err)
	}
	if _, err := rx.Decapsulate(meta, b2); err != nil {
		t.Fatal(err)
	}
	// Replaying an older PN after a newer one also fails.
	if _, err := rx.Decapsulate(meta, b1); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale replay: %v", err)
	}
}

func TestCCMPWrongKeyFails(t *testing.T) {
	var tk1, tk2 [16]byte
	tk2[0] = 1
	tx := NewCCMPSession(tk1)
	rx := NewCCMPSession(tk2)
	body, _ := tx.Encapsulate(testMeta(), []byte("secret"))
	if _, err := rx.Decapsulate(testMeta(), body); err == nil {
		t.Fatal("wrong TK accepted")
	}
}

func TestCCMPHeaderBindsAddresses(t *testing.T) {
	var tk [16]byte
	tx := NewCCMPSession(tk)
	rx := NewCCMPSession(tk)
	meta := testMeta()
	body, _ := tx.Encapsulate(meta, []byte("data"))
	// A frame captured and re-addressed to a different BSS must fail.
	forged := meta
	forged.A1 = [6]byte{9, 9, 9, 9, 9, 9}
	if _, err := rx.Decapsulate(forged, body); err == nil {
		t.Fatal("re-addressed frame accepted")
	}
}

func TestCCMPHeaderParsing(t *testing.T) {
	h := ccmpHeader(0x0000123456789abc, 0)
	pn, err := parseCCMPHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if pn != 0x123456789abc {
		t.Fatalf("PN = %012x", pn)
	}
	if _, err := parseCCMPHeader(h[:4]); err == nil {
		t.Error("short header accepted")
	}
	bad := append([]byte(nil), h...)
	bad[3] = 0 // clear ExtIV
	if _, err := parseCCMPHeader(bad); err == nil {
		t.Error("missing ExtIV accepted")
	}
}

func BenchmarkCCMPEncapsulate(b *testing.B) {
	var tk [16]byte
	s := NewCCMPSession(tk)
	meta := testMeta()
	msdu := make([]byte, 300)
	b.ReportAllocs()
	b.SetBytes(int64(len(msdu)))
	for i := 0; i < b.N; i++ {
		if _, err := s.Encapsulate(meta, msdu); err != nil {
			b.Fatal(err)
		}
	}
}
