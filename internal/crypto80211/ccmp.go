package crypto80211

import (
	"errors"
	"fmt"
)

// CCMP (IEEE 802.11-2016 §12.5.3): the per-frame encapsulation WPA2 wraps
// around data-frame bodies once the 4-way handshake installs the temporal
// key. Our simulated join pays exactly the true cost: after message 4,
// every DHCP, ARP and application frame on the air is CCMP-protected, with
// its packet number, header, MIC and replay rules — the bytes a real
// monitor-mode capture of the paper's testbed would show.

// CCMPHeaderLen is the expansion before the body (PN + key ID).
const CCMPHeaderLen = 8

// CCMPMICLen is the trailing message-integrity code.
const CCMPMICLen = 8

// CCMPOverhead is the total per-frame expansion.
const CCMPOverhead = CCMPHeaderLen + CCMPMICLen

// ErrReplay reports a packet number that does not advance the replay
// window.
var ErrReplay = errors.New("crypto80211: CCMP replay detected")

// CCMPFrameMeta carries the MAC-header fields bound into the nonce and
// AAD. The caller (the MAC layer) fills it from the frame it is about to
// protect.
type CCMPFrameMeta struct {
	// FC is the frame-control field with the fields the standard masks
	// (retry, power management, more data) already zeroed by the caller,
	// and the Protected bit set.
	FC uint16
	// A1, A2, A3 are the three addresses.
	A1, A2, A3 [6]byte
	// SeqCtl is the sequence control with the sequence number masked to
	// zero (only the fragment number is bound).
	SeqCtl uint16
}

// aad serializes the additional authenticated data (§12.5.3.3.3).
func (m CCMPFrameMeta) aad() []byte {
	out := make([]byte, 0, 22)
	out = append(out, byte(m.FC), byte(m.FC>>8))
	out = append(out, m.A1[:]...)
	out = append(out, m.A2[:]...)
	out = append(out, m.A3[:]...)
	return append(out, byte(m.SeqCtl), byte(m.SeqCtl>>8))
}

// nonce builds the 13-byte CCM nonce: priority, A2, PN (§12.5.3.3.4).
func (m CCMPFrameMeta) nonce(pn uint64) []byte {
	out := make([]byte, ccmNonceLen)
	out[0] = 0 // priority: non-QoS data
	copy(out[1:7], m.A2[:])
	for i := 0; i < 6; i++ {
		out[7+i] = byte(pn >> (8 * (5 - i)))
	}
	return out
}

// ccmpHeader serializes the 8-byte CCMP header carrying the PN.
func ccmpHeader(pn uint64, keyID byte) []byte {
	return []byte{
		byte(pn), byte(pn >> 8),
		0,                   // reserved
		0x20 | (keyID&3)<<6, // ExtIV set
		byte(pn >> 16), byte(pn >> 24), byte(pn >> 32), byte(pn >> 40),
	}
}

func parseCCMPHeader(b []byte) (pn uint64, err error) {
	if len(b) < CCMPHeaderLen {
		return 0, fmt.Errorf("crypto80211: CCMP header needs %d bytes, have %d", CCMPHeaderLen, len(b))
	}
	if b[3]&0x20 == 0 {
		return 0, errors.New("crypto80211: CCMP ExtIV bit not set")
	}
	pn = uint64(b[0]) | uint64(b[1])<<8 |
		uint64(b[4])<<16 | uint64(b[5])<<24 | uint64(b[6])<<32 | uint64(b[7])<<40
	return pn, nil
}

// CCMPSession protects one direction of one pairwise association: it owns
// the temporal key, the transmit packet number and the receive replay
// window.
type CCMPSession struct {
	tk   [16]byte
	txPN uint64
	rxPN uint64
}

// NewCCMPSession starts a session with the handshake-installed temporal
// key. PNs start at zero, as after key installation.
func NewCCMPSession(tk [16]byte) *CCMPSession {
	return &CCMPSession{tk: tk}
}

// Encapsulate protects an MSDU, returning CCMP header || ciphertext || MIC.
func (s *CCMPSession) Encapsulate(meta CCMPFrameMeta, msdu []byte) ([]byte, error) {
	s.txPN++
	pn := s.txPN
	sealed, err := CCMEncrypt(s.tk[:], meta.nonce(pn), meta.aad(), msdu)
	if err != nil {
		return nil, err
	}
	return append(ccmpHeader(pn, 0), sealed...), nil
}

// Decapsulate verifies and strips the protection, enforcing strictly
// increasing packet numbers.
func (s *CCMPSession) Decapsulate(meta CCMPFrameMeta, body []byte) ([]byte, error) {
	pn, err := parseCCMPHeader(body)
	if err != nil {
		return nil, err
	}
	if pn <= s.rxPN {
		return nil, fmt.Errorf("%w: PN %d after %d", ErrReplay, pn, s.rxPN)
	}
	plain, err := CCMDecrypt(s.tk[:], meta.nonce(pn), meta.aad(), body[CCMPHeaderLen:])
	if err != nil {
		return nil, err
	}
	s.rxPN = pn
	return plain, nil
}

// TxPN reports the last transmitted packet number (diagnostics).
func (s *CCMPSession) TxPN() uint64 { return s.txPN }
