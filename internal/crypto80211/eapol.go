package crypto80211

import (
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// EAPOL-Key frames (IEEE 802.1X-2010 §11 + IEEE 802.11-2016 §12.7.2).
// These ride inside 802.11 data frames with the EAPOL ethertype (0x888E)
// behind an LLC/SNAP header; this file codes only the EAPOL PDU itself.

// EtherTypeEAPOL is the EAPOL ethertype.
const EtherTypeEAPOL = 0x888e

// KeyInfo is the EAPOL-Key information bitfield.
type KeyInfo uint16

// KeyInfo bits (descriptor version occupies the low 3 bits).
const (
	KeyInfoTypePairwise KeyInfo = 1 << 3
	KeyInfoInstall      KeyInfo = 1 << 6
	KeyInfoAck          KeyInfo = 1 << 7
	KeyInfoMIC          KeyInfo = 1 << 8
	KeyInfoSecure       KeyInfo = 1 << 9
	KeyInfoEncrypted    KeyInfo = 1 << 12
)

// descVersionHMACSHA1AES is descriptor version 2: HMAC-SHA1-128 MIC with
// AES key wrap, the version WPA2-CCMP uses.
const descVersionHMACSHA1AES = 2

// EAPOLKey is a decoded EAPOL-Key frame.
type EAPOLKey struct {
	Info          KeyInfo
	KeyLength     uint16
	ReplayCounter uint64
	Nonce         [NonceLen]byte
	// MIC is the HMAC-SHA1-128 over the whole EAPOL frame with this field
	// zeroed.
	MIC [16]byte
	// KeyData carries the wrapped GTK (msg 3) or the RSN element (msg 2).
	KeyData []byte
}

const (
	eapolVersion   = 2 // 802.1X-2004
	eapolTypeKey   = 3
	descriptorRSN  = 2
	eapolHeaderLen = 4
	keyFixedLen    = 1 + 2 + 2 + 8 + NonceLen + 16 + 8 + 16 + 2 // descriptor..keydatalen
)

// Append serializes k as a full EAPOL PDU.
func (k *EAPOLKey) Append(dst []byte) []byte {
	bodyLen := keyFixedLen + len(k.KeyData)
	dst = append(dst, eapolVersion, eapolTypeKey)
	dst = binary.BigEndian.AppendUint16(dst, uint16(bodyLen))
	dst = append(dst, descriptorRSN)
	dst = binary.BigEndian.AppendUint16(dst, uint16(k.Info)|descVersionHMACSHA1AES)
	dst = binary.BigEndian.AppendUint16(dst, k.KeyLength)
	dst = binary.BigEndian.AppendUint64(dst, k.ReplayCounter)
	dst = append(dst, k.Nonce[:]...)
	dst = append(dst, make([]byte, 16)...) // key IV (unused with AES wrap)
	dst = append(dst, make([]byte, 8)...)  // key RSC
	dst = append(dst, k.MIC[:]...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(k.KeyData)))
	return append(dst, k.KeyData...)
}

// micOffset is where the MIC lives inside the serialized PDU.
const micOffset = eapolHeaderLen + 1 + 2 + 2 + 8 + NonceLen + 16 + 8

// ParseEAPOLKey decodes an EAPOL-Key PDU.
func ParseEAPOLKey(b []byte) (*EAPOLKey, error) {
	if len(b) < eapolHeaderLen+keyFixedLen {
		return nil, fmt.Errorf("crypto80211: EAPOL-Key too short: %d bytes", len(b))
	}
	if b[1] != eapolTypeKey {
		return nil, fmt.Errorf("crypto80211: not an EAPOL-Key frame (type %d)", b[1])
	}
	if b[4] != descriptorRSN {
		return nil, fmt.Errorf("crypto80211: unknown key descriptor %d", b[4])
	}
	k := &EAPOLKey{}
	k.Info = KeyInfo(binary.BigEndian.Uint16(b[5:])) &^ 0x7 // strip version
	k.KeyLength = binary.BigEndian.Uint16(b[7:])
	k.ReplayCounter = binary.BigEndian.Uint64(b[9:])
	copy(k.Nonce[:], b[17:17+NonceLen])
	copy(k.MIC[:], b[micOffset:micOffset+16])
	n := int(binary.BigEndian.Uint16(b[micOffset+16:]))
	rest := b[micOffset+18:]
	if len(rest) < n {
		return nil, fmt.Errorf("crypto80211: EAPOL key data truncated: want %d, have %d", n, len(rest))
	}
	k.KeyData = rest[:n]
	return k, nil
}

// Sign computes and stores the HMAC-SHA1-128 MIC over the serialized PDU.
func (k *EAPOLKey) Sign(kck [16]byte) []byte {
	k.MIC = [16]byte{}
	raw := k.Append(nil)
	mac := hmac.New(sha1.New, kck[:])
	mac.Write(raw)
	copy(k.MIC[:], mac.Sum(nil))
	copy(raw[micOffset:], k.MIC[:])
	return raw
}

// VerifyMIC checks the MIC of a serialized PDU against kck.
func VerifyMIC(raw []byte, kck [16]byte) bool {
	if len(raw) < micOffset+16 {
		return false
	}
	var got [16]byte
	copy(got[:], raw[micOffset:])
	zeroed := append([]byte(nil), raw...)
	for i := range zeroed[micOffset : micOffset+16] {
		zeroed[micOffset+i] = 0
	}
	mac := hmac.New(sha1.New, kck[:])
	mac.Write(zeroed)
	want := mac.Sum(nil)[:16]
	return hmac.Equal(got[:], want)
}
