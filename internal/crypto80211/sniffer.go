package crypto80211

import (
	"wile/internal/dot11"
	"wile/internal/netstack"
)

// Sniffer is a passive WPA2-PSK decryptor: given the network's passphrase
// and SSID, it watches a monitor-mode frame stream, captures the ANonce
// and SNonce from each 4-way handshake it overhears, derives the same PTK
// the peers derive, and decrypts subsequent CCMP data frames — exactly the
// trick Wireshark's 802.11 decryption uses. The experiment harness uses it
// to look *inside* the encrypted DHCP/ARP phase of the Figure 3a join
// without giving the monitor any protocol shortcuts.
//
// The standard caveat applies and is part of the point: PSK networks have
// no forward secrecy, so anyone with the passphrase who captures the
// handshake reads everything. (Wi-LE's §6 security extension has the same
// property by design — per-device pre-shared keys — which is fine for the
// IoT setting both target.)
type Sniffer struct {
	pmk []byte
	// Stats counts what the sniffer saw.
	Stats SnifferStats

	sessions map[pairKey]*snifferSession
	// groups decrypts GTK-protected group traffic per AP, with the GTK
	// recovered from message 3 (the sniffer holds the KEK).
	groups map[dot11.MAC]*CCMPSession
}

// SnifferStats counts sniffer events.
type SnifferStats struct {
	HandshakesSeen int
	Decrypted      int
	Undecryptable  int
}

type pairKey struct {
	aa, spa dot11.MAC
}

type snifferSession struct {
	anonce  [NonceLen]byte
	haveA   bool
	ptk     PTK
	havePTK bool
	// up and down hold separate replay windows: packet numbers are
	// per-transmitter, and a passive observer sees both directions
	// interleaved.
	up, down *CCMPSession
}

// NewSniffer prepares a decryptor for one WPA2-PSK network.
func NewSniffer(passphrase, ssid string) *Sniffer {
	return &Sniffer{
		pmk:      PSK(passphrase, ssid),
		sessions: make(map[pairKey]*snifferSession),
		groups:   make(map[dot11.MAC]*CCMPSession),
	}
}

// Observe feeds one decoded frame to the sniffer. For protected data
// frames it returns the decrypted MSDU (plain=true); for everything else
// it returns nil and updates handshake state as needed.
func (s *Sniffer) Observe(f dot11.Frame) (msdu []byte, plain bool) {
	d, ok := f.(*dot11.Data)
	if !ok {
		return nil, false
	}
	if !d.Header.FC.Protected {
		s.observeCleartext(d)
		return nil, false
	}
	// Group-addressed downlink decrypts under the AP's GTK.
	if !d.Header.FC.ToDS && d.Header.Addr1.IsGroup() {
		g, ok := s.groups[d.Header.Addr2]
		if !ok {
			s.Stats.Undecryptable++
			return nil, false
		}
		plainMSDU, err := g.Decapsulate(DataFrameMeta(d), d.Payload)
		if err != nil {
			s.Stats.Undecryptable++
			return nil, false
		}
		s.Stats.Decrypted++
		return plainMSDU, true
	}
	// Otherwise find the pairwise session. The AP address is the BSSID
	// (addr1 for ToDS, addr2 for FromDS).
	var key pairKey
	if d.Header.FC.ToDS {
		key = pairKey{aa: d.Header.Addr1, spa: d.Header.Addr2}
	} else {
		key = pairKey{aa: d.Header.Addr2, spa: d.Header.Addr1}
	}
	sess, ok := s.sessions[key]
	if !ok || !sess.havePTK {
		s.Stats.Undecryptable++
		return nil, false
	}
	dir := sess.down
	if d.Header.FC.ToDS {
		dir = sess.up
	}
	plainMSDU, err := dir.Decapsulate(DataFrameMeta(d), d.Payload)
	if err != nil {
		s.Stats.Undecryptable++
		return nil, false
	}
	s.Stats.Decrypted++
	return plainMSDU, true
}

// observeCleartext watches for EAPOL handshake messages.
func (s *Sniffer) observeCleartext(d *dot11.Data) {
	et, payload, err := netstack.UnwrapSNAP(d.Payload)
	if err != nil || et != netstack.EtherTypeEAPOL {
		return
	}
	k, err := ParseEAPOLKey(payload)
	if err != nil {
		return
	}
	switch {
	case k.Info&KeyInfoAck != 0 && k.Info&KeyInfoMIC == 0:
		// M1 (AP → station): capture the ANonce.
		key := pairKey{aa: d.Header.Addr2, spa: d.Header.Addr1}
		sess := &snifferSession{anonce: k.Nonce, haveA: true}
		s.sessions[key] = sess
	case k.Info&KeyInfoMIC != 0 && k.Info&KeyInfoAck == 0 && k.Info&KeyInfoSecure == 0:
		// M2 (station → AP): SNonce completes the derivation.
		key := pairKey{aa: d.Header.Addr1, spa: d.Header.Addr2}
		sess, ok := s.sessions[key]
		if !ok || !sess.haveA {
			return
		}
		sess.ptk = DerivePTK(s.pmk, [6]byte(key.aa), [6]byte(key.spa), sess.anonce, k.Nonce)
		sess.havePTK = true
		sess.up = NewCCMPSession(sess.ptk.TK)
		sess.down = NewCCMPSession(sess.ptk.TK)
		s.Stats.HandshakesSeen++
	case k.Info&KeyInfoInstall != 0 && k.Info&KeyInfoMIC != 0:
		// M3 (AP → station): the key data holds the wrapped GTK; the
		// sniffer unwraps it with the KEK it just derived — exactly what
		// Wireshark's WPA decryption does.
		key := pairKey{aa: d.Header.Addr2, spa: d.Header.Addr1}
		sess, ok := s.sessions[key]
		if !ok || !sess.havePTK {
			return
		}
		keyData, err := KeyUnwrap(sess.ptk.KEK[:], k.KeyData)
		if err != nil {
			return
		}
		var gtk [GTKLen]byte
		copy(gtk[:], unpad8(keyData))
		s.groups[key.aa] = NewCCMPSession(gtk)
	}
}

// CanDecrypt reports whether a PTK is installed for the given pair.
func (s *Sniffer) CanDecrypt(aa, spa dot11.MAC) bool {
	sess, ok := s.sessions[pairKey{aa: aa, spa: spa}]
	return ok && sess.havePTK
}
