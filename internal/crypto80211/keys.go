// Package crypto80211 implements the WPA2-PSK key machinery exercised by
// the 802.11 join that Wi-LE exists to avoid: PSK derivation (PBKDF2-SHA1),
// the 802.11i pseudo-random function, pairwise-key derivation, the
// EAPOL-Key frame codec, and the 4-way handshake state machines.
//
// The paper's §3.1 measures this cost concretely: with the Google WiFi AP
// running 802.1X-style PSK authentication, "at least 8 frames are exchanged
// during this process", part of the ≥20 MAC-layer frames a reconnecting
// client pays before it can send one byte of sensor data. The handshake
// here is cryptographically real (the MICs verify, the GTK unwraps) so the
// frame counts and frame sizes in the simulation are the true ones.
package crypto80211

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
)

// PSKLen is the length of a WPA2 pairwise master key.
const PSKLen = 32

// PBKDF2SHA1 derives keyLen bytes from the password and salt using
// PBKDF2-HMAC-SHA1 (RFC 2898). The standard library gained crypto/pbkdf2
// only recently; the dependency-free implementation here is 30 lines and
// verified against the RFC 6070 and IEEE 802.11i test vectors.
func PBKDF2SHA1(password, salt []byte, iter, keyLen int) []byte {
	prf := hmac.New(sha1.New, password)
	hashLen := prf.Size()
	numBlocks := (keyLen + hashLen - 1) / hashLen

	var buf [4]byte
	dk := make([]byte, 0, numBlocks*hashLen)
	u := make([]byte, hashLen)
	for block := 1; block <= numBlocks; block++ {
		prf.Reset()
		prf.Write(salt)
		binary.BigEndian.PutUint32(buf[:], uint32(block))
		prf.Write(buf[:])
		dk = prf.Sum(dk)
		t := dk[len(dk)-hashLen:]
		copy(u, t)
		for n := 2; n <= iter; n++ {
			prf.Reset()
			prf.Write(u)
			u = prf.Sum(u[:0])
			for x := range u {
				t[x] ^= u[x]
			}
		}
	}
	return dk[:keyLen]
}

// PSK derives the 256-bit pairwise master key from an ASCII passphrase and
// SSID, per IEEE 802.11-2016 Annex J: 4096 iterations of PBKDF2-HMAC-SHA1.
func PSK(passphrase, ssid string) []byte {
	return PBKDF2SHA1([]byte(passphrase), []byte(ssid), 4096, PSKLen)
}

// PRF is the IEEE 802.11i pseudo-random function (§12.7.1.2): HMAC-SHA1
// iterated over label and data with a counter, producing bits/8 bytes.
func PRF(key []byte, label string, data []byte, bits int) []byte {
	n := (bits + 159) / 160 // SHA-1 blocks needed
	out := make([]byte, 0, n*sha1.Size)
	mac := hmac.New(sha1.New, key)
	for i := 0; i < n; i++ {
		mac.Reset()
		mac.Write([]byte(label))
		mac.Write([]byte{0})
		mac.Write(data)
		mac.Write([]byte{byte(i)})
		out = mac.Sum(out)
	}
	return out[:bits/8]
}

// NonceLen is the length of the ANonce/SNonce values.
const NonceLen = 32

// PTK is a derived pairwise transient key, split into its purposes.
type PTK struct {
	// KCK (key confirmation key) authenticates EAPOL-Key MICs.
	KCK [16]byte
	// KEK (key encryption key) wraps the GTK in message 3.
	KEK [16]byte
	// TK (temporal key) encrypts data frames (CCMP).
	TK [16]byte
}

// DerivePTK computes the CCMP pairwise transient key (384 bits) from the
// PMK, the two MAC addresses and the two nonces, per §12.7.1.3. The
// min/max canonicalization makes the derivation symmetric: both sides
// compute the same key regardless of who is authenticator.
func DerivePTK(pmk []byte, aa, spa [6]byte, anonce, snonce [NonceLen]byte) PTK {
	data := make([]byte, 0, 12+2*NonceLen)
	minA, maxA := aa, spa
	if bytes.Compare(spa[:], aa[:]) < 0 {
		minA, maxA = spa, aa
	}
	data = append(data, minA[:]...)
	data = append(data, maxA[:]...)
	minN, maxN := anonce, snonce
	if bytes.Compare(snonce[:], anonce[:]) < 0 {
		minN, maxN = snonce, anonce
	}
	data = append(data, minN[:]...)
	data = append(data, maxN[:]...)

	raw := PRF(pmk, "Pairwise key expansion", data, 384)
	var ptk PTK
	copy(ptk.KCK[:], raw[0:16])
	copy(ptk.KEK[:], raw[16:32])
	copy(ptk.TK[:], raw[32:48])
	return ptk
}

// GTKLen is the group temporal key length for CCMP.
const GTKLen = 16
