package dot11

import "fmt"

// FrameType is the 2-bit frame type from the frame-control field.
type FrameType uint8

// Frame types.
const (
	TypeManagement FrameType = 0
	TypeControl    FrameType = 1
	TypeData       FrameType = 2
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case TypeManagement:
		return "mgmt"
	case TypeControl:
		return "ctrl"
	case TypeData:
		return "data"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Subtype is the 4-bit frame subtype. Its meaning depends on the type.
type Subtype uint8

// Management subtypes.
const (
	SubtypeAssocReq    Subtype = 0
	SubtypeAssocResp   Subtype = 1
	SubtypeReassocReq  Subtype = 2
	SubtypeReassocResp Subtype = 3
	SubtypeProbeReq    Subtype = 4
	SubtypeProbeResp   Subtype = 5
	SubtypeBeacon      Subtype = 8
	SubtypeATIM        Subtype = 9
	SubtypeDisassoc    Subtype = 10
	SubtypeAuth        Subtype = 11
	SubtypeDeauth      Subtype = 12
	SubtypeAction      Subtype = 13
)

// Control subtypes.
const (
	SubtypeBlockAckReq Subtype = 8
	SubtypeBlockAck    Subtype = 9
	SubtypePSPoll      Subtype = 10
	SubtypeRTS         Subtype = 11
	SubtypeCTS         Subtype = 12
	SubtypeACK         Subtype = 13
)

// Data subtypes.
const (
	SubtypeData    Subtype = 0
	SubtypeNull    Subtype = 4
	SubtypeQoSData Subtype = 8
	SubtypeQoSNull Subtype = 12
)

// Kind pairs a type with a subtype; it identifies a concrete frame format.
type Kind struct {
	Type    FrameType
	Subtype Subtype
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := map[Kind]string{
		{TypeManagement, SubtypeAssocReq}:    "assoc-req",
		{TypeManagement, SubtypeAssocResp}:   "assoc-resp",
		{TypeManagement, SubtypeReassocReq}:  "reassoc-req",
		{TypeManagement, SubtypeReassocResp}: "reassoc-resp",
		{TypeManagement, SubtypeProbeReq}:    "probe-req",
		{TypeManagement, SubtypeProbeResp}:   "probe-resp",
		{TypeManagement, SubtypeBeacon}:      "beacon",
		{TypeManagement, SubtypeDisassoc}:    "disassoc",
		{TypeManagement, SubtypeAuth}:        "auth",
		{TypeManagement, SubtypeDeauth}:      "deauth",
		{TypeManagement, SubtypeAction}:      "action",
		{TypeControl, SubtypePSPoll}:         "ps-poll",
		{TypeControl, SubtypeRTS}:            "rts",
		{TypeControl, SubtypeCTS}:            "cts",
		{TypeControl, SubtypeACK}:            "ack",
		{TypeData, SubtypeData}:              "data",
		{TypeData, SubtypeNull}:              "null",
		{TypeData, SubtypeQoSData}:           "qos-data",
		{TypeData, SubtypeQoSNull}:           "qos-null",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("%v/%d", k.Type, k.Subtype)
}

// FrameControl is the decoded 16-bit frame-control field.
type FrameControl struct {
	// Version is the protocol version; always 0 in deployed 802.11.
	Version uint8
	Type    FrameType
	Subtype Subtype
	ToDS    bool
	FromDS  bool
	// MoreFrag indicates another fragment of the MSDU follows.
	MoreFrag bool
	Retry    bool
	// PwrMgmt announces the transmitter will be in power-save mode after
	// this frame — the bit the 802.11 power-save protocol pivots on.
	PwrMgmt bool
	// MoreData tells a dozing station the AP holds more buffered frames.
	MoreData bool
	// Protected marks an encrypted frame body.
	Protected bool
	Order     bool
}

// Uint16 packs the field into its wire form.
func (fc FrameControl) Uint16() uint16 {
	v := uint16(fc.Version&0x3) |
		uint16(fc.Type&0x3)<<2 |
		uint16(fc.Subtype&0xf)<<4
	if fc.ToDS {
		v |= 1 << 8
	}
	if fc.FromDS {
		v |= 1 << 9
	}
	if fc.MoreFrag {
		v |= 1 << 10
	}
	if fc.Retry {
		v |= 1 << 11
	}
	if fc.PwrMgmt {
		v |= 1 << 12
	}
	if fc.MoreData {
		v |= 1 << 13
	}
	if fc.Protected {
		v |= 1 << 14
	}
	if fc.Order {
		v |= 1 << 15
	}
	return v
}

// ParseFrameControl unpacks the wire form.
func ParseFrameControl(v uint16) FrameControl {
	return FrameControl{
		Version:   uint8(v & 0x3),
		Type:      FrameType(v >> 2 & 0x3),
		Subtype:   Subtype(v >> 4 & 0xf),
		ToDS:      v&(1<<8) != 0,
		FromDS:    v&(1<<9) != 0,
		MoreFrag:  v&(1<<10) != 0,
		Retry:     v&(1<<11) != 0,
		PwrMgmt:   v&(1<<12) != 0,
		MoreData:  v&(1<<13) != 0,
		Protected: v&(1<<14) != 0,
		Order:     v&(1<<15) != 0,
	}
}

// Kind reports the frame kind encoded in the frame control.
func (fc FrameControl) Kind() Kind { return Kind{fc.Type, fc.Subtype} }

// Capability bits carried by beacons, probe responses and association
// frames (IEEE 802.11-2016 §9.4.1.4).
type Capability uint16

// Capability flags.
const (
	CapESS           Capability = 1 << 0 // infrastructure network
	CapIBSS          Capability = 1 << 1 // ad-hoc network
	CapPrivacy       Capability = 1 << 4 // WEP/WPA/WPA2 required
	CapShortPreamble Capability = 1 << 5
	CapShortSlotTime Capability = 1 << 10
)

// Has reports whether all bits in mask are set.
func (c Capability) Has(mask Capability) bool { return c&mask == mask }
