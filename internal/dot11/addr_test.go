package dot11

import (
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("02:57:de:ad:be:ef")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0x02, 0x57, 0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("parsed %v", m)
	}
	if m.String() != "02:57:de:ad:be:ef" {
		t.Fatalf("String() = %q", m.String())
	}
	// Uppercase accepted, canonicalized to lowercase.
	m2, err := ParseMAC("02:57:DE:AD:BE:EF")
	if err != nil || m2 != m {
		t.Fatalf("uppercase parse: %v, %v", m2, err)
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, s := range []string{
		"", "02:57:de:ad:be", "02:57:de:ad:be:e", "0257deadbeef",
		"02-57-de-ad-be-ef", "02:57:de:ad:be:eg", "02:57:de:ad:be:ef:00",
	} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", s)
		}
	}
}

func TestMustParseMACPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseMAC on bad input did not panic")
		}
	}()
	MustParseMAC("nope")
}

func TestPropertyMACStringRoundTrip(t *testing.T) {
	f := func(raw [6]byte) bool {
		m := MAC(raw)
		back, err := ParseMAC(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressClassification(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsGroup() {
		t.Error("broadcast misclassified")
	}
	uni := MustParseMAC("00:11:22:33:44:55")
	if uni.IsBroadcast() || uni.IsGroup() || uni.IsLocal() {
		t.Error("unicast global misclassified")
	}
	multi := MustParseMAC("01:00:5e:00:00:01")
	if !multi.IsGroup() || multi.IsBroadcast() {
		t.Error("multicast misclassified")
	}
}

func TestLocalMAC(t *testing.T) {
	m := LocalMAC(0xdeadbeef)
	if !m.IsLocal() {
		t.Error("LocalMAC not locally administered")
	}
	if m.IsGroup() {
		t.Error("LocalMAC must be unicast")
	}
	if m != (MAC{0x02, 0x57, 0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("LocalMAC = %v", m)
	}
	// Distinct IDs give distinct addresses.
	if LocalMAC(1) == LocalMAC(2) {
		t.Error("LocalMAC collision")
	}
	if got := m.OUI(); got != [3]byte{0x02, 0x57, 0xde} {
		t.Errorf("OUI = %v", got)
	}
}
