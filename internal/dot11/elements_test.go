package dot11

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestElementListRoundTrip(t *testing.T) {
	els := Elements{
		SSIDElement("net"),
		DefaultRates(),
		DSParamElement(11),
		{ID: ElementERP, Info: []byte{0x04}},
	}
	raw, err := els.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseElements(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, els) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, els)
	}
}

func TestElementTooLong(t *testing.T) {
	if _, err := AppendElement(nil, ElementSSID, make([]byte, 256)); err == nil {
		t.Fatal("256-byte element accepted")
	}
	if _, err := VendorElement([3]byte{1, 2, 3}, make([]byte, MaxVendorData+1)); err == nil {
		t.Fatal("oversized vendor payload accepted")
	}
	// The boundary case must succeed.
	if _, err := VendorElement([3]byte{1, 2, 3}, make([]byte, MaxVendorData)); err != nil {
		t.Fatalf("max-size vendor payload rejected: %v", err)
	}
}

func TestParseElementsTruncated(t *testing.T) {
	for _, raw := range [][]byte{
		{0},          // header cut short
		{0, 5, 1, 2}, // claims 5 info bytes, has 2
	} {
		if _, err := ParseElements(raw); !ErrTruncated(err) {
			t.Errorf("ParseElements(%x) = %v, want truncated", raw, err)
		}
	}
	// Empty list is valid.
	if got, err := ParseElements(nil); err != nil || len(got) != 0 {
		t.Errorf("empty list: %v, %v", got, err)
	}
}

func TestVendorsMultiple(t *testing.T) {
	oui := [3]byte{0x57, 0x49, 0x4c}
	other := [3]byte{0x00, 0x50, 0xf2}
	v1, _ := VendorElement(oui, []byte("one"))
	v2, _ := VendorElement(other, []byte("wps"))
	v3, _ := VendorElement(oui, []byte("two"))
	els := Elements{v1, v2, v3}
	got := els.Vendors(oui)
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("Vendors = %q", got)
	}
	first, ok := els.Vendor(oui)
	if !ok || string(first) != "one" {
		t.Fatalf("Vendor = %q, %v", first, ok)
	}
	if _, ok := els.Vendor([3]byte{9, 9, 9}); ok {
		t.Fatal("found vendor data for unknown OUI")
	}
}

func TestTIMEmpty(t *testing.T) {
	e := TIMElement(TIM{DTIMCount: 1, DTIMPeriod: 3})
	tim, err := ParseTIM(e.Info)
	if err != nil {
		t.Fatal(err)
	}
	if tim.DTIMCount != 1 || tim.DTIMPeriod != 3 || tim.GroupTraffic || len(tim.Buffered) != 0 {
		t.Fatalf("empty TIM = %+v", tim)
	}
	// Standard minimum: 4-byte info (count, period, control, one bitmap byte).
	if len(e.Info) != 4 {
		t.Fatalf("empty TIM is %d bytes, want 4", len(e.Info))
	}
}

func TestTIMSingleAID(t *testing.T) {
	e := TIMElement(TIM{DTIMPeriod: 1, Buffered: []uint16{7}})
	tim, err := ParseTIM(e.Info)
	if err != nil {
		t.Fatal(err)
	}
	if !tim.BufferedFor(7) || tim.BufferedFor(8) {
		t.Fatalf("TIM = %+v", tim)
	}
}

func TestTIMHighAIDUsesOffset(t *testing.T) {
	// AID 2000 lives in bitmap byte 250; the partial virtual bitmap must
	// not transmit the 249 empty bytes before it.
	e := TIMElement(TIM{DTIMPeriod: 1, Buffered: []uint16{2000}})
	if len(e.Info) > 6 {
		t.Fatalf("partial virtual bitmap not compressed: %d info bytes", len(e.Info))
	}
	tim, err := ParseTIM(e.Info)
	if err != nil {
		t.Fatal(err)
	}
	if !tim.BufferedFor(2000) {
		t.Fatalf("AID 2000 lost: %+v", tim)
	}
}

func TestTIMGroupTrafficBit(t *testing.T) {
	e := TIMElement(TIM{GroupTraffic: true, Buffered: []uint16{1}})
	tim, err := ParseTIM(e.Info)
	if err != nil {
		t.Fatal(err)
	}
	if !tim.GroupTraffic || !tim.BufferedFor(1) {
		t.Fatalf("TIM = %+v", tim)
	}
}

func TestTIMIgnoresInvalidAIDs(t *testing.T) {
	e := TIMElement(TIM{Buffered: []uint16{0, 2008, 5000, 3}})
	tim, err := ParseTIM(e.Info)
	if err != nil {
		t.Fatal(err)
	}
	if len(tim.Buffered) != 1 || tim.Buffered[0] != 3 {
		t.Fatalf("TIM kept invalid AIDs: %+v", tim.Buffered)
	}
}

func TestParseTIMTruncated(t *testing.T) {
	if _, err := ParseTIM([]byte{1, 2, 3}); !ErrTruncated(err) {
		t.Fatal("short TIM accepted")
	}
}

// Property: any valid AID set round-trips through the partial virtual
// bitmap exactly.
func TestPropertyTIMRoundTrip(t *testing.T) {
	f := func(aids []uint16) bool {
		want := map[uint16]bool{}
		var valid []uint16
		for _, a := range aids {
			a %= 2008
			if a == 0 {
				continue
			}
			if !want[a] {
				want[a] = true
				valid = append(valid, a)
			}
		}
		e := TIMElement(TIM{DTIMPeriod: 1, Buffered: valid})
		tim, err := ParseTIM(e.Info)
		if err != nil {
			return false
		}
		if len(tim.Buffered) != len(want) {
			return false
		}
		for _, a := range tim.Buffered {
			if !want[a] {
				return false
			}
		}
		// Parsed list is sorted by construction.
		return sort.SliceIsSorted(tim.Buffered, func(i, j int) bool { return tim.Buffered[i] < tim.Buffered[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRSNRoundTrip(t *testing.T) {
	r := RSN{
		Version:         1,
		GroupCipher:     CipherTKIP,
		PairwiseCiphers: []uint32{CipherCCMP, CipherTKIP},
		AKMs:            []uint32{AKMPSK},
		Capabilities:    0x000c,
	}
	got, err := ParseRSN(RSNElement(r).Info)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("RSN round trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestParseRSNTruncated(t *testing.T) {
	full := RSNElement(DefaultRSN()).Info
	for _, n := range []int{0, 4, 7, 9, 13} {
		if n > len(full) {
			continue
		}
		if _, err := ParseRSN(full[:n]); err == nil {
			t.Errorf("ParseRSN of %d-byte prefix succeeded", n)
		}
	}
}

func TestDefaultRSNIsWPA2PSKCCMP(t *testing.T) {
	r := DefaultRSN()
	if r.GroupCipher != CipherCCMP || len(r.PairwiseCiphers) != 1 ||
		r.PairwiseCiphers[0] != CipherCCMP || len(r.AKMs) != 1 || r.AKMs[0] != AKMPSK {
		t.Fatalf("DefaultRSN = %+v", r)
	}
}

func TestVendorElementLayout(t *testing.T) {
	oui := [3]byte{0xaa, 0xbb, 0xcc}
	e, err := VendorElement(oui, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != ElementVendor {
		t.Fatalf("ID = %d", e.ID)
	}
	if !bytes.Equal(e.Info, []byte{0xaa, 0xbb, 0xcc, 1, 2, 3}) {
		t.Fatalf("info = %x", e.Info)
	}
}

func TestFindMissing(t *testing.T) {
	els := Elements{SSIDElement("x")}
	if _, ok := els.Find(ElementTIM); ok {
		t.Fatal("found absent element")
	}
	if _, ok := els.DSChannel(); ok {
		t.Fatal("found absent channel")
	}
}

func TestHTCapabilitiesRoundTrip(t *testing.T) {
	c := SingleStreamHTCapabilities()
	got, err := ParseHTCapabilities(HTCapabilitiesElement(c).Info)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ShortGI20 {
		t.Error("short GI lost")
	}
	for mcs := 0; mcs <= 7; mcs++ {
		if !got.SupportsMCS(mcs) {
			t.Errorf("MCS %d not supported", mcs)
		}
	}
	for _, mcs := range []int{8, 15, 76, 77, -1} {
		if got.SupportsMCS(mcs) {
			t.Errorf("MCS %d spuriously supported", mcs)
		}
	}
	if len(HTCapabilitiesElement(c).Info) != 26 {
		t.Errorf("HT cap element is %d bytes", len(HTCapabilitiesElement(c).Info))
	}
}

func TestHTOperationRoundTrip(t *testing.T) {
	o := HTOperation{PrimaryChannel: 6}
	o.BasicMCSSet[0] = 0xff
	got, err := ParseHTOperation(HTOperationElement(o).Info)
	if err != nil {
		t.Fatal(err)
	}
	if got.PrimaryChannel != 6 || got.BasicMCSSet[0] != 0xff {
		t.Fatalf("round trip: %+v", got)
	}
	if len(HTOperationElement(o).Info) != 22 {
		t.Errorf("HT op element is %d bytes", len(HTOperationElement(o).Info))
	}
}

func TestHTParseTruncated(t *testing.T) {
	if _, err := ParseHTCapabilities(make([]byte, 10)); !ErrTruncated(err) {
		t.Error("short HT caps accepted")
	}
	if _, err := ParseHTOperation(make([]byte, 10)); !ErrTruncated(err) {
		t.Error("short HT op accepted")
	}
}
