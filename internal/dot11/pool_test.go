package dot11

import (
	"bytes"
	"testing"
)

func testBeacon(seq uint16, payload byte) *Beacon {
	b := NewBeacon(MAC{2, 0, 0, 0, 0, 1}, 100, CapESS, Elements{
		SSIDElement(""),
		DefaultRates(),
		DSParamElement(6),
		{ID: ElementVendor, Info: []byte{0x52, 0x49, 0x4c, payload, payload}},
	})
	b.Header.Sequence = seq
	return b
}

func TestAppendMarshalMatchesMarshal(t *testing.T) {
	f := testBeacon(7, 0xaa)
	plain, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	appended, err := AppendMarshal(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, appended) {
		t.Fatal("AppendMarshal(nil, f) differs from Marshal(f)")
	}
	// Appending after a prefix must leave the prefix intact and put a
	// valid MPDU (FCS covering only the new bytes) after it.
	prefix := []byte{0xde, 0xad}
	buf, err := AppendMarshal(append([]byte(nil), prefix...), f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:2], prefix) {
		t.Fatal("AppendMarshal clobbered the prefix")
	}
	if !bytes.Equal(buf[2:], plain) {
		t.Fatal("AppendMarshal after prefix differs from standalone marshal")
	}
	if _, err := Decode(buf[2:]); err != nil {
		t.Fatalf("FCS over appended region invalid: %v", err)
	}
}

func TestAppendMarshalSteadyStateAllocFree(t *testing.T) {
	f := testBeacon(1, 0x17)
	scratch, err := AppendMarshal(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		scratch, err = AppendMarshal(scratch[:0], f)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendMarshal into warm scratch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestDecodeReleaseRecyclesCorrectly(t *testing.T) {
	// A recycled frame must decode the next MPDU exactly as a fresh one
	// would, including when the element list shrinks or grows across
	// reuses (ParseElementsInto truncates before appending).
	long, err := Marshal(testBeacon(1, 0x11))
	if err != nil {
		t.Fatal(err)
	}
	short, err := Marshal(NewBeacon(MAC{2, 0, 0, 0, 0, 9}, 100, 0, Elements{SSIDElement("x")}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		raw := long
		wantElems := 4
		if i%2 == 1 {
			raw = short
			wantElems = 1
		}
		f, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		bc, ok := f.(*Beacon)
		if !ok {
			t.Fatalf("decoded %T, want *Beacon", f)
		}
		if len(bc.Elements) != wantElems {
			t.Fatalf("iteration %d: %d elements, want %d", i, len(bc.Elements), wantElems)
		}
		reencoded, err := Marshal(bc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reencoded, raw) {
			t.Fatalf("iteration %d: recycled frame did not round-trip", i)
		}
		Release(f)
	}
	// Releasing nil must be a no-op.
	Release(nil)
}

func TestDecodeAfterReleaseAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops random Puts under the race detector; steady-state alloc counts are nondeterministic")
	}
	raw, err := Marshal(testBeacon(3, 0x42))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool for this kind.
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	Release(f)
	allocs := testing.AllocsPerRun(200, func() {
		f, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		Release(f)
	})
	// Steady state: the frame struct and its Elements array both come from
	// the pool. Allow a fraction for sync.Pool's occasional GC-driven
	// refill, but the amortized cost must be near zero.
	if allocs > 0.5 {
		t.Fatalf("Decode+Release allocates %.2f objects/op in steady state, want ~0", allocs)
	}
}

func TestParseElementsIntoKeepsCallerSliceOnError(t *testing.T) {
	es := Elements{SSIDElement("keep")}
	// Truncated element: claims 5 info bytes, provides 1.
	got, err := ParseElementsInto(es, []byte{0, 5, 'x'})
	if err == nil {
		t.Fatal("expected truncation error")
	}
	if len(got) != 1 || string(got[0].Info) != "keep" {
		t.Fatalf("error path returned %v, want the original slice", got)
	}
}
