package dot11

import (
	"bytes"
	"testing"
)

// Fuzz targets: decoders must never panic on arbitrary bytes, and every
// successfully decoded frame must re-serialize to something that decodes
// to the same kind. Seeds cover each frame family; `go test` runs the
// seeds, `go test -fuzz` explores.

func fuzzSeeds(f *testing.F) {
	add := func(fr Frame) {
		raw, err := Marshal(fr)
		if err == nil {
			f.Add(raw)
		}
	}
	ve, _ := VendorElement([3]byte{0x52, 0x49, 0x4c}, []byte("payload"))
	add(NewBeacon(MustParseMAC("02:57:00:00:00:01"), 100, CapESS,
		Elements{SSIDElement(""), DefaultRates(), DSParamElement(6), ve}))
	add(NewACK(MustParseMAC("02:57:00:00:00:01")))
	add(NewDataToAP(MustParseMAC("aa:bb:cc:00:00:01"), MustParseMAC("02:57:00:00:00:01"),
		Broadcast, []byte{0xaa, 0xaa, 0x03, 0, 0, 0, 0x08, 0x00}))
	add(NewNull(MustParseMAC("aa:bb:cc:00:00:01"), MustParseMAC("02:57:00:00:00:01"), true))
	auth := &Auth{Algorithm: AuthOpen, Seq: 1}
	auth.Header.Addr1 = MustParseMAC("aa:bb:cc:00:00:01")
	add(auth)
	add(&PSPoll{AID: 1, BSSID: MustParseMAC("aa:bb:cc:00:00:01")})
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x00})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
}

func FuzzDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		// Round-trip: re-marshal and decode again; the kind must survive.
		raw, err := Marshal(fr)
		if err != nil {
			t.Fatalf("decoded frame does not marshal: %v", err)
		}
		back, err := Decode(raw)
		if err != nil {
			t.Fatalf("re-marshaled frame does not decode: %v", err)
		}
		if back.Kind() != fr.Kind() {
			t.Fatalf("kind changed: %v → %v", fr.Kind(), back.Kind())
		}
		if back.RA() != fr.RA() {
			t.Fatalf("RA changed: %v → %v", fr.RA(), back.RA())
		}
	})
}

func FuzzParseElements(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 'n', 'e', 't', 3, 1, 6})
	f.Add([]byte{221, 4, 0x52, 0x49, 0x4c, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		els, err := ParseElements(data)
		if err != nil {
			return
		}
		// Parsed elements re-serialize to the identical bytes.
		out, err := els.Append(nil)
		if err != nil {
			t.Fatalf("parsed elements do not serialize: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("element round trip changed bytes:\n in  %x\n out %x", data, out)
		}
		// Typed accessors must not panic on arbitrary element content.
		els.SSID()
		els.DSChannel()
		els.Vendor([3]byte{0x52, 0x49, 0x4c})
		if info, ok := els.Find(ElementTIM); ok {
			ParseTIM(info)
		}
		if info, ok := els.Find(ElementRSN); ok {
			ParseRSN(info)
		}
		if info, ok := els.Find(ElementHTCapabilities); ok {
			ParseHTCapabilities(info)
		}
	})
}
