package dot11

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// Header is the MAC header shared by management and data frames (24 bytes
// on the wire). Control frames carry abbreviated headers handled by their
// concrete types.
type Header struct {
	FC FrameControl
	// DurationID is the NAV duration in microseconds (or the AID for
	// PS-Poll frames).
	DurationID uint16
	// Addr1 is the receiver address (RA).
	Addr1 MAC
	// Addr2 is the transmitter address (TA).
	Addr2 MAC
	// Addr3 is the BSSID for management frames; DA/SA for data frames
	// depending on ToDS/FromDS.
	Addr3 MAC
	// Sequence is the 12-bit sequence number.
	Sequence uint16
	// Fragment is the 4-bit fragment number.
	Fragment uint8
}

const mgmtHeaderLen = 24

// fcsLen is the length of the frame check sequence.
const fcsLen = 4

func (h *Header) appendTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, h.FC.Uint16())
	dst = binary.LittleEndian.AppendUint16(dst, h.DurationID)
	dst = append(dst, h.Addr1[:]...)
	dst = append(dst, h.Addr2[:]...)
	dst = append(dst, h.Addr3[:]...)
	seqCtl := h.Sequence<<4 | uint16(h.Fragment&0xf)
	return binary.LittleEndian.AppendUint16(dst, seqCtl)
}

func (h *Header) decodeFrom(b []byte) error {
	if len(b) < mgmtHeaderLen {
		return fmt.Errorf("%w: header needs %d bytes, have %d", errTruncated, mgmtHeaderLen, len(b))
	}
	h.FC = ParseFrameControl(binary.LittleEndian.Uint16(b))
	h.DurationID = binary.LittleEndian.Uint16(b[2:])
	copy(h.Addr1[:], b[4:10])
	copy(h.Addr2[:], b[10:16])
	copy(h.Addr3[:], b[16:22])
	seqCtl := binary.LittleEndian.Uint16(b[22:24])
	h.Sequence = seqCtl >> 4
	h.Fragment = uint8(seqCtl & 0xf)
	return nil
}

// Frame is one decoded 802.11 MAC frame. Concrete types are the *Beacon,
// *ProbeReq, ... types in this package.
type Frame interface {
	// Kind reports the frame's type/subtype.
	Kind() Kind
	// RA reports the receiver address.
	RA() MAC
	// TA reports the transmitter address (zero for CTS/ACK which carry
	// none).
	TA() MAC
	// AppendTo serializes the frame (without FCS) onto dst.
	AppendTo(dst []byte) ([]byte, error)
	// DecodeFromBytes parses the frame (without FCS) from b, overwriting
	// the receiver and reusing its element capacity. Decoded slices
	// alias b.
	DecodeFromBytes(b []byte) error
}

// FCS computes the IEEE CRC-32 frame check sequence over b.
func FCS(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// AppendMarshal serializes f onto dst and appends the FCS, producing the
// on-air MPDU after whatever dst already holds. Passing a reused scratch
// buffer (typically scratch[:0]) makes repeated marshals allocation-free
// once the buffer has grown to frame size. The FCS covers only the bytes
// appended by this call, so frames can be batched back to back in one
// buffer.
func AppendMarshal(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	b, err := f.AppendTo(dst)
	if err != nil {
		return dst, err
	}
	return binary.LittleEndian.AppendUint32(b, FCS(b[start:])), nil
}

// Marshal serializes f and appends the FCS, producing the on-air MPDU in
// a fresh buffer.
func Marshal(f Frame) ([]byte, error) {
	return AppendMarshal(nil, f)
}

// ErrFCS is returned by Decode when the frame check sequence does not
// match — in the simulation this is how collision-corrupted frames die at
// the receiver.
type ErrFCS struct {
	Want, Got uint32
}

func (e *ErrFCS) Error() string {
	return fmt.Sprintf("dot11: FCS mismatch: frame carries %08x, computed %08x", e.Want, e.Got)
}

// Decode parses an on-air MPDU (with trailing FCS), verifying the FCS and
// dispatching on type/subtype. It returns one of the concrete frame types.
func Decode(b []byte) (Frame, error) {
	if len(b) < 2+fcsLen {
		return nil, fmt.Errorf("%w: MPDU needs >=%d bytes, have %d", errTruncated, 2+fcsLen, len(b))
	}
	body, trailer := b[:len(b)-fcsLen], b[len(b)-fcsLen:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := FCS(body); got != want {
		return nil, &ErrFCS{Want: want, Got: got}
	}
	return DecodeNoFCS(body)
}

// DecodeNoFCS parses a frame that has already had its FCS stripped (or
// never had one, e.g. frames read from a pcap written without FCS).
func DecodeNoFCS(b []byte) (Frame, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: need frame control, have %d bytes", errTruncated, len(b))
	}
	fc := ParseFrameControl(binary.LittleEndian.Uint16(b))
	f, err := getFrame(fc.Kind())
	if err != nil {
		return nil, err
	}
	if err := f.DecodeFromBytes(b); err != nil {
		Release(f)
		return nil, err
	}
	return f, nil
}

// framePools recycles decoded frame values per kind. Decoding is the
// per-reception hot path the parallel experiment engine multiplies across
// workers; recycling the frame struct (and, for management frames, its
// Elements backing array) keeps the receive path's steady-state
// allocation at zero. The pools only fill through Release, so call sites
// that never release see exactly the old allocate-per-decode behavior.
var framePools [3][16]sync.Pool

// getFrame returns a recycled frame of the right concrete type, or a
// fresh one when the pool is empty.
func getFrame(k Kind) (Frame, error) {
	if int(k.Type) < len(framePools) && int(k.Subtype) < len(framePools[0]) {
		if v := framePools[k.Type][k.Subtype].Get(); v != nil {
			return v.(Frame), nil
		}
	}
	return newFrame(k)
}

// Release returns a frame obtained from Decode/DecodeNoFCS to the decode
// pool. Callers may only release frames they are provably done with:
// after Release neither the frame nor anything aliasing it (Elements,
// payload slices) may be touched, because the next Decode of the same
// kind will overwrite them in place. Releasing nil is a no-op. Frames
// handed to user callbacks or retained in state machines must never be
// released.
func Release(f Frame) {
	if f == nil {
		return
	}
	k := f.Kind()
	if int(k.Type) >= len(framePools) || int(k.Subtype) >= len(framePools[0]) {
		return
	}
	framePools[k.Type][k.Subtype].Put(f)
}

func newFrame(k Kind) (Frame, error) {
	switch k {
	case Kind{TypeManagement, SubtypeBeacon}:
		return &Beacon{}, nil
	case Kind{TypeManagement, SubtypeProbeReq}:
		return &ProbeReq{}, nil
	case Kind{TypeManagement, SubtypeProbeResp}:
		return &ProbeResp{}, nil
	case Kind{TypeManagement, SubtypeAuth}:
		return &Auth{}, nil
	case Kind{TypeManagement, SubtypeAssocReq}:
		return &AssocReq{}, nil
	case Kind{TypeManagement, SubtypeAssocResp}:
		return &AssocResp{}, nil
	case Kind{TypeManagement, SubtypeDeauth}:
		return &Deauth{}, nil
	case Kind{TypeManagement, SubtypeDisassoc}:
		return &Disassoc{}, nil
	case Kind{TypeManagement, SubtypeAction}:
		return &Action{}, nil
	case Kind{TypeControl, SubtypeACK}:
		return &ACK{}, nil
	case Kind{TypeControl, SubtypeRTS}:
		return &RTS{}, nil
	case Kind{TypeControl, SubtypeCTS}:
		return &CTS{}, nil
	case Kind{TypeControl, SubtypePSPoll}:
		return &PSPoll{}, nil
	case Kind{TypeData, SubtypeData}, Kind{TypeData, SubtypeQoSData},
		Kind{TypeData, SubtypeNull}, Kind{TypeData, SubtypeQoSNull}:
		return &Data{}, nil
	}
	return nil, fmt.Errorf("dot11: unsupported frame kind %v", k)
}
