package dot11

import (
	"encoding/binary"
	"fmt"
)

// Control frames carry abbreviated headers: ACK and CTS are 10 bytes
// (FC, duration, RA); RTS and PS-Poll are 16 bytes (… plus TA/BSSID).

// ACK acknowledges a unicast frame SIFS after its reception. The join
// sequence in §3.1 is dominated by these: every management frame in the
// exchange costs an extra ACK on the air.
type ACK struct {
	FC         FrameControl
	DurationID uint16
	Receiver   MAC
}

// Kind implements Frame.
func (*ACK) Kind() Kind { return Kind{TypeControl, SubtypeACK} }

// RA implements Frame.
func (f *ACK) RA() MAC { return f.Receiver }

// TA implements Frame. ACK frames carry no transmitter address.
func (f *ACK) TA() MAC { return MAC{} }

// AppendTo implements Frame.
func (f *ACK) AppendTo(dst []byte) ([]byte, error) {
	f.FC.Type, f.FC.Subtype = TypeControl, SubtypeACK
	dst = binary.LittleEndian.AppendUint16(dst, f.FC.Uint16())
	dst = binary.LittleEndian.AppendUint16(dst, f.DurationID)
	return append(dst, f.Receiver[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *ACK) DecodeFromBytes(b []byte) error {
	if len(b) < 10 {
		return fmt.Errorf("%w: ACK needs 10 bytes, have %d", errTruncated, len(b))
	}
	f.FC = ParseFrameControl(binary.LittleEndian.Uint16(b))
	f.DurationID = binary.LittleEndian.Uint16(b[2:])
	copy(f.Receiver[:], b[4:10])
	return nil
}

// NewACK acknowledges the given frame.
func NewACK(to MAC) *ACK { return &ACK{Receiver: to} }

// CTS clears a transmitter after an RTS (or protects a TXOP as CTS-to-self).
type CTS struct {
	FC         FrameControl
	DurationID uint16
	Receiver   MAC
}

// Kind implements Frame.
func (*CTS) Kind() Kind { return Kind{TypeControl, SubtypeCTS} }

// RA implements Frame.
func (f *CTS) RA() MAC { return f.Receiver }

// TA implements Frame.
func (f *CTS) TA() MAC { return MAC{} }

// AppendTo implements Frame.
func (f *CTS) AppendTo(dst []byte) ([]byte, error) {
	f.FC.Type, f.FC.Subtype = TypeControl, SubtypeCTS
	dst = binary.LittleEndian.AppendUint16(dst, f.FC.Uint16())
	dst = binary.LittleEndian.AppendUint16(dst, f.DurationID)
	return append(dst, f.Receiver[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *CTS) DecodeFromBytes(b []byte) error {
	if len(b) < 10 {
		return fmt.Errorf("%w: CTS needs 10 bytes, have %d", errTruncated, len(b))
	}
	f.FC = ParseFrameControl(binary.LittleEndian.Uint16(b))
	f.DurationID = binary.LittleEndian.Uint16(b[2:])
	copy(f.Receiver[:], b[4:10])
	return nil
}

// RTS reserves the medium for a long exchange.
type RTS struct {
	FC          FrameControl
	DurationID  uint16
	Receiver    MAC
	Transmitter MAC
}

// Kind implements Frame.
func (*RTS) Kind() Kind { return Kind{TypeControl, SubtypeRTS} }

// RA implements Frame.
func (f *RTS) RA() MAC { return f.Receiver }

// TA implements Frame.
func (f *RTS) TA() MAC { return f.Transmitter }

// AppendTo implements Frame.
func (f *RTS) AppendTo(dst []byte) ([]byte, error) {
	f.FC.Type, f.FC.Subtype = TypeControl, SubtypeRTS
	dst = binary.LittleEndian.AppendUint16(dst, f.FC.Uint16())
	dst = binary.LittleEndian.AppendUint16(dst, f.DurationID)
	dst = append(dst, f.Receiver[:]...)
	return append(dst, f.Transmitter[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *RTS) DecodeFromBytes(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("%w: RTS needs 16 bytes, have %d", errTruncated, len(b))
	}
	f.FC = ParseFrameControl(binary.LittleEndian.Uint16(b))
	f.DurationID = binary.LittleEndian.Uint16(b[2:])
	copy(f.Receiver[:], b[4:10])
	copy(f.Transmitter[:], b[10:16])
	return nil
}

// PSPoll is the frame a dozing station sends to retrieve one buffered
// frame after seeing its AID in the TIM. Its duration field carries the
// AID (with the two top bits set) rather than a NAV value.
type PSPoll struct {
	FC          FrameControl
	AID         uint16
	BSSID       MAC
	Transmitter MAC
}

// Kind implements Frame.
func (*PSPoll) Kind() Kind { return Kind{TypeControl, SubtypePSPoll} }

// RA implements Frame.
func (f *PSPoll) RA() MAC { return f.BSSID }

// TA implements Frame.
func (f *PSPoll) TA() MAC { return f.Transmitter }

// AppendTo implements Frame.
func (f *PSPoll) AppendTo(dst []byte) ([]byte, error) {
	f.FC.Type, f.FC.Subtype = TypeControl, SubtypePSPoll
	dst = binary.LittleEndian.AppendUint16(dst, f.FC.Uint16())
	dst = binary.LittleEndian.AppendUint16(dst, f.AID|0xc000)
	dst = append(dst, f.BSSID[:]...)
	return append(dst, f.Transmitter[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *PSPoll) DecodeFromBytes(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("%w: PS-Poll needs 16 bytes, have %d", errTruncated, len(b))
	}
	f.FC = ParseFrameControl(binary.LittleEndian.Uint16(b))
	f.AID = binary.LittleEndian.Uint16(b[2:]) &^ 0xc000
	copy(f.BSSID[:], b[4:10])
	copy(f.Transmitter[:], b[10:16])
	return nil
}
