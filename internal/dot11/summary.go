package dot11

import (
	"fmt"
	"strings"
)

// Summarize renders a one-line, tcpdump-style description of a frame —
// the display layer for cmd/wile-dump and debugging.
func Summarize(f Frame) string {
	switch t := f.(type) {
	case *Beacon:
		ssid, hidden, ok := t.Elements.SSID()
		name := "<no ssid>"
		switch {
		case hidden:
			name = "<hidden>"
		case ok:
			name = fmt.Sprintf("%q", ssid)
		}
		extra := ""
		if _, found := t.Elements.Find(ElementVendor); found {
			extra = fmt.Sprintf(", %d vendor element(s)", countVendor(t.Elements))
		}
		return fmt.Sprintf("beacon %v ssid %s interval %d TU%s", t.BSSID(), name, t.Interval, extra)
	case *ProbeReq:
		ssid, hidden, ok := t.Elements.SSID()
		target := "wildcard"
		if ok && !hidden && ssid != "" {
			target = fmt.Sprintf("%q", ssid)
		}
		return fmt.Sprintf("probe-req %v → %s", t.TA(), target)
	case *ProbeResp:
		ssid, _, _ := t.Elements.SSID()
		return fmt.Sprintf("probe-resp %v → %v ssid %q", t.TA(), t.RA(), ssid)
	case *Auth:
		return fmt.Sprintf("auth %v → %v alg %d seq %d status %d", t.TA(), t.RA(), t.Algorithm, t.Seq, t.Status)
	case *AssocReq:
		return fmt.Sprintf("assoc-req %v → %v listen-interval %d", t.TA(), t.RA(), t.ListenInterval)
	case *AssocResp:
		return fmt.Sprintf("assoc-resp %v → %v status %d aid %d", t.TA(), t.RA(), t.Status, t.AID)
	case *Deauth:
		return fmt.Sprintf("deauth %v → %v reason %d", t.TA(), t.RA(), t.Reason)
	case *Disassoc:
		return fmt.Sprintf("disassoc %v → %v reason %d", t.TA(), t.RA(), t.Reason)
	case *Action:
		return fmt.Sprintf("action %v → %v category %d (%d B)", t.TA(), t.RA(), t.Category, len(t.Body))
	case *ACK:
		return fmt.Sprintf("ack → %v", t.RA())
	case *CTS:
		return fmt.Sprintf("cts → %v dur %dµs", t.RA(), t.DurationID)
	case *RTS:
		return fmt.Sprintf("rts %v → %v dur %dµs", t.TA(), t.RA(), t.DurationID)
	case *PSPoll:
		return fmt.Sprintf("ps-poll %v → %v aid %d", t.TA(), t.RA(), t.AID)
	case *Data:
		var flags []string
		if t.Header.FC.ToDS {
			flags = append(flags, "to-ds")
		}
		if t.Header.FC.FromDS {
			flags = append(flags, "from-ds")
		}
		if t.Header.FC.Protected {
			flags = append(flags, "protected")
		}
		if t.Header.FC.PwrMgmt {
			flags = append(flags, "pwr-mgmt")
		}
		if t.Header.FC.MoreData {
			flags = append(flags, "more-data")
		}
		if t.Header.FC.Retry {
			flags = append(flags, "retry")
		}
		kind := t.Kind().String()
		fl := ""
		if len(flags) > 0 {
			fl = " [" + strings.Join(flags, ",") + "]"
		}
		return fmt.Sprintf("%s %v → %v (%d B)%s", kind, t.SA(), t.DA(), len(t.Payload), fl)
	}
	return fmt.Sprintf("%v %v → %v", f.Kind(), f.TA(), f.RA())
}

func countVendor(els Elements) int {
	n := 0
	for _, e := range els {
		if e.ID == ElementVendor {
			n++
		}
	}
	return n
}
