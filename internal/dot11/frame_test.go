package dot11

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

var (
	apMAC  = MustParseMAC("aa:bb:cc:00:00:01")
	staMAC = MustParseMAC("de:ad:be:ef:00:02")
)

// roundTrip marshals f with FCS, decodes it back, and returns the decoded
// frame, failing the test on any error.
func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	raw, err := Marshal(f)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", f.Kind(), err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode(%v): %v", f.Kind(), err)
	}
	if got.Kind() != f.Kind() {
		t.Fatalf("kind changed: sent %v, got %v", f.Kind(), got.Kind())
	}
	return got
}

func TestFrameControlRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		return ParseFrameControl(v).Uint16() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameControlBits(t *testing.T) {
	fc := FrameControl{Type: TypeData, Subtype: SubtypeQoSData, ToDS: true, PwrMgmt: true}
	v := fc.Uint16()
	if v&(1<<8) == 0 || v&(1<<12) == 0 {
		t.Fatalf("ToDS/PwrMgmt bits not set in %04x", v)
	}
	back := ParseFrameControl(v)
	if back != fc {
		t.Fatalf("round trip: %+v != %+v", back, fc)
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	ve, err := VendorElement([3]byte{0x57, 0x49, 0x4c}, []byte("temp=17.5C"))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBeacon(apMAC, 100, CapESS|CapPrivacy, Elements{
		SSIDElement("lab-net"),
		DefaultRates(),
		DSParamElement(6),
		ve,
	})
	b.Timestamp = 0x0123456789abcdef
	b.Header.Sequence = 1234
	got := roundTrip(t, b).(*Beacon)
	if got.Timestamp != b.Timestamp || got.Interval != 100 {
		t.Errorf("fixed fields: %+v", got)
	}
	if got.Capability != CapESS|CapPrivacy {
		t.Errorf("capability = %04x", got.Capability)
	}
	if got.BSSID() != apMAC || !got.RA().IsBroadcast() {
		t.Errorf("addressing: bssid=%v ra=%v", got.BSSID(), got.RA())
	}
	if got.Header.Sequence != 1234 {
		t.Errorf("sequence = %d", got.Header.Sequence)
	}
	ssid, hidden, ok := got.Elements.SSID()
	if !ok || hidden || ssid != "lab-net" {
		t.Errorf("SSID = %q hidden=%v ok=%v", ssid, hidden, ok)
	}
	if ch, ok := got.Elements.DSChannel(); !ok || ch != 6 {
		t.Errorf("channel = %d ok=%v", ch, ok)
	}
	data, ok := got.Elements.Vendor([3]byte{0x57, 0x49, 0x4c})
	if !ok || string(data) != "temp=17.5C" {
		t.Errorf("vendor data = %q ok=%v", data, ok)
	}
}

func TestHiddenSSIDForms(t *testing.T) {
	// Zero-length form.
	b := NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement("")})
	got := roundTrip(t, b).(*Beacon)
	if _, hidden, ok := got.Elements.SSID(); !ok || !hidden {
		t.Error("zero-length SSID not reported hidden")
	}
	// Nulled-out form (length preserved, all zero bytes).
	b2 := NewBeacon(apMAC, 100, CapESS, Elements{{ID: ElementSSID, Info: make([]byte, 8)}})
	got2 := roundTrip(t, b2).(*Beacon)
	if _, hidden, ok := got2.Elements.SSID(); !ok || !hidden {
		t.Error("nulled SSID not reported hidden")
	}
	// Missing SSID element entirely.
	b3 := NewBeacon(apMAC, 100, CapESS, nil)
	got3 := roundTrip(t, b3).(*Beacon)
	if _, _, ok := got3.Elements.SSID(); ok {
		t.Error("absent SSID reported present")
	}
}

func TestProbeReqRoundTrip(t *testing.T) {
	p := &ProbeReq{Elements: Elements{SSIDElement("lab-net"), DefaultRates()}}
	p.Header.Addr1 = Broadcast
	p.Header.Addr2 = staMAC
	p.Header.Addr3 = Broadcast
	got := roundTrip(t, p).(*ProbeReq)
	if got.TA() != staMAC {
		t.Errorf("TA = %v", got.TA())
	}
	if ssid, _, _ := got.Elements.SSID(); ssid != "lab-net" {
		t.Errorf("SSID = %q", ssid)
	}
}

func TestProbeRespRoundTrip(t *testing.T) {
	p := &ProbeResp{Timestamp: 42, Interval: 100, Capability: CapESS,
		Elements: Elements{SSIDElement("lab-net"), RSNElement(DefaultRSN())}}
	p.Header.Addr1 = staMAC
	p.Header.Addr2 = apMAC
	p.Header.Addr3 = apMAC
	got := roundTrip(t, p).(*ProbeResp)
	if got.Timestamp != 42 || got.Interval != 100 {
		t.Errorf("fixed fields: %+v", got)
	}
	info, ok := got.Elements.Find(ElementRSN)
	if !ok {
		t.Fatal("RSN element missing")
	}
	rsn, err := ParseRSN(info)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rsn, DefaultRSN()) {
		t.Errorf("RSN = %+v", rsn)
	}
}

func TestAuthRoundTrip(t *testing.T) {
	a := &Auth{Algorithm: AuthOpen, Seq: 2, Status: StatusSuccess}
	a.Header.Addr1 = staMAC
	a.Header.Addr2 = apMAC
	a.Header.Addr3 = apMAC
	got := roundTrip(t, a).(*Auth)
	if got.Algorithm != AuthOpen || got.Seq != 2 || got.Status != StatusSuccess {
		t.Errorf("auth fields: %+v", got)
	}
}

func TestAssocRoundTrip(t *testing.T) {
	req := &AssocReq{Capability: CapESS | CapPrivacy, ListenInterval: 3,
		Elements: Elements{SSIDElement("lab-net"), DefaultRates(), RSNElement(DefaultRSN())}}
	req.Header.Addr1 = apMAC
	req.Header.Addr2 = staMAC
	req.Header.Addr3 = apMAC
	gotReq := roundTrip(t, req).(*AssocReq)
	if gotReq.ListenInterval != 3 {
		t.Errorf("listen interval = %d", gotReq.ListenInterval)
	}

	resp := &AssocResp{Capability: CapESS, Status: StatusSuccess, AID: 7}
	resp.Header.Addr1 = staMAC
	resp.Header.Addr2 = apMAC
	resp.Header.Addr3 = apMAC
	gotResp := roundTrip(t, resp).(*AssocResp)
	if gotResp.AID != 7 {
		t.Errorf("AID = %d, want 7 (with 0xc000 masked off)", gotResp.AID)
	}
}

func TestAssocRespAIDHighBitsOnWire(t *testing.T) {
	resp := &AssocResp{Status: StatusSuccess, AID: 1}
	raw, err := resp.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	aid := binary.LittleEndian.Uint16(raw[mgmtHeaderLen+4:])
	if aid != 1|0xc000 {
		t.Fatalf("wire AID = %04x, want c001", aid)
	}
}

func TestDeauthDisassocRoundTrip(t *testing.T) {
	d := &Deauth{Reason: ReasonLeaving}
	d.Header.Addr1 = apMAC
	d.Header.Addr2 = staMAC
	if got := roundTrip(t, d).(*Deauth); got.Reason != ReasonLeaving {
		t.Errorf("deauth reason = %d", got.Reason)
	}
	di := &Disassoc{Reason: ReasonDisassocLeaving}
	di.Header.Addr1 = apMAC
	di.Header.Addr2 = staMAC
	if got := roundTrip(t, di).(*Disassoc); got.Reason != ReasonDisassocLeaving {
		t.Errorf("disassoc reason = %d", got.Reason)
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	ack := roundTrip(t, NewACK(staMAC)).(*ACK)
	if ack.Receiver != staMAC {
		t.Errorf("ACK RA = %v", ack.Receiver)
	}
	cts := roundTrip(t, &CTS{DurationID: 300, Receiver: staMAC}).(*CTS)
	if cts.DurationID != 300 {
		t.Errorf("CTS duration = %d", cts.DurationID)
	}
	rts := roundTrip(t, &RTS{DurationID: 500, Receiver: apMAC, Transmitter: staMAC}).(*RTS)
	if rts.Transmitter != staMAC || rts.Receiver != apMAC {
		t.Errorf("RTS addrs = %v %v", rts.Receiver, rts.Transmitter)
	}
	ps := roundTrip(t, &PSPoll{AID: 7, BSSID: apMAC, Transmitter: staMAC}).(*PSPoll)
	if ps.AID != 7 {
		t.Errorf("PS-Poll AID = %d", ps.AID)
	}
}

func TestACKWireFormatIs10Bytes(t *testing.T) {
	raw, err := NewACK(staMAC).AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 10 {
		t.Fatalf("ACK is %d bytes on the wire, want 10", len(raw))
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	payload := []byte{0xaa, 0xaa, 0x03, 0, 0, 0, 0x08, 0x00, 1, 2, 3}
	d := NewDataToAP(apMAC, staMAC, MustParseMAC("ff:ff:ff:ff:ff:ff"), payload)
	got := roundTrip(t, d).(*Data)
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload = %x", got.Payload)
	}
	if got.SA() != staMAC {
		t.Errorf("SA = %v", got.SA())
	}
	if !got.DA().IsBroadcast() {
		t.Errorf("DA = %v", got.DA())
	}

	down := NewDataFromAP(apMAC, staMAC, MustParseMAC("00:00:00:00:00:99"), payload)
	gotDown := roundTrip(t, down).(*Data)
	if gotDown.DA() != staMAC {
		t.Errorf("downlink DA = %v", gotDown.DA())
	}
	if gotDown.SA() != MustParseMAC("00:00:00:00:00:99") {
		t.Errorf("downlink SA = %v", gotDown.SA())
	}
}

func TestNullFrameRoundTrip(t *testing.T) {
	n := NewNull(apMAC, staMAC, true)
	got := roundTrip(t, n).(*Data)
	if !got.Header.FC.PwrMgmt {
		t.Error("power-management bit lost")
	}
	if got.Payload != nil {
		t.Errorf("null frame grew a payload: %x", got.Payload)
	}
	if got.Kind().Subtype != SubtypeNull {
		t.Errorf("subtype = %v", got.Kind())
	}
}

func TestQoSDataRoundTrip(t *testing.T) {
	d := &Data{
		Header: Header{
			FC:    FrameControl{Type: TypeData, Subtype: SubtypeQoSData, ToDS: true},
			Addr1: apMAC, Addr2: staMAC, Addr3: apMAC,
		},
		QoS:     0x0005,
		Payload: []byte("hello"),
	}
	got := roundTrip(t, d).(*Data)
	if got.QoS != 0x0005 {
		t.Errorf("QoS = %04x", got.QoS)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestNullWithPayloadRejected(t *testing.T) {
	n := NewNull(apMAC, staMAC, false)
	n.Payload = []byte{1}
	if _, err := n.AppendTo(nil); err == nil {
		t.Fatal("null frame with payload serialized")
	}
}

func TestWDSFramesRejected(t *testing.T) {
	d := NewDataToAP(apMAC, staMAC, apMAC, nil)
	d.Header.FC.FromDS = true
	if _, err := Marshal(d); err == nil {
		t.Fatal("four-address frame serialized")
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	raw, err := Marshal(NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement("x")}))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 5, len(raw) / 2, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		} else {
			var fcsErr *ErrFCS
			if !errors.As(err, &fcsErr) {
				t.Fatalf("corruption at byte %d: got %v, want *ErrFCS", i, err)
			}
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	raw, err := Marshal(NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement("x")}))
	if err != nil {
		t.Fatal(err)
	}
	// Every prefix must fail cleanly — either a truncation error or, for
	// the rare prefix where the CRC happens to be checked first, an FCS
	// error. Never a panic.
	for n := 0; n < len(raw); n++ {
		if _, err := Decode(raw[:n]); err == nil {
			t.Fatalf("decoding %d-byte prefix succeeded", n)
		}
	}
}

func TestErrTruncatedHelper(t *testing.T) {
	_, err := DecodeNoFCS([]byte{0x80}) // one byte: not even frame control
	if !ErrTruncated(err) {
		t.Fatalf("err = %v, want truncated", err)
	}
}

func TestDecodeUnsupportedKind(t *testing.T) {
	// ATIM (mgmt subtype 9) is not implemented; must error, not panic.
	fc := FrameControl{Type: TypeManagement, Subtype: SubtypeATIM}
	raw := binary.LittleEndian.AppendUint16(nil, fc.Uint16())
	raw = append(raw, make([]byte, 30)...)
	if _, err := DecodeNoFCS(raw); err == nil {
		t.Fatal("unsupported subtype decoded")
	}
}

func TestSequenceNumberLimits(t *testing.T) {
	b := NewBeacon(apMAC, 100, CapESS, nil)
	b.Header.Sequence = 4095 // max 12-bit value
	b.Header.Fragment = 15   // max 4-bit value
	got := roundTrip(t, b).(*Beacon)
	if got.Header.Sequence != 4095 || got.Header.Fragment != 15 {
		t.Fatalf("seq/frag = %d/%d", got.Header.Sequence, got.Header.Fragment)
	}
}

// Property: any beacon with random vendor payload round-trips exactly.
func TestPropertyBeaconVendorRoundTrip(t *testing.T) {
	oui := [3]byte{0x57, 0x49, 0x4c}
	f := func(payload []byte, seq uint16, ts uint64) bool {
		if len(payload) > MaxVendorData {
			payload = payload[:MaxVendorData]
		}
		ve, err := VendorElement(oui, payload)
		if err != nil {
			return false
		}
		b := NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement(""), ve})
		b.Header.Sequence = seq % 4096
		b.Timestamp = ts
		raw, err := Marshal(b)
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		gb, ok := got.(*Beacon)
		if !ok || gb.Timestamp != ts {
			return false
		}
		data, ok := gb.Elements.Vendor(oui)
		return ok && bytes.Equal(data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte soup never panics the decoder.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(b)
		DecodeNoFCS(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalAllocFree(t *testing.T) {
	// The steady-state encode path appends into a caller buffer; with a
	// warm buffer the per-frame allocation count must be zero, matching
	// the paper's "pre-computed frame template" transmit path.
	b := NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement("")})
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		var err error
		buf, err = b.AppendTo(buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendTo allocates %v times per frame, want 0", allocs)
	}
}

func BenchmarkBeaconAppendTo(b *testing.B) {
	ve, _ := VendorElement([3]byte{0x57, 0x49, 0x4c}, make([]byte, 64))
	f := NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement(""), ve})
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = f.AppendTo(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeaconDecode(b *testing.B) {
	ve, _ := VendorElement([3]byte{0x57, 0x49, 0x4c}, make([]byte, 64))
	raw, err := Marshal(NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement(""), ve}))
	if err != nil {
		b.Fatal(err)
	}
	var bea Beacon
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bea.DecodeFromBytes(raw[:len(raw)-4]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSummarizeAllFrameKinds(t *testing.T) {
	ve, _ := VendorElement([3]byte{0x52, 0x49, 0x4c}, []byte{1})
	frames := []struct {
		f    Frame
		want string
	}{
		{NewBeacon(apMAC, 100, CapESS, Elements{SSIDElement("net")}), `ssid "net"`},
		{NewBeacon(apMAC, 100, 0, Elements{SSIDElement(""), ve}), "<hidden>"},
		{&ProbeReq{Elements: Elements{SSIDElement("")}}, "wildcard"},
		{&ProbeResp{Elements: Elements{SSIDElement("x")}}, "probe-resp"},
		{&Auth{Seq: 1}, "auth"},
		{&AssocReq{ListenInterval: 3}, "listen-interval 3"},
		{&AssocResp{AID: 7}, "aid 7"},
		{&Deauth{Reason: 3}, "reason 3"},
		{&Disassoc{Reason: 8}, "reason 8"},
		{NewACK(staMAC), "ack"},
		{&CTS{DurationID: 44}, "cts"},
		{&RTS{DurationID: 44}, "rts"},
		{&PSPoll{AID: 2}, "aid 2"},
		{NewDataToAP(apMAC, staMAC, apMAC, []byte("xy")), "to-ds"},
		{NewNull(apMAC, staMAC, true), "pwr-mgmt"},
	}
	for _, c := range frames {
		got := Summarize(c.f)
		if got == "" || !strings.Contains(got, c.want) {
			t.Errorf("Summarize(%v) = %q, want substring %q", c.f.Kind(), got, c.want)
		}
	}
	// Protected flag shows.
	d := NewDataToAP(apMAC, staMAC, apMAC, []byte{1, 2, 3})
	d.Header.FC.Protected = true
	if !strings.Contains(Summarize(d), "protected") {
		t.Error("protected flag not summarized")
	}
}

func TestActionFrameRoundTrip(t *testing.T) {
	a := NewVendorAction(staMAC, [3]byte{0x52, 0x49, 0x4c}, []byte("payload-bytes"))
	got := roundTrip(t, a).(*Action)
	if got.Category != CategoryVendorSpecific {
		t.Fatalf("category %d", got.Category)
	}
	if got.OUI != a.OUI || string(got.Body) != "payload-bytes" {
		t.Fatalf("round trip: %+v", got)
	}
	if !got.RA().IsBroadcast() || got.TA() != staMAC {
		t.Fatalf("addressing: %v %v", got.RA(), got.TA())
	}
	if s := Summarize(got); !strings.Contains(s, "category 127") {
		t.Fatalf("summary %q", s)
	}
}

func TestActionFrameTruncated(t *testing.T) {
	a := NewVendorAction(staMAC, [3]byte{1, 2, 3}, []byte{9})
	raw, err := a.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{mgmtHeaderLen, mgmtHeaderLen + 2} {
		var back Action
		if err := back.DecodeFromBytes(raw[:n]); err == nil {
			t.Errorf("%d-byte action decoded", n)
		}
	}
	// Non-vendor category has no OUI.
	b := &Action{Category: 4 /* public */, Body: []byte{1, 2}}
	b.Header.Addr1 = Broadcast
	b.Header.Addr2 = staMAC
	got := roundTrip(t, b).(*Action)
	if got.Category != 4 || len(got.Body) != 2 {
		t.Fatalf("public action: %+v", got)
	}
}
