package dot11

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Information elements (IEEE 802.11-2016 §9.4.2): the TLV list at the tail
// of management frames. Wi-LE lives inside one of these — the
// vendor-specific element (ID 221) of an injected beacon, which "can be up
// to 253 bytes and does not have any specific format".

// ElementID identifies an information element.
type ElementID uint8

// Element IDs used by this codec.
const (
	ElementSSID           ElementID = 0
	ElementSupportedRates ElementID = 1
	ElementDSParam        ElementID = 3
	ElementTIM            ElementID = 5
	ElementCountry        ElementID = 7
	ElementERP            ElementID = 42
	ElementHTCapabilities ElementID = 45
	ElementRSN            ElementID = 48
	ElementExtRates       ElementID = 50
	ElementHTOperation    ElementID = 61
	ElementVendor         ElementID = 221
)

// MaxElementLen is the longest information field one element can carry.
const MaxElementLen = 255

// MaxVendorData is the longest vendor-specific payload after the 3-byte
// OUI: 255 - 3 = 252 bytes. (The paper quotes the beacon-stuffing figure of
// 253 bytes, which counts the OUI subtype octet differently; with our
// 3-byte OUI + 1 subtype octet the application payload is 251 bytes.)
const MaxVendorData = MaxElementLen - 3

// Element is a raw information element.
type Element struct {
	ID   ElementID
	Info []byte
}

// Elements is an ordered element list with typed accessors.
type Elements []Element

// AppendElement appends one TLV to dst.
func AppendElement(dst []byte, id ElementID, info []byte) ([]byte, error) {
	if len(info) > MaxElementLen {
		return dst, fmt.Errorf("dot11: element %d info too long: %d > %d", id, len(info), MaxElementLen)
	}
	dst = append(dst, byte(id), byte(len(info)))
	return append(dst, info...), nil
}

// Append serializes the whole list onto dst.
func (es Elements) Append(dst []byte) ([]byte, error) {
	var err error
	for _, e := range es {
		if dst, err = AppendElement(dst, e.ID, e.Info); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// ParseElements decodes a TLV list. The returned elements alias b, in the
// gopacket NoCopy style; callers that retain them past the buffer's
// lifetime must copy.
func ParseElements(b []byte) (Elements, error) {
	return ParseElementsInto(nil, b)
}

// ParseElementsInto decodes a TLV list appending onto es, reusing its
// capacity. Decode passes a recycled frame's Elements sliced to zero
// length, which makes steady-state element parsing allocation-free; the
// parsed elements alias b exactly as with ParseElements. On error es is
// returned unchanged so the caller's slice stays valid.
func ParseElementsInto(es Elements, b []byte) (Elements, error) {
	out := es
	for len(b) > 0 {
		if len(b) < 2 {
			return es, fmt.Errorf("%w: element header needs 2 bytes, have %d", errTruncated, len(b))
		}
		id, n := ElementID(b[0]), int(b[1])
		if len(b) < 2+n {
			return es, fmt.Errorf("%w: element %d claims %d info bytes, have %d", errTruncated, id, n, len(b)-2)
		}
		out = append(out, Element{ID: id, Info: b[2 : 2+n]})
		b = b[2+n:]
	}
	return out, nil
}

// Find returns the first element with the given ID.
func (es Elements) Find(id ElementID) ([]byte, bool) {
	for _, e := range es {
		if e.ID == id {
			return e.Info, true
		}
	}
	return nil, false
}

// SSID returns the network name. A zero-length SSID element is the "hidden
// SSID" (wildcard) form — present but empty — which is exactly how Wi-LE
// keeps injected beacons out of AP pickers. hidden is true in that case.
func (es Elements) SSID() (ssid string, hidden, ok bool) {
	info, ok := es.Find(ElementSSID)
	if !ok {
		return "", false, false
	}
	if len(info) == 0 {
		return "", true, true
	}
	// A nulled-out SSID (all zero bytes) is the other common hidden form.
	allZero := true
	for _, c := range info {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return "", true, true
	}
	return string(info), false, true
}

// DSChannel returns the 2.4 GHz channel from the DS parameter set.
func (es Elements) DSChannel() (int, bool) {
	info, ok := es.Find(ElementDSParam)
	if !ok || len(info) != 1 {
		return 0, false
	}
	return int(info[0]), true
}

// Vendor returns the data of the first vendor-specific element with the
// given OUI, with the OUI stripped.
func (es Elements) Vendor(oui [3]byte) ([]byte, bool) {
	for _, e := range es {
		if e.ID == ElementVendor && len(e.Info) >= 3 && bytes.Equal(e.Info[:3], oui[:]) {
			return e.Info[3:], true
		}
	}
	return nil, false
}

// Vendors returns the data of every vendor-specific element with the given
// OUI, in order. Wi-LE fragments payloads larger than one element across
// several vendor elements of the same beacon.
func (es Elements) Vendors(oui [3]byte) [][]byte {
	var out [][]byte
	for _, e := range es {
		if e.ID == ElementVendor && len(e.Info) >= 3 && bytes.Equal(e.Info[:3], oui[:]) {
			out = append(out, e.Info[3:])
		}
	}
	return out
}

// --- Element builders ---

// SSIDElement builds an SSID element; an empty string builds the hidden
// (zero-length) form.
func SSIDElement(ssid string) Element {
	return Element{ID: ElementSSID, Info: []byte(ssid)}
}

// RatesElement builds the supported-rates element from rates in units of
// 500 kb/s; basic rates have the high bit set by the caller.
func RatesElement(rates ...byte) Element {
	return Element{ID: ElementSupportedRates, Info: rates}
}

// DefaultRates is a typical b/g basic-rate set: 1, 2, 5.5, 11 Mb/s basic
// plus 6–54 Mb/s.
func DefaultRates() Element {
	return RatesElement(0x82, 0x84, 0x8b, 0x96, 0x0c, 0x12, 0x18, 0x24)
}

// DSParamElement builds the DS parameter set (current channel).
func DSParamElement(channel int) Element {
	return Element{ID: ElementDSParam, Info: []byte{byte(channel)}}
}

// VendorElement builds a vendor-specific element.
func VendorElement(oui [3]byte, data []byte) (Element, error) {
	if len(data) > MaxVendorData {
		return Element{}, fmt.Errorf("dot11: vendor data too long: %d > %d", len(data), MaxVendorData)
	}
	info := make([]byte, 0, 3+len(data))
	info = append(info, oui[:]...)
	info = append(info, data...)
	return Element{ID: ElementVendor, Info: info}, nil
}

// --- TIM ---

// TIM is the traffic-indication map element (§9.4.2.6): the structure a
// power-saving station reads in every beacon to learn whether the AP holds
// buffered frames for it. Maintaining the ability to read this cheaply is
// the entire basis of the WiFi-PS baseline scenario.
type TIM struct {
	// DTIMCount counts down to the next DTIM beacon (0 = this one).
	DTIMCount uint8
	// DTIMPeriod is the number of beacon intervals between DTIMs.
	DTIMPeriod uint8
	// GroupTraffic is the multicast/broadcast buffered indicator
	// (bit 0 of the bitmap control).
	GroupTraffic bool
	// Buffered holds the association IDs with buffered traffic.
	Buffered []uint16
}

// TIMElement encodes t using the partial-virtual-bitmap compression the
// standard requires: only the bytes between the first and last set bit are
// transmitted, with the offset carried in the bitmap control.
func TIMElement(t TIM) Element {
	var bitmap [251]byte
	lo, hi := len(bitmap), -1
	for _, aid := range t.Buffered {
		if aid == 0 || aid > 2007 {
			continue // AID 0 is the AP itself; >2007 invalid
		}
		byteIdx, bit := int(aid/8), aid%8
		bitmap[byteIdx] |= 1 << bit
		if byteIdx < lo {
			lo = byteIdx
		}
		if byteIdx > hi {
			hi = byteIdx
		}
	}
	var control byte
	var partial []byte
	if hi >= 0 {
		offset := lo &^ 1 // N1: largest even number <= first nonzero byte
		control = byte(offset)
		partial = bitmap[offset : hi+1]
	} else {
		partial = []byte{0}
	}
	if t.GroupTraffic {
		control |= 0x01
	}
	info := make([]byte, 0, 3+len(partial))
	info = append(info, t.DTIMCount, t.DTIMPeriod, control)
	info = append(info, partial...)
	return Element{ID: ElementTIM, Info: info}
}

// ParseTIM decodes a TIM element body.
func ParseTIM(info []byte) (TIM, error) {
	if len(info) < 4 {
		return TIM{}, fmt.Errorf("%w: TIM needs >=4 bytes, have %d", errTruncated, len(info))
	}
	t := TIM{
		DTIMCount:    info[0],
		DTIMPeriod:   info[1],
		GroupTraffic: info[2]&0x01 != 0,
	}
	offset := int(info[2] &^ 0x01)
	for i, b := range info[3:] {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != 0 {
				t.Buffered = append(t.Buffered, uint16((offset+i)*8+bit))
			}
		}
	}
	return t, nil
}

// BufferedFor reports whether the TIM indicates buffered traffic for aid.
func (t TIM) BufferedFor(aid uint16) bool {
	for _, a := range t.Buffered {
		if a == aid {
			return true
		}
	}
	return false
}

// --- RSN ---

// Cipher and AKM suite selectors (OUI 00-0F-AC).
var (
	rsnOUI = [3]byte{0x00, 0x0f, 0xac}
	// CipherCCMP is AES-CCMP (suite type 4).
	CipherCCMP = uint32(0x000fac04)
	// CipherTKIP is TKIP (suite type 2).
	CipherTKIP = uint32(0x000fac02)
	// AKMPSK is pre-shared key authentication (suite type 2) — what the
	// paper's Google WiFi AP runs and what the WiFi-DC join pays for.
	AKMPSK = uint32(0x000fac02)
)

// RSN is the robust-security-network element (§9.4.2.25).
type RSN struct {
	Version         uint16
	GroupCipher     uint32
	PairwiseCiphers []uint32
	AKMs            []uint32
	Capabilities    uint16
}

// DefaultRSN is WPA2-PSK with CCMP, the configuration used in the paper's
// testbed.
func DefaultRSN() RSN {
	return RSN{
		Version:         1,
		GroupCipher:     CipherCCMP,
		PairwiseCiphers: []uint32{CipherCCMP},
		AKMs:            []uint32{AKMPSK},
	}
}

// RSNElement encodes r.
func RSNElement(r RSN) Element {
	info := make([]byte, 0, 20)
	info = binary.LittleEndian.AppendUint16(info, r.Version)
	info = binary.BigEndian.AppendUint32(info, r.GroupCipher)
	info = binary.LittleEndian.AppendUint16(info, uint16(len(r.PairwiseCiphers)))
	for _, c := range r.PairwiseCiphers {
		info = binary.BigEndian.AppendUint32(info, c)
	}
	info = binary.LittleEndian.AppendUint16(info, uint16(len(r.AKMs)))
	for _, a := range r.AKMs {
		info = binary.BigEndian.AppendUint32(info, a)
	}
	info = binary.LittleEndian.AppendUint16(info, r.Capabilities)
	return Element{ID: ElementRSN, Info: info}
}

// ParseRSN decodes an RSN element body.
func ParseRSN(info []byte) (RSN, error) {
	var r RSN
	if len(info) < 8 {
		return r, fmt.Errorf("%w: RSN needs >=8 bytes, have %d", errTruncated, len(info))
	}
	r.Version = binary.LittleEndian.Uint16(info)
	r.GroupCipher = binary.BigEndian.Uint32(info[2:])
	n := int(binary.LittleEndian.Uint16(info[6:]))
	b := info[8:]
	if len(b) < 4*n+2 {
		return r, fmt.Errorf("%w: RSN pairwise list", errTruncated)
	}
	for i := 0; i < n; i++ {
		r.PairwiseCiphers = append(r.PairwiseCiphers, binary.BigEndian.Uint32(b[4*i:]))
	}
	b = b[4*n:]
	m := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < 4*m {
		return r, fmt.Errorf("%w: RSN AKM list", errTruncated)
	}
	for i := 0; i < m; i++ {
		r.AKMs = append(r.AKMs, binary.BigEndian.Uint32(b[4*i:]))
	}
	b = b[4*m:]
	if len(b) >= 2 {
		r.Capabilities = binary.LittleEndian.Uint16(b)
	}
	return r, nil
}
