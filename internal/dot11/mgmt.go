package dot11

import (
	"encoding/binary"
	"fmt"
)

// Management frames. Each type embeds the 24-byte MAC header, its
// fixed-length fields, and an element list.

// mgmtHeader prepares a management header with the given subtype; the
// caller fills addresses and sequence.
func mgmtHeader(sub Subtype) Header {
	return Header{FC: FrameControl{Type: TypeManagement, Subtype: sub}}
}

// Beacon is the frame at the heart of both 802.11 power management and
// Wi-LE itself. APs transmit one every BeaconInterval TUs; Wi-LE sensors
// inject one per reading with a hidden SSID and the payload in a
// vendor-specific element.
type Beacon struct {
	Header Header
	// Timestamp is the AP's TSF timer in microseconds.
	Timestamp uint64
	// Interval is the beacon interval in time units (1 TU = 1024 µs).
	Interval   uint16
	Capability Capability
	Elements   Elements
}

// Kind implements Frame.
func (*Beacon) Kind() Kind { return Kind{TypeManagement, SubtypeBeacon} }

// RA implements Frame.
func (f *Beacon) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *Beacon) TA() MAC { return f.Header.Addr2 }

// BSSID reports the BSS the beacon belongs to.
func (f *Beacon) BSSID() MAC { return f.Header.Addr3 }

// AppendTo implements Frame.
func (f *Beacon) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeBeacon
	dst = f.Header.appendTo(dst)
	dst = binary.LittleEndian.AppendUint64(dst, f.Timestamp)
	dst = binary.LittleEndian.AppendUint16(dst, f.Interval)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Capability))
	return f.Elements.Append(dst)
}

// DecodeFromBytes implements Frame.
func (f *Beacon) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 12 {
		return fmt.Errorf("%w: beacon fixed fields need 12 bytes, have %d", errTruncated, len(body))
	}
	f.Timestamp = binary.LittleEndian.Uint64(body)
	f.Interval = binary.LittleEndian.Uint16(body[8:])
	f.Capability = Capability(binary.LittleEndian.Uint16(body[10:]))
	var err error
	f.Elements, err = ParseElementsInto(f.Elements[:0], body[12:])
	return err
}

// NewBeacon builds a broadcast beacon from bssid with the given elements.
func NewBeacon(bssid MAC, intervalTU uint16, cap Capability, els Elements) *Beacon {
	h := mgmtHeader(SubtypeBeacon)
	h.Addr1 = Broadcast
	h.Addr2 = bssid
	h.Addr3 = bssid
	return &Beacon{Header: h, Interval: intervalTU, Capability: cap, Elements: els}
}

// ProbeReq is the active-scan request a station broadcasts when it cannot
// afford to wait for a beacon.
type ProbeReq struct {
	Header   Header
	Elements Elements
}

// Kind implements Frame.
func (*ProbeReq) Kind() Kind { return Kind{TypeManagement, SubtypeProbeReq} }

// RA implements Frame.
func (f *ProbeReq) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *ProbeReq) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *ProbeReq) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeProbeReq
	return f.Elements.Append(f.Header.appendTo(dst))
}

// DecodeFromBytes implements Frame.
func (f *ProbeReq) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	var err error
	f.Elements, err = ParseElementsInto(f.Elements[:0], b[mgmtHeaderLen:])
	return err
}

// ProbeResp carries the same payload as a beacon, unicast to the prober.
type ProbeResp struct {
	Header     Header
	Timestamp  uint64
	Interval   uint16
	Capability Capability
	Elements   Elements
}

// Kind implements Frame.
func (*ProbeResp) Kind() Kind { return Kind{TypeManagement, SubtypeProbeResp} }

// RA implements Frame.
func (f *ProbeResp) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *ProbeResp) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *ProbeResp) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeProbeResp
	dst = f.Header.appendTo(dst)
	dst = binary.LittleEndian.AppendUint64(dst, f.Timestamp)
	dst = binary.LittleEndian.AppendUint16(dst, f.Interval)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Capability))
	return f.Elements.Append(dst)
}

// DecodeFromBytes implements Frame.
func (f *ProbeResp) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 12 {
		return fmt.Errorf("%w: probe-resp fixed fields", errTruncated)
	}
	f.Timestamp = binary.LittleEndian.Uint64(body)
	f.Interval = binary.LittleEndian.Uint16(body[8:])
	f.Capability = Capability(binary.LittleEndian.Uint16(body[10:]))
	var err error
	f.Elements, err = ParseElementsInto(f.Elements[:0], body[12:])
	return err
}

// AuthAlgorithm selects the authentication algorithm.
type AuthAlgorithm uint16

// Authentication algorithms.
const (
	AuthOpen      AuthAlgorithm = 0
	AuthSharedKey AuthAlgorithm = 1
	AuthSAE       AuthAlgorithm = 3
)

// StatusCode is the 802.11 status code carried by responses.
type StatusCode uint16

// Status codes used by the simulation.
const (
	StatusSuccess       StatusCode = 0
	StatusUnspecified   StatusCode = 1
	StatusCapMismatch   StatusCode = 10
	StatusDeniedGeneral StatusCode = 17
	StatusInvalidRSN    StatusCode = 43
)

// Auth is the (open-system) authentication frame; two of these open every
// 802.11 join.
type Auth struct {
	Header    Header
	Algorithm AuthAlgorithm
	Seq       uint16
	Status    StatusCode
	Elements  Elements
}

// Kind implements Frame.
func (*Auth) Kind() Kind { return Kind{TypeManagement, SubtypeAuth} }

// RA implements Frame.
func (f *Auth) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *Auth) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *Auth) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeAuth
	dst = f.Header.appendTo(dst)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Algorithm))
	dst = binary.LittleEndian.AppendUint16(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Status))
	return f.Elements.Append(dst)
}

// DecodeFromBytes implements Frame.
func (f *Auth) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 6 {
		return fmt.Errorf("%w: auth fixed fields", errTruncated)
	}
	f.Algorithm = AuthAlgorithm(binary.LittleEndian.Uint16(body))
	f.Seq = binary.LittleEndian.Uint16(body[2:])
	f.Status = StatusCode(binary.LittleEndian.Uint16(body[4:]))
	var err error
	f.Elements, err = ParseElementsInto(f.Elements[:0], body[6:])
	return err
}

// AssocReq asks the AP for membership; its RSN element commits the client
// to the security suite the 4-way handshake will confirm.
type AssocReq struct {
	Header         Header
	Capability     Capability
	ListenInterval uint16
	Elements       Elements
}

// Kind implements Frame.
func (*AssocReq) Kind() Kind { return Kind{TypeManagement, SubtypeAssocReq} }

// RA implements Frame.
func (f *AssocReq) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *AssocReq) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *AssocReq) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeAssocReq
	dst = f.Header.appendTo(dst)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Capability))
	dst = binary.LittleEndian.AppendUint16(dst, f.ListenInterval)
	return f.Elements.Append(dst)
}

// DecodeFromBytes implements Frame.
func (f *AssocReq) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 4 {
		return fmt.Errorf("%w: assoc-req fixed fields", errTruncated)
	}
	f.Capability = Capability(binary.LittleEndian.Uint16(body))
	f.ListenInterval = binary.LittleEndian.Uint16(body[2:])
	var err error
	f.Elements, err = ParseElementsInto(f.Elements[:0], body[4:])
	return err
}

// AssocResp grants (or refuses) membership and assigns the association ID
// the TIM bitmap indexes.
type AssocResp struct {
	Header     Header
	Capability Capability
	Status     StatusCode
	AID        uint16
	Elements   Elements
}

// Kind implements Frame.
func (*AssocResp) Kind() Kind { return Kind{TypeManagement, SubtypeAssocResp} }

// RA implements Frame.
func (f *AssocResp) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *AssocResp) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *AssocResp) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeAssocResp
	dst = f.Header.appendTo(dst)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Capability))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Status))
	dst = binary.LittleEndian.AppendUint16(dst, f.AID|0xc000) // two high bits always set
	return f.Elements.Append(dst)
}

// DecodeFromBytes implements Frame.
func (f *AssocResp) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 6 {
		return fmt.Errorf("%w: assoc-resp fixed fields", errTruncated)
	}
	f.Capability = Capability(binary.LittleEndian.Uint16(body))
	f.Status = StatusCode(binary.LittleEndian.Uint16(body[2:]))
	f.AID = binary.LittleEndian.Uint16(body[4:]) &^ 0xc000
	var err error
	f.Elements, err = ParseElementsInto(f.Elements[:0], body[6:])
	return err
}

// ReasonCode explains a deauthentication or disassociation.
type ReasonCode uint16

// Reason codes used by the simulation.
const (
	ReasonUnspecified     ReasonCode = 1
	ReasonAuthExpired     ReasonCode = 2
	ReasonLeaving         ReasonCode = 3 // "deauthenticated because sending STA is leaving"
	ReasonInactivity      ReasonCode = 4
	ReasonDisassocLeaving ReasonCode = 8
)

// Deauth tears down authentication; the WiFi-DC client sends one before
// each deep sleep.
type Deauth struct {
	Header Header
	Reason ReasonCode
}

// Kind implements Frame.
func (*Deauth) Kind() Kind { return Kind{TypeManagement, SubtypeDeauth} }

// RA implements Frame.
func (f *Deauth) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *Deauth) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *Deauth) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeDeauth
	dst = f.Header.appendTo(dst)
	return binary.LittleEndian.AppendUint16(dst, uint16(f.Reason)), nil
}

// DecodeFromBytes implements Frame.
func (f *Deauth) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 2 {
		return fmt.Errorf("%w: deauth reason", errTruncated)
	}
	f.Reason = ReasonCode(binary.LittleEndian.Uint16(body))
	return nil
}

// Disassoc tears down association while keeping authentication.
type Disassoc struct {
	Header Header
	Reason ReasonCode
}

// Kind implements Frame.
func (*Disassoc) Kind() Kind { return Kind{TypeManagement, SubtypeDisassoc} }

// RA implements Frame.
func (f *Disassoc) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *Disassoc) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *Disassoc) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeDisassoc
	dst = f.Header.appendTo(dst)
	return binary.LittleEndian.AppendUint16(dst, uint16(f.Reason)), nil
}

// DecodeFromBytes implements Frame.
func (f *Disassoc) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 2 {
		return fmt.Errorf("%w: disassoc reason", errTruncated)
	}
	f.Reason = ReasonCode(binary.LittleEndian.Uint16(body))
	return nil
}
