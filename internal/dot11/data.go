package dot11

import (
	"encoding/binary"
	"fmt"
)

// Data carries MSDUs (usually an LLC/SNAP header followed by an IP or
// EAPOL payload). The type also covers null-function frames — the
// zero-payload frames stations use purely to toggle the power-management
// bit, which is how the WiFi-PS client tells the AP it is going to doze.
//
// Addressing follows the ToDS/FromDS matrix for infrastructure BSSs:
//
//	ToDS=1, FromDS=0: Addr1=BSSID, Addr2=SA, Addr3=DA  (station → AP)
//	ToDS=0, FromDS=1: Addr1=DA, Addr2=BSSID, Addr3=SA  (AP → station)
//
// WDS four-address frames are out of scope (nothing in the paper uses
// them), and decoding one returns an error rather than silent nonsense.
type Data struct {
	Header Header
	// QoS holds the QoS-control field for the QoS subtypes.
	QoS uint16
	// Payload is the MSDU. Nil for null-function frames.
	Payload []byte
}

// Kind implements Frame.
func (f *Data) Kind() Kind {
	// Preserve the decoded subtype; default to plain data.
	if f.Header.FC.Type == TypeData {
		return f.Header.FC.Kind()
	}
	return Kind{TypeData, SubtypeData}
}

// RA implements Frame.
func (f *Data) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *Data) TA() MAC { return f.Header.Addr2 }

// hasQoS reports whether the subtype carries a QoS-control field.
func (f *Data) hasQoS() bool {
	return f.Header.FC.Subtype == SubtypeQoSData || f.Header.FC.Subtype == SubtypeQoSNull
}

// isNull reports whether the frame carries no MSDU.
func (f *Data) isNull() bool {
	return f.Header.FC.Subtype == SubtypeNull || f.Header.FC.Subtype == SubtypeQoSNull
}

// DA reports the destination address per the ToDS/FromDS matrix.
func (f *Data) DA() MAC {
	if f.Header.FC.ToDS {
		return f.Header.Addr3
	}
	return f.Header.Addr1
}

// SA reports the source address per the ToDS/FromDS matrix.
func (f *Data) SA() MAC {
	if f.Header.FC.FromDS {
		return f.Header.Addr3
	}
	return f.Header.Addr2
}

// AppendTo implements Frame.
func (f *Data) AppendTo(dst []byte) ([]byte, error) {
	if f.Header.FC.Type != TypeData {
		f.Header.FC.Type, f.Header.FC.Subtype = TypeData, SubtypeData
	}
	if f.Header.FC.ToDS && f.Header.FC.FromDS {
		return dst, fmt.Errorf("dot11: four-address (WDS) data frames unsupported")
	}
	dst = f.Header.appendTo(dst)
	if f.hasQoS() {
		dst = binary.LittleEndian.AppendUint16(dst, f.QoS)
	}
	if f.isNull() && len(f.Payload) > 0 {
		return dst, fmt.Errorf("dot11: null-function frame cannot carry a payload")
	}
	return append(dst, f.Payload...), nil
}

// DecodeFromBytes implements Frame.
func (f *Data) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	if f.Header.FC.ToDS && f.Header.FC.FromDS {
		return fmt.Errorf("dot11: four-address (WDS) data frames unsupported")
	}
	body := b[mgmtHeaderLen:]
	if f.hasQoS() {
		if len(body) < 2 {
			return fmt.Errorf("%w: QoS control", errTruncated)
		}
		f.QoS = binary.LittleEndian.Uint16(body)
		body = body[2:]
	} else {
		f.QoS = 0
	}
	if f.isNull() {
		f.Payload = nil
		return nil
	}
	f.Payload = body
	return nil
}

// NewDataToAP builds a station→AP data frame carrying payload.
func NewDataToAP(bssid, sa, da MAC, payload []byte) *Data {
	return &Data{
		Header: Header{
			FC:    FrameControl{Type: TypeData, Subtype: SubtypeData, ToDS: true},
			Addr1: bssid, Addr2: sa, Addr3: da,
		},
		Payload: payload,
	}
}

// NewDataFromAP builds an AP→station data frame carrying payload.
func NewDataFromAP(bssid, da, sa MAC, payload []byte) *Data {
	return &Data{
		Header: Header{
			FC:    FrameControl{Type: TypeData, Subtype: SubtypeData, FromDS: true},
			Addr1: da, Addr2: bssid, Addr3: sa,
		},
		Payload: payload,
	}
}

// NewNull builds a station→AP null-function frame with the power-management
// bit set as requested.
func NewNull(bssid, sa MAC, powerSave bool) *Data {
	return &Data{
		Header: Header{
			FC:    FrameControl{Type: TypeData, Subtype: SubtypeNull, ToDS: true, PwrMgmt: powerSave},
			Addr1: bssid, Addr2: sa, Addr3: bssid,
		},
	}
}
