// Package dot11 implements an IEEE 802.11 MAC frame codec: management,
// control and data frames, information elements, and the FCS.
//
// The codec follows the gopacket serialization idioms the Go networking
// ecosystem established: concrete frame types decode from bytes into
// preallocated structs (DecodeFromBytes) and serialize by appending to a
// caller-supplied buffer, so steady-state encode/decode paths do not
// allocate. Wi-LE's transmit path leans on this: the paper notes the
// beacon "content of the packet including all of headers can be
// pre-computed and then only the IoT device's data needs to be inserted".
//
// Byte order: IEEE 802.11 fields are little-endian on the wire (unlike
// IP-world protocols); information-element contents define their own order.
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit IEEE 802 MAC address. It is a value type (comparable,
// usable as a map key), following gopacket's Endpoint design.
type MAC [6]byte

// Broadcast is the all-ones broadcast address, the receiver address of
// every beacon frame Wi-LE injects.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses the usual colon-separated hex form.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("dot11: bad MAC %q: want 17 chars, have %d", s, len(s))
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := unhex(s[3*i])
		lo, ok2 := unhex(s[3*i+1])
		if !ok1 || !ok2 {
			return m, fmt.Errorf("dot11: bad MAC %q: invalid hex at byte %d", s, i)
		}
		if i < 5 && s[3*i+2] != ':' {
			return m, fmt.Errorf("dot11: bad MAC %q: missing ':' after byte %d", s, i)
		}
		m[i] = hi<<4 | lo
	}
	return m, nil
}

// MustParseMAC is ParseMAC for constants in tests and examples.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(fmt.Sprintf("dot11: MustParseMAC: %v", err))
	}
	return m
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// String implements fmt.Stringer in the canonical lowercase form.
func (m MAC) String() string {
	const hexdigit = "0123456789abcdef"
	var b [17]byte
	for i, v := range m {
		b[3*i] = hexdigit[v>>4]
		b[3*i+1] = hexdigit[v&0xf]
		if i < 5 {
			b[3*i+2] = ':'
		}
	}
	return string(b[:])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsGroup reports whether m is a group (multicast or broadcast) address.
func (m MAC) IsGroup() bool { return m[0]&0x01 != 0 }

// IsLocal reports whether the locally-administered bit is set. Wi-LE
// devices use locally-administered addresses so injected beacons can never
// collide with a real vendor BSSID.
func (m MAC) IsLocal() bool { return m[0]&0x02 != 0 }

// OUI reports the first three octets (the organizationally unique
// identifier).
func (m MAC) OUI() [3]byte { return [3]byte{m[0], m[1], m[2]} }

// LocalMAC derives a deterministic locally-administered unicast address
// from a 32-bit device identifier. Wi-LE sensors use this as the BSSID and
// source address of their injected beacons.
func LocalMAC(deviceID uint32) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = 0x57 // 'W'
	binary.BigEndian.PutUint32(m[2:], deviceID)
	return m
}

// errTruncated is wrapped by every "frame too short" decode error so
// callers can errors.Is it regardless of which layer was cut off.
var errTruncated = errors.New("dot11: truncated frame")

// ErrTruncated reports whether err was caused by a short buffer.
func ErrTruncated(err error) bool { return errors.Is(err, errTruncated) }
