//go:build !race

package dot11

// raceEnabled gates steady-state allocation assertions; see race_test.go.
const raceEnabled = false
