package dot11

import (
	"encoding/binary"
	"fmt"
)

// High-throughput (802.11n) information elements. The paper's devices run
// b/g/n and the §5.4 measurement injects at MCS7 short-GI, so a realistic
// AP beacon advertises HT capabilities and HT operation, and a capture of
// the testbed would show these elements.

// HTCapabilities is the ID-45 element (§9.4.2.56), modeling the fields the
// simulation cares about: single-spatial-stream 20 MHz operation with
// optional short guard interval.
type HTCapabilities struct {
	// ShortGI20 advertises 400 ns guard-interval support at 20 MHz —
	// what makes the 72.2 Mb/s MCS7-SGI rate legal.
	ShortGI20 bool
	// GreenfieldSupport advertises HT-greenfield preamble reception.
	GreenfieldSupport bool
	// RxMCSBitmask holds bits for MCS 0–76; bit i set means MCS i
	// receivable. Single-stream devices set bits 0–7.
	RxMCSBitmask [10]byte
}

// SingleStreamHTCapabilities advertises MCS 0–7 with short GI — the ESP32's
// HT feature set.
func SingleStreamHTCapabilities() HTCapabilities {
	var c HTCapabilities
	c.ShortGI20 = true
	c.RxMCSBitmask[0] = 0xff // MCS 0-7
	return c
}

// htCapInfo packs the capability-info bitfield.
func (c HTCapabilities) htCapInfo() uint16 {
	var v uint16
	if c.ShortGI20 {
		v |= 1 << 5
	}
	if c.GreenfieldSupport {
		v |= 1 << 4
	}
	return v
}

// HTCapabilitiesElement encodes the 26-byte element body.
func HTCapabilitiesElement(c HTCapabilities) Element {
	info := make([]byte, 26)
	binary.LittleEndian.PutUint16(info[0:], c.htCapInfo())
	// info[2] is the A-MPDU parameters octet (zero: no aggregation —
	// nothing in the paper uses A-MPDU).
	copy(info[3:13], c.RxMCSBitmask[:])
	// Remaining supported-MCS fields, extended caps, TxBF and ASEL stay
	// zero.
	return Element{ID: ElementHTCapabilities, Info: info}
}

// ParseHTCapabilities decodes the element body.
func ParseHTCapabilities(info []byte) (HTCapabilities, error) {
	var c HTCapabilities
	if len(info) < 26 {
		return c, fmt.Errorf("%w: HT capabilities need 26 bytes, have %d", errTruncated, len(info))
	}
	v := binary.LittleEndian.Uint16(info)
	c.ShortGI20 = v&(1<<5) != 0
	c.GreenfieldSupport = v&(1<<4) != 0
	copy(c.RxMCSBitmask[:], info[3:13])
	return c, nil
}

// SupportsMCS reports whether the receive MCS bitmap includes mcs.
func (c HTCapabilities) SupportsMCS(mcs int) bool {
	if mcs < 0 || mcs >= 77 {
		return false
	}
	return c.RxMCSBitmask[mcs/8]&(1<<(mcs%8)) != 0
}

// HTOperation is the ID-61 element (§9.4.2.57): how the BSS actually runs.
type HTOperation struct {
	// PrimaryChannel is the 20 MHz control channel.
	PrimaryChannel uint8
	// BasicMCSSet lists the MCS values every HT member must support.
	BasicMCSSet [16]byte
}

// HTOperationElement encodes the 22-byte element body.
func HTOperationElement(o HTOperation) Element {
	info := make([]byte, 22)
	info[0] = o.PrimaryChannel
	// info[1:6]: HT operation information — zero means 20 MHz, no
	// protection, the configuration the paper's channel uses.
	copy(info[6:22], o.BasicMCSSet[:])
	return Element{ID: ElementHTOperation, Info: info}
}

// ParseHTOperation decodes the element body.
func ParseHTOperation(info []byte) (HTOperation, error) {
	var o HTOperation
	if len(info) < 22 {
		return o, fmt.Errorf("%w: HT operation needs 22 bytes, have %d", errTruncated, len(info))
	}
	o.PrimaryChannel = info[0]
	copy(o.BasicMCSSet[:], info[6:22])
	return o, nil
}
