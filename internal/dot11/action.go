package dot11

import "fmt"

// Action frames (§9.6): the extensible management frame. Relevant to Wi-LE
// as the obvious *alternative* carrier — a vendor-specific Action frame
// can also carry arbitrary data without association. The paper's design
// chooses beacons instead because receivers process beacons on every
// platform without monitor mode (the scan-results path), whereas unicast
// or unsolicited Action frames from an unknown BSS are dropped by normal
// MAC filtering. The carrier ablation quantifies what the choice costs in
// airtime (nothing meaningful).

// ActionCategory is the Action frame category code.
type ActionCategory uint8

// Categories used here.
const (
	// CategoryVendorSpecific is category 127, the open namespace.
	CategoryVendorSpecific ActionCategory = 127
)

// Action is a (vendor-specific) Action frame.
type Action struct {
	Header   Header
	Category ActionCategory
	// OUI identifies the vendor for category 127.
	OUI [3]byte
	// Body is the vendor-defined content.
	Body []byte
}

// Kind implements Frame.
func (*Action) Kind() Kind { return Kind{TypeManagement, SubtypeAction} }

// RA implements Frame.
func (f *Action) RA() MAC { return f.Header.Addr1 }

// TA implements Frame.
func (f *Action) TA() MAC { return f.Header.Addr2 }

// AppendTo implements Frame.
func (f *Action) AppendTo(dst []byte) ([]byte, error) {
	f.Header.FC.Type, f.Header.FC.Subtype = TypeManagement, SubtypeAction
	dst = f.Header.appendTo(dst)
	dst = append(dst, byte(f.Category))
	if f.Category == CategoryVendorSpecific {
		dst = append(dst, f.OUI[:]...)
	}
	return append(dst, f.Body...), nil
}

// DecodeFromBytes implements Frame.
func (f *Action) DecodeFromBytes(b []byte) error {
	if err := f.Header.decodeFrom(b); err != nil {
		return err
	}
	body := b[mgmtHeaderLen:]
	if len(body) < 1 {
		return fmt.Errorf("%w: action category", errTruncated)
	}
	f.Category = ActionCategory(body[0])
	body = body[1:]
	if f.Category == CategoryVendorSpecific {
		if len(body) < 3 {
			return fmt.Errorf("%w: vendor action OUI", errTruncated)
		}
		copy(f.OUI[:], body[:3])
		body = body[3:]
	}
	f.Body = body
	return nil
}

// NewVendorAction builds a broadcast vendor-specific Action frame.
func NewVendorAction(from MAC, oui [3]byte, body []byte) *Action {
	a := &Action{Category: CategoryVendorSpecific, OUI: oui, Body: body}
	a.Header.Addr1 = Broadcast
	a.Header.Addr2 = from
	a.Header.Addr3 = from
	return a
}
