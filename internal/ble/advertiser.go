package ble

import (
	"time"

	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
)

// BLE advertising over the simulated radio medium: the protocol-level
// counterpart of Wi-LE's beacon injection, for head-to-head comparisons
// beyond energy (payload per event, discovery latency, channel behaviour).
//
// A BLE advertiser transmits each advertising PDU three times per event —
// once on each advertising channel (37, 38, 39) — while a scanner dwells
// on one channel at a time. The three mediums here model the three
// channels; the advertiser walks them with the standard 10 ms max gap and
// the spec's 0–10 ms advDelay jitter per event.

// AdvertiserConfig parameterizes a BLE advertiser.
type AdvertiserConfig struct {
	Addr Address
	// Interval is advInterval (20 ms .. 10.24 s per spec).
	Interval time.Duration
	// Data is the AdvData payload (≤31 bytes).
	Data []byte
	// Position places the radio.
	Position medium.Position
	// Seed seeds the advDelay jitter.
	Seed uint64
}

// Advertiser transmits ADV_NONCONN_IND events across the three channels.
type Advertiser struct {
	Cfg AdvertiserConfig
	// Stats counts events and PDUs.
	Stats AdvertiserStats

	sched   *sim.Scheduler
	trx     [3]*medium.Transceiver
	meds    [3]*medium.Medium
	rng     *sim.Rand
	running bool
}

// AdvertiserStats counts transmitter activity.
type AdvertiserStats struct {
	Events int
	PDUs   int
}

// interPDUGap is the pause between the per-channel copies within one
// advertising event (spec: ≤10 ms; typical radios use ~400 µs).
const interPDUGap = 400 * time.Microsecond

// NewAdvertiser attaches an advertiser to the three advertising-channel
// mediums (index 0 → channel 37, 1 → 38, 2 → 39).
func NewAdvertiser(sched *sim.Scheduler, meds [3]*medium.Medium, cfg AdvertiserConfig) *Advertiser {
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xb1e
	}
	a := &Advertiser{Cfg: cfg, sched: sched, meds: meds, rng: sim.NewRand(cfg.Seed)}
	for i, med := range meds {
		a.trx[i] = med.Attach("ble-adv", cfg.Position, 0, phy.SensitivityBLE)
	}
	return a
}

// Run starts periodic advertising events.
func (a *Advertiser) Run() {
	if a.running {
		return
	}
	a.running = true
	a.scheduleEvent()
}

// Stop halts advertising after the current event.
func (a *Advertiser) Stop() { a.running = false }

func (a *Advertiser) scheduleEvent() {
	if !a.running {
		return
	}
	// advInterval + advDelay (0–10 ms pseudo-random, per Core 4.2).
	delay := a.Cfg.Interval + time.Duration(a.rng.Intn(10_000))*time.Microsecond
	a.sched.DoAfter(delay, func() {
		a.transmitEvent()
		a.scheduleEvent()
	})
}

// transmitEvent sends the PDU on channels 37, 38, 39 in order.
func (a *Advertiser) transmitEvent() {
	a.Stats.Events++
	pdu := &AdvPDU{Type: PDUAdvNonconnInd, TxAdd: true, AdvA: a.Cfg.Addr, Data: a.Cfg.Data}
	var step func(i int)
	step = func(i int) {
		if i == 3 {
			return
		}
		onAir, err := pdu.MarshalOnAir(AdvChannels[i])
		if err != nil {
			return
		}
		a.trx[i].SetOn(true)
		a.meds[i].Transmit(a.trx[i], onAir, phy.RateBLE1M)
		a.Stats.PDUs++
		a.sched.DoAfter(interPDUGap, func() {
			a.trx[i].SetOn(false)
			step(i + 1)
		})
	}
	step(0)
}

// ScannerConfig parameterizes a BLE scanner.
type ScannerConfig struct {
	Position medium.Position
	// Channel selects the advertising channel index to dwell on (0..2);
	// real scanners rotate — callers can build three and alternate.
	Channel int
}

// Scanner listens on one advertising channel and reports decoded PDUs.
type Scanner struct {
	// OnAdvertisement fires for every CRC-valid advertising PDU.
	OnAdvertisement func(pdu *AdvPDU, rssi phy.DBm)
	// Stats counts receptions.
	Stats BLEScannerStats

	channelIndex int
	trx          *medium.Transceiver
}

// BLEScannerStats counts scanner activity.
type BLEScannerStats struct {
	PDUs      int
	CRCErrors int
}

// NewScanner attaches a scanner to the medium for advertising channel
// AdvChannels[cfg.Channel].
func NewScanner(sched *sim.Scheduler, med *medium.Medium, cfg ScannerConfig) *Scanner {
	sc := &Scanner{channelIndex: cfg.Channel}
	sc.trx = med.Attach("ble-scan", cfg.Position, 0, phy.SensitivityBLE)
	sc.trx.Handler = func(rx medium.Reception) {
		pdu, err := ParseOnAir(AdvChannels[sc.channelIndex], rx.Data)
		if err != nil {
			sc.Stats.CRCErrors++
			return
		}
		sc.Stats.PDUs++
		if sc.OnAdvertisement != nil {
			sc.OnAdvertisement(pdu, rx.RSSI)
		}
	}
	return sc
}

// Start powers the scanner radio.
func (sc *Scanner) Start() { sc.trx.SetOn(true) }

// Stop powers the scanner radio down.
func (sc *Scanner) Stop() { sc.trx.SetOn(false) }
