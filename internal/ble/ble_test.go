package ble

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"wile/internal/sim"
)

func TestAdvPDURoundTrip(t *testing.T) {
	p := &AdvPDU{
		Type:  PDUAdvNonconnInd,
		TxAdd: true,
		AdvA:  Address{0xc0, 1, 2, 3, 4, 5},
		Data:  []byte{0x02, 0x01, 0x06},
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.TxAdd != p.TxAdd || got.AdvA != p.AdvA || !bytes.Equal(got.Data, p.Data) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestAdvPDULengthLimit(t *testing.T) {
	p := &AdvPDU{Type: PDUAdvNonconnInd, Data: make([]byte, MaxAdvData+1)}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("32-byte AdvData accepted")
	}
	p.Data = make([]byte, MaxAdvData)
	if _, err := p.Marshal(); err != nil {
		t.Fatalf("31-byte AdvData rejected: %v", err)
	}
}

func TestParseAdvPDUErrors(t *testing.T) {
	if _, err := ParseAdvPDU([]byte{0x02}); err == nil {
		t.Error("1-byte PDU accepted")
	}
	if _, err := ParseAdvPDU([]byte{0x02, 10, 1, 2}); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := ParseAdvPDU([]byte{0x02, 3, 1, 2, 3}); err == nil {
		t.Error("payload shorter than AdvA accepted")
	}
}

func TestWhitenIsInvolution(t *testing.T) {
	f := func(data []byte, ch uint8) bool {
		idx := int(ch % 40)
		w := Whiten(idx, data)
		back := Whiten(idx, w)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWhitenActuallyChangesBits(t *testing.T) {
	data := make([]byte, 16)
	w := Whiten(37, data)
	if bytes.Equal(w, data) {
		t.Fatal("whitening left all-zero data unchanged")
	}
	// Different channels whiten differently.
	if bytes.Equal(Whiten(37, data), Whiten(38, data)) {
		t.Fatal("channels 37 and 38 share a whitening sequence")
	}
	// Original not mutated.
	for _, b := range data {
		if b != 0 {
			t.Fatal("Whiten mutated its input")
		}
	}
}

func TestCRC24Golden(t *testing.T) {
	// Regression locks on the spec LFSR (preset 0x555555, taps 0x65b):
	// recomputed independently from the bitwise definition.
	got := CRC24([]byte{0x02, 0x09, 0xc0, 0x01, 0x02, 0x03, 0x04, 0x05, 0xde})
	ref := crc24Bitwise([]byte{0x02, 0x09, 0xc0, 0x01, 0x02, 0x03, 0x04, 0x05, 0xde})
	if got != ref {
		t.Fatalf("CRC24 = %x, bitwise reference = %x", got, ref)
	}
}

// crc24Bitwise is an independent straight-from-the-figure implementation:
// it models each flip-flop of the Core spec Figure 3.4 shift register
// separately.
func crc24Bitwise(data []byte) [3]byte {
	var reg [24]uint8
	preset := uint32(0x555555)
	for i := 0; i < 24; i++ {
		reg[i] = uint8(preset >> i & 1)
	}
	for _, octet := range data {
		for i := 0; i < 8; i++ {
			in := octet >> i & 1
			fb := reg[23] ^ in
			// Shift toward position 23.
			for j := 23; j > 0; j-- {
				reg[j] = reg[j-1]
			}
			reg[0] = fb
			// XOR taps feeding positions 1,3,4,6,9,10.
			reg[1] ^= fb
			reg[3] ^= fb
			reg[4] ^= fb
			reg[6] ^= fb
			reg[9] ^= fb
			reg[10] ^= fb
		}
	}
	var crc [3]byte
	for i := 0; i < 24; i++ {
		if reg[23-i] == 1 {
			crc[i/8] |= 1 << (i % 8)
		}
	}
	return crc
}

func TestCRC24DetectsCorruption(t *testing.T) {
	data := []byte("advertising-pdu-bytes")
	want := CRC24(data)
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x10
		if CRC24(bad) == want {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestOnAirRoundTrip(t *testing.T) {
	for _, ch := range AdvChannels {
		p := &AdvPDU{Type: PDUAdvNonconnInd, AdvA: Address{1, 2, 3, 4, 5, 6},
			Data: []byte{0x02, 0x01, 0x06, 0x05, 0x09, 't', 'e', 'm', 'p'}}
		raw, err := p.MarshalOnAir(ch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseOnAir(ch, raw)
		if err != nil {
			t.Fatalf("ch%d: %v", ch, err)
		}
		if got.AdvA != p.AdvA || !bytes.Equal(got.Data, p.Data) {
			t.Fatalf("ch%d round trip: %+v", ch, got)
		}
	}
}

func TestOnAirCorruptionCaughtByCRC(t *testing.T) {
	p := &AdvPDU{Type: PDUAdvNonconnInd, AdvA: Address{1, 2, 3, 4, 5, 6}, Data: []byte{1, 2, 3}}
	raw, err := p.MarshalOnAir(37)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x04
		if _, err := ParseOnAir(37, bad); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
	// Wrong channel dewhitens garbage → CRC failure.
	if _, err := ParseOnAir(38, raw); err == nil {
		t.Fatal("cross-channel parse succeeded")
	}
}

func TestPropertyOnAirRoundTrip(t *testing.T) {
	f := func(addr [6]byte, data []byte, ch uint8) bool {
		if len(data) > MaxAdvData {
			data = data[:MaxAdvData]
		}
		idx := AdvChannels[int(ch)%3]
		p := &AdvPDU{Type: PDUAdvNonconnInd, AdvA: Address(addr), Data: data}
		raw, err := p.MarshalOnAir(idx)
		if err != nil {
			return false
		}
		got, err := ParseOnAir(idx, raw)
		return err == nil && got.AdvA == p.AdvA && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestADStructures(t *testing.T) {
	adv, err := AppendAD(nil,
		ADStructure{Type: ADFlags, Data: []byte{0x06}},
		ADStructure{Type: ADManufacturerData, Data: []byte{0x57, 0x49, 21, 42}},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAD(adv)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Type != ADFlags || got[1].Type != ADManufacturerData {
		t.Fatalf("AD = %+v", got)
	}
	if !bytes.Equal(got[1].Data, []byte{0x57, 0x49, 21, 42}) {
		t.Fatalf("manufacturer data = %x", got[1].Data)
	}
}

func TestADOverflowRejected(t *testing.T) {
	if _, err := AppendAD(nil, ADStructure{Type: ADCompleteName, Data: make([]byte, 30)}); err == nil {
		t.Error("30-byte AD data accepted")
	}
	if _, err := AppendAD(nil,
		ADStructure{Type: 1, Data: make([]byte, 20)},
		ADStructure{Type: 2, Data: make([]byte, 20)},
	); err == nil {
		t.Error("44-byte AdvData accepted")
	}
}

func TestParseADTruncated(t *testing.T) {
	if _, err := ParseAD([]byte{5, 1, 2}); err == nil {
		t.Error("truncated AD accepted")
	}
	// Zero-length terminator ends parsing cleanly.
	got, err := ParseAD([]byte{2, 1, 6, 0, 0, 0})
	if err != nil || len(got) != 1 {
		t.Errorf("terminator handling: %v, %v", got, err)
	}
}

func TestConnectionEventEnergyMatchesTable1(t *testing.T) {
	// Paper Table 1: BLE energy/packet = 71 µJ.
	got := ConnectionEventEnergy()
	if math.Abs(float64(got)-71e-6) > 71e-6*0.05 {
		t.Fatalf("connection event energy = %.1f µJ, want 71 µJ ±5%%", got.Micro())
	}
	// And the event is single-digit milliseconds, as in the app note.
	if d := ConnectionEventDuration(); d < time.Millisecond || d > 5*time.Millisecond {
		t.Fatalf("connection event duration = %v", d)
	}
}

func TestDeviceSleepsAtTableIdleCurrent(t *testing.T) {
	s := sim.New()
	d := NewDevice(s)
	if d.Current() != CC2541SleepCurrent {
		t.Fatalf("sleep current = %v", d.Current())
	}
	s.RunUntil(10 * sim.Second)
	want := 10 * float64(CC2541SleepCurrent)
	if got := float64(d.Charge()); math.Abs(got-want) > want*1e-6 {
		t.Fatalf("10 s sleep charge = %v, want %v", got, want)
	}
}

func TestPlayConnectionEventEnergy(t *testing.T) {
	s := sim.New()
	d := NewDevice(s)
	finished := false
	d.PlayConnectionEvent(func() { finished = true })
	s.Run()
	if !finished {
		t.Fatal("event never completed")
	}
	if d.Current() != CC2541SleepCurrent {
		t.Fatal("device not back asleep")
	}
	got := float64(d.Energy())
	want := float64(ConnectionEventEnergy())
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("device energy %v, analytic %v", got, want)
	}
	if d.Events() != 1 {
		t.Fatalf("events = %d", d.Events())
	}
}

func TestRunPeriodic(t *testing.T) {
	s := sim.New()
	d := NewDevice(s)
	d.RunPeriodic(100 * time.Millisecond)
	s.RunUntil(sim.Second + 50*sim.Millisecond)
	if d.Events() != 10 {
		t.Fatalf("%d events in 1.05 s at 100 ms interval, want 10", d.Events())
	}
	// Average current ≈ E/(V·t) + sleep ≈ 71µJ/(3V·0.1s) ≈ 237 µA.
	avg := float64(d.Charge()) / s.Now().Seconds()
	if avg < 200e-6 || avg > 280e-6 {
		t.Fatalf("average current %v A at 10 Hz reporting", avg)
	}
}

func TestPDUTypeStrings(t *testing.T) {
	if PDUAdvNonconnInd.String() != "ADV_NONCONN_IND" {
		t.Error(PDUAdvNonconnInd.String())
	}
	if PDUType(15).String() == "" {
		t.Error("unknown type formats empty")
	}
}
