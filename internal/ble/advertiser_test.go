package ble

import (
	"testing"
	"time"

	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
)

func newAdvWorld() (*sim.Scheduler, [3]*medium.Medium) {
	s := sim.New()
	var meds [3]*medium.Medium
	for i, ch := range AdvChannels {
		meds[i] = medium.New(s, phy.BLEAdvChannel(ch))
	}
	return s, meds
}

func TestAdvertiserReachesScannerOnEveryChannel(t *testing.T) {
	sched, meds := newAdvWorld()
	adv, err := AppendAD(nil,
		ADStructure{Type: ADFlags, Data: []byte{0x06}},
		ADStructure{Type: ADManufacturerData, Data: []byte{0x57, 0x49, 21, 50}},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdvertiser(sched, meds, AdvertiserConfig{
		Addr:     Address{0xc0, 1, 2, 3, 4, 5},
		Interval: 100 * time.Millisecond,
		Data:     adv,
		Position: medium.Position{X: 0},
	})
	// One scanner per channel, all always on.
	var got [3]int
	for i := range meds {
		i := i
		sc := NewScanner(sched, meds[i], ScannerConfig{Position: medium.Position{X: 2}, Channel: i})
		sc.OnAdvertisement = func(pdu *AdvPDU, rssi phy.DBm) {
			if pdu.AdvA != a.Cfg.Addr {
				t.Errorf("wrong address %v", pdu.AdvA)
			}
			structures, err := ParseAD(pdu.Data)
			if err != nil || len(structures) != 2 {
				t.Errorf("AD parse: %v %v", structures, err)
			}
			got[i]++
		}
		sc.Start()
	}
	a.Run()
	sched.RunUntil(2 * sim.Second)
	a.Stop()

	if a.Stats.Events < 15 || a.Stats.Events > 20 {
		t.Fatalf("%d events in 2 s at ~105 ms interval", a.Stats.Events)
	}
	if a.Stats.PDUs != 3*a.Stats.Events {
		t.Fatalf("PDUs %d != 3×events %d", a.Stats.PDUs, a.Stats.Events)
	}
	for i, n := range got {
		if n != a.Stats.Events {
			t.Errorf("channel %d scanner caught %d of %d events", AdvChannels[i], n, a.Stats.Events)
		}
	}
}

func TestSingleChannelScannerHearsEveryEventOnce(t *testing.T) {
	// The scanning trade BLE makes: each event touches all three
	// channels, so a single-channel scanner still hears every event —
	// at the cost of the advertiser transmitting everything 3×. (Wi-LE
	// transmits once; a multi-channel Wi-LE receiver needs hopping.)
	sched, meds := newAdvWorld()
	a := NewAdvertiser(sched, meds, AdvertiserConfig{
		Addr: Address{1}, Interval: 50 * time.Millisecond, Data: []byte{0x02, 0x01, 0x06},
	})
	sc := NewScanner(sched, meds[1], ScannerConfig{Channel: 1, Position: medium.Position{X: 1}})
	count := 0
	sc.OnAdvertisement = func(*AdvPDU, phy.DBm) { count++ }
	sc.Start()
	a.Run()
	sched.RunUntil(sim.Second)
	a.Stop()
	if count != a.Stats.Events {
		t.Fatalf("scanner heard %d of %d events", count, a.Stats.Events)
	}
}

func TestAdvDelayJitterApplied(t *testing.T) {
	// Events must not land at exact multiples of the interval: the spec's
	// advDelay adds 0–10 ms of pseudo-random spacing (the same mechanism
	// §6 relies on for Wi-LE).
	sched, meds := newAdvWorld()
	a := NewAdvertiser(sched, meds, AdvertiserConfig{
		Addr: Address{2}, Interval: 100 * time.Millisecond, Data: []byte{0x02, 0x01, 0x06},
	})
	var times []sim.Time
	sc := NewScanner(sched, meds[0], ScannerConfig{Channel: 0})
	sc.OnAdvertisement = func(*AdvPDU, phy.DBm) { times = append(times, sched.Now()) }
	sc.Start()
	a.Run()
	sched.RunUntil(3 * sim.Second)
	a.Stop()
	if len(times) < 20 {
		t.Fatalf("only %d events", len(times))
	}
	exactGaps := 0
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) == 100*time.Millisecond {
			exactGaps++
		}
	}
	if exactGaps > len(times)/4 {
		t.Fatalf("%d of %d gaps exactly the interval: no advDelay", exactGaps, len(times)-1)
	}
}

func TestScannerStopsHearing(t *testing.T) {
	sched, meds := newAdvWorld()
	a := NewAdvertiser(sched, meds, AdvertiserConfig{
		Addr: Address{3}, Interval: 50 * time.Millisecond, Data: []byte{0x02, 0x01, 0x06},
	})
	sc := NewScanner(sched, meds[0], ScannerConfig{Channel: 0})
	count := 0
	sc.OnAdvertisement = func(*AdvPDU, phy.DBm) { count++ }
	sc.Start()
	a.Run()
	sched.RunUntil(sim.Second)
	sc.Stop()
	n := count
	sched.RunUntil(2 * sim.Second)
	a.Stop()
	if count != n {
		t.Fatal("stopped scanner kept hearing")
	}
}
