// Package ble implements the Bluetooth Low Energy baseline the paper
// compares Wi-LE against: the link-layer advertising codec (PDUs, CRC-24,
// whitening, AD structures) and a CC2541 power model reproducing the TI
// application-note measurement (swra347a) that Table 1's BLE column cites.
package ble

import (
	"errors"
	"fmt"
)

// AdvAccessAddress is the fixed access address of all advertising-channel
// packets (Core 4.2 Vol 6 Part B §2.1.2).
const AdvAccessAddress = 0x8e89bed6

// PDUType is the 4-bit advertising PDU type.
type PDUType uint8

// Advertising PDU types.
const (
	PDUAdvInd        PDUType = 0 // connectable undirected
	PDUAdvDirectInd  PDUType = 1
	PDUAdvNonconnInd PDUType = 2 // the beacon-like PDU matching Wi-LE's usage
	PDUScanReq       PDUType = 3
	PDUScanRsp       PDUType = 4
	PDUConnectReq    PDUType = 5
	PDUAdvScanInd    PDUType = 6
)

// String implements fmt.Stringer.
func (t PDUType) String() string {
	names := [...]string{"ADV_IND", "ADV_DIRECT_IND", "ADV_NONCONN_IND",
		"SCAN_REQ", "SCAN_RSP", "CONNECT_REQ", "ADV_SCAN_IND"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("PDU(%d)", uint8(t))
}

// MaxAdvData is the longest AdvData payload (31 bytes) — one reason the
// paper notes Wi-LE "obtains data rates comparable with" BLE: a Wi-LE
// beacon carries ~8× more payload per transmission.
const MaxAdvData = 31

// Address is a BLE device address.
type Address [6]byte

// AdvPDU is an advertising-channel PDU.
type AdvPDU struct {
	Type PDUType
	// TxAdd marks AdvA as random (true) or public (false).
	TxAdd bool
	// AdvA is the advertiser's address.
	AdvA Address
	// Data is the AdvData payload (AD structures).
	Data []byte
}

// Marshal serializes the PDU (header + payload, without CRC/whitening).
func (p *AdvPDU) Marshal() ([]byte, error) {
	if len(p.Data) > MaxAdvData {
		return nil, fmt.Errorf("ble: AdvData %d bytes exceeds %d", len(p.Data), MaxAdvData)
	}
	payloadLen := 6 + len(p.Data)
	h0 := byte(p.Type) & 0x0f
	if p.TxAdd {
		h0 |= 0x40
	}
	out := make([]byte, 0, 2+payloadLen)
	out = append(out, h0, byte(payloadLen))
	out = append(out, p.AdvA[:]...)
	return append(out, p.Data...), nil
}

// ParseAdvPDU decodes an advertising PDU.
func ParseAdvPDU(b []byte) (*AdvPDU, error) {
	if len(b) < 2 {
		return nil, errors.New("ble: PDU shorter than header")
	}
	p := &AdvPDU{
		Type:  PDUType(b[0] & 0x0f),
		TxAdd: b[0]&0x40 != 0,
	}
	n := int(b[1] & 0x3f)
	if len(b) < 2+n {
		return nil, fmt.Errorf("ble: PDU claims %d payload bytes, have %d", n, len(b)-2)
	}
	if n < 6 {
		return nil, fmt.Errorf("ble: advertising payload %d bytes, below AdvA size", n)
	}
	copy(p.AdvA[:], b[2:8])
	p.Data = b[8 : 2+n]
	return p, nil
}

// CRC24 computes the BLE link-layer CRC (Core 4.2 Vol 6 Part B §3.1.1:
// polynomial x²⁴+x¹⁰+x⁹+x⁶+x⁴+x³+x+1, advertising-channel preset 0x555555)
// over b, returning the 3 CRC bytes in on-air order (the register's
// position 23 is transmitted first; bits pack LSBit-first per byte).
func CRC24(b []byte) [3]byte {
	state := uint32(0x555555) // register position i == state bit i
	// Feedback taps: position 0 plus XOR gates before positions
	// 1, 3, 4, 6, 9, 10 — the polynomial's low terms.
	const taps = 0x00065b
	for _, octet := range b {
		for i := 0; i < 8; i++ { // data bits enter LSBit first
			in := uint32(octet>>i) & 1
			fb := state>>23&1 ^ in
			state = state << 1 & 0xffffff
			if fb == 1 {
				state ^= taps
			}
		}
	}
	var crc [3]byte
	for i := 0; i < 24; i++ { // position 23 leaves the radio first
		if state>>(23-i)&1 == 1 {
			crc[i/8] |= 1 << (i % 8)
		}
	}
	return crc
}

// Whiten applies (or removes — it is an involution) BLE data whitening for
// the given RF channel index (Core 4.2 Vol 6 Part B §3.2: 7-bit LFSR
// x⁷+x⁴+1 seeded with the channel index), over a copy of b. The register
// layout matches the deployed implementations in open-source BLE sniffers.
func Whiten(channelIndex int, b []byte) []byte {
	out := append([]byte(nil), b...)
	lfsr := byte(channelIndex&0x3f) | 0x40
	for i := range out {
		for bit := byte(1); bit != 0; bit <<= 1 {
			if lfsr&1 != 0 {
				lfsr ^= 0x88
				out[i] ^= bit
			}
			lfsr >>= 1
		}
	}
	return out
}

// AdvChannels are the three advertising channel indices (data channel
// numbering: 37, 38, 39).
var AdvChannels = []int{37, 38, 39}

// MarshalOnAir produces the whitened PDU+CRC bitstream body for the given
// advertising channel (the part after preamble and access address).
func (p *AdvPDU) MarshalOnAir(channelIndex int) ([]byte, error) {
	pdu, err := p.Marshal()
	if err != nil {
		return nil, err
	}
	crc := CRC24(pdu)
	raw := append(pdu, crc[:]...)
	return Whiten(channelIndex, raw), nil
}

// ErrCRC reports a corrupted on-air packet.
var ErrCRC = errors.New("ble: CRC-24 mismatch")

// ParseOnAir reverses MarshalOnAir: dewhitens, verifies the CRC and parses
// the PDU.
func ParseOnAir(channelIndex int, b []byte) (*AdvPDU, error) {
	if len(b) < 5 {
		return nil, errors.New("ble: on-air packet too short")
	}
	raw := Whiten(channelIndex, b)
	pdu, crc := raw[:len(raw)-3], raw[len(raw)-3:]
	want := CRC24(pdu)
	if crc[0] != want[0] || crc[1] != want[1] || crc[2] != want[2] {
		return nil, ErrCRC
	}
	return ParseAdvPDU(pdu)
}

// --- AD structures (Core Specification Supplement) ---

// AD types used by the examples.
const (
	ADFlags            = 0x01
	ADCompleteName     = 0x09
	ADManufacturerData = 0xff
)

// ADStructure is one length-type-data element of AdvData.
type ADStructure struct {
	Type byte
	Data []byte
}

// AppendAD serializes structures into an AdvData payload.
func AppendAD(dst []byte, structures ...ADStructure) ([]byte, error) {
	for _, s := range structures {
		if len(s.Data) > 29 {
			return nil, fmt.Errorf("ble: AD structure data %d bytes too long", len(s.Data))
		}
		dst = append(dst, byte(1+len(s.Data)), s.Type)
		dst = append(dst, s.Data...)
	}
	if len(dst) > MaxAdvData {
		return nil, fmt.Errorf("ble: AdvData %d bytes exceeds %d", len(dst), MaxAdvData)
	}
	return dst, nil
}

// ParseAD decodes an AdvData payload into structures.
func ParseAD(b []byte) ([]ADStructure, error) {
	var out []ADStructure
	for len(b) > 0 {
		n := int(b[0])
		if n == 0 {
			break // early-terminator padding
		}
		if len(b) < 1+n {
			return nil, fmt.Errorf("ble: AD structure claims %d bytes, have %d", n, len(b)-1)
		}
		out = append(out, ADStructure{Type: b[1], Data: b[2 : 1+n]})
		b = b[1+n:]
	}
	return out, nil
}
