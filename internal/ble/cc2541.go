package ble

import (
	"time"

	"wile/internal/sim"
	"wile/internal/units"
)

// CC2541 power model.
//
// The paper does not use the ESP32's own BLE radio ("their Bluetooth
// implementation is inefficient in terms of power consumption") but the
// TI CC2541, quoting the manufacturer's measurement report [15]
// (swra347a, "Measuring Bluetooth Low Energy Power Consumption"). That
// report decomposes one connection event into the phase sequence modeled
// here; the phase durations and currents below follow the report's
// waveform, trimmed so the integral lands on the paper's Table 1 value of
// 71 µJ per packet at 3 V.

// CC2541Voltage is the coin-cell supply voltage of the TI reference
// measurement.
const CC2541Voltage = units.Volts(3.0)

// CC2541SleepCurrent is the between-events sleep current with the
// 32.768 kHz sleep oscillator running (Table 1: 1.1 µA idle).
const CC2541SleepCurrent = units.Amps(1.1e-6)

// Phase is one segment of a connection event.
type Phase struct {
	Name    string
	D       time.Duration
	Current units.Amps
}

// ConnectionEventPhases returns the swra347a phase decomposition of one
// slave connection event (wake → pre-processing → radio prep → RX master
// packet → turnaround → TX our data packet → post-processing).
func ConnectionEventPhases() []Phase {
	// Constant conversions keep this function inlinable, so the slice can
	// stay on the caller's stack (the per-packet hot path builds it 3×).
	return []Phase{
		{Name: "wake-up", D: 400 * time.Microsecond, Current: units.Amps(6.0e-3)},
		{Name: "pre-processing", D: 340 * time.Microsecond, Current: units.Amps(7.4e-3)},
		{Name: "pre-rx", D: 352 * time.Microsecond, Current: units.Amps(11.0e-3)},
		{Name: "rx", D: 190 * time.Microsecond, Current: units.Amps(17.5e-3)},
		{Name: "rx-tx-transition", D: 105 * time.Microsecond, Current: units.Amps(7.4e-3)},
		{Name: "tx", D: 115 * time.Microsecond, Current: units.Amps(18.2e-3)},
		{Name: "post-processing", D: 1190 * time.Microsecond, Current: units.Amps(7.4e-3)},
	}
}

// ConnectionEventDuration sums the phase durations.
func ConnectionEventDuration() time.Duration {
	var d time.Duration
	for _, p := range ConnectionEventPhases() {
		d += p.D
	}
	return d
}

// ConnectionEventCharge integrates one event's charge.
func ConnectionEventCharge() units.Coulombs {
	var c units.Coulombs
	for _, p := range ConnectionEventPhases() {
		c += units.Charge(p.Current, p.D)
	}
	return c
}

// ConnectionEventEnergy integrates one event's energy — the BLE "energy
// per packet" of Table 1.
func ConnectionEventEnergy() units.Joules {
	return ConnectionEventCharge().Energy(CC2541Voltage)
}

// Device is a simulated CC2541 slave: sleeps at CC2541SleepCurrent and
// plays a connection event per transmission, exactly like the esp32
// counterpart (piecewise-constant current, exact charge integral).
type Device struct {
	sched *sim.Scheduler

	lastT  sim.Time
	lastA  units.Amps
	charge units.Coulombs
	steps  []Step
	events int
}

// Step is one point of the current waveform.
type Step struct {
	At      sim.Time
	Current units.Amps
}

// NewDevice builds a sleeping CC2541.
func NewDevice(sched *sim.Scheduler) *Device {
	d := &Device{sched: sched, lastT: sched.Now(), lastA: CC2541SleepCurrent}
	d.steps = append(d.steps, Step{At: sched.Now(), Current: d.lastA})
	return d
}

func (d *Device) touch() {
	now := d.sched.Now()
	if now > d.lastT {
		d.charge += units.Charge(d.lastA, now.Sub(d.lastT))
		d.lastT = now
	}
}

func (d *Device) setCurrent(a units.Amps) {
	d.touch()
	if a == d.lastA {
		return
	}
	d.lastA = a
	d.steps = append(d.steps, Step{At: d.sched.Now(), Current: a})
}

// Current reports the instantaneous draw (meter.Probe).
func (d *Device) Current() units.Amps { return d.lastA }

// Charge reports the exact charge drawn since construction.
func (d *Device) Charge() units.Coulombs {
	d.touch()
	return d.charge
}

// Energy reports the exact energy drawn since construction.
func (d *Device) Energy() units.Joules { return d.Charge().Energy(CC2541Voltage) }

// Steps returns the recorded waveform.
func (d *Device) Steps() []Step {
	d.touch()
	return d.steps
}

// Events reports how many connection events have started.
func (d *Device) Events() int { return d.events }

// PlayConnectionEvent runs one slave connection event, then returns to
// sleep and calls done.
func (d *Device) PlayConnectionEvent(done func()) {
	d.events++
	phases := ConnectionEventPhases()
	var run func(i int)
	run = func(i int) {
		if i == len(phases) {
			d.setCurrent(CC2541SleepCurrent)
			if done != nil {
				done()
			}
			return
		}
		d.setCurrent(phases[i].Current)
		d.sched.DoAfter(phases[i].D, func() { run(i + 1) })
	}
	run(0)
}

// RunPeriodic schedules a connection event every interval, with the first
// at t=interval, until the scheduler is stopped or the caller stops
// running it.
func (d *Device) RunPeriodic(interval time.Duration) {
	var tick func()
	tick = func() {
		d.PlayConnectionEvent(func() {
			d.sched.DoAfter(interval-ConnectionEventDuration(), tick)
		})
	}
	d.sched.DoAfter(interval, tick)
}
