package sta_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"wile/internal/ap"
	"wile/internal/crypto80211"
	"wile/internal/dot11"
	"wile/internal/esp32"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/netstack"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
	"wile/internal/sta"
	"wile/internal/units"
)

type world struct {
	sched *sim.Scheduler
	med   *medium.Medium
	ap    *ap.AP
	sta   *sta.Station
}

var staAddr = dot11.MustParseMAC("02:57:00:00:00:01")

func newWorld() *world {
	sched := sim.New()
	med := medium.New(sched, phy.WiFi24Channel(6))
	a := ap.New(sched, med, ap.Config{
		SSID:       "lab-net",
		Passphrase: "correct horse battery staple",
		BSSID:      dot11.MustParseMAC("aa:bb:cc:00:00:01"),
		Channel:    6,
		IP:         netstack.MustParseIP("192.168.86.1"),
		Position:   medium.Position{X: 0, Y: 0},
	})
	a.Start()
	s := sta.New(sched, med, sta.Config{
		SSID:       "lab-net",
		Passphrase: "correct horse battery staple",
		Addr:       staAddr,
		Position:   medium.Position{X: 3, Y: 0},
	})
	return &world{sched: sched, med: med, ap: a, sta: s}
}

// join drives a Join to completion and returns its error.
func (w *world) join(t *testing.T) error {
	t.Helper()
	var result *error
	w.sta.Dev.SetState(esp32.StateCPUActive)
	w.sta.Join(func(err error) { result = &err })
	w.sched.RunUntil(w.sched.Now() + 10*sim.Second)
	if result == nil {
		t.Fatal("join never completed")
	}
	return *result
}

func TestJoinSucceeds(t *testing.T) {
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	if !w.sta.Joined() {
		t.Fatal("station does not report joined")
	}
	if w.sta.IP == netstack.IPZero {
		t.Fatal("no IP leased")
	}
	if w.sta.Router != netstack.MustParseIP("192.168.86.1") {
		t.Fatalf("router = %v", w.sta.Router)
	}
	if w.sta.RouterMAC != w.ap.Cfg.BSSID {
		t.Fatalf("router MAC = %v", w.sta.RouterMAC)
	}
	if w.sta.AID == 0 {
		t.Fatal("no AID assigned")
	}
	info, ok := w.ap.Station(staAddr)
	if !ok || !info.Associated || !info.Secured {
		t.Fatalf("AP view: %+v ok=%v", info, ok)
	}
	if w.ap.Stats.HandshakesDone != 1 {
		t.Fatalf("AP handshakes = %d", w.ap.Stats.HandshakesDone)
	}
}

func TestJoinWrongPassphraseFails(t *testing.T) {
	w := newWorld()
	w.sta.Cfg.Passphrase = "not the right one"
	err := w.join(t)
	if err == nil {
		t.Fatal("join succeeded with wrong passphrase")
	}
	if !errors.Is(err, sta.ErrHandshake) {
		t.Fatalf("err = %v, want handshake failure", err)
	}
	if w.sta.Joined() {
		t.Fatal("station claims joined")
	}
}

func TestJoinNoAPTimesOut(t *testing.T) {
	w := newWorld()
	w.ap.Stop()
	err := w.join(t)
	if !errors.Is(err, sta.ErrNoAP) {
		t.Fatalf("err = %v, want ErrNoAP", err)
	}
	// Device radio must be off again after the failed join.
	if w.sta.Port.Transceiver().On() {
		t.Fatal("radio left on after failed join")
	}
}

func TestJoinWrongSSIDIgnoresAP(t *testing.T) {
	w := newWorld()
	w.sta.Cfg.SSID = "someone-elses-net"
	w.sta.Cfg.Passphrase = "irrelevant"
	if err := w.join(t); !errors.Is(err, sta.ErrNoAP) {
		t.Fatalf("err = %v, want ErrNoAP", err)
	}
}

func TestSendReadingDeliversUplink(t *testing.T) {
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	var got []byte
	var gotFrom dot11.MAC
	w.ap.OnUplink = func(from dot11.MAC, et netstack.EtherType, payload []byte) {
		gotFrom = from
		got = append([]byte(nil), payload...)
	}
	var outcome *bool
	if err := w.sta.SendReading([]byte("temp=21.5"), 5683, func(ok bool) { outcome = &ok }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(sim.Second.Duration())
	if outcome == nil || !*outcome {
		t.Fatal("reading not acknowledged")
	}
	if gotFrom != staAddr {
		t.Fatalf("uplink from %v", gotFrom)
	}
	// Payload is 12 bytes of addressing metadata + the datagram.
	if len(got) < 12 || string(got[12:]) != "temp=21.5" {
		t.Fatalf("uplink payload %q", got)
	}
	if w.ap.Stats.UplinkFrames != 1 {
		t.Fatalf("uplink frames = %d", w.ap.Stats.UplinkFrames)
	}
}

func TestSendReadingBeforeJoinFails(t *testing.T) {
	w := newWorld()
	if err := w.sta.SendReading([]byte("x"), 1, nil); !errors.Is(err, sta.ErrNotJoined) {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinFrameCountsMatchPaper(t *testing.T) {
	// §3.1: "at least 8 frames are exchanged" in the 4-way handshake;
	// ≈20 MAC-layer frames total for the join; "7 higher-layer frames
	// including DHCP and ARP".
	w := newWorld()
	counts := map[string]int{}
	protectedFrames, eapolFrames := 0, 0
	mon := mac.New(w.sched, w.med, "monitor", medium.Position{X: 1, Y: 0},
		dot11.MustParseMAC("02:00:00:00:00:99"), phy.RateHTMCS7, 0, phy.SensitivityWiFi1M, sim.NewRand(9))
	mon.AutoACK = false
	mon.SetRadioOn(true)
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		kind := f.Kind().String()
		if kind == "beacon" {
			return // periodic, not part of the join exchange
		}
		counts[kind]++
		if d, ok := f.(*dot11.Data); ok && len(d.Payload) > 0 {
			if d.Header.FC.Protected {
				if d.Header.FC.FromDS && d.RA().IsGroup() {
					return // AP's GTK group relay: not client join cost
				}
				// Post-handshake traffic (DHCP/ARP) is CCMP ciphertext;
				// a passive monitor sees only that it is protected.
				protectedFrames++
				return
			}
			if et, _, err := netstack.UnwrapSNAP(d.Payload); err == nil && et == netstack.EtherTypeEAPOL {
				eapolFrames++
			}
		}
	}

	if err := w.join(t); err != nil {
		t.Fatal(err)
	}

	if eapolFrames != 4 {
		t.Errorf("EAPOL frames = %d, want 4", eapolFrames)
	}
	// 4 EAPOL + their 4 ACKs = the paper's "at least 8 frames".
	if eapolFrames+4 < 8 {
		t.Errorf("4-way exchange %d frames, want ≥8", eapolFrames+4)
	}
	// The 7 higher-layer frames (4 DHCP + 3 ARP) ride encrypted.
	if protectedFrames != 7 {
		t.Errorf("protected frames = %d, want 7 (4 DHCP + 3 ARP under CCMP)", protectedFrames)
	}
	// MAC-layer total (everything on air except beacons, the higher-layer
	// data frames, and their ACKs): mgmt + EAPOL data + ACKs.
	total := 0
	for _, v := range counts {
		total += v
	}
	// Four of the data frames on air are the AP's unACKed GTK group
	// relays of the client's broadcast frames (two DHCP, two ARP);
	// exclude them like beacons.
	macLayer := total - 2*protectedFrames - 4
	if macLayer < 19 {
		t.Errorf("MAC-layer join frames = %d, paper counts ≈20 (we emit 19: broadcast probe draws no ACK)", macLayer)
	}
	if counts["ack"] == 0 {
		t.Error("no ACKs observed")
	}
	for _, kind := range []string{"probe-req", "probe-resp", "auth", "assoc-req", "assoc-resp"} {
		if counts[kind] == 0 {
			t.Errorf("no %s frame observed", kind)
		}
	}
}

func TestWiFiDCFullCycleEnergy(t *testing.T) {
	// The Figure 3a / Table 1 WiFi-DC episode: boot from deep sleep, full
	// rejoin, one datagram, back to deep sleep. Table 1: 238.2 mJ.
	w := newWorld()
	dev := w.sta.Dev

	// 200 ms of deep sleep before the wake, as in the figure.
	var txOK *bool
	w.sched.After(200*sim.Millisecond.Duration(), func() {
		dev.SetState(esp32.StateCPUActive)
		dev.PlaySegments(esp32.BootWiFi(), func() {
			w.sta.Join(func(err error) {
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
				w.sta.SendReading([]byte("temp=21.5"), 5683, func(ok bool) {
					txOK = &ok
					w.sta.Sleep()
				})
			})
		})
	})
	w.sched.RunUntil(3 * sim.Second)

	if txOK == nil || !*txOK {
		t.Fatal("transmission never completed")
	}
	energy := dev.Energy()
	t.Logf("WiFi-DC episode energy: %.1f mJ (paper: 238.2 mJ)", energy.Milli())
	if energy < units.Scale(units.MilliJoules(238.2), 0.85) || energy > units.Scale(units.MilliJoules(238.2), 1.15) {
		t.Errorf("episode energy %.1f mJ outside ±15%% of 238.2 mJ", energy.Milli())
	}
	// The TX instant lands in the paper's 1.6–1.9 s window.
	var txAt sim.Time
	for _, m := range dev.Marks() {
		if m.Label == "Tx" {
			txAt = m.At
		}
	}
	t.Logf("data TX at %v (paper: ≈1.78 s)", txAt)
	if txAt < 1200*sim.Millisecond || txAt > 2*sim.Second {
		t.Errorf("TX at %v, want within the Figure 3a window", txAt)
	}
	// Device back in deep sleep.
	if dev.GetState() != esp32.StateDeepSleep {
		t.Error("device not back in deep sleep")
	}
}

func TestWiFiPSEpisodeEnergy(t *testing.T) {
	// Table 1 WiFi-PS: 19.8 mJ per message from the power-save idle state.
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	var psOK *bool
	w.sta.EnterPowerSave(func(ok bool) { psOK = &ok })
	w.sched.RunFor(sim.Second.Duration())
	if psOK == nil || !*psOK {
		t.Fatal("power-save entry failed")
	}
	info, _ := w.ap.Station(staAddr)
	if !info.Dozing {
		t.Fatal("AP does not see the station dozing")
	}
	if w.sta.Dev.GetState() != esp32.StateWiFiPSIdle {
		t.Fatalf("device state %v", w.sta.Dev.GetState())
	}

	before := w.sta.Dev.Energy()
	start := w.sched.Now()
	var txOK *bool
	if err := w.sta.SendReadingPS([]byte("temp=21.5"), 5683, func(ok bool) { txOK = &ok }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(sim.Second.Duration())
	if txOK == nil || !*txOK {
		t.Fatal("PS transmission failed")
	}
	episodeIdle := units.Energy(units.Power(esp32.Voltage, esp32.StateCurrent(esp32.StateWiFiPSIdle)), w.sched.Now().Sub(start))
	energy := w.sta.Dev.Energy() - before - episodeIdle // subtract the idle floor outside the episode
	t.Logf("WiFi-PS episode energy: %.1f mJ above idle (paper: 19.8 mJ)", energy.Milli())
	if energy < units.Scale(units.MilliJoules(19.8), 0.8) || energy > units.Scale(units.MilliJoules(19.8), 1.2) {
		t.Errorf("PS episode energy %.1f mJ outside ±20%% of 19.8 mJ", energy.Milli())
	}
	if w.sta.Dev.GetState() != esp32.StateWiFiPSIdle {
		t.Error("device did not return to PS idle")
	}
}

func TestSecondJoinAfterSleepWorks(t *testing.T) {
	// WiFi-DC repeats the join every cycle; the second cycle must behave
	// like the first (fresh supplicant, fresh DHCP transaction).
	w := newWorld()
	for cycle := 0; cycle < 3; cycle++ {
		if err := w.join(t); err != nil {
			t.Fatalf("cycle %d join: %v", cycle, err)
		}
		var ok *bool
		w.sta.SendReading([]byte(fmt.Sprintf("cycle-%d", cycle)), 5683, func(o bool) { ok = &o })
		w.sched.RunFor(sim.Second.Duration())
		if ok == nil || !*ok {
			t.Fatalf("cycle %d tx failed", cycle)
		}
		w.sta.Sleep()
		w.sched.RunFor(sim.Second.Duration())
	}
	if w.ap.Stats.HandshakesDone != 3 {
		t.Fatalf("handshakes = %d, want 3", w.ap.Stats.HandshakesDone)
	}
}

func TestJoinBusyRejected(t *testing.T) {
	w := newWorld()
	w.sta.Dev.SetState(esp32.StateCPUActive)
	w.sta.Join(func(error) {})
	var second *error
	w.sta.Join(func(err error) { second = &err })
	if second == nil || !errors.Is(*second, sta.ErrBusy) {
		t.Fatal("concurrent join not rejected")
	}
	w.sched.RunUntil(10 * sim.Second)
}

func TestDataFramesAreCCMPProtected(t *testing.T) {
	// After the 4-way handshake every data frame on the air must carry
	// the Protected bit and CCMP ciphertext: a passive monitor cannot
	// read the sensor value, and the AP rejects cleartext injections.
	w := newWorld()
	var protectedPayloads [][]byte
	mon := mac.New(w.sched, w.med, "monitor", medium.Position{X: 1, Y: 0},
		dot11.MustParseMAC("02:00:00:00:00:97"), phy.RateHTMCS7, 0, phy.SensitivityWiFi1M, sim.NewRand(4))
	mon.AutoACK = false
	mon.SetRadioOn(true)
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		if d, ok := f.(*dot11.Data); ok && d.Header.FC.Protected {
			protectedPayloads = append(protectedPayloads, append([]byte(nil), d.Payload...))
		}
	}
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	var outcome *bool
	secret := []byte("super-secret-reading-42")
	if err := w.sta.SendReading(secret, 5683, func(ok bool) { outcome = &ok }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(sim.Second.Duration())
	if outcome == nil || !*outcome {
		t.Fatal("reading not delivered")
	}
	if len(protectedPayloads) < 8 {
		t.Fatalf("only %d protected frames on the air (want DHCP+ARP+reading)", len(protectedPayloads))
	}
	for i, p := range protectedPayloads {
		if bytes.Contains(p, secret) {
			t.Fatalf("frame %d leaks the plaintext reading", i)
		}
		if bytes.Contains(p, []byte{0xaa, 0xaa, 0x03, 0, 0, 0}) {
			t.Fatalf("frame %d leaks a cleartext SNAP header", i)
		}
	}

	// A cleartext data injection from the (secured) station's address must
	// be dropped by the AP, not delivered.
	uplinkBefore := w.ap.Stats.UplinkFrames
	forged := dot11.NewDataToAP(w.ap.Cfg.BSSID, staAddr, w.ap.Cfg.BSSID,
		netstack.WrapSNAP(netstack.EtherTypeIPv4, []byte("forged")))
	injector := mac.New(w.sched, w.med, "injector", medium.Position{X: 1, Y: 1},
		staAddr, phy.RateHTMCS7, 0, phy.SensitivityWiFi1M, sim.NewRand(6))
	injector.SetRadioOn(true)
	injector.Send(forged, nil)
	w.sched.RunFor(sim.Second.Duration())
	if w.ap.Stats.UplinkFrames != uplinkBefore {
		t.Fatal("AP accepted a cleartext frame from a secured station")
	}
	if w.ap.Stats.CCMPDrops == 0 {
		t.Fatal("CCMP drop not counted")
	}
}

func TestSnifferDecryptsJoinWithPassphrase(t *testing.T) {
	// The Wireshark trick: a passive monitor that knows the PSK captures
	// the handshake nonces, derives the PTK, and reads the "encrypted"
	// DHCP exchange — validating that our on-air CCMP bytes are the real
	// construction, not an opaque simulation flag.
	w := newWorld()
	sniffer := crypto80211.NewSniffer("correct horse battery staple", "lab-net")
	var plaintexts [][]byte
	mon := mac.New(w.sched, w.med, "sniffer", medium.Position{X: 1, Y: 0},
		dot11.MustParseMAC("02:00:00:00:00:96"), phy.RateHTMCS7, 0, phy.SensitivityWiFi1M, sim.NewRand(8))
	mon.AutoACK = false
	mon.SetRadioOn(true)
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		if msdu, ok := sniffer.Observe(f); ok {
			plaintexts = append(plaintexts, append([]byte(nil), msdu...))
		}
	}

	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	var outcome *bool
	w.sta.SendReading([]byte("temp=21.5"), 5683, func(ok bool) { outcome = &ok })
	w.sched.RunFor(sim.Second.Duration())
	if outcome == nil || !*outcome {
		t.Fatal("reading not delivered")
	}

	if sniffer.Stats.HandshakesSeen != 1 {
		t.Fatalf("sniffer saw %d handshakes", sniffer.Stats.HandshakesSeen)
	}
	if !sniffer.CanDecrypt(w.ap.Cfg.BSSID, staAddr) {
		t.Fatal("sniffer has no PTK for the pair")
	}
	// DHCP (4) + ARP (3) + the reading (1) = 8 client↔AP MSDUs, plus the
	// AP's four GTK-protected re-broadcasts of the client's broadcast
	// frames (DISCOVER, REQUEST, ARP announce, ARP request) = 12.
	if len(plaintexts) != 12 {
		t.Fatalf("decrypted %d MSDUs, want 12", len(plaintexts))
	}
	// The decrypted MSDUs are real protocol bytes: find the DHCP
	// DISCOVER and the final sensor reading.
	var sawDiscover, sawReading bool
	for _, msdu := range plaintexts {
		et, payload, err := netstack.UnwrapSNAP(msdu)
		if err != nil {
			t.Fatalf("decrypted MSDU is not SNAP: %x", msdu)
		}
		switch et {
		case netstack.EtherTypeIPv4:
			if _, body, err := netstack.ParseIPv4(payload); err == nil {
				if udpHdr, data, err := netstack.ParseUDP(body); err == nil {
					if udpHdr.DstPort == netstack.DHCPServerPort {
						if msg, err := netstack.ParseDHCP(data); err == nil {
							if tp, _ := msg.Type(); tp == netstack.DHCPDiscover {
								sawDiscover = true
							}
						}
					}
					if udpHdr.DstPort == 5683 && string(data) == "temp=21.5" {
						sawReading = true
					}
				}
			}
		}
	}
	if !sawDiscover {
		t.Error("sniffer never recovered the DHCP DISCOVER")
	}
	if !sawReading {
		t.Error("sniffer never recovered the sensor reading plaintext")
	}
	if sniffer.Stats.Undecryptable != 0 {
		t.Errorf("%d undecryptable frames with the right passphrase", sniffer.Stats.Undecryptable)
	}
}

func TestSnifferWrongPassphraseDecryptsNothing(t *testing.T) {
	w := newWorld()
	sniffer := crypto80211.NewSniffer("wrong passphrase entirely", "lab-net")
	decrypted := 0
	mon := mac.New(w.sched, w.med, "sniffer", medium.Position{X: 1, Y: 0},
		dot11.MustParseMAC("02:00:00:00:00:95"), phy.RateHTMCS7, 0, phy.SensitivityWiFi1M, sim.NewRand(8))
	mon.AutoACK = false
	mon.SetRadioOn(true)
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		if _, ok := sniffer.Observe(f); ok {
			decrypted++
		}
	}
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	if decrypted != 0 {
		t.Fatalf("wrong passphrase decrypted %d frames", decrypted)
	}
	if sniffer.Stats.Undecryptable == 0 {
		t.Fatal("no undecryptable frames counted")
	}
}

func TestPowerSaveDownlinkRetrieval(t *testing.T) {
	// The §3.2 round trip: the AP buffers downlink data for a dozing
	// station, advertises it in the TIM, and the station — waking only for
	// every 3rd beacon — retrieves it with PS-Polls.
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	var psOK *bool
	w.sta.EnterPowerSave(func(ok bool) { psOK = &ok })
	w.sched.RunFor(sim.Second.Duration())
	if psOK == nil || !*psOK {
		t.Fatal("power-save entry failed")
	}
	var got []sta.DownlinkPayload
	if err := w.sta.StartPowerSaveListener(func(p sta.DownlinkPayload) { got = append(got, p) }); err != nil {
		t.Fatal(err)
	}

	// The AP queues two MSDUs for the dozing station (as a push from the
	// DS would); both must be buffered, not transmitted.
	w.ap.PushDownlink(staAddr, netstack.WrapSNAP(netstack.EtherTypeIPv4, []byte("config-1")))
	w.ap.PushDownlink(staAddr, netstack.WrapSNAP(netstack.EtherTypeIPv4, []byte("config-2")))
	info, _ := w.ap.Station(staAddr)
	if info.Buffered != 2 {
		t.Fatalf("AP buffered %d", info.Buffered)
	}

	// Within 3 beacon intervals (~310 ms) the station must have polled
	// everything out.
	w.sched.RunFor(sim.Second.Duration())
	if len(got) != 2 {
		t.Fatalf("retrieved %d MSDUs, want 2", len(got))
	}
	if string(got[0].Payload) != "config-1" || string(got[1].Payload) != "config-2" {
		t.Fatalf("payloads: %q %q", got[0].Payload, got[1].Payload)
	}
	info, _ = w.ap.Station(staAddr)
	if info.Buffered != 0 {
		t.Fatalf("AP still buffers %d", info.Buffered)
	}
	if w.ap.Stats.PSPollsServiced != 2 {
		t.Fatalf("PS-Polls serviced = %d", w.ap.Stats.PSPollsServiced)
	}
	// Device is back in PS idle after the burst.
	if w.sta.Dev.GetState() != esp32.StateWiFiPSIdle {
		t.Fatalf("device state %v", w.sta.Dev.GetState())
	}
}

func TestPowerSaveListenerSkipsBeacons(t *testing.T) {
	// With listen interval 3 and nothing buffered, the station checks at
	// most every 3rd beacon and never polls.
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	w.sta.EnterPowerSave(nil)
	w.sched.RunFor(sim.Second.Duration())
	w.sta.StartPowerSaveListener(nil)
	w.sched.RunFor(2 * sim.Second.Duration())
	if w.ap.Stats.PSPollsServiced != 0 {
		t.Fatal("station polled with nothing buffered")
	}
}

func TestAPBridgesStationToStation(t *testing.T) {
	// The distribution-system function: station A sends a UDP datagram to
	// station B's leased IP; the AP decrypts it with A's pairwise key and
	// re-protects it with B's before relaying.
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	b := sta.New(w.sched, w.med, sta.Config{
		SSID:       "lab-net",
		Passphrase: "correct horse battery staple",
		Addr:       dot11.MustParseMAC("02:57:00:00:00:02"),
		Position:   medium.Position{X: 2, Y: 2},
		Seed:       0x575,
	})
	var joinErr *error
	b.Dev.SetState(esp32.StateCPUActive)
	b.Join(func(err error) { joinErr = &err })
	w.sched.RunUntil(w.sched.Now() + 10*sim.Second)
	if joinErr == nil || *joinErr != nil {
		t.Fatalf("second station join: %v", joinErr)
	}

	var got []byte
	var gotSrc netstack.IP
	b.OnDatagram = func(src, dst netstack.IP, sp, dp uint16, payload []byte) {
		gotSrc, got = src, payload
	}

	// A → B by IP.
	var sendOK *bool
	if err := w.sta.SendDatagram(b.IP, 40000, 7777, []byte("peer-to-peer"), func(ok bool) { sendOK = &ok }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(sim.Second.Duration())
	if sendOK == nil || !*sendOK {
		t.Fatal("datagram not acknowledged")
	}

	if string(got) != "peer-to-peer" {
		t.Fatalf("bridged payload %q", got)
	}
	if gotSrc != w.sta.IP {
		t.Fatalf("bridged src %v", gotSrc)
	}
	if w.ap.Stats.BridgedFrames != 1 {
		t.Fatalf("bridged frames = %d", w.ap.Stats.BridgedFrames)
	}
	if w.ap.Stats.UplinkFrames != 0 {
		t.Fatal("bridged frame also counted as uplink")
	}
}

func TestGroupRelayDecryptsWithGTK(t *testing.T) {
	// Station B must hear station A's broadcast ARP announce, relayed by
	// the AP under the group key B received in its own message 3.
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	b := sta.New(w.sched, w.med, sta.Config{
		SSID:       "lab-net",
		Passphrase: "correct horse battery staple",
		Addr:       dot11.MustParseMAC("02:57:00:00:00:03"),
		Position:   medium.Position{X: 2, Y: 1},
		Seed:       0x576,
	})
	var joinErr *error
	b.Dev.SetState(esp32.StateCPUActive)
	b.Join(func(err error) { joinErr = &err })
	w.sched.RunUntil(w.sched.Now() + 10*sim.Second)
	if joinErr == nil || *joinErr != nil {
		t.Fatalf("station B join: %v", joinErr)
	}
	relaysBefore := w.ap.Stats.GroupRelays

	// A broadcasts a datagram; the AP floods it; B receives it decrypted
	// via its GTK session.
	var got []byte
	b.OnDatagram = func(src, dst netstack.IP, sp, dp uint16, payload []byte) {
		if dp == 9999 {
			got = payload
		}
	}
	if err := w.sta.SendDatagram(netstack.IPBroadcast, 40000, 9999, []byte("hello-bss"), nil); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(sim.Second.Duration())
	if w.ap.Stats.GroupRelays != relaysBefore+1 {
		t.Fatalf("group relays = %d, want %d", w.ap.Stats.GroupRelays, relaysBefore+1)
	}
	if string(got) != "hello-bss" {
		t.Fatalf("station B received %q via the GTK", got)
	}
}

func TestStationHandlesDeauth(t *testing.T) {
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	var reason *dot11.ReasonCode
	w.sta.OnDisconnect = func(r dot11.ReasonCode) { reason = &r }

	// The AP expels the station (e.g. admin action).
	d := &dot11.Deauth{Reason: dot11.ReasonInactivity}
	d.Header.Addr1 = staAddr
	d.Header.Addr2 = w.ap.Cfg.BSSID
	d.Header.Addr3 = w.ap.Cfg.BSSID
	w.ap.Port.Send(d, nil)
	w.sched.RunFor(sim.Second.Duration())

	if reason == nil || *reason != dot11.ReasonInactivity {
		t.Fatalf("OnDisconnect reason = %v", reason)
	}
	if w.sta.Joined() {
		t.Fatal("station still claims joined")
	}
	if err := w.sta.SendReading([]byte("x"), 1, nil); !errors.Is(err, sta.ErrNotJoined) {
		t.Fatalf("post-deauth send: %v", err)
	}
}

func TestForeignDeauthIgnored(t *testing.T) {
	w := newWorld()
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	// A deauth claiming a different BSS must not tear anything down.
	d := &dot11.Deauth{Reason: dot11.ReasonLeaving}
	d.Header.Addr1 = staAddr
	d.Header.Addr2 = dot11.MustParseMAC("aa:aa:aa:aa:aa:99")
	d.Header.Addr3 = dot11.MustParseMAC("aa:aa:aa:aa:aa:99")
	forger := mac.New(w.sched, w.med, "forger", medium.Position{X: 1, Y: 1},
		dot11.MustParseMAC("aa:aa:aa:aa:aa:99"), phy.RateHTMCS7, 0, phy.SensitivityWiFi1M, sim.NewRand(3))
	forger.SetRadioOn(true)
	forger.Send(d, nil)
	w.sched.RunFor(sim.Second.Duration())
	if !w.sta.Joined() {
		t.Fatal("foreign deauth tore down the association")
	}
}

func TestFiveStationsJoinConcurrently(t *testing.T) {
	// Five clients wake within 150 ms of each other and all complete the
	// full join — interleaved probe/auth/assoc exchanges, five overlapping
	// 4-way handshakes and DHCP transactions on one channel.
	w := newWorld()
	const n = 5
	stations := []*sta.Station{w.sta}
	for i := 1; i < n; i++ {
		stations = append(stations, sta.New(w.sched, w.med, sta.Config{
			SSID:       "lab-net",
			Passphrase: "correct horse battery staple",
			Addr:       dot11.MustParseMAC(fmt.Sprintf("02:57:00:00:01:%02x", i)),
			Position:   medium.Position{X: 2 + float64(i)*0.5, Y: float64(i)},
			Seed:       uint64(0x1000 + i),
		}))
	}
	errs := make([]*error, n)
	for i, s := range stations {
		i, s := i, s
		w.sched.After(time.Duration(i)*30*time.Millisecond, func() {
			s.Dev.SetState(esp32.StateCPUActive)
			s.Join(func(err error) { errs[i] = &err })
		})
	}
	w.sched.RunUntil(15 * sim.Second)

	ips := map[netstack.IP]int{}
	for i, s := range stations {
		if errs[i] == nil {
			t.Fatalf("station %d never finished", i)
		}
		if *errs[i] != nil {
			t.Fatalf("station %d join: %v", i, *errs[i])
		}
		if !s.Joined() {
			t.Fatalf("station %d not joined", i)
		}
		ips[s.IP]++
		info, ok := w.ap.Station(s.Cfg.Addr)
		if !ok || !info.Secured {
			t.Fatalf("AP does not see station %d secured", i)
		}
	}
	if len(ips) != n {
		t.Fatalf("lease collision: %v", ips)
	}
	if w.ap.Stats.HandshakesDone != n {
		t.Fatalf("handshakes = %d", w.ap.Stats.HandshakesDone)
	}
	// Distinct AIDs.
	aids := map[uint16]bool{}
	for _, s := range stations {
		if aids[s.AID] {
			t.Fatalf("duplicate AID %d", s.AID)
		}
		aids[s.AID] = true
	}
	// And each can transmit.
	oks := 0
	for _, s := range stations {
		s.SendReading([]byte("x"), 5683, func(ok bool) {
			if ok {
				oks++
			}
		})
	}
	w.sched.RunFor(2 * sim.Second.Duration())
	if oks != n {
		t.Fatalf("%d of %d post-join transmissions succeeded", oks, n)
	}
}

// TestJoinPhaseSpans verifies the join state machine emits one B/E slice
// per phase on the MAC track — probe, auth, assoc, 4-way, dhcp, arp, in
// that order — with every opened slice closed by the time Join completes,
// so the Figure-3a timeline shows the phases as nested spans instead of
// bare instants.
func TestJoinPhaseSpans(t *testing.T) {
	w := newWorld()
	rec := obs.NewRecorder()
	w.sta.TraceTo(rec)
	if err := w.join(t); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The phase names are unique to the join slices (the MAC's own frame
	// spans are "tx auth", "rx assoc-resp", ... — never the bare phase
	// name), so ordered substring search pins both presence and order.
	last := -1
	for _, phase := range []string{"probe", "auth", "assoc", "4-way", "dhcp", "arp"} {
		idx := strings.Index(out, `"name":"`+phase+`"}`)
		if idx < 0 {
			t.Fatalf("no slice named %q in the trace:\n%s", phase, out)
		}
		lineStart := strings.LastIndexByte(out[:idx], '\n') + 1
		if !strings.HasPrefix(out[lineStart:], `{"ph":"B","pid":1,"tid":2,`) { // mac track is tid 2
			t.Fatalf("%q slice is not a B event on the mac track: %s", phase, out[lineStart:idx+24])
		}
		if idx <= last {
			t.Fatalf("phase %q opens out of order", phase)
		}
		last = idx
	}
	// Every Begin on the mac track must have a matching End: the join left
	// no phase running off the edge of the trace.
	begins := strings.Count(out, `"ph":"B","pid":1,"tid":2`)
	ends := strings.Count(out, `"ph":"E","pid":1,"tid":2`)
	if begins != ends {
		t.Fatalf("mac track has %d Begins but %d Ends", begins, ends)
	}
}

// TestJoinFailureClosesPhaseSpan verifies a failed join (no AP on the air)
// still closes its open phase slice on the way out.
func TestJoinFailureClosesPhaseSpan(t *testing.T) {
	sched := sim.New()
	med := medium.New(sched, phy.WiFi24Channel(6))
	s := sta.New(sched, med, sta.Config{
		SSID: "nobody-home", Passphrase: "x", Addr: staAddr,
	})
	rec := obs.NewRecorder()
	s.TraceTo(rec)
	var result *error
	s.Dev.SetState(esp32.StateCPUActive)
	s.Join(func(err error) { result = &err })
	sched.RunUntil(sched.Now() + 10*sim.Second)
	if result == nil || !errors.Is(*result, sta.ErrNoAP) {
		t.Fatalf("join result = %v, want ErrNoAP", result)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	begins := strings.Count(out, `"ph":"B","pid":1,"tid":2`)
	ends := strings.Count(out, `"ph":"E","pid":1,"tid":2`)
	if begins == 0 {
		t.Fatal("failed join recorded no phase slice at all")
	}
	if begins != ends {
		t.Fatalf("failed join left a phase open: %d Begins, %d Ends", begins, ends)
	}
}
