// Package sta implements the WiFi client state machine whose cost the
// paper measures and Wi-LE eliminates: active scan → open authentication →
// association → WPA2 4-way handshake → DHCP → ARP → first data frame.
//
// The same station runs the two baseline scenarios of §5.3:
//
//   - WiFi-DC: deep-sleep between transmissions, full rejoin on every wake
//     (Figure 3a; 238.2 mJ per message in Table 1).
//   - WiFi-PS: stay associated in aggressive power-save (listen interval 3,
//     automatic light sleep; 4.5 mA idle, 19.8 mJ per message).
//
// Processing delays: an 80 MHz microcontroller does not produce EAPOL
// responses in microseconds. The Timing struct models the client-side
// compute/driver latencies visible in the paper's Figure 3a phase widths;
// each constant documents which phase it calibrates.
package sta

import (
	"errors"
	"fmt"
	"time"

	"wile/internal/crypto80211"
	"wile/internal/dot11"
	"wile/internal/esp32"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/netstack"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// Timing models client-side processing latencies. Zero fields take the
// defaults below.
type Timing struct {
	// ScanDwell is the wait on-channel after a probe request before
	// treating the scan attempt as failed.
	ScanDwell time.Duration
	// AuthProcessing is the driver latency between probe response and
	// authentication request, and again before association.
	AuthProcessing time.Duration
	// EAPOLProcessingM2 is the supplicant compute time before M2 — the
	// dominant client-side cost (PSK→PTK derivation on the MCU).
	EAPOLProcessingM2 time.Duration
	// EAPOLProcessingM4 is the supplicant compute time before M4.
	EAPOLProcessingM4 time.Duration
	// StackSetup is the post-handshake network-interface bring-up before
	// DHCP starts.
	StackSetup time.Duration
	// NetProcessing is the client-side handling latency per DHCP/ARP
	// message.
	NetProcessing time.Duration
	// ResponseTimeout bounds each wait for a peer response before retry.
	ResponseTimeout time.Duration
	// PSWakeCPU and PSWakeListen shape the WiFi-PS transmit episode: MCU
	// wake-up from automatic light sleep, then radio-on resync before the
	// data frame. Calibrated to Table 1's 19.8 mJ per message.
	PSWakeCPU    time.Duration
	PSWakeListen time.Duration
}

// DefaultTiming reproduces the Figure 3a phase widths (probe/auth/assoc +
// 4-way ≈ 0.85 s → 1.15 s; DHCP/ARP ≈ 1.15 s → 1.75 s).
func DefaultTiming() Timing {
	return Timing{
		ScanDwell:         40 * time.Millisecond,
		AuthProcessing:    30 * time.Millisecond,
		EAPOLProcessingM2: 160 * time.Millisecond,
		EAPOLProcessingM4: 70 * time.Millisecond,
		StackSetup:        120 * time.Millisecond,
		NetProcessing:     45 * time.Millisecond,
		ResponseTimeout:   300 * time.Millisecond,
		PSWakeCPU:         8 * time.Millisecond,
		PSWakeListen:      60 * time.Millisecond,
	}
}

func (t Timing) withDefaults() Timing {
	d := DefaultTiming()
	if t.ScanDwell == 0 {
		t.ScanDwell = d.ScanDwell
	}
	if t.AuthProcessing == 0 {
		t.AuthProcessing = d.AuthProcessing
	}
	if t.EAPOLProcessingM2 == 0 {
		t.EAPOLProcessingM2 = d.EAPOLProcessingM2
	}
	if t.EAPOLProcessingM4 == 0 {
		t.EAPOLProcessingM4 = d.EAPOLProcessingM4
	}
	if t.StackSetup == 0 {
		t.StackSetup = d.StackSetup
	}
	if t.NetProcessing == 0 {
		t.NetProcessing = d.NetProcessing
	}
	if t.ResponseTimeout == 0 {
		t.ResponseTimeout = d.ResponseTimeout
	}
	if t.PSWakeCPU == 0 {
		t.PSWakeCPU = d.PSWakeCPU
	}
	if t.PSWakeListen == 0 {
		t.PSWakeListen = d.PSWakeListen
	}
	return t
}

// Lease caches the network-layer state a duty-cycled client can reuse
// across deep sleeps (real ESP32 firmware persists this in RTC memory to
// skip DHCP/ARP on rejoin — one of the §1 "several different approaches"
// to cheaper WiFi).
type Lease struct {
	IP        netstack.IP
	Router    netstack.IP
	RouterMAC dot11.MAC
}

// Config parameterizes a station.
type Config struct {
	SSID       string
	Passphrase string
	Addr       dot11.MAC
	Position   medium.Position
	// CachedLease, when non-nil, skips the DHCP/ARP phase on Join: the
	// client trusts its stored lease and gateway MAC. Saves the Figure-3a
	// network-wait plateau at the risk of a stale lease.
	CachedLease *Lease
	// ListenInterval is the advertised beacon-skip count (the paper's
	// WiFi-PS wakes "only for every third beacon").
	ListenInterval uint16
	Timing         Timing
	Seed           uint64
}

// Errors returned by Join.
var (
	ErrNoAP        = errors.New("sta: no AP found (scan timeout)")
	ErrAuthFailed  = errors.New("sta: authentication failed")
	ErrAssocFailed = errors.New("sta: association failed")
	ErrHandshake   = errors.New("sta: 4-way handshake failed")
	ErrDHCPFailed  = errors.New("sta: DHCP failed")
	ErrARPFailed   = errors.New("sta: ARP failed")
	ErrNotJoined   = errors.New("sta: not joined")
	ErrBusy        = errors.New("sta: operation already in progress")
)

// FrameCounts tallies the frames the station itself sent and received
// during a join, by kind — the raw material for the §3.1 claim check.
type FrameCounts struct {
	Sent     map[string]int
	Received map[string]int
}

func newFrameCounts() FrameCounts {
	return FrameCounts{Sent: map[string]int{}, Received: map[string]int{}}
}

// Total sums all counters in one direction map.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Station is one WiFi client.
type Station struct {
	Cfg  Config
	Port *mac.Port
	// Dev is the power model; the station drives its states.
	Dev *esp32.Device
	// IP and Router hold the DHCP results after a successful join.
	IP, Router netstack.IP
	// RouterMAC is the resolved gateway hardware address.
	RouterMAC dot11.MAC
	// AID is the association ID.
	AID uint16
	// JoinFrames records the last join's frame exchange.
	JoinFrames FrameCounts
	// OnDatagram, when set, receives non-DHCP UDP datagrams delivered to
	// the station (e.g. frames bridged from another station by the AP).
	OnDatagram func(src, dst netstack.IP, srcPort, dstPort uint16, payload []byte)
	// OnDisconnect, when set, is notified when the AP deauthenticates an
	// established association.
	OnDisconnect func(reason dot11.ReasonCode)

	sched  *sim.Scheduler
	bssid  dot11.MAC
	joined bool
	busy   bool

	supp  *crypto80211.Supplicant
	dhcpc *netstack.DHCPClient
	// ccmp protects data frames once the 4-way handshake installs the
	// temporal key; nil before that (and for EAPOL frames, which are
	// cleartext by design).
	ccmp *crypto80211.CCMPSession
	// groupRx decrypts group-addressed downlink with the GTK from M3.
	groupRx *crypto80211.CCMPSession
	rng     *sim.Rand
	ipID    uint16

	// expect is the current await-continuation; it returns true when the
	// frame satisfied the wait.
	expect      func(f dot11.Frame) bool
	expectTimer *sim.Event

	// ps tracks the power-save beacon listener (powersave.go).
	ps psState

	// rec/macTrack carry the optional trace recorder (TraceTo): the join
	// state machine emits one B/E slice per phase (probe, auth, assoc,
	// 4-way, dhcp, arp) on the MAC track, nesting the port's own frame
	// spans inside the phase that caused them. phaseOpen remembers whether
	// a phase slice is currently open so phases close each other.
	rec       *obs.Recorder
	macTrack  obs.TrackID
	phaseOpen bool

	// Pending-completion slots for the data-frame-driven join phases
	// (EAPOL, DHCP, ARP), each with its timeout timer.
	handshakeDone  func(error)
	handshakeTimer *sim.Event
	dhcpDone       func(error)
	dhcpTimer      *sim.Event
	arpDone        func(error)
	arpTimer       *sim.Event
}

// New builds a station (radio off, deep sleep).
func New(sched *sim.Scheduler, med *medium.Medium, cfg Config) *Station {
	cfg.Timing = cfg.Timing.withDefaults()
	if cfg.ListenInterval == 0 {
		cfg.ListenInterval = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x57a
	}
	s := &Station{
		Cfg:   cfg,
		sched: sched,
		rng:   sim.NewRand(cfg.Seed),
		Dev:   esp32.New(sched),
	}
	s.Port = mac.New(sched, med, "sta:"+cfg.Addr.String(), cfg.Position, cfg.Addr,
		phy.RateHTMCS7SGI, 0, phy.SensitivityWiFi1M, sim.NewRand(cfg.Seed^0xffff))
	s.Port.Radio = s.Dev
	s.Port.Handler = s.handle
	return s
}

// TraceTo attaches the station's device and MAC to a trace recorder,
// registering one track per layer. Join phases arrive as instants through
// the device's MarkPhase calls. Passing a nil recorder detaches.
func (s *Station) TraceTo(r *obs.Recorder) {
	s.rec = r
	s.phaseOpen = false
	if r == nil {
		s.Dev.TraceTo(nil, 0)
		s.Port.TraceTo(nil, 0)
		return
	}
	name := "sta:" + s.Cfg.Addr.String()
	s.Dev.TraceTo(r, r.Track(name+" power"))
	s.macTrack = r.Track(name + " mac")
	s.Port.TraceTo(r, s.macTrack)
}

// beginJoinPhase opens a join-phase slice on the MAC track, closing the
// previous phase first: phases are sequential, never nested in each other.
func (s *Station) beginJoinPhase(name string) {
	if s.rec == nil {
		return
	}
	now := s.sched.Now()
	if s.phaseOpen {
		s.rec.End(s.macTrack, now)
	}
	s.rec.Begin(s.macTrack, now, name)
	s.phaseOpen = true
}

// endJoinPhase closes the open phase slice, if any; every Join exit path
// funnels through it so a failed join still reads cleanly in the timeline.
func (s *Station) endJoinPhase() {
	if s.rec == nil || !s.phaseOpen {
		return
	}
	s.rec.End(s.macTrack, s.sched.Now())
	s.phaseOpen = false
}

// Observe mirrors the station's MAC counters into the registry.
func (s *Station) Observe(reg *obs.Registry) {
	s.Port.Metrics = mac.MetricsFor(reg)
}

// countSent/countReceived update JoinFrames while a join is in flight.
func (s *Station) countSent(kind string) {
	if s.JoinFrames.Sent != nil {
		s.JoinFrames.Sent[kind]++
	}
}

// handle routes received frames to the active expectation and the
// steady-state paths (EAPOL, DHCP, ARP).
func (s *Station) handle(f dot11.Frame, rx medium.Reception) {
	if s.JoinFrames.Received != nil && s.busy {
		s.JoinFrames.Received[f.Kind().String()]++
	}
	if s.expect != nil && s.expect(f) {
		return
	}
	switch t := f.(type) {
	case *dot11.Beacon:
		s.handleBeacon(t, rx)
	case *dot11.Deauth:
		s.handleDeauth(t)
	case *dot11.Data:
		if t.Header.FC.FromDS {
			s.handleDownlink(t)
		}
	}
}

// handleDeauth tears down state when the AP expels us — e.g. after a
// failed handshake MIC, or an idle-timeout on a real AP. A pending join
// fails immediately instead of waiting out its timers.
func (s *Station) handleDeauth(d *dot11.Deauth) {
	if d.Header.Addr3 != s.bssid || s.bssid == (dot11.MAC{}) {
		return
	}
	wasJoined := s.joined
	s.joined = false
	s.supp = nil
	s.ccmp = nil
	s.groupRx = nil
	err := fmt.Errorf("%w: deauthenticated by AP (reason %d)", ErrHandshake, d.Reason)
	if s.handshakeDone != nil {
		s.finishHandshake(err)
		return
	}
	if s.dhcpDone != nil {
		s.finishDHCP(err)
		return
	}
	if wasJoined && s.OnDisconnect != nil {
		s.OnDisconnect(d.Reason)
	}
}

// await installs a one-shot expectation with a timeout.
func (s *Station) await(match func(dot11.Frame) bool, timeout time.Duration, onTimeout func()) {
	s.clearAwait()
	s.expect = func(f dot11.Frame) bool {
		if !match(f) {
			return false
		}
		s.clearAwait()
		return true
	}
	s.expectTimer = s.sched.After(timeout, func() {
		s.expectTimer = nil
		s.expect = nil
		onTimeout()
	})
}

func (s *Station) clearAwait() {
	s.expect = nil
	if s.expectTimer != nil {
		s.sched.Cancel(s.expectTimer)
		s.expectTimer = nil
	}
}

// send transmits a frame, counting it for the join log.
func (s *Station) send(f dot11.Frame, done func(ok bool)) {
	if s.busy {
		s.countSent(f.Kind().String())
	}
	if err := s.Port.Send(f, done); err != nil {
		panic(fmt.Sprintf("sta: %v", err)) // frame construction bug
	}
}

// Join drives the full association sequence. The device must already be
// booted (CPU active); Join manages the radio and power states and calls
// done exactly once.
func (s *Station) Join(done func(error)) {
	if s.busy {
		done(ErrBusy)
		return
	}
	if s.joined {
		done(nil)
		return
	}
	s.busy = true
	s.JoinFrames = newFrameCounts()
	finish := func(err error) {
		s.busy = false
		s.clearAwait()
		s.endJoinPhase()
		if err != nil {
			s.Port.SetRadioOn(false)
		}
		done(err)
	}
	s.Port.SetRadioOn(true)
	s.Dev.SetState(esp32.StateRadioListen)
	s.Dev.MarkPhase("Probe/Auth./Associate")
	s.beginJoinPhase("probe")
	s.probe(0, finish)
}

// probe performs the active scan.
func (s *Station) probe(attempt int, finish func(error)) {
	if attempt == 3 {
		finish(ErrNoAP)
		return
	}
	req := &dot11.ProbeReq{Elements: dot11.Elements{
		dot11.SSIDElement(s.Cfg.SSID),
		dot11.DefaultRates(),
	}}
	req.Header.Addr1 = dot11.Broadcast
	req.Header.Addr2 = s.Cfg.Addr
	req.Header.Addr3 = dot11.Broadcast

	s.await(func(f dot11.Frame) bool {
		resp, ok := f.(*dot11.ProbeResp)
		if !ok {
			return false
		}
		if ssid, _, ok := resp.Elements.SSID(); !ok || ssid != s.Cfg.SSID {
			return false
		}
		s.bssid = resp.Header.Addr3
		s.sched.DoAfter(s.Cfg.Timing.AuthProcessing, func() { s.authenticate(finish) })
		return true
	}, s.Cfg.Timing.ScanDwell, func() { s.probe(attempt+1, finish) })

	s.send(req, nil)
}

// authenticate runs open-system authentication.
func (s *Station) authenticate(finish func(error)) {
	s.beginJoinPhase("auth")
	req := &dot11.Auth{Algorithm: dot11.AuthOpen, Seq: 1}
	req.Header.Addr1 = s.bssid
	req.Header.Addr2 = s.Cfg.Addr
	req.Header.Addr3 = s.bssid

	s.await(func(f dot11.Frame) bool {
		resp, ok := f.(*dot11.Auth)
		if !ok || resp.Seq != 2 {
			return false
		}
		if resp.Status != dot11.StatusSuccess {
			finish(fmt.Errorf("%w: status %d", ErrAuthFailed, resp.Status))
			return true
		}
		s.sched.DoAfter(s.Cfg.Timing.AuthProcessing, func() { s.associate(finish) })
		return true
	}, s.Cfg.Timing.ResponseTimeout, func() { finish(ErrAuthFailed) })

	s.send(req, nil)
}

// associate sends the association request and prepares the supplicant.
func (s *Station) associate(finish func(error)) {
	s.beginJoinPhase("assoc")
	req := &dot11.AssocReq{
		Capability:     dot11.CapESS | dot11.CapPrivacy,
		ListenInterval: s.Cfg.ListenInterval,
		Elements: dot11.Elements{
			dot11.SSIDElement(s.Cfg.SSID),
			dot11.DefaultRates(),
			dot11.RSNElement(dot11.DefaultRSN()),
		},
	}
	req.Header.Addr1 = s.bssid
	req.Header.Addr2 = s.Cfg.Addr
	req.Header.Addr3 = s.bssid

	s.await(func(f dot11.Frame) bool {
		resp, ok := f.(*dot11.AssocResp)
		if !ok {
			return false
		}
		if resp.Status != dot11.StatusSuccess {
			finish(fmt.Errorf("%w: status %d", ErrAssocFailed, resp.Status))
			return true
		}
		s.AID = resp.AID
		s.prepareHandshake(finish)
		return true
	}, s.Cfg.Timing.ResponseTimeout, func() { finish(ErrAssocFailed) })

	s.send(req, nil)
}

// prepareHandshake arms the supplicant and waits for M1 (which arrives as
// an EAPOL data frame through handleDownlink).
func (s *Station) prepareHandshake(finish func(error)) {
	s.beginJoinPhase("4-way")
	var snonce [crypto80211.NonceLen]byte
	for i := range snonce {
		snonce[i] = byte(s.rng.Uint64())
	}
	pmk := crypto80211.PSK(s.Cfg.Passphrase, s.Cfg.SSID)
	s.supp = crypto80211.NewSupplicant(pmk, [6]byte(s.bssid), [6]byte(s.Cfg.Addr), snonce)
	s.handshakeDone = finish
	s.handshakeTimer = s.sched.After(4*s.Cfg.Timing.ResponseTimeout, func() {
		s.handshakeTimer = nil
		if s.handshakeDone != nil {
			d := s.handshakeDone
			s.handshakeDone = nil
			d(ErrHandshake)
		}
	})
}

// handleDownlink processes AP→station data frames, removing CCMP
// protection when present.
func (s *Station) handleDownlink(d *dot11.Data) {
	msdu := d.Payload
	if d.Header.FC.Protected {
		session := s.ccmp
		if d.Header.Addr1.IsGroup() {
			session = s.groupRx // group-addressed downlink uses the GTK
		}
		if session == nil {
			return // protected frame before keys: undecryptable
		}
		plain, err := session.Decapsulate(crypto80211.DataFrameMeta(d), msdu)
		if err != nil {
			return // bad MIC or replay: discard silently like hardware
		}
		msdu = plain
	}
	et, payload, err := netstack.UnwrapSNAP(msdu)
	if err != nil {
		return
	}
	if s.handlePSDownlink(et, payload, d.Header.FC.MoreData) {
		return
	}
	switch et {
	case netstack.EtherTypeEAPOL:
		s.handleEAPOL(payload)
	case netstack.EtherTypeARP:
		s.handleARP(payload)
	case netstack.EtherTypeIPv4:
		s.handleIPv4(payload)
	}
}

// handshake bookkeeping.
// handshakeDone is pending Join completion; handshakeTimer bounds the wait.
// (declared on Station below)

func (s *Station) handleEAPOL(pdu []byte) {
	if s.supp == nil || s.handshakeDone == nil {
		return
	}
	// Model the supplicant compute delay before responding.
	k, err := crypto80211.ParseEAPOLKey(pdu)
	if err != nil {
		return
	}
	delay := s.Cfg.Timing.EAPOLProcessingM2
	if k.Info&crypto80211.KeyInfoInstall != 0 {
		delay = s.Cfg.Timing.EAPOLProcessingM4
	}
	pduCopy := append([]byte(nil), pdu...)
	s.sched.DoAfter(delay, func() {
		if s.supp == nil || s.handshakeDone == nil {
			return
		}
		resp, err := s.supp.Handle(pduCopy)
		if err != nil {
			s.finishHandshake(fmt.Errorf("%w: %v", ErrHandshake, err))
			return
		}
		if resp != nil {
			s.sendEAPOL(resp)
		}
		if s.supp.Done() {
			s.finishHandshake(nil)
		}
	})
}

func (s *Station) finishHandshake(err error) {
	if s.handshakeTimer != nil {
		s.sched.Cancel(s.handshakeTimer)
		s.handshakeTimer = nil
	}
	d := s.handshakeDone
	s.handshakeDone = nil
	if d == nil {
		return
	}
	if err != nil {
		d(err)
		return
	}
	// Keys installed: from here every data frame is CCMP-protected, as
	// on the paper's WPA2 testbed.
	s.ccmp = crypto80211.NewCCMPSession(s.supp.PTK().TK)
	s.groupRx = crypto80211.NewCCMPSession(s.supp.GTK())
	if s.Cfg.CachedLease != nil {
		// Fast rejoin: reuse the stored lease, skipping DHCP and ARP.
		s.IP = s.Cfg.CachedLease.IP
		s.Router = s.Cfg.CachedLease.Router
		s.RouterMAC = s.Cfg.CachedLease.RouterMAC
		s.joined = true
		s.busy = false
		d(nil)
		return
	}
	// Bring up the network stack, then DHCP.
	s.Dev.MarkPhase("DHCP/ARP")
	s.beginJoinPhase("dhcp")
	s.Dev.SetState(esp32.StateNetworkWait)
	s.sched.DoAfter(s.Cfg.Timing.StackSetup, func() { s.startDHCP(d) })
}

// sendEAPOL wraps an EAPOL PDU for the uplink. Handshake frames are
// cleartext: the keys they negotiate do not exist yet.
func (s *Station) sendEAPOL(pdu []byte) {
	msdu := netstack.WrapSNAP(netstack.EtherTypeEAPOL, pdu)
	s.send(dot11.NewDataToAP(s.bssid, s.Cfg.Addr, s.bssid, msdu), nil)
}

// sendMSDU transmits an MSDU to the DS, CCMP-protecting it once the
// pairwise key is installed.
func (s *Station) sendMSDU(da dot11.MAC, msdu []byte, done func(ok bool)) {
	f := dot11.NewDataToAP(s.bssid, s.Cfg.Addr, da, msdu)
	if s.ccmp != nil {
		f.Header.FC.Protected = true
		body, err := s.ccmp.Encapsulate(crypto80211.DataFrameMeta(f), msdu)
		if err != nil {
			panic(fmt.Sprintf("sta: CCMP encapsulation: %v", err))
		}
		f.Payload = body
	}
	s.send(f, done)
}

// startDHCP runs the DISCOVER/OFFER/REQUEST/ACK exchange.
func (s *Station) startDHCP(finish func(error)) {
	s.dhcpc = netstack.NewDHCPClient(uint32(s.rng.Uint64()), [6]byte(s.Cfg.Addr))
	s.dhcpDone = finish
	s.dhcpTimer = s.sched.After(6*s.Cfg.Timing.ResponseTimeout, func() {
		s.dhcpTimer = nil
		if s.dhcpDone != nil {
			d := s.dhcpDone
			s.dhcpDone = nil
			d(ErrDHCPFailed)
		}
	})
	s.sendDHCP(s.dhcpc.Discover())
}

// sendDHCP wraps a DHCP message in UDP/IPv4/SNAP and transmits it.
func (s *Station) sendDHCP(msg *netstack.DHCP) {
	dg := netstack.AppendUDP(nil, netstack.UDPHeader{
		SrcPort: netstack.DHCPClientPort, DstPort: netstack.DHCPServerPort,
	}, msg.Append(nil))
	s.ipID++
	pkt := netstack.AppendIPv4(nil, netstack.IPv4Header{
		Protocol: netstack.ProtoUDP, Src: netstack.IPZero, Dst: netstack.IPBroadcast, ID: s.ipID,
	}, dg)
	s.sendMSDU(dot11.Broadcast, netstack.WrapSNAP(netstack.EtherTypeIPv4, pkt), nil)
}

func (s *Station) handleIPv4(payload []byte) {
	hdr, body, err := netstack.ParseIPv4(payload)
	if err != nil || hdr.Protocol != netstack.ProtoUDP {
		return
	}
	udp, data, err := netstack.ParseUDP(body)
	if err != nil {
		return
	}
	if udp.DstPort != netstack.DHCPClientPort {
		if s.OnDatagram != nil {
			s.OnDatagram(hdr.Src, hdr.Dst, udp.SrcPort, udp.DstPort, append([]byte(nil), data...))
		}
		return
	}
	if s.dhcpc == nil || s.dhcpDone == nil {
		return
	}
	// Copy: the reception buffer is not ours to retain across the
	// processing delay.
	dataCopy := append([]byte(nil), data...)
	s.sched.DoAfter(s.Cfg.Timing.NetProcessing, func() {
		if s.dhcpc == nil || s.dhcpDone == nil {
			return
		}
		msg, err := netstack.ParseDHCP(dataCopy)
		if err != nil {
			return
		}
		next, err := s.dhcpc.Handle(msg)
		if err != nil {
			s.finishDHCP(fmt.Errorf("%w: %v", ErrDHCPFailed, err))
			return
		}
		if next != nil {
			s.sendDHCP(next)
		}
		if s.dhcpc.Done() {
			s.IP = s.dhcpc.Assigned
			s.Router = s.dhcpc.Router
			s.finishDHCP(nil)
		}
	})
}

func (s *Station) finishDHCP(err error) {
	if s.dhcpTimer != nil {
		s.sched.Cancel(s.dhcpTimer)
		s.dhcpTimer = nil
	}
	d := s.dhcpDone
	s.dhcpDone = nil
	if d == nil {
		return
	}
	if err != nil {
		d(err)
		return
	}
	s.startARP(d)
}

// startARP first announces the freshly leased address (gratuitous ARP,
// which real DHCP clients emit for conflict detection — the 7th
// "higher-layer frame" of §3.1), then resolves the gateway's MAC.
func (s *Station) startARP(finish func(error)) {
	s.beginJoinPhase("arp")
	announce := netstack.NewARPRequest([6]byte(s.Cfg.Addr), s.IP, s.IP)
	s.sendMSDU(dot11.Broadcast, netstack.WrapSNAP(netstack.EtherTypeARP, announce.Append(nil)), nil)

	req := netstack.NewARPRequest([6]byte(s.Cfg.Addr), s.IP, s.Router)
	s.arpDone = finish
	s.arpTimer = s.sched.After(2*s.Cfg.Timing.ResponseTimeout, func() {
		s.arpTimer = nil
		if s.arpDone != nil {
			d := s.arpDone
			s.arpDone = nil
			d(ErrARPFailed)
		}
	})
	s.sendMSDU(dot11.Broadcast, netstack.WrapSNAP(netstack.EtherTypeARP, req.Append(nil)), nil)
}

func (s *Station) handleARP(payload []byte) {
	rep, err := netstack.ParseARP(payload)
	if err != nil || rep.Op != netstack.ARPReply || s.arpDone == nil {
		return
	}
	if rep.SenderIP != s.Router {
		return
	}
	s.RouterMAC = dot11.MAC(rep.SenderHW)
	if s.arpTimer != nil {
		s.sched.Cancel(s.arpTimer)
		s.arpTimer = nil
	}
	d := s.arpDone
	s.arpDone = nil
	s.sched.DoAfter(s.Cfg.Timing.NetProcessing, func() {
		s.joined = true
		s.busy = false
		d(nil)
	})
}

// SendDatagram transmits one UDP datagram to an arbitrary IP through the
// AP (which routes it upstream or bridges it to another station). Requires
// a completed Join.
func (s *Station) SendDatagram(dst netstack.IP, srcPort, dstPort uint16, payload []byte, done func(ok bool)) error {
	if !s.joined {
		return ErrNotJoined
	}
	dg := netstack.AppendUDP(nil, netstack.UDPHeader{SrcPort: srcPort, DstPort: dstPort}, payload)
	s.ipID++
	pkt := netstack.AppendIPv4(nil, netstack.IPv4Header{
		Protocol: netstack.ProtoUDP, Src: s.IP, Dst: dst, ID: s.ipID,
	}, dg)
	da := s.RouterMAC
	if dst == netstack.IPBroadcast {
		da = dot11.Broadcast
	}
	s.Dev.MarkPhase("Tx")
	s.sendMSDU(da, netstack.WrapSNAP(netstack.EtherTypeIPv4, pkt), done)
	return nil
}

// SendReading transmits one sensor datagram (UDP to the router) and calls
// done with the MAC-level outcome. Requires a completed Join.
func (s *Station) SendReading(payload []byte, dstPort uint16, done func(ok bool)) error {
	return s.SendDatagram(s.Router, 40000, dstPort, payload, done)
}

// Sleep drops the association state locally and deep-sleeps the device —
// the tail of every WiFi-DC cycle. It does not notify the AP (matching
// the scenario: "the WiFi chip disconnects from the AP after transmitting
// its data and goes to sleep").
func (s *Station) Sleep() {
	s.joined = false
	s.supp = nil
	s.dhcpc = nil
	s.ccmp = nil
	s.groupRx = nil
	s.Port.SetRadioOn(false)
	s.Dev.MarkPhase("Sleep")
	s.Dev.SetState(esp32.StateDeepSleep)
}

// EnterPowerSave announces power-save to the AP (null frame with the PM
// bit) and settles into the WiFi-PS idle state. Requires a completed Join.
func (s *Station) EnterPowerSave(done func(ok bool)) error {
	if !s.joined {
		return ErrNotJoined
	}
	return s.Port.Send(dot11.NewNull(s.bssid, s.Cfg.Addr, true), func(ok bool) {
		if ok {
			s.Dev.SetState(esp32.StateWiFiPSIdle)
		}
		if done != nil {
			done(ok)
		}
	})
}

// SendReadingPS performs one WiFi-PS transmit episode: MCU wake, radio
// resync, the data frame, then back to power-save idle. The episode's
// shape is what Table 1's 19.8 mJ and Figure 4's WiFi-PS curve integrate.
func (s *Station) SendReadingPS(payload []byte, dstPort uint16, done func(ok bool)) error {
	if !s.joined {
		return ErrNotJoined
	}
	s.Dev.SetState(esp32.StateCPUActive)
	s.sched.DoAfter(s.Cfg.Timing.PSWakeCPU, func() {
		s.Dev.SetState(esp32.StateRadioListen)
		s.sched.DoAfter(s.Cfg.Timing.PSWakeListen, func() {
			err := s.SendReading(payload, dstPort, func(ok bool) {
				s.Dev.SetState(esp32.StateWiFiPSIdle)
				if done != nil {
					done(ok)
				}
			})
			if err != nil && done != nil {
				s.Dev.SetState(esp32.StateWiFiPSIdle)
				done(false)
			}
		})
	})
	return nil
}

// CurrentLease exports the network-layer state for caching across sleeps.
func (s *Station) CurrentLease() *Lease {
	if !s.joined {
		return nil
	}
	return &Lease{IP: s.IP, Router: s.Router, RouterMAC: s.RouterMAC}
}

// Joined reports whether the station holds a secured association and a
// lease.
func (s *Station) Joined() bool { return s.joined }

// BSSID reports the associated AP (zero until the scan succeeds).
func (s *Station) BSSID() dot11.MAC { return s.bssid }
