package sta

import (
	"fmt"
	"time"

	"wile/internal/dot11"
	"wile/internal/esp32"
	"wile/internal/medium"
	"wile/internal/netstack"
)

// Station-side power-save downlink: the §3.2 mechanism. "A client turns
// off its radio when it has no packets to transmit and only wakes up
// periodically to receive the beacon frames transmitted by the AP... The
// access point indicates in the beacon if it has any packet for each
// connected client. If a client finds out that there are packets queued
// for it at the AP, it then asks the AP to transmit the packets, otherwise
// it goes back to sleep."
//
// The wake cadence is the listen interval (every 3rd beacon for the
// paper's WiFi-PS scenario); the "ask" is a PS-Poll control frame per
// buffered MSDU, repeated while the AP signals MoreData.

// DownlinkPayload is one MSDU retrieved from the AP's power-save buffer.
type DownlinkPayload struct {
	EtherType netstack.EtherType
	Payload   []byte
}

// psState tracks the power-save beacon listener.
type psState struct {
	active bool
	// OnDownlink receives retrieved buffered MSDUs.
	onDownlink func(DownlinkPayload)
	// beaconsSeen counts beacons since the last listen, implementing the
	// listen-interval skip.
	beaconsSeen uint16
	// polling marks an in-flight PS-Poll retrieval burst.
	polling bool
}

// StartPowerSaveListener begins processing AP beacons according to the
// listen interval: every ListenInterval-th beacon the station checks the
// TIM for its AID and retrieves buffered frames with PS-Polls. onDownlink
// receives each retrieved MSDU. Requires a completed Join and an
// EnterPowerSave announcement.
//
// Power accounting: the WiFi-PS idle state's 4.5 mA already embodies the
// beacon-wake duty cycle (see experiment.WiFiPSIdleModel); retrieval
// bursts add explicit radio-on episodes.
func (s *Station) StartPowerSaveListener(onDownlink func(DownlinkPayload)) error {
	if !s.joined {
		return ErrNotJoined
	}
	s.ps.active = true
	s.ps.onDownlink = onDownlink
	s.ps.beaconsSeen = 0
	return nil
}

// StopPowerSaveListener halts beacon processing.
func (s *Station) StopPowerSaveListener() {
	s.ps.active = false
	s.ps.onDownlink = nil
}

// handleBeacon implements the listen-interval TIM check.
func (s *Station) handleBeacon(b *dot11.Beacon, rx medium.Reception) {
	if !s.ps.active || b.Header.Addr3 != s.bssid {
		return
	}
	s.ps.beaconsSeen++
	if s.ps.beaconsSeen < s.Cfg.ListenInterval {
		return // dozing through this beacon
	}
	s.ps.beaconsSeen = 0
	info, ok := b.Elements.Find(dot11.ElementTIM)
	if !ok {
		return
	}
	tim, err := dot11.ParseTIM(info)
	if err != nil || !tim.BufferedFor(s.AID) {
		return
	}
	if s.ps.polling {
		return // retrieval already in progress
	}
	s.startPollBurst()
}

// startPollBurst wakes the radio path and drains the AP buffer with
// PS-Polls until MoreData clears.
func (s *Station) startPollBurst() {
	s.ps.polling = true
	s.Dev.SetState(esp32.StateRadioListen)
	s.sendPSPoll()
	// Safety: end the burst if the AP stops answering.
	s.sched.DoAfter(100*time.Millisecond, func() {
		if s.ps.polling {
			s.endPollBurst()
		}
	})
}

func (s *Station) sendPSPoll() {
	poll := &dot11.PSPoll{AID: s.AID, BSSID: s.bssid, Transmitter: s.Cfg.Addr}
	if err := s.Port.Send(poll, nil); err != nil {
		panic(fmt.Sprintf("sta: %v", err)) // PS-Poll construction is under our control
	}
}

func (s *Station) endPollBurst() {
	s.ps.polling = false
	if s.Dev.GetState() == esp32.StateRadioListen {
		s.Dev.SetState(esp32.StateWiFiPSIdle)
	}
}

// handlePSDownlink consumes a retrieved buffered MSDU during a poll
// burst (already decrypted by the caller); returns true when the frame
// belonged to the burst.
func (s *Station) handlePSDownlink(et netstack.EtherType, payload []byte, moreData bool) bool {
	if !s.ps.polling {
		return false
	}
	if s.ps.onDownlink != nil {
		s.ps.onDownlink(DownlinkPayload{EtherType: et, Payload: append([]byte(nil), payload...)})
	}
	if moreData {
		s.sendPSPoll()
	} else {
		s.endPollBurst()
	}
	return true
}
