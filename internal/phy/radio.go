package phy

import (
	"fmt"
	"math"
	"time"
)

// Radio-power unit conversions and a propagation model.
//
// The paper transmits Wi-LE beacons at 0 dBm, "which has a similar range as
// BLE at the same transmission power (i.e., a few meters)". The propagation
// model below lets the medium decide whether a receiver at a given distance
// hears a transmission at all, and supplies the RSSI values the scanner
// examples display.

// DBm is a power level in decibel-milliwatts.
type DBm float64

// MilliWatts converts a dBm level to milliwatts.
func (p DBm) MilliWatts() float64 { return math.Pow(10, float64(p)/10) }

// Watts converts a dBm level to watts.
func (p DBm) Watts() float64 { return p.MilliWatts() / 1000 }

// String implements fmt.Stringer.
func (p DBm) String() string { return fmt.Sprintf("%.1f dBm", float64(p)) }

// FromMilliWatts converts milliwatts to dBm.
func FromMilliWatts(mw float64) DBm {
	if mw <= 0 {
		panic("phy: non-positive power has no dBm representation")
	}
	return DBm(10 * math.Log10(mw))
}

// Channel identifies a WiFi or BLE radio channel by its center frequency.
type Channel struct {
	// Number is the channel number within its band (WiFi 1–13 in 2.4 GHz,
	// 36+ in 5 GHz; BLE advertising channels 37–39).
	Number int
	// FreqMHz is the center frequency.
	FreqMHz int
}

// String implements fmt.Stringer.
func (c Channel) String() string { return fmt.Sprintf("ch%d (%d MHz)", c.Number, c.FreqMHz) }

// NewWiFi24Channel validates and returns 2.4 GHz WiFi channel n (1–13).
// Use it wherever the channel number comes from user or wire input (flags,
// captures); the panicking WiFi24Channel is for in-code constants.
func NewWiFi24Channel(n int) (Channel, error) {
	if n < 1 || n > 13 {
		return Channel{}, fmt.Errorf("phy: invalid 2.4 GHz channel %d (want 1-13)", n)
	}
	return Channel{Number: n, FreqMHz: 2407 + 5*n}, nil
}

// WiFi24Channel returns 2.4 GHz WiFi channel n (1–13), panicking on an
// invalid number: passing a bad constant is a programmer error.
func WiFi24Channel(n int) Channel {
	c, err := NewWiFi24Channel(n)
	if err != nil {
		panic(fmt.Sprintf("phy: %v", err))
	}
	return c
}

// NewWiFi5Channel validates and returns 5 GHz WiFi channel n (36–165). One
// of the advantages the paper claims for Wi-LE over BLE is access to the
// less crowded 5 GHz band.
func NewWiFi5Channel(n int) (Channel, error) {
	if n < 36 || n > 165 {
		return Channel{}, fmt.Errorf("phy: invalid 5 GHz channel %d (want 36-165)", n)
	}
	return Channel{Number: n, FreqMHz: 5000 + 5*n}, nil
}

// WiFi5Channel returns 5 GHz WiFi channel n (e.g. 36, 40, ..., 165),
// panicking on an invalid number.
func WiFi5Channel(n int) Channel {
	c, err := NewWiFi5Channel(n)
	if err != nil {
		panic(fmt.Sprintf("phy: %v", err))
	}
	return c
}

// NewBLEAdvChannel validates and returns BLE advertising channel 37, 38
// or 39.
func NewBLEAdvChannel(n int) (Channel, error) {
	switch n {
	case 37:
		return Channel{Number: 37, FreqMHz: 2402}, nil
	case 38:
		return Channel{Number: 38, FreqMHz: 2426}, nil
	case 39:
		return Channel{Number: 39, FreqMHz: 2480}, nil
	}
	return Channel{}, fmt.Errorf("phy: invalid BLE advertising channel %d (want 37-39)", n)
}

// BLEAdvChannel returns BLE advertising channel 37, 38 or 39, panicking on
// an invalid number.
func BLEAdvChannel(n int) Channel {
	c, err := NewBLEAdvChannel(n)
	if err != nil {
		panic(fmt.Sprintf("phy: %v", err))
	}
	return c
}

// PathLoss models log-distance path loss with a reference distance of 1 m:
//
//	PL(d) = FSPL(1m) + 10·n·log10(d)
//
// n=2 is free space; indoor 2.4 GHz environments are typically n≈3.
type PathLoss struct {
	// Exponent is the path-loss exponent n.
	Exponent float64
	// FreqMHz is the carrier frequency, which fixes the 1 m reference loss.
	FreqMHz int
}

// ReferenceLossDB is the free-space path loss at 1 m:
// 20·log10(f) + 20·log10(d) - 27.55 with f in MHz and d in meters.
func (p PathLoss) ReferenceLossDB() float64 {
	return 20*math.Log10(float64(p.FreqMHz)) - 27.55
}

// LossDB reports the path loss in dB at distance d meters. Distances below
// the 1 m reference are clamped to the reference loss.
func (p PathLoss) LossDB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return p.ReferenceLossDB() + 10*p.Exponent*math.Log10(d)
}

// RSSI reports the received power at distance d for transmit power tx.
func (p PathLoss) RSSI(tx DBm, d float64) DBm { return tx - DBm(p.LossDB(d)) }

// Range reports the distance in meters at which received power falls to the
// receiver sensitivity floor.
func (p PathLoss) Range(tx DBm, sensitivity DBm) float64 {
	budget := float64(tx-sensitivity) - p.ReferenceLossDB()
	if budget <= 0 {
		return 1
	}
	return math.Pow(10, budget/(10*p.Exponent))
}

// Typical receiver sensitivities (datasheet values) used by the examples:
// the ESP32 hears MCS7 frames above -70 dBm (datasheet: -70 to -72 dBm) and
// the CC2541 hears BLE at -94 dBm.
const (
	SensitivityWiFiMCS7 DBm = -70
	SensitivityWiFi1M   DBm = -98
	SensitivityBLE      DBm = -94
)

// MACTiming bundles the DCF interframe-space parameters for a PHY.
type MACTiming struct {
	Slot  time.Duration
	SIFS  time.Duration
	CWMin int
	CWMax int
}

// DIFS is SIFS + 2 slots.
func (m MACTiming) DIFS() time.Duration { return m.SIFS + 2*m.Slot }

// Timing reports the DCF parameters for frames sent at rate r in 2.4 GHz.
// DSSS uses the long-slot 802.11b values; ERP-OFDM and HT in 2.4 GHz use
// the short slot permitted when no legacy stations are present.
func Timing(r Rate) MACTiming {
	if r.Mod == ModDSSS {
		return MACTiming{Slot: 20 * time.Microsecond, SIFS: 10 * time.Microsecond, CWMin: 31, CWMax: 1023}
	}
	return MACTiming{Slot: 9 * time.Microsecond, SIFS: 10 * time.Microsecond, CWMin: 15, CWMax: 1023}
}
