package phy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDSSSAirtimeKnownValues(t *testing.T) {
	// 1 Mb/s long preamble: 192 µs + 8 bits/byte · len µs.
	if got := FrameAirtime(RateDSSS1, 100); got != 192*time.Microsecond+800*time.Microsecond {
		t.Fatalf("DSSS-1 100B airtime = %v", got)
	}
	// 11 Mb/s short preamble: 96 µs + 800/11 µs.
	got := FrameAirtime(RateDSSS11, 100)
	payloadNS := 800 * 1000 / 11 // 800 bits at 11 Mb/s, in ns (truncated)
	want := 96*time.Microsecond + time.Duration(payloadNS)*time.Nanosecond
	if d := got - want; d < -time.Nanosecond || d > time.Nanosecond {
		t.Fatalf("DSSS-11 100B airtime = %v, want %v", got, want)
	}
}

func TestOFDMAirtimeKnownValues(t *testing.T) {
	// 54 Mb/s, 1500 B: Nsym = ceil((16+12000+6)/216) = 56;
	// 20 + 56*4 + 6 = 250 µs.
	if got := FrameAirtime(RateOFDM54, 1500); got != 250*time.Microsecond {
		t.Fatalf("OFDM-54 1500B airtime = %v, want 250µs", got)
	}
	// 6 Mb/s, 0-octet PSDU: Nsym = ceil(22/24) = 1; 20+4+6 = 30 µs.
	if got := FrameAirtime(RateOFDM6, 0); got != 30*time.Microsecond {
		t.Fatalf("OFDM-6 empty airtime = %v, want 30µs", got)
	}
}

func TestHTAirtimeKnownValues(t *testing.T) {
	// MCS7 long GI, 300 B: Nsym = ceil((16+2400+6)/260) = 10; 36+40 = 76 µs.
	if got := FrameAirtime(RateHTMCS7, 300); got != 76*time.Microsecond {
		t.Fatalf("MCS7 300B airtime = %v, want 76µs", got)
	}
	// Same PSDU with SGI: 36 + 10*3.6 = 72 µs.
	if got := FrameAirtime(RateHTMCS7SGI, 300); got != 72*time.Microsecond {
		t.Fatalf("MCS7-SGI 300B airtime = %v, want 72µs", got)
	}
}

func TestBLEAirtimeKnownValues(t *testing.T) {
	// 31-byte advertising payload: (1+4+2+31+3)·8 = 328 µs.
	if got := FrameAirtime(RateBLE1M, 31); got != 328*time.Microsecond {
		t.Fatalf("BLE 31B airtime = %v, want 328µs", got)
	}
}

func TestAirtimeMonotonicInLength(t *testing.T) {
	for _, r := range append(append([]Rate{}, WiFiRates...), RateBLE1M) {
		prev := time.Duration(0)
		for n := 0; n <= 1500; n += 50 {
			at := FrameAirtime(r, n)
			if at < prev {
				t.Fatalf("%v: airtime decreased from %v to %v at %dB", r, prev, at, n)
			}
			prev = at
		}
	}
}

func TestAirtimeFasterRatesShorter(t *testing.T) {
	// For a fixed 500-byte frame, airtime must strictly decrease as the
	// nominal rate rises within one modulation family.
	families := map[Modulation][]Rate{}
	for _, r := range WiFiRates {
		families[r.Mod] = append(families[r.Mod], r)
	}
	for mod, rates := range families {
		for i := 1; i < len(rates); i++ {
			a, b := FrameAirtime(rates[i-1], 500), FrameAirtime(rates[i], 500)
			if b >= a {
				t.Errorf("%v: airtime(%v)=%v not shorter than airtime(%v)=%v",
					mod, rates[i], b, rates[i-1], a)
			}
		}
	}
}

func TestPropertyAirtimePositive(t *testing.T) {
	f := func(n uint16) bool {
		octets := int(n % 2348) // max 802.11 MSDU-ish
		for _, r := range WiFiRates {
			if FrameAirtime(r, octets) <= 0 {
				return false
			}
		}
		return FrameAirtime(RateBLE1M, octets%255) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative length did not panic")
		}
	}()
	FrameAirtime(RateOFDM6, -1)
}

// TestEnergyPerBitReproducesPaperClaim verifies the §1 numbers: BLE costs
// 275–300 nJ/bit while WiFi costs 10–100 nJ/bit depending on bitrate.
func TestEnergyPerBitReproducesPaperClaim(t *testing.T) {
	// BLE: CC2541 TX at 0 dBm draws ~18.2 mA at 3 V ≈ 54.6 mW. For a
	// 31-byte advertising payload the framing overhead lands at
	// 54.6e-3 · 328e-6 / 248 bits ≈ 72 nJ/bit of radio energy; the paper's
	// 275–300 nJ/bit figure (from [12,14]) is a whole-platform number
	// including MCU overhead, roughly 4× the radio alone. We check the
	// radio-only ratio claim instead: BLE per-bit energy is ≥3× the WiFi
	// OFDM rates at equal TX power.
	const txW = 0.0546
	ble, err := EnergyPerBit(RateBLE1M, 31, txW)
	if err != nil {
		t.Fatalf("EnergyPerBit(BLE): %v", err)
	}
	for _, r := range []Rate{RateOFDM24, RateOFDM54, RateHTMCS7SGI} {
		wifi, err := EnergyPerBit(r, 1500, txW)
		if err != nil {
			t.Fatalf("EnergyPerBit(%v): %v", r, err)
		}
		if ble < 3*wifi {
			t.Errorf("BLE %.1f nJ/bit not ≥3× WiFi %v %.1f nJ/bit", ble*1e9, r, wifi*1e9)
		}
	}
	// And with the ESP32's real TX draw (~180 mA at 3.3 V ≈ 0.6 W), high
	// rate WiFi lands in the paper's 10–100 nJ/bit window.
	for _, r := range []Rate{RateOFDM24, RateOFDM54, RateHTMCS7, RateHTMCS7SGI} {
		perBit, err := EnergyPerBit(r, 1500, 0.594)
		if err != nil {
			t.Fatalf("EnergyPerBit(%v): %v", r, err)
		}
		e := perBit * 1e9
		if e < 10 || e > 100 {
			t.Errorf("%v: %.1f nJ/bit outside the paper's 10–100 nJ/bit window", r, e)
		}
	}
}

func TestDBmConversions(t *testing.T) {
	cases := []struct {
		dbm DBm
		mw  float64
	}{{0, 1}, {10, 10}, {20, 100}, {-10, 0.1}, {30, 1000}}
	for _, c := range cases {
		if got := c.dbm.MilliWatts(); math.Abs(got-c.mw) > 1e-9*c.mw {
			t.Errorf("%v.MilliWatts() = %v, want %v", c.dbm, got, c.mw)
		}
		if got := FromMilliWatts(c.mw); math.Abs(float64(got-c.dbm)) > 1e-9 {
			t.Errorf("FromMilliWatts(%v) = %v, want %v", c.mw, got, c.dbm)
		}
	}
	if w := DBm(30).Watts(); math.Abs(w-1) > 1e-9 {
		t.Errorf("30 dBm = %v W, want 1", w)
	}
}

func TestPropertyDBmRoundTrip(t *testing.T) {
	f := func(raw int16) bool {
		dbm := DBm(float64(raw) / 100) // -327..327 dBm
		back := FromMilliWatts(dbm.MilliWatts())
		return math.Abs(float64(back-dbm)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannels(t *testing.T) {
	if c := WiFi24Channel(1); c.FreqMHz != 2412 {
		t.Errorf("channel 1 = %d MHz, want 2412", c.FreqMHz)
	}
	if c := WiFi24Channel(11); c.FreqMHz != 2462 {
		t.Errorf("channel 11 = %d MHz, want 2462", c.FreqMHz)
	}
	if c := WiFi5Channel(36); c.FreqMHz != 5180 {
		t.Errorf("channel 36 = %d MHz, want 5180", c.FreqMHz)
	}
	for n, want := range map[int]int{37: 2402, 38: 2426, 39: 2480} {
		if c := BLEAdvChannel(n); c.FreqMHz != want {
			t.Errorf("BLE ch%d = %d MHz, want %d", n, c.FreqMHz, want)
		}
	}
	for _, fn := range []func(){
		func() { WiFi24Channel(0) },
		func() { WiFi24Channel(14) },
		func() { WiFi5Channel(35) },
		func() { BLEAdvChannel(36) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid channel did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPathLossMonotonic(t *testing.T) {
	pl := PathLoss{Exponent: 2, FreqMHz: 2412}
	prev := -1.0
	for d := 1.0; d <= 100; d *= 1.5 {
		loss := pl.LossDB(d)
		if loss <= prev {
			t.Fatalf("path loss not increasing at %vm", d)
		}
		prev = loss
	}
}

func TestFreeSpaceLossKnownValue(t *testing.T) {
	// FSPL at 2.4 GHz, 1 m is ≈ 40.05 dB.
	pl := PathLoss{Exponent: 2, FreqMHz: 2400}
	if got := pl.ReferenceLossDB(); math.Abs(got-40.05) > 0.05 {
		t.Fatalf("FSPL(2400MHz,1m) = %v dB, want ≈40.05", got)
	}
	// Doubling distance in free space adds ≈6.02 dB.
	if diff := pl.LossDB(2) - pl.LossDB(1); math.Abs(diff-6.02) > 0.01 {
		t.Fatalf("free-space doubling adds %v dB, want ≈6.02", diff)
	}
}

func TestRangeAtZeroDBmIsAFewMeters(t *testing.T) {
	// The paper: Wi-LE at 0 dBm and MCS7 has "a similar range as BLE at the
	// same transmission power (i.e., a few meters)". With an indoor
	// exponent of 3 and the MCS7 sensitivity this should land in 1–30 m.
	pl := PathLoss{Exponent: 3, FreqMHz: 2412}
	r := pl.Range(0, SensitivityWiFiMCS7)
	if r < 1 || r > 30 {
		t.Fatalf("Wi-LE MCS7 range at 0 dBm = %.1f m, want a few meters", r)
	}
	// At 1 Mb/s DSSS sensitivity the same radio reaches much further —
	// "the range of Wi-LE is the same as typical WiFi" when rate is lowered.
	rFar := pl.Range(0, SensitivityWiFi1M)
	if rFar < 3*r {
		t.Fatalf("1 Mb/s range %.1f m not ≫ MCS7 range %.1f m", rFar, r)
	}
}

func TestRSSIDecreasesWithDistance(t *testing.T) {
	pl := PathLoss{Exponent: 2.7, FreqMHz: 2437}
	if pl.RSSI(0, 2) <= pl.RSSI(0, 10) {
		t.Fatal("RSSI should fall with distance")
	}
}

func TestMACTiming(t *testing.T) {
	b := Timing(RateDSSS1)
	if b.DIFS() != 50*time.Microsecond {
		t.Errorf("802.11b DIFS = %v, want 50µs", b.DIFS())
	}
	g := Timing(RateOFDM54)
	if g.DIFS() != 28*time.Microsecond {
		t.Errorf("ERP DIFS = %v, want 28µs", g.DIFS())
	}
	if g.CWMin != 15 || b.CWMin != 31 {
		t.Errorf("CWMin: got OFDM %d, DSSS %d", g.CWMin, b.CWMin)
	}
}

func TestModulationString(t *testing.T) {
	for m, want := range map[Modulation]string{ModDSSS: "DSSS", ModOFDM: "OFDM", ModHT: "HT", ModGFSK: "GFSK"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func BenchmarkFrameAirtimeHT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FrameAirtime(RateHTMCS7SGI, 300)
	}
}
