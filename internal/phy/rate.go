// Package phy models the physical-layer facts Wi-LE depends on: exact frame
// airtimes for 802.11b/g/n and Bluetooth Low Energy, radio-power unit
// conversions, and a simple propagation model.
//
// The paper's central observation lives here: at the physical layer WiFi
// spends 10–100 nJ per bit (depending on bitrate) while BLE spends
// 275–300 nJ per bit, because OFDM with high-order modulation moves many
// more bits per microsecond of radio-on time than BLE's 1 Mb/s GFSK.
// Everything downstream (the Table 1 energies, the Figure 4 curves) is an
// integral of current over the airtimes computed in this package.
package phy

import (
	"fmt"
	"time"
)

// Modulation identifies the PHY family a rate belongs to.
type Modulation uint8

const (
	// ModDSSS is 802.11b direct-sequence spread spectrum (1–11 Mb/s).
	ModDSSS Modulation = iota
	// ModOFDM is 802.11g ERP-OFDM (6–54 Mb/s).
	ModOFDM
	// ModHT is 802.11n high throughput, single spatial stream, 20 MHz.
	ModHT
	// ModGFSK is Bluetooth Low Energy 1 Mb/s GFSK.
	ModGFSK
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case ModDSSS:
		return "DSSS"
	case ModOFDM:
		return "OFDM"
	case ModHT:
		return "HT"
	case ModGFSK:
		return "GFSK"
	}
	return fmt.Sprintf("Modulation(%d)", uint8(m))
}

// Rate describes one PHY rate.
type Rate struct {
	// Name is the conventional label, e.g. "MCS7-SGI".
	Name string
	// Mod is the PHY family.
	Mod Modulation
	// KbPerSec is the nominal data rate in kilobits per second. Kilobits
	// (not megabits) keep 5.5 and 72.2 Mb/s exact in integer arithmetic.
	KbPerSec int
	// BitsPerSymbol is N_DBPS for OFDM/HT rates, 0 otherwise.
	BitsPerSymbol int
	// ShortGI marks 400 ns guard-interval HT rates (3.6 µs symbols).
	ShortGI bool
	// ShortPreamble marks DSSS rates transmitted with the short PLCP
	// preamble (96 µs instead of 192 µs).
	ShortPreamble bool
}

// Mbps reports the nominal rate in megabits per second.
func (r Rate) Mbps() float64 { return float64(r.KbPerSec) / 1000 }

// String implements fmt.Stringer.
func (r Rate) String() string { return fmt.Sprintf("%s (%.1f Mb/s)", r.Name, r.Mbps()) }

// The 802.11 rates used by the experiments. DSSS rates use the long
// preamble unless the name says otherwise; the beacon frames Wi-LE injects
// default to RateHTMCS7SGI, the 72 Mb/s rate the paper's §5.4 measurement
// uses.
var (
	RateDSSS1  = Rate{Name: "DSSS-1", Mod: ModDSSS, KbPerSec: 1000}
	RateDSSS2  = Rate{Name: "DSSS-2", Mod: ModDSSS, KbPerSec: 2000}
	RateDSSS5  = Rate{Name: "DSSS-5.5", Mod: ModDSSS, KbPerSec: 5500, ShortPreamble: true}
	RateDSSS11 = Rate{Name: "DSSS-11", Mod: ModDSSS, KbPerSec: 11000, ShortPreamble: true}

	RateOFDM6  = Rate{Name: "OFDM-6", Mod: ModOFDM, KbPerSec: 6000, BitsPerSymbol: 24}
	RateOFDM9  = Rate{Name: "OFDM-9", Mod: ModOFDM, KbPerSec: 9000, BitsPerSymbol: 36}
	RateOFDM12 = Rate{Name: "OFDM-12", Mod: ModOFDM, KbPerSec: 12000, BitsPerSymbol: 48}
	RateOFDM18 = Rate{Name: "OFDM-18", Mod: ModOFDM, KbPerSec: 18000, BitsPerSymbol: 72}
	RateOFDM24 = Rate{Name: "OFDM-24", Mod: ModOFDM, KbPerSec: 24000, BitsPerSymbol: 96}
	RateOFDM36 = Rate{Name: "OFDM-36", Mod: ModOFDM, KbPerSec: 36000, BitsPerSymbol: 144}
	RateOFDM48 = Rate{Name: "OFDM-48", Mod: ModOFDM, KbPerSec: 48000, BitsPerSymbol: 192}
	RateOFDM54 = Rate{Name: "OFDM-54", Mod: ModOFDM, KbPerSec: 54000, BitsPerSymbol: 216}

	RateHTMCS0    = Rate{Name: "MCS0", Mod: ModHT, KbPerSec: 6500, BitsPerSymbol: 26}
	RateHTMCS1    = Rate{Name: "MCS1", Mod: ModHT, KbPerSec: 13000, BitsPerSymbol: 52}
	RateHTMCS2    = Rate{Name: "MCS2", Mod: ModHT, KbPerSec: 19500, BitsPerSymbol: 78}
	RateHTMCS3    = Rate{Name: "MCS3", Mod: ModHT, KbPerSec: 26000, BitsPerSymbol: 104}
	RateHTMCS4    = Rate{Name: "MCS4", Mod: ModHT, KbPerSec: 39000, BitsPerSymbol: 156}
	RateHTMCS5    = Rate{Name: "MCS5", Mod: ModHT, KbPerSec: 52000, BitsPerSymbol: 208}
	RateHTMCS6    = Rate{Name: "MCS6", Mod: ModHT, KbPerSec: 58500, BitsPerSymbol: 234}
	RateHTMCS7    = Rate{Name: "MCS7", Mod: ModHT, KbPerSec: 65000, BitsPerSymbol: 260}
	RateHTMCS7SGI = Rate{Name: "MCS7-SGI", Mod: ModHT, KbPerSec: 72200, BitsPerSymbol: 260, ShortGI: true}

	// RateBLE1M is BLE's uncoded 1 Mb/s GFSK PHY (the only PHY in BLE 4.x,
	// which is what the CC2541 baseline speaks).
	RateBLE1M = Rate{Name: "BLE-1M", Mod: ModGFSK, KbPerSec: 1000}
)

// WiFiRates lists every 802.11 rate above in ascending nominal rate; the
// bitrate ablation sweeps this slice.
var WiFiRates = []Rate{
	RateDSSS1, RateDSSS2, RateDSSS5, RateDSSS11,
	RateOFDM6, RateOFDM9, RateOFDM12, RateOFDM18,
	RateOFDM24, RateOFDM36, RateOFDM48, RateOFDM54,
	RateHTMCS0, RateHTMCS1, RateHTMCS2, RateHTMCS3,
	RateHTMCS4, RateHTMCS5, RateHTMCS6, RateHTMCS7, RateHTMCS7SGI,
}

// PHY timing constants (IEEE 802.11-2016 clauses 16, 18, 19; Bluetooth Core
// 4.2 Vol 6 Part B).
const (
	// DSSS (clause 16): long preamble 144 µs + PLCP header 48 µs; short
	// preamble halves the preamble and doubles the header rate.
	dsssLongPreamble  = 192 * time.Microsecond
	dsssShortPreamble = 96 * time.Microsecond

	// OFDM (clause 18): 8 µs STF + 8 µs LTF + 4 µs SIGNAL.
	ofdmPreamble = 20 * time.Microsecond
	// ERP-OFDM in 2.4 GHz requires a 6 µs signal extension (clause 19.3.2.4).
	erpSignalExtension = 6 * time.Microsecond
	ofdmSymbol         = 4 * time.Microsecond

	// HT mixed format, one spatial stream (clause 19.3.9):
	// L-STF 8 + L-LTF 8 + L-SIG 4 + HT-SIG 8 + HT-STF 4 + 1×HT-LTF 4.
	htPreamble  = 36 * time.Microsecond
	htSymbolLGI = 4 * time.Microsecond
	htSymbolSGI = 3600 * time.Nanosecond

	// serviceBits+tailBits pad every OFDM/HT PSDU (16-bit SERVICE, 6 tail).
	serviceBits = 16
	tailBits    = 6

	// BLE link-layer framing on the 1 Mb/s PHY: 1 byte preamble,
	// 4 bytes access address, 2 bytes PDU header, payload, 3 bytes CRC —
	// all at 1 µs per bit.
	blePreambleBytes      = 1
	bleAccessAddressBytes = 4
	bleHeaderBytes        = 2
	bleCRCBytes           = 3
)

// Airtime reports how long a PSDU of length octets occupies the radio at
// rate r, including the PLCP preamble/header. This is the time the
// transmit amplifier is on — the quantity the paper's energy-per-packet
// integrals multiply by the transmit power. A negative length or a Rate
// with an unknown modulation (e.g. decoded from a malformed capture)
// returns an error the caller can recover from.
func Airtime(r Rate, octets int) (time.Duration, error) {
	if octets < 0 {
		return 0, fmt.Errorf("phy: negative frame length %d", octets)
	}
	bits := 8 * octets
	switch r.Mod {
	case ModDSSS:
		pre := dsssLongPreamble
		if r.ShortPreamble {
			pre = dsssShortPreamble
		}
		// Payload time = bits / rate, exact in ns: kb/s == bits/ms.
		payload := time.Duration(bits) * time.Millisecond / time.Duration(r.KbPerSec)
		return pre + payload, nil
	case ModOFDM:
		nsym := ceilDiv(serviceBits+bits+tailBits, r.BitsPerSymbol)
		return ofdmPreamble + time.Duration(nsym)*ofdmSymbol + erpSignalExtension, nil
	case ModHT:
		nsym := ceilDiv(serviceBits+bits+tailBits, r.BitsPerSymbol)
		sym := htSymbolLGI
		if r.ShortGI {
			sym = htSymbolSGI
		}
		return htPreamble + time.Duration(nsym)*sym, nil
	case ModGFSK:
		total := blePreambleBytes + bleAccessAddressBytes + bleHeaderBytes + octets + bleCRCBytes
		return time.Duration(8*total) * time.Microsecond, nil
	}
	return 0, fmt.Errorf("phy: unknown modulation %v", r.Mod)
}

// FrameAirtime is Airtime for the simulation's hot paths, where the rate
// comes from the package's own table and the length from an encoded frame:
// invalid arguments there are programmer errors, so it panics instead of
// returning an error. Code handling untrusted rates or lengths (capture
// replay, decoders) should call Airtime.
func FrameAirtime(r Rate, octets int) time.Duration {
	d, err := Airtime(r, octets)
	if err != nil {
		panic(fmt.Sprintf("phy: FrameAirtime: %v", err))
	}
	return d
}

// EnergyPerBit reports the physical-layer transmit energy per payload bit in
// joules, for a transmitter drawing txPowerW while the amplifier is on.
// This reproduces the paper's §1 comparison (WiFi 10–100 nJ/bit vs BLE
// 275–300 nJ/bit): the preamble and framing are amortized over the payload.
// A non-positive payload has no per-bit energy and returns an error.
func EnergyPerBit(r Rate, octets int, txPowerW float64) (float64, error) {
	if octets <= 0 {
		return 0, fmt.Errorf("phy: energy per bit needs a positive payload, have %d octets", octets)
	}
	t, err := Airtime(r, octets)
	if err != nil {
		return 0, err
	}
	return t.Seconds() * txPowerW / float64(8*octets), nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
