// Package battery models the power source the paper's battery-life claims
// assume: a coin cell (or AA pair) with finite capacity, internal
// resistance, and a load-dependent terminal voltage.
//
// This matters for Wi-LE specifically. The energy numbers say a Wi-LE
// device rivals BLE on a CR2032 — but a CR2032's internal resistance is
// tens of ohms, and a WiFi transmit burst draws ~180 mA: the terminal
// voltage sags by I·R ≈ several volts, far below the ESP32's brownout
// threshold. BLE radios draw ≤20 mA and survive. The practical fix (and
// what real WiFi-on-coin-cell designs do) is a bulk capacitor that supplies
// the burst while the cell recharges it between transmissions. The model
// here lets the repository demonstrate both the failure and the fix
// quantitatively (see the tests and cmd/wile-lab's battery projection).
package battery

import (
	"fmt"
	"math"
	"time"
)

// Chemistry describes one battery type.
type Chemistry struct {
	Name string
	// NominalV is the open-circuit voltage when full.
	NominalV float64
	// CutoffV is the terminal voltage at which the cell is spent.
	CutoffV float64
	// CapacityMAh is the rated capacity at low drain.
	CapacityMAh float64
	// InternalOhms is the fresh-cell internal resistance.
	InternalOhms float64
	// EndOfLifeOhms is the internal resistance near depletion (coin cells
	// roughly triple).
	EndOfLifeOhms float64
}

// Standard cells used by the examples and projections.
var (
	// CR2032: the "small button battery" of the paper's BLE claim.
	CR2032 = Chemistry{
		Name: "CR2032", NominalV: 3.0, CutoffV: 2.0,
		CapacityMAh: 225, InternalOhms: 15, EndOfLifeOhms: 50,
	}
	// AA2 is a pair of alkaline AAs in series — what ESP32 sensor designs
	// actually ship with.
	AA2 = Chemistry{
		Name: "2×AA", NominalV: 3.0, CutoffV: 2.2,
		CapacityMAh: 2500, InternalOhms: 0.3, EndOfLifeOhms: 1.0,
	}
	// LiSOCl2AA is a lithium thionyl chloride AA, the long-life industrial
	// IoT favourite.
	LiSOCl2AA = Chemistry{
		Name: "Li-SOCl2 AA", NominalV: 3.6, CutoffV: 3.0,
		CapacityMAh: 2400, InternalOhms: 20, EndOfLifeOhms: 60,
	}
)

// Cell is one discharging battery.
type Cell struct {
	Chem Chemistry
	// drawnMAh accumulates delivered charge.
	drawnMAh float64
}

// NewCell returns a fresh cell.
func NewCell(chem Chemistry) *Cell { return &Cell{Chem: chem} }

// StateOfCharge reports the remaining fraction (0..1).
func (c *Cell) StateOfCharge() float64 {
	soc := 1 - c.drawnMAh/c.Chem.CapacityMAh
	return math.Max(0, soc)
}

// internalOhms interpolates resistance with depletion.
func (c *Cell) internalOhms() float64 {
	soc := c.StateOfCharge()
	return c.Chem.EndOfLifeOhms + (c.Chem.InternalOhms-c.Chem.EndOfLifeOhms)*soc
}

// openCircuitV models the gentle voltage slope over discharge.
func (c *Cell) openCircuitV() float64 {
	soc := c.StateOfCharge()
	// Flat-ish plateau dropping toward cutoff in the last 20%.
	if soc > 0.2 {
		return c.Chem.NominalV - 0.1*(1-soc)
	}
	plateau := c.Chem.NominalV - 0.08
	return c.Chem.CutoffV + (plateau-c.Chem.CutoffV)*(soc/0.2)
}

// TerminalV reports the loaded terminal voltage at the given draw.
func (c *Cell) TerminalV(loadA float64) float64 {
	return c.openCircuitV() - loadA*c.internalOhms()
}

// CanSupply reports whether the cell holds the rail above minV at the
// given draw.
func (c *Cell) CanSupply(loadA, minV float64) bool {
	return c.StateOfCharge() > 0 && c.TerminalV(loadA) >= minV
}

// Drain removes charge for a draw sustained for d.
func (c *Cell) Drain(loadA float64, d time.Duration) {
	c.drawnMAh += loadA * 1000 * d.Hours()
}

// Depleted reports whether the cell can no longer hold the cutoff voltage
// even unloaded.
func (c *Cell) Depleted() bool {
	return c.StateOfCharge() <= 0 || c.openCircuitV() < c.Chem.CutoffV
}

// String implements fmt.Stringer.
func (c *Cell) String() string {
	return fmt.Sprintf("%s: %.0f%% (%.1fΩ, %.2fV open-circuit)",
		c.Chem.Name, c.StateOfCharge()*100, c.internalOhms(), c.openCircuitV())
}

// BulkCapacitor buffers transmit bursts: the cell charges it slowly
// through a current-limited path; bursts draw from it. This is the
// standard fix for WiFi peaks on high-impedance cells.
type BulkCapacitor struct {
	// Farads is the capacitance.
	Farads float64
	// V is the current capacitor voltage.
	V float64
}

// NewBulkCapacitor returns a capacitor charged to v.
func NewBulkCapacitor(farads, v float64) *BulkCapacitor {
	return &BulkCapacitor{Farads: farads, V: v}
}

// SupplyBurst draws a constant current for d from the capacitor, returning
// the ending voltage: V - I·t/C.
func (b *BulkCapacitor) SupplyBurst(loadA float64, d time.Duration) float64 {
	b.V -= loadA * d.Seconds() / b.Farads
	if b.V < 0 {
		b.V = 0
	}
	return b.V
}

// Recharge restores the capacitor to the source voltage (the between-burst
// trickle; at IoT duty cycles the recharge current is microamps and always
// completes).
func (b *BulkCapacitor) Recharge(sourceV float64) { b.V = sourceV }

// BurstSurvivable reports whether a capacitor of the given size can hold
// the rail above minV through one burst of loadA for d, starting from
// startV — the sizing equation C ≥ I·t/(Vstart−Vmin).
func BurstSurvivable(farads, startV, minV, loadA float64, d time.Duration) bool {
	return startV-loadA*d.Seconds()/farads >= minV
}

// MinCapacitorFarads sizes the bulk capacitor for a burst.
func MinCapacitorFarads(startV, minV, loadA float64, d time.Duration) float64 {
	if startV <= minV {
		return math.Inf(1)
	}
	return loadA * d.Seconds() / (startV - minV)
}
