// Package battery models the power source the paper's battery-life claims
// assume: a coin cell (or AA pair) with finite capacity, internal
// resistance, and a load-dependent terminal voltage.
//
// This matters for Wi-LE specifically. The energy numbers say a Wi-LE
// device rivals BLE on a CR2032 — but a CR2032's internal resistance is
// tens of ohms, and a WiFi transmit burst draws ~180 mA: the terminal
// voltage sags by I·R ≈ several volts, far below the ESP32's brownout
// threshold. BLE radios draw ≤20 mA and survive. The practical fix (and
// what real WiFi-on-coin-cell designs do) is a bulk capacitor that supplies
// the burst while the cell recharges it between transmissions. The model
// here lets the repository demonstrate both the failure and the fix
// quantitatively (see the tests and cmd/wile-lab's battery projection).
package battery

import (
	"fmt"
	"time"

	"wile/internal/units"
)

// Chemistry describes one battery type.
type Chemistry struct {
	Name string
	// NominalV is the open-circuit voltage when full.
	NominalV units.Volts
	// CutoffV is the terminal voltage at which the cell is spent.
	CutoffV units.Volts
	// Capacity is the rated capacity at low drain.
	Capacity units.AmpHours
	// InternalOhms is the fresh-cell internal resistance.
	InternalOhms units.Ohms
	// EndOfLifeOhms is the internal resistance near depletion (coin cells
	// roughly triple).
	EndOfLifeOhms units.Ohms
}

// Standard cells used by the examples and projections.
var (
	// CR2032: the "small button battery" of the paper's BLE claim.
	CR2032 = Chemistry{
		Name: "CR2032", NominalV: units.Volts(3.0), CutoffV: units.Volts(2.0),
		Capacity: units.MilliAmpHours(225), InternalOhms: units.Ohms(15), EndOfLifeOhms: units.Ohms(50),
	}
	// AA2 is a pair of alkaline AAs in series — what ESP32 sensor designs
	// actually ship with.
	AA2 = Chemistry{
		Name: "2×AA", NominalV: units.Volts(3.0), CutoffV: units.Volts(2.2),
		Capacity: units.MilliAmpHours(2500), InternalOhms: units.Ohms(0.3), EndOfLifeOhms: units.Ohms(1.0),
	}
	// LiSOCl2AA is a lithium thionyl chloride AA, the long-life industrial
	// IoT favourite.
	LiSOCl2AA = Chemistry{
		Name: "Li-SOCl2 AA", NominalV: units.Volts(3.6), CutoffV: units.Volts(3.0),
		Capacity: units.MilliAmpHours(2400), InternalOhms: units.Ohms(20), EndOfLifeOhms: units.Ohms(60),
	}
)

// Cell is one discharging battery.
type Cell struct {
	Chem Chemistry
	// drawn accumulates delivered charge.
	drawn units.AmpHours
}

// NewCell returns a fresh cell.
func NewCell(chem Chemistry) *Cell { return &Cell{Chem: chem} }

// StateOfCharge reports the remaining fraction (0..1).
func (c *Cell) StateOfCharge() float64 {
	soc := 1 - units.Ratio(c.drawn, c.Chem.Capacity)
	if soc < 0 {
		return 0
	}
	return soc
}

// internalOhms interpolates resistance with depletion.
func (c *Cell) internalOhms() units.Ohms {
	soc := c.StateOfCharge()
	return c.Chem.EndOfLifeOhms + units.Scale(c.Chem.InternalOhms-c.Chem.EndOfLifeOhms, soc)
}

// openCircuitV models the gentle voltage slope over discharge.
func (c *Cell) openCircuitV() units.Volts {
	soc := c.StateOfCharge()
	// Flat-ish plateau dropping toward cutoff in the last 20%.
	if soc > 0.2 {
		return c.Chem.NominalV - units.Scale(units.Volts(0.1), 1-soc)
	}
	plateau := c.Chem.NominalV - units.Volts(0.08)
	return c.Chem.CutoffV + units.Scale(plateau-c.Chem.CutoffV, soc/0.2)
}

// TerminalV reports the loaded terminal voltage at the given draw.
func (c *Cell) TerminalV(load units.Amps) units.Volts {
	return c.openCircuitV() - units.IRDrop(load, c.internalOhms())
}

// CanSupply reports whether the cell holds the rail above minV at the
// given draw.
func (c *Cell) CanSupply(load units.Amps, minV units.Volts) bool {
	return c.StateOfCharge() > 0 && c.TerminalV(load) >= minV
}

// Drain removes charge for a draw sustained for d.
func (c *Cell) Drain(load units.Amps, d time.Duration) {
	c.drawn += units.Charge(load, d).AmpHours()
}

// Depleted reports whether the cell can no longer hold the cutoff voltage
// even unloaded.
func (c *Cell) Depleted() bool {
	return c.StateOfCharge() <= 0 || c.openCircuitV() < c.Chem.CutoffV
}

// String implements fmt.Stringer.
func (c *Cell) String() string {
	return fmt.Sprintf("%s: %.0f%% (%.1fΩ, %.2fV open-circuit)",
		c.Chem.Name, c.StateOfCharge()*100, float64(c.internalOhms()), float64(c.openCircuitV()))
}

// BulkCapacitor buffers transmit bursts: the cell charges it slowly
// through a current-limited path; bursts draw from it. This is the
// standard fix for WiFi peaks on high-impedance cells.
type BulkCapacitor struct {
	// Farads is the capacitance.
	Farads units.Farads
	// V is the current capacitor voltage.
	V units.Volts
}

// NewBulkCapacitor returns a capacitor charged to v.
func NewBulkCapacitor(farads units.Farads, v units.Volts) *BulkCapacitor {
	return &BulkCapacitor{Farads: farads, V: v}
}

// SupplyBurst draws a constant current for d from the capacitor, returning
// the ending voltage: V - I·t/C.
func (b *BulkCapacitor) SupplyBurst(load units.Amps, d time.Duration) units.Volts {
	b.V -= units.Charge(load, d).Across(b.Farads)
	if b.V < 0 {
		b.V = 0
	}
	return b.V
}

// Recharge restores the capacitor to the source voltage (the between-burst
// trickle; at IoT duty cycles the recharge current is microamps and always
// completes).
func (b *BulkCapacitor) Recharge(sourceV units.Volts) { b.V = sourceV }

// BurstSurvivable reports whether a capacitor of the given size can hold
// the rail above minV through one burst of load for d, starting from
// startV — the sizing equation C ≥ I·t/(Vstart−Vmin).
func BurstSurvivable(farads units.Farads, startV, minV units.Volts, load units.Amps, d time.Duration) bool {
	return startV-units.Charge(load, d).Across(farads) >= minV
}

// MinCapacitor sizes the bulk capacitor for a burst; +Inf when startV
// does not clear minV.
func MinCapacitor(startV, minV units.Volts, load units.Amps, d time.Duration) units.Farads {
	return units.MinCapacitance(startV, minV, load, d)
}
