package battery

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"wile/internal/units"
)

// ESP32 electrical facts used in the scenarios.
var (
	brownoutV  = units.Volts(2.43) // ESP32 default brownout threshold
	txBurstA   = units.MilliAmps(180)
	txBurstDur = 150 * time.Microsecond
)

func TestFreshCellsStartFull(t *testing.T) {
	for _, chem := range []Chemistry{CR2032, AA2, LiSOCl2AA} {
		c := NewCell(chem)
		if c.StateOfCharge() != 1 {
			t.Errorf("%s SoC = %v", chem.Name, c.StateOfCharge())
		}
		if c.Depleted() {
			t.Errorf("%s born depleted", chem.Name)
		}
		if v := c.TerminalV(0); math.Abs(float64(v-chem.NominalV)) > 0.01 {
			t.Errorf("%s unloaded voltage %v", chem.Name, float64(v))
		}
	}
}

func TestCR2032CannotSupplyWiFiBurst(t *testing.T) {
	// The deployment reality behind the paper's coin-cell comparison: a
	// fresh CR2032 sags 0.18 A × 15 Ω = 2.7 V under a WiFi TX burst —
	// instant brownout. BLE's ≤20 mA peak survives easily.
	c := NewCell(CR2032)
	if c.CanSupply(txBurstA, brownoutV) {
		t.Fatalf("CR2032 claims to supply 180 mA (terminal %.2f V)", float64(c.TerminalV(txBurstA)))
	}
	if !c.CanSupply(units.MilliAmps(20), brownoutV) {
		t.Fatalf("CR2032 cannot even supply a BLE burst (terminal %.2f V)", float64(c.TerminalV(units.MilliAmps(20))))
	}
}

func TestAAPairSuppliesWiFiBurstDirectly(t *testing.T) {
	c := NewCell(AA2)
	if !c.CanSupply(txBurstA, brownoutV) {
		t.Fatalf("2×AA sags to %.2f V under TX", float64(c.TerminalV(txBurstA)))
	}
}

func TestBulkCapacitorFixesTheCoinCell(t *testing.T) {
	// The standard fix: a bulk capacitor supplies the burst; the cell
	// recharges it at microamp rates between 10-minute reports.
	need := MinCapacitor(units.Volts(3.0), brownoutV, txBurstA, txBurstDur)
	// The sizing math: 0.18 A × 150 µs / 0.57 V ≈ 47 µF — a tiny ceramic.
	if need > units.MicroFarads(100) {
		t.Fatalf("required capacitor %.0f µF implausibly large", need.Micro())
	}
	cap := NewBulkCapacitor(2*need, units.Volts(3.0)) // 2× margin
	if v := cap.SupplyBurst(txBurstA, txBurstDur); v < brownoutV {
		t.Fatalf("rail fell to %.2f V through the burst", float64(v))
	}
	cap.Recharge(units.Volts(3.0))
	if cap.V != units.Volts(3.0) {
		t.Fatal("recharge failed")
	}
	// Undersized capacitor fails, as the sizing equation predicts.
	small := NewBulkCapacitor(need/4, units.Volts(3.0))
	if v := small.SupplyBurst(txBurstA, txBurstDur); v >= brownoutV {
		t.Fatalf("undersized capacitor held %.2f V", float64(v))
	}
	if BurstSurvivable(need/4, units.Volts(3.0), brownoutV, txBurstA, txBurstDur) {
		t.Fatal("BurstSurvivable disagrees with SupplyBurst")
	}
	if !BurstSurvivable(2*need, units.Volts(3.0), brownoutV, txBurstA, txBurstDur) {
		t.Fatal("properly sized capacitor reported unsurvivable")
	}
}

func TestDrainDepletesCell(t *testing.T) {
	c := NewCell(CR2032)
	// 225 mAh at 1 mA lasts 225 h; drain 200 h and the cell is low but
	// alive, drain past capacity and it is dead.
	c.Drain(units.MilliAmps(1), 200*time.Hour)
	if c.Depleted() {
		t.Fatal("cell died early")
	}
	if soc := c.StateOfCharge(); math.Abs(soc-(1-200.0/225.0)) > 0.01 {
		t.Fatalf("SoC = %v", soc)
	}
	c.Drain(units.MilliAmps(1), 50*time.Hour)
	if !c.Depleted() {
		t.Fatal("cell survived past its capacity")
	}
}

// TestDrainConservation pins charge accounting: one long drain and the
// same charge split into many short drains must land on the same state of
// charge (to float accumulation tolerance) — the Drain bookkeeping may
// not leak or double-count charge across call boundaries.
func TestDrainConservation(t *testing.T) {
	single := NewCell(CR2032)
	single.Drain(units.MilliAmps(2), 50*time.Hour)

	split := NewCell(CR2032)
	for i := 0; i < 100; i++ {
		split.Drain(units.MilliAmps(2), 30*time.Minute)
	}
	if s, p := single.StateOfCharge(), split.StateOfCharge(); math.Abs(s-p) > 1e-9 {
		t.Fatalf("split drain SoC %v differs from single drain SoC %v", p, s)
	}

	// Property form: any partition of a fixed drain duration conserves.
	f := func(cut uint16) bool {
		d := 40 * time.Hour
		first := time.Duration(cut) * d / math.MaxUint16
		one := NewCell(CR2032)
		one.Drain(units.MilliAmps(3), d)
		two := NewCell(CR2032)
		two.Drain(units.MilliAmps(3), first)
		two.Drain(units.MilliAmps(3), d-first)
		return math.Abs(one.StateOfCharge()-two.StateOfCharge()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInternalResistanceRisesWithDepletion(t *testing.T) {
	c := NewCell(CR2032)
	fresh := c.internalOhms()
	c.Drain(units.MilliAmps(1), 150*time.Hour)
	worn := c.internalOhms()
	if worn <= fresh {
		t.Fatalf("resistance did not rise: %.1f → %.1f", float64(fresh), float64(worn))
	}
	// A worn coin cell fails even smaller bursts — the "battery was fine
	// yesterday" failure mode.
	if c.CanSupply(units.MilliAmps(50), brownoutV) {
		t.Fatal("worn CR2032 claims to supply 50 mA")
	}
}

func TestVoltageMonotoneInLoad(t *testing.T) {
	f := func(loadMA uint16) bool {
		c := NewCell(CR2032)
		load := units.MilliAmps(float64(loadMA % 500))
		return c.TerminalV(load) <= c.TerminalV(0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDrainMonotone(t *testing.T) {
	f := func(steps []uint8) bool {
		c := NewCell(AA2)
		prev := c.StateOfCharge()
		for _, s := range steps {
			c.Drain(units.MilliAmps(float64(s)), time.Hour)
			soc := c.StateOfCharge()
			if soc > prev {
				return false
			}
			prev = soc
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCircuitVoltageFallsNearEnd(t *testing.T) {
	c := NewCell(CR2032)
	c.Drain(units.MilliAmps(1), 215*time.Hour) // ~95% drained
	v := c.openCircuitV()
	if v >= CR2032.NominalV-units.Volts(0.1) {
		t.Fatalf("nearly-dead cell still reads %.2f V", float64(v))
	}
	if v < CR2032.CutoffV {
		t.Fatalf("voltage %.2f V below cutoff while SoC > 0", float64(v))
	}
}

func TestStringFormat(t *testing.T) {
	s := NewCell(CR2032).String()
	if s == "" {
		t.Fatal("empty string")
	}
}
