// Package ap models the paper's Google WiFi access point: an
// infrastructure AP with periodic beaconing, open-system authentication,
// association, a WPA2-PSK authenticator, a DHCP server, an ARP responder,
// and TIM-based buffering for power-saving stations.
//
// The AP is mains-powered in the paper's testbed, so it carries no power
// model — its only job is to make the client pay the true protocol cost of
// §3.1: every frame a reconnecting station must exchange is generated or
// consumed here, byte-for-byte.
package ap

import (
	"fmt"
	"time"

	"wile/internal/crypto80211"
	"wile/internal/dot11"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/netstack"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// Config parameterizes an AP.
type Config struct {
	// SSID is the advertised network name.
	SSID string
	// Passphrase is the WPA2-PSK passphrase.
	Passphrase string
	// BSSID is the AP's MAC address.
	BSSID dot11.MAC
	// Channel is the 2.4 GHz channel number.
	Channel int
	// IP is the AP/router/DHCP-server address.
	IP netstack.IP
	// BeaconIntervalTU is the beacon interval in time units (default 100
	// TU = 102.4 ms, the near-universal default).
	BeaconIntervalTU uint16
	// DTIMPeriod is the DTIM period carried in the TIM (default 3).
	DTIMPeriod uint8
	// DHCPDelay models the AP's host-side DHCP service latency per
	// message. The paper observes "fairly long wait times for network
	// layer messages such as DHCP" (§5.2); 180 ms per reply reproduces
	// the Figure 3a phase length.
	DHCPDelay time.Duration
	// ARPDelay models ARP reply latency.
	ARPDelay time.Duration
	// Position places the AP on the medium.
	Position medium.Position
	// Seed seeds the AP's nonce/backoff randomness.
	Seed uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.BeaconIntervalTU == 0 {
		c.BeaconIntervalTU = 100
	}
	if c.DTIMPeriod == 0 {
		c.DTIMPeriod = 3
	}
	if c.DHCPDelay == 0 {
		c.DHCPDelay = 180 * time.Millisecond
	}
	if c.ARPDelay == 0 {
		c.ARPDelay = 20 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0xa9
	}
	return c
}

// TU is one 802.11 time unit.
const TU = 1024 * time.Microsecond

// stationState tracks one known client.
type stationState struct {
	aid        uint16
	authed     bool
	associated bool
	secured    bool
	// listenInterval is the station's declared beacon-skip count.
	listenInterval uint16
	authenticator  *crypto80211.Authenticator
	// ccmp protects data exchange once the handshake installs the
	// pairwise key.
	ccmp *crypto80211.CCMPSession
	// dozing marks the station in power-save mode.
	dozing bool
	// buffered holds downlink MSDUs while the station dozes.
	buffered []bufferedMSDU
}

type bufferedMSDU struct {
	payload []byte
	sa      dot11.MAC
}

// Stats counts AP-side protocol events.
type Stats struct {
	BeaconsSent     int
	ProbeResponses  int
	AuthAccepted    int
	AssocAccepted   int
	HandshakesDone  int
	DHCPReplies     int
	ARPReplies      int
	UplinkFrames    int
	BufferedFrames  int
	PSPollsServiced int
	// CCMPDrops counts data frames discarded for failing decryption,
	// replay, or the protection requirement.
	CCMPDrops int
	// BridgedFrames counts station-to-station frames relayed through the
	// distribution system.
	BridgedFrames int
	// GroupRelays counts broadcast uplink MSDUs re-broadcast under the GTK.
	GroupRelays int
}

// AP is the access point.
type AP struct {
	Cfg  Config
	Port *mac.Port
	// DHCP is the embedded address server.
	DHCP *netstack.DHCPServer
	// OnUplink, when set, observes every decrypted/delivered uplink MSDU
	// payload (post-SNAP ethertype + payload).
	OnUplink func(from dot11.MAC, et netstack.EtherType, payload []byte)
	// Stats accumulates counters.
	Stats Stats

	sched    *sim.Scheduler
	pmk      []byte
	gtk      [crypto80211.GTKLen]byte
	rng      *sim.Rand
	stations map[dot11.MAC]*stationState
	// groupTx protects group-addressed downlink with the GTK.
	groupTx *crypto80211.CCMPSession
	nextAID uint16
	// tsfStart anchors the beacon timestamp field.
	beaconEvent *sim.Event
	ipID        uint16

	// rec/track carry the optional trace recorder (TraceTo).
	rec   *obs.Recorder
	track obs.TrackID
}

// New builds an AP and attaches it to the medium. Call Start to begin
// beaconing.
func New(sched *sim.Scheduler, med *medium.Medium, cfg Config) *AP {
	cfg = cfg.withDefaults()
	a := &AP{
		Cfg:      cfg,
		sched:    sched,
		pmk:      crypto80211.PSK(cfg.Passphrase, cfg.SSID),
		rng:      sim.NewRand(cfg.Seed),
		stations: make(map[dot11.MAC]*stationState),
		nextAID:  1,
		DHCP:     netstack.NewDHCPServer(cfg.IP),
	}
	for i := range a.gtk {
		a.gtk[i] = byte(a.rng.Uint64())
	}
	a.groupTx = crypto80211.NewCCMPSession(a.gtk)
	// APs transmit at ~20 dBm (100 mW), the typical regulatory ceiling.
	a.Port = mac.New(sched, med, "ap:"+cfg.SSID, cfg.Position, cfg.BSSID,
		phy.RateHTMCS7, phy.DBm(20), phy.SensitivityWiFi1M, sim.NewRand(cfg.Seed^0x5555))
	a.Port.Handler = a.handle
	return a
}

// TraceTo attaches the AP to a trace recorder: MAC activity lands on one
// track, beacon generation instants on another. Passing a nil recorder
// detaches.
func (a *AP) TraceTo(r *obs.Recorder) {
	a.rec = r
	if r == nil {
		a.Port.TraceTo(nil, 0)
		return
	}
	name := "ap:" + a.Cfg.SSID
	a.Port.TraceTo(r, r.Track(name+" mac"))
	a.track = r.Track(name)
}

// Observe mirrors the AP's MAC counters into the registry.
func (a *AP) Observe(reg *obs.Registry) {
	a.Port.Metrics = mac.MetricsFor(reg)
}

// Start powers the radio and begins the beacon schedule.
func (a *AP) Start() {
	a.Port.SetRadioOn(true)
	a.scheduleBeacon()
}

// Stop halts beaconing and powers the radio down.
func (a *AP) Stop() {
	if a.beaconEvent != nil {
		a.sched.Cancel(a.beaconEvent)
		a.beaconEvent = nil
	}
	a.Port.SetRadioOn(false)
}

func (a *AP) beaconInterval() time.Duration {
	return time.Duration(a.Cfg.BeaconIntervalTU) * TU
}

func (a *AP) scheduleBeacon() {
	a.beaconEvent = a.sched.After(a.beaconInterval(), func() {
		a.sendBeacon()
		a.scheduleBeacon()
	})
}

// elements builds the AP's advertised element list.
func (a *AP) elements(withTIM bool) dot11.Elements {
	els := dot11.Elements{
		dot11.SSIDElement(a.Cfg.SSID),
		dot11.DefaultRates(),
		dot11.DSParamElement(a.Cfg.Channel),
	}
	if withTIM {
		tim := dot11.TIM{
			DTIMCount:  uint8(a.Stats.BeaconsSent % int(a.Cfg.DTIMPeriod)),
			DTIMPeriod: a.Cfg.DTIMPeriod,
		}
		for _, st := range a.stations {
			if st.dozing && len(st.buffered) > 0 {
				tim.Buffered = append(tim.Buffered, st.aid)
			}
		}
		els = append(els, dot11.TIMElement(tim))
	}
	els = append(els,
		dot11.RSNElement(dot11.DefaultRSN()),
		dot11.HTCapabilitiesElement(dot11.SingleStreamHTCapabilities()),
		dot11.HTOperationElement(dot11.HTOperation{PrimaryChannel: uint8(a.Cfg.Channel)}),
	)
	return els
}

func (a *AP) sendBeacon() {
	b := dot11.NewBeacon(a.Cfg.BSSID, a.Cfg.BeaconIntervalTU, dot11.CapESS|dot11.CapPrivacy, a.elements(true))
	b.Timestamp = uint64(a.sched.Now() / sim.Microsecond)
	a.Stats.BeaconsSent++
	if a.rec != nil {
		a.rec.Instant(a.track, a.sched.Now(), "beacon")
	}
	a.send(b, nil)
}

// send transmits a frame the AP built itself. Port.Send only fails when the
// frame cannot be marshalled, which for AP-constructed frames is a bug.
func (a *AP) send(f dot11.Frame, done func(ok bool)) {
	if err := a.Port.Send(f, done); err != nil {
		panic(fmt.Sprintf("ap: %v", err))
	}
}

// station returns (creating if needed) the state for addr.
func (a *AP) station(addr dot11.MAC) *stationState {
	st, ok := a.stations[addr]
	if !ok {
		st = &stationState{}
		a.stations[addr] = st
	}
	return st
}

// handle dispatches received frames.
func (a *AP) handle(f dot11.Frame, rx medium.Reception) {
	switch t := f.(type) {
	case *dot11.ProbeReq:
		a.handleProbe(t)
	case *dot11.Auth:
		a.handleAuth(t)
	case *dot11.AssocReq:
		a.handleAssoc(t)
	case *dot11.Deauth:
		delete(a.stations, t.Header.Addr2)
	case *dot11.Disassoc:
		if st, ok := a.stations[t.Header.Addr2]; ok {
			st.associated, st.secured = false, false
		}
	case *dot11.PSPoll:
		a.handlePSPoll(t)
	case *dot11.Data:
		a.handleData(t)
	}
}

func (a *AP) handleProbe(p *dot11.ProbeReq) {
	// Respond to wildcard probes and probes naming our SSID.
	if ssid, hidden, ok := p.Elements.SSID(); ok && !hidden && ssid != a.Cfg.SSID {
		return
	}
	resp := &dot11.ProbeResp{
		Timestamp:  uint64(a.sched.Now() / sim.Microsecond),
		Interval:   a.Cfg.BeaconIntervalTU,
		Capability: dot11.CapESS | dot11.CapPrivacy,
		Elements:   a.elements(false),
	}
	resp.Header.Addr1 = p.Header.Addr2
	resp.Header.Addr2 = a.Cfg.BSSID
	resp.Header.Addr3 = a.Cfg.BSSID
	a.Stats.ProbeResponses++
	a.send(resp, nil)
}

func (a *AP) handleAuth(req *dot11.Auth) {
	if req.Algorithm != dot11.AuthOpen || req.Seq != 1 {
		a.sendAuthResp(req.Header.Addr2, dot11.StatusUnspecified)
		return
	}
	a.station(req.Header.Addr2).authed = true
	a.Stats.AuthAccepted++
	a.sendAuthResp(req.Header.Addr2, dot11.StatusSuccess)
}

func (a *AP) sendAuthResp(to dot11.MAC, status dot11.StatusCode) {
	resp := &dot11.Auth{Algorithm: dot11.AuthOpen, Seq: 2, Status: status}
	resp.Header.Addr1 = to
	resp.Header.Addr2 = a.Cfg.BSSID
	resp.Header.Addr3 = a.Cfg.BSSID
	a.send(resp, nil)
}

func (a *AP) handleAssoc(req *dot11.AssocReq) {
	st := a.station(req.Header.Addr2)
	resp := &dot11.AssocResp{Capability: dot11.CapESS | dot11.CapPrivacy}
	resp.Header.Addr1 = req.Header.Addr2
	resp.Header.Addr2 = a.Cfg.BSSID
	resp.Header.Addr3 = a.Cfg.BSSID
	if !st.authed {
		resp.Status = dot11.StatusDeniedGeneral
		a.send(resp, nil)
		return
	}
	if info, ok := req.Elements.Find(dot11.ElementRSN); ok {
		if rsn, err := dot11.ParseRSN(info); err != nil || len(rsn.AKMs) == 0 || rsn.AKMs[0] != dot11.AKMPSK {
			resp.Status = dot11.StatusInvalidRSN
			a.send(resp, nil)
			return
		}
	} else {
		resp.Status = dot11.StatusInvalidRSN
		a.send(resp, nil)
		return
	}
	if st.aid == 0 {
		st.aid = a.nextAID
		a.nextAID++
	}
	st.associated = true
	st.listenInterval = req.ListenInterval
	resp.Status = dot11.StatusSuccess
	resp.AID = st.aid
	a.Stats.AssocAccepted++
	a.send(resp, func(ok bool) {
		if ok {
			a.startHandshake(req.Header.Addr2, st)
		}
	})
}

// startHandshake begins the 4-way exchange by sending M1.
func (a *AP) startHandshake(sta dot11.MAC, st *stationState) {
	var anonce [crypto80211.NonceLen]byte
	for i := range anonce {
		anonce[i] = byte(a.rng.Uint64())
	}
	st.authenticator = crypto80211.NewAuthenticator(a.pmk, a.Cfg.BSSID, sta, anonce, a.gtk)
	a.sendEAPOL(sta, st.authenticator.Message1())
}

// sendEAPOL wraps an EAPOL PDU in SNAP + 802.11 data.
func (a *AP) sendEAPOL(sta dot11.MAC, pdu []byte) {
	msdu := netstack.WrapSNAP(netstack.EtherTypeEAPOL, pdu)
	a.sendDownlink(sta, a.Cfg.BSSID, msdu)
}

// handleData processes uplink data frames.
func (a *AP) handleData(d *dot11.Data) {
	if !d.Header.FC.ToDS {
		return // not for the DS
	}
	src := d.Header.Addr2
	st := a.station(src)

	// Track the power-management bit on every uplink frame.
	wasDozing := st.dozing
	st.dozing = d.Header.FC.PwrMgmt
	if wasDozing && !st.dozing {
		a.flushBuffered(src, st)
	}
	if d.Header.FC.Subtype == dot11.SubtypeNull || d.Header.FC.Subtype == dot11.SubtypeQoSNull {
		return
	}
	msdu := d.Payload
	switch {
	case d.Header.FC.Protected:
		if st.ccmp == nil {
			return // protected frame from a station with no keys
		}
		plain, err := st.ccmp.Decapsulate(crypto80211.DataFrameMeta(d), msdu)
		if err != nil {
			a.Stats.CCMPDrops++
			return
		}
		msdu = plain
	case st.secured:
		// Real APs discard unprotected data frames from stations that
		// completed the handshake (except EAPOL, which stays cleartext).
		if et, _, err := netstack.UnwrapSNAP(msdu); err != nil || et != netstack.EtherTypeEAPOL {
			a.Stats.CCMPDrops++
			return
		}
	}
	et, payload, err := netstack.UnwrapSNAP(msdu)
	if err != nil {
		return
	}
	// Group-addressed uplink (e.g. a gratuitous ARP announce) is relayed
	// back into the BSS under the group key, as the distribution system
	// requires, so other stations learn of it too.
	if d.DA().IsGroup() && st.secured && et != netstack.EtherTypeEAPOL {
		a.relayGroup(src, d.DA(), msdu)
	}
	switch et {
	case netstack.EtherTypeEAPOL:
		a.handleEAPOL(src, st, payload)
	case netstack.EtherTypeARP:
		a.handleARP(src, st, payload)
	case netstack.EtherTypeIPv4:
		a.handleIPv4(src, st, payload)
	default:
		a.Stats.UplinkFrames++
		if a.OnUplink != nil {
			a.OnUplink(src, et, payload)
		}
	}
}

// relayGroup retransmits a broadcast/multicast MSDU into the BSS,
// GTK-protected. The original sender recognizes its own SA and ignores it.
func (a *AP) relayGroup(sa, da dot11.MAC, msdu []byte) {
	f := dot11.NewDataFromAP(a.Cfg.BSSID, da, sa, msdu)
	f.Header.FC.Protected = true
	body, err := a.groupTx.Encapsulate(crypto80211.DataFrameMeta(f), msdu)
	if err != nil {
		return
	}
	f.Payload = body
	a.Stats.GroupRelays++
	a.send(f, nil)
}

func (a *AP) handleEAPOL(src dot11.MAC, st *stationState, pdu []byte) {
	if st.authenticator == nil {
		return
	}
	resp, err := st.authenticator.Handle(pdu)
	if err != nil {
		// Failed handshake: deauth the client, as real APs do.
		d := &dot11.Deauth{Reason: dot11.ReasonUnspecified}
		d.Header.Addr1 = src
		d.Header.Addr2 = a.Cfg.BSSID
		d.Header.Addr3 = a.Cfg.BSSID
		a.send(d, nil)
		delete(a.stations, src)
		return
	}
	if resp != nil {
		a.sendEAPOL(src, resp)
	}
	if st.authenticator.Done() {
		st.secured = true
		st.ccmp = crypto80211.NewCCMPSession(st.authenticator.PTK().TK)
		a.Stats.HandshakesDone++
	}
}

func (a *AP) handleARP(src dot11.MAC, st *stationState, payload []byte) {
	req, err := netstack.ParseARP(payload)
	if err != nil || req.Op != netstack.ARPRequest || req.TargetIP != a.Cfg.IP {
		return
	}
	rep, err := req.Reply([6]byte(a.Cfg.BSSID))
	if err != nil {
		return
	}
	a.Stats.ARPReplies++
	a.sched.DoAfter(a.Cfg.ARPDelay, func() {
		a.sendDownlink(src, a.Cfg.BSSID, netstack.WrapSNAP(netstack.EtherTypeARP, rep.Append(nil)))
	})
}

func (a *AP) handleIPv4(src dot11.MAC, st *stationState, payload []byte) {
	hdr, body, err := netstack.ParseIPv4(payload)
	if err != nil || hdr.Protocol != netstack.ProtoUDP {
		return
	}
	udp, data, err := netstack.ParseUDP(body)
	if err != nil {
		return
	}
	if udp.DstPort == netstack.DHCPServerPort {
		msg, err := netstack.ParseDHCP(data)
		if err != nil {
			return
		}
		reply := a.DHCP.Handle(msg)
		if reply == nil {
			return
		}
		a.Stats.DHCPReplies++
		a.sched.DoAfter(a.Cfg.DHCPDelay, func() { a.sendDHCP(src, reply) })
		return
	}
	// If the destination IP belongs to another associated station, the AP
	// bridges the frame within the BSS (the distribution-system function):
	// decrypted on the way in, re-protected with the destination's own
	// pairwise key on the way out.
	if hw, ok := a.DHCP.HardwareFor(hdr.Dst); ok && dot11.MAC(hw) != src {
		dst := dot11.MAC(hw)
		if st, known := a.stations[dst]; known && st.associated {
			a.Stats.BridgedFrames++
			a.sendDownlink(dst, src, netstack.WrapSNAP(netstack.EtherTypeIPv4, payload))
			return
		}
	}
	// Any other UDP datagram is application uplink (the sensor reading).
	a.Stats.UplinkFrames++
	if a.OnUplink != nil {
		a.OnUplink(src, netstack.EtherTypeIPv4, append(append([]byte(nil), udpMeta(hdr, udp)...), data...))
	}
}

// udpMeta compactly records the addressing of a delivered datagram for
// observers (src IP, dst IP, ports).
func udpMeta(ip netstack.IPv4Header, udp netstack.UDPHeader) []byte {
	return []byte{
		ip.Src[0], ip.Src[1], ip.Src[2], ip.Src[3],
		ip.Dst[0], ip.Dst[1], ip.Dst[2], ip.Dst[3],
		byte(udp.SrcPort >> 8), byte(udp.SrcPort), byte(udp.DstPort >> 8), byte(udp.DstPort),
	}
}

// sendDHCP wraps a DHCP reply in UDP/IP/SNAP and transmits it downlink.
func (a *AP) sendDHCP(sta dot11.MAC, msg *netstack.DHCP) {
	dg := netstack.AppendUDP(nil, netstack.UDPHeader{SrcPort: netstack.DHCPServerPort, DstPort: netstack.DHCPClientPort}, msg.Append(nil))
	a.ipID++
	pkt := netstack.AppendIPv4(nil, netstack.IPv4Header{
		Protocol: netstack.ProtoUDP, Src: a.Cfg.IP, Dst: netstack.IPBroadcast, ID: a.ipID,
	}, dg)
	a.sendDownlink(sta, a.Cfg.BSSID, netstack.WrapSNAP(netstack.EtherTypeIPv4, pkt))
}

// PushDownlink delivers an MSDU from the distribution system to a station
// — what the AP does when the router forwards an inbound packet. It
// respects power-save buffering and CCMP protection.
func (a *AP) PushDownlink(sta dot11.MAC, msdu []byte) {
	a.sendDownlink(sta, a.Cfg.BSSID, msdu)
}

// sendDownlink delivers an MSDU to a station, buffering it if the station
// dozes.
func (a *AP) sendDownlink(sta dot11.MAC, sa dot11.MAC, msdu []byte) {
	st := a.station(sta)
	if st.dozing {
		st.buffered = append(st.buffered, bufferedMSDU{payload: msdu, sa: sa})
		a.Stats.BufferedFrames++
		return
	}
	a.transmitDownlink(sta, st, bufferedMSDU{payload: msdu, sa: sa}, false)
}

// transmitDownlink builds (and, once keys exist, CCMP-protects) one
// AP→station data frame. EAPOL rides cleartext until the handshake ends.
func (a *AP) transmitDownlink(sta dot11.MAC, st *stationState, msdu bufferedMSDU, moreData bool) {
	f := dot11.NewDataFromAP(a.Cfg.BSSID, sta, msdu.sa, msdu.payload)
	f.Header.FC.MoreData = moreData
	isEAPOL := false
	if et, _, err := netstack.UnwrapSNAP(msdu.payload); err == nil && et == netstack.EtherTypeEAPOL {
		isEAPOL = true
	}
	if st.ccmp != nil && !isEAPOL {
		f.Header.FC.Protected = true
		body, err := st.ccmp.Encapsulate(crypto80211.DataFrameMeta(f), msdu.payload)
		if err != nil {
			return
		}
		f.Payload = body
	}
	a.send(f, nil)
}

// handlePSPoll releases one buffered frame to a polling station.
func (a *AP) handlePSPoll(p *dot11.PSPoll) {
	st, ok := a.stations[p.Transmitter]
	if !ok || len(st.buffered) == 0 {
		return
	}
	msdu := st.buffered[0]
	st.buffered = st.buffered[1:]
	a.Stats.PSPollsServiced++
	a.transmitDownlink(p.Transmitter, st, msdu, len(st.buffered) > 0)
}

// flushBuffered sends everything held for a station that woke up.
func (a *AP) flushBuffered(sta dot11.MAC, st *stationState) {
	for _, msdu := range st.buffered {
		a.transmitDownlink(sta, st, msdu, false)
	}
	st.buffered = nil
}

// StationInfo reports a client's association state for tests and tools.
type StationInfo struct {
	AID        uint16
	Associated bool
	Secured    bool
	Dozing     bool
	Buffered   int
}

// Station reports the state of a client, if known.
func (a *AP) Station(addr dot11.MAC) (StationInfo, bool) {
	st, ok := a.stations[addr]
	if !ok {
		return StationInfo{}, false
	}
	return StationInfo{
		AID: st.aid, Associated: st.associated, Secured: st.secured,
		Dozing: st.dozing, Buffered: len(st.buffered),
	}, true
}

// String summarizes the AP.
func (a *AP) String() string {
	return fmt.Sprintf("AP %q (%v) ch%d", a.Cfg.SSID, a.Cfg.BSSID, a.Cfg.Channel)
}
