package ap

import (
	"strings"
	"testing"

	"wile/internal/dot11"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/netstack"
	"wile/internal/phy"
	"wile/internal/sim"
)

var (
	bssid   = dot11.MustParseMAC("aa:bb:cc:00:00:01")
	staAddr = dot11.MustParseMAC("02:57:00:00:00:05")
)

type fixture struct {
	sched *sim.Scheduler
	med   *medium.Medium
	ap    *AP
	sta   *mac.Port // raw MAC port standing in for a station
}

func newFixture() *fixture {
	sched := sim.New()
	med := medium.New(sched, phy.WiFi24Channel(6))
	a := New(sched, med, Config{
		SSID:       "lab-net",
		Passphrase: "correct horse battery staple",
		BSSID:      bssid,
		Channel:    6,
		IP:         netstack.MustParseIP("192.168.86.1"),
	})
	a.Start()
	p := mac.New(sched, med, "fake-sta", medium.Position{X: 2, Y: 0}, staAddr,
		phy.RateHTMCS7, 0, phy.SensitivityWiFi1M, sim.NewRand(5))
	p.SetRadioOn(true)
	return &fixture{sched: sched, med: med, ap: a, sta: p}
}

func TestBeaconCadenceAndContents(t *testing.T) {
	fx := newFixture()
	var beacons []*dot11.Beacon
	var times []sim.Time
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if b, ok := f.(*dot11.Beacon); ok {
			// Copy the elements out of the reception buffer.
			cp := *b
			cp.Elements = append(dot11.Elements(nil), b.Elements...)
			beacons = append(beacons, &cp)
			times = append(times, fx.sched.Now())
		}
	}
	fx.sched.RunUntil(sim.Second + 60*sim.Millisecond)
	// 102.4 ms interval → 10 beacons within 1.06 s.
	if len(beacons) != 10 {
		t.Fatalf("received %d beacons, want 10", len(beacons))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap < 100*TU/100*99 || gap > 106*TU/100*100 {
			// Allow a couple of slots of DCF jitter around 102.4 ms.
			if gap < TU*99 || gap > TU*106 {
				t.Fatalf("beacon gap %v outside 102.4 ms ± jitter", gap)
			}
		}
	}
	b := beacons[0]
	if ssid, hidden, ok := b.Elements.SSID(); !ok || hidden || ssid != "lab-net" {
		t.Errorf("beacon SSID %q hidden=%v", ssid, hidden)
	}
	if !b.Capability.Has(dot11.CapESS | dot11.CapPrivacy) {
		t.Errorf("capability %04x", b.Capability)
	}
	if ch, ok := b.Elements.DSChannel(); !ok || ch != 6 {
		t.Errorf("channel %d", ch)
	}
	if _, ok := b.Elements.Find(dot11.ElementTIM); !ok {
		t.Error("beacon missing TIM")
	}
	if _, ok := b.Elements.Find(dot11.ElementRSN); !ok {
		t.Error("beacon missing RSN")
	}
	if b.Timestamp == 0 {
		t.Error("beacon timestamp unset")
	}
}

func TestProbeResponseFiltering(t *testing.T) {
	fx := newFixture()
	responses := 0
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if _, ok := f.(*dot11.ProbeResp); ok {
			responses++
		}
	}
	sendProbe := func(ssid string, wildcard bool) {
		els := dot11.Elements{dot11.DefaultRates()}
		if wildcard {
			els = append(dot11.Elements{dot11.SSIDElement("")}, els...)
		} else {
			els = append(dot11.Elements{dot11.SSIDElement(ssid)}, els...)
		}
		req := &dot11.ProbeReq{Elements: els}
		req.Header.Addr1 = dot11.Broadcast
		req.Header.Addr2 = staAddr
		req.Header.Addr3 = dot11.Broadcast
		fx.sta.Send(req, nil)
		fx.sched.RunFor(50 * sim.Millisecond.Duration())
	}
	sendProbe("lab-net", false)
	if responses != 1 {
		t.Fatalf("directed probe: %d responses", responses)
	}
	sendProbe("", true)
	if responses != 2 {
		t.Fatalf("wildcard probe: %d responses", responses)
	}
	sendProbe("other-net", false)
	if responses != 2 {
		t.Fatalf("foreign probe answered: %d responses", responses)
	}
	if fx.ap.Stats.ProbeResponses != 2 {
		t.Fatalf("AP counted %d probe responses", fx.ap.Stats.ProbeResponses)
	}
}

func TestAssocWithoutAuthDenied(t *testing.T) {
	fx := newFixture()
	var status *dot11.StatusCode
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if r, ok := f.(*dot11.AssocResp); ok {
			s := r.Status
			status = &s
		}
	}
	req := &dot11.AssocReq{Capability: dot11.CapESS,
		Elements: dot11.Elements{dot11.SSIDElement("lab-net"), dot11.RSNElement(dot11.DefaultRSN())}}
	req.Header.Addr1 = bssid
	req.Header.Addr2 = staAddr
	req.Header.Addr3 = bssid
	fx.sta.Send(req, nil)
	fx.sched.RunFor(100 * sim.Millisecond.Duration())
	if status == nil {
		t.Fatal("no assoc response")
	}
	if *status == dot11.StatusSuccess {
		t.Fatal("unauthenticated association accepted")
	}
}

func TestAssocWithoutRSNRejected(t *testing.T) {
	fx := newFixture()
	// Authenticate first.
	auth := &dot11.Auth{Algorithm: dot11.AuthOpen, Seq: 1}
	auth.Header.Addr1 = bssid
	auth.Header.Addr2 = staAddr
	auth.Header.Addr3 = bssid
	fx.sta.Send(auth, nil)
	fx.sched.RunFor(50 * sim.Millisecond.Duration())

	var status *dot11.StatusCode
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if r, ok := f.(*dot11.AssocResp); ok {
			s := r.Status
			status = &s
		}
	}
	req := &dot11.AssocReq{Capability: dot11.CapESS,
		Elements: dot11.Elements{dot11.SSIDElement("lab-net")}} // no RSN
	req.Header.Addr1 = bssid
	req.Header.Addr2 = staAddr
	req.Header.Addr3 = bssid
	fx.sta.Send(req, nil)
	fx.sched.RunFor(100 * sim.Millisecond.Duration())
	if status == nil || *status != dot11.StatusInvalidRSN {
		t.Fatalf("status = %v, want invalid-RSN", status)
	}
}

// enterDozing authenticates and associates the fake station (so it holds
// an AID the TIM can index), then marks it dozing via a null frame.
func (fx *fixture) enterDozing(t *testing.T) {
	t.Helper()
	auth := &dot11.Auth{Algorithm: dot11.AuthOpen, Seq: 1}
	auth.Header.Addr1 = bssid
	auth.Header.Addr2 = staAddr
	auth.Header.Addr3 = bssid
	fx.sta.Send(auth, nil)
	fx.sched.RunFor(50 * sim.Millisecond.Duration())
	assoc := &dot11.AssocReq{Capability: dot11.CapESS, ListenInterval: 3,
		Elements: dot11.Elements{dot11.SSIDElement("lab-net"), dot11.RSNElement(dot11.DefaultRSN())}}
	assoc.Header.Addr1 = bssid
	assoc.Header.Addr2 = staAddr
	assoc.Header.Addr3 = bssid
	fx.sta.Send(assoc, nil)
	fx.sched.RunFor(50 * sim.Millisecond.Duration())
	info, ok := fx.ap.Station(staAddr)
	if !ok || !info.Associated || info.AID == 0 {
		t.Fatalf("association failed: %+v", info)
	}
	fx.sta.Send(dot11.NewNull(bssid, staAddr, true), nil)
	fx.sched.RunFor(50 * sim.Millisecond.Duration())
	info, ok = fx.ap.Station(staAddr)
	if !ok || !info.Dozing {
		t.Fatal("station not dozing at AP")
	}
}

func TestPSBufferingAndTIM(t *testing.T) {
	fx := newFixture()
	fx.enterDozing(t)

	// Downlink while dozing must be buffered, not transmitted.
	dataFrames := 0
	var timSawUs bool
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		switch g := f.(type) {
		case *dot11.Data:
			dataFrames++
		case *dot11.Beacon:
			if info, ok := g.Elements.Find(dot11.ElementTIM); ok {
				if tim, err := dot11.ParseTIM(info); err == nil && len(tim.Buffered) > 0 {
					timSawUs = true
				}
			}
		}
	}
	fx.ap.sendDownlink(staAddr, bssid, netstack.WrapSNAP(netstack.EtherTypeIPv4, []byte("queued")))
	fx.sched.RunFor(300 * sim.Millisecond.Duration())

	if dataFrames != 0 {
		t.Fatal("AP transmitted to a dozing station")
	}
	info, _ := fx.ap.Station(staAddr)
	if info.Buffered != 1 {
		t.Fatalf("buffered = %d", info.Buffered)
	}
	if !timSawUs {
		t.Fatal("TIM never advertised buffered traffic")
	}
	if fx.ap.Stats.BufferedFrames != 1 {
		t.Fatalf("stats.BufferedFrames = %d", fx.ap.Stats.BufferedFrames)
	}
}

func TestPSPollReleasesOneFrame(t *testing.T) {
	fx := newFixture()
	fx.enterDozing(t)
	fx.ap.sendDownlink(staAddr, bssid, netstack.WrapSNAP(netstack.EtherTypeIPv4, []byte("one")))
	fx.ap.sendDownlink(staAddr, bssid, netstack.WrapSNAP(netstack.EtherTypeIPv4, []byte("two")))

	var got []*dot11.Data
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			cp := *d
			cp.Payload = append([]byte(nil), d.Payload...)
			got = append(got, &cp)
		}
	}
	poll := &dot11.PSPoll{AID: 1, BSSID: bssid, Transmitter: staAddr}
	fx.sta.Send(poll, nil)
	fx.sched.RunFor(100 * sim.Millisecond.Duration())

	if len(got) != 1 {
		t.Fatalf("PS-Poll released %d frames, want 1", len(got))
	}
	if !got[0].Header.FC.MoreData {
		t.Fatal("MoreData bit unset with a second frame buffered")
	}
	fx.sta.Send(&dot11.PSPoll{AID: 1, BSSID: bssid, Transmitter: staAddr}, nil)
	fx.sched.RunFor(100 * sim.Millisecond.Duration())
	if len(got) != 2 {
		t.Fatalf("second PS-Poll released %d frames total", len(got))
	}
	if got[1].Header.FC.MoreData {
		t.Fatal("MoreData bit set with empty buffer")
	}
	if fx.ap.Stats.PSPollsServiced != 2 {
		t.Fatalf("PSPollsServiced = %d", fx.ap.Stats.PSPollsServiced)
	}
}

func TestWakeFlushesBuffer(t *testing.T) {
	fx := newFixture()
	fx.enterDozing(t)
	fx.ap.sendDownlink(staAddr, bssid, netstack.WrapSNAP(netstack.EtherTypeIPv4, []byte("held")))

	got := 0
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if _, ok := f.(*dot11.Data); ok {
			got++
		}
	}
	// Null frame with PM clear = awake.
	fx.sta.Send(dot11.NewNull(bssid, staAddr, false), nil)
	fx.sched.RunFor(100 * sim.Millisecond.Duration())
	if got != 1 {
		t.Fatalf("wake flushed %d frames, want 1", got)
	}
	info, _ := fx.ap.Station(staAddr)
	if info.Dozing || info.Buffered != 0 {
		t.Fatalf("post-wake state: %+v", info)
	}
}

func TestDeauthForgetsStation(t *testing.T) {
	fx := newFixture()
	fx.enterDozing(t) // creates state
	d := &dot11.Deauth{Reason: dot11.ReasonLeaving}
	d.Header.Addr1 = bssid
	d.Header.Addr2 = staAddr
	d.Header.Addr3 = bssid
	fx.sta.Send(d, nil)
	fx.sched.RunFor(50 * sim.Millisecond.Duration())
	if _, ok := fx.ap.Station(staAddr); ok {
		t.Fatal("AP retains deauthed station")
	}
}

func TestStopSilencesAP(t *testing.T) {
	fx := newFixture()
	beacons := 0
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if _, ok := f.(*dot11.Beacon); ok {
			beacons++
		}
	}
	fx.sched.RunFor(300 * sim.Millisecond.Duration())
	if beacons == 0 {
		t.Fatal("no beacons before Stop")
	}
	n := beacons
	fx.ap.Stop()
	fx.sched.RunFor(sim.Second.Duration())
	if beacons != n {
		t.Fatal("beacons after Stop")
	}
}

func TestBadAuthAlgorithmRejected(t *testing.T) {
	fx := newFixture()
	var status *dot11.StatusCode
	fx.sta.Handler = func(f dot11.Frame, rx medium.Reception) {
		if a, ok := f.(*dot11.Auth); ok {
			s := a.Status
			status = &s
		}
	}
	req := &dot11.Auth{Algorithm: dot11.AuthSAE, Seq: 1} // we only do open system
	req.Header.Addr1 = bssid
	req.Header.Addr2 = staAddr
	req.Header.Addr3 = bssid
	fx.sta.Send(req, nil)
	fx.sched.RunFor(100 * sim.Millisecond.Duration())
	if status == nil || *status == dot11.StatusSuccess {
		t.Fatalf("SAE auth outcome: %v", status)
	}
	if fx.ap.Stats.AuthAccepted != 0 {
		t.Fatal("AP counted a rejected auth as accepted")
	}
}

func TestDisassocKeepsAuthDropsAssoc(t *testing.T) {
	fx := newFixture()
	fx.enterDozing(t) // authenticates + associates
	d := &dot11.Disassoc{Reason: dot11.ReasonDisassocLeaving}
	d.Header.Addr1 = bssid
	d.Header.Addr2 = staAddr
	d.Header.Addr3 = bssid
	fx.sta.Send(d, nil)
	fx.sched.RunFor(50 * sim.Millisecond.Duration())
	info, ok := fx.ap.Station(staAddr)
	if !ok {
		t.Fatal("disassoc erased the station entirely")
	}
	if info.Associated || info.Secured {
		// expected: association dropped
	} else if info.AID == 0 {
		t.Fatal("AID lost on disassoc")
	}
	if info.Associated {
		t.Fatal("still associated after disassoc")
	}
}

func TestAPString(t *testing.T) {
	fx := newFixture()
	s := fx.ap.String()
	if s == "" || !strings.Contains(s, "lab-net") {
		t.Fatalf("String() = %q", s)
	}
}
