//go:build !race

package sim

// raceEnabled gates steady-state allocation assertions; see race_test.go.
const raceEnabled = false
