package sim

import (
	"testing"
	"time"
)

// The dense workload models what the figure runs actually schedule: a band
// of periodic streams (beacon TBTT, meter ticks, BLE connection events)
// with one-shot protocol timeouts sprinkled between them. Delays for the
// one-shots span the wheel levels and the overflow heap so the benchmark
// charges the full placement path, not just the level-0 fast case.

const (
	denseEvents  = 100_000
	denseStreams = 64
)

var denseOneshotDelays = [...]time.Duration{
	0,
	3 * time.Microsecond,
	800 * time.Microsecond,
	60 * time.Millisecond,
	2 * time.Second,
	80 * time.Second,
}

// runDense drives the mixed periodic+oneshot workload through a scheduler
// abstracted as schedule/step (the same shape diff_test.go uses) and
// reports how many events fired. The program is deterministic, so both
// lanes of BenchmarkSchedulerDense perform identical scheduling work.
func runDense(schedule func(d time.Duration, fn func()), step func() bool) int {
	fired := 0
	budget := denseEvents

	var arm func(period time.Duration, k int)
	arm = func(period time.Duration, k int) {
		schedule(period, func() {
			fired++
			if k%4 == 0 && budget > 0 {
				budget--
				d := denseOneshotDelays[k%len(denseOneshotDelays)]
				schedule(d, func() { fired++ })
			}
			if budget > 0 {
				budget--
				arm(period, k+1)
			}
		})
	}
	for i := 0; i < denseStreams && budget > 0; i++ {
		budget--
		arm(time.Duration(i%16+1)*25*time.Microsecond, i)
	}
	for step() {
	}
	return fired
}

// BenchmarkSchedulerDense compares the timing-wheel scheduler against the
// plain binary-heap reference on 100k mixed periodic+oneshot events — the
// queue-shape the figure runs produce. The wheel lane uses the pooled
// DoAfter path, as the hot callers do.
func BenchmarkSchedulerDense(b *testing.B) {
	b.Run("wheel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New()
			n := runDense(func(d time.Duration, fn func()) { s.DoAfter(d, fn) }, s.Step)
			if n < denseEvents {
				b.Fatalf("fired %d events, want >= %d", n, denseEvents)
			}
		}
	})
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := &refSched{}
			n := runDense(func(d time.Duration, fn func()) { r.at(r.now.Add(d), fn) }, r.step)
			if n < denseEvents {
				b.Fatalf("fired %d events, want >= %d", n, denseEvents)
			}
		}
	})
}

// TestDenseWorkloadLanesAgree pins the two benchmark lanes to identical
// work: same event count fired through the wheel and the reference heap.
func TestDenseWorkloadLanesAgree(t *testing.T) {
	s := New()
	wheel := runDense(func(d time.Duration, fn func()) { s.DoAfter(d, fn) }, s.Step)
	r := &refSched{}
	heap := runDense(func(d time.Duration, fn func()) { r.at(r.now.Add(d), fn) }, r.step)
	if wheel != heap {
		t.Fatalf("wheel fired %d, reference heap fired %d", wheel, heap)
	}
	if wheel < denseEvents {
		t.Fatalf("workload fired only %d events, want >= %d", wheel, denseEvents)
	}
}
