// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every Wi-LE experiment runs on top of this kernel: the radio medium, the
// MAC state machines, device power models and the measurement instrument all
// schedule work on a single virtual clock. Runs are fully deterministic for
// a given seed, which keeps every experiment in EXPERIMENTS.md repeatable.
//
// The design is the classic event-heap simulator: events carry an absolute
// virtual timestamp, the scheduler pops them in time order (FIFO among
// equal timestamps) and advances the clock to each event's time. There is no
// wall-clock coupling anywhere; simulating a 10-minute sleep costs one heap
// operation.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp, measured in nanoseconds from the start of the
// simulation. It intentionally mirrors time.Duration semantics (signed 64-bit
// nanoseconds) so arithmetic with time.Duration reads naturally.
type Time int64

// Common conversions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t (interpreted as a span) to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the span t-u as a time.Duration.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the timestamp as seconds with microsecond precision, the
// resolution used throughout the paper's figures.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromDuration converts a span to a virtual timestamp measured from zero.
func FromDuration(d time.Duration) Time { return Time(d) }

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: preserves scheduling order at equal times
	fn     func()
	idx    int // heap index, -1 once popped or cancelled
	cancel bool
	// pooled marks events scheduled through DoAt/DoAfter: the scheduler
	// recycles them after they fire, so no *Event for them ever escapes
	// to callers (a retained pointer could Cancel a stranger's event
	// after recycling).
	pooled bool
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.cancel }

// At reports the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the pending event set.
// The zero value is ready to use.
type Scheduler struct {
	// OnDispatch, when non-nil, observes every fired event just after the
	// clock advances to its timestamp and before its callback runs. It is
	// the kernel's observability hook (obs.ObserveScheduler wires it to a
	// trace recorder); a nil hook costs one branch per dispatch and no
	// allocations. The hook must not schedule or cancel events.
	OnDispatch func(at Time)

	now    Time
	seq    uint64
	events eventHeap
	// Stopped is set by Stop; Run drains no further events once set.
	stopped bool
	fired   uint64
	// free is the recycled-event freelist backing DoAt/DoAfter. A plain
	// slice, not a sync.Pool: each kernel is single-goroutine by design
	// (the experiment engine parallelizes across kernels, never within
	// one), so no synchronization is needed and nodes stay warm in cache.
	free []*Event
}

// New returns a scheduler with the clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.events) }

// Fired reports how many events have been executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (at < Now) panics: it is always a logic error in a protocol model,
// and silently reordering time makes power integrals wrong.
func (s *Scheduler) At(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// DoAt schedules fn at the absolute virtual time at on a recycled event
// node. It is the fire-and-forget variant of At for hot paths that never
// cancel: the event node comes from the scheduler's freelist and returns
// to it after firing, so steady-state scheduling allocates nothing.
// Because the node is recycled the caller gets no handle — anything that
// might need Cancel must use At/After instead.
func (s *Scheduler) DoAt(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at, e.fn, e.cancel = at, fn, false
	} else {
		e = &Event{at: at, fn: fn}
	}
	e.pooled = true
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// DoAfter schedules fn to run d after the current virtual time on a
// recycled event node; see DoAt.
func (s *Scheduler) DoAfter(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.DoAt(s.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel defensively.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.cancel || e.idx < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&s.events, e.idx)
	e.idx = -1
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 || s.stopped {
		return false
	}
	e := heap.Pop(&s.events).(*Event)
	s.now = e.at
	s.fired++
	if s.OnDispatch != nil {
		s.OnDispatch(e.at)
	}
	fn := e.fn
	if e.pooled {
		// Recycle before running fn so a callback that schedules another
		// pooled event (the self-rearming tick pattern) reuses this node.
		e.fn = nil
		s.free = append(s.free, e)
	}
	fn()
	return true
}

// Run fires events until none remain or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline remain pending.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.events) > 0 && !s.stopped && s.events[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor is RunUntil(Now+d).
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Resume clears a previous Stop.
func (s *Scheduler) Resume() { s.stopped = false }
