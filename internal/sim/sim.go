// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every Wi-LE experiment runs on top of this kernel: the radio medium, the
// MAC state machines, device power models and the measurement instrument all
// schedule work on a single virtual clock. Runs are fully deterministic for
// a given seed, which keeps every experiment in EXPERIMENTS.md repeatable.
//
// Events carry an absolute virtual timestamp and fire in time order, FIFO
// among equal timestamps. There is no wall-clock coupling anywhere;
// simulating a 10-minute sleep costs one queue operation.
//
// Internally the pending set is a hierarchical timing wheel (see DESIGN.md
// §11): near-future events hash into per-level buckets in O(1), bucket
// contents are sorted by (time, seq) only when their quantum becomes due,
// and events beyond the wheel horizon park in a classic binary heap until
// their window arrives — so correctness never depends on the horizon. Dense
// periodic trains (the 50 kSa/s meter) bypass per-event bookkeeping
// entirely through Ticker, which the dispatcher interleaves with ordinary
// events under the same (time, seq) total order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
	"time"
)

// Time is a virtual timestamp, measured in nanoseconds from the start of the
// simulation. It intentionally mirrors time.Duration semantics (signed 64-bit
// nanoseconds) so arithmetic with time.Duration reads naturally.
type Time int64

// Common conversions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t (interpreted as a span) to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the span t-u as a time.Duration.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the timestamp as seconds with microsecond precision, the
// resolution used throughout the paper's figures.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromDuration converts a span to a virtual timestamp measured from zero.
func FromDuration(d time.Duration) Time { return Time(d) }

// Timing-wheel geometry. A quantum is the wheel's unit of time: 2^quantumBits
// nanoseconds (4.096 µs). Each level holds wheelSlots buckets; level l covers
// spans up to wheelSlots^(l+1) quanta, so four levels reach ~4.8 simulated
// hours before the overflow heap takes over. Within a quantum events are
// sorted by (time, seq) at dispatch, so the wheel's bucketing is invisible
// to the firing order.
const (
	quantumBits = 12
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
)

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: preserves scheduling order at equal times
	fn     func()
	link   *Event // intrusive next pointer while parked in a wheel bucket
	idx    int    // overflow-heap index, or one of the idx* sentinels
	cancel bool
	// pooled marks events scheduled through DoAt/DoAfter: the scheduler
	// recycles them after they fire, so no *Event for them ever escapes
	// to callers (a retained pointer could Cancel a stranger's event
	// after recycling).
	pooled bool
}

// Sentinels for Event.idx when the event is not in the overflow heap.
const (
	idxFired = -1 // popped, fired, or fully cancelled
	idxWheel = -2 // parked in a timing-wheel bucket
	idxDue   = -3 // in the sorted due-run awaiting dispatch
)

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.cancel }

// At reports the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func eventCmp(a, b *Event) int {
	switch {
	case eventLess(a, b):
		return -1
	case eventLess(b, a):
		return 1
	}
	return 0
}

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = idxFired
	*h = old[:n-1]
	return e
}

// wheelLevel is one ring of the hierarchical wheel: a bucket per slot
// (intrusive singly-linked, so parking an event never allocates) plus an
// occupancy bitmap for O(1) next-slot scans.
type wheelLevel struct {
	slots [wheelSlots]*Event
	occ   [wheelSlots / 64]uint64
	count int
}

// nextSlot reports the first occupied slot index >= from, or -1.
func (l *wheelLevel) nextSlot(from int) int {
	if l == nil || l.count == 0 {
		return -1
	}
	w := from >> 6
	word := l.occ[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(l.occ) {
			return -1
		}
		word = l.occ[w]
	}
}

// push parks e in the bucket for slot.
func (l *wheelLevel) push(slot int, e *Event) {
	e.idx = idxWheel
	e.link = l.slots[slot]
	l.slots[slot] = e
	l.occ[slot>>6] |= 1 << (uint(slot) & 63)
	l.count++
}

// levelPool recycles wheel levels across schedulers. A level is ~2 KB of
// slot pointers; without pooling it would dominate the allocation profile
// of short-lived kernels (the engine builds one scheduler per sweep run).
// Levels enter the pool only when empty, and drains zero slots and
// occupancy bits as they go, so a pooled level is always ready to reuse.
var levelPool = sync.Pool{New: func() any { return new(wheelLevel) }}

// releaseLevel returns level lev, which must be empty, to the shared pool.
func (s *Scheduler) releaseLevel(lev int) {
	levelPool.Put(s.levels[lev])
	s.levels[lev] = nil
}

// Scheduler owns the virtual clock and the pending event set.
// The zero value is ready to use.
type Scheduler struct {
	// OnDispatch, when non-nil, observes every fired event (and every
	// Ticker fire) just after the clock advances to its timestamp and
	// before its callback runs. It is the kernel's observability hook
	// (obs.ObserveScheduler wires it to a trace recorder); a nil hook
	// costs one branch per dispatch and no allocations. The hook must not
	// schedule or cancel events. Setting it disables Ticker batch firing,
	// so the firehose records every tick individually, exactly as if each
	// tick were an ordinary event.
	OnDispatch func(at Time)

	now     Time
	seq     uint64
	stopped bool
	fired   uint64
	pending int

	// due is the sorted dispatch run: every event of the quantum currently
	// being drained (plus any event scheduled, mid-drain, for a timestamp
	// the wheel cursor already passed — still in the future, just below
	// doneQ). due[dueIdx:] is sorted by (at, seq) and is always globally
	// minimal: the wheel and overflow heap only hold events in quanta
	// >= doneQ.
	due    []*Event
	dueIdx int
	// doneQ: every wheel quantum < doneQ has been moved to due already.
	doneQ  int64
	levels [wheelLevels]*wheelLevel // allocated lazily per level
	// overflow keeps events beyond the wheel horizon (a different
	// top-level window than doneQ); they migrate into the due run when
	// their quantum becomes the earliest pending work.
	overflow eventHeap
	// tickers are the active periodic trains, dispatched under the same
	// (time, seq) order as events.
	tickers []*Ticker
	// free is the recycled-event freelist backing DoAt/DoAfter. A plain
	// slice, not a sync.Pool: each kernel is single-goroutine by design
	// (the experiment engine parallelizes across kernels, never within
	// one), so no synchronization is needed and nodes stay warm in cache.
	free []*Event
}

// New returns a scheduler with the clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events waiting to fire; an active Ticker
// counts as one pending event (its next fire).
func (s *Scheduler) Pending() int { return s.pending + len(s.tickers) }

// Fired reports how many events (including ticker fires) have been executed
// so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// place files e into the due run, a wheel bucket, or the overflow heap,
// according to its quantum's distance from the wheel cursor.
func (s *Scheduler) place(e *Event) {
	q := int64(e.at) >> quantumBits
	if q < s.doneQ {
		s.dueInsert(e)
		return
	}
	for lev := 0; lev < wheelLevels; lev++ {
		if q>>(wheelBits*(lev+1)) == s.doneQ>>(wheelBits*(lev+1)) {
			l := s.levels[lev]
			if l == nil {
				l = levelPool.Get().(*wheelLevel)
				s.levels[lev] = l
			}
			l.push(int(q>>(wheelBits*lev))&wheelMask, e)
			return
		}
	}
	heap.Push(&s.overflow, e)
}

// dueInsert places e at its sorted position in the pending part of the due
// run. New events always sort at or after dueIdx: their timestamp is >= now,
// and everything already consumed fired at times <= now.
func (s *Scheduler) dueInsert(e *Event) {
	e.idx = idxDue
	lo, hi := s.dueIdx, len(s.due)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(s.due[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.due = append(s.due, nil)
	copy(s.due[lo+1:], s.due[lo:])
	s.due[lo] = e
}

// cascadeSlot drains one bucket of level lev, re-placing its events into
// lower levels (or the due run) relative to the current cursor.
func (s *Scheduler) cascadeSlot(lev, slot int) {
	l := s.levels[lev]
	e := l.slots[slot]
	l.slots[slot] = nil
	l.occ[slot>>6] &^= 1 << (uint(slot) & 63)
	for e != nil {
		next := e.link
		e.link = nil
		l.count--
		s.place(e)
		e = next
	}
	if l.count == 0 {
		s.releaseLevel(lev)
	}
}

// nextQuantum finds the earliest wheel quantum holding events, cascading
// higher-level buckets down as their windows become current. It advances
// doneQ to the base of any not-yet-current cascaded window.
func (s *Scheduler) nextQuantum() (int64, bool) {
	for {
		// First cascade any higher-level slot whose window has become
		// current: refill advances doneQ in quantum steps and crosses
		// window boundaries without touching the wheel, which can leave
		// events parked one level above where the cursor now points. An
		// L0 scan alone would never see them.
		current := false
		for lev := 1; lev < wheelLevels; lev++ {
			l := s.levels[lev]
			if l == nil || l.count == 0 {
				continue
			}
			digit := int(s.doneQ>>(wheelBits*lev)) & wheelMask
			if l.occ[digit>>6]&(1<<(uint(digit)&63)) != 0 {
				s.cascadeSlot(lev, digit)
				current = true
			}
		}
		if current {
			continue
		}
		if l := s.levels[0]; l != nil && l.count > 0 {
			if slot := l.nextSlot(int(s.doneQ & wheelMask)); slot >= 0 {
				return s.doneQ&^wheelMask | int64(slot), true
			}
		}
		// The current window is empty at every level: advance the cursor
		// to the earliest future higher-level slot and cascade it.
		cascaded := false
		for lev := 1; lev < wheelLevels; lev++ {
			l := s.levels[lev]
			if l == nil || l.count == 0 {
				continue
			}
			slot := l.nextSlot(int(s.doneQ>>(wheelBits*lev)) & wheelMask)
			if slot < 0 {
				continue
			}
			span := int64(1) << (wheelBits * lev)
			base := s.doneQ&^(span<<wheelBits-1) | int64(slot)*span
			if base > s.doneQ {
				s.doneQ = base
			}
			s.cascadeSlot(lev, slot)
			cascaded = true
			break
		}
		if !cascaded {
			return 0, false
		}
	}
}

// refillDue resets the due run and loads the earliest pending quantum from
// the wheel and/or the overflow heap, sorted by (at, seq). It reports false
// when no events remain anywhere.
func (s *Scheduler) refillDue() bool {
	s.due = s.due[:0]
	s.dueIdx = 0
	wq, wok := s.nextQuantum()
	ook := len(s.overflow) > 0
	var oq int64
	if ook {
		oq = int64(s.overflow[0].at) >> quantumBits
	}
	if !wok && !ook {
		return false
	}
	q := wq
	if !wok || (ook && oq < wq) {
		q = oq
	}
	if wok && q == wq {
		l := s.levels[0]
		slot := int(q & wheelMask)
		e := l.slots[slot]
		l.slots[slot] = nil
		l.occ[slot>>6] &^= 1 << (uint(slot) & 63)
		for e != nil {
			next := e.link
			e.link = nil
			e.idx = idxDue
			l.count--
			s.due = append(s.due, e)
			e = next
		}
		if l.count == 0 {
			s.releaseLevel(0)
		}
	}
	for len(s.overflow) > 0 && int64(s.overflow[0].at)>>quantumBits == q {
		e := heap.Pop(&s.overflow).(*Event)
		e.idx = idxDue
		s.due = append(s.due, e)
	}
	if len(s.due) > 1 {
		slices.SortFunc(s.due, eventCmp)
	}
	if q >= s.doneQ {
		s.doneQ = q + 1
	}
	return true
}

// peek returns the next uncancelled event without dispatching it, or nil
// when none remain. It may migrate events from the wheel and overflow heap
// into the due run.
func (s *Scheduler) peek() *Event {
	for {
		for s.dueIdx < len(s.due) {
			e := s.due[s.dueIdx]
			if e.cancel {
				e.idx = idxFired
				s.due[s.dueIdx] = nil
				s.dueIdx++
				continue
			}
			// A cascade may have advanced doneQ past quanta still parked
			// in the overflow heap (cascade bases derive from wheel slots
			// only); later due inserts can then be outrun by an earlier
			// overflow event. Migrate any such quantum into the due run
			// before handing out the head.
			if len(s.overflow) > 0 && eventLess(s.overflow[0], e) {
				q := int64(s.overflow[0].at) >> quantumBits
				for len(s.overflow) > 0 && int64(s.overflow[0].at)>>quantumBits == q {
					s.dueInsert(heap.Pop(&s.overflow).(*Event))
				}
				continue
			}
			return e
		}
		if !s.refillDue() {
			return nil
		}
	}
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (at < Now) panics: it is always a logic error in a protocol model,
// and silently reordering time makes power integrals wrong.
func (s *Scheduler) At(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	s.pending++
	s.place(e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// DoAt schedules fn at the absolute virtual time at on a recycled event
// node. It is the fire-and-forget variant of At for hot paths that never
// cancel: the event node comes from the scheduler's freelist and returns
// to it after firing, so steady-state scheduling allocates nothing.
// Because the node is recycled the caller gets no handle — anything that
// might need Cancel must use At/After instead.
func (s *Scheduler) DoAt(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at, e.fn, e.cancel = at, fn, false
	} else {
		e = &Event{at: at, fn: fn}
	}
	e.pooled = true
	e.seq = s.seq
	s.seq++
	s.pending++
	s.place(e)
}

// DoAfter schedules fn to run d after the current virtual time on a
// recycled event node; see DoAt.
func (s *Scheduler) DoAfter(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.DoAt(s.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel defensively.
// Wheel-parked events cancel lazily: the node is skipped (and released)
// when its quantum drains.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.cancel || e.idx == idxFired {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	s.pending--
	if e.idx >= 0 {
		heap.Remove(&s.overflow, e.idx)
		e.idx = idxFired
	}
}

// dispatch fires e, the head of the due run.
func (s *Scheduler) dispatch(e *Event) {
	s.due[s.dueIdx] = nil
	s.dueIdx++
	e.idx = idxFired
	s.pending--
	s.now = e.at
	s.fired++
	if s.OnDispatch != nil {
		s.OnDispatch(e.at)
	}
	fn := e.fn
	if e.pooled {
		// Recycle before running fn so a callback that schedules another
		// pooled event (the self-rearming tick pattern) reuses this node.
		e.fn = nil
		s.free = append(s.free, e)
	}
	fn()
}

// Step fires the next pending event or ticker fire, advancing the clock to
// its timestamp. It reports false when nothing remains.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	e := s.peek()
	t := s.nextTicker()
	if t != nil && (e == nil || t.next < e.at || (t.next == e.at && t.seq < e.seq)) {
		s.fireTick(t)
		return true
	}
	if e == nil {
		return false
	}
	s.dispatch(e)
	return true
}

// Run fires events until none remain or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline remain
// pending. Ticker trains with a batch handler fire in closed-form batches
// across event-free stretches (see Ticker).
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.stopped {
		e := s.peek()
		t := s.nextTicker()
		if t != nil && (e == nil || t.next < e.at || (t.next == e.at && t.seq < e.seq)) {
			if t.next > deadline {
				break
			}
			limit := deadline
			if e != nil && e.at-1 < limit {
				limit = e.at - 1
			}
			if !s.fireBatch(t, limit) {
				s.fireTick(t)
			}
			continue
		}
		if e == nil || e.at > deadline {
			break
		}
		s.dispatch(e)
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor is RunUntil(Now+d).
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Resume clears a previous Stop.
func (s *Scheduler) Resume() { s.stopped = false }

// Ticker is a first-class periodic event train: one fire callback every
// period, interleaved with ordinary events under the exact (time, seq)
// order a self-rearming DoAfter chain would produce — each fire consumes
// the seq its rearm would have held, and reallocates the next one when the
// callback returns — but without a queue operation per fire. A train with a
// batch handler additionally collapses event-free stretches: RunUntil
// invokes batch(from, n) once for n consecutive fires with no intervening
// event, which is how the 50 kSa/s meter samples a 2-second window in a
// handful of calls. Handlers must not schedule or cancel events from inside
// a batch call (single fires may), or the seq emulation breaks.
type Ticker struct {
	sched   *Scheduler
	next    Time
	period  Time
	seq     uint64
	fire    func(at Time)
	batch   func(from Time, n int)
	stopped bool
}

// Tick starts a periodic train firing at start, start+period, ... until
// Stop. The first fire's position among equal-timestamp events matches an
// event scheduled by At(start, ...) at this call site.
func (s *Scheduler) Tick(start Time, period time.Duration, fire func(at Time)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	if start < s.now {
		panic(fmt.Sprintf("sim: ticker start %v before now %v", start, s.now))
	}
	t := &Ticker{sched: s, next: start, period: Time(period), fire: fire, seq: s.seq}
	s.seq++
	s.tickers = append(s.tickers, t)
	return t
}

// SetBatch installs the closed-form batch handler; see Ticker. Batching is
// suppressed while OnDispatch is set, so the scheduler firehose observes
// every individual fire.
func (t *Ticker) SetBatch(fn func(from Time, n int)) { t.batch = fn }

// Next reports the virtual time of the next scheduled fire.
func (t *Ticker) Next() Time { return t.next }

// Stop halts the train; no further fires occur. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	s := t.sched
	for i, x := range s.tickers {
		if x == t {
			s.tickers = append(s.tickers[:i], s.tickers[i+1:]...)
			break
		}
	}
}

// nextTicker returns the active train with the earliest (next, seq) fire.
func (s *Scheduler) nextTicker() *Ticker {
	var best *Ticker
	for _, t := range s.tickers {
		if best == nil || t.next < best.next || (t.next == best.next && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

// fireTick dispatches one ticker fire.
func (s *Scheduler) fireTick(t *Ticker) {
	at := t.next
	s.now = at
	s.fired++
	if s.OnDispatch != nil {
		s.OnDispatch(at)
	}
	t.fire(at)
	if !t.stopped {
		t.next = at + t.period
		t.seq = s.seq
		s.seq++
	}
}

// fireBatch dispatches every fire of t up to and including limit as one
// batch call, provided a batch handler is installed and the firehose is
// off. The seq bookkeeping is exactly the per-fire path repeated: each fire
// consumes the pending seq and allocates the next, with nothing in between
// (the caller guarantees no event lies inside the batch window).
func (s *Scheduler) fireBatch(t *Ticker, limit Time) bool {
	if t.batch == nil || s.OnDispatch != nil || limit < t.next {
		return false
	}
	k := int64((limit-t.next)/t.period) + 1
	from := t.next
	s.now = from + Time(k-1)*t.period
	s.fired += uint64(k)
	t.next = from + Time(k)*t.period
	t.seq = s.seq + uint64(k) - 1
	s.seq += uint64(k)
	t.batch(from, int(k))
	return true
}
