package sim

import (
	"testing"
	"time"
)

func TestDoAfterPreservesFIFOWithAfter(t *testing.T) {
	// Pooled and unpooled events at the same timestamp must still fire in
	// scheduling order — the seq tie-break applies to both.
	s := New()
	var order []int
	s.After(time.Millisecond, func() { order = append(order, 0) })
	s.DoAfter(time.Millisecond, func() { order = append(order, 1) })
	s.After(time.Millisecond, func() { order = append(order, 2) })
	s.DoAfter(time.Millisecond, func() { order = append(order, 3) })
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("fire order %v, want 0..3", order)
		}
	}
}

func TestDoAfterRecyclesEventNodes(t *testing.T) {
	if raceEnabled {
		t.Skip("the wheel-level sync.Pool drops random Puts under the race detector; steady-state alloc counts are nondeterministic")
	}
	s := New()
	fn := func() {}
	// Warm the freelist and the heap's backing array.
	s.DoAfter(0, fn)
	s.Step()
	allocs := testing.AllocsPerRun(200, func() {
		s.DoAfter(time.Microsecond, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("DoAfter+Step allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

func TestSelfRearmingTickReusesOneNode(t *testing.T) {
	// The recycle-before-fire ordering in Step means a tick that reschedules
	// itself keeps reusing the node it just fired from.
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			s.DoAfter(time.Millisecond, tick)
		}
	}
	s.DoAfter(time.Millisecond, tick)
	s.Run()
	if n != 1000 {
		t.Fatalf("tick fired %d times, want 1000", n)
	}
	if len(s.free) != 1 {
		t.Fatalf("freelist holds %d nodes after a single tick chain, want 1", len(s.free))
	}
}

func TestDoAtPanicsOnPastTimestamp(t *testing.T) {
	s := New()
	s.DoAfter(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("DoAt in the past did not panic")
		}
	}()
	s.DoAt(s.Now()-1, func() {})
}

func TestPooledAndCancellableEventsCoexist(t *testing.T) {
	// A cancelled At event must not disturb pooled events around it.
	s := New()
	fired := 0
	e := s.After(time.Millisecond, func() { fired += 100 })
	s.DoAfter(time.Millisecond, func() { fired++ })
	s.Cancel(e)
	s.DoAfter(2*time.Millisecond, func() { fired++ })
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (cancelled event must not run)", fired)
	}
}
