package sim

import (
	"fmt"
	"testing"
	"time"
)

// tickerScript schedules a fixed set of one-shot events (some landing
// exactly on tick boundaries, some between them, some spawned from inside
// callbacks) alongside a periodic source, and records the interleaved
// firing order. The periodic source is either a Ticker or a self-rearming
// At chain — the Ticker's documented contract is that the two are
// indistinguishable.
func tickerScript(s *Scheduler, record func(kind string), periodic func(period time.Duration, until Time)) {
	period := 100 * time.Microsecond
	until := FromDuration(10 * time.Millisecond)

	// On-boundary, off-boundary, and zero-delay events.
	s.At(FromDuration(300*time.Microsecond), func() { record("a") }) // on a tick
	s.At(FromDuration(450*time.Microsecond), func() { record("b") }) // between ticks
	s.At(FromDuration(2*time.Millisecond), func() {                  // spawns more
		record("c")
		s.After(0, func() { record("c0") })
		s.After(50*time.Microsecond, func() { record("c1") })
		s.After(700*time.Microsecond, func() { record("c2") }) // lands on a tick
	})
	s.At(FromDuration(9*time.Millisecond+950*time.Microsecond), func() { record("z") })

	periodic(period, until)
}

func runTickerScript(t *testing.T, useTicker, useBatch bool) []string {
	t.Helper()
	s := New()
	var got []string
	record := func(kind string) { got = append(got, fmt.Sprintf("%s@%d", kind, s.Now())) }

	tickerScript(s, record, func(period time.Duration, until Time) {
		if useTicker {
			tk := s.Tick(FromDuration(period), period, func(at Time) { record("t") })
			if useBatch {
				tk.SetBatch(func(from Time, n int) {
					for i := 0; i < n; i++ {
						at := from.Add(time.Duration(i) * period)
						got = append(got, fmt.Sprintf("t@%d", at))
					}
				})
			}
			s.At(until, func() { tk.Stop() })
			return
		}
		var arm func(at Time)
		arm = func(at Time) {
			s.At(at, func() {
				record("t")
				if next := at.Add(period); next < until {
					arm(next)
				}
			})
		}
		arm(FromDuration(period))
	})

	s.RunUntil(FromDuration(11 * time.Millisecond))
	return got
}

// TestTickerMatchesRearmingChain pins the Ticker's per-fire path to the
// self-rearming event chain it replaced: identical interleaving with
// one-shot events, including FIFO order at shared timestamps.
func TestTickerMatchesRearmingChain(t *testing.T) {
	want := runTickerScript(t, false, false)
	got := runTickerScript(t, true, false)
	if len(got) != len(want) {
		t.Fatalf("ticker fired %d records, chain fired %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("diverged at %d: ticker=%q chain=%q", i, got[i], want[i])
		}
	}
}

// TestTickerBatchMatchesPerFire pins the batch fast path to the per-fire
// path: the expanded batch records must be indistinguishable from
// individual fires.
func TestTickerBatchMatchesPerFire(t *testing.T) {
	want := runTickerScript(t, true, false)
	got := runTickerScript(t, true, true)
	if len(got) != len(want) {
		t.Fatalf("batched ticker produced %d records, per-fire produced %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("diverged at %d: batch=%q per-fire=%q", i, got[i], want[i])
		}
	}
}

// TestTickerFirehoseDisablesBatching: with an OnDispatch hook installed
// (the scheduler-firehose observability mode), every tick must dispatch
// individually so the hook sees each one; the batch callback must never
// run.
func TestTickerFirehoseDisablesBatching(t *testing.T) {
	s := New()
	dispatches := 0
	s.OnDispatch = func(at Time) { dispatches++ }
	fires := 0
	tk := s.Tick(FromDuration(time.Millisecond), time.Millisecond, func(at Time) { fires++ })
	tk.SetBatch(func(from Time, n int) {
		t.Fatalf("batch callback ran (from=%v n=%d) despite OnDispatch", from, n)
	})
	s.RunUntil(FromDuration(10 * time.Millisecond))
	if fires != 10 {
		t.Fatalf("fires = %d, want 10", fires)
	}
	if dispatches != 10 {
		t.Fatalf("OnDispatch saw %d dispatches, want 10", dispatches)
	}
}

// TestTickerStop verifies Stop halts firing immediately (even from inside
// the fire callback) and removes the ticker from Pending.
func TestTickerStop(t *testing.T) {
	s := New()
	fires := 0
	var tk *Ticker
	tk = s.Tick(FromDuration(time.Millisecond), time.Millisecond, func(at Time) {
		fires++
		if fires == 3 {
			tk.Stop()
		}
	})
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d before run, want 1 (the ticker)", s.Pending())
	}
	s.RunUntil(FromDuration(time.Second))
	if fires != 3 {
		t.Fatalf("fires = %d after Stop at 3, want 3", fires)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop, want 0", s.Pending())
	}
	// Stopping again is a no-op.
	tk.Stop()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after double Stop, want 0", s.Pending())
	}
}

// TestTickerNextAdvances verifies Next reports the upcoming fire time as
// the run progresses.
func TestTickerNextAdvances(t *testing.T) {
	s := New()
	period := time.Millisecond
	tk := s.Tick(FromDuration(period), period, func(at Time) {})
	if got, want := tk.Next(), FromDuration(period); got != want {
		t.Fatalf("Next = %v before run, want %v", got, want)
	}
	s.RunUntil(FromDuration(3*time.Millisecond + 500*time.Microsecond))
	if got, want := tk.Next(), FromDuration(4*time.Millisecond); got != want {
		t.Fatalf("Next = %v after 3.5 ms, want %v", got, want)
	}
}

// TestTickerRunAdvancesThroughBatch verifies a batched ticker advances the
// clock to the deadline and counts every fire in Fired.
func TestTickerRunAdvancesThroughBatch(t *testing.T) {
	s := New()
	ticks := 0
	tk := s.Tick(FromDuration(time.Millisecond), time.Millisecond, func(at Time) { ticks++ })
	tk.SetBatch(func(from Time, n int) { ticks += n })
	before := s.Fired()
	s.RunUntil(FromDuration(100 * time.Millisecond))
	if ticks != 100 {
		t.Fatalf("ticks = %d over 100 ms at 1 ms period, want 100", ticks)
	}
	if got := s.Fired() - before; got != 100 {
		t.Fatalf("Fired advanced by %d, want 100", got)
	}
	if s.Now() != FromDuration(100*time.Millisecond) {
		t.Fatalf("Now = %v after RunUntil, want 100ms", s.Now())
	}
}

// TestTickerInvalidArgsPanic pins the constructor's contract.
func TestTickerInvalidArgsPanic(t *testing.T) {
	s := New()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero period", func() { s.Tick(FromDuration(time.Millisecond), 0, func(Time) {}) })
	s2 := New()
	s2.DoAt(FromDuration(time.Millisecond), func() {})
	s2.Run()
	mustPanic("past start", func() { s2.Tick(0, time.Millisecond, func(Time) {}) })
}
