package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{5 * Millisecond, Millisecond, 3 * Millisecond, 2 * Millisecond} {
		at := at
		s.At(at, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{Millisecond, 2 * Millisecond, 3 * Millisecond, 5 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchedulerEqualTimesFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of order: %v", order)
		}
	}
}

func TestSchedulerAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.After(100*time.Millisecond, func() {
		s.After(50*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 150*Millisecond {
		t.Fatalf("nested After fired at %v, want 150ms", at)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := New()
	s.At(Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(Millisecond, func() {})
}

func TestSchedulerCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(Second, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double-cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
}

func TestSchedulerCancelOneOfMany(t *testing.T) {
	s := New()
	var fired []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, s.At(Time(i+1)*Millisecond, func() { fired = append(fired, i) }))
	}
	s.Cancel(events[2])
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.At(Second, func() { fired++ })
	s.At(3*Second, func() { fired++ })
	s.RunUntil(2 * Second)
	if fired != 1 {
		t.Fatalf("fired %d events by 2s, want 1", fired)
	}
	if s.Now() != 2*Second {
		t.Fatalf("clock at %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("%d pending, want 1", s.Pending())
	}
	s.Run()
	if fired != 2 || s.Now() != 3*Second {
		t.Fatalf("after Run: fired=%d now=%v", fired, s.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	s := New()
	s.RunFor(time.Second)
	s.RunFor(time.Second)
	if s.Now() != 2*Second {
		t.Fatalf("clock at %v, want 2s", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	fired := 0
	s.At(Millisecond, func() { fired++; s.Stop() })
	s.At(2*Millisecond, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1 after Stop", fired)
	}
	s.Resume()
	s.Run()
	if fired != 2 {
		t.Fatalf("fired %d after Resume, want 2", fired)
	}
}

func TestEventSchedulingInsideEvent(t *testing.T) {
	// A periodic process implemented by self-rescheduling must fire at
	// exact multiples of its period.
	s := New()
	var times []Time
	var tick func()
	tick = func() {
		times = append(times, s.Now())
		if len(times) < 5 {
			s.After(100*time.Millisecond, tick)
		}
	}
	s.After(100*time.Millisecond, tick)
	s.Run()
	for i, at := range times {
		want := Time(i+1) * 100 * Millisecond
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromDuration(time.Second) != Second {
		t.Fatal("FromDuration mismatch")
	}
	if Second.Duration() != time.Second {
		t.Fatal("Duration mismatch")
	}
	if (3 * Second).Sub(Second) != 2*time.Second {
		t.Fatal("Sub mismatch")
	}
	if got := Second.Add(500 * time.Millisecond); got != 1500*Millisecond {
		t.Fatalf("Add = %v", got)
	}
	if (250 * Millisecond).Seconds() != 0.25 {
		t.Fatal("Seconds mismatch")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		s := New()
		var fired []Time
		for _, d := range delaysMs {
			s.At(Time(d)*Millisecond, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the scheduler fires exactly the events that were not cancelled.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delaysMs []uint8, cancelMask []bool) bool {
		s := New()
		fired := make(map[int]bool)
		var events []*Event
		for i, d := range delaysMs {
			i := i
			events = append(events, s.At(Time(d)*Millisecond, func() { fired[i] = true }))
		}
		wantFired := len(delaysMs)
		for i, e := range events {
			if i < len(cancelMask) && cancelMask[i] {
				s.Cancel(e)
				wantFired--
			}
		}
		s.Run()
		if len(fired) != wantFired {
			return false
		}
		for i := range events {
			cancelled := i < len(cancelMask) && cancelMask[i]
			if fired[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		seen := make(map[int]bool)
		for i := 0; i < 200*n && len(seen) < n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) never produced all values (got %d)", n, len(seen))
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRandJitterCenteredOnOne(t *testing.T) {
	r := NewRand(17)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		j := r.Jitter(50) // 50 ppm crystal
		if math.Abs(j-1) > 50e-6*6 {
			t.Fatalf("jitter %v implausibly far from 1 for 50ppm", j)
		}
		sum += j
	}
	if mean := sum / n; math.Abs(mean-1) > 1e-6 {
		t.Fatalf("jitter mean = %v, want ~1", mean)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}
