package sim

// Deterministic pseudo-random numbers for simulations.
//
// Experiments must be repeatable run-to-run and machine-to-machine, so the
// kernel carries its own small PRNG (xoshiro256**, the same generator family
// used by math/rand/v2) rather than depending on global seeding behaviour.

import "math"

// Rand is a seeded xoshiro256** generator. The zero value is NOT valid; use
// NewRand.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from a single word using SplitMix64,
// the recommended seeding procedure for xoshiro.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// SplitMix64 to fill the state; guards against the all-zero state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple rejection keeps the distribution exactly uniform.
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := r.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Jitter returns a multiplicative clock-jitter factor (1 ± ppm/1e6 * n)
// where n is standard-normal. Used by the §6 multi-sensor study: real IoT
// crystals drift tens of ppm, which is what de-synchronizes co-periodic
// transmitters. Non-positive ppm means a perfect clock (factor 1).
func (r *Rand) Jitter(ppm float64) float64 {
	if ppm <= 0 {
		return 1
	}
	return 1 + ppm/1e6*r.NormFloat64()
}
