package sim

import (
	"math/rand"
	"testing"
	"time"
)

// refSched is a minimal binary-heap reference dispatcher with the same
// (at, seq) total order as Scheduler. The wheel/overflow/ticker machinery
// in the real scheduler must reproduce its firing order exactly; the
// differential tests below (and BenchmarkSchedulerDense in
// sched_bench_test.go) compare the two on randomized workloads.
type refSched struct {
	now Time
	seq uint64
	h   refHeap
}

type refEvent struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
}

type refHeap []*refEvent

func (h refHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *refHeap) push(e *refEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *refHeap) pop() *refEvent {
	old := *h
	n := len(old)
	e := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	i, n := 0, n-1
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		(*h)[i], (*h)[min] = (*h)[min], (*h)[i]
		i = min
	}
	return e
}

func (r *refSched) at(at Time, fn func()) *refEvent {
	e := &refEvent{at: at, seq: r.seq, fn: fn}
	r.seq++
	r.h.push(e)
	return e
}

func (r *refSched) step() bool {
	for len(r.h) > 0 {
		e := r.h.pop()
		if e.cancel {
			continue
		}
		r.now = e.at
		e.fn()
		return true
	}
	return false
}

// randomDelay spans sub-quantum jitter up to beyond the wheel horizon so the
// differential workload exercises every level plus the overflow heap.
func randomDelay(rng *rand.Rand) time.Duration {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1, 2, 3:
		return time.Duration(rng.Intn(4096)) // sub-quantum
	case 4, 5:
		return time.Duration(rng.Intn(1 << 20)) // within level 0
	case 6:
		return time.Duration(rng.Intn(1 << 28)) // level 1
	case 7:
		return time.Duration(rng.Intn(1 << 36)) // level 2
	case 8:
		return time.Duration(rng.Intn(1 << 44)) // level 3
	default:
		return time.Duration(1<<44 + rng.Int63n(1<<45)) // beyond the horizon
	}
}

// diffWorkload is a deterministic self-scheduling program: event i fires,
// optionally spawns children with tape-driven delays, and occasionally
// cancels the most recently scheduled still-pending event. Both schedulers
// replay the identical tape, so their firing sequences must match exactly.
type diffTape struct {
	delay   []time.Duration
	spawn   []int
	cancelK []int
}

func makeTape(seed int64, n int) diffTape {
	rng := rand.New(rand.NewSource(seed))
	t := diffTape{
		delay:   make([]time.Duration, n),
		spawn:   make([]int, n),
		cancelK: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.delay[i] = randomDelay(rng)
		t.spawn[i] = rng.Intn(3)
		t.cancelK[i] = rng.Intn(8)
	}
	return t
}

// runDiffWorkload drives the tape through a scheduler abstracted as a
// schedule function (returning a cancel thunk) plus a step function, and
// records the firing order of event IDs.
func runDiffWorkload(tape diffTape, maxEvents int,
	schedule func(d time.Duration, fn func()) (cancel func()),
	step func() bool) []int {

	var order []int
	var cancels []func()
	next := 0

	var body func(id int)
	body = func(id int) {
		order = append(order, id)
		for i := 0; i < tape.spawn[id%len(tape.spawn)] && next < maxEvents; i++ {
			nid := next
			next++
			d := tape.delay[nid%len(tape.delay)]
			cancels = append(cancels, schedule(d, func() { body(nid) }))
		}
		if tape.cancelK[id%len(tape.cancelK)] == 0 && len(cancels) > 0 {
			cancels[len(cancels)-1]()
			cancels = cancels[:len(cancels)-1]
		}
	}
	for i := 0; i < 64 && next < maxEvents; i++ {
		nid := next
		next++
		d := tape.delay[nid%len(tape.delay)]
		cancels = append(cancels, schedule(d, func() { body(nid) }))
	}
	for step() {
	}
	return order
}

// TestWheelMatchesReferenceHeap fires the same randomized self-scheduling
// workload through the wheel scheduler and the reference heap and requires
// an identical firing sequence.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for trial := int64(0); trial < 25; trial++ {
		tape := makeTape(trial*7919+1, 512)

		s := New()
		got := runDiffWorkload(tape, 3000, func(d time.Duration, fn func()) func() {
			e := s.After(d, fn)
			return func() { s.Cancel(e) }
		}, s.Step)

		r := &refSched{}
		want := runDiffWorkload(tape, 3000, func(d time.Duration, fn func()) func() {
			e := r.at(r.now.Add(d), fn)
			return func() { e.cancel = true }
		}, r.step)

		if len(got) != len(want) {
			t.Fatalf("trial %d: wheel fired %d events, reference fired %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: firing order diverged at index %d: wheel=%d reference=%d (context got=%v want=%v)",
					trial, i, got[i], want[i], tail(got, i), tail(want, i))
			}
		}
	}
}

func tail(xs []int, i int) []int {
	lo := i - 3
	if lo < 0 {
		lo = 0
	}
	hi := i + 4
	if hi > len(xs) {
		hi = len(xs)
	}
	return xs[lo:hi]
}
