// Package pcap reads and writes libpcap capture files containing raw
// 802.11 frames (LINKTYPE_IEEE802_11). The cmd/wile-sensor tool can write
// its injected beacons into a pcap for inspection with standard tooling,
// and cmd/wile-scan can decode sensor data back out of one — the offline
// equivalent of the paper's monitor-mode verification setup.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// LinkType identifies the capture's frame format.
type LinkType uint32

// Link types used here.
const (
	// LinkTypeIEEE80211 is raw 802.11 MPDUs without radiotap.
	LinkTypeIEEE80211 LinkType = 105
	// LinkTypeEthernet is classic Ethernet (for completeness).
	LinkTypeEthernet LinkType = 1
)

const (
	magicMicros = 0xa1b2c3d4
	versionMaj  = 2
	versionMin  = 4
	// DefaultSnapLen captures whole frames.
	DefaultSnapLen = 65535
)

// Packet is one captured frame.
type Packet struct {
	// Time is the capture timestamp.
	Time time.Duration
	// Data is the frame bytes (for 802.11: MPDU including FCS).
	Data []byte
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	started bool
	link    LinkType
}

// NewWriter builds a writer for the given link type. The file header is
// written lazily on the first packet (or by Flush for empty captures).
func NewWriter(w io.Writer, link LinkType) *Writer {
	return &Writer{w: w, link: link}
}

func (pw *Writer) writeHeader() error {
	if pw.started {
		return nil
	}
	pw.started = true
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], versionMin)
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(pw.link))
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket appends one frame.
func (pw *Writer) WritePacket(p Packet) error {
	if err := pw.writeHeader(); err != nil {
		return err
	}
	if len(p.Data) > DefaultSnapLen {
		return fmt.Errorf("pcap: packet %d bytes exceeds snaplen", len(p.Data))
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(p.Time/time.Second))
	binary.LittleEndian.PutUint32(rec[4:], uint32(p.Time%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(p.Data)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(p.Data)
	return err
}

// Flush ensures the header exists even for empty captures.
func (pw *Writer) Flush() error { return pw.writeHeader() }

// Reader consumes a pcap stream.
type Reader struct {
	r    io.Reader
	link LinkType
}

// ErrBadMagic marks a stream that is not a microsecond little-endian pcap.
var ErrBadMagic = errors.New("pcap: bad magic (only µs little-endian pcap supported)")

// NewReader parses the file header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicMicros {
		return nil, ErrBadMagic
	}
	return &Reader{r: r, link: LinkType(binary.LittleEndian.Uint32(hdr[20:]))}, nil
}

// LinkType reports the capture's frame format.
func (pr *Reader) LinkType() LinkType { return pr.link }

// ReadPacket returns the next frame, or io.EOF at a clean end of stream.
func (pr *Reader) ReadPacket() (Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: reading record header: %w", err)
	}
	inclLen := binary.LittleEndian.Uint32(rec[8:])
	if inclLen > DefaultSnapLen {
		return Packet{}, fmt.Errorf("pcap: record length %d exceeds snaplen", inclLen)
	}
	data := make([]byte, inclLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: reading %d-byte record: %w", inclLen, err)
	}
	ts := time.Duration(binary.LittleEndian.Uint32(rec[0:]))*time.Second +
		time.Duration(binary.LittleEndian.Uint32(rec[4:]))*time.Microsecond
	return Packet{Time: ts, Data: data}, nil
}

// ReadAll drains the stream.
func (pr *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := pr.ReadPacket()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
