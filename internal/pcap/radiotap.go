package pcap

import (
	"encoding/binary"
	"fmt"
)

// Radiotap (LINKTYPE_IEEE80211_RADIOTAP = 127) is the de-facto header
// real monitor-mode captures prepend to 802.11 frames. wile-scan accepts
// such captures, and the writer can produce them so other tools see
// rate/channel metadata on our injected beacons.

// LinkTypeRadiotap is the radiotap link type.
const LinkTypeRadiotap LinkType = 127

// Radiotap present-word bits used by this implementation.
const (
	rtPresentRate    = 1 << 2
	rtPresentChannel = 1 << 3
	rtPresentExt     = 1 << 31
)

// RadiotapMeta is the capture metadata this implementation reads/writes.
type RadiotapMeta struct {
	// RateKbps is the PHY rate in kb/s (radiotap encodes 500 kb/s units;
	// zero means absent).
	RateKbps int
	// ChannelMHz is the center frequency (zero means absent).
	ChannelMHz int
}

// AppendRadiotap prepends a radiotap header for meta onto the frame.
func AppendRadiotap(meta RadiotapMeta, frame []byte) []byte {
	var present uint32
	body := []byte{}
	if meta.RateKbps > 0 {
		present |= rtPresentRate
		body = append(body, byte(meta.RateKbps/500))
	}
	if meta.ChannelMHz > 0 {
		present |= rtPresentChannel
		// Channel field needs 2-byte alignment from the header start
		// (offset 8 + len(body) must be even).
		if (8+len(body))%2 == 1 {
			body = append(body, 0)
		}
		body = binary.LittleEndian.AppendUint16(body, uint16(meta.ChannelMHz))
		body = binary.LittleEndian.AppendUint16(body, 0x0080 /* 2 GHz flags default */)
	}
	hdrLen := 8 + len(body)
	out := make([]byte, 0, hdrLen+len(frame))
	out = append(out, 0, 0) // version, pad
	out = binary.LittleEndian.AppendUint16(out, uint16(hdrLen))
	out = binary.LittleEndian.AppendUint32(out, present)
	out = append(out, body...)
	return append(out, frame...)
}

// StripRadiotap parses the radiotap header, returning the inner 802.11
// frame (aliasing data) and the metadata fields this implementation
// understands.
func StripRadiotap(data []byte) ([]byte, RadiotapMeta, error) {
	var meta RadiotapMeta
	if len(data) < 8 {
		return nil, meta, fmt.Errorf("pcap: radiotap header needs 8 bytes, have %d", len(data))
	}
	if data[0] != 0 {
		return nil, meta, fmt.Errorf("pcap: radiotap version %d unsupported", data[0])
	}
	hdrLen := int(binary.LittleEndian.Uint16(data[2:]))
	if hdrLen < 8 || hdrLen > len(data) {
		return nil, meta, fmt.Errorf("pcap: radiotap length %d out of range", hdrLen)
	}
	present := binary.LittleEndian.Uint32(data[4:])
	// Skip extended present words.
	off := 8
	for p := present; p&rtPresentExt != 0; {
		if off+4 > hdrLen {
			return nil, meta, fmt.Errorf("pcap: radiotap present chain truncated")
		}
		p = binary.LittleEndian.Uint32(data[off:])
		off += 4
	}
	// Walk only the fields before the ones we want; field order is fixed
	// by bit number. We care about TSFT(0, 8 bytes, 8-aligned),
	// Flags(1, 1 byte), Rate(2, 1 byte), Channel(3, 4 bytes, 2-aligned).
	align := func(n int) {
		if rem := off % n; rem != 0 {
			off += n - rem
		}
	}
	if present&(1<<0) != 0 { // TSFT
		align(8)
		off += 8
	}
	if present&(1<<1) != 0 { // Flags
		off++
	}
	if present&rtPresentRate != 0 {
		if off < hdrLen {
			meta.RateKbps = int(data[off]) * 500
		}
		off++
	}
	if present&rtPresentChannel != 0 {
		align(2)
		if off+2 <= hdrLen {
			meta.ChannelMHz = int(binary.LittleEndian.Uint16(data[off:]))
		}
		off += 4
	}
	if off > hdrLen {
		return nil, meta, fmt.Errorf("pcap: radiotap fields overflow header")
	}
	return data[hdrLen:], meta, nil
}
