package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"wile/internal/dot11"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	pkts := []Packet{
		{Time: 0, Data: []byte{1, 2, 3}},
		{Time: 1500 * time.Millisecond, Data: []byte{4}},
		{Time: 2 * time.Second, Data: bytes.Repeat([]byte{9}, 300)},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeIEEE80211 {
		t.Fatalf("link type %d", r.LinkType())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets", len(got))
	}
	for i := range pkts {
		if got[i].Time != pkts[i].Time || !bytes.Equal(got[i].Data, pkts[i].Data) {
			t.Fatalf("packet %d: %+v != %+v", i, got[i], pkts[i])
		}
	}
}

func TestHeaderBytes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header %d bytes", len(hdr))
	}
	if hdr[0] != 0xd4 || hdr[1] != 0xc3 || hdr[2] != 0xb2 || hdr[3] != 0xa1 {
		t.Fatalf("magic %x", hdr[:4])
	}
	if hdr[20] != 105 {
		t.Fatalf("link type byte %d", hdr[20])
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	w.WritePacket(Packet{Data: []byte{1, 2, 3, 4, 5}})
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record: %v", err)
	}
}

func TestOversizedPacketRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	if err := w.WritePacket(Packet{Data: make([]byte, DefaultSnapLen+1)}); err == nil {
		t.Fatal("oversized packet written")
	}
}

func TestCarries80211Frames(t *testing.T) {
	// The intended use: write marshaled beacons, read and decode them.
	beacon := dot11.NewBeacon(dot11.LocalMAC(7), 100, 0,
		dot11.Elements{dot11.SSIDElement("")})
	raw, err := dot11.Marshal(beacon)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	w.WritePacket(Packet{Time: time.Second, Data: raw})

	r, _ := NewReader(&buf)
	pkts, err := r.ReadAll()
	if err != nil || len(pkts) != 1 {
		t.Fatal(err)
	}
	f, err := dot11.Decode(pkts[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if f.(*dot11.Beacon).BSSID() != dot11.LocalMAC(7) {
		t.Fatal("beacon mangled through pcap")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(frames [][]byte, tsMillis []uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, LinkTypeIEEE80211)
		var want []Packet
		for i, fr := range frames {
			ts := time.Duration(0)
			if i < len(tsMillis) {
				ts = time.Duration(tsMillis[i]) * time.Millisecond
			}
			p := Packet{Time: ts, Data: fr}
			if err := w.WritePacket(p); err != nil {
				return false
			}
			want = append(want, p)
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Time != want[i].Time || !bytes.Equal(got[i].Data, want[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRadiotapRoundTrip(t *testing.T) {
	frame := []byte{0x80, 0x00, 1, 2, 3, 4, 5, 6, 7, 8}
	meta := RadiotapMeta{RateKbps: 72000, ChannelMHz: 2437}
	wrapped := AppendRadiotap(meta, frame)
	inner, got, err := StripRadiotap(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner, frame) {
		t.Fatalf("inner frame %x", inner)
	}
	if got.RateKbps != 72000 || got.ChannelMHz != 2437 {
		t.Fatalf("meta %+v", got)
	}
}

func TestRadiotapNoFields(t *testing.T) {
	frame := []byte{0xd4, 0, 0, 0}
	wrapped := AppendRadiotap(RadiotapMeta{}, frame)
	inner, meta, err := StripRadiotap(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner, frame) || meta.RateKbps != 0 || meta.ChannelMHz != 0 {
		t.Fatalf("inner=%x meta=%+v", inner, meta)
	}
}

func TestRadiotapWithTSFTAndFlags(t *testing.T) {
	// A hand-built header with TSFT (8B, 8-aligned) + Flags + Rate, as
	// real captures commonly carry.
	frame := []byte{0x80, 0x00}
	hdr := []byte{
		0, 0, 20, 0, // version, pad, len=20
		0x07, 0, 0, 0, // present: TSFT|Flags|Rate
		1, 2, 3, 4, 5, 6, 7, 8, // TSFT (already 8-aligned at offset 8)
		0x00, // flags
		144,  // rate = 72 Mb/s
		0, 0, // pad to len 20
	}
	data := append(hdr, frame...)
	inner, meta, err := StripRadiotap(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner, frame) {
		t.Fatalf("inner %x", inner)
	}
	if meta.RateKbps != 72000 {
		t.Fatalf("rate %d", meta.RateKbps)
	}
}

func TestRadiotapErrors(t *testing.T) {
	if _, _, err := StripRadiotap([]byte{0, 0, 4}); err == nil {
		t.Error("short header accepted")
	}
	if _, _, err := StripRadiotap([]byte{1, 0, 8, 0, 0, 0, 0, 0}); err == nil {
		t.Error("version 1 accepted")
	}
	if _, _, err := StripRadiotap([]byte{0, 0, 200, 0, 0, 0, 0, 0}); err == nil {
		t.Error("oversized header length accepted")
	}
}

func TestPropertyRadiotapRoundTrip(t *testing.T) {
	f := func(frame []byte, rate500k uint8, freq uint16) bool {
		meta := RadiotapMeta{RateKbps: int(rate500k) * 500, ChannelMHz: int(freq)}
		wrapped := AppendRadiotap(meta, frame)
		inner, got, err := StripRadiotap(wrapped)
		if err != nil || !bytes.Equal(inner, frame) {
			return false
		}
		if meta.RateKbps > 0 && got.RateKbps != meta.RateKbps {
			return false
		}
		if meta.ChannelMHz > 0 && got.ChannelMHz != meta.ChannelMHz {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
