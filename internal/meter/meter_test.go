package meter

import (
	"math"
	"strings"
	"testing"
	"time"

	"wile/internal/sim"
	"wile/internal/units"
)

// rampProbe is a probe whose current the test changes explicitly.
type rampProbe struct{ a units.Amps }

func (p *rampProbe) Current() units.Amps { return p.a }

func TestSamplingRateAndCount(t *testing.T) {
	s := sim.New()
	p := &rampProbe{a: 0.1}
	m := New(s, p, DefaultSampleRate)
	m.Start()
	s.RunUntil(sim.Time(100) * sim.Millisecond)
	m.Stop()
	// 100 ms at 50 kSa/s = 5000 samples (+1 for the t=0 sample).
	if got := len(m.Samples); got < 5000 || got > 5001 {
		t.Fatalf("collected %d samples, want ≈5000", got)
	}
	// Uniform spacing of 20 µs.
	for i := 1; i < 100; i++ {
		if d := m.Samples[i].At - m.Samples[i-1].At; d != 20*sim.Microsecond {
			t.Fatalf("sample spacing %v", d)
		}
	}
}

func TestChargeIntegrationConstantCurrent(t *testing.T) {
	s := sim.New()
	p := &rampProbe{a: 0.05}
	m := New(s, p, 10_000)
	m.Start()
	s.RunUntil(sim.Second)
	m.Stop()
	got := float64(m.Charge(0, sim.Second))
	if math.Abs(got-0.05) > 0.05*0.001 {
		t.Fatalf("charge = %v C, want 0.05", got)
	}
	if mean := float64(m.MeanCurrent(0, sim.Second)); math.Abs(mean-0.05) > 1e-6 {
		t.Fatalf("mean = %v", mean)
	}
	if e := float64(m.Energy(0, sim.Second, units.Volts(3.3))); math.Abs(e-0.05*3.3) > 0.001 {
		t.Fatalf("energy = %v", e)
	}
}

func TestChargeIntegrationStepChange(t *testing.T) {
	s := sim.New()
	p := &rampProbe{a: 0.01}
	m := New(s, p, 10_000)
	m.Start()
	s.After(500*time.Millisecond, func() { p.a = 0.03 })
	s.RunUntil(sim.Second)
	m.Stop()
	want := 0.01*0.5 + 0.03*0.5
	got := float64(m.Charge(0, sim.Second))
	if math.Abs(got-want) > want*0.001 {
		t.Fatalf("charge = %v, want %v", got, want)
	}
	// Sub-window integration.
	first := float64(m.Charge(0, 500*sim.Millisecond))
	if math.Abs(first-0.005) > 0.005*0.01 {
		t.Fatalf("first half charge = %v", first)
	}
}

func TestPeakCurrent(t *testing.T) {
	s := sim.New()
	p := &rampProbe{a: 0.001}
	m := New(s, p, 50_000)
	m.Start()
	s.After(10*time.Millisecond, func() { p.a = 0.18 })
	s.After(11*time.Millisecond, func() { p.a = 0.001 })
	s.RunUntil(20 * sim.Millisecond)
	m.Stop()
	if peak := m.PeakCurrent(0, 20*sim.Millisecond); peak != units.Amps(0.18) {
		t.Fatalf("peak = %v", peak)
	}
	if peak := m.PeakCurrent(12*sim.Millisecond, 20*sim.Millisecond); peak != units.Amps(0.001) {
		t.Fatalf("post-burst peak = %v", peak)
	}
}

func TestStopActuallyStops(t *testing.T) {
	s := sim.New()
	p := &rampProbe{}
	m := New(s, p, 1000)
	m.Start()
	s.RunUntil(10 * sim.Millisecond)
	m.Stop()
	n := len(m.Samples)
	s.RunUntil(sim.Second)
	if len(m.Samples) != n {
		t.Fatalf("meter kept sampling after Stop: %d → %d", n, len(m.Samples))
	}
	// Idempotent start/stop.
	m.Start()
	m.Start()
	s.RunUntil(sim.Second + 10*sim.Millisecond)
	m.Stop()
	m.Stop()
}

func TestWriteCSV(t *testing.T) {
	s := sim.New()
	p := &rampProbe{a: 0.0025}
	m := New(s, p, 1000)
	m.Start()
	s.RunUntil(2 * sim.Millisecond)
	m.Stop()
	var sb strings.Builder
	err := m.WriteCSV(&sb, []Annotation{{At: sim.Millisecond, Label: "Tx"}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# Tx at 0.001000 s\n") {
		t.Fatalf("missing annotation header:\n%s", out)
	}
	if !strings.Contains(out, "time_s,current_mA") {
		t.Fatal("missing CSV header")
	}
	if !strings.Contains(out, "0.000000,2.5000") {
		t.Fatalf("missing first sample row:\n%s", out)
	}
}

func TestDownsample(t *testing.T) {
	s := sim.New()
	p := &rampProbe{}
	m := New(s, p, 10_000)
	m.Start()
	s.RunUntil(10 * sim.Millisecond)
	m.Stop()
	full := len(m.Samples)
	down := m.Downsample(10)
	if len(down) < full/10 || len(down) > full/10+1 {
		t.Fatalf("downsampled %d → %d", full, len(down))
	}
	if same := m.Downsample(1); len(same) != full {
		t.Fatal("Downsample(1) changed the trace")
	}
}

func TestInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	New(sim.New(), &rampProbe{}, 0)
}

func TestReservePreallocatesTraceCapacity(t *testing.T) {
	s := sim.New()
	m := New(s, &rampProbe{a: 0.01}, DefaultSampleRate)
	window := 100 * time.Millisecond
	m.Reserve(window)
	if got, want := cap(m.Samples), 5000; got < want {
		t.Fatalf("Reserve(%v) capacity %d, want >= %d", window, got, want)
	}
	before := cap(m.Samples)
	m.Start()
	s.RunUntil(sim.FromDuration(window))
	m.Stop()
	if cap(m.Samples) != before {
		t.Fatalf("sampling within the reserved window reallocated: cap %d -> %d", before, cap(m.Samples))
	}
	if len(m.Samples) < 5000 {
		t.Fatalf("collected %d samples, want >= 5000", len(m.Samples))
	}
	// Reserving again with room to spare must be a no-op, and a
	// non-positive window must not panic.
	m.Reserve(0)
	m.Reserve(-time.Second)
}
