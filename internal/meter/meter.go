// Package meter models the measurement instrument of the paper's §5.1: a
// Keysight 34465A digital multimeter in series with the device's 3.3 V
// supply, sampling current 50,000 times per second. Figures 3a/3b are this
// sampler's output; Table 1's energies are integrals of it.
package meter

import (
	"fmt"
	"io"
	"time"

	"wile/internal/obs"
	"wile/internal/sim"
	"wile/internal/units"
)

// DefaultSampleRate is the 34465A's digitizing rate used in the paper.
const DefaultSampleRate = 50_000 // samples per second

// Probe supplies the instantaneous current the meter reads.
type Probe interface {
	Current() units.Amps
}

// Sample is one reading.
type Sample struct {
	At      sim.Time
	Current units.Amps
}

// Meter samples a probe at a fixed rate on the simulation clock.
type Meter struct {
	sched *sim.Scheduler
	probe Probe
	// Samples accumulates readings while running.
	Samples []Sample

	period  time.Duration
	running bool
	tick    *sim.Event

	// rec/track carry the optional trace recorder (TraceTo). lastTraced
	// dedups the counter feed: the waveform is piecewise-constant, so one
	// event per plateau carries the full signal and a 2-second 50 kS/s run
	// costs dozens of trace events instead of 100k.
	rec        *obs.Recorder
	track      obs.TrackID
	lastTraced units.Amps
}

// New builds a meter for the probe at rate samples/second.
func New(sched *sim.Scheduler, probe Probe, rate int) *Meter {
	if rate <= 0 {
		panic(fmt.Sprintf("meter: invalid sample rate %d", rate))
	}
	return &Meter{sched: sched, probe: probe, period: time.Second / time.Duration(rate)}
}

// Reserve preallocates Samples capacity for a trace of the given
// duration at the meter's sample rate. A 2-second Figure-3 window at the
// default 50 kS/s is 100k samples; reserving once replaces the ~17
// doubling reallocations append would otherwise perform while sampling.
func (m *Meter) Reserve(window time.Duration) {
	if window <= 0 {
		return
	}
	need := int(window/m.period) + 1
	if cap(m.Samples)-len(m.Samples) >= need {
		return
	}
	grown := make([]Sample, len(m.Samples), len(m.Samples)+need)
	copy(grown, m.Samples)
	m.Samples = grown
}

// Start begins sampling (taking the first sample immediately).
func (m *Meter) Start() {
	if m.running {
		return
	}
	m.running = true
	m.sample()
}

// TraceTo attaches the meter to a trace recorder: readings feed the given
// counter track in milliamperes, recorded only on change. Passing a nil
// recorder detaches.
func (m *Meter) TraceTo(r *obs.Recorder, track obs.TrackID) {
	m.rec = r
	m.track = track
	m.lastTraced = units.Amps(-1) // force the first sample through
}

func (m *Meter) sample() {
	if !m.running {
		return
	}
	a := m.probe.Current()
	m.Samples = append(m.Samples, Sample{At: m.sched.Now(), Current: a})
	if m.rec != nil && a != m.lastTraced {
		m.lastTraced = a
		m.rec.Counter(m.track, m.sched.Now(), a.Milli())
	}
	m.tick = m.sched.After(m.period, m.sample)
}

// Stop halts sampling.
func (m *Meter) Stop() {
	m.running = false
	if m.tick != nil {
		m.sched.Cancel(m.tick)
		m.tick = nil
	}
}

// Charge integrates the sampled current between t0 and t1 using the
// rectangle rule (each sample holds until the next) — the same numeric
// integration a bench engineer applies to exported multimeter data.
func (m *Meter) Charge(t0, t1 sim.Time) units.Coulombs {
	var total units.Coulombs
	for i, s := range m.Samples {
		if s.At >= t1 {
			break
		}
		end := t1
		if i+1 < len(m.Samples) && m.Samples[i+1].At < t1 {
			end = m.Samples[i+1].At
		}
		start := s.At
		if start < t0 {
			start = t0
		}
		if end > start {
			total += units.Charge(s.Current, end.Sub(start))
		}
	}
	return total
}

// Energy integrates energy between t0 and t1 at the rail voltage v.
func (m *Meter) Energy(t0, t1 sim.Time, v units.Volts) units.Joules {
	return m.Charge(t0, t1).Energy(v)
}

// MeanCurrent reports the average current between t0 and t1.
func (m *Meter) MeanCurrent(t0, t1 sim.Time) units.Amps {
	if t1 <= t0 {
		return 0
	}
	return units.MeanCurrent(m.Charge(t0, t1), t1.Sub(t0))
}

// PeakCurrent reports the largest sample between t0 and t1.
func (m *Meter) PeakCurrent(t0, t1 sim.Time) units.Amps {
	var peak units.Amps
	for _, s := range m.Samples {
		if s.At >= t0 && s.At < t1 && s.Current > peak {
			peak = s.Current
		}
	}
	return peak
}

// Annotation labels an instant in an exported trace.
type Annotation struct {
	At    sim.Time
	Label string
}

// WriteCSV writes the trace as "time_s,current_mA" rows, preceded by
// comment lines for each annotation — the format the repository's plotting
// scripts (and any spreadsheet) consume to redraw Figures 3a/3b.
func (m *Meter) WriteCSV(w io.Writer, annotations []Annotation) error {
	for _, a := range annotations {
		if _, err := fmt.Fprintf(w, "# %s at %.6f s\n", a.Label, a.At.Seconds()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "time_s,current_mA"); err != nil {
		return err
	}
	for _, s := range m.Samples {
		if _, err := fmt.Fprintf(w, "%.6f,%.4f\n", s.At.Seconds(), s.Current.Milli()); err != nil {
			return err
		}
	}
	return nil
}

// Downsample returns every nth sample — handy for plotting 2-second traces
// without 100k points.
func (m *Meter) Downsample(n int) []Sample {
	if n <= 1 {
		return m.Samples
	}
	out := make([]Sample, 0, len(m.Samples)/n+1)
	for i := 0; i < len(m.Samples); i += n {
		out = append(out, m.Samples[i])
	}
	return out
}
