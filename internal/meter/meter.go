// Package meter models the measurement instrument of the paper's §5.1: a
// Keysight 34465A digital multimeter in series with the device's 3.3 V
// supply, sampling current 50,000 times per second. Figures 3a/3b are this
// sampler's output; Table 1's energies are integrals of it.
//
// The sampled waveform is piecewise constant — only discrete events change
// the device's current draw — so the meter records plateaus (start, sample
// count, value) rather than individual readings and rides the scheduler's
// Ticker batch path: a 2-second 50 kS/s window costs a handful of plateau
// appends instead of 100k event dispatches. The exported per-sample trace
// is materialized lazily (at Stop or first access) and is sample-for-sample
// identical to per-sample stepping, pinned by the Figure-3b golden and the
// equivalence property tests.
package meter

import (
	"fmt"
	"io"
	"sync"
	"time"

	"wile/internal/obs"
	"wile/internal/sim"
	"wile/internal/units"
)

// DefaultSampleRate is the 34465A's digitizing rate used in the paper.
const DefaultSampleRate = 50_000 // samples per second

// Probe supplies the instantaneous current the meter reads.
type Probe interface {
	Current() units.Amps
}

// Sample is one reading.
type Sample struct {
	At      sim.Time
	Current units.Amps
}

// plateau is a run of consecutive samples with identical value: n readings
// of val at from, from+period, ..., from+(n-1)*period.
type plateau struct {
	from sim.Time
	n    int64
	val  units.Amps
}

// Meter samples a probe at a fixed rate on the simulation clock.
type Meter struct {
	sched *sim.Scheduler
	probe Probe
	// Samples holds the materialized per-sample trace. While running, the
	// meter accumulates plateaus instead; Stop (or any accessor) expands
	// them here. Meters built as literals around an existing Samples slice
	// keep working: with no recorded plateaus nothing is rebuilt.
	Samples []Sample

	period  time.Duration
	running bool
	ticker  *sim.Ticker

	// plateaus is the compact waveform; dirty marks Samples as stale
	// relative to it.
	plateaus []plateau
	dirty    bool

	// rec/track carry the optional trace recorder (TraceTo). lastTraced
	// dedups the counter feed: the waveform is piecewise-constant, so one
	// event per plateau carries the full signal and a 2-second 50 kS/s run
	// costs dozens of trace events instead of 100k.
	rec        *obs.Recorder
	track      obs.TrackID
	lastTraced units.Amps
}

// New builds a meter for the probe at rate samples/second.
func New(sched *sim.Scheduler, probe Probe, rate int) *Meter {
	if rate <= 0 {
		panic(fmt.Sprintf("meter: invalid sample rate %d", rate))
	}
	return &Meter{sched: sched, probe: probe, period: time.Second / time.Duration(rate)}
}

// samplePool recycles materialized trace buffers across runs; experiment
// benchmarks and engine sweeps return finished traces through
// RecycleSamples so back-to-back figure runs reuse one 100k-sample buffer.
var samplePool sync.Pool

// acquireSamples returns an empty sample buffer with at least the given
// capacity, reusing a pooled buffer when one is large enough.
func acquireSamples(capacity int) []Sample {
	if v := samplePool.Get(); v != nil {
		s := v.([]Sample)
		if cap(s) >= capacity {
			return s[:0]
		}
	}
	return make([]Sample, 0, capacity)
}

// RecycleSamples returns a sample buffer to the shared pool for reuse by a
// later Reserve. The caller must not use the slice afterwards. Small
// buffers are dropped: pooling only pays for figure-scale traces.
func RecycleSamples(s []Sample) {
	if cap(s) >= 4096 {
		samplePool.Put(s[:0]) //nolint — slice header boxing is once per run
	}
}

// Reserve preallocates Samples capacity for a trace of the given
// duration at the meter's sample rate. A 2-second Figure-3 window at the
// default 50 kS/s is 100k samples; reserving once replaces the ~17
// doubling reallocations append would otherwise perform while sampling.
func (m *Meter) Reserve(window time.Duration) {
	if window <= 0 {
		return
	}
	need := int(window/m.period) + 1
	if cap(m.Samples)-len(m.Samples) >= need {
		return
	}
	grown := acquireSamples(len(m.Samples) + need)
	grown = grown[:len(m.Samples)]
	copy(grown, m.Samples)
	m.Samples = grown
}

// Start begins sampling (taking the first sample immediately).
func (m *Meter) Start() {
	if m.running {
		return
	}
	m.running = true
	m.observe(m.sched.Now(), 1)
	m.ticker = m.sched.Tick(m.sched.Now().Add(m.period), m.period, m.fire)
	m.ticker.SetBatch(m.batch)
}

// TraceTo attaches the meter to a trace recorder: readings feed the given
// counter track in milliamperes, recorded only on change. Passing a nil
// recorder detaches.
func (m *Meter) TraceTo(r *obs.Recorder, track obs.TrackID) {
	m.rec = r
	m.track = track
	m.lastTraced = units.Amps(-1) // force the first sample through
}

func (m *Meter) fire(at sim.Time) { m.observe(at, 1) }

func (m *Meter) batch(from sim.Time, n int) { m.observe(from, int64(n)) }

// observe records n consecutive samples starting at from. All n share one
// probe reading: current only changes when an event fires, and the
// scheduler never extends a ticker batch across an event.
func (m *Meter) observe(from sim.Time, n int64) {
	a := m.probe.Current()
	m.dirty = true
	if m.rec != nil && a != m.lastTraced {
		m.lastTraced = a
		m.rec.Counter(m.track, from, a.Milli())
	}
	if k := len(m.plateaus); k > 0 {
		last := &m.plateaus[k-1]
		if last.val == a && last.from+sim.Time(last.n*int64(m.period)) == from {
			last.n += n
			return
		}
	}
	m.plateaus = append(m.plateaus, plateau{from: from, n: n, val: a})
}

// Stop halts sampling and materializes the per-sample trace.
func (m *Meter) Stop() {
	m.running = false
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
	m.materialize()
}

// materialize expands the recorded plateaus into the public Samples slice,
// exactly as the per-sample stepper would have appended them.
func (m *Meter) materialize() {
	if !m.dirty {
		return
	}
	m.dirty = false
	m.Samples = m.Samples[:0]
	p := sim.Time(m.period)
	for _, pl := range m.plateaus {
		at := pl.from
		for j := int64(0); j < pl.n; j++ {
			m.Samples = append(m.Samples, Sample{At: at, Current: pl.val})
			at += p
		}
	}
}

// Charge integrates the sampled current between t0 and t1 using the
// rectangle rule (each sample holds until the next) — the same numeric
// integration a bench engineer applies to exported multimeter data. With a
// plateau record available the interior of each plateau is integrated in
// closed form (one multiply per plateau instead of one per sample); only
// samples clipped by t0/t1 or holding across a plateau boundary are
// handled individually.
func (m *Meter) Charge(t0, t1 sim.Time) units.Coulombs {
	if len(m.plateaus) > 0 && m.dirty {
		// Stale Samples would disagree with the recorded waveform.
		m.materialize()
	}
	if len(m.plateaus) > 0 {
		return m.chargePlateaus(t0, t1)
	}
	return m.chargeSamples(t0, t1)
}

// chargeSamples is the per-sample rectangle rule over the materialized (or
// literal) trace.
func (m *Meter) chargeSamples(t0, t1 sim.Time) units.Coulombs {
	var total units.Coulombs
	for i, s := range m.Samples {
		if s.At >= t1 {
			break
		}
		end := t1
		if i+1 < len(m.Samples) && m.Samples[i+1].At < t1 {
			end = m.Samples[i+1].At
		}
		start := s.At
		if start < t0 {
			start = t0
		}
		if end > start {
			total += units.Charge(s.Current, end.Sub(start))
		}
	}
	return total
}

// chargePlateaus integrates the plateau record directly. Sample j of a
// plateau holds for one period (interior) or until the next plateau's first
// sample (last), identical to the hold rule in chargeSamples.
func (m *Meter) chargePlateaus(t0, t1 sim.Time) units.Coulombs {
	var total units.Coulombs
	// Index arithmetic runs on raw nanosecond counts: sample j of a plateau
	// sits at from + j*period, a Time again only after the multiply.
	perNs := int64(m.period)
	for i, pl := range m.plateaus {
		if pl.from >= t1 {
			break
		}
		// Hold boundary for the plateau's last sample: the next plateau's
		// first sample, or the end of the integration window.
		lastEnd := t1
		if i+1 < len(m.plateaus) && m.plateaus[i+1].from < t1 {
			lastEnd = m.plateaus[i+1].from
		}
		addSample := func(j int64) {
			at := pl.from + sim.Time(j*perNs)
			if at >= t1 {
				return
			}
			end := at + sim.Time(perNs)
			if j == pl.n-1 {
				end = lastEnd
			}
			if end > t1 {
				end = t1
			}
			start := at
			if start < t0 {
				start = t0
			}
			if end > start {
				total += units.Charge(pl.val, end.Sub(start))
			}
		}
		// j0: the sample whose interval contains t0 (0 when the plateau
		// starts inside the window).
		j0 := int64(0)
		if t0 > pl.from {
			j0 = int64(t0-pl.from) / perNs
			if j0 > pl.n-1 {
				j0 = pl.n - 1
			}
		}
		// Interior samples in [jf0, jf1) are fully inside [t0, t1] and
		// hold exactly one period each: integrate them in one step.
		jf0 := j0
		if pl.from+sim.Time(j0*perNs) < t0 {
			jf0 = j0 + 1
		}
		jf1 := pl.n - 1
		if limit := int64(t1-pl.from) / perNs; limit < jf1 {
			jf1 = limit
		}
		if jf1 > jf0 {
			total += units.Charge(pl.val, time.Duration(jf1-jf0)*m.period)
		}
		// Boundary samples: the t0 straddler and the t1-clipped interior
		// sample (at most one each), then the plateau's last sample.
		if j0 < jf0 && j0 < pl.n-1 {
			addSample(j0)
		}
		if jf1 >= jf0 && jf1 < pl.n-1 {
			addSample(jf1)
		}
		addSample(pl.n - 1)
	}
	return total
}

// Energy integrates energy between t0 and t1 at the rail voltage v.
func (m *Meter) Energy(t0, t1 sim.Time, v units.Volts) units.Joules {
	return m.Charge(t0, t1).Energy(v)
}

// MeanCurrent reports the average current between t0 and t1.
func (m *Meter) MeanCurrent(t0, t1 sim.Time) units.Amps {
	if t1 <= t0 {
		return 0
	}
	return units.MeanCurrent(m.Charge(t0, t1), t1.Sub(t0))
}

// PeakCurrent reports the largest sample between t0 and t1.
func (m *Meter) PeakCurrent(t0, t1 sim.Time) units.Amps {
	m.materialize()
	var peak units.Amps
	for _, s := range m.Samples {
		if s.At >= t0 && s.At < t1 && s.Current > peak {
			peak = s.Current
		}
	}
	return peak
}

// Annotation labels an instant in an exported trace.
type Annotation struct {
	At    sim.Time
	Label string
}

// WriteCSV writes the trace as "time_s,current_mA" rows, preceded by
// comment lines for each annotation — the format the repository's plotting
// scripts (and any spreadsheet) consume to redraw Figures 3a/3b.
func (m *Meter) WriteCSV(w io.Writer, annotations []Annotation) error {
	m.materialize()
	for _, a := range annotations {
		if _, err := fmt.Fprintf(w, "# %s at %.6f s\n", a.Label, a.At.Seconds()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "time_s,current_mA"); err != nil {
		return err
	}
	for _, s := range m.Samples {
		if _, err := fmt.Fprintf(w, "%.6f,%.4f\n", s.At.Seconds(), s.Current.Milli()); err != nil {
			return err
		}
	}
	return nil
}

// Downsample returns every nth sample — handy for plotting 2-second traces
// without 100k points.
func (m *Meter) Downsample(n int) []Sample {
	m.materialize()
	if n <= 1 {
		return m.Samples
	}
	out := make([]Sample, 0, len(m.Samples)/n+1)
	for i := 0; i < len(m.Samples); i += n {
		out = append(out, m.Samples[i])
	}
	return out
}
