package meter

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"wile/internal/obs"
	"wile/internal/sim"
	"wile/internal/units"
)

// currentChange is one scheduled probe step in a random waveform program.
type currentChange struct {
	at  sim.Time
	val units.Amps
}

// makeChangeProgram builds a random piecewise-constant waveform: current
// steps at random instants, some aligned exactly on sample boundaries,
// some repeating the previous value (so the meter's plateau merging and
// the counter feed's change-dedup both get exercised).
func makeChangeProgram(rng *rand.Rand, window sim.Time, period time.Duration) []currentChange {
	levels := []units.Amps{0, 10e-6, 10e-6, 0.027, 0.095, 0.200, 0.310}
	n := 1 + rng.Intn(40)
	changes := make([]currentChange, 0, n)
	for i := 0; i < n; i++ {
		var at sim.Time
		if rng.Intn(3) == 0 {
			// Exactly on a sample instant.
			at = sim.Time(rng.Int63n(int64(window)/int64(period))) * sim.Time(period)
		} else {
			at = sim.Time(rng.Int63n(int64(window)))
		}
		changes = append(changes, currentChange{at: at, val: levels[rng.Intn(len(levels))]})
	}
	return changes
}

// runPlateauMeter drives the program through the real (plateau-batched)
// Meter and returns its materialized samples, its Chrome-trace counter
// feed, and the meter itself for Charge queries.
func runPlateauMeter(t *testing.T, changes []currentChange, window sim.Time, rate int) (*Meter, []Sample, []byte) {
	t.Helper()
	s := sim.New()
	p := &rampProbe{a: 0.5}
	m := New(s, p, rate)
	rec := obs.NewRecorder()
	m.TraceTo(rec, rec.Track("current_mA"))
	for _, c := range changes {
		c := c
		s.DoAt(c.at, func() { p.a = c.val })
	}
	m.Start()
	s.RunUntil(window)
	m.Stop()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return m, m.Samples, buf.Bytes()
}

// runStepperReference replays the identical program through a per-sample
// reference stepper: a self-rearming event chain that appends one sample
// per tick and feeds the counter track with the same on-change dedup the
// meter documents. This is the pre-plateau implementation, inlined as the
// oracle.
func runStepperReference(t *testing.T, changes []currentChange, window sim.Time, rate int) ([]Sample, []byte) {
	t.Helper()
	s := sim.New()
	p := &rampProbe{a: 0.5}
	period := time.Second / time.Duration(rate)
	rec := obs.NewRecorder()
	track := rec.Track("current_mA")
	var samples []Sample
	lastTraced := units.Amps(-1)
	observe := func(at sim.Time) {
		a := p.Current()
		if a != lastTraced {
			lastTraced = a
			rec.Counter(track, at, a.Milli())
		}
		samples = append(samples, Sample{At: at, Current: a})
	}
	for _, c := range changes {
		c := c
		s.DoAt(c.at, func() { p.a = c.val })
	}
	// Meter.Start: immediate first sample, then one event per period.
	observe(s.Now())
	var arm func(at sim.Time)
	arm = func(at sim.Time) {
		s.At(at, func() {
			observe(at)
			arm(at.Add(period))
		})
	}
	arm(s.Now().Add(period))
	s.RunUntil(window)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return samples, buf.Bytes()
}

// TestPlateauMatchesStepper is the equivalence property test pinning the
// plateau-batched meter to the per-sample stepper it replaced: identical
// samples (value and timestamp, sample for sample) and a byte-identical
// counter-track export, across randomized waveforms.
func TestPlateauMatchesStepper(t *testing.T) {
	for trial := int64(0); trial < 30; trial++ {
		rng := rand.New(rand.NewSource(trial*104729 + 13))
		rate := []int{50_000, 10_000, 1_000}[rng.Intn(3)]
		period := time.Second / time.Duration(rate)
		window := sim.Time(1+rng.Int63n(200)) * sim.Millisecond
		changes := makeChangeProgram(rng, window, period)

		_, got, gotTrace := runPlateauMeter(t, changes, window, rate)
		want, wantTrace := runStepperReference(t, changes, window, rate)

		if len(got) != len(want) {
			t.Fatalf("trial %d: plateau meter produced %d samples, stepper %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sample %d diverged: plateau=%+v stepper=%+v", trial, i, got[i], want[i])
			}
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("trial %d: counter-track export diverged:\nplateau: %s\nstepper: %s", trial, gotTrace, wantTrace)
		}
	}
}

// TestChargePlateausMatchesChargeSamples pins the closed-form plateau
// integration to the per-sample rectangle rule over random integration
// windows, including windows clipping plateau interiors and boundaries.
func TestChargePlateausMatchesChargeSamples(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		rng := rand.New(rand.NewSource(trial*7907 + 5))
		rate := 10_000
		period := time.Second / time.Duration(rate)
		window := sim.Time(1+rng.Int63n(100)) * sim.Millisecond
		changes := makeChangeProgram(rng, window, period)

		m, samples, _ := runPlateauMeter(t, changes, window, rate)
		// A meter literal over the same samples has no plateau record, so
		// Charge takes the per-sample path.
		ref := &Meter{Samples: samples}

		for q := 0; q < 50; q++ {
			t0 := sim.Time(rng.Int63n(int64(window)))
			t1 := sim.Time(rng.Int63n(int64(window)))
			if t1 < t0 {
				t0, t1 = t1, t0
			}
			got := float64(m.Charge(t0, t1))
			want := float64(ref.Charge(t0, t1))
			tol := math.Max(math.Abs(want)*1e-12, 1e-18)
			if math.Abs(got-want) > tol {
				t.Fatalf("trial %d: Charge(%v, %v): plateau=%v samples=%v (diff %g)",
					trial, t0, t1, got, want, got-want)
			}
		}
		// Whole-window and out-of-range queries.
		if got, want := float64(m.Charge(0, window)), float64(ref.Charge(0, window)); math.Abs(got-want) > math.Abs(want)*1e-12 {
			t.Fatalf("trial %d: full-window charge diverged: plateau=%v samples=%v", trial, got, want)
		}
		if got := float64(m.Charge(window, window.Add(time.Second))); got != float64(ref.Charge(window, window.Add(time.Second))) {
			t.Fatalf("trial %d: past-end charge diverged", trial)
		}
	}
}

// TestPlateauMergeCompression checks the plateau record actually stays
// compact on a constant waveform — the whole point of batching — rather
// than silently degenerating to one plateau per sample.
func TestPlateauMergeCompression(t *testing.T) {
	s := sim.New()
	p := &rampProbe{a: 0.042}
	m := New(s, p, 50_000)
	m.Start()
	s.RunUntil(sim.Time(2) * sim.Second)
	m.Stop()
	if len(m.Samples) < 100_000 {
		t.Fatalf("materialized %d samples, want >= 100000", len(m.Samples))
	}
	if len(m.plateaus) > 4 {
		t.Fatalf("constant 2 s waveform produced %d plateaus, want a handful", len(m.plateaus))
	}
}
