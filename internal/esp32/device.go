// Package esp32 models the evaluation platform of the paper: an ESP32
// WiFi/BLE system-on-chip powered from a clean 3.3 V rail, observed by a
// series ammeter. The model is a piecewise-constant current waveform driven
// by the protocol simulation: every power-state change, boot segment and
// transmit burst becomes a step in the waveform, and energies are exact
// integrals of that waveform — the same methodology as the paper's
// Keysight 34465A measurements (§5.1).
//
// Current calibration. The plateau values come from the ESP32 datasheet
// and the paper's own text/figures:
//
//   - deep sleep 2.5 µA ("the current draw in deep sleep mode is as low as
//     2.5 µA", §5.1)
//   - light sleep 0.8 mA (§5.1)
//   - automatic light sleep with WiFi association kept: about 5 mA (§5.1);
//     with the paper's aggressive listen-interval-3 setting Table 1 reports
//     4.5 mA, which is what WiFiPSIdle uses
//   - MCU active at 80 MHz: ~30 mA (datasheet, DFS floor ~20 mA)
//   - radio listening: ~100 mA (datasheet RX 95–100 mA)
//   - radio transmitting: ~180 mA average over a burst at low TX power
//     (datasheet TX 120–240 mA depending on power; Figure 3 spikes)
package esp32

import (
	"fmt"
	"time"

	"wile/internal/obs"
	"wile/internal/sim"
	"wile/internal/units"
)

// Rail voltage: the paper powers the module from a bench supply at 3.3 V
// with the regulator removed.
const Voltage = units.Volts(3.3)

// State is a coarse power state with a fixed current draw.
type State int

// Power states.
const (
	// StateDeepSleep: CPU and RAM off, RTC timer running.
	StateDeepSleep State = iota
	// StateLightSleep: RAM retained, fast wake.
	StateLightSleep
	// StateWiFiPSIdle: associated, automatic light sleep, waking for every
	// third beacon (the WiFi-PS idle mode of Table 1).
	StateWiFiPSIdle
	// StateCPUActive: MCU running at 80 MHz, radio off.
	StateCPUActive
	// StateNetworkWait: DFS + automatic light sleep between network-layer
	// messages — the 20–30 mA plateau of Figure 3a's DHCP/ARP phase.
	StateNetworkWait
	// StateRadioListen: radio on and receiving/carrier-sensing.
	StateRadioListen
)

// StateCurrent reports the current draw of s.
func StateCurrent(s State) units.Amps {
	switch s {
	case StateDeepSleep:
		return units.MicroAmps(2.5)
	case StateLightSleep:
		return units.MilliAmps(0.8)
	case StateWiFiPSIdle:
		return units.MilliAmps(4.5)
	case StateCPUActive:
		return units.MilliAmps(30)
	case StateNetworkWait:
		return units.MilliAmps(20)
	case StateRadioListen:
		return units.MilliAmps(100)
	}
	panic(fmt.Sprintf("esp32: unknown state %d", s))
}

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateDeepSleep:
		return "deep-sleep"
	case StateLightSleep:
		return "light-sleep"
	case StateWiFiPSIdle:
		return "wifi-ps-idle"
	case StateCPUActive:
		return "cpu-active"
	case StateNetworkWait:
		return "network-wait"
	case StateRadioListen:
		return "radio-listen"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// TxBurstCurrent is the average current during a transmit burst.
const TxBurstCurrent = units.Amps(180e-3)

// TxRampUp is the radio settle/PA ramp time charged at TX current before
// each burst. Together with the PHY airtime this reproduces the measured
// per-transmission radio-on window behind Table 1's 84 µJ Wi-LE figure.
const TxRampUp = 95 * time.Microsecond

// Step is one point of the piecewise-constant current waveform: the
// current that flows from At onward.
type Step struct {
	At      sim.Time
	Current units.Amps
}

// Mark is a labeled instant, used to annotate figure phases
// ("MC/WiFi init", "Probe/Auth./Associate", …).
type Mark struct {
	At    sim.Time
	Label string
}

// Device is one simulated ESP32 module.
type Device struct {
	sched *sim.Scheduler

	state   State
	lastT   sim.Time
	lastA   units.Amps
	txUntil sim.Time

	charge units.Coulombs
	steps  []Step
	marks  []Mark

	// rec/track carry the optional trace recorder (TraceTo): power states
	// become nested slices, phase marks instants, TX bursts spans.
	rec   *obs.Recorder
	track obs.TrackID
}

// New builds a device in deep sleep at the scheduler's current time.
func New(sched *sim.Scheduler) *Device {
	d := &Device{sched: sched, state: StateDeepSleep, lastT: sched.Now()}
	d.lastA = StateCurrent(StateDeepSleep)
	d.steps = append(d.steps, Step{At: sched.Now(), Current: d.lastA})
	return d
}

// touch integrates charge up to now before a waveform change.
func (d *Device) touch() {
	now := d.sched.Now()
	if now > d.lastT {
		d.charge += units.Charge(d.lastA, now.Sub(d.lastT))
		d.lastT = now
	}
}

// setCurrent changes the instantaneous current, logging a waveform step.
func (d *Device) setCurrent(a units.Amps) {
	d.touch()
	if a == d.lastA {
		return
	}
	d.lastA = a
	d.steps = append(d.steps, Step{At: d.sched.Now(), Current: a})
}

// effectiveCurrent reports the current the state machine implies now.
func (d *Device) effectiveCurrent() units.Amps {
	if d.sched.Now() < d.txUntil {
		return TxBurstCurrent
	}
	return StateCurrent(d.state)
}

// TraceTo attaches the device to a trace recorder: the current power state
// opens as a slice on the given track, and every later transition closes
// one slice and opens the next. Passing a nil recorder detaches.
func (d *Device) TraceTo(r *obs.Recorder, track obs.TrackID) {
	d.rec = r
	d.track = track
	if r != nil {
		r.Begin(track, d.sched.Now(), d.state.String())
	}
}

// SetState moves the device to s immediately.
func (d *Device) SetState(s State) {
	if d.rec != nil && s != d.state {
		now := d.sched.Now()
		d.rec.End(d.track, now)
		d.rec.Begin(d.track, now, s.String())
	}
	d.state = s
	d.setCurrent(d.effectiveCurrent())
}

// GetState reports the current coarse power state.
func (d *Device) GetState() State { return d.state }

// Current reports the instantaneous current draw — what the series
// multimeter reads at this exact virtual instant.
func (d *Device) Current() units.Amps {
	return d.lastA
}

// RadioTx implements mac.RadioListener: the amplifier turns on for
// TxRampUp+airtime, overriding the state current.
func (d *Device) RadioTx(airtime time.Duration) {
	until := d.sched.Now().Add(TxRampUp + airtime)
	if until > d.txUntil {
		d.txUntil = until
	}
	if d.rec != nil {
		d.rec.Span(d.track, d.sched.Now(), until, "tx-burst")
	}
	d.setCurrent(TxBurstCurrent)
	d.sched.DoAt(until, func() {
		if d.sched.Now() >= d.txUntil {
			d.setCurrent(d.effectiveCurrent())
		}
	})
}

// MarkPhase records a labeled instant for figure annotation.
func (d *Device) MarkPhase(label string) {
	d.marks = append(d.marks, Mark{At: d.sched.Now(), Label: label})
	if d.rec != nil {
		d.rec.Instant(d.track, d.sched.Now(), label)
	}
}

// Marks returns the recorded phase annotations.
func (d *Device) Marks() []Mark { return d.marks }

// Steps returns the waveform recorded so far (current from each step's
// time until the next step).
func (d *Device) Steps() []Step {
	d.touch()
	return d.steps
}

// Charge reports the total charge drawn since construction, integrated
// exactly over the waveform.
func (d *Device) Charge() units.Coulombs {
	d.touch()
	return d.charge
}

// Energy reports the total energy drawn since construction.
func (d *Device) Energy() units.Joules { return d.Charge().Energy(Voltage) }

// Segment is one piece of a scripted boot/init profile.
type Segment struct {
	D       time.Duration
	Current units.Amps
	Label   string
}

// PlaySegments runs a scripted current profile (boot sequences, RF
// calibration, …), then restores the device's state current and calls
// done. Labels become phase marks.
func (d *Device) PlaySegments(segs []Segment, done func()) {
	var run func(i int)
	run = func(i int) {
		if i == len(segs) {
			d.setCurrent(d.effectiveCurrent())
			if done != nil {
				done()
			}
			return
		}
		s := segs[i]
		if s.Label != "" {
			d.MarkPhase(s.Label)
		}
		d.setCurrent(s.Current)
		d.sched.DoAfter(s.D, func() { run(i + 1) })
	}
	run(0)
}

// Boot profiles, calibrated against Figure 3. Durations are the paper's
// phase boundaries; currents are the plateau levels visible in the traces.

// BootWiFi is the deep-sleep wake path of the full WiFi client
// (Figure 3a, 0.2 s → 0.85 s): ROM boot, flash image load, RF calibration,
// WiFi stack bring-up in station mode.
func BootWiFi() []Segment {
	segs := []Segment{{D: 30 * time.Millisecond, Current: units.MilliAmps(40), Label: "MC/WiFi init"}}
	segs = append(segs, flashLoad(170*time.Millisecond)...)
	segs = append(segs,
		Segment{D: 120 * time.Millisecond, Current: units.MilliAmps(70)},
		Segment{D: 330 * time.Millisecond, Current: units.MilliAmps(35)},
	)
	return segs
}

// flashLoad models the image-load phase: alternating flash-read bursts and
// decompress/copy stretches. The sub-segments average exactly 50 mA so the
// calibrated phase charge is unchanged; only the waveform texture (visible
// in Figure 3's traces) differs from a flat plateau.
func flashLoad(total time.Duration) []Segment {
	const bursts = 8
	slice := total / (2 * bursts)
	out := make([]Segment, 0, 2*bursts)
	for i := 0; i < bursts; i++ {
		out = append(out,
			Segment{D: slice, Current: units.MilliAmps(62)}, // SPI flash read burst
			Segment{D: slice, Current: units.MilliAmps(38)}, // CPU copy/decompress
		)
	}
	return out
}

// BootWiLE is the deep-sleep wake path of the Wi-LE transmitter
// (Figure 3b): the same ROM/flash phases but no station-mode stack — "the
// chip does not need to prepare to connect to the AP as a client; it can
// simply enable the WiFi radio to inject a packet" (§5.2).
func BootWiLE() []Segment {
	segs := []Segment{{D: 30 * time.Millisecond, Current: units.MilliAmps(40), Label: "MC/WiFi init"}}
	segs = append(segs, flashLoad(170*time.Millisecond)...)
	segs = append(segs,
		Segment{D: 100 * time.Millisecond, Current: units.MilliAmps(70)},
		Segment{D: 50 * time.Millisecond, Current: units.MilliAmps(35)},
	)
	return segs
}

// BootDuration sums a profile's segment durations.
func BootDuration(segs []Segment) time.Duration {
	var total time.Duration
	for _, s := range segs {
		total += s.D
	}
	return total
}
