package esp32

import (
	"math"
	"testing"
	"time"

	"wile/internal/sim"
	"wile/internal/units"
)

func TestStateCurrentsMatchPaper(t *testing.T) {
	// Table 1 idle currents and §5.1 figures.
	cases := map[State]units.Amps{
		StateDeepSleep:   units.Amps(2.5e-6),
		StateLightSleep:  units.Amps(0.8e-3),
		StateWiFiPSIdle:  units.Amps(4.5e-3),
		StateCPUActive:   units.Amps(30e-3),
		StateNetworkWait: units.Amps(20e-3),
		StateRadioListen: units.Amps(100e-3),
	}
	for s, want := range cases {
		if got := StateCurrent(s); got != want {
			t.Errorf("%v current = %v, want %v", s, got, want)
		}
	}
}

func TestDeviceStartsInDeepSleep(t *testing.T) {
	s := sim.New()
	d := New(s)
	if d.GetState() != StateDeepSleep {
		t.Fatalf("initial state %v", d.GetState())
	}
	if d.Current() != units.Amps(2.5e-6) {
		t.Fatalf("initial current %v", d.Current())
	}
}

func TestChargeIntegralExact(t *testing.T) {
	s := sim.New()
	d := New(s)
	// 1 s deep sleep + 1 s CPU active + 1 s deep sleep.
	s.After(time.Second, func() { d.SetState(StateCPUActive) })
	s.After(2*time.Second, func() { d.SetState(StateDeepSleep) })
	s.RunUntil(3 * sim.Second)
	want := 2.5e-6*2 + 30e-3*1
	if got := float64(d.Charge()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("charge = %v C, want %v", got, want)
	}
	if got := float64(d.Energy()); math.Abs(got-want*float64(Voltage)) > 1e-12 {
		t.Fatalf("energy = %v J", got)
	}
}

func TestTxBurstOverridesState(t *testing.T) {
	s := sim.New()
	d := New(s)
	d.SetState(StateRadioListen)
	d.RadioTx(60 * time.Microsecond)
	if d.Current() != TxBurstCurrent {
		t.Fatalf("current during burst = %v", d.Current())
	}
	s.Run()
	if d.Current() != StateCurrent(StateRadioListen) {
		t.Fatalf("current after burst = %v", d.Current())
	}
	// Energy of the burst window is (ramp+airtime) at TX current.
	want := float64(units.Charge(TxBurstCurrent, TxRampUp+60*time.Microsecond))
	got := float64(d.Charge()) // burst started at t=0
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("burst charge = %v, want ≈%v", got, want)
	}
}

func TestOverlappingTxBurstsExtend(t *testing.T) {
	s := sim.New()
	d := New(s)
	d.SetState(StateRadioListen)
	d.RadioTx(100 * time.Microsecond)
	s.After(50*time.Microsecond, func() { d.RadioTx(100 * time.Microsecond) })
	s.Run()
	if d.Current() != StateCurrent(StateRadioListen) {
		t.Fatalf("current after overlapping bursts = %v", d.Current())
	}
	// Union of the two windows: 50µs offset + ramp+100µs = ramp+150µs total.
	want := float64(units.Charge(TxBurstCurrent, TxRampUp+150*time.Microsecond))
	if got := float64(d.Charge()); math.Abs(got-want) > want*0.01 {
		t.Fatalf("charge = %v, want ≈%v", got, want)
	}
}

func TestStateChangeDuringBurstDefersToBurst(t *testing.T) {
	s := sim.New()
	d := New(s)
	d.SetState(StateRadioListen)
	d.RadioTx(200 * time.Microsecond)
	s.After(50*time.Microsecond, func() { d.SetState(StateDeepSleep) })
	s.RunUntil(sim.Time(50) * sim.Microsecond)
	if d.Current() != TxBurstCurrent {
		t.Fatal("state change mid-burst dropped the TX current")
	}
	s.Run()
	if d.Current() != StateCurrent(StateDeepSleep) {
		t.Fatalf("post-burst current %v, want deep sleep", d.Current())
	}
}

func TestStepsRecordWaveform(t *testing.T) {
	s := sim.New()
	d := New(s)
	s.After(time.Second, func() { d.SetState(StateCPUActive) })
	s.After(2*time.Second, func() { d.SetState(StateDeepSleep) })
	s.RunUntil(3 * sim.Second)
	steps := d.Steps()
	if len(steps) != 3 {
		t.Fatalf("%d steps, want 3", len(steps))
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].At <= steps[i-1].At {
			t.Fatal("steps not strictly ordered")
		}
		if steps[i].Current == steps[i-1].Current {
			t.Fatal("redundant step recorded")
		}
	}
}

func TestPlaySegments(t *testing.T) {
	s := sim.New()
	d := New(s)
	done := false
	d.PlaySegments(BootWiFi(), func() { done = true })
	s.Run()
	if !done {
		t.Fatal("done callback never ran")
	}
	if s.Now() != sim.FromDuration(BootDuration(BootWiFi())) {
		t.Fatalf("boot took %v, want %v", s.Now(), BootDuration(BootWiFi()))
	}
	// After the profile the device returns to its state current.
	if d.Current() != StateCurrent(StateDeepSleep) {
		t.Fatalf("post-profile current %v", d.Current())
	}
	if len(d.Marks()) == 0 || d.Marks()[0].Label != "MC/WiFi init" {
		t.Fatalf("marks = %+v", d.Marks())
	}
}

func TestBootProfilesMatchFigure3Durations(t *testing.T) {
	// Figure 3a: MCU/WiFi init runs 0.2 s → 0.85 s ⇒ 650 ms.
	if got := BootDuration(BootWiFi()); got != 650*time.Millisecond {
		t.Errorf("WiFi boot = %v, want 650ms", got)
	}
	// Figure 3b: Wi-LE init is visibly shorter (§5.2 "this step is
	// shorter when compared with the WiFi case").
	if BootDuration(BootWiLE()) >= BootDuration(BootWiFi()) {
		t.Error("Wi-LE boot not shorter than WiFi boot")
	}
}

func TestMarkPhase(t *testing.T) {
	s := sim.New()
	d := New(s)
	s.After(time.Second, func() { d.MarkPhase("Tx") })
	s.Run()
	marks := d.Marks()
	if len(marks) != 1 || marks[0].Label != "Tx" || marks[0].At != sim.Second {
		t.Fatalf("marks = %+v", marks)
	}
}

func TestStateStringsTotal(t *testing.T) {
	for _, s := range []State{StateDeepSleep, StateLightSleep, StateWiFiPSIdle,
		StateCPUActive, StateNetworkWait, StateRadioListen} {
		if s.String() == "" {
			t.Errorf("state %d has empty name", s)
		}
	}
}

func TestUnknownStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown state did not panic")
		}
	}()
	StateCurrent(State(99))
}
