package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"wile/internal/obs"
)

// renderFig3bObs runs the traced Figure-3b experiment and serializes both
// observability views — the Chrome trace and the metrics snapshot — into
// one byte stream.
func renderFig3bObs(t *testing.T) []byte {
	t.Helper()
	rec := obs.NewRecorder()
	reg := obs.NewRegistry()
	if _, err := RunFig3bObs(&Obs{Rec: rec, Reg: reg}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFig3bTraceGolden pins the traced Figure-3b run byte-for-byte. The
// golden file is the acceptance artifact: a valid Chrome trace-event JSON
// document (open it at https://ui.perfetto.dev) followed by the metrics
// snapshot. Regenerate with WILE_UPDATE_GOLDEN=1 after intentional changes.
func TestFig3bTraceGolden(t *testing.T) {
	got := renderFig3bObs(t)
	path := filepath.Join("testdata", "fig3b_trace.golden")
	if os.Getenv("WILE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with WILE_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("traced fig3b output diverged from golden (%d vs %d bytes); "+
			"rerun with WILE_UPDATE_GOLDEN=1 if the change is intentional",
			len(got), len(want))
	}
}

// TestFig3bTraceIsValidChromeJSON verifies the export parses as the Chrome
// trace-event format Perfetto consumes: a traceEvents array whose entries
// all carry a phase code, with our process metadata up front.
func TestFig3bTraceIsValidChromeJSON(t *testing.T) {
	rec := obs.NewRecorder()
	if _, err := RunFig3bObs(&Obs{Rec: rec}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 20 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, ok := e["ph"].(string)
		if !ok {
			t.Fatalf("event missing ph: %v", e)
		}
		phases[ph]++
	}
	// The run must exercise every event kind: metadata, power-state slices
	// (B/E), MAC spans (X), instants and the meter counter.
	for _, ph := range []string{"M", "B", "E", "X", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("trace has no %q events (phases: %v)", ph, phases)
		}
	}
}

// TestFig3bTraceDeterministicAcrossProcs is the tentpole's determinism
// gate: the traced run exports byte-identical output across repeated runs
// and across GOMAXPROCS settings, because every event is keyed on sim.Time
// alone.
func TestFig3bTraceDeterministicAcrossProcs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var reference []byte
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for run := 0; run < 2; run++ {
			got := renderFig3bObs(t)
			if reference == nil {
				reference = got
				continue
			}
			if !bytes.Equal(got, reference) {
				t.Fatalf("GOMAXPROCS=%d run=%d: trace differs from reference (%d vs %d bytes)",
					procs, run, len(got), len(reference))
			}
		}
	}
}

// TestFig3bStreamedTraceByteIdentical pins the streaming tentpole at the
// experiment level: the traced Figure-3b run exported through a spill-backed
// streaming recorder is byte-identical to the buffered export, across
// GOMAXPROCS settings.
func TestFig3bStreamedTraceByteIdentical(t *testing.T) {
	render := func(rec *obs.Recorder) []byte {
		t.Helper()
		if _, err := RunFig3bObs(&Obs{Rec: rec, Sched: true}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var reference []byte
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		buffered := render(obs.NewRecorder())
		spill, err := obs.NewSpillSink(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		streamed := render(obs.NewStreamRecorder(spill))
		if err := spill.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buffered, streamed) {
			t.Fatalf("GOMAXPROCS=%d: streamed export differs from buffered (%d vs %d bytes)",
				procs, len(streamed), len(buffered))
		}
		if reference == nil {
			reference = buffered
		} else if !bytes.Equal(buffered, reference) {
			t.Fatalf("GOMAXPROCS=%d: export not deterministic across proc counts", procs)
		}
	}
}

// TestMetricsSnapshotSubsumesMACStats asserts the registry carries every
// counter the ad-hoc mac.Stats struct used to be the only home of.
func TestMetricsSnapshotSubsumesMACStats(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := RunFig3bObs(&Obs{Reg: reg}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, name := range []string{
		"mac.tx_frames", "mac.tx_acks", "mac.rx_frames", "mac.rx_fcs_errors",
		"mac.rx_duplicates", "mac.retries", "mac.drops",
	} {
		if _, ok := doc.Counters[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	// The injected beacon flew and the scanner heard it.
	if doc.Counters["mac.tx_frames"] == 0 {
		t.Error("mac.tx_frames is zero after a transmission")
	}
	if doc.Counters["mac.rx_frames"] == 0 {
		t.Error("mac.rx_frames is zero after a reception")
	}
}

// TestTable1FeedsEnergyHistogram verifies the per-experiment energy
// histogram fills when a registry is installed.
func TestTable1FeedsEnergyHistogram(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four Table 1 scenarios")
	}
	reg := obs.NewRegistry()
	defer SetMetrics(SetMetrics(reg))
	if _, err := RunTable1(); err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("experiment.energy_per_packet_uj", nil)
	if h.Count() != 4 {
		t.Fatalf("energy histogram has %d observations, want 4", h.Count())
	}
	// Engine metrics were rewired onto the pool by SetMetrics.
	if reg.Counter("engine.sweeps").Value() == 0 {
		t.Error("engine.sweeps not incremented by the Table 1 sweep")
	}
}
