package experiment

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"wile/internal/engine"
)

// renderSweeps runs every engine-backed sweep and serializes the results
// into one byte stream. Any scheduling leak — a shared PRNG, a
// completion-order merge, a point reading another point's world — shows
// up as a byte difference between runs.
func renderSweeps(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	table, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	fig4 := RunFig4(table, nil)
	if err := fig4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "crossover %v\n", fig4.CrossoverDCPS)
	bitrate, err := RunBitrateAblation()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := RunPayloadAblation([]int{16, 120, 300})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "%+v\n%+v\n", bitrate, payload)
	fmt.Fprintf(&buf, "%+v\n", RunListenIntervalAblation())
	fmt.Fprintf(&buf, "%+v\n", RunJitterStudy([]float64{0, 40}, 50))
	fmt.Fprintf(&buf, "%+v\n", RunHopperStudy([]int{1, 2}))
	fmt.Fprintf(&buf, "%+v\n", RunInterferenceStudy([]float64{0, 0.5}))
	fmt.Fprintf(&buf, "%+v\n", RunBatteryProjection(table, time.Minute))
	return buf.Bytes()
}

// TestSweepsByteIdenticalAcrossPoolsAndProcs is the tentpole's acceptance
// gate: for a fixed seed the engine-backed sweeps must produce
// byte-identical output on the serial reference pool and on a parallel
// pool, at GOMAXPROCS 1 and 4. Completion order genuinely varies between
// these runs; the merged bytes must not.
func TestSweepsByteIdenticalAcrossPoolsAndProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep four times")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var reference []byte
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, pc := range []struct {
			name string
			pool *engine.Pool
		}{
			{"serial", engine.Serial()},
			{"parallel4", engine.New(4)},
		} {
			prev := SetPool(pc.pool)
			got := renderSweeps(t)
			SetPool(prev)
			if reference == nil {
				reference = got
				continue
			}
			if !bytes.Equal(got, reference) {
				t.Fatalf("GOMAXPROCS=%d pool=%s: sweep output differs from serial reference (%d vs %d bytes)",
					procs, pc.name, len(got), len(reference))
			}
		}
	}
}

// TestSetPoolSwapsAndRestores pins the SetPool contract the benchmarks
// and the test above rely on.
func TestSetPoolSwapsAndRestores(t *testing.T) {
	serial := engine.Serial()
	prev := SetPool(serial)
	if Pool() != serial {
		t.Fatal("SetPool did not install the new pool")
	}
	if got := SetPool(prev); got != serial {
		t.Fatal("SetPool did not return the displaced pool")
	}
	if Pool() != prev {
		t.Fatal("pool not restored")
	}
}
