package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"wile/internal/core"
	"wile/internal/esp32"
	"wile/internal/meter"
	"wile/internal/obs"
	"wile/internal/sim"
	"wile/internal/units"
)

// Obs bundles the optional observability sinks a run can be wired to: a
// trace recorder for the timeline, a registry for counters, a frame
// provenance ledger and a sim-time metrics sampler. Any field may be nil; a
// nil *Obs disables observability entirely.
type Obs struct {
	Rec *obs.Recorder
	Reg *obs.Registry
	// Prov, when non-nil, is wired into the run's medium so every frame
	// resolves to a drop-taxonomy outcome (wile-trace -drops reads it).
	Prov *obs.Provenance
	// Series, when non-nil, samples Reg (or the run's registry) on its
	// sim-time cadence for the whole window.
	Series *obs.TimeSeries
	// Sched additionally records every scheduler dispatch as an instant on
	// a "sched" track — the firehose view (one event per timer tick and
	// meter sample), for debugging sessions rather than figure runs.
	Sched bool
}

// rec/reg/prov/series unwrap an optional Obs.
func (o *Obs) rec() *obs.Recorder {
	if o == nil {
		return nil
	}
	return o.Rec
}

func (o *Obs) reg() *obs.Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

func (o *Obs) prov() *obs.Provenance {
	if o == nil {
		return nil
	}
	return o.Prov
}

func (o *Obs) series() *obs.TimeSeries {
	if o == nil {
		return nil
	}
	return o.Series
}

// wire attaches the Obs bundle's medium-level sinks to a freshly built
// world: medium counters into the registry, the provenance ledger into the
// medium (with registry mirror and drop instants when those sinks are also
// present), and the time-series sampler onto the kernel. Per-component
// wiring (TraceTo / Observe) stays at the call sites, which know the cast.
func (o *Obs) wire(w *world) {
	if reg := o.reg(); reg != nil {
		w.med.Observe(reg)
	}
	if p := o.prov(); p != nil {
		w.med.ObserveProvenance(p)
		if reg := o.reg(); reg != nil {
			p.Observe(reg)
		}
		if r := o.rec(); r != nil {
			p.TraceTo(r)
		}
	}
	if ts := o.series(); ts != nil {
		ts.Run(w.sched)
	}
}

// Trace is one Figure-3 current waveform: the 50 kSa/s multimeter record
// plus the phase annotations the paper overlays.
type Trace struct {
	// Samples is the raw multimeter record.
	Samples []meter.Sample
	// Marks labels the phase boundaries.
	Marks []esp32.Mark
	// Energy integrates the trace (meter view).
	Energy units.Joules
	// DeviceEnergy integrates the exact device waveform (ground truth).
	DeviceEnergy units.Joules
	// Window is the observation length.
	Window time.Duration
}

// Release returns the trace's sample buffer to the shared meter pool so a
// following figure run can reuse it instead of allocating another
// 100k-sample slice. The trace (and any slice of its Samples) must not be
// used afterwards.
func (t *Trace) Release() {
	meter.RecycleSamples(t.Samples)
	t.Samples = nil
}

// preSleep is the deep-sleep lead-in both Figure 3 traces start with.
const preSleep = 200 * time.Millisecond

// figureWindow is the 2-second x-axis of Figure 3.
const figureWindow = 2 * time.Second

// RunFig3a records the WiFi-DC transmission waveform of Figure 3a:
// deep sleep → MC/WiFi init → probe/auth/assoc (+ 4-way) → DHCP/ARP →
// data TX → deep sleep, sampled at 50 kSa/s.
func RunFig3a() (*Trace, error) { return RunFig3aObs(nil) }

// RunFig3aObs is RunFig3a with observability attached: device power states,
// MAC activity and the meter waveform land in o's recorder, MAC counters in
// its registry.
func RunFig3aObs(o *Obs) (*Trace, error) {
	w := newWorld()
	o.wire(w)
	accessPoint := w.newAP()
	station := w.newStation()
	dev := station.Dev
	m := meter.New(w.sched, dev, meter.DefaultSampleRate)
	if r := o.rec(); r != nil {
		station.TraceTo(r)
		accessPoint.TraceTo(r)
		m.TraceTo(r, r.Track("current_mA"))
		if o.Sched {
			obs.ObserveScheduler(r, w.sched, r.Track("sched"))
		}
	}
	if reg := o.reg(); reg != nil {
		station.Observe(reg)
		accessPoint.Observe(reg)
	}
	m.Reserve(figureWindow)
	m.Start()

	var joinErr error
	var txOK *bool
	w.sched.DoAfter(preSleep, func() {
		dev.SetState(esp32.StateCPUActive)
		dev.PlaySegments(esp32.BootWiFi(), func() {
			station.Join(func(err error) {
				if err != nil {
					joinErr = err
					return
				}
				if err := station.SendReading([]byte("temp=17.0"), 5683, func(ok bool) {
					txOK = &ok
					station.Sleep()
				}); err != nil {
					joinErr = err
				}
			})
		})
	})
	w.sched.RunUntil(sim.FromDuration(figureWindow))
	m.Stop()
	if joinErr != nil {
		return nil, fmt.Errorf("experiment: fig3a join: %w", joinErr)
	}
	if txOK == nil || !*txOK {
		return nil, fmt.Errorf("experiment: fig3a transmission incomplete within the window")
	}
	return &Trace{
		Samples:      m.Samples,
		Marks:        dev.Marks(),
		Energy:       m.Energy(0, sim.FromDuration(figureWindow), esp32.Voltage),
		DeviceEnergy: dev.Energy(),
		Window:       figureWindow,
	}, nil
}

// RunFig3b records the Wi-LE waveform of Figure 3b: deep sleep → shorter
// MC/WiFi init → one injected beacon → deep sleep.
func RunFig3b() (*Trace, error) { return RunFig3bObs(nil) }

// RunFig3bObs is RunFig3b with observability attached: sensor power states,
// injection instants, MAC spans and the meter waveform land in o's
// recorder, MAC counters in its registry.
func RunFig3bObs(o *Obs) (*Trace, error) {
	w := newWorld()
	o.wire(w)
	sensor := core.NewSensor(w.sched, w.med, core.SensorConfig{DeviceID: 0x1001, Position: devicePos})
	scanner := core.NewScanner(w.sched, w.med, core.ScannerConfig{Position: apPos})
	m := meter.New(w.sched, sensor.Dev, meter.DefaultSampleRate)
	if r := o.rec(); r != nil {
		sensor.TraceTo(r)
		scanner.TraceTo(r)
		m.TraceTo(r, r.Track("current_mA"))
		if o.Sched {
			obs.ObserveScheduler(r, w.sched, r.Track("sched"))
		}
	}
	if reg := o.reg(); reg != nil {
		sensor.Observe(reg)
		scanner.Observe(reg)
	}
	scanner.Start()
	received := false
	scanner.OnMessage = func(*core.Message, core.Meta) { received = true }

	m.Reserve(figureWindow)
	m.Start()
	var txOK *bool
	w.sched.DoAfter(preSleep, func() {
		sensor.Dev.MarkPhase("Wake")
		sensor.TransmitOnce([]core.Reading{core.Temperature(17.0)}, func(ok bool) { txOK = &ok })
	})
	w.sched.RunUntil(sim.FromDuration(figureWindow))
	m.Stop()
	if txOK == nil || !*txOK {
		return nil, fmt.Errorf("experiment: fig3b transmission incomplete")
	}
	if !received {
		return nil, fmt.Errorf("experiment: fig3b beacon not received")
	}
	return &Trace{
		Samples:      m.Samples,
		Marks:        sensor.Dev.Marks(),
		Energy:       m.Energy(0, sim.FromDuration(figureWindow), esp32.Voltage),
		DeviceEnergy: sensor.Dev.Energy(),
		Window:       figureWindow,
	}, nil
}

// WriteCSV exports the trace in the Figure-3 plotting format.
func (t *Trace) WriteCSV(w io.Writer) error {
	m := &meter.Meter{Samples: t.Samples}
	anns := make([]meter.Annotation, 0, len(t.Marks))
	for _, mk := range t.Marks {
		anns = append(anns, meter.Annotation{At: mk.At, Label: mk.Label})
	}
	return m.WriteCSV(w, anns)
}

// PhaseBounds reports the start of the named phase and the start of the
// next phase (or the window end).
func (t *Trace) PhaseBounds(label string) (start, end sim.Time, ok bool) {
	for i, mk := range t.Marks {
		if mk.Label != label {
			continue
		}
		end := sim.FromDuration(t.Window)
		if i+1 < len(t.Marks) {
			end = t.Marks[i+1].At
		}
		return mk.At, end, true
	}
	return 0, 0, false
}

// RenderASCII draws the waveform as a terminal plot (log-free, mA on the
// y-axis), the closest a CLI gets to Figure 3.
func (t *Trace) RenderASCII(w io.Writer, width, height int) {
	if width <= 0 {
		width = 78
	}
	if height <= 0 {
		height = 16
	}
	// Bucket samples into columns, keeping each column's max (spikes
	// matter more than averages in this figure).
	cols := make([]units.Amps, width)
	maxA := units.Amps(0)
	for _, s := range t.Samples {
		c := int(float64(s.At) / float64(sim.FromDuration(t.Window)) * float64(width))
		if c >= width {
			c = width - 1
		}
		if s.Current > cols[c] {
			cols[c] = s.Current
		}
		if s.Current > maxA {
			maxA = s.Current
		}
	}
	if maxA == 0 {
		maxA = units.Amps(1)
	}
	fmt.Fprintf(w, "current draw (peak %.0f mA), %v window\n", maxA.Milli(), t.Window)
	for row := height; row >= 1; row-- {
		threshold := units.Scale(maxA, float64(row)/float64(height))
		line := make([]byte, width)
		for c := range cols {
			if cols[c] >= threshold {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		label := "      "
		if row == height {
			label = fmt.Sprintf("%4.0fmA", maxA.Milli())
		} else if row == 1 {
			label = "   0mA"
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(line))
	}
	// Phase ruler.
	ruler := []byte(strings.Repeat(" ", width))
	for _, mk := range t.Marks {
		c := int(float64(mk.At) / float64(sim.FromDuration(t.Window)) * float64(width))
		if c >= 0 && c < width {
			ruler[c] = '^'
		}
	}
	fmt.Fprintf(w, "       %s\n", string(ruler))
	for _, mk := range t.Marks {
		fmt.Fprintf(w, "       ^ %v %s\n", mk.At, mk.Label)
	}
}
