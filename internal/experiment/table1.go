package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"wile/internal/energy"
	"wile/internal/engine"
	"wile/internal/obs"
	"wile/internal/units"
)

// Table1Row is one technology's measured column of Table 1.
type Table1Row struct {
	Name string
	// EnergyPerPacket is the measured per-message energy.
	EnergyPerPacket units.Joules
	// IdleCurrent is the measured between-messages current.
	IdleCurrent units.Amps
	// PaperEnergy / PaperIdle are the published values for comparison.
	PaperEnergy units.Joules
	PaperIdle   units.Amps
	// Episode carries the full measurement for Figure 4.
	Episode Episode
}

// EnergyError reports the relative deviation from the paper's value.
func (r Table1Row) EnergyError() float64 {
	return units.Ratio(r.EnergyPerPacket-r.PaperEnergy, r.PaperEnergy)
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
	// WiLEFullCycle is the as-prototyped Wi-LE wake-cycle energy
	// (§5.4 notes the prototype's init dominates and an ASIC would
	// remove it; Table 1's Wi-LE row counts the TX window only).
	WiLEFullCycle units.Joules
}

// RunTable1 measures all four scenarios, one engine point each. Every
// measurement builds its own sim world, so the rows are independent and
// shard cleanly; the merged result is row-for-row identical to the old
// serial loop.
func RunTable1() (*Table1Result, error) {
	type measurement struct {
		row Table1Row
		// fullCycle is nonzero only for the Wi-LE point.
		fullCycle units.Joules
	}
	points := []func() (measurement, error){
		func() (measurement, error) {
			ep, fullCycle, err := MeasureWiLE()
			if err != nil {
				return measurement{}, err
			}
			return measurement{Table1Row{Name: "Wi-LE", EnergyPerPacket: ep.Energy,
				IdleCurrent: ep.IdleCurrent, PaperEnergy: units.MicroJoules(84), PaperIdle: units.MicroAmps(2.5),
				Episode: ep}, fullCycle}, nil
		},
		func() (measurement, error) {
			ep, err := MeasureBLE()
			if err != nil {
				return measurement{}, err
			}
			return measurement{row: Table1Row{Name: "BLE", EnergyPerPacket: ep.Energy,
				IdleCurrent: ep.IdleCurrent, PaperEnergy: units.MicroJoules(71), PaperIdle: units.MicroAmps(1.1),
				Episode: ep}}, nil
		},
		func() (measurement, error) {
			ep, err := MeasureWiFiDC()
			if err != nil {
				return measurement{}, err
			}
			return measurement{row: Table1Row{Name: "WiFi-DC", EnergyPerPacket: ep.Energy,
				IdleCurrent: ep.IdleCurrent, PaperEnergy: units.MilliJoules(238.2), PaperIdle: units.MicroAmps(2.5),
				Episode: ep}}, nil
		},
		func() (measurement, error) {
			ep, err := MeasureWiFiPS()
			if err != nil {
				return measurement{}, err
			}
			return measurement{row: Table1Row{Name: "WiFi-PS", EnergyPerPacket: ep.Energy,
				IdleCurrent: ep.IdleCurrent, PaperEnergy: units.MilliJoules(19.8), PaperIdle: units.MicroAmps(4500),
				Episode: ep}}, nil
		},
	}
	ms, err := engine.Map(Pool(), len(points), func(i int) (measurement, error) {
		return points[i]()
	})
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Rows: make([]Table1Row, len(ms))}
	// The histogram feed stays on the caller's goroutine, in row order, so
	// metric snapshots are deterministic regardless of the pool in use.
	var perPacket *obs.Histogram
	if reg := Metrics(); reg != nil {
		perPacket = reg.Histogram("experiment.energy_per_packet_uj",
			[]float64{100, 1e3, 1e4, 1e5, 1e6})
	}
	for i, m := range ms {
		res.Rows[i] = m.row
		res.WiLEFullCycle += m.fullCycle
		if perPacket != nil {
			perPacket.Observe(m.row.EnergyPerPacket.Micro())
		}
	}
	return res, nil
}

// Scenarios converts the result to Equation-1 scenarios for Figure 4.
func (t *Table1Result) Scenarios() []energy.Scenario {
	out := make([]energy.Scenario, 0, len(t.Rows))
	for _, r := range t.Rows {
		out = append(out, r.Episode.Scenario(r.Name))
	}
	return out
}

// Render prints the table in the paper's layout plus measured-vs-paper
// deltas.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Energy required to transmit a message and idle current")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	fmt.Fprintf(w, "%-16s %12s %12s %9s %12s %12s\n",
		"", "Wi-LE", "BLE", "", "WiFi-DC", "WiFi-PS")
	row := func(label string, f func(Table1Row) string) {
		fmt.Fprintf(w, "%-16s %12s %12s %9s %12s %12s\n",
			label, f(t.Rows[0]), f(t.Rows[1]), "", f(t.Rows[2]), f(t.Rows[3]))
	}
	row("Energy/packet", func(r Table1Row) string { return energy.FormatJoules(r.EnergyPerPacket) })
	row("  (paper)", func(r Table1Row) string { return energy.FormatJoules(r.PaperEnergy) })
	row("  (delta)", func(r Table1Row) string { return fmt.Sprintf("%+.1f%%", r.EnergyError()*100) })
	row("Idle current", func(r Table1Row) string { return energy.FormatAmps(r.IdleCurrent) })
	row("  (paper)", func(r Table1Row) string { return energy.FormatAmps(r.PaperIdle) })
	fmt.Fprintln(w, strings.Repeat("-", 78))
	fmt.Fprintf(w, "Wi-LE full wake cycle (prototype incl. MCU boot): %s\n",
		energy.FormatJoules(t.WiLEFullCycle))
	fmt.Fprintf(w, "Wi-LE episode duration %v; WiFi-DC episode duration %v\n",
		t.Rows[0].Episode.Duration.Round(time.Millisecond),
		t.Rows[2].Episode.Duration.Round(time.Millisecond))
}
