package experiment

import (
	"fmt"
	"time"

	"wile/internal/core"
	"wile/internal/dot11"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
)

// DropResult summarizes a RunDropScenario run for tests and benches. The
// provenance ledger itself lives in the Obs bundle the caller passed in.
type DropResult struct {
	// Stats is the medium's final tally.
	Stats medium.Stats
	// Radios is the number of attached transceivers; with every radio
	// attached before the first transmission, the ledger's potential
	// receptions must equal Transmissions × (Radios − 1).
	Radios int
	// Near is the close-in scanner's protocol tally.
	Near core.ScannerStats
}

// dropWindow is the scenario length; activity stops early enough that every
// in-flight frame resolves before the window closes.
const dropWindow = 2 * time.Second

// RunDropScenario runs a deliberately lossy multi-device world in which
// every reason in the drop taxonomy occurs: periodic sensors feed a nearby
// scanner (delivered), a scanner 300 m out (below_sensitivity) and a
// never-started scanner (radio_off); an encrypted sensor defeats the
// keyless scanners (decode_error); a raw transmitter repeats one message
// verbatim (dedup_filtered); another injects a corrupted frame (fcs_error);
// two raw radios fire at the same instant (collided); and a MAC port sends
// with its radio down (queue_drop). Everything is seeded and single-world,
// so two runs — at any GOMAXPROCS — produce byte-identical reports.
func RunDropScenario(o *Obs) (*DropResult, error) {
	w := newWorld()
	o.wire(w)

	// Periodic reporters. SkipBoot keeps the run protocol-only.
	sensor := core.NewSensor(w.sched, w.med, core.SensorConfig{
		DeviceID: 0x2001, Position: medium.Position{X: 3, Y: 0},
		Period: 50 * time.Millisecond, SkipBoot: true,
	})
	key, err := core.NewKey([]byte("drop-scenario-16"))
	if err != nil {
		return nil, fmt.Errorf("experiment: drop scenario key: %w", err)
	}
	sensorEnc := core.NewSensor(w.sched, w.med, core.SensorConfig{
		DeviceID: 0x2002, Position: medium.Position{X: 4, Y: 0},
		Period: 70 * time.Millisecond, SkipBoot: true, Key: key,
	})

	// Receivers: one in range, one far beyond the MCS7 sensitivity, one
	// whose radio never powers on. None holds the encryption key, so the
	// encrypted sensor's messages die as decode errors.
	scanNear := core.NewScanner(w.sched, w.med, core.ScannerConfig{
		Name: "scan-near", Position: medium.Position{X: 0, Y: 0}})
	scanFar := core.NewScanner(w.sched, w.med, core.ScannerConfig{
		Name: "scan-far", Position: medium.Position{X: 300, Y: 0}})
	core.NewScanner(w.sched, w.med, core.ScannerConfig{
		Name: "scan-dark", Position: medium.Position{X: 1, Y: 0}})

	// Raw transceivers for the injected pathologies. No Handler means the
	// medium resolves their own receptions as radio_off, keeping the
	// ledger's conservation exact without a MAC behind them.
	rawA := w.med.Attach("raw-a", medium.Position{X: 1.5, Y: 0}, 0, phy.SensitivityWiFiMCS7)
	rawB := w.med.Attach("raw-b", medium.Position{X: 2, Y: 0}, 0, phy.SensitivityWiFiMCS7)
	dedupTx := w.med.Attach("dedup-tx", medium.Position{X: 2.5, Y: 0}, 0, phy.SensitivityWiFiMCS7)
	fcsTx := w.med.Attach("fcs-tx", medium.Position{X: 2.2, Y: 0}, 0, phy.SensitivityWiFiMCS7)
	for _, t := range []*medium.Transceiver{rawA, rawB, dedupTx, fcsTx} {
		t.SetOn(true)
	}

	// A MAC port whose radio never powers on: its Send fails at the
	// transmit step and lands in the TX-side queue_drop bucket.
	qdrop := mac.New(w.sched, w.med, "qdrop", medium.Position{X: 2.8, Y: 0},
		dot11.MustParseMAC("02:aa:00:00:00:0f"), phy.RateHTMCS7SGI, 0,
		phy.SensitivityWiFiMCS7, sim.NewRand(0xd20b))

	rawBeacon := func(deviceID uint32, seq uint16) []byte {
		b, err := core.BuildBeacon(dot11.LocalMAC(deviceID), 6,
			&core.Message{DeviceID: deviceID, Seq: seq,
				Readings: []core.Reading{core.Temperature(17.0)}}, nil)
		if err != nil {
			panic(fmt.Sprintf("experiment: drop scenario beacon: %v", err))
		}
		raw, err := dot11.Marshal(b)
		if err != nil {
			panic(fmt.Sprintf("experiment: drop scenario marshal: %v", err))
		}
		return raw
	}

	scanNear.Start()
	scanFar.Start()
	sensor.Run()
	sensorEnc.Run()

	// t=31 ms: send from a dead radio → queue_drop.
	w.sched.DoAfter(31*time.Millisecond, func() {
		q, err := core.BuildBeacon(dot11.LocalMAC(0x4001), 6,
			&core.Message{DeviceID: 0x4001, Seq: 1,
				Readings: []core.Reading{core.Temperature(17.0)}}, nil)
		if err != nil {
			panic(fmt.Sprintf("experiment: drop scenario beacon: %v", err))
		}
		if err := qdrop.Send(q, nil); err != nil {
			panic(fmt.Sprintf("experiment: drop scenario send: %v", err))
		}
	})

	// t=41/46 ms: the same message bytes twice → dedup_filtered at the
	// scanner that decoded the first copy.
	dup := rawBeacon(0x3001, 7)
	w.sched.DoAfter(41*time.Millisecond, func() { w.med.Transmit(dedupTx, dup, phy.RateHTMCS7SGI) })
	w.sched.DoAfter(46*time.Millisecond, func() { w.med.Transmit(dedupTx, dup, phy.RateHTMCS7SGI) })

	// t=53 ms: a frame corrupted in flight → fcs_error everywhere it lands.
	bad := rawBeacon(0x3002, 9)
	bad[len(bad)/2] ^= 0x55
	w.sched.DoAfter(53*time.Millisecond, func() { w.med.Transmit(fcsTx, bad, phy.RateHTMCS7SGI) })

	// t=101 ms: two raw radios fire at the same instant, too close in power
	// for capture → collided at every receiver in range.
	colA := rawBeacon(0x3003, 3)
	colB := rawBeacon(0x3004, 4)
	w.sched.DoAfter(101*time.Millisecond, func() { w.med.Transmit(rawA, colA, phy.RateHTMCS7SGI) })
	w.sched.DoAfter(101*time.Millisecond, func() { w.med.Transmit(rawB, colB, phy.RateHTMCS7SGI) })

	// Stop the periodic traffic well before the window closes so every
	// delivery event lands inside the run (the ledger must balance).
	w.sched.DoAfter(1500*time.Millisecond, func() {
		sensor.Stop()
		sensorEnc.Stop()
	})
	w.sched.RunUntil(sim.FromDuration(dropWindow))

	if scanNear.Stats.Messages == 0 {
		return nil, fmt.Errorf("experiment: drop scenario delivered nothing to the near scanner")
	}
	return &DropResult{
		Stats:  w.med.Stats,
		Radios: 10,
		Near:   scanNear.Stats,
	}, nil
}
