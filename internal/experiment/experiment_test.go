package experiment

import (
	"math"
	"strings"
	"testing"
	"time"

	"wile/internal/dot11"
	"wile/internal/meter"
	"wile/internal/sim"
	"wile/internal/units"
)

// --- Table 1 ---

func TestTable1ReproducesPaper(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Absolute values within 15% of the paper (the power model is
	// calibrated from the paper's own figures, so this checks the whole
	// pipeline, not just constants).
	for _, r := range res.Rows {
		if e := math.Abs(r.EnergyError()); e > 0.15 {
			t.Errorf("%s energy %.3g J deviates %.0f%% from paper %.3g J",
				r.Name, float64(r.EnergyPerPacket), e*100, float64(r.PaperEnergy))
		}
		if r.IdleCurrent != r.PaperIdle {
			t.Errorf("%s idle %.3g A, paper %.3g A", r.Name, float64(r.IdleCurrent), float64(r.PaperIdle))
		}
	}
	// Relative claims — the shape that must hold:
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	wile, ble := byName["Wi-LE"], byName["BLE"]
	dc, ps := byName["WiFi-DC"], byName["WiFi-PS"]
	// "Wi-LE's energy per packet is 84 µJ which is very close to that of
	// BLE": within 1.5×.
	if ratio := units.Ratio(wile.EnergyPerPacket, ble.EnergyPerPacket); ratio < 0.67 || ratio > 1.5 {
		t.Errorf("Wi-LE/BLE energy ratio %.2f not close", ratio)
	}
	// "the energy per packet for BLE is almost three orders of magnitude
	// lower than WiFi-PS".
	if units.Ratio(ps.EnergyPerPacket, ble.EnergyPerPacket) < 100 {
		t.Error("WiFi-PS not ≫ BLE")
	}
	// WiFi-PS is "an order of magnitude smaller" than WiFi-DC.
	if units.Ratio(dc.EnergyPerPacket, ps.EnergyPerPacket) < 8 {
		t.Errorf("WiFi-DC/WiFi-PS ratio %.1f, want ≳10", units.Ratio(dc.EnergyPerPacket, ps.EnergyPerPacket))
	}
	// "idle current consumption is about 2000 times more in WiFi-PS".
	if ratio := units.Ratio(ps.IdleCurrent, dc.IdleCurrent); ratio < 1000 || ratio > 3000 {
		t.Errorf("WiFi-PS/WiFi-DC idle ratio %.0f, paper: ~2000", ratio)
	}
	// The prototype's full wake cycle is far above the TX window (the
	// §5.4 discussion about MCU init dominating).
	if res.WiLEFullCycle < 100*wile.EnergyPerPacket {
		t.Error("full-cycle energy implausibly close to TX window")
	}
}

func TestTable1Render(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Wi-LE", "BLE", "WiFi-DC", "WiFi-PS", "Energy/packet", "Idle current"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Deterministic(t *testing.T) {
	a, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].EnergyPerPacket != b.Rows[i].EnergyPerPacket {
			t.Fatalf("%s energy differs across runs", a.Rows[i].Name)
		}
	}
}

// --- Figure 3 ---

func TestFig3aPhaseStructure(t *testing.T) {
	tr, err := RunFig3a()
	if err != nil {
		t.Fatal(err)
	}
	// 2 s at 50 kSa/s.
	if n := len(tr.Samples); n < 99_000 || n > 100_001 {
		t.Fatalf("%d samples", n)
	}
	// Phase boundaries (paper: init 0.2→0.85, mgmt 0.85→1.15, DHCP/ARP
	// →≈1.75, TX, sleep).
	initStart, initEnd, ok := tr.PhaseBounds("MC/WiFi init")
	if !ok {
		t.Fatal("no init phase mark")
	}
	if initStart != 200*sim.Millisecond {
		t.Errorf("init starts at %v, want 0.2 s", initStart)
	}
	if d := initEnd.Sub(initStart); d < 600*time.Millisecond || d > 700*time.Millisecond {
		t.Errorf("init phase %v, paper: 650 ms", d)
	}
	mgmtStart, mgmtEnd, ok := tr.PhaseBounds("Probe/Auth./Associate")
	if !ok {
		t.Fatal("no mgmt phase mark")
	}
	if d := mgmtEnd.Sub(mgmtStart); d < 200*time.Millisecond || d > 400*time.Millisecond {
		t.Errorf("mgmt phase %v, paper: ≈300 ms", d)
	}
	dhcpStart, dhcpEnd, ok := tr.PhaseBounds("DHCP/ARP")
	if !ok {
		t.Fatal("no DHCP phase mark")
	}
	if d := dhcpEnd.Sub(dhcpStart); d < 400*time.Millisecond || d > 800*time.Millisecond {
		t.Errorf("DHCP phase %v, paper: ≈600 ms", d)
	}
	txAt, _, ok := tr.PhaseBounds("Tx")
	if !ok {
		t.Fatal("no Tx mark")
	}
	if txAt < 1600*sim.Millisecond || txAt > 1900*sim.Millisecond {
		t.Errorf("Tx at %v, paper: ≈1.78 s", txAt)
	}
	// Meter and device integrals agree.
	if math.Abs(float64(tr.Energy-tr.DeviceEnergy)) > float64(tr.DeviceEnergy)*0.02 {
		t.Errorf("meter %.4g J vs device %.4g J", float64(tr.Energy), float64(tr.DeviceEnergy))
	}
	// Episode energy ≈ Table 1 WiFi-DC.
	if tr.Energy < units.Scale(units.MilliJoules(238.2), 0.85) || tr.Energy > units.Scale(units.MilliJoules(238.2), 1.15) {
		t.Errorf("trace energy %.1f mJ vs paper 238.2 mJ", tr.Energy.Milli())
	}
	// The DHCP plateau sits in the 20–30 mA band the paper describes.
	m := meterOf(tr)
	plateau := m.MeanCurrent(dhcpStart+50*sim.Millisecond, dhcpEnd-50*sim.Millisecond)
	if plateau < units.MilliAmps(18) || plateau > units.MilliAmps(35) {
		t.Errorf("DHCP plateau %.1f mA, paper: 20-30 mA", plateau.Milli())
	}
	// Spikes reach the TX current during the mgmt exchange.
	if peak := m.PeakCurrent(mgmtStart, mgmtEnd); peak < units.MilliAmps(170) {
		t.Errorf("mgmt peak %.0f mA, want TX spikes ≈180 mA", peak.Milli())
	}
}

func TestFig3bShorterAndCheaper(t *testing.T) {
	a, err := RunFig3a()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig3b()
	if err != nil {
		t.Fatal(err)
	}
	// §5.2: Wi-LE's init "is shorter when compared with the WiFi case",
	// and the total time and energy are far lower.
	if b.Energy >= units.Scale(a.Energy, 0.5) {
		t.Errorf("Wi-LE trace %.1f mJ not ≪ WiFi %.1f mJ", b.Energy.Milli(), a.Energy.Milli())
	}
	// Wi-LE's whole episode ends well before WiFi even associates.
	var bEnd sim.Time
	for _, mk := range b.Marks {
		if mk.Label == "Sleep" {
			bEnd = mk.At
		}
	}
	if bEnd == 0 || bEnd > 700*sim.Millisecond {
		t.Errorf("Wi-LE back asleep at %v, want < 0.7 s", bEnd)
	}
	// And it has no mgmt/DHCP phases at all.
	if _, _, ok := b.PhaseBounds("DHCP/ARP"); ok {
		t.Error("Wi-LE trace has a DHCP phase")
	}
	if _, _, ok := b.PhaseBounds("Probe/Auth./Associate"); ok {
		t.Error("Wi-LE trace has an association phase")
	}
}

func TestFig3CSVAndASCII(t *testing.T) {
	tr, err := RunFig3b()
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "time_s,current_mA") {
		t.Fatal("CSV header missing")
	}
	if !strings.Contains(csv.String(), "# MC/WiFi init") {
		t.Fatal("CSV annotations missing")
	}
	var art strings.Builder
	tr.RenderASCII(&art, 60, 10)
	if !strings.Contains(art.String(), "#") {
		t.Fatal("ASCII plot empty")
	}
}

// meterOf rewraps a trace's samples for integration queries.
func meterOf(tr *Trace) *meter.Meter { return &meter.Meter{Samples: tr.Samples} }

// --- Figure 4 ---

func TestFig4ShapeMatchesPaper(t *testing.T) {
	table, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	fig := RunFig4(table, nil)
	if len(fig.Series) != 4 {
		t.Fatalf("%d series", len(fig.Series))
	}
	byName := map[string][]Fig4Point{}
	for _, s := range fig.Series {
		byName[s.Name] = s.Points
	}
	at := func(name string, interval time.Duration) units.Watts {
		for _, p := range byName[name] {
			if p.Interval == interval {
				return p.Power
			}
		}
		t.Fatalf("no %s point at %v", name, interval)
		return 0
	}
	// Power decreases with interval for every technology.
	for name, pts := range byName {
		for i := 1; i < len(pts); i++ {
			if pts[i].Power > pts[i-1].Power {
				t.Fatalf("%s power increases at %v", name, pts[i].Interval)
			}
		}
	}
	// At one minute: Wi-LE ≈ BLE, both ≥100× below the WiFi modes.
	minute := time.Minute
	if r := units.Ratio(at("Wi-LE", minute), at("BLE", minute)); r < 0.3 || r > 4 {
		t.Errorf("Wi-LE/BLE ratio %.2f at 1 min", r)
	}
	if units.Ratio(at("WiFi-PS", minute), at("Wi-LE", minute)) < 100 {
		t.Error("WiFi-PS not ≫ Wi-LE at 1 min")
	}
	if units.Ratio(at("WiFi-DC", minute), at("Wi-LE", minute)) < 100 {
		t.Error("WiFi-DC not ≫ Wi-LE at 1 min")
	}
	// Crossover: "if a device transmits its data more than once per
	// minute WiFi-PS outperforms WiFi-DC".
	if at("WiFi-DC", 5*time.Second) <= at("WiFi-PS", 5*time.Second) {
		t.Error("WiFi-DC should lose at 5 s intervals")
	}
	if at("WiFi-DC", 5*time.Minute) >= at("WiFi-PS", 5*time.Minute) {
		t.Error("WiFi-DC should win at 5 min intervals")
	}
	if fig.CrossoverDCPS <= 0 || fig.CrossoverDCPS > time.Minute {
		t.Errorf("crossover at %v, paper places it below ≈1 minute", fig.CrossoverDCPS)
	}
}

func TestFig4Outputs(t *testing.T) {
	table, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	fig := RunFig4(table, []time.Duration{time.Second, time.Minute, 5 * time.Minute})
	var csv strings.Builder
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "interval_s,Wi-LE_mW,BLE_mW,WiFi-DC_mW,WiFi-PS_mW") {
		t.Fatalf("CSV header %q", lines[0])
	}
	var art strings.Builder
	fig.RenderASCII(&art, 60, 12)
	for _, g := range []string{"w", "b", "D", "P"} {
		if !strings.Contains(art.String(), g) {
			t.Errorf("ASCII plot missing %q glyph", g)
		}
	}
}

// --- §3.1 claims ---

func TestClaimsMatchPaper(t *testing.T) {
	c, err := RunClaims()
	if err != nil {
		t.Fatal(err)
	}
	if c.EAPOLFrames != 4 {
		t.Errorf("EAPOL frames = %d", c.EAPOLFrames)
	}
	if c.FourWayFrames < 8 {
		t.Errorf("4-way exchange %d frames, paper: at least 8", c.FourWayFrames)
	}
	if c.HigherLayerFrames != 7 {
		t.Errorf("higher-layer frames = %d, paper: 7", c.HigherLayerFrames)
	}
	if c.ProtectedFrames != 7 {
		t.Errorf("CCMP-protected frames = %d, want all 7 network-layer frames", c.ProtectedFrames)
	}
	if c.MACLayerFrames < 19 || c.MACLayerFrames > 21 {
		t.Errorf("MAC-layer frames = %d, paper: ≈20", c.MACLayerFrames)
	}
	if c.BeaconsDuringJoin < 5 {
		t.Errorf("beacons during join = %d, expected ≈10 over ≈1.1 s", c.BeaconsDuringJoin)
	}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "MAC-layer frames") {
		t.Error("render incomplete")
	}
}

// --- Ablations ---

func TestBitrateAblationShape(t *testing.T) {
	points, err := RunBitrateAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 21 {
		t.Fatalf("%d rates", len(points))
	}
	// Energy at 1 Mb/s DSSS is an order of magnitude above MCS7-SGI: the
	// reason §5.4 injects at 72 Mb/s.
	first, last := points[0], points[len(points)-1]
	if first.Rate.Name != "DSSS-1" || last.Rate.Name != "MCS7-SGI" {
		t.Fatalf("unexpected ordering: %s .. %s", first.Rate.Name, last.Rate.Name)
	}
	if first.Energy < 4*last.Energy {
		t.Errorf("DSSS-1 %.1f µJ not ≫ MCS7-SGI %.1f µJ", first.Energy.Micro(), last.Energy.Micro())
	}
	// Airtime decreases monotonically within a modulation family; energy
	// includes the fixed ramp so overall ordering holds loosely.
	if last.Energy > units.MicroJoules(100) {
		t.Errorf("MCS7-SGI point %.1f µJ implausibly high", last.Energy.Micro())
	}
}

func TestPayloadAblationKink(t *testing.T) {
	points, err := RunPayloadAblation(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fragments step up past the per-element capacity.
	sawOne, sawTwo := false, false
	for _, p := range points {
		switch p.Fragments {
		case 1:
			sawOne = true
		case 2, 3, 4:
			sawTwo = true
		}
		if p.PayloadBytes > 0 && p.Energy <= 0 {
			t.Fatal("non-positive energy")
		}
	}
	if !sawOne || !sawTwo {
		t.Fatalf("fragmentation kink not observed (one=%v multi=%v)", sawOne, sawTwo)
	}
	// Energy grows with payload.
	if points[len(points)-1].Energy <= points[0].Energy {
		t.Error("energy not increasing with payload")
	}
}

func TestListenIntervalAblationCalibration(t *testing.T) {
	points := RunListenIntervalAblation()
	if len(points) != 10 {
		t.Fatalf("%d points", len(points))
	}
	// LI=3 reproduces Table 1's 4.5 mA within 5%.
	li3 := points[2].IdleCurrent
	if math.Abs(float64(li3-units.MilliAmps(4.5))) > 4.5e-3*0.05 {
		t.Errorf("LI=3 idle %.2f mA, want 4.5 mA", li3.Milli())
	}
	// Monotonically decreasing in LI.
	for i := 1; i < len(points); i++ {
		if points[i].IdleCurrent >= points[i-1].IdleCurrent {
			t.Fatal("idle current not decreasing with listen interval")
		}
	}
}

func TestJitterStudySelfDesynchronization(t *testing.T) {
	// 400 cycles: at 40 ppm over a 10 s period the per-cycle drift is
	// ~400 µs, so the random-walk offset needs a few hundred cycles to
	// leave the 5 ms contention window.
	points := RunJitterStudy([]float64{0, 40}, 400)
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	zero, real := points[0], points[1]
	// Even with perfect clocks CSMA keeps delivery high; with real
	// crystals the schedules drift apart and delivery is essentially
	// complete — the §6 claim.
	if real.DeliveryRate < 0.99 {
		t.Errorf("40 ppm delivery %.3f, want ≈1", real.DeliveryRate)
	}
	if zero.DeliveryRate < 0.90 {
		t.Errorf("0 ppm delivery %.3f (CSMA should still mostly work)", zero.DeliveryRate)
	}
	if real.DeliveryRate < zero.DeliveryRate {
		t.Error("jitter made things worse")
	}
	// The §6 mechanism: with perfect clocks every cycle contends (CSMA
	// must arbitrate); with real crystals the schedules drift apart.
	if zero.ContendedCycles < zero.Cycles*9/10 {
		t.Errorf("0 ppm contended %d/%d cycles, want ~all", zero.ContendedCycles, zero.Cycles)
	}
	if real.ContendedCycles >= zero.ContendedCycles {
		t.Errorf("40 ppm contention (%d) did not decay below 0 ppm (%d)",
			real.ContendedCycles, zero.ContendedCycles)
	}
}

func TestHiddenSSIDAblation(t *testing.T) {
	res, err := RunHiddenSSIDAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.HiddenBytes >= res.VisibleBytes {
		t.Fatal("hidden beacon not smaller")
	}
	if res.VisibleBytes-res.HiddenBytes != 20 {
		t.Errorf("SSID delta %d bytes, want 20", res.VisibleBytes-res.HiddenBytes)
	}
	if res.HiddenAirtime > res.VisibleAirtime {
		t.Fatal("hidden beacon slower")
	}
}

func TestBatteryProjection(t *testing.T) {
	table, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	points := RunBatteryProjection(table, time.Minute)
	byName := map[string]time.Duration{}
	for _, p := range points {
		byName[p.Name] = p.Life
	}
	year := 365 * 24 * time.Hour
	if byName["BLE"] < year {
		t.Errorf("BLE coin-cell life %v, paper: over a year", byName["BLE"])
	}
	if byName["Wi-LE"] < year {
		t.Errorf("Wi-LE coin-cell life %v, want over a year", byName["Wi-LE"])
	}
	if byName["WiFi-DC"] > 30*24*time.Hour {
		t.Errorf("WiFi-DC life %v implausibly long", byName["WiFi-DC"])
	}
}

func TestHopperStudyCaptureRateScales(t *testing.T) {
	points := RunHopperStudy([]int{1, 3})
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	one, three := points[0], points[1]
	// Single channel: the hopper never leaves it, so it captures
	// everything.
	if one.CaptureRate < 0.95 {
		t.Errorf("1-channel capture rate %.2f, want ≈1", one.CaptureRate)
	}
	// Three channels: the receiver hears ≈1/3 of the beacons.
	if three.CaptureRate < 0.20 || three.CaptureRate > 0.50 {
		t.Errorf("3-channel capture rate %.2f, want ≈1/3", three.CaptureRate)
	}
	if three.CaptureRate >= one.CaptureRate {
		t.Error("capture rate did not fall with channel count")
	}
}

func TestCapacityStudy(t *testing.T) {
	res, err := RunCapacityStudy(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The standard beacon occupies well under 200 µs with DCF overhead.
	if res.PerTxAirtime <= res.BeaconAirtime || res.PerTxAirtime > 200*time.Microsecond {
		t.Fatalf("per-tx airtime %v", res.PerTxAirtime)
	}
	// At 10-minute reporting a single channel sustains hundreds of
	// thousands of devices before airtime is even 10% used — the §6
	// "network of IoT devices" is not channel-limited.
	if res.MaxAt10Util < 100_000 {
		t.Fatalf("capacity %d devices implausibly low", res.MaxAt10Util)
	}
	// Capacity scales linearly with period.
	res1, err := RunCapacityStudy(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.MaxAt10Util) / float64(res1.MaxAt10Util)
	if ratio < 9.9 || ratio > 10.1 {
		t.Fatalf("capacity ratio %v, want 10", ratio)
	}
}

func TestFastRejoinSavesTheNetworkPhase(t *testing.T) {
	full, err := MeasureWiFiDC()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := MeasureWiFiDCFast()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full rejoin %.1f mJ / %v; cached-lease rejoin %.1f mJ / %v",
		full.Energy.Milli(), full.Duration.Round(time.Millisecond),
		fast.Energy.Milli(), fast.Duration.Round(time.Millisecond))
	// Skipping DHCP/ARP removes the ≈640 ms network-wait plateau:
	// roughly 40 mJ and over half a second.
	saved := full.Energy - fast.Energy
	if saved < units.MilliJoules(30) || saved > units.MilliJoules(60) {
		t.Errorf("fast rejoin saves %.1f mJ, expected ≈40 mJ", saved.Milli())
	}
	if full.Duration-fast.Duration < 500*time.Millisecond {
		t.Errorf("fast rejoin saves only %v", full.Duration-fast.Duration)
	}
	// And yet it remains three orders of magnitude above Wi-LE — the
	// paper's point survives every conventional optimization.
	wile, _, err := MeasureWiLE()
	if err != nil {
		t.Fatal(err)
	}
	if units.Ratio(fast.Energy, wile.Energy) < 1000 {
		t.Errorf("fast rejoin only %.0f× Wi-LE", units.Ratio(fast.Energy, wile.Energy))
	}
}

func TestGoodputStudy(t *testing.T) {
	res, err := RunGoodputStudy()
	if err != nil {
		t.Fatal(err)
	}
	// One Wi-LE fragment carries ~8× a BLE advertisement.
	if res.WiLEPayloadPerMsg < 7*res.BLEPayloadPerMsg {
		t.Errorf("Wi-LE %d B/msg vs BLE %d B/msg", res.WiLEPayloadPerMsg, res.BLEPayloadPerMsg)
	}
	if res.WiLEMaxPerBeacon < 3000 {
		t.Errorf("multi-fragment ceiling %d B", res.WiLEMaxPerBeacon)
	}
	// Per delivered byte Wi-LE beats BLE by a wide margin.
	ratio := res.BLEJoulesPerByte / res.WiLEJoulesPerByte
	t.Logf("energy per byte: Wi-LE %.2f µJ/B, BLE %.2f µJ/B (%.1f×)",
		res.WiLEJoulesPerByte*1e6, res.BLEJoulesPerByte*1e6, ratio)
	if ratio < 4 {
		t.Errorf("Wi-LE per-byte advantage only %.1f×", ratio)
	}
}

func TestJoinCaptureRoundTrips(t *testing.T) {
	packets, err := RunJoinCapture()
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) < 40 {
		t.Fatalf("capture has %d frames", len(packets))
	}
	kinds := map[string]int{}
	protected := 0
	for _, p := range packets {
		f, err := dot11.Decode(p.Data)
		if err != nil {
			t.Fatalf("captured frame does not decode: %v", err)
		}
		kinds[f.Kind().String()]++
		if d, ok := f.(*dot11.Data); ok && d.Header.FC.Protected {
			protected++
		}
		if s := dot11.Summarize(f); s == "" {
			t.Fatal("empty summary")
		}
	}
	for _, k := range []string{"beacon", "probe-req", "probe-resp", "auth", "assoc-req", "assoc-resp", "ack", "data"} {
		if kinds[k] == 0 {
			t.Errorf("capture missing %s frames", k)
		}
	}
	if protected < 8 {
		t.Errorf("capture has %d protected frames", protected)
	}
	// Timestamps are nondecreasing.
	for i := 1; i < len(packets); i++ {
		if packets[i].Time < packets[i-1].Time {
			t.Fatal("capture timestamps out of order")
		}
	}
}

func TestInterferenceStudy(t *testing.T) {
	points := RunInterferenceStudy([]float64{0, 0.5, 0.8})
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	clean, half, heavy := points[0], points[1], points[2]
	if clean.DeliveryRate < 0.99 {
		t.Fatalf("clean-channel delivery %.2f", clean.DeliveryRate)
	}
	// Wi-LE's sub-100 µs beacons squeeze through even an 80%-occupied
	// channel: CSMA converts interference into delay, not loss.
	if heavy.DeliveryRate < 0.95 {
		t.Errorf("80%%-duty delivery %.2f", heavy.DeliveryRate)
	}
	if clean.MeanDelay > time.Millisecond {
		t.Errorf("clean-channel baseline delay %v not normalized out", clean.MeanDelay)
	}
	if heavy.MeanDelay <= half.MeanDelay || half.MeanDelay <= clean.MeanDelay {
		t.Errorf("deferral delay not increasing: %v, %v, %v",
			clean.MeanDelay, half.MeanDelay, heavy.MeanDelay)
	}
	t.Logf("delivery/delay: clean %.3f/%v, 50%% %.3f/%v, 80%% %.3f/%v (collisions %d/%d/%d)",
		clean.DeliveryRate, clean.MeanDelay, half.DeliveryRate, half.MeanDelay,
		heavy.DeliveryRate, heavy.MeanDelay, clean.Collisions, half.Collisions, heavy.Collisions)
}

func TestCarrierAblation(t *testing.T) {
	points, err := RunCarrierAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d carriers", len(points))
	}
	beacon := points[0]
	for _, p := range points[1:] {
		// The alternatives are no cheaper in any meaningful way: within
		// one OFDM symbol of the beacon's airtime.
		if beacon.Airtime-p.Airtime > 8*time.Microsecond {
			t.Errorf("%s saves %v over the beacon — §4's choice costs airtime",
				p.Carrier, beacon.Airtime-p.Airtime)
		}
	}
	// And all three carry the same payload within tens of bytes of
	// framing (the beacon's fixed fields and extra elements cost ~28 B).
	for _, p := range points {
		if p.Bytes < 40 || p.Bytes > 120 {
			t.Errorf("%s is %d bytes", p.Carrier, p.Bytes)
		}
	}
}
