package experiment

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"wile/internal/engine"
	"wile/internal/phy"
)

// smallDensityConfig is a fast sweep for tests and the CI smoke job:
// populations small enough to run in milliseconds but dense enough that
// collisions actually occur.
func smallDensityConfig() DensityConfig {
	cfg := DefaultDensityConfig()
	cfg.Devices = []int{50, 200, 800}
	cfg.Side = 100
	cfg.Window = 500 * time.Millisecond
	return cfg
}

// TestDensitySweepSanity checks the physics of the curve: rates live in
// [0,1], everything beacons, and packing more devices into the same field
// strictly raises collision pressure and audience size.
func TestDensitySweepSanity(t *testing.T) {
	points, err := RunDensitySweep(smallDensityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Transmissions == 0 {
			t.Fatalf("%d devices: no transmissions", p.Devices)
		}
		if p.CollisionRate < 0 || p.CollisionRate > 1 || p.DeliveryProb < 0 || p.DeliveryProb > 1 {
			t.Fatalf("%d devices: rates out of range: %+v", p.Devices, p)
		}
	}
	for i := 1; i < len(points); i++ {
		if points[i].CollisionRate <= points[i-1].CollisionRate {
			t.Errorf("collision rate not increasing with density: %v then %v",
				points[i-1].CollisionRate, points[i].CollisionRate)
		}
		if points[i].MeanAudience <= points[i-1].MeanAudience {
			t.Errorf("mean audience not increasing with density: %v then %v",
				points[i-1].MeanAudience, points[i].MeanAudience)
		}
	}
}

// TestDensitySaturationDegradesDelivery pins the collision-limited regime:
// delivery probability is non-monotone in density (sparse fields are
// coverage-limited — isolated devices have nobody to hear them — so it
// first rises with density), but once the local channel saturates it must
// turn down. 800 devices sending 300-byte beacons at 1 Mb/s every 100 ms
// inside one mutual-hearing cell offer ~19 erlangs of unslotted-ALOHA
// load: nearly every reception collides, and only physical-layer capture
// by the receivers nearest each transmitter keeps any beacons alive.
func TestDensitySaturationDegradesDelivery(t *testing.T) {
	cfg := smallDensityConfig()
	cfg.Devices = []int{800}
	cfg.Side = 20
	cfg.Payload = 300
	cfg.Window = 200 * time.Millisecond
	points, err := RunDensitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.CollisionRate < 0.9 {
		t.Errorf("saturated channel collision rate = %.3f, want > 0.9", p.CollisionRate)
	}
	// Well below the ~0.99 the covered-but-uncongested regime reaches
	// (see the 800-device point of TestDensitySweepSanity's config).
	if p.DeliveryProb > 0.8 {
		t.Errorf("saturated channel delivery probability = %.3f, want < 0.8", p.DeliveryProb)
	}
}

// TestDensitySweepByteIdenticalAcrossPoolsAndProcs extends the engine
// determinism gate to the density sweep: population sharding across
// workers via SubSeed must leave the rendered results byte-identical to
// the serial reference at GOMAXPROCS 1 and 4.
func TestDensitySweepByteIdenticalAcrossPoolsAndProcs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	render := func() []byte {
		points, err := RunDensitySweep(smallDensityConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteDensityCSV(&buf, points); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var reference []byte
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, pool := range []*engine.Pool{engine.Serial(), engine.New(4)} {
			prev := SetPool(pool)
			got := render()
			SetPool(prev)
			if reference == nil {
				reference = got
				continue
			}
			if !bytes.Equal(got, reference) {
				t.Fatalf("GOMAXPROCS=%d: density sweep differs from serial reference:\n%s\n---\n%s",
					procs, got, reference)
			}
		}
	}
}

// TestDensitySweepRejectsOversizedBeacon pins the buffer-reuse guard: a
// beacon whose airtime reaches the period cannot be simulated with
// per-device buffer reuse and must be refused, not miscounted.
func TestDensitySweepRejectsOversizedBeacon(t *testing.T) {
	cfg := smallDensityConfig()
	cfg.Period = time.Millisecond
	cfg.Payload = 1500
	cfg.Rate = phy.RateDSSS1
	if _, err := RunDensitySweep(cfg); err == nil {
		t.Fatal("oversized beacon accepted")
	}
	cfg = smallDensityConfig()
	cfg.Payload = 4
	if _, err := RunDensitySweep(cfg); err == nil {
		t.Fatal("payload below header accepted")
	}
}
