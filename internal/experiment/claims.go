package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"wile/internal/dot11"
	"wile/internal/esp32"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/netstack"
	"wile/internal/pcap"
	"wile/internal/phy"
	"wile/internal/sim"
)

// ClaimsResult checks the §3.1 protocol-cost claims against the simulated
// join, counting every frame on the air with a monitor-mode receiver.
type ClaimsResult struct {
	// ByKind counts non-beacon frames by kind during the join.
	ByKind map[string]int
	// MACLayerFrames is the §3.1 "20 MAC-layer frames" count: everything
	// on the air during the join except AP beacons and the higher-layer
	// data frames.
	MACLayerFrames int
	// FourWayFrames is the 802.1X exchange size including ACKs
	// (paper: "at least 8 frames").
	FourWayFrames int
	// HigherLayerFrames is the DHCP+ARP count (paper: 7). With CCMP
	// active these frames are encrypted on the air, so the monitor counts
	// protected data frames — during a join the only protected
	// client↔AP traffic is the DHCP/ARP exchange.
	HigherLayerFrames int
	ProtectedFrames   int
	// GroupRelays counts the AP's GTK-protected re-broadcasts of the
	// client's broadcast ARPs — distribution-system traffic the paper's
	// per-client count does not include.
	GroupRelays int
	EAPOLFrames int
	// BeaconsDuringJoin counts the AP beacons that also occupied the
	// channel while the client joined.
	BeaconsDuringJoin int
}

// RunClaims joins once under a monitor and tallies the § 3.1 counts.
func RunClaims() (*ClaimsResult, error) {
	w := newWorld()
	w.newAP()
	station := w.newStation()

	res := &ClaimsResult{ByKind: map[string]int{}}
	mon := mac.New(w.sched, w.med, "monitor", medium.Position{X: 1.5, Y: 0},
		dot11.MustParseMAC("02:00:00:00:00:99"), phy.RateHTMCS7, 0,
		phy.SensitivityWiFi1M, sim.NewRand(7))
	mon.AutoACK = false
	mon.SetRadioOn(true)
	joinDone := false
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		if joinDone {
			return
		}
		kind := f.Kind().String()
		if kind == "beacon" {
			res.BeaconsDuringJoin++
			return
		}
		res.ByKind[kind]++
		d, ok := f.(*dot11.Data)
		if !ok || len(d.Payload) == 0 {
			return
		}
		if d.Header.FC.Protected {
			if d.Header.FC.FromDS && d.RA().IsGroup() {
				// The AP re-broadcasting the client's ARPs under the GTK:
				// BSS housekeeping, not part of the client's join cost.
				res.GroupRelays++
				return
			}
			// CCMP ciphertext: during a join, necessarily DHCP or ARP.
			res.ProtectedFrames++
			return
		}
		if et, _, err := netstack.UnwrapSNAP(d.Payload); err == nil && et == netstack.EtherTypeEAPOL {
			res.EAPOLFrames++
		}
	}

	var joinErr error
	done := false
	station.Dev.SetState(esp32.StateCPUActive)
	station.Join(func(err error) { joinErr = err; done = true; joinDone = true })
	w.sched.RunUntil(5 * sim.Second)
	if !done || joinErr != nil {
		return nil, fmt.Errorf("experiment: claims join: %v", joinErr)
	}

	total := 0
	for _, v := range res.ByKind {
		total += v
	}
	res.HigherLayerFrames = res.ProtectedFrames
	// Every higher-layer frame is unicast and therefore ACKed; the paper's
	// "20 MAC-layer frames" excludes the network-layer exchange entirely,
	// so both the frames and their ACKs come out of the MAC-layer count,
	// as do the AP's unACKed group relays.
	res.MACLayerFrames = total - 2*res.HigherLayerFrames - res.GroupRelays
	// EAPOL data frames are each ACKed; their ACKs are inside ByKind["ack"].
	res.FourWayFrames = res.EAPOLFrames + res.EAPOLFrames
	return res, nil
}

// Render prints the claim check.
func (c *ClaimsResult) Render(w io.Writer) {
	fmt.Fprintln(w, "§3.1 claim check: frames to establish an 802.11 connection")
	fmt.Fprintln(w, "------------------------------------------------------------")
	kinds := make([]string, 0, len(c.ByKind))
	for k := range c.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-12s %3d\n", k, c.ByKind[k])
	}
	fmt.Fprintln(w, "------------------------------------------------------------")
	fmt.Fprintf(w, "MAC-layer frames:      %2d   (paper: \"these 20 MAC-layer frames\";\n", c.MACLayerFrames)
	fmt.Fprintf(w, "                             our broadcast probe draws no ACK → 19)\n")
	fmt.Fprintf(w, "802.1X exchange:       %2d   (paper: \"at least 8 frames\")\n", c.FourWayFrames)
	fmt.Fprintf(w, "Higher-layer frames:   %2d   (paper: 7, \"including DHCP and ARP\";\n", c.HigherLayerFrames)
	fmt.Fprintf(w, "                             CCMP-encrypted on the air: 4 DHCP + 3 ARP)\n")
	fmt.Fprintf(w, "AP beacons meanwhile:  %2d\n", c.BeaconsDuringJoin)
}

// RunJoinCapture records the complete Figure-3a join as a pcap packet
// list — every beacon, management frame, EAPOL message, ACK and
// CCMP-protected data frame as raw bytes with timestamps. Feed the output
// to cmd/wile-dump or any pcap tool.
func RunJoinCapture() ([]pcap.Packet, error) {
	w := newWorld()
	w.newAP()
	station := w.newStation()

	var packets []pcap.Packet
	mon := mac.New(w.sched, w.med, "capture", medium.Position{X: 1.5, Y: 0},
		dot11.MustParseMAC("02:00:00:00:00:9a"), phy.RateHTMCS7, 0,
		phy.SensitivityWiFi1M, sim.NewRand(7))
	mon.AutoACK = false
	mon.SetRadioOn(true)
	mon.Monitor = func(f dot11.Frame, rx medium.Reception) {
		packets = append(packets, pcap.Packet{
			Time: w.sched.Now().Sub(0),
			Data: append([]byte(nil), rx.Data...),
		})
	}

	var joinErr error
	done := false
	station.Dev.SetState(esp32.StateCPUActive)
	station.Join(func(err error) { joinErr = err; done = true })
	w.sched.RunUntil(2 * sim.Second)
	if !done || joinErr != nil {
		return nil, fmt.Errorf("experiment: capture join: %v", joinErr)
	}
	// One sensor reading on top, so the capture ends with app data.
	if err := station.SendReading([]byte("temp=17.0"), 5683, nil); err != nil {
		return nil, fmt.Errorf("experiment: capture send: %w", err)
	}
	w.sched.RunFor(100 * time.Millisecond)
	return packets, nil
}
