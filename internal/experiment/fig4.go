package experiment

import (
	"fmt"
	"io"
	"math"
	"time"

	"wile/internal/energy"
	"wile/internal/engine"
	"wile/internal/units"
)

// Fig4Point is one (interval, power) sample of one curve.
type Fig4Point struct {
	Interval time.Duration
	Power    units.Watts
}

// Fig4Series is one technology's curve.
type Fig4Series struct {
	Name   string
	Points []Fig4Point
}

// Fig4Result reproduces Figure 4: average power vs transmission interval
// for all four technologies, 0–5 minutes.
type Fig4Result struct {
	Series []Fig4Series
	// CrossoverDCPS is the interval where WiFi-DC becomes cheaper than
	// WiFi-PS (the paper places it under ≈1 minute).
	CrossoverDCPS time.Duration
}

// DefaultFig4Intervals sweeps the paper's x-axis (it starts just above
// zero; we start at 1 s).
func DefaultFig4Intervals() []time.Duration {
	var out []time.Duration
	for s := 1; s <= 300; s++ {
		out = append(out, time.Duration(s)*time.Second)
	}
	return out
}

// RunFig4 evaluates Equation 1 over the sweep using the measured Table-1
// episodes. The interval grid is built once up front and each technology's
// curve is one engine point with its Points slice sized exactly — the
// curves are independent, so they shard across workers and merge back in
// the paper's series order.
func RunFig4(table *Table1Result, intervals []time.Duration) *Fig4Result {
	if len(intervals) == 0 {
		intervals = DefaultFig4Intervals()
	}
	scenarios := table.Scenarios()
	res := &Fig4Result{}
	res.Series = engine.MapValues(Pool(), len(scenarios), func(i int) Fig4Series {
		sc := scenarios[i]
		pts := make([]Fig4Point, len(intervals))
		for j, interval := range intervals {
			pts[j] = Fig4Point{Interval: interval, Power: sc.AveragePower(interval)}
		}
		return Fig4Series{Name: sc.Name, Points: pts}
	})
	res.CrossoverDCPS = findCrossover(scenarios)
	return res
}

// findCrossover bisects for the WiFi-DC/WiFi-PS equal-power interval.
func findCrossover(scenarios []energy.Scenario) time.Duration {
	var dc, ps *energy.Scenario
	for i := range scenarios {
		switch scenarios[i].Name {
		case "WiFi-DC":
			dc = &scenarios[i]
		case "WiFi-PS":
			ps = &scenarios[i]
		}
	}
	if dc == nil || ps == nil {
		return 0
	}
	lo, hi := time.Second, 10*time.Minute
	if dc.AveragePower(lo) <= ps.AveragePower(lo) {
		return 0 // no crossover in range
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if dc.AveragePower(mid) > ps.AveragePower(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// WriteCSV exports the curves as interval_s, then one power column (mW)
// per technology.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "interval_s"); err != nil {
		return err
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, ",%s_mW", s.Name); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	if len(r.Series) == 0 {
		return nil
	}
	for i := range r.Series[0].Points {
		if _, err := fmt.Fprintf(w, "%.0f", r.Series[0].Points[i].Interval.Seconds()); err != nil {
			return err
		}
		for _, s := range r.Series {
			if _, err := fmt.Fprintf(w, ",%.6g", s.Points[i].Power.Milli()); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderASCII draws the log-y plot the paper's Figure 4 uses.
func (r *Fig4Result) RenderASCII(w io.Writer, width, height int) {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	if len(r.Series) == 0 {
		return
	}
	// Log scale spanning the data.
	minLog, maxLog := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		for _, p := range s.Points {
			l := math.Log10(p.Power.Milli()) // mW
			minLog = math.Min(minLog, l)
			maxLog = math.Max(maxLog, l)
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(repeatByte(' ', width))
	}
	glyphs := map[string]byte{"Wi-LE": 'w', "BLE": 'b', "WiFi-DC": 'D', "WiFi-PS": 'P'}
	maxInterval := r.Series[0].Points[len(r.Series[0].Points)-1].Interval
	for _, s := range r.Series {
		g, ok := glyphs[s.Name]
		if !ok {
			g = '*'
		}
		for _, p := range s.Points {
			x := int(float64(p.Interval) / float64(maxInterval) * float64(width-1))
			l := math.Log10(p.Power.Milli())
			y := int((l - minLog) / (maxLog - minLog) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = g
			}
		}
	}
	fmt.Fprintf(w, "Figure 4: average power vs transmission interval (log y: %.3g..%.3g mW)\n",
		math.Pow(10, minLog), math.Pow(10, maxLog))
	for _, line := range grid {
		fmt.Fprintf(w, "|%s|\n", line)
	}
	fmt.Fprintf(w, "0%svs %v   legend: P=WiFi-PS D=WiFi-DC w=Wi-LE b=BLE\n",
		repeatByte(' ', width-24), maxInterval)
	if r.CrossoverDCPS > 0 {
		fmt.Fprintf(w, "WiFi-PS/WiFi-DC crossover at %v (paper: below ≈1 minute)\n",
			r.CrossoverDCPS.Round(time.Second))
	}
}

func repeatByte(b byte, n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return string(out)
}
