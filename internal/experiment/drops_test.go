package experiment

import (
	"bytes"
	"runtime"
	"testing"

	"wile/internal/obs"
)

// runDrops executes the lossy scenario with a fresh ledger and returns the
// ledger plus both report serializations.
func runDrops(t *testing.T) (*obs.Provenance, *DropResult, string, string) {
	t.Helper()
	prov := obs.NewProvenance()
	res, err := RunDropScenario(&Obs{Prov: prov})
	if err != nil {
		t.Fatal(err)
	}
	var txt, js bytes.Buffer
	if err := prov.WriteReport(&txt); err != nil {
		t.Fatal(err)
	}
	if err := prov.WriteReportJSON(&js); err != nil {
		t.Fatal(err)
	}
	return prov, res, txt.String(), js.String()
}

// TestDropScenarioConservation pins the ledger invariant on a full lossy
// world: every (frame, receiver) pair resolves to exactly one outcome, the
// outcome total equals the potential-reception total, and every reason in
// the taxonomy actually occurs.
func TestDropScenarioConservation(t *testing.T) {
	prov, res, _, _ := runDrops(t)
	if err := prov.Verify(); err != nil {
		t.Fatalf("conservation violated: %v", err)
	}
	wantPotential := int64(res.Stats.Transmissions) * int64(res.Radios-1)
	if got := prov.Potential(); got != wantPotential {
		t.Errorf("potential receptions = %d, want transmissions×(radios−1) = %d", got, wantPotential)
	}
	out := prov.Outcomes()
	var total int64
	for _, n := range out {
		total += n
	}
	if total != prov.Potential() {
		t.Errorf("Σ outcomes = %d, want %d", total, prov.Potential())
	}
	for reason := obs.DropReason(0); reason < obs.NumDropReasons; reason++ {
		if reason == obs.DropQueueDrop {
			if prov.QueueDrops() == 0 {
				t.Errorf("scenario produced no queue_drop")
			}
			continue
		}
		if out[reason] == 0 {
			t.Errorf("scenario produced no %v outcome", reason)
		}
	}
	// Stats, the registry mirror and the taxonomy must tell one story:
	// collided receptions count only as collisions, and every clean
	// reception the medium handed to a MAC resolved at a decode layer.
	if got := int64(res.Stats.Collisions); got != out[obs.DropCollided] {
		t.Errorf("Stats.Collisions = %d, want DropCollided = %d", got, out[obs.DropCollided])
	}
	decodeSide := out[obs.Delivered] + out[obs.DropFCSError] +
		out[obs.DropDedupFiltered] + out[obs.DropDecodeError]
	if decodeSide != int64(res.Stats.Deliveries) {
		t.Errorf("decode-side outcomes = %d, want Stats.Deliveries = %d", decodeSide, res.Stats.Deliveries)
	}
}

// TestDropScenarioDeterminism pins the cross-GOMAXPROCS byte-identity
// contract for both report formats.
func TestDropScenarioDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var first, firstJSON string
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		_, _, txt, js := runDrops(t)
		if first == "" {
			first, firstJSON = txt, js
			continue
		}
		if txt != first {
			t.Errorf("text report differs at GOMAXPROCS=%d:\n%s\n---\n%s", procs, txt, first)
		}
		if js != firstJSON {
			t.Errorf("JSON report differs at GOMAXPROCS=%d", procs)
		}
	}
}

// TestDropScenarioRegistryMirror: with a registry wired alongside the
// ledger, the wile.medium_* counters must agree with both views.
func TestDropScenarioRegistryMirror(t *testing.T) {
	prov := obs.NewProvenance()
	reg := obs.NewRegistry()
	res, err := RunDropScenario(&Obs{Prov: prov, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("wile.medium_transmissions").Value(); got != int64(res.Stats.Transmissions) {
		t.Errorf("wile.medium_transmissions = %d, want %d", got, res.Stats.Transmissions)
	}
	if got := reg.Counter("wile.medium_deliveries").Value(); got != int64(res.Stats.Deliveries) {
		t.Errorf("wile.medium_deliveries = %d, want %d", got, res.Stats.Deliveries)
	}
	if got := reg.Counter("wile.medium_collisions").Value(); got != int64(res.Stats.Collisions) {
		t.Errorf("wile.medium_collisions = %d, want %d", got, res.Stats.Collisions)
	}
	if got := reg.Counter("wile.medium_frames").Value(); got != prov.Frames() {
		t.Errorf("wile.medium_frames = %d, want %d", got, prov.Frames())
	}
	out := prov.Outcomes()
	if got := reg.Counter("wile.medium_delivered").Value(); got != out[obs.Delivered] {
		t.Errorf("wile.medium_delivered = %d, want %d", got, out[obs.Delivered])
	}
	if got := reg.Counter("wile.medium_drop_collided").Value(); got != out[obs.DropCollided] {
		t.Errorf("wile.medium_drop_collided = %d, want %d", got, out[obs.DropCollided])
	}
	if got := reg.Counter("wile.medium_drop_queue_drop").Value(); got != prov.QueueDrops() {
		t.Errorf("wile.medium_drop_queue_drop = %d, want %d", got, prov.QueueDrops())
	}
}
