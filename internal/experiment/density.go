package experiment

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"wile/internal/engine"
	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
)

// Density sweep: beacon collision rate and delivery probability vs device
// count, the Fig-6-style "massive IoT" regime the 802.11ba literature
// models at thousands-to-millions of contending devices. Each device is a
// bare beaconing radio (unslotted ALOHA — no carrier sense, no backoff:
// the regime where density hurts most, and the load the culled medium must
// absorb). Devices land uniformly in a square field, wake on their own
// phase, and beacon every Period with per-beacon jitter. A beacon counts
// as delivered when at least one neighbor decodes it clean of collision;
// isolated devices (nobody in radius) therefore cap delivery probability
// below 1, which is part of the coverage story, not an artifact.
//
// Every per-device random draw comes from engine.SubSeed(pointSeed, i), so
// the population is a pure function of (seed, index): sweep points shard
// across engine workers with byte-identical results to a serial run.

// DensityConfig parameterizes the sweep.
type DensityConfig struct {
	// Devices lists the population sizes to sweep.
	Devices []int
	// Side is the edge of the square deployment field in meters.
	Side float64
	// Period is the nominal beacon interval; each beacon adds a uniform
	// [0, Period/16) jitter so devices drift instead of phase-locking.
	Period time.Duration
	// Window is the observed sim-time span per point.
	Window time.Duration
	// Payload is the beacon MPDU length in bytes (≥ 8; the first eight
	// bytes carry device id and sequence number).
	Payload int
	// Rate is the beacon PHY rate. The paper's Wi-LE beacons ride the
	// slowest, longest-range rates, which is also where airtime — and so
	// collision pressure — is worst.
	Rate phy.Rate
	// TxPower and Sensitivity define every device's radio. The defaults
	// (0 dBm, MCS7 sensitivity) give the paper's "a few meters" range.
	TxPower     phy.DBm
	Sensitivity phy.DBm
	// Seed derives every per-point and per-device stream.
	Seed uint64
}

// DefaultDensityConfig is the Fig-6-style sweep: up to 100k devices in a
// square kilometer, 100 ms beacons observed for one second.
func DefaultDensityConfig() DensityConfig {
	return DensityConfig{
		Devices:     []int{1000, 3000, 10000, 30000, 100000},
		Side:        1000,
		Period:      100 * time.Millisecond,
		Window:      time.Second,
		Payload:     60,
		Rate:        phy.RateDSSS1,
		TxPower:     0,
		Sensitivity: phy.SensitivityWiFiMCS7,
		Seed:        0xD15C0,
	}
}

// DensityPoint is the outcome of one population size.
type DensityPoint struct {
	Devices       int
	Transmissions int
	Deliveries    int
	Collisions    int
	// CollisionRate is collided receptions over all in-range receptions.
	CollisionRate float64
	// DeliveryProb is the fraction of beacons decoded clean by at least
	// one neighbor.
	DeliveryProb float64
	// MeanAudience is the mean number of in-range receivers per beacon.
	MeanAudience float64
}

// densityDevice is one beaconing radio's progress through the window.
type densityDevice struct {
	trx *medium.Transceiver
	rng *sim.Rand
	buf []byte
	// seq is the sequence number of the beacon currently in flight (or
	// last sent); clean flips when any neighbor decodes it un-collided.
	seq       uint32
	clean     bool
	sent      int
	delivered int
}

// RunDensitySweep runs one point per population size, sharded across the
// package pool.
func RunDensitySweep(cfg DensityConfig) ([]DensityPoint, error) {
	if cfg.Payload < 8 {
		return nil, fmt.Errorf("experiment: density payload %d below the 8-byte header", cfg.Payload)
	}
	if airtime := phy.FrameAirtime(cfg.Rate, cfg.Payload); airtime >= cfg.Period {
		// Device buffers are reused across beacons, which is only sound
		// once a beacon's deliveries all fire before the next one starts.
		return nil, fmt.Errorf("experiment: beacon airtime %v not below period %v", airtime, cfg.Period)
	}
	return engine.MapSeeded(Pool(), cfg.Seed, len(cfg.Devices), func(i int, seed uint64) (DensityPoint, error) {
		return runDensityPoint(cfg.Devices[i], seed, cfg), nil
	})
}

// runDensityPoint simulates one population size for one window.
func runDensityPoint(n int, seed uint64, cfg DensityConfig) DensityPoint {
	sched := sim.New()
	med := medium.New(sched, phy.WiFi24Channel(6))
	// Collision outcomes are all this experiment reads; skip the
	// corruption copies and let handlers trust the Collided flag.
	med.Corrupt = false

	devs := make([]densityDevice, n)
	// Shared handler: a clean reception of device i's current sequence
	// marks that beacon delivered, whoever heard it.
	onRx := func(r medium.Reception) {
		if r.Collided || len(r.Data) < 8 {
			return
		}
		i := binary.LittleEndian.Uint32(r.Data)
		seq := binary.LittleEndian.Uint32(r.Data[4:])
		if d := &devs[i]; seq == d.seq {
			d.clean = true
		}
	}
	for i := range devs {
		d := &devs[i]
		// SubSeed keys the device stream by index alone: population builds
		// identically whatever order workers touch the sweep points in.
		d.rng = sim.NewRand(engine.SubSeed(seed, i))
		pos := medium.Position{X: d.rng.Float64() * cfg.Side, Y: d.rng.Float64() * cfg.Side}
		d.trx = med.Attach("", pos, cfg.TxPower, cfg.Sensitivity)
		d.trx.SetOn(true)
		d.trx.Handler = onRx
		d.buf = make([]byte, cfg.Payload)
		binary.LittleEndian.PutUint32(d.buf, uint32(i))
	}

	airtime := phy.FrameAirtime(cfg.Rate, cfg.Payload)
	window := sim.Time(0).Add(cfg.Window)
	jitterMax := float64(cfg.Period) / 16
	var beacon func(i int)
	beacon = func(i int) {
		d := &devs[i]
		if d.sent > 0 {
			if d.clean {
				d.delivered++
			}
			d.seq++
			binary.LittleEndian.PutUint32(d.buf[4:], d.seq)
		}
		d.clean = false
		d.sent++
		med.Transmit(d.trx, d.buf, cfg.Rate)
		next := cfg.Period + time.Duration(d.rng.Float64()*jitterMax)
		if sched.Now().Add(next+airtime) < window {
			sched.After(next, func() { beacon(i) })
		}
	}
	for i := range devs {
		i := i
		phase := time.Duration(devs[i].rng.Float64() * float64(cfg.Period))
		sched.After(phase, func() { beacon(i) })
	}
	sched.RunUntil(window)

	pt := DensityPoint{Devices: n}
	var sent, delivered int
	for i := range devs {
		d := &devs[i]
		if d.sent > 0 && d.clean {
			d.delivered++ // final beacon resolved inside the window
		}
		sent += d.sent
		delivered += d.delivered
	}
	pt.Transmissions = med.Stats.Transmissions
	pt.Deliveries = med.Stats.Deliveries
	pt.Collisions = med.Stats.Collisions
	if receptions := pt.Deliveries + pt.Collisions; receptions > 0 {
		pt.CollisionRate = float64(pt.Collisions) / float64(receptions)
	}
	if sent > 0 {
		pt.DeliveryProb = float64(delivered) / float64(sent)
	}
	if pt.Transmissions > 0 {
		pt.MeanAudience = float64(pt.Deliveries+pt.Collisions) / float64(pt.Transmissions)
	}
	return pt
}

// WriteDensityCSV exports the sweep in plotting format.
func WriteDensityCSV(w io.Writer, points []DensityPoint) error {
	if _, err := fmt.Fprintln(w, "devices,transmissions,deliveries,collisions,collision_rate,delivery_prob,mean_audience"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.6f,%.6f,%.3f\n",
			p.Devices, p.Transmissions, p.Deliveries, p.Collisions,
			p.CollisionRate, p.DeliveryProb, p.MeanAudience); err != nil {
			return err
		}
	}
	return nil
}

// RenderDensity prints the sweep as an aligned table.
func RenderDensity(w io.Writer, points []DensityPoint) {
	fmt.Fprintf(w, "%10s %14s %12s %12s %10s %10s %9s\n",
		"devices", "transmissions", "deliveries", "collisions", "coll_rate", "del_prob", "audience")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %14d %12d %12d %9.2f%% %9.1f%% %9.2f\n",
			p.Devices, p.Transmissions, p.Deliveries, p.Collisions,
			100*p.CollisionRate, 100*p.DeliveryProb, p.MeanAudience)
	}
}
