package experiment

import (
	"fmt"
	"io"
	"time"

	"wile/internal/ble"
	"wile/internal/core"
	"wile/internal/dot11"
	"wile/internal/energy"
	"wile/internal/engine"
	"wile/internal/esp32"
	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
	"wile/internal/units"
)

// Ablations for the design choices DESIGN.md calls out. Each isolates one
// knob the paper fixes and shows why the paper's setting wins.

// --- Bitrate ablation (§5.4 fixes 72 Mb/s) ---

// BitratePoint is one rate's Wi-LE TX energy.
type BitratePoint struct {
	Rate    phy.Rate
	Airtime time.Duration
	// Energy is the TX-window energy for one standard beacon.
	Energy units.Joules
}

// RunBitrateAblation computes the Wi-LE per-message TX energy across every
// 802.11 rate for a standard temperature beacon. It shows why §5.4
// transmits at the highest rate: the PHY bits cost the same current for
// less time.
func RunBitrateAblation() ([]BitratePoint, error) {
	msg := &core.Message{DeviceID: 0x1001, Seq: 1, Readings: []core.Reading{core.Temperature(17)}}
	beacon, err := core.BuildBeacon(dot11.LocalMAC(0x1001), 6, msg, nil)
	if err != nil {
		return nil, err
	}
	raw, err := dot11.Marshal(beacon)
	if err != nil {
		return nil, err
	}
	out := engine.MapValues(Pool(), len(phy.WiFiRates), func(i int) BitratePoint {
		r := phy.WiFiRates[i]
		airtime := phy.FrameAirtime(r, len(raw))
		e := units.Energy(units.Power(esp32.Voltage, esp32.TxBurstCurrent), esp32.TxRampUp+airtime)
		return BitratePoint{Rate: r, Airtime: airtime, Energy: e}
	})
	return out, nil
}

// RenderBitrate prints the ablation.
func RenderBitrate(w io.Writer, points []BitratePoint) {
	fmt.Fprintln(w, "Ablation: Wi-LE TX energy vs injection bitrate (one temperature beacon)")
	fmt.Fprintf(w, "%-12s %10s %12s\n", "rate", "airtime", "energy")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %10s %12s\n", p.Rate.Name, p.Airtime, energy.FormatJoules(p.Energy))
	}
}

// --- Payload ablation ---

// PayloadPoint is one payload size's cost.
type PayloadPoint struct {
	PayloadBytes int
	Fragments    int
	BeaconBytes  int
	Airtime      time.Duration
	Energy       units.Joules
}

// RunPayloadAblation sweeps the message payload from a few bytes to past
// the single-element limit, exposing the fragmentation kink at 243 bytes
// and the per-message fixed cost that makes tiny payloads expensive per
// bit.
func RunPayloadAblation(sizes []int) ([]PayloadPoint, error) {
	if len(sizes) == 0 {
		for n := 4; n <= 720; n += 4 {
			sizes = append(sizes, n)
		}
	}
	return engine.Map(Pool(), len(sizes), func(i int) (PayloadPoint, error) {
		n := sizes[i]
		var readings []core.Reading
		remaining := n
		for remaining > 0 {
			chunk := remaining
			if chunk > 255 {
				chunk = 255
			}
			readings = append(readings, core.RawReading(make([]byte, chunk)))
			remaining -= chunk
		}
		msg := &core.Message{DeviceID: 1, Seq: 1, Readings: readings}
		beacon, err := core.BuildBeacon(dot11.LocalMAC(1), 6, msg, nil)
		if err != nil {
			return PayloadPoint{}, err
		}
		raw, err := dot11.Marshal(beacon)
		if err != nil {
			return PayloadPoint{}, err
		}
		airtime := phy.FrameAirtime(phy.RateHTMCS7SGI, len(raw))
		return PayloadPoint{
			PayloadBytes: n,
			Fragments:    len(beacon.Elements.Vendors(core.OUI)),
			BeaconBytes:  len(raw),
			Airtime:      airtime,
			Energy:       units.Energy(units.Power(esp32.Voltage, esp32.TxBurstCurrent), esp32.TxRampUp+airtime),
		}, nil
	})
}

// --- Listen-interval ablation (WiFi-PS idle current) ---

// ListenIntervalPoint is one listen-interval's idle current.
type ListenIntervalPoint struct {
	ListenInterval int
	IdleCurrent    units.Amps
}

// WiFiPSIdleModel computes the WiFi-PS idle current for a listen interval:
// a light-sleep floor plus the beacon-reception duty cycle. Constants are
// calibrated so LI=3 reproduces Table 1's 4.5 mA (§5.3: "the WiFi chip
// wakes up only for every third beacon").
func WiFiPSIdleModel(listenInterval int) units.Amps {
	const (
		floor        = units.Amps(1.0e-3)    // light-sleep + RTC + wake logic
		wakeWindow   = 11 * time.Millisecond // radio+MCU on around each beacon
		wakeCurrent  = units.Amps(100e-3)    // radio listening
		beaconPeriod = 102400 * time.Microsecond
	)
	duty := wakeWindow.Seconds() / (float64(listenInterval) * beaconPeriod.Seconds())
	return floor + units.Scale(wakeCurrent, duty)
}

// RunListenIntervalAblation sweeps LI 1..10.
func RunListenIntervalAblation() []ListenIntervalPoint {
	return engine.MapValues(Pool(), 10, func(i int) ListenIntervalPoint {
		li := i + 1
		return ListenIntervalPoint{ListenInterval: li, IdleCurrent: WiFiPSIdleModel(li)}
	})
}

// --- Jitter/collision study (§6) ---

// JitterPoint is one crystal-tolerance setting's outcome.
type JitterPoint struct {
	PPM float64
	// Cycles is the number of reporting cycles simulated per sensor.
	Cycles int
	// Delivered counts messages received across both sensors.
	Delivered int
	// Expected is 2×Cycles.
	Expected int
	// Collisions counts on-air collisions at the medium.
	Collisions int
	// ContendedCycles counts cycles where the two sensors' transmissions
	// landed within 5 ms of each other, forcing CSMA to arbitrate. With
	// real crystal jitter the schedules drift apart and contention decays
	// to the first few cycles — the §6 mechanism.
	ContendedCycles int
	// DeliveryRate is Delivered/Expected.
	DeliveryRate float64
}

// RunJitterStudy places two co-located sensors with identical periods and
// identical initial phase, and sweeps the crystal tolerance. §6 argues
// "their transmissions will automatically differ away from each other due
// to the jitter of their clocks"; with zero jitter only CSMA separates
// them, with real crystals the schedules drift apart entirely.
func RunJitterStudy(ppms []float64, cycles int) []JitterPoint {
	if len(ppms) == 0 {
		ppms = []float64{0, 10, 40, 100}
	}
	if cycles <= 0 {
		cycles = 200
	}
	period := 10 * time.Second
	// Each tolerance setting simulates its own world on its own kernel, so
	// the sweep shards across engine workers without the points seeing each
	// other. Seeds are per-sensor constants, not scheduling-dependent, which
	// keeps the parallel run byte-identical to the serial one.
	return engine.MapValues(Pool(), len(ppms), func(pi int) JitterPoint {
		ppm := ppms[pi]
		w := newWorld()
		for i := 0; i < 2; i++ {
			s := core.NewSensor(w.sched, w.med, core.SensorConfig{
				DeviceID: uint32(0x200 + i),
				Position: medium.Position{X: float64(i)},
				Period:   period,
				// A negative value means "no jitter at all"; zero would
				// take the 40 ppm default.
				JitterPPM: jitterOrNone(ppm),
				SkipBoot:  true,
				Seed:      uint64(31 + i),
			})
			s.Run()
		}
		scanner := core.NewScanner(w.sched, w.med, core.ScannerConfig{Position: medium.Position{X: 0.5, Y: 0.5}})
		scanner.Start()
		delivered := 0
		var arrivals []sim.Time
		scanner.OnMessage = func(m *core.Message, meta core.Meta) {
			delivered++
			arrivals = append(arrivals, meta.At)
		}
		w.sched.RunUntil(sim.FromDuration(time.Duration(cycles+1) * period))

		contended := 0
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i].Sub(arrivals[i-1]) < 5*time.Millisecond {
				contended++
			}
		}
		return JitterPoint{
			PPM:             ppm,
			Cycles:          cycles,
			Delivered:       delivered,
			Expected:        2 * cycles,
			Collisions:      w.med.Stats.Collisions,
			ContendedCycles: contended,
			DeliveryRate:    float64(delivered) / float64(2*cycles),
		}
	})
}

// --- Hidden-SSID overhead ---

// HiddenSSIDResult compares the injected beacon with hidden vs visible
// SSID (§4.1's design choice costs nothing and keeps AP lists clean).
type HiddenSSIDResult struct {
	HiddenBytes, VisibleBytes     int
	HiddenAirtime, VisibleAirtime time.Duration
}

// RunHiddenSSIDAblation measures the two variants.
func RunHiddenSSIDAblation() (*HiddenSSIDResult, error) {
	msg := &core.Message{DeviceID: 1, Seq: 1, Readings: []core.Reading{core.Temperature(17)}}
	hidden, err := core.BuildBeacon(dot11.LocalMAC(1), 6, msg, nil)
	if err != nil {
		return nil, err
	}
	rawHidden, err := dot11.Marshal(hidden)
	if err != nil {
		return nil, err
	}
	visible, err := core.BuildBeacon(dot11.LocalMAC(1), 6, msg, nil)
	if err != nil {
		return nil, err
	}
	// Swap in a 20-char SSID, the kind that would spam AP lists.
	visible.Elements[0] = dot11.SSIDElement("wile-sensor-00001001")
	rawVisible, err := dot11.Marshal(visible)
	if err != nil {
		return nil, err
	}
	return &HiddenSSIDResult{
		HiddenBytes:    len(rawHidden),
		VisibleBytes:   len(rawVisible),
		HiddenAirtime:  phy.FrameAirtime(phy.RateHTMCS7SGI, len(rawHidden)),
		VisibleAirtime: phy.FrameAirtime(phy.RateHTMCS7SGI, len(rawVisible)),
	}, nil
}

// --- Battery-life projection (motivating claim: BLE "can run on a small
// button battery for over a year") ---

// BatteryPoint is one technology's projected CR2032 life.
type BatteryPoint struct {
	Name string
	Life time.Duration
}

// RunBatteryProjection estimates coin-cell life at the given reporting
// interval from the measured Table-1 episodes.
func RunBatteryProjection(table *Table1Result, interval time.Duration) []BatteryPoint {
	scenarios := table.Scenarios()
	return engine.MapValues(Pool(), len(scenarios), func(i int) BatteryPoint {
		return BatteryPoint{
			Name: scenarios[i].Name,
			Life: scenarios[i].BatteryLife(energy.CR2032Capacity, interval),
		}
	})
}

// jitterOrNone maps the study's 0-ppm point to the sensor config's
// explicit "no jitter" sentinel.
func jitterOrNone(ppm float64) float64 {
	if ppm == 0 {
		return -1
	}
	return ppm
}

// --- Channel-count / hopper study ---

// HopperPoint is one channel-count's capture rate.
type HopperPoint struct {
	Channels    int
	Dwell       time.Duration
	Transmitted int
	Captured    int
	CaptureRate float64
}

// RunHopperStudy measures a scanning receiver's capture rate as the number
// of channels grows — the cost side of §1's 5 GHz advantage: more spectrum
// means more places for a beacon to hide from a hopping phone. One sensor
// per channel reports every second; the hopper dwells 250 ms per channel.
func RunHopperStudy(channelCounts []int) []HopperPoint {
	if len(channelCounts) == 0 {
		channelCounts = []int{1, 3, 8}
	}
	const period = time.Second
	const dwell = 250 * time.Millisecond
	const cycles = 120
	// One engine point per channel count: each builds its own kernel,
	// media, sensors and hopper, so the heaviest ablation sweeps in
	// parallel without any cross-point state.
	return engine.MapValues(Pool(), len(channelCounts), func(pi int) HopperPoint {
		n := channelCounts[pi]
		sched := sim.New()
		var scanners []*core.Scanner
		transmitted := 0
		for c := 0; c < n; c++ {
			med := medium.New(sched, phy.WiFi24Channel(1+c%13))
			s := core.NewSensor(sched, med, core.SensorConfig{
				DeviceID: uint32(0x800 + c),
				Position: medium.Position{X: 0},
				Period:   period,
				SkipBoot: true,
				Seed:     uint64(300 + c),
			})
			s.Run()
			scanners = append(scanners, core.NewScanner(sched, med, core.ScannerConfig{
				Name: "hop", Position: medium.Position{X: 1}, Seed: uint64(400 + c),
			}))
		}
		hopper := core.NewChannelHopper(sched, dwell, scanners...)
		hopper.Start()
		sched.RunUntil(sim.FromDuration(time.Duration(cycles) * period))
		hopper.Stop()
		transmitted = n * (cycles - 1)
		captured := hopper.Messages()
		return HopperPoint{
			Channels:    n,
			Dwell:       dwell,
			Transmitted: transmitted,
			Captured:    captured,
			CaptureRate: float64(captured) / float64(transmitted),
		}
	})
}

// --- Channel capacity (§6 "network of IoT devices") ---

// CapacityResult bounds how many Wi-LE devices one channel sustains.
type CapacityResult struct {
	Period        time.Duration
	BeaconAirtime time.Duration
	// PerTxAirtime includes the DCF overhead around each injection.
	PerTxAirtime time.Duration
	// MaxAt10Util is the device count at 10% channel utilization — a
	// conservative operating point that leaves CSMA effectively
	// collision-free (the 100-sensor simulation delivers >99% there).
	MaxAt10Util int
}

// RunCapacityStudy computes the airtime-limited capacity of one channel
// for a standard temperature beacon at the given reporting period.
func RunCapacityStudy(period time.Duration) (*CapacityResult, error) {
	msg := &core.Message{DeviceID: 1, Seq: 1, Readings: []core.Reading{core.Temperature(17)}}
	beacon, err := core.BuildBeacon(dot11.LocalMAC(1), 6, msg, nil)
	if err != nil {
		return nil, err
	}
	raw, err := dot11.Marshal(beacon)
	if err != nil {
		return nil, err
	}
	airtime := phy.FrameAirtime(phy.RateHTMCS7SGI, len(raw))
	t := phy.Timing(phy.RateHTMCS7SGI)
	// Average per-transmission channel occupancy: DIFS + mean backoff +
	// the frame itself.
	perTx := t.DIFS() + time.Duration(t.CWMin/2)*t.Slot + airtime
	maxDevices := func(util float64) int {
		return int(util * float64(period) / float64(perTx))
	}
	return &CapacityResult{
		Period:        period,
		BeaconAirtime: airtime,
		PerTxAirtime:  perTx,
		MaxAt10Util:   maxDevices(0.10),
	}, nil
}

// --- Goodput per joule (the "data rates comparable with BLE" claim) ---

// GoodputResult compares payload capacity and energy per delivered byte.
type GoodputResult struct {
	// WiLEPayloadPerMsg is one vendor element's application capacity.
	WiLEPayloadPerMsg int
	// WiLEMaxPerBeacon is the multi-fragment ceiling in one beacon.
	WiLEMaxPerBeacon int
	// BLEPayloadPerMsg is one advertising event's AdvData capacity.
	BLEPayloadPerMsg int
	// Energy per application byte at the respective maxima, in J/B.
	WiLEJoulesPerByte float64
	BLEJoulesPerByte  float64
}

// RunGoodputStudy quantifies §1's "obtains data rates comparable with
// Bluetooth Low Energy": at equal reporting rates Wi-LE moves ~8× more
// payload per message for near-equal energy, so its per-byte energy is
// far lower.
func RunGoodputStudy() (*GoodputResult, error) {
	// Wi-LE: a full single-fragment beacon.
	payload := make([]byte, core.FragmentCapacity-2) // minus the TLV header
	msg := &core.Message{DeviceID: 1, Seq: 1, Readings: []core.Reading{core.RawReading(payload)}}
	beacon, err := core.BuildBeacon(dot11.LocalMAC(1), 6, msg, nil)
	if err != nil {
		return nil, err
	}
	raw, err := dot11.Marshal(beacon)
	if err != nil {
		return nil, err
	}
	airtime := phy.FrameAirtime(phy.RateHTMCS7SGI, len(raw))
	wileEnergy := units.Energy(units.Power(esp32.Voltage, esp32.TxBurstCurrent), esp32.TxRampUp+airtime)

	bleEnergy := ble.ConnectionEventEnergy()
	return &GoodputResult{
		WiLEPayloadPerMsg: len(payload),
		WiLEMaxPerBeacon:  core.MaxPayload,
		BLEPayloadPerMsg:  ble.MaxAdvData,
		WiLEJoulesPerByte: float64(wileEnergy) / float64(len(payload)),
		BLEJoulesPerByte:  float64(bleEnergy) / float64(ble.MaxAdvData),
	}, nil
}

// --- Interference study (§1's "increasingly crowded 2.4 GHz spectrum") ---

// InterferencePoint is one channel-occupancy level's outcome.
type InterferencePoint struct {
	// Duty is the interferer's channel occupancy (0..1).
	Duty float64
	// DeliveryRate is delivered/expected for the Wi-LE sensor.
	DeliveryRate float64
	// MeanDelay is the average extra latency CSMA deferral added to each
	// delivered message, relative to the clean-channel baseline (which
	// absorbs the sensor's own scheduling drift).
	MeanDelay time.Duration
	// Collisions counts on-air corruption events.
	Collisions int
}

// RunInterferenceStudy shares the sensor's channel with a non-CSMA
// interferer (think microwave oven or a saturating neighbor) at several
// duty cycles. Wi-LE's beacons are so short that CSMA keeps delivery
// near-complete even on a heavily occupied channel — the cost shows up as
// deferral delay, not loss.
func RunInterferenceStudy(duties []float64) []InterferencePoint {
	if len(duties) == 0 {
		duties = []float64{0, 0.25, 0.5, 0.8}
	}
	const (
		period      = time.Second
		cycles      = 100
		burstPeriod = 10 * time.Millisecond
	)
	run := func(duty float64) InterferencePoint {
		w := newWorld()
		sensor := core.NewSensor(w.sched, w.med, core.SensorConfig{
			DeviceID: 0x4e, Position: medium.Position{X: 0},
			Period: period, JitterPPM: -1, SkipBoot: true, Seed: 41,
		})
		scanner := core.NewScanner(w.sched, w.med, core.ScannerConfig{Position: medium.Position{X: 2}})
		scanner.Start()
		var totalDelay time.Duration
		delivered := 0
		scanner.OnMessage = func(m *core.Message, meta core.Meta) {
			delivered++
			expected := sim.FromDuration(time.Duration(m.Seq+1) * period)
			totalDelay += meta.At.Sub(expected)
		}

		if duty > 0 {
			// The interferer transmits fixed junk bursts without carrier
			// sensing; burst length sets the duty cycle.
			jam := w.med.Attach("interferer", medium.Position{X: 1}, phy.DBm(10), phy.SensitivityWiFi1M)
			jam.SetOn(true)
			// DSSS-1 airtime: 192 µs preamble + 8 µs/byte.
			burstAir := time.Duration(duty * float64(burstPeriod))
			junkBytes := int((burstAir - 192*time.Microsecond) / (8 * time.Microsecond))
			if junkBytes < 1 {
				junkBytes = 1
			}
			junk := make([]byte, junkBytes)
			var tick func()
			tick = func() {
				w.med.Transmit(jam, junk, phy.RateDSSS1)
				w.sched.DoAfter(burstPeriod, tick)
			}
			w.sched.DoAfter(burstPeriod, tick)
		}

		sensor.Run()
		w.sched.RunUntil(sim.FromDuration(time.Duration(cycles) * period))
		sensor.Stop()

		point := InterferencePoint{Duty: duty, Collisions: w.med.Stats.Collisions}
		expected := cycles - 1
		point.DeliveryRate = float64(delivered) / float64(expected)
		if delivered > 0 {
			point.MeanDelay = totalDelay / time.Duration(delivered)
		}
		return point
	}
	// The clean-channel baseline is shared by every point, so it runs once
	// up front; the duty sweep then shards. run builds a fresh world per
	// call, so concurrent points never touch the same kernel.
	baseline := run(0).MeanDelay
	return engine.MapValues(Pool(), len(duties), func(i int) InterferencePoint {
		p := run(duties[i])
		p.MeanDelay -= baseline
		if p.MeanDelay < 0 {
			p.MeanDelay = 0
		}
		return p
	})
}

// --- Carrier-frame ablation (why beacons, §4) ---

// CarrierPoint describes one candidate carrier frame for the same payload.
type CarrierPoint struct {
	Carrier string
	// Receivable notes whether a stock (non-monitor-mode) receiver's MAC
	// delivers the frame to software — the property §4 pivots on.
	Receivable string
	Bytes      int
	Airtime    time.Duration
	Energy     units.Joules
}

// RunCarrierAblation compares the three plausible connection-less carrier
// frames for one temperature reading: the beacon the paper chooses, a
// probe request (some deployed systems smuggle data there), and a
// vendor-specific Action frame. Airtime differences are negligible — the
// beacon wins on receivability, not efficiency.
func RunCarrierAblation() ([]CarrierPoint, error) {
	msg := &core.Message{DeviceID: 0x1001, Seq: 1, Readings: []core.Reading{core.Temperature(17)}}
	frags, err := msg.Encode(nil)
	if err != nil {
		return nil, err
	}
	payload := frags[0]
	from := dot11.LocalMAC(0x1001)

	cost := func(f dot11.Frame) (int, time.Duration, units.Joules, error) {
		raw, err := dot11.Marshal(f)
		if err != nil {
			return 0, 0, 0, err
		}
		at := phy.FrameAirtime(phy.RateHTMCS7SGI, len(raw))
		e := units.Energy(units.Power(esp32.Voltage, esp32.TxBurstCurrent), esp32.TxRampUp+at)
		return len(raw), at, e, nil
	}

	beacon, err := core.BuildBeacon(from, 6, msg, nil)
	if err != nil {
		return nil, err
	}
	ve, err := dot11.VendorElement(core.OUI, payload)
	if err != nil {
		return nil, err
	}
	probe := &dot11.ProbeReq{Elements: dot11.Elements{dot11.SSIDElement(""), ve}}
	probe.Header.Addr1 = dot11.Broadcast
	probe.Header.Addr2 = from
	probe.Header.Addr3 = dot11.Broadcast
	action := dot11.NewVendorAction(from, core.OUI, payload)

	out := make([]CarrierPoint, 0, 3)
	for _, c := range []struct {
		name, rx string
		f        dot11.Frame
	}{
		{"beacon (paper)", "yes: scan results on every OS", beacon},
		{"probe request", "APs only (stations ignore)", probe},
		{"action frame", "no: dropped without monitor mode", action},
	} {
		n, at, e, err := cost(c.f)
		if err != nil {
			return nil, err
		}
		out = append(out, CarrierPoint{Carrier: c.name, Receivable: c.rx, Bytes: n, Airtime: at, Energy: e})
	}
	return out, nil
}
