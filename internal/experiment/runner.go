package experiment

import (
	"sync/atomic"

	"wile/internal/engine"
	"wile/internal/obs"
)

// pool is the engine every sweep in this package submits through. It
// defaults to one worker per CPU; SetPool pins it for benchmarks and the
// determinism tests. Access is atomic so sweeps running concurrently with
// a SetPool observe one pool or the other, never a torn value.
var pool atomic.Pointer[engine.Pool]

func init() { pool.Store(engine.New(0)) }

// Pool reports the engine sweeps currently submit through.
func Pool() *engine.Pool { return pool.Load() }

// SetPool replaces the sweep engine and returns the previous one, so
// callers can restore it:
//
//	defer experiment.SetPool(experiment.SetPool(engine.Serial()))
//
// The determinism contract (see package engine) guarantees results do not
// depend on the pool in use — only wall-clock time does.
func SetPool(p *engine.Pool) *engine.Pool {
	if reg := registry.Load(); reg != nil && p != nil {
		p.Observe(engine.NewMetrics(reg))
	}
	return pool.Swap(p)
}

// registry is the package's optional metrics sink. nil (the default) keeps
// every experiment on the zero-cost disabled path.
var registry atomic.Pointer[obs.Registry]

// Metrics reports the registry experiments currently snapshot into, or nil.
func Metrics() *obs.Registry { return registry.Load() }

// SetMetrics installs (or, with nil, removes) the metrics registry and
// returns the previous one, mirroring SetPool. The current pool's engine
// metrics are rewired to the new registry.
func SetMetrics(reg *obs.Registry) *obs.Registry {
	prev := registry.Swap(reg)
	if p := pool.Load(); p != nil {
		if reg != nil {
			p.Observe(engine.NewMetrics(reg))
		} else {
			p.Observe(nil)
		}
	}
	return prev
}
