package experiment

import (
	"sync/atomic"

	"wile/internal/engine"
)

// pool is the engine every sweep in this package submits through. It
// defaults to one worker per CPU; SetPool pins it for benchmarks and the
// determinism tests. Access is atomic so sweeps running concurrently with
// a SetPool observe one pool or the other, never a torn value.
var pool atomic.Pointer[engine.Pool]

func init() { pool.Store(engine.New(0)) }

// Pool reports the engine sweeps currently submit through.
func Pool() *engine.Pool { return pool.Load() }

// SetPool replaces the sweep engine and returns the previous one, so
// callers can restore it:
//
//	defer experiment.SetPool(experiment.SetPool(engine.Serial()))
//
// The determinism contract (see package engine) guarantees results do not
// depend on the pool in use — only wall-clock time does.
func SetPool(p *engine.Pool) *engine.Pool { return pool.Swap(p) }
