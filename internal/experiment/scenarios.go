// Package experiment reproduces every table and figure in the paper's
// evaluation (§5): the Figure 3 current traces, Table 1's energy-per-packet
// and idle-current comparison, Figure 4's average-power sweep, the §3.1
// frame-count claims, and the ablations DESIGN.md calls out.
//
// Every experiment builds its own fresh simulation world with fixed seeds,
// so results are bit-identical run to run. Nothing here hardcodes a paper
// number: each value is measured from the simulated device's waveform and
// then *compared* against the paper in EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"time"

	"wile/internal/ap"
	"wile/internal/ble"
	"wile/internal/core"
	"wile/internal/dot11"
	"wile/internal/energy"
	"wile/internal/esp32"
	"wile/internal/medium"
	"wile/internal/netstack"
	"wile/internal/phy"
	"wile/internal/sim"
	"wile/internal/sta"
	"wile/internal/units"
)

// Standard testbed layout, mirroring §5.1: one AP, one device a few
// meters away, a monitor-mode receiver in between.
var (
	apPos     = medium.Position{X: 0, Y: 0}
	devicePos = medium.Position{X: 3, Y: 0}
)

const (
	testSSID       = "google-wifi"
	testPassphrase = "correct horse battery staple"
)

// world bundles one experiment's simulation.
type world struct {
	sched *sim.Scheduler
	med   *medium.Medium
}

func newWorld() *world {
	s := sim.New()
	return &world{sched: s, med: medium.New(s, phy.WiFi24Channel(6))}
}

func (w *world) newAP() *ap.AP {
	a := ap.New(w.sched, w.med, ap.Config{
		SSID:       testSSID,
		Passphrase: testPassphrase,
		BSSID:      dot11.MustParseMAC("aa:bb:cc:00:00:01"),
		Channel:    6,
		IP:         netstack.MustParseIP("192.168.86.1"),
		Position:   apPos,
	})
	a.Start()
	return a
}

func (w *world) newStation() *sta.Station {
	return sta.New(w.sched, w.med, sta.Config{
		SSID:       testSSID,
		Passphrase: testPassphrase,
		Addr:       dot11.MustParseMAC("02:57:00:00:00:01"),
		Position:   devicePos,
	})
}

// Episode is one measured transmission episode.
type Episode struct {
	// Energy is the episode's energy above the idle floor.
	Energy units.Joules
	// Duration is how long the device was out of its idle state.
	Duration time.Duration
	// IdleCurrent is the between-episodes current.
	IdleCurrent units.Amps
	// Voltage is the rail voltage.
	Voltage units.Volts
}

// Scenario converts the measurement into the Equation-1 form.
func (e Episode) Scenario(name string) energy.Scenario {
	return energy.Scenario{
		Name:            name,
		EnergyPerPacket: e.Energy,
		TxDuration:      e.Duration,
		IdleCurrent:     e.IdleCurrent,
		Voltage:         e.Voltage,
	}
}

// MeasureWiLE runs one Wi-LE wake cycle and returns the Table-1 episode:
// per §5.4 the energy counts only the radio-on transmit window ("we
// consider only the time required to transmit the packet"), while Duration
// covers the whole wake for Equation 1. The full-cycle (as-prototyped)
// energy is returned separately.
func MeasureWiLE() (episode Episode, fullCycle units.Joules, err error) {
	w := newWorld()
	sensor := core.NewSensor(w.sched, w.med, core.SensorConfig{DeviceID: 0x1001, Position: devicePos})
	scanner := core.NewScanner(w.sched, w.med, core.ScannerConfig{Position: apPos})
	scanner.Start()
	received := false
	scanner.OnMessage = func(*core.Message, core.Meta) { received = true }

	start := w.sched.Now()
	var txOK *bool
	sensor.TransmitOnce([]core.Reading{core.Temperature(17.0)}, func(ok bool) { txOK = &ok })
	w.sched.RunUntil(2 * sim.Second)
	if txOK == nil || !*txOK {
		return Episode{}, 0, fmt.Errorf("experiment: Wi-LE transmission did not complete")
	}
	if !received {
		return Episode{}, 0, fmt.Errorf("experiment: Wi-LE beacon not received by monitor")
	}

	// TX-window energy: charge drawn at the TX burst current.
	var txCharge units.Coulombs
	var wakeEnd sim.Time
	steps := sensor.Dev.Steps()
	for i, s := range steps {
		end := w.sched.Now()
		if i+1 < len(steps) {
			end = steps[i+1].At
		}
		if s.Current == esp32.TxBurstCurrent {
			txCharge += units.Charge(s.Current, end.Sub(s.At))
		}
		if s.Current > esp32.StateCurrent(esp32.StateDeepSleep) {
			wakeEnd = end
		}
	}
	fullCycle = sensor.Dev.Energy()
	return Episode{
		Energy:      txCharge.Energy(esp32.Voltage),
		Duration:    wakeEnd.Sub(start),
		IdleCurrent: esp32.StateCurrent(esp32.StateDeepSleep),
		Voltage:     esp32.Voltage,
	}, fullCycle, nil
}

// MeasureBLE returns the CC2541 baseline episode (§5.4: the TI report's
// connection-event integral).
func MeasureBLE() (Episode, error) {
	// Verify the analytic value against a simulated device run.
	s := sim.New()
	dev := ble.NewDevice(s)
	dev.PlayConnectionEvent(nil)
	s.Run()
	simulated := dev.Energy()
	analytic := ble.ConnectionEventEnergy()
	if diff := simulated - analytic; diff > units.Scale(analytic, 0.01) || diff < units.Scale(analytic, -0.01) {
		return Episode{}, fmt.Errorf("experiment: BLE device/analytic mismatch: %v vs %v", simulated, analytic)
	}
	return Episode{
		Energy:      simulated,
		Duration:    ble.ConnectionEventDuration(),
		IdleCurrent: ble.CC2541SleepCurrent,
		Voltage:     ble.CC2541Voltage,
	}, nil
}

// MeasureWiFiDC runs the full §5.3 duty-cycle episode (Figure 3a): wake
// from deep sleep, boot, rejoin, one datagram, deep sleep.
func MeasureWiFiDC() (Episode, error) {
	w := newWorld()
	w.newAP()
	station := w.newStation()
	dev := station.Dev

	start := w.sched.Now()
	var joinErr error
	var txOK *bool
	dev.SetState(esp32.StateCPUActive)
	dev.PlaySegments(esp32.BootWiFi(), func() {
		station.Join(func(err error) {
			if err != nil {
				joinErr = err
				return
			}
			if err := station.SendReading([]byte("temp=17.0"), 5683, func(ok bool) {
				txOK = &ok
				station.Sleep()
			}); err != nil {
				joinErr = err
			}
		})
	})
	w.sched.RunUntil(5 * sim.Second)
	if joinErr != nil {
		return Episode{}, fmt.Errorf("experiment: WiFi-DC join: %w", joinErr)
	}
	if txOK == nil || !*txOK {
		return Episode{}, fmt.Errorf("experiment: WiFi-DC transmission did not complete")
	}

	var wakeEnd sim.Time
	steps := dev.Steps()
	for i, s := range steps {
		end := w.sched.Now()
		if i+1 < len(steps) {
			end = steps[i+1].At
		}
		if s.Current > esp32.StateCurrent(esp32.StateDeepSleep) {
			wakeEnd = end
		}
	}
	duration := wakeEnd.Sub(start)
	idle := esp32.StateCurrent(esp32.StateDeepSleep)
	total := dev.Energy()
	// Subtract the deep-sleep floor outside the episode (negligible, but
	// keep the arithmetic honest).
	sleep := units.Energy(units.Power(esp32.Voltage, idle), w.sched.Now().Sub(start)-duration)
	return Episode{
		Energy:      total - sleep,
		Duration:    duration,
		IdleCurrent: idle,
		Voltage:     esp32.Voltage,
	}, nil
}

// MeasureWiFiPS joins once, enters aggressive power save, and measures one
// transmit episode above the PS idle floor (§5.3 WiFi-PS).
func MeasureWiFiPS() (Episode, error) {
	w := newWorld()
	w.newAP()
	station := w.newStation()

	var joinErr error
	joined := false
	station.Dev.SetState(esp32.StateCPUActive)
	station.Join(func(err error) { joinErr = err; joined = err == nil })
	w.sched.RunUntil(5 * sim.Second)
	if joinErr != nil || !joined {
		return Episode{}, fmt.Errorf("experiment: WiFi-PS join: %v", joinErr)
	}
	psEntered := false
	if err := station.EnterPowerSave(func(ok bool) { psEntered = ok }); err != nil {
		return Episode{}, fmt.Errorf("experiment: power-save entry: %w", err)
	}
	w.sched.RunFor(time.Second)
	if !psEntered {
		return Episode{}, fmt.Errorf("experiment: power-save entry failed")
	}

	before := station.Dev.Energy()
	start := w.sched.Now()
	var txOK *bool
	if err := station.SendReadingPS([]byte("temp=17.0"), 5683, func(ok bool) { txOK = &ok }); err != nil {
		return Episode{}, err
	}
	w.sched.RunFor(time.Second)
	if txOK == nil || !*txOK {
		return Episode{}, fmt.Errorf("experiment: WiFi-PS transmission did not complete")
	}
	idle := esp32.StateCurrent(esp32.StateWiFiPSIdle)
	elapsed := w.sched.Now().Sub(start)
	episode := station.Dev.Energy() - before - units.Energy(units.Power(esp32.Voltage, idle), elapsed)
	// Episode duration: wake CPU + listen + transmission, from the
	// station's timing configuration.
	dur := station.Cfg.Timing.PSWakeCPU + station.Cfg.Timing.PSWakeListen + 5*time.Millisecond
	return Episode{
		Energy:      episode,
		Duration:    dur,
		IdleCurrent: idle,
		Voltage:     esp32.Voltage,
	}, nil
}

// MeasureWiFiDCFast runs the cached-lease variant of the duty-cycle
// episode: the first wake performs a full join and stores the lease; the
// measured wake reuses it, skipping the DHCP/ARP phase entirely. One of
// the §1 "several different approaches to reducing overall power
// consumption" the paper's in-depth study motivates.
func MeasureWiFiDCFast() (Episode, error) {
	w := newWorld()
	w.newAP()
	station := w.newStation()
	dev := station.Dev

	// Cycle 1: full join to obtain the lease (not measured).
	var firstErr error
	dev.SetState(esp32.StateCPUActive)
	station.Join(func(err error) { firstErr = err })
	w.sched.RunUntil(5 * sim.Second)
	if firstErr != nil || !station.Joined() {
		return Episode{}, fmt.Errorf("experiment: priming join: %v", firstErr)
	}
	lease := station.CurrentLease()
	station.Cfg.CachedLease = lease
	station.Sleep()
	w.sched.RunFor(time.Second)

	// Cycle 2: measured fast rejoin.
	start := w.sched.Now()
	before := dev.Energy()
	var joinErr error
	var txOK *bool
	dev.SetState(esp32.StateCPUActive)
	dev.PlaySegments(esp32.BootWiFi(), func() {
		station.Join(func(err error) {
			if err != nil {
				joinErr = err
				return
			}
			if err := station.SendReading([]byte("temp=17.0"), 5683, func(ok bool) {
				txOK = &ok
				station.Sleep()
			}); err != nil {
				joinErr = err
			}
		})
	})
	w.sched.RunUntil(start + 5*sim.Second)
	if joinErr != nil {
		return Episode{}, fmt.Errorf("experiment: fast rejoin: %w", joinErr)
	}
	if txOK == nil || !*txOK {
		return Episode{}, fmt.Errorf("experiment: fast-rejoin transmission incomplete")
	}

	var wakeEnd sim.Time
	steps := dev.Steps()
	for i, s := range steps {
		if s.At < start {
			continue
		}
		end := w.sched.Now()
		if i+1 < len(steps) {
			end = steps[i+1].At
		}
		if s.Current > esp32.StateCurrent(esp32.StateDeepSleep) {
			wakeEnd = end
		}
	}
	duration := wakeEnd.Sub(start)
	idle := esp32.StateCurrent(esp32.StateDeepSleep)
	episode := dev.Energy() - before - units.Energy(units.Power(esp32.Voltage, idle), w.sched.Now().Sub(start)-duration)
	return Episode{
		Energy:      episode,
		Duration:    duration,
		IdleCurrent: idle,
		Voltage:     esp32.Voltage,
	}, nil
}
