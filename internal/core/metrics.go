package core

import "wile/internal/obs"

// Registry mirrors of the protocol-level Stats structs, following the
// mac.PortMetrics pattern: one metrics struct is shared by every component
// wired to the same registry, so the registry carries the fleet aggregate
// (delivery and duplicate rates across a whole deployment) while the
// per-component Stats keep the local breakdown.

// SensorMetrics mirrors SensorStats into an obs.Registry.
type SensorMetrics struct {
	Messages  *obs.Counter
	Fragments *obs.Counter
	Downlinks *obs.Counter
}

// SensorMetricsFor returns the registry's shared transmitter counters,
// registering them on first use.
func SensorMetricsFor(reg *obs.Registry) *SensorMetrics {
	return &SensorMetrics{
		Messages:  reg.Counter("wile.tx_messages"),
		Fragments: reg.Counter("wile.tx_fragments"),
		Downlinks: reg.Counter("wile.rx_downlinks"),
	}
}

// ScannerMetrics mirrors ScannerStats into an obs.Registry.
type ScannerMetrics struct {
	BeaconsSeen    *obs.Counter
	OtherBeacons   *obs.Counter
	Messages       *obs.Counter
	Duplicates     *obs.Counter
	DecodeErrors   *obs.Counter
	EncryptedDrops *obs.Counter
}

// ScannerMetricsFor returns the registry's shared receiver counters,
// registering them on first use.
func ScannerMetricsFor(reg *obs.Registry) *ScannerMetrics {
	return &ScannerMetrics{
		BeaconsSeen:    reg.Counter("wile.beacons_seen"),
		OtherBeacons:   reg.Counter("wile.other_beacons"),
		Messages:       reg.Counter("wile.rx_messages"),
		Duplicates:     reg.Counter("wile.rx_duplicates"),
		DecodeErrors:   reg.Counter("wile.decode_errors"),
		EncryptedDrops: reg.Counter("wile.encrypted_drops"),
	}
}

// ReliableMetrics mirrors ReliableStats into an obs.Registry.
type ReliableMetrics struct {
	Queued        *obs.Counter
	Delivered     *obs.Counter
	Retransmitted *obs.Counter
	GivenUp       *obs.Counter
}

// ReliableMetricsFor returns the registry's shared reliability counters,
// registering them on first use.
func ReliableMetricsFor(reg *obs.Registry) *ReliableMetrics {
	return &ReliableMetrics{
		Queued:        reg.Counter("wile.reliable_queued"),
		Delivered:     reg.Counter("wile.reliable_delivered"),
		Retransmitted: reg.Counter("wile.reliable_retransmitted"),
		GivenUp:       reg.Counter("wile.reliable_given_up"),
	}
}
