package core

import (
	"fmt"

	"wile/internal/dot11"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
)

// Two-way extension (§6): "an IoT device that utilizes Wi-LE can indicate
// in some beacon frames that it will be ready to receive packets for a
// short time slot after the current beacon. This way the waiting period
// will be limited to the time slots specified by the IoT device and
// therefore the power consumption is reduced significantly."
//
// Responder is the base-station half: it watches for uplink messages whose
// RxWindow flag is set, and when it holds queued data for that device it
// immediately injects a downlink beacon into the announced window. The
// downlink message reuses the uplink's sequence number so the device can
// pair response to request.

// Responder answers Wi-LE devices inside their announced receive windows.
type Responder struct {
	Port *mac.Port
	// Keys supplies per-device keys for sealed downlinks (nil entries and
	// a nil map mean plaintext).
	Keys map[uint32]*Key
	// AutoAck answers every announced window with an acknowledgment
	// echoing the uplink's sequence number even when nothing is queued —
	// the base-station half of the ReliableSensor protocol.
	AutoAck bool
	// Stats accumulates counters.
	Stats ResponderStats

	sched   *sim.Scheduler
	channel int
	pending map[uint32][]Reading
}

// ResponderStats counts responder events.
type ResponderStats struct {
	WindowsSeen int
	Responses   int
}

// NewResponder attaches a base-station responder to the medium.
func NewResponder(sched *sim.Scheduler, med *medium.Medium, name string, pos medium.Position, channel int) *Responder {
	r := &Responder{
		sched:   sched,
		channel: channel,
		pending: make(map[uint32][]Reading),
	}
	r.Port = mac.New(sched, med, name, pos,
		dot11.MustParseMAC("02:0b:0a:0e:0d:0c"), phy.RateHTMCS7SGI, 0,
		phy.SensitivityWiFiMCS7, sim.NewRand(0xd0))
	r.Port.AutoACK = false
	r.Port.Monitor = r.handleFrame
	r.Port.SetRadioOn(true)
	return r
}

// Queue stores readings to deliver to the device at its next window.
func (r *Responder) Queue(deviceID uint32, readings []Reading) {
	r.pending[deviceID] = readings
}

// PendingFor reports whether data is queued for a device.
func (r *Responder) PendingFor(deviceID uint32) bool {
	_, ok := r.pending[deviceID]
	return ok
}

func (r *Responder) handleFrame(f dot11.Frame, rx medium.Reception) {
	beacon, ok := f.(*dot11.Beacon)
	if !ok {
		return
	}
	keyFor := func(id uint32) *Key { return r.Keys[id] }
	msg, err := DecodeBeacon(beacon, keyFor)
	if err != nil || msg.Downlink || msg.RxWindow == 0 {
		return
	}
	r.Stats.WindowsSeen++
	readings, queued := r.pending[msg.DeviceID]
	if !queued {
		if !r.AutoAck {
			return
		}
		readings = []Reading{Counter(uint32(msg.Seq))} // bare receipt
	}
	delete(r.pending, msg.DeviceID)
	resp := &Message{
		DeviceID: msg.DeviceID,
		Seq:      msg.Seq,
		Readings: readings,
		Downlink: true,
	}
	down, err := BuildBeacon(r.Port.Addr, r.channel, resp, r.Keys[msg.DeviceID])
	if err != nil {
		return
	}
	r.Stats.Responses++
	// Inject immediately: the device's window is only tens of ms wide.
	if err := r.Port.Send(down, nil); err != nil {
		panic(fmt.Sprintf("core: sending downlink: %v", err))
	}
}
