package core

import (
	"errors"
	"fmt"
	"sort"

	"wile/internal/dot11"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// Scanner is the receiving side of Wi-LE: "a simple Android or iOS
// application or other software running on a host can retrieve the
// sensor's data. This application looks for special beacon frames
// transmitted by IoT devices and extracts their data" (§4).
//
// Because the carrier frame is a beacon, the receiver needs no monitor
// mode, no rooting, and no association: the MAC forwards every beacon up.
// In the simulation the scanner's port runs with a monitor callback, which
// is also exactly how the paper's own evaluation receives ("the AP (i.e.
// another WiFi card) is in the monitor mode to receive and verify these
// beacon frames", §5.3).

// Meta describes how a message arrived.
type Meta struct {
	// RSSI is the received signal strength.
	RSSI phy.DBm
	// At is the reception time.
	At sim.Time
	// BSSID is the injected beacon's (device-derived) BSSID.
	BSSID dot11.MAC
}

// DeviceRecord aggregates everything a scanner knows about one device.
type DeviceRecord struct {
	DeviceID uint32
	// Messages counts distinct messages received (after dedup).
	Messages int
	// Duplicates counts re-receptions of already-seen sequence numbers.
	Duplicates int
	// Lost estimates missed messages from sequence-number gaps.
	Lost int
	// LastSeq is the newest sequence number seen.
	LastSeq uint16
	// LastSeen is the time of the newest message.
	LastSeen sim.Time
	// LastRSSI is the newest signal strength.
	LastRSSI phy.DBm
	// Last is the newest message.
	Last *Message
}

// ScannerConfig parameterizes a receiver.
type ScannerConfig struct {
	Name     string
	Position medium.Position
	// Keys maps device IDs to their pre-shared keys; DefaultKey applies
	// to devices not in the map. Unencrypted messages need neither.
	Keys       map[uint32]*Key
	DefaultKey *Key
	// AcceptDownlink includes base-station→device messages (normally only
	// devices care about those).
	AcceptDownlink bool
	Seed           uint64
}

// Scanner receives and decodes Wi-LE messages.
type Scanner struct {
	Cfg  ScannerConfig
	Port *mac.Port
	// OnMessage fires for every new (deduplicated) message.
	OnMessage func(*Message, Meta)
	// Stats accumulates receiver-side counters.
	Stats ScannerStats
	// Metrics, when non-nil, mirrors the Stats counters into a shared
	// metrics registry (see ScannerMetricsFor / Observe).
	Metrics *ScannerMetrics

	devices map[uint32]*DeviceRecord
}

// ScannerStats counts receiver events.
type ScannerStats struct {
	BeaconsSeen    int // beacons carrying our OUI
	OtherBeacons   int // foreign beacons (real APs)
	Messages       int
	Duplicates     int
	DecodeErrors   int
	EncryptedDrops int // encrypted messages with no/ wrong key
}

// NewScanner attaches a receiver to the medium. Phones listen with ~0 dBm
// transmit irrelevance; the receive sensitivity matches the injection MCS.
func NewScanner(sched *sim.Scheduler, med *medium.Medium, cfg ScannerConfig) *Scanner {
	if cfg.Name == "" {
		cfg.Name = "scanner"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5ca9
	}
	sc := &Scanner{
		Cfg:     cfg,
		devices: make(map[uint32]*DeviceRecord),
	}
	sc.Port = mac.New(sched, med, cfg.Name, cfg.Position,
		dot11.MustParseMAC("02:0a:0b:0c:0d:0e"), phy.RateHTMCS7SGI, 0,
		phy.SensitivityWiFiMCS7, sim.NewRand(cfg.Seed))
	sc.Port.AutoACK = false
	sc.Port.Monitor = sc.handleFrame
	// handleFrame copies everything it keeps (Reassemble and the device
	// records hold no references into the beacon), so the scanner can hand
	// frames straight back to the decode pool.
	sc.Port.ReleaseAfterMonitor = true
	// The scanner owns the decoded-frame provenance outcomes: the Wi-LE
	// pipeline, not the 802.11 duplicate cache, decides what counts as
	// filtered (core sequence dedup) or undecodable (bad key / auth).
	sc.Port.ProvDelegate = true
	return sc
}

// resolve records rx's terminal provenance outcome at this scanner. The
// medium already resolved collided receptions, and a nil ledger means
// provenance is off.
func (sc *Scanner) resolve(rx medium.Reception, reason obs.DropReason) {
	if rx.Collided {
		return
	}
	if pr, id := sc.Port.Provenance(); pr != nil {
		pr.Resolve(rx.Frame, id, rx.End, reason)
	}
}

// TraceTo attaches the scanner's MAC to a trace recorder. Passing a nil
// recorder detaches.
func (sc *Scanner) TraceTo(r *obs.Recorder) {
	if r == nil {
		sc.Port.TraceTo(nil, 0)
		return
	}
	sc.Port.TraceTo(r, r.Track(sc.Cfg.Name+" mac"))
}

// Observe mirrors the scanner's MAC and protocol counters into the registry.
func (sc *Scanner) Observe(reg *obs.Registry) {
	sc.Port.Metrics = mac.MetricsFor(reg)
	sc.Metrics = ScannerMetricsFor(reg)
}

// Start powers the receiver on.
func (sc *Scanner) Start() { sc.Port.SetRadioOn(true) }

// Stop powers the receiver off.
func (sc *Scanner) Stop() { sc.Port.SetRadioOn(false) }

// keyFor selects the key for a device.
func (sc *Scanner) keyFor(deviceID uint32) *Key {
	if k, ok := sc.Cfg.Keys[deviceID]; ok {
		return k
	}
	return sc.Cfg.DefaultKey
}

// DecodeBeacon extracts a Wi-LE message from a beacon, or an error if the
// beacon carries none (or it fails authentication). keyFor may be nil for
// plaintext-only deployments.
func DecodeBeacon(b *dot11.Beacon, keyFor func(deviceID uint32) *Key) (*Message, error) {
	payloads := b.Elements.Vendors(OUI)
	if len(payloads) == 0 {
		return nil, ErrNotWiLE
	}
	frags := make([]*FragmentHeader, 0, len(payloads))
	for _, p := range payloads {
		h, err := ParseFragment(p)
		if err != nil {
			return nil, err
		}
		frags = append(frags, h)
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].Index < frags[j].Index })
	var key *Key
	if keyFor != nil {
		key = keyFor(frags[0].DeviceID)
	}
	return Reassemble(frags, key)
}

// ErrNotWiLE marks a beacon without Wi-LE vendor elements.
var ErrNotWiLE = errors.New("core: beacon carries no Wi-LE elements")

// handleFrame processes every decodable frame the radio hears. As the
// port's ProvDelegate owner it resolves every decoded frame to exactly one
// provenance outcome: frames the Wi-LE pipeline rejects for corruption-like
// reasons (bad key, auth failure, malformed fragments) are decode errors,
// core sequence dedup is dedup_filtered, everything else the radio decoded
// — including foreign traffic — counts as delivered.
func (sc *Scanner) handleFrame(f dot11.Frame, rx medium.Reception) {
	beacon, ok := f.(*dot11.Beacon)
	if !ok {
		sc.resolve(rx, obs.Delivered)
		return
	}
	msg, err := DecodeBeacon(beacon, sc.keyFor)
	switch {
	case errors.Is(err, ErrNotWiLE):
		sc.Stats.OtherBeacons++
		if sc.Metrics != nil {
			sc.Metrics.OtherBeacons.Inc()
		}
		sc.resolve(rx, obs.Delivered)
		return
	case errors.Is(err, ErrNoKey), errors.Is(err, ErrAuth):
		sc.Stats.BeaconsSeen++
		sc.Stats.EncryptedDrops++
		if sc.Metrics != nil {
			sc.Metrics.BeaconsSeen.Inc()
			sc.Metrics.EncryptedDrops.Inc()
		}
		sc.resolve(rx, obs.DropDecodeError)
		return
	case err != nil:
		sc.Stats.BeaconsSeen++
		sc.Stats.DecodeErrors++
		if sc.Metrics != nil {
			sc.Metrics.BeaconsSeen.Inc()
			sc.Metrics.DecodeErrors.Inc()
		}
		sc.resolve(rx, obs.DropDecodeError)
		return
	}
	sc.Stats.BeaconsSeen++
	if sc.Metrics != nil {
		sc.Metrics.BeaconsSeen.Inc()
	}
	if msg.Downlink && !sc.Cfg.AcceptDownlink {
		sc.resolve(rx, obs.Delivered)
		return
	}
	rec, known := sc.devices[msg.DeviceID]
	if !known {
		rec = &DeviceRecord{DeviceID: msg.DeviceID}
		sc.devices[msg.DeviceID] = rec
	}
	if known && msg.Seq == rec.LastSeq {
		rec.Duplicates++
		sc.Stats.Duplicates++
		if sc.Metrics != nil {
			sc.Metrics.Duplicates.Inc()
		}
		sc.resolve(rx, obs.DropDedupFiltered)
		return
	}
	sc.resolve(rx, obs.Delivered)
	if known {
		// Sequence gap = missed messages (modulo wraparound).
		gap := int(uint16(msg.Seq - rec.LastSeq))
		if gap > 1 && gap < 0x8000 {
			rec.Lost += gap - 1
		}
	}
	rec.Messages++
	rec.LastSeq = msg.Seq
	rec.LastSeen = rx.End
	rec.LastRSSI = rx.RSSI
	rec.Last = msg
	sc.Stats.Messages++
	if sc.Metrics != nil {
		sc.Metrics.Messages.Inc()
	}
	if sc.OnMessage != nil {
		sc.OnMessage(msg, Meta{RSSI: rx.RSSI, At: rx.End, BSSID: beacon.BSSID()})
	}
}

// Device reports the record for one device.
func (sc *Scanner) Device(deviceID uint32) (DeviceRecord, bool) {
	rec, ok := sc.devices[deviceID]
	if !ok {
		return DeviceRecord{}, false
	}
	return *rec, true
}

// Devices returns all known device records sorted by ID.
func (sc *Scanner) Devices() []DeviceRecord {
	out := make([]DeviceRecord, 0, len(sc.devices))
	for _, rec := range sc.devices {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeviceID < out[j].DeviceID })
	return out
}

// String summarizes the scanner.
func (sc *Scanner) String() string {
	return fmt.Sprintf("scanner %q: %d devices, %d messages, %d dupes",
		sc.Cfg.Name, len(sc.devices), sc.Stats.Messages, sc.Stats.Duplicates)
}
