package core

import (
	"math"
	"testing"
	"time"

	"wile/internal/dot11"
	"wile/internal/esp32"
	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
	"wile/internal/units"
)

func pos(x, y float64) medium.Position { return medium.Position{X: x, Y: y} }

type rig struct {
	sched *sim.Scheduler
	med   *medium.Medium
}

func newRig() *rig {
	s := sim.New()
	return &rig{sched: s, med: medium.New(s, phy.WiFi24Channel(6))}
}

func TestSensorToScannerEndToEnd(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 0x1001, Position: pos(0, 0)})
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(3, 0)})
	scanner.Start()

	var got []*Message
	var metas []Meta
	scanner.OnMessage = func(m *Message, meta Meta) {
		got = append(got, m)
		metas = append(metas, meta)
	}

	sensor.TransmitOnce([]Reading{Temperature(17.0)}, nil)
	r.sched.Run()

	if len(got) != 1 {
		t.Fatalf("scanner received %d messages, want 1", len(got))
	}
	m := got[0]
	if m.DeviceID != 0x1001 || m.Seq != 0 {
		t.Fatalf("message header: %+v", m)
	}
	if len(m.Readings) != 1 || m.Readings[0].Celsius() != 17.0 {
		t.Fatalf("reading: %+v", m.Readings)
	}
	if metas[0].BSSID != dot11.LocalMAC(0x1001) {
		t.Fatalf("BSSID = %v", metas[0].BSSID)
	}
	if metas[0].RSSI >= 0 || metas[0].RSSI < -70 {
		t.Fatalf("RSSI = %v", metas[0].RSSI)
	}
	if sensor.Dev.GetState() != esp32.StateDeepSleep {
		t.Fatal("sensor not back in deep sleep")
	}
}

func TestInjectedBeaconIsHiddenSSID(t *testing.T) {
	// §4.1: injected beacons must use the hidden SSID so phones' AP lists
	// stay clean, and must advertise neither ESS nor IBSS.
	msg := &Message{DeviceID: 7, Seq: 1, Readings: []Reading{Temperature(17)}}
	b, err := BuildBeacon(dot11.LocalMAC(7), 6, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, hidden, ok := b.Elements.SSID()
	if !ok || !hidden {
		t.Fatal("injected beacon SSID not hidden")
	}
	if b.Capability.Has(dot11.CapESS) || b.Capability.Has(dot11.CapIBSS) {
		t.Fatal("injected beacon claims to be a network")
	}
	if !b.BSSID().IsLocal() {
		t.Fatal("injected BSSID is not locally administered")
	}
	// And it round-trips the wire format.
	raw, err := dot11.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dot11.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBeacon(back.(*dot11.Beacon), nil)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.DeviceID != 7 {
		t.Fatalf("decoded device %d", decoded.DeviceID)
	}
}

func TestWiLEEnergyPerPacketMatchesTable1(t *testing.T) {
	// Table 1: Wi-LE energy/packet = 84 µJ, counting "only the time
	// required to transmit the packet" (§5.4) — the radio-on TX window.
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 1, Position: pos(0, 0)})
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(2, 0)})
	scanner.Start()

	sensor.TransmitOnce([]Reading{Temperature(17.0)}, nil)
	r.sched.Run()

	// Extract the TX burst energy from the waveform: the charge drawn at
	// TX current.
	var txCharge units.Coulombs
	steps := sensor.Dev.Steps()
	for i, s := range steps {
		if s.Current != esp32.TxBurstCurrent {
			continue
		}
		end := r.sched.Now()
		if i+1 < len(steps) {
			end = steps[i+1].At
		}
		txCharge += units.Charge(esp32.TxBurstCurrent, end.Sub(s.At))
	}
	energy := txCharge.Energy(esp32.Voltage)
	t.Logf("Wi-LE TX-window energy: %.1f µJ (paper: 84 µJ)", energy.Micro())
	if energy < units.Scale(units.MicroJoules(84), 0.85) || energy > units.Scale(units.MicroJoules(84), 1.15) {
		t.Errorf("TX energy %.1f µJ outside ±15%% of 84 µJ", energy.Micro())
	}
}

func TestSensorIdleCurrentMatchesTable1(t *testing.T) {
	// Table 1: Wi-LE idle current = 2.5 µA (deep sleep).
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 1, Position: pos(0, 0)})
	r.sched.RunUntil(10 * sim.Second)
	if got := sensor.Dev.Current(); got != units.MicroAmps(2.5) {
		t.Fatalf("idle current = %v A, want 2.5 µA", float64(got))
	}
}

func TestPeriodicRunDeliversSeries(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0xaa, Position: pos(0, 0), Period: 10 * time.Second,
	})
	temp := 20.0
	sensor.Sample = func() []Reading {
		temp += 0.25
		return []Reading{Temperature(temp)}
	}
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(2, 0)})
	scanner.Start()
	var seqs []uint16
	scanner.OnMessage = func(m *Message, meta Meta) { seqs = append(seqs, m.Seq) }

	sensor.Run()
	r.sched.RunUntil(65 * sim.Second)
	sensor.Stop()

	if len(seqs) != 6 {
		t.Fatalf("received %d messages in 65 s at 10 s period, want 6", len(seqs))
	}
	for i, s := range seqs {
		if int(s) != i {
			t.Fatalf("sequence numbers %v", seqs)
		}
	}
	rec, ok := scanner.Device(0xaa)
	if !ok || rec.Messages != 6 || rec.Lost != 0 {
		t.Fatalf("record: %+v", rec)
	}
	if rec.Last.Readings[0].Celsius() != 21.5 {
		t.Fatalf("last temperature %v", rec.Last.Readings[0].Celsius())
	}
}

func TestScannerLossAccounting(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 0xbb, Position: pos(0, 0), SkipBoot: true})
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(2, 0)})
	scanner.Start()

	// First message received; scanner off for the middle two; back for
	// the last.
	send := func() {
		sensor.TransmitOnce([]Reading{Counter(1)}, nil)
		r.sched.RunFor(time.Second)
	}
	send()
	scanner.Stop()
	send()
	send()
	scanner.Start()
	send()

	rec, ok := scanner.Device(0xbb)
	if !ok {
		t.Fatal("device unknown")
	}
	if rec.Messages != 2 {
		t.Fatalf("messages = %d, want 2", rec.Messages)
	}
	if rec.Lost != 2 {
		t.Fatalf("lost = %d, want 2 (seq gap)", rec.Lost)
	}
}

func TestScannerIgnoresRealAPBeacons(t *testing.T) {
	r := newRig()
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(2, 0)})
	scanner.Start()
	// A plain AP-style beacon with no Wi-LE elements.
	apPort := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 0xcc, Position: pos(0, 0), SkipBoot: true})
	apBeacon := dot11.NewBeacon(dot11.MustParseMAC("aa:bb:cc:00:00:01"), 100, dot11.CapESS,
		dot11.Elements{dot11.SSIDElement("home-wifi"), dot11.DefaultRates()})
	apPort.Port.SetRadioOn(true)
	apPort.Port.Send(apBeacon, nil)
	r.sched.Run()

	if scanner.Stats.Messages != 0 {
		t.Fatal("scanner decoded a message from a plain beacon")
	}
	if scanner.Stats.OtherBeacons != 1 {
		t.Fatalf("OtherBeacons = %d", scanner.Stats.OtherBeacons)
	}
}

func TestScannerDedupAcrossRetransmission(t *testing.T) {
	// The same sequence number heard twice counts once.
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 0xdd, Position: pos(0, 0), SkipBoot: true})
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(2, 0)})
	scanner.Start()
	var count int
	scanner.OnMessage = func(*Message, Meta) { count++ }

	msg := &Message{DeviceID: 0xdd, Seq: 7, Readings: []Reading{Counter(1)}}
	b, err := BuildBeacon(sensor.BSSID(), 6, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sensor.Port.SetRadioOn(true)
	sensor.Port.Send(b, nil)
	r.sched.RunFor(time.Second)
	b2, _ := BuildBeacon(sensor.BSSID(), 6, msg, nil)
	sensor.Port.Send(b2, nil)
	r.sched.RunFor(time.Second)

	if count != 1 {
		t.Fatalf("OnMessage fired %d times for a duplicate", count)
	}
	rec, _ := scanner.Device(0xdd)
	if rec.Duplicates != 1 {
		t.Fatalf("duplicates = %d", rec.Duplicates)
	}
}

func TestEncryptedEndToEnd(t *testing.T) {
	r := newRig()
	key, _ := NewKey([]byte("0123456789abcdef"))
	sensor := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 0x22, Position: pos(0, 0), Key: key, SkipBoot: true})

	good := NewScanner(r.sched, r.med, ScannerConfig{Name: "good", Position: pos(2, 0), DefaultKey: key})
	good.Start()
	eaves := NewScanner(r.sched, r.med, ScannerConfig{Name: "eavesdropper", Position: pos(2, 1)})
	eaves.Start()

	var plain *Message
	good.OnMessage = func(m *Message, meta Meta) { plain = m }

	sensor.TransmitOnce([]Reading{Temperature(99.99)}, nil)
	r.sched.Run()

	if plain == nil || plain.Readings[0].Celsius() != 99.99 {
		t.Fatalf("keyed scanner failed: %+v", plain)
	}
	if eaves.Stats.Messages != 0 {
		t.Fatal("keyless scanner decoded an encrypted message")
	}
	if eaves.Stats.EncryptedDrops != 1 {
		t.Fatalf("EncryptedDrops = %d", eaves.Stats.EncryptedDrops)
	}
}

func TestTwoWayExchange(t *testing.T) {
	// §6: the device announces a receive window; the base station injects
	// a response inside it.
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0x33, Position: pos(0, 0), RxWindow: 30 * time.Millisecond, SkipBoot: true,
	})
	responder := NewResponder(r.sched, r.med, "base", pos(2, 0), 6)
	responder.Queue(0x33, []Reading{RawReading([]byte("set-interval=60"))})

	var downlink *Message
	sensor.OnDownlink = func(m *Message) { downlink = m }

	var txOK *bool
	sensor.TransmitOnce([]Reading{Temperature(17)}, func(ok bool) { txOK = &ok })
	r.sched.Run()

	if txOK == nil || !*txOK {
		t.Fatal("uplink failed")
	}
	if downlink == nil {
		t.Fatal("no downlink received in the window")
	}
	if string(downlink.Readings[0].Raw) != "set-interval=60" {
		t.Fatalf("downlink payload %q", downlink.Readings[0].Raw)
	}
	if !downlink.Downlink || downlink.Seq != 0 {
		t.Fatalf("downlink header: %+v", downlink)
	}
	if responder.Stats.Responses != 1 || responder.Stats.WindowsSeen != 1 {
		t.Fatalf("responder stats: %+v", responder.Stats)
	}
	if responder.PendingFor(0x33) {
		t.Fatal("queue not drained")
	}
	if sensor.Stats.Downlinks != 1 {
		t.Fatalf("sensor downlinks = %d", sensor.Stats.Downlinks)
	}
	// After the window the device is asleep again.
	if sensor.Dev.GetState() != esp32.StateDeepSleep {
		t.Fatal("sensor not asleep after window")
	}
}

func TestTwoWayNoDataNoResponse(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0x44, Position: pos(0, 0), RxWindow: 20 * time.Millisecond, SkipBoot: true,
	})
	responder := NewResponder(r.sched, r.med, "base", pos(2, 0), 6)
	got := false
	sensor.OnDownlink = func(*Message) { got = true }
	sensor.TransmitOnce([]Reading{Temperature(1)}, nil)
	r.sched.Run()
	if got {
		t.Fatal("downlink without queued data")
	}
	if responder.Stats.WindowsSeen != 1 {
		t.Fatalf("windows seen = %d", responder.Stats.WindowsSeen)
	}
}

func TestDownlinkMissesClosedWindow(t *testing.T) {
	// A downlink injected after the window closes is not received.
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0x55, Position: pos(0, 0), RxWindow: 10 * time.Millisecond, SkipBoot: true,
	})
	got := false
	sensor.OnDownlink = func(*Message) { got = true }
	sensor.TransmitOnce([]Reading{Temperature(1)}, nil)
	r.sched.RunFor(100 * time.Millisecond)

	// Too late: inject now.
	late := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 0x56, Position: pos(1, 0), SkipBoot: true})
	resp := &Message{DeviceID: 0x55, Seq: 0, Downlink: true, Readings: []Reading{Counter(1)}}
	b, _ := BuildBeacon(late.BSSID(), 6, resp, nil)
	late.Port.SetRadioOn(true)
	late.Port.Send(b, nil)
	r.sched.Run()

	if got {
		t.Fatal("downlink received outside the window")
	}
}

// TestJitterDesynchronizesCoPeriodicSensors reproduces the §6 argument:
// "if two devices happen to transmit at the same time and they have the
// same transmission period, their transmissions will automatically differ
// away from each other due to the jitter of their clocks."
func TestJitterDesynchronizesCoPeriodicSensors(t *testing.T) {
	r := newRig()
	const n = 2
	var sensors []*Sensor
	for i := 0; i < n; i++ {
		s := NewSensor(r.sched, r.med, SensorConfig{
			DeviceID: uint32(0x100 + i), Position: pos(float64(i), 0),
			Period: 10 * time.Second, JitterPPM: 40, SkipBoot: true,
			Seed: uint64(1000 + i),
		})
		sensors = append(sensors, s)
	}
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(0.5, 0.5)})
	scanner.Start()
	txTimes := map[uint32][]sim.Time{}
	scanner.OnMessage = func(m *Message, meta Meta) {
		txTimes[m.DeviceID] = append(txTimes[m.DeviceID], meta.At)
	}
	for _, s := range sensors {
		s.Run()
	}
	// Run for 200 cycles.
	r.sched.RunUntil(2000 * sim.Second)
	for _, s := range sensors {
		s.Stop()
	}

	a, b := txTimes[0x100], txTimes[0x101]
	if len(a) < 150 || len(b) < 150 {
		t.Fatalf("deliveries: %d/%d — collisions not self-resolving", len(a), len(b))
	}
	// The offset between the two series must drift: compare the offset in
	// the first and last common cycles.
	k := len(a)
	if len(b) < k {
		k = len(b)
	}
	first := math.Abs(float64(a[0] - b[0]))
	last := math.Abs(float64(a[k-1] - b[k-1]))
	if last == first {
		t.Fatal("transmission offset never drifted")
	}
	// Both devices' messages keep flowing (CSMA + drift resolve overlap).
	recA, _ := scanner.Device(0x100)
	recB, _ := scanner.Device(0x101)
	lossA := float64(recA.Lost) / float64(recA.Lost+recA.Messages)
	lossB := float64(recB.Lost) / float64(recB.Lost+recB.Messages)
	if lossA > 0.05 || lossB > 0.05 {
		t.Fatalf("loss rates %.2f/%.2f despite jitter+CSMA", lossA, lossB)
	}
}

func TestMultiFragmentBeaconEndToEnd(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{DeviceID: 0x66, Position: pos(0, 0), SkipBoot: true})
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(2, 0)})
	scanner.Start()
	var got *Message
	scanner.OnMessage = func(m *Message, meta Meta) { got = m }

	big := make([]byte, 255)
	for i := range big {
		big[i] = byte(i)
	}
	sensor.TransmitOnce([]Reading{RawReading(big), RawReading(big), RawReading(big)}, nil)
	r.sched.Run()

	if got == nil {
		t.Fatal("multi-fragment message not received")
	}
	if len(got.Readings) != 3 || len(got.Readings[2].Raw) != 255 {
		t.Fatalf("readings: %d", len(got.Readings))
	}
	if sensor.Stats.Fragments < 3 {
		t.Fatalf("fragments = %d, expected ≥3 vendor elements", sensor.Stats.Fragments)
	}
}

func TestHundredSensorScale(t *testing.T) {
	// §6's "network of IoT devices" at deployment scale: 100 co-located
	// sensors sharing one channel at a 10 s period. CSMA plus crystal
	// jitter must keep near-complete delivery with negligible collisions.
	r := newRig()
	const n = 100
	const cycles = 20
	period := 10 * time.Second
	for i := 0; i < n; i++ {
		s := NewSensor(r.sched, r.med, SensorConfig{
			DeviceID:  uint32(0x9000 + i),
			Position:  pos(float64(i%10)*0.5, float64(i/10)*0.5),
			Period:    period,
			JitterPPM: 40,
			SkipBoot:  true,
			Seed:      uint64(7000 + i),
		})
		s.Run()
	}
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(2.25, 2.25)})
	scanner.Start()
	r.sched.RunUntil(sim.FromDuration(period) * sim.Time(cycles))

	expected := n * (cycles - 1)
	got := scanner.Stats.Messages
	rate := float64(got) / float64(expected)
	t.Logf("scale: %d/%d delivered (%.1f%%), %d collisions, %d medium transmissions",
		got, expected, rate*100, r.med.Stats.Collisions, r.med.Stats.Transmissions)
	if rate < 0.97 {
		t.Fatalf("delivery %.2f below 0.97 at %d sensors", rate, n)
	}
	if len(scanner.Devices()) != n {
		t.Fatalf("registry has %d devices", len(scanner.Devices()))
	}
	// Loss accounting stays consistent with delivery.
	totalLost := 0
	for _, rec := range scanner.Devices() {
		totalLost += rec.Lost
	}
	if got+totalLost < expected*99/100 {
		t.Fatalf("messages(%d)+lost(%d) inconsistent with expected(%d)", got, totalLost, expected)
	}
}
