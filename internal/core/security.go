package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Security extension (§6): "since Wi-LE systems communicate by injecting
// raw packets with no encryption, all devices within range of the sender
// can obtain the transmitted data... However, security can be easily
// provided by encrypting the data prior to its transmission."
//
// The construction is encrypt-then-MAC with per-device pre-shared keys:
// AES-128-CTR keyed by the encryption half, HMAC-SHA256 (truncated to 8
// bytes — beacon payload space is precious) keyed by the authentication
// half. The nonce binds device ID, sequence number and flags, so a captured
// beacon cannot be replayed as a different device, sequence, or direction.
// The 16-bit sequence number wraps after 65536 messages; at the paper's
// ten-minute reporting interval that is over a year per key, and deployments
// rotate keys within that horizon.

// TagLen is the truncated authenticator length appended to ciphertexts.
const TagLen = 8

// KeyLen is the pre-shared key length.
const KeyLen = 16

// Key holds one device's pre-shared key material.
type Key struct {
	enc [KeyLen]byte
	mac [KeyLen]byte
}

// ErrNoKey reports an encrypted message arriving at a scanner without a
// key for the device.
var ErrNoKey = errors.New("core: message is encrypted and no key is configured")

// ErrAuth reports a failed authenticator check (wrong key or tampering).
var ErrAuth = errors.New("core: message authentication failed")

// NewKey derives the working keys from a 16-byte pre-shared secret.
func NewKey(secret []byte) (*Key, error) {
	if len(secret) != KeyLen {
		return nil, fmt.Errorf("core: key must be %d bytes, have %d", KeyLen, len(secret))
	}
	k := &Key{}
	// Domain-separated subkeys via HMAC: enc = H(secret,"enc"), mac = H(secret,"mac").
	h := hmac.New(sha256.New, secret)
	h.Write([]byte("wile-enc"))
	copy(k.enc[:], h.Sum(nil))
	h.Reset()
	h.Write([]byte("wile-mac"))
	copy(k.mac[:], h.Sum(nil))
	return k, nil
}

// nonce builds the 16-byte CTR initial counter block.
func (k *Key) nonce(deviceID uint32, seq uint16, flags byte) [aes.BlockSize]byte {
	var n [aes.BlockSize]byte
	n[0] = 'W'
	n[1] = 'L'
	n[2] = flags
	n[4] = byte(deviceID >> 24)
	n[5] = byte(deviceID >> 16)
	n[6] = byte(deviceID >> 8)
	n[7] = byte(deviceID)
	n[8] = byte(seq >> 8)
	n[9] = byte(seq)
	// Bytes 10..15 are the CTR counter, starting at zero.
	return n
}

// Seal encrypts and authenticates plaintext, returning ciphertext||tag.
func (k *Key) Seal(deviceID uint32, seq uint16, flags byte, plaintext []byte) []byte {
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		panic("core: aes.NewCipher: " + err.Error()) // KeyLen is a valid AES key size by construction
	}
	n := k.nonce(deviceID, seq, flags)
	out := make([]byte, len(plaintext), len(plaintext)+TagLen)
	cipher.NewCTR(block, n[:]).XORKeyStream(out, plaintext)

	mac := hmac.New(sha256.New, k.mac[:])
	mac.Write(n[:10]) // bind identity, seq, flags
	mac.Write(out)
	return append(out, mac.Sum(nil)[:TagLen]...)
}

// Open verifies and decrypts ciphertext||tag.
func (k *Key) Open(deviceID uint32, seq uint16, flags byte, sealed []byte) ([]byte, error) {
	if len(sealed) < TagLen {
		return nil, fmt.Errorf("%w: sealed body %d bytes below tag length", ErrAuth, len(sealed))
	}
	ct, tag := sealed[:len(sealed)-TagLen], sealed[len(sealed)-TagLen:]
	n := k.nonce(deviceID, seq, flags)
	mac := hmac.New(sha256.New, k.mac[:])
	mac.Write(n[:10])
	mac.Write(ct)
	if !hmac.Equal(tag, mac.Sum(nil)[:TagLen]) {
		return nil, ErrAuth
	}
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		panic("core: aes.NewCipher: " + err.Error())
	}
	out := make([]byte, len(ct))
	cipher.NewCTR(block, n[:]).XORKeyStream(out, ct)
	return out, nil
}
