package core

import (
	"testing"
	"time"

	"wile/internal/medium"
	"wile/internal/phy"
	"wile/internal/sim"
)

// multiChannelWorld builds one medium per channel.
func multiChannelWorld(chans ...phy.Channel) (*sim.Scheduler, []*medium.Medium) {
	s := sim.New()
	meds := make([]*medium.Medium, 0, len(chans))
	for _, ch := range chans {
		meds = append(meds, medium.New(s, ch))
	}
	return s, meds
}

func TestWiLEOn5GHz(t *testing.T) {
	// §1: Wi-LE can use "the 5 GHz spectrum (allowing devices to avoid the
	// increasingly crowded 2.4 GHz spectrum used by BLE)". Nothing in the
	// protocol is band-specific; this pins that down.
	s := sim.New()
	med := medium.New(s, phy.WiFi5Channel(36))
	sensor := NewSensor(s, med, SensorConfig{DeviceID: 0x5001, Position: pos(0, 0), Channel: 36, SkipBoot: true})
	scanner := NewScanner(s, med, ScannerConfig{Position: pos(2, 0)})
	scanner.Start()
	var got *Message
	scanner.OnMessage = func(m *Message, meta Meta) { got = m }
	sensor.TransmitOnce([]Reading{Temperature(17)}, nil)
	s.Run()
	if got == nil || got.DeviceID != 0x5001 {
		t.Fatalf("5 GHz delivery failed: %+v", got)
	}
}

func TestChannelHopperFindsDevicesAcrossChannels(t *testing.T) {
	sched, meds := multiChannelWorld(phy.WiFi24Channel(1), phy.WiFi24Channel(6), phy.WiFi24Channel(11))

	// One fast-reporting sensor per channel.
	for i, med := range meds {
		s := NewSensor(sched, med, SensorConfig{
			DeviceID: uint32(0x600 + i),
			Position: pos(0, 0),
			Period:   500 * time.Millisecond,
			Channel:  []int{1, 6, 11}[i],
			SkipBoot: true,
			Seed:     uint64(100 + i),
		})
		s.Run()
	}

	scanners := make([]*Scanner, 0, len(meds))
	for i, med := range meds {
		scanners = append(scanners, NewScanner(sched, med, ScannerConfig{
			Name: "hop", Position: pos(1, 0), Seed: uint64(200 + i),
		}))
	}
	hopper := NewChannelHopper(sched, 300*time.Millisecond, scanners...)
	hopper.Start()

	sched.RunUntil(60 * sim.Second)
	hopper.Stop()

	devices := hopper.Devices()
	if len(devices) != 3 {
		t.Fatalf("hopper found %d devices, want 3 (one per channel)", len(devices))
	}
	for i, rec := range devices {
		if rec.DeviceID != uint32(0x600+i) {
			t.Fatalf("devices misordered: %+v", devices)
		}
		if rec.Messages == 0 {
			t.Fatalf("device %08x never captured", rec.DeviceID)
		}
	}
	if hopper.Stats.Hops < 100 {
		t.Fatalf("only %d hops in 60 s at 300 ms dwell", hopper.Stats.Hops)
	}
	// Capture rate ≈ 1/3 (dwelling on each channel a third of the time).
	expectedPerDevice := 120 // 60 s / 0.5 s
	total := hopper.Messages()
	rate := float64(total) / float64(3*expectedPerDevice)
	if rate < 0.20 || rate > 0.50 {
		t.Fatalf("capture rate %.2f, want ≈1/3", rate)
	}
}

func TestChannelHopperSingleChannelCatchesAll(t *testing.T) {
	sched, meds := multiChannelWorld(phy.WiFi24Channel(6))
	sensor := NewSensor(sched, meds[0], SensorConfig{
		DeviceID: 0x700, Position: pos(0, 0), Period: time.Second, SkipBoot: true,
	})
	sensor.Run()
	sc := NewScanner(sched, meds[0], ScannerConfig{Position: pos(1, 0)})
	hopper := NewChannelHopper(sched, 200*time.Millisecond, sc)
	hopper.Start()
	sched.RunUntil(20*sim.Second + 500*sim.Millisecond)
	if got := hopper.Messages(); got != 20 {
		t.Fatalf("single-channel hopper caught %d of 20", got)
	}
}

func TestChannelHopperStartStopIdempotent(t *testing.T) {
	sched, meds := multiChannelWorld(phy.WiFi24Channel(1), phy.WiFi24Channel(6))
	scanners := []*Scanner{
		NewScanner(sched, meds[0], ScannerConfig{Position: pos(0, 0)}),
		NewScanner(sched, meds[1], ScannerConfig{Position: pos(0, 0), Seed: 2}),
	}
	h := NewChannelHopper(sched, 100*time.Millisecond, scanners...)
	h.Start()
	h.Start()
	sched.RunUntil(sim.Second)
	h.Stop()
	n := h.Stats.Hops
	sched.RunUntil(2 * sim.Second)
	if h.Stats.Hops != n {
		t.Fatal("hopper kept hopping after Stop")
	}
	// Exactly one radio was on at any time; after Stop, none.
	for _, sc := range scanners {
		if sc.Port.Transceiver().On() {
			t.Fatal("a scanner radio left on after Stop")
		}
	}
}

func TestChannelHopperNeedsScanners(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty hopper did not panic")
		}
	}()
	NewChannelHopper(sim.New(), time.Second)
}

// --- Reliability layer ---

func TestReliableDeliveryWithOutage(t *testing.T) {
	// The base station is down for the first two cycles; the batch queued
	// at t=0 must survive the outage and deliver on the third attempt.
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0xab, Position: pos(0, 0), Period: 5 * time.Second,
		RxWindow: 20 * time.Millisecond, SkipBoot: true,
	})
	rel := NewReliableSensor(sensor, 5)
	responder := NewResponder(r.sched, r.med, "base", pos(2, 0), 6)
	responder.AutoAck = true
	responder.Port.SetRadioOn(false) // outage

	var delivered []Reading
	attempts := 0
	rel.OnDelivered = func(batch []Reading, n int) { delivered = batch; attempts = n }

	rel.Queue([]Reading{Temperature(99)})
	rel.Run()
	// Two cycles of outage.
	r.sched.RunUntil(11 * sim.Second)
	if rel.Pending() != 1 {
		t.Fatalf("pending = %d during outage", rel.Pending())
	}
	// Base station returns.
	responder.Port.SetRadioOn(true)
	r.sched.RunUntil(30 * sim.Second)
	rel.Stop()

	if delivered == nil {
		t.Fatal("batch never delivered")
	}
	if delivered[0].Celsius() != 99 {
		t.Fatalf("delivered %+v", delivered)
	}
	if attempts != 3 {
		t.Fatalf("delivered after %d attempts, want 3", attempts)
	}
	if rel.Stats.Retransmitted != 2 {
		t.Fatalf("retransmissions = %d", rel.Stats.Retransmitted)
	}
	if rel.Pending() != 0 {
		t.Fatalf("pending = %d after delivery", rel.Pending())
	}
}

func TestReliableFirstTryNoRetransmit(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0xac, Position: pos(0, 0), Period: 2 * time.Second,
		RxWindow: 20 * time.Millisecond, SkipBoot: true,
	})
	rel := NewReliableSensor(sensor, 5)
	responder := NewResponder(r.sched, r.med, "base", pos(2, 0), 6)
	responder.AutoAck = true

	rel.Queue([]Reading{Counter(1)})
	rel.Queue([]Reading{Counter(2)})
	rel.Run()
	r.sched.RunUntil(10 * sim.Second)
	rel.Stop()

	if rel.Stats.Delivered != 2 || rel.Stats.Retransmitted != 0 {
		t.Fatalf("stats: %+v", rel.Stats)
	}
	if rel.Pending() != 0 {
		t.Fatalf("pending = %d", rel.Pending())
	}
}

func TestReliableGiveUpAfterMaxAttempts(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0xad, Position: pos(0, 0), Period: time.Second,
		RxWindow: 10 * time.Millisecond, SkipBoot: true,
	})
	rel := NewReliableSensor(sensor, 3)
	// No responder at all.
	var gaveUp []Reading
	rel.OnGiveUp = func(batch []Reading) { gaveUp = batch }
	rel.Queue([]Reading{Battery(1234)})
	rel.Run()
	r.sched.RunUntil(10 * sim.Second)
	rel.Stop()

	if gaveUp == nil {
		t.Fatal("never gave up")
	}
	if gaveUp[0].Value != 1234 {
		t.Fatalf("gave up on %+v", gaveUp)
	}
	if rel.Stats.GivenUp != 1 || rel.Pending() != 0 {
		t.Fatalf("stats %+v pending %d", rel.Stats, rel.Pending())
	}
	// Exactly MaxAttempts transmissions carried the batch.
	if rel.Stats.Retransmitted != 2 {
		t.Fatalf("retransmitted %d, want 2 (3 attempts total)", rel.Stats.Retransmitted)
	}
}

func TestReliableHeartbeatWhenIdle(t *testing.T) {
	r := newRig()
	sensor := NewSensor(r.sched, r.med, SensorConfig{
		DeviceID: 0xae, Position: pos(0, 0), Period: time.Second,
		RxWindow: 10 * time.Millisecond, SkipBoot: true,
	})
	rel := NewReliableSensor(sensor, 3)
	scanner := NewScanner(r.sched, r.med, ScannerConfig{Position: pos(1, 0)})
	scanner.Start()
	heartbeats := 0
	scanner.OnMessage = func(m *Message, meta Meta) { heartbeats++ }
	rel.Run()
	r.sched.RunUntil(5*sim.Second + 500*sim.Millisecond)
	rel.Stop()
	if heartbeats != 5 {
		t.Fatalf("heartbeats = %d", heartbeats)
	}
}
