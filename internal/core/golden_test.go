package core

import (
	"encoding/hex"
	"testing"

	"wile/internal/dot11"
)

// TestGoldenBeaconBytes locks the on-air format: any change to the frame
// codec, element order, message header or TLV encoding shows up as a diff
// against this hand-verified capture (produced by cmd/wile-sensor and
// cross-checked field-by-field below).
func TestGoldenBeaconBytes(t *testing.T) {
	const golden = "80000000ffffffffffff0257000010010257000010010000" +
		"0000000000000000640000000000010882848b960c121824030106dd1a5249" +
		"4c0100000010010000010102086603020bb80404000000004dea87ad"

	msg := &Message{
		DeviceID: 0x1001,
		Seq:      0,
		Readings: []Reading{Temperature(21.50), Battery(3000), Counter(0)},
	}
	beacon, err := BuildBeacon(dot11.LocalMAC(0x1001), 6, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := dot11.Marshal(beacon)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(raw); got != golden {
		t.Fatalf("wire format changed:\n got  %s\n want %s", got, golden)
	}

	// Field-by-field verification of the golden bytes, as documentation:
	want := []struct {
		name string
		hex  string
	}{
		{"frame control (beacon)", "8000"},
		{"duration", "0000"},
		{"RA broadcast", "ffffffffffff"},
		{"TA = LocalMAC(0x1001)", "025700001001"},
		{"BSSID = LocalMAC(0x1001)", "025700001001"},
		{"seq control", "0000"},
		{"timestamp", "0000000000000000"},
		{"beacon interval 100 TU", "6400"},
		{"capability (neither ESS nor IBSS)", "0000"},
		{"SSID element, hidden (len 0)", "0000"},
		{"supported rates", "010882848b960c121824"},
		{"DS param, channel 6", "030106"},
		{"vendor element hdr (len 26)", "dd1a"},
		{"Wi-LE OUI", "52494c"},
		{"msg: ver=1 flags=0", "0100"},
		{"msg: device 0x1001", "00001001"},
		{"msg: seq 0", "0000"},
		{"msg: frag 0 of 1", "01"},
		{"TLV temperature 21.50 °C", "01020866"},
		{"TLV battery 3000 mV", "03020bb8"},
		{"TLV counter 0", "040400000000"},
		{"FCS", "4dea87ad"},
	}
	off := 0
	for _, f := range want {
		n := len(f.hex)
		if golden[off:off+n] != f.hex {
			t.Errorf("%s: bytes %s, want %s", f.name, golden[off:off+n], f.hex)
		}
		off += n
	}
	if off != len(golden) {
		t.Fatalf("field walk covered %d of %d hex chars", off, len(golden))
	}
}
