package core

import (
	"time"

	"wile/internal/obs"
)

// Reliability layer on the §6 two-way extension.
//
// Plain Wi-LE is fire-and-forget: a beacon is transmitted once and never
// acknowledged (broadcast frames draw no MAC ACK). For readings that must
// not be lost — billing meters, alarms — the announced receive window turns
// into an acknowledgment channel: the device requests an ack with each
// uplink, and retransmits un-acked batches on subsequent wakes. Readings
// stay queued across cycles, so delivery is at-least-once while the device
// still sleeps at 2.5 µA between attempts.

// ReliableSensor wraps a Sensor with at-least-once batch delivery.
type ReliableSensor struct {
	// S is the underlying transmitter; configure RxWindow > 0 on it.
	S *Sensor
	// MaxAttempts bounds retransmissions per batch before OnGiveUp.
	MaxAttempts int
	// OnDelivered fires when a batch is acknowledged.
	OnDelivered func(batch []Reading, attempts int)
	// OnGiveUp fires when a batch exhausts MaxAttempts.
	OnGiveUp func(batch []Reading)
	// Stats accumulates counters.
	Stats ReliableStats
	// Metrics, when non-nil, mirrors the Stats counters into a shared
	// metrics registry (see ReliableMetricsFor / Observe).
	Metrics *ReliableMetrics

	queue   []*pendingBatch
	running bool
}

// ReliableStats counts reliability events.
type ReliableStats struct {
	Queued        int
	Delivered     int
	Retransmitted int
	GivenUp       int
}

type pendingBatch struct {
	readings []Reading
	attempts int
	// seq is the sequence number of the last transmission attempt, used
	// to pair the ack.
	seq uint16
}

// NewReliableSensor wraps s. The sensor's RxWindow must be nonzero so the
// base station has a slot to answer in.
func NewReliableSensor(s *Sensor, maxAttempts int) *ReliableSensor {
	if s.Cfg.RxWindow == 0 {
		s.Cfg.RxWindow = 20 * time.Millisecond
	}
	if maxAttempts <= 0 {
		maxAttempts = 5
	}
	r := &ReliableSensor{S: s, MaxAttempts: maxAttempts}
	s.OnDownlink = r.handleDownlink
	s.Sample = r.nextBatch
	return r
}

// Observe mirrors the reliability counters — and the underlying sensor's —
// into the registry.
func (r *ReliableSensor) Observe(reg *obs.Registry) {
	r.S.Observe(reg)
	r.Metrics = ReliableMetricsFor(reg)
}

// Queue adds a batch of readings for at-least-once delivery.
func (r *ReliableSensor) Queue(readings []Reading) {
	r.Stats.Queued++
	if r.Metrics != nil {
		r.Metrics.Queued.Inc()
	}
	r.queue = append(r.queue, &pendingBatch{readings: readings})
}

// Pending reports the number of undelivered batches.
func (r *ReliableSensor) Pending() int { return len(r.queue) }

// Run starts the underlying sensor's periodic loop; each wake transmits
// the oldest pending batch (or a heartbeat when the queue is empty).
func (r *ReliableSensor) Run() {
	r.running = true
	r.S.Run()
}

// Stop halts the loop.
func (r *ReliableSensor) Stop() {
	r.running = false
	r.S.Stop()
}

// nextBatch picks what the next wake transmits, first dropping batches
// that exhausted their attempt budget (the device was asleep when the
// budget ran out, so the reap happens at wake time).
func (r *ReliableSensor) nextBatch() []Reading {
	r.reapExpired()
	if len(r.queue) == 0 {
		// Heartbeat: keeps the cadence observable and gives the base
		// station a window anyway.
		return []Reading{Counter(uint32(r.Stats.Delivered))}
	}
	batch := r.queue[0]
	if batch.attempts > 0 {
		r.Stats.Retransmitted++
		if r.Metrics != nil {
			r.Metrics.Retransmitted.Inc()
		}
	}
	batch.attempts++
	batch.seq = r.S.Seq() // the sequence number this transmission will use
	return batch.readings
}

// handleDownlink consumes ack responses arriving in the window.
func (r *ReliableSensor) handleDownlink(m *Message) {
	if len(r.queue) == 0 {
		return
	}
	batch := r.queue[0]
	if m.Seq != batch.seq {
		return // ack for something else (stale window)
	}
	r.queue = r.queue[1:]
	r.Stats.Delivered++
	if r.Metrics != nil {
		r.Metrics.Delivered.Inc()
	}
	if r.OnDelivered != nil {
		r.OnDelivered(batch.readings, batch.attempts)
	}
}

// reapExpired drops batches past their attempt budget.
func (r *ReliableSensor) reapExpired() {
	kept := r.queue[:0]
	for _, b := range r.queue {
		if b.attempts >= r.MaxAttempts {
			r.Stats.GivenUp++
			if r.Metrics != nil {
				r.Metrics.GivenUp.Inc()
			}
			if r.OnGiveUp != nil {
				r.OnGiveUp(b.readings)
			}
			continue
		}
		kept = append(kept, b)
	}
	r.queue = kept
}

// The sensor's Sample hook fires before each transmission, so expired
// batches are also reaped there via nextBatch's caller. Users of
// ReliableSensor must not replace S.Sample or S.OnDownlink.
